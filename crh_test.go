package crh_test

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"testing"

	crh "github.com/crhkit/crh"
)

// buildNoisy constructs a dataset through the public API: nGood accurate
// sources and nBad unreliable ones over nObj objects with one continuous
// and one categorical property. Returns the dataset and ground truth.
func buildNoisy(t *testing.T, seed int64, nGood, nBad, nObj int) (*crh.Dataset, *crh.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := crh.NewBuilder()
	conds := []string{"a", "b", "c", "d"}
	type row struct {
		temp float64
		cond string
	}
	rows := make([]row, nObj)
	for i := range rows {
		rows[i] = row{temp: rng.Float64() * 100, cond: conds[rng.Intn(len(conds))]}
	}
	observe := func(src string, good bool) {
		for i, r := range rows {
			obj := "obj" + strconv.Itoa(i)
			temp, cond := r.temp, r.cond
			if good {
				temp += rng.NormFloat64()
			} else {
				temp += rng.NormFloat64() * 20
			}
			flip := 0.05
			if !good {
				flip = 0.65
			}
			if rng.Float64() < flip {
				cond = conds[rng.Intn(len(conds))]
			}
			if err := b.ObserveFloat(src, obj, "temp", temp); err != nil {
				t.Fatal(err)
			}
			if err := b.ObserveCat(src, obj, "cond", cond); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := 0; k < nGood; k++ {
		observe("good"+strconv.Itoa(k), true)
	}
	for k := 0; k < nBad; k++ {
		observe("bad"+strconv.Itoa(k), false)
	}
	d := b.Build()
	gt := crh.NewTable(d)
	for i, r := range rows {
		gt.SetAt(i, 0, crh.Float(r.temp))
		id, _ := d.Prop(1).CatID(r.cond)
		gt.SetAt(i, 1, crh.Cat(id))
	}
	return d, gt
}

func TestPublicEndToEnd(t *testing.T) {
	d, gt := buildNoisy(t, 1, 3, 5, 150)
	res, err := crh.Run(d, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths.Count() != d.NumEntries() {
		t.Fatal("incomplete truths")
	}
	m := crh.Evaluate(d, res.Truths, gt)
	if m.ErrorRate > 0.05 {
		t.Fatalf("error rate = %v", m.ErrorRate)
	}
	if m.MNAD > 0.5 {
		t.Fatalf("MNAD = %v", m.MNAD)
	}
	// Good sources must outweigh bad ones.
	if !(res.Weights[0] > res.Weights[d.NumSources()-1]) {
		t.Fatalf("weights = %v", res.Weights)
	}
	// CRH weights should correlate with ground-truth reliability.
	rel := crh.TrueReliability(d, gt)
	if corr := pearson(res.Weights, rel); corr < 0.7 {
		t.Fatalf("weight/reliability correlation = %v", corr)
	}
}

func TestPublicOptionVariants(t *testing.T) {
	d, gt := buildNoisy(t, 2, 3, 4, 120)
	cases := []crh.Options{
		{ContinuousLoss: crh.SquaredLoss()},
		{ContinuousLoss: crh.AbsoluteLoss(), CategoricalLoss: crh.ProbabilisticLoss()},
		{Scheme: crh.ExpSumWeights()},
		{Scheme: crh.TopJWeights(3)},
		{ContinuousLoss: crh.BregmanLoss("sq", func(x float64) float64 { return x * x }, func(x float64) float64 { return 2 * x })},
	}
	for i, opts := range cases {
		res, err := crh.Run(d, opts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		m := crh.Evaluate(d, res.Truths, gt)
		if m.ErrorRate > 0.15 {
			t.Fatalf("case %d error rate = %v", i, m.ErrorRate)
		}
	}
}

func TestPublicEditDistanceLoss(t *testing.T) {
	b := crh.NewBuilder()
	// Three sources report gate strings; two near-identical variants
	// should beat one unrelated value even without weights.
	b.ObserveCat("s1", "fl1", "gate", "B12")
	b.ObserveCat("s2", "fl1", "gate", "B-12")
	b.ObserveCat("s3", "fl1", "gate", "C7")
	d := b.Build()
	res, err := crh.Run(d, crh.Options{CategoricalLoss: crh.EditDistanceLoss()})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Truths.GetAt(0, 0)
	if !ok {
		t.Fatal("unresolved")
	}
	if name := d.Prop(0).CatName(int(v.C)); name != "B12" && name != "B-12" {
		t.Fatalf("edit-distance truth = %q", name)
	}
}

func TestPublicStream(t *testing.T) {
	// Timestamped data through the public API.
	b := crh.NewBuilder()
	rng := rand.New(rand.NewSource(3))
	for day := 0; day < 10; day++ {
		for i := 0; i < 20; i++ {
			obj := "d" + strconv.Itoa(day) + "/o" + strconv.Itoa(i)
			truth := rng.Float64() * 50
			b.ObserveFloat("good1", obj, "x", truth+rng.NormFloat64()*0.1)
			b.ObserveFloat("good2", obj, "x", truth+rng.NormFloat64()*0.2)
			b.ObserveFloat("bad", obj, "x", truth+rng.NormFloat64()*15)
			b.SetTimestamp(obj, day)
		}
	}
	d := b.Build()
	res, err := crh.RunStream(d, 1, crh.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunkCount != 10 {
		t.Fatalf("chunks = %d", res.ChunkCount)
	}
	if !(res.Weights[0] > res.Weights[2]) || !(res.Weights[1] > res.Weights[2]) {
		t.Fatalf("stream weights = %v", res.Weights)
	}
	// Processor-level API for unbounded streams.
	chunks, err := crh.ChunksByWindow(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := crh.NewStreamProcessor(d.NumSources(), crh.StreamOptions{})
	for _, ch := range chunks {
		if truths := p.Process(ch.Data); truths.Count() == 0 {
			t.Fatal("chunk resolved nothing")
		}
	}
	if p.Chunks() != len(chunks) {
		t.Fatal("processor chunk count")
	}
}

func TestPublicParallel(t *testing.T) {
	d, gt := buildNoisy(t, 4, 3, 4, 100)
	serial, err := crh.Run(d, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := crh.RunParallel(d, crh.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ms := crh.Evaluate(d, serial.Truths, gt)
	mp := crh.Evaluate(d, par.Truths, gt)
	if math.Abs(ms.ErrorRate-mp.ErrorRate) > 0.03 {
		t.Fatalf("serial %v vs parallel %v error rates diverge", ms.ErrorRate, mp.ErrorRate)
	}
	if len(par.Jobs) == 0 || par.SimulatedTime <= 0 {
		t.Fatal("parallel diagnostics missing")
	}
}

func TestPublicBaselines(t *testing.T) {
	d, gt := buildNoisy(t, 5, 3, 4, 120)
	crhRes, err := crh.Run(d, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	crhM := crh.Evaluate(d, crhRes.Truths, gt)
	if len(crh.Baselines()) != 10 {
		t.Fatal("want 10 baselines")
	}
	for _, m := range crh.Baselines() {
		truths, _ := m.Resolve(d)
		bm := crh.Evaluate(d, truths, gt)
		// CRH should beat or tie every baseline on this data (within
		// noise on the easy ones).
		if !math.IsNaN(bm.ErrorRate) && bm.ErrorRate+0.02 < crhM.ErrorRate {
			t.Errorf("%s error rate %v beats CRH %v", m.Name(), bm.ErrorRate, crhM.ErrorRate)
		}
	}
}

func TestPublicCodec(t *testing.T) {
	d, gt := buildNoisy(t, 6, 2, 2, 30)
	var buf bytes.Buffer
	if err := crh.WriteDataset(&buf, d, gt); err != nil {
		t.Fatal(err)
	}
	d2, gt2, err := crh.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumObservations() != d.NumObservations() {
		t.Fatal("observations changed")
	}
	if gt2 == nil || gt2.Count() != gt.Count() {
		t.Fatal("ground truth changed")
	}
	// Results on the decoded dataset must match the original.
	r1, err := crh.Run(d, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := crh.Run(d2, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range r1.Weights {
		if math.Abs(r1.Weights[k]-r2.Weights[k]) > 1e-12 {
			t.Fatal("weights differ after codec round trip")
		}
	}
}

func TestPublicEmptyDataset(t *testing.T) {
	if _, err := crh.Run(crh.NewBuilder().Build(), crh.Options{}); err != crh.ErrEmptyDataset {
		t.Fatalf("err = %v", err)
	}
}

func pearson(a, b []float64) float64 {
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var sxy, sxx, syy float64
	for i := range a {
		sxy += (a[i] - ma) * (b[i] - mb)
		sxx += (a[i] - ma) * (a[i] - ma)
		syy += (b[i] - mb) * (b[i] - mb)
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
