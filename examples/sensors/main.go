// Sensors: the paper's cyber-physical motivation — "faulty sensors that
// keep emanating wrong data" — plus two of the framework's extensions:
//
//   - Fine-grained source weights (Section 2.5, "Source weight
//     consistency"): a sensor can be accurate on one property and faulty
//     on another, so each property group gets its own weight per source.
//   - Semi-supervised pinning: a handful of entries verified by a
//     technician are pinned as known truths and sharpen every sensor's
//     reliability estimate.
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	crh "github.com/crhkit/crh"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	b := crh.NewBuilder()

	const hours = 200
	// Four sensor stations measure temperature (°C) and air quality
	// class each hour. Station D's thermometer drifted badly but its
	// air-quality sensor is the best on site; station A is the
	// opposite.
	type station struct {
		name    string
		tempStd float64
		airFlip float64
	}
	stations := []station{
		{"station-A", 0.3, 0.55},
		{"station-B", 2.0, 0.25},
		{"station-C", 3.0, 0.30},
		{"station-D", 9.0, 0.04},
	}
	airClasses := []string{"good", "moderate", "sensitive", "unhealthy", "hazardous"}

	gtTemp := make([]float64, hours)
	gtAir := make([]int, hours)
	for h := 0; h < hours; h++ {
		obj := fmt.Sprintf("hour-%03d", h)
		gtTemp[h] = 15 + 10*math.Sin(float64(h)/24*2*math.Pi) + rng.NormFloat64()*2
		gtAir[h] = rng.Intn(len(airClasses))
		for _, st := range stations {
			if err := b.ObserveFloat(st.name, obj, "temperature", gtTemp[h]+rng.NormFloat64()*st.tempStd); err != nil {
				log.Fatal(err)
			}
			air := gtAir[h]
			if rng.Float64() < st.airFlip {
				air = rng.Intn(len(airClasses))
			}
			if err := b.ObserveCat(st.name, obj, "air_quality", airClasses[air]); err != nil {
				log.Fatal(err)
			}
		}
	}
	d := b.Build()

	// A technician verified the first five hours on site: pin them.
	known := crh.NewTable(d)
	for h := 0; h < 5; h++ {
		known.SetAt(h, 0, crh.Float(gtTemp[h]))
		id, _ := d.Prop(1).CatID(airClasses[gtAir[h]])
		known.SetAt(h, 1, crh.Cat(id))
	}

	// Global weights (the default) vs per-property weights.
	global, err := crh.Run(d, crh.Options{KnownTruths: known})
	if err != nil {
		log.Fatal(err)
	}
	grouped, err := crh.Run(d, crh.Options{
		KnownTruths:    known,
		PropertyGroups: [][]int{{0}, {1}}, // temperature | air quality
	})
	if err != nil {
		log.Fatal(err)
	}

	// Score both against the withheld ground truth.
	gt := crh.NewTable(d)
	for h := 0; h < hours; h++ {
		gt.SetAt(h, 0, crh.Float(gtTemp[h]))
		id, _ := d.Prop(1).CatID(airClasses[gtAir[h]])
		gt.SetAt(h, 1, crh.Cat(id))
	}
	mg := crh.Evaluate(d, global.Truths, gt)
	mp := crh.Evaluate(d, grouped.Truths, gt)
	fmt.Println("one global weight per sensor (the consistency assumption):")
	fmt.Printf("  air-quality error rate %.4f, temperature MNAD %.4f\n", mg.ErrorRate, mg.MNAD)
	fmt.Println("per-property weights (fine-grained extension):")
	fmt.Printf("  air-quality error rate %.4f, temperature MNAD %.4f\n", mp.ErrorRate, mp.MNAD)

	fmt.Println("\nper-property reliability weights:")
	fmt.Printf("  %-11s %-12s %s\n", "sensor", "temperature", "air quality")
	for k := 0; k < d.NumSources(); k++ {
		fmt.Printf("  %-11s %-12.3f %.3f\n", d.SourceName(k),
			grouped.GroupWeights[0][k], grouped.GroupWeights[1][k])
	}
	fmt.Println("\nstation A tops the temperature column while station D tops air")
	fmt.Println("quality — a single global weight would have to split the difference.")
}
