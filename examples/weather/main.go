// Weather: the paper's motivating scenario — integrating weather
// forecasts from multiple platforms with mixed continuous (temperatures)
// and categorical (condition) properties.
//
// The example generates a month of simulated forecasts from nine sources
// of varying reliability (three platforms × three lead days, as in the
// paper's Section 3.2.1), then compares CRH against the naive
// voting/averaging strategy and shows the recovered source ranking.
//
// Run with:
//
//	go run ./examples/weather
package main

import (
	"fmt"
	"log"
	"sort"

	crh "github.com/crhkit/crh"
)

func main() {
	// Simulate the crawl: 20 cities × 32 days × 9 sources, ground truth
	// retained for evaluation only.
	d, gt := crh.GenerateWeather(crh.WeatherOptions{Seed: 7})
	fmt.Printf("dataset: %d sources, %d entries, %d observations\n",
		d.NumSources(), d.NumEntries(), d.NumObservations())

	// CRH: joint truth discovery over both data types.
	res, err := crh.Run(d, crh.Options{})
	if err != nil {
		log.Fatal(err)
	}
	crhM := crh.Evaluate(d, res.Truths, gt)

	// The naive strategy: majority voting for conditions, median for
	// temperatures — i.e., every source trusted equally. Implemented by
	// running the baselines from the comparison suite.
	var voteErr, medianNAD float64
	for _, m := range crh.Baselines() {
		switch m.Name() {
		case "Voting":
			truths, _ := m.Resolve(d)
			voteErr = crh.Evaluate(d, truths, gt).ErrorRate
		case "Median":
			truths, _ := m.Resolve(d)
			medianNAD = crh.Evaluate(d, truths, gt).MNAD
		}
	}

	fmt.Printf("\n%-22s %-12s %s\n", "method", "error rate", "MNAD")
	fmt.Printf("%-22s %-12.4f %.4f\n", "CRH", crhM.ErrorRate, crhM.MNAD)
	fmt.Printf("%-22s %-12.4f %s\n", "majority voting", voteErr, "-")
	fmt.Printf("%-22s %-12s %.4f\n", "median", "-", medianNAD)

	// Rank the sources by estimated reliability and compare with the
	// ground-truth ranking.
	trueRel := crh.TrueReliability(d, gt)
	type ranked struct {
		name          string
		weight, truth float64
	}
	rs := make([]ranked, d.NumSources())
	for k := range rs {
		rs[k] = ranked{d.SourceName(k), res.Weights[k], trueRel[k]}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].weight > rs[j].weight })
	fmt.Println("\nsources by estimated reliability (true reliability in parens):")
	for _, r := range rs {
		fmt.Printf("  %-20s weight %.3f  (true %.3f)\n", r.name, r.weight, r.truth)
	}
}
