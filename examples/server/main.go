// Server example: truth discovery as a service. Launches the crhd
// binary (via go run) on an ephemeral port — the server subsystem is
// private to cmd/crhd, so clients, this example included, speak only its
// HTTP API — then drives it as a client would:
//
//  1. create a dataset from the TSV codec format,
//  2. resolve it with CRH and with a baseline,
//  3. fire concurrent identical resolves — the server coalesces them
//     into a single computation,
//  4. live-ingest new observations (advancing the warm incremental
//     I-CRH state) and resolve again at the new version,
//  5. read /v1/stats: cache hit rate, coalesce counters, latency
//     histogram.
//
// Run with:
//
//	go run ./examples/server
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

const weatherTSV = `P	high_temp	continuous
P	condition	categorical
V	nyc/07-01	high_temp	wunderground	84
V	nyc/07-01	high_temp	hamweather	79
V	nyc/07-01	high_temp	accuview	85
V	nyc/07-01	condition	wunderground	sunny
V	nyc/07-01	condition	hamweather	rain
V	nyc/07-01	condition	accuview	sunny
V	bos/07-01	high_temp	wunderground	78
V	bos/07-01	high_temp	hamweather	71
V	bos/07-01	high_temp	accuview	79
V	bos/07-01	condition	wunderground	cloudy
V	bos/07-01	condition	hamweather	cloudy
V	bos/07-01	condition	accuview	storm
`

func main() {
	// 0. Boot crhd on an ephemeral port and wait for its listen line.
	cmd := exec.Command("go", "run", "github.com/crhkit/crh/cmd/crhd",
		"-addr", "127.0.0.1:0", "-cache", "64", "-decay", "0.9")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	defer stop(cmd)
	base := awaitListen(stderr)
	fmt.Println("crhd serving on", base)

	// 1. Create a dataset from the TSV codec.
	post("POST", base+"/v1/datasets/weather", weatherTSV)
	fmt.Println("\n-- created dataset 'weather'")
	show(get(base + "/v1/datasets/weather"))

	// 2. Resolve with CRH defaults, then with the Voting baseline.
	fmt.Println("\n-- CRH resolve")
	show(post("POST", base+"/v1/datasets/weather/resolve", `{}`))
	fmt.Println("\n-- Voting baseline (same registry as crh.Baselines)")
	show(post("POST", base+"/v1/datasets/weather/resolve", `{"method":"Voting"}`))

	// 3. Concurrent identical requests coalesce into one computation.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post("POST", base+"/v1/datasets/weather/resolve", `{"options":{"weights":"exp-sum"}}`)
		}()
	}
	wg.Wait()
	fmt.Println("\n-- 6 concurrent identical resolves fired (see coalesce/cache stats below)")

	// 4. Live ingest: a new day of observations arrives. The registry
	// appends it, bumps the version, and advances warm I-CRH state;
	// resolves on the old version were never blocked.
	post("POST", base+"/v1/datasets/weather/observations", `{"observations":[
		{"source":"wunderground","object":"nyc/07-02","property":"high_temp","value":88},
		{"source":"hamweather","object":"nyc/07-02","property":"high_temp","value":82},
		{"source":"accuview","object":"nyc/07-02","property":"high_temp","value":87},
		{"source":"wunderground","object":"nyc/07-02","property":"condition","value":"sunny"},
		{"source":"hamweather","object":"nyc/07-02","property":"condition","value":"storm"},
		{"source":"accuview","object":"nyc/07-02","property":"condition","value":"sunny"}
	]}`)
	fmt.Println("\n-- ingested 6 observations; resolve at the new version")
	show(post("POST", base+"/v1/datasets/weather/resolve", `{}`))

	fmt.Println("\n-- warm incremental (I-CRH) state, maintained chunk by chunk")
	show(get(base + "/v1/datasets/weather/incremental"))

	// 5. Operational stats.
	fmt.Println("\n-- /v1/stats")
	show(get(base + "/v1/stats"))
}

// awaitListen scans crhd's stderr for the listen line, returns the base
// URL, and keeps draining the pipe in the background.
func awaitListen(stderr io.Reader) string {
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "crhd: listening on "); ok {
			go func() {
				for sc.Scan() {
				}
			}()
			return "http://" + strings.TrimSpace(addr)
		}
	}
	log.Fatalf("crhd exited before listening (is the go tool on PATH?): %v", sc.Err())
	return ""
}

// stop shuts crhd down: interrupt (which go run forwards) for a
// graceful exit, then a hard kill if it lingers.
func stop(cmd *exec.Cmd) {
	_ = cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { _ = cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		_ = cmd.Process.Kill()
		<-done
	}
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return b
}

func post(method, url, body string) []byte {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d %s", method, url, resp.StatusCode, b)
	}
	return b
}

// show pretty-prints a JSON response.
func show(raw []byte) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		fmt.Println(string(raw))
		return
	}
	out, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(out))
}
