// MapReduce: parallel CRH (Section 2.7) — truth discovery as iterated
// MapReduce jobs over (entry, value, source) tuples, for data sets that
// outgrow one machine.
//
// The example fuses a large simulated census data set on the in-process
// engine, verifies the result matches serial CRH, and prints the per-job
// statistics plus the calibrated cluster model's estimate of what the
// same job sequence would cost on a Hadoop deployment.
//
// Run with:
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"

	crh "github.com/crhkit/crh"
)

func main() {
	// 4,000 census rows × 14 properties × 8 sources = 448k observations.
	d, gt := crh.GenerateAdult(crh.UCIOptions{Seed: 4, Rows: 4000})
	fmt.Printf("dataset: %d observations from %d sources\n", d.NumObservations(), d.NumSources())

	par, err := crh.RunParallel(d, crh.ParallelOptions{Reducers: 10})
	if err != nil {
		log.Fatal(err)
	}
	serial, err := crh.Run(d, crh.Options{})
	if err != nil {
		log.Fatal(err)
	}

	mp := crh.Evaluate(d, par.Truths, gt)
	ms := crh.Evaluate(d, serial.Truths, gt)
	fmt.Printf("\nparallel CRH: error rate %.4f, MNAD %.4f (%d iterations)\n", mp.ErrorRate, mp.MNAD, par.Iterations)
	fmt.Printf("serial CRH:   error rate %.4f, MNAD %.4f\n", ms.ErrorRate, ms.MNAD)

	fmt.Println("\nexecuted MapReduce jobs:")
	for _, st := range par.Jobs {
		fmt.Printf("  %-14s %8d records in, %8d pairs shuffled, %6d keys reduced (%d mappers, %d reducers)\n",
			st.Name, st.InputRecords, st.ShuffledPairs, st.ReduceKeys, st.Mappers, st.Reducers)
	}
	fmt.Printf("\nin-process wall time: %v\n", par.WallTime.Round(1000000))
	fmt.Printf("modeled Hadoop-cluster time for the same jobs: %v\n", par.SimulatedTime.Round(1000000000))
	fmt.Println("(the model is calibrated against the paper's Table 6 cluster;")
	fmt.Println(" note the weight jobs shuffle far less than the truth jobs — the combiner at work)")
}
