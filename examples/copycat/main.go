// Copycat: source-dependence detection — the future work the paper
// explicitly defers ("we do not consider source dependency in this paper
// but leave it for future work"), implemented as the AccuCopy method.
//
// The scenario is the classic dependence trap: two independent, mostly
// accurate encyclopedias; one sloppy aggregator; and three mirror sites
// that copy the aggregator verbatim — including its mistakes. By raw
// votes the mirror block wins 4-to-2 whenever the aggregator is wrong,
// fooling every independence-assuming method. Copy detection collapses
// the block to roughly one vote.
//
// Run with:
//
//	go run ./examples/copycat
package main

import (
	"fmt"
	"math/rand"

	crh "github.com/crhkit/crh"
)

func main() {
	rng := rand.New(rand.NewSource(2009)) // the year of the AccuCopy paper
	b := crh.NewBuilder()

	const nObj = 500
	capitals := []string{"Springfield", "Shelbyville", "Ogdenville", "North Haverbrook", "Brockway", "Capital City"}

	gt := make([]string, nObj)
	aggregatorClaims := make([]string, nObj)
	for i := 0; i < nObj; i++ {
		obj := fmt.Sprintf("region-%03d", i)
		gt[i] = capitals[rng.Intn(len(capitals))]

		// The aggregator errs 30% of the time.
		aggregatorClaims[i] = gt[i]
		if rng.Float64() < 0.30 {
			aggregatorClaims[i] = capitals[rng.Intn(len(capitals))]
		}
		b.ObserveCat("aggregator", obj, "capital", aggregatorClaims[i])

		// Two independent encyclopedias err 12% of the time, each in
		// its own way.
		for _, src := range []string{"encyclo-A", "encyclo-B"} {
			claim := gt[i]
			if rng.Float64() < 0.12 {
				claim = capitals[rng.Intn(len(capitals))]
			}
			b.ObserveCat(src, obj, "capital", claim)
		}

		// Three mirrors copy the aggregator, mistakes included.
		for m := 1; m <= 3; m++ {
			b.ObserveCat(fmt.Sprintf("mirror-%d", m), obj, "capital", aggregatorClaims[i])
		}
	}
	d := b.Build()
	truth := crh.NewTable(d)
	for i := 0; i < nObj; i++ {
		id, _ := d.Prop(0).CatID(gt[i])
		truth.SetAt(i, 0, crh.Cat(id))
	}

	// Resolve with the independence-assuming suite and with copy
	// detection.
	fmt.Printf("%-22s %s\n", "method", "error rate")
	show := func(name string, m crh.Method) {
		truths, _ := m.Resolve(d)
		fmt.Printf("%-22s %.4f\n", name, crh.Evaluate(d, truths, truth).ErrorRate)
	}
	for _, m := range crh.Baselines() {
		switch m.Name() {
		case "Voting", "AccuSim", "TruthFinder":
			show(m.Name(), m)
		}
	}
	crhRes, err := crh.Run(d, crh.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-22s %.4f\n", "CRH", crh.Evaluate(d, crhRes.Truths, truth).ErrorRate)
	show("AccuCopy", crh.AccuCopyMethod())

	fmt.Println("\nevery independence-assuming method tracks the mirror block's ~30%")
	fmt.Println("error; AccuCopy detects the copies, discounts their votes, and")
	fmt.Println("recovers the truth from the two honest encyclopedias.")
}
