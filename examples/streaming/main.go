// Streaming: incremental CRH (I-CRH) over data arriving day by day — the
// paper's Section 2.6 scenario where "it is impractical to wait until all
// the data are collected to estimate source reliability".
//
// A StreamProcessor consumes one chunk at a time: each chunk's truths are
// produced immediately from the weights learned so far, and the weights
// are refreshed from decayed accumulated distances. The example shows the
// weight trajectory stabilizing after a few days and compares the final
// result with batch CRH over the same data.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	crh "github.com/crhkit/crh"
)

func main() {
	d, gt := crh.GenerateWeather(crh.WeatherOptions{Seed: 99})

	// Split the month into daily chunks, as a crawler would deliver
	// them.
	chunks, err := crh.ChunksByWindow(d, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Decay α = 0.8: recent days matter more for source weights.
	proc := crh.NewStreamProcessor(d.NumSources(), crh.StreamOptions{Decay: 0.8, DecaySet: true})

	fmt.Println("day-by-day processing (weight of best and worst source):")
	for _, ch := range chunks {
		truths := proc.Process(ch.Data)
		ws := proc.Weights()
		best, worst := ws[0], ws[0]
		for _, w := range ws {
			if w > best {
				best = w
			}
			if w < worst {
				worst = w
			}
		}
		fmt.Printf("  day %2d: %4d entries resolved, weight spread [%.2f, %.2f]\n",
			ch.Timestamp, truths.Count(), worst, best)
	}

	// The same stream through the one-call API, evaluated against the
	// withheld ground truth and compared with batch CRH.
	inc, err := crh.RunStream(d, 1, crh.StreamOptions{Decay: 0.8, DecaySet: true})
	if err != nil {
		log.Fatal(err)
	}
	batch, err := crh.Run(d, crh.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mi := crh.Evaluate(d, inc.Truths, gt)
	mb := crh.Evaluate(d, batch.Truths, gt)
	fmt.Printf("\n%-8s error rate %.4f  MNAD %.4f   (single pass)\n", "I-CRH", mi.ErrorRate, mi.MNAD)
	fmt.Printf("%-8s error rate %.4f  MNAD %.4f   (iterates over all data)\n", "CRH", mb.ErrorRate, mb.MNAD)
	fmt.Println("\nI-CRH trades a little accuracy for one-pass processing —")
	fmt.Println("exactly the Table 5 tradeoff from the paper.")
}
