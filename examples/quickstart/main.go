// Quickstart: resolve conflicts among three sources reporting a patient's
// record — the heterogeneous-data scenario from the paper's introduction
// (integrating health record databases with mixed-type properties).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	crh "github.com/crhkit/crh"
)

func main() {
	b := crh.NewBuilder()

	// Three hospital databases describe the same two patients. They
	// disagree: db-south has stale, sloppy records.
	type obs struct {
		source, patient string
		age, weight     float64
		bloodType, city string
	}
	records := []obs{
		{"db-north", "alice", 42, 61.5, "A+", "Springfield"},
		{"db-east", "alice", 42, 62.0, "A+", "Springfield"},
		{"db-south", "alice", 24, 80.0, "O-", "Shelbyville"},
		{"db-north", "bob", 57, 83.1, "B+", "Ogdenville"},
		{"db-east", "bob", 57, 83.4, "B+", "Ogdenville"},
		{"db-south", "bob", 57, 70.0, "AB+", "Ogdenville"},
	}
	for _, r := range records {
		must(b.ObserveFloat(r.source, r.patient, "age", r.age))
		must(b.ObserveFloat(r.source, r.patient, "weight", r.weight))
		must(b.ObserveCat(r.source, r.patient, "blood_type", r.bloodType))
		must(b.ObserveCat(r.source, r.patient, "city", r.city))
	}
	d := b.Build()

	// One call resolves every entry and rates every source. The zero
	// Options value selects the paper's defaults: weighted median for
	// continuous properties, weighted voting for categorical ones.
	res, err := crh.Run(d, crh.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("resolved records:")
	for i := 0; i < d.NumObjects(); i++ {
		fmt.Printf("  %s:", d.ObjectName(i))
		for m := 0; m < d.NumProps(); m++ {
			p := d.Prop(m)
			v, ok := res.Truths.GetAt(i, m)
			if !ok {
				continue
			}
			if p.Type == crh.Categorical {
				fmt.Printf("  %s=%s", p.Name, p.CatName(int(v.C)))
			} else {
				fmt.Printf("  %s=%g", p.Name, v.F)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nsource reliability weights (higher = more reliable):")
	for k := 0; k < d.NumSources(); k++ {
		fmt.Printf("  %-9s %.3f\n", d.SourceName(k), res.Weights[k])
	}
	fmt.Printf("\nconverged in %d iterations\n", res.Iterations)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
