// Package crh is a Go implementation of the CRH framework — Conflict
// Resolution on Heterogeneous data — from "Resolving Conflicts in
// Heterogeneous Data by Truth Discovery and Source Reliability Estimation"
// (SIGMOD 2014) and its extended version "Conflicts to Harmony" (TKDE
// 2016).
//
// Given observations about the same objects from multiple conflicting
// sources — mixing continuous and categorical properties, with missing
// values — CRH jointly estimates:
//
//   - a truth table: the most trustworthy value for every entry, and
//   - source weights: each source's reliability degree,
//
// by minimizing the weighted deviation between truths and observations,
//
//	min_{X*,W}  Σ_k w_k Σ_i Σ_m d_m(v*_im, v^k_im)   s.t. δ(W) = 1,
//
// with type-appropriate loss functions d_m and an iterative two-step
// solver. The package also provides the incremental variant (I-CRH) for
// streaming data, a MapReduce-parallel variant for large data sets, the
// ten baseline methods the paper compares against, and the full
// experiment harness reproducing the paper's tables and figures.
//
// # Quick start
//
//	b := crh.NewBuilder()
//	b.ObserveFloat("wunderground", "nyc/2014-07-01", "high_temp", 84)
//	b.ObserveFloat("hamweather", "nyc/2014-07-01", "high_temp", 79)
//	b.ObserveCat("wunderground", "nyc/2014-07-01", "condition", "sunny")
//	b.ObserveCat("hamweather", "nyc/2014-07-01", "condition", "rain")
//	res, err := crh.Run(b.Build(), crh.Options{})
//	// res.Truths holds the resolved values, res.Weights the reliability.
//
// See the examples directory for complete programs.
package crh

import (
	"io"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/obs"
)

// Core data model. These alias the internal implementation so the whole
// library shares one representation.
type (
	// Dataset is an immutable multi-source observation matrix: K sources
	// × N objects × M typed properties, with missing values. Build one
	// with a Builder or decode one with ReadDataset.
	Dataset = data.Dataset
	// Builder assembles a Dataset from observation triples.
	Builder = data.Builder
	// Table maps entries (object, property pairs) to values; used for
	// inferred truths and for ground truths.
	Table = data.Table
	// Value is one typed observation payload.
	Value = data.Value
	// Property describes one typed feature of the objects.
	Property = data.Property
	// Type is a property's data type.
	Type = data.Type
)

// Property data types.
const (
	// Continuous marks real-valued properties (aggregated by weighted
	// median or mean).
	Continuous = data.Continuous
	// Categorical marks discrete-valued properties (aggregated by
	// weighted voting).
	Categorical = data.Categorical
)

// NewBuilder returns an empty dataset builder.
func NewBuilder() *Builder { return data.NewBuilder() }

// NewTable returns an empty table shaped like d — e.g., for assembling a
// ground truth to Evaluate against.
func NewTable(d *Dataset) *Table { return data.NewTableFor(d) }

// Float constructs a continuous Value.
func Float(f float64) Value { return data.Float(f) }

// Cat constructs a categorical Value from a dictionary index.
func Cat(id int) Value { return data.Cat(id) }

// Options configures a CRH run. The zero value selects the paper's
// defaults: weighted-median aggregation for continuous properties
// (normalized absolute loss), weighted voting for categorical properties
// (0-1 loss), and max-normalized negative-log weight assignment. See
// AbsoluteLoss, SquaredLoss, ZeroOneLoss, ProbabilisticLoss and the
// *Weights constructors for the pluggable pieces.
type Options = core.Config

// Result is the output of a CRH run: the truth table, source weights, and
// convergence diagnostics.
type Result = core.Result

// SolverTrace receives per-iteration solver telemetry when set as
// Options.Trace: objective value, per-phase wall time, weight-vector
// summary, and truth-change count. See NewJSONLTrace for a ready-made
// sink and TraceFunc to adapt a plain function.
type SolverTrace = obs.SolverTrace

// IterationTrace is one solver iteration's telemetry record, as
// delivered to a SolverTrace (and serialized by NewJSONLTrace, one JSON
// object per line).
type IterationTrace = obs.IterationTrace

// TraceFunc adapts a function to the SolverTrace interface.
type TraceFunc = obs.TraceFunc

// JSONLTrace is a SolverTrace writing JSON Lines; see NewJSONLTrace.
type JSONLTrace = obs.JSONLTrace

// NewJSONLTrace returns a SolverTrace that appends one JSON record per
// iteration to w — the sink behind cmd/crh's -trace flag. The trace
// schema is documented in docs/OBSERVABILITY.md.
func NewJSONLTrace(w io.Writer) *obs.JSONLTrace { return obs.NewJSONLTrace(w) }

// Pool is a reusable solver worker pool. One pool may be shared by any
// number of concurrent Run calls (set it as Options.Pool); its size then
// bounds total solver concurrency across them, while each run's
// Options.Workers bounds that run's share. Sharing a pool never changes
// results: solver output is bit-for-bit identical for every worker
// count. See NewPool and docs/PARALLEL.md.
type Pool = core.Pool

// NewPool starts a worker pool with the given number of goroutines
// (0 selects GOMAXPROCS). Call Close to release them.
func NewPool(workers int) *Pool { return core.NewPool(workers) }

// ErrEmptyDataset is returned by Run for datasets with no sources or
// entries.
var ErrEmptyDataset = core.ErrEmptyDataset

// Run executes the CRH framework (Algorithm 1) on a dataset: it
// iteratively alternates source-weight estimation and truth computation
// until the objective converges. Deterministic for a given dataset and
// options, and bit-for-bit identical for every Options.Workers setting
// (the parallel engine's determinism contract; see docs/PARALLEL.md).
func Run(d *Dataset, opts Options) (*Result, error) { return core.Run(d, opts) }

// Metrics holds the paper's evaluation measures: ErrorRate over
// categorical entries and MNAD (mean normalized absolute distance) over
// continuous entries.
type Metrics = eval.Metrics

// Evaluate scores a truth table against a (possibly partial) ground
// truth. Only entries present in gt are scored.
func Evaluate(d *Dataset, output, gt *Table) Metrics { return eval.Evaluate(d, output, gt) }

// TrueReliability computes each source's ground-truth reliability degree
// in [0, 1]: accuracy on categorical entries combined with closeness on
// continuous entries.
func TrueReliability(d *Dataset, gt *Table) []float64 { return eval.TrueReliability(d, gt) }

// Method is a conflict-resolution algorithm: it resolves a dataset into a
// truth table plus optional per-source reliability scores. CRH itself,
// and every baseline, satisfies this interface.
type Method = baseline.Method

// Baselines returns fresh instances of the ten comparison methods from
// the paper (Mean, Median, GTM, Voting, Investment, PooledInvestment,
// 2-Estimates, 3-Estimates, TruthFinder, AccuSim), each with its authors'
// recommended parameters.
func Baselines() []Method { return baseline.All() }

// ListBaselines returns the names of every registered conflict-resolution
// method beyond CRH itself: the ten Table 2 baselines plus AccuCopy. The
// names are the ones accepted by BaselineByName, cmd/crh's -method flag,
// and crhd's resolve endpoint, so every consumer shares one registry.
func ListBaselines() []string { return baseline.Names() }

// BaselineByName returns a fresh instance of the registered method with
// the given name (one of ListBaselines), or false when no such method
// exists.
func BaselineByName(name string) (Method, bool) { return baseline.ByName(name) }

// WriteDataset encodes a dataset (and optional ground truth, which may be
// nil) to w in the library's line-oriented TSV format.
func WriteDataset(w io.Writer, d *Dataset, gt *Table) error { return data.Encode(w, d, gt) }

// ReadDataset decodes a dataset (and ground truth, nil when the input has
// none) from the TSV format produced by WriteDataset.
func ReadDataset(r io.Reader) (*Dataset, *Table, error) { return data.Decode(r) }

// AccuCopyMethod returns the dependence-aware conflict-resolution method —
// the full model of Dong et al. (VLDB 2009) with Bayesian copy detection,
// which the paper's comparison deliberately excludes and defers to future
// work. Use it when sources may copy from each other: a block of copiers
// is collapsed to roughly one vote instead of outvoting honest sources.
func AccuCopyMethod() Method { return baseline.AccuCopy{} }
