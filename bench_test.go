package crh_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each executes the corresponding experiment end to end at
// small scale and reports its cost), plus micro-benchmarks of the moving
// parts (solver, incremental processor, MapReduce engine, baselines).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The rendered tables themselves come from cmd/crhbench; these benchmarks
// exist so the cost of every experiment is tracked alongside the code.

import (
	"io"
	"testing"

	crh "github.com/crhkit/crh"
	"github.com/crhkit/crh/internal/experiments"
)

// benchExperiment runs one experiment per iteration, discarding output.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Run(experiments.ScaleSmall).Render(io.Discard)
	}
}

// One benchmark per paper table/figure.

func BenchmarkTable1DatasetStats(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2RealWorld(b *testing.B)          { benchExperiment(b, "table2") }
func BenchmarkFig1SourceReliability(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkTable3SimulatedStats(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4Simulated(b *testing.B)          { benchExperiment(b, "table4") }
func BenchmarkFig2ReliableSourcesAdult(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3ReliableSourcesBank(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkTable5Incremental(b *testing.B)        { benchExperiment(b, "table5") }
func BenchmarkFig4WeightTrajectories(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5TimeWindow(b *testing.B)           { benchExperiment(b, "fig5") }
func BenchmarkFig6DecayRate(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkTable6Scalability(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkFig7ScalingAxes(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8Reducers(b *testing.B)             { benchExperiment(b, "fig8") }

// Component micro-benchmarks.

// BenchmarkCRHWeather measures one batch CRH fusion of the paper-scale
// weather data set (9 sources, 1,920 entries, ≈16k observations).
func BenchmarkCRHWeather(b *testing.B) {
	d, _ := crh.GenerateWeather(crh.WeatherOptions{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crh.Run(d, crh.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRHAdult measures batch CRH on growing Adult-style inputs —
// the linearity claim of Section 2.5 ("running time is linear with
// respect to the total number of observations").
func BenchmarkCRHAdult(b *testing.B) {
	for _, rows := range []int{1000, 2000, 4000, 8000} {
		d, _ := crh.GenerateAdult(crh.UCIOptions{Seed: 2, Rows: rows})
		b.Run(byObs(d.NumObservations()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := crh.Run(d, crh.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCRHWeatherTraced measures the same fusion as
// BenchmarkCRHWeather with a JSONL iteration trace attached — compare
// the two to bound the cost of solver tracing (the nil-hook path in
// BenchmarkCRHWeather is the ≤2%-overhead reference).
func BenchmarkCRHWeatherTraced(b *testing.B) {
	d, _ := crh.GenerateWeather(crh.WeatherOptions{Seed: 1})
	opts := crh.Options{Trace: crh.NewJSONLTrace(io.Discard)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crh.Run(d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkICRHWeather measures the one-pass incremental variant on the
// same weather workload as BenchmarkCRHWeather — the Table 5 speedup.
func BenchmarkICRHWeather(b *testing.B) {
	d, _ := crh.GenerateWeather(crh.WeatherOptions{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crh.RunStream(d, 1, crh.StreamOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelCRH measures the MapReduce fusion end to end.
func BenchmarkParallelCRH(b *testing.B) {
	d, _ := crh.GenerateAdult(crh.UCIOptions{Seed: 3, Rows: 2000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crh.RunParallel(d, crh.ParallelOptions{Reducers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines measures each comparison method on the weather data
// set, the workload of Table 2's first column.
func BenchmarkBaselines(b *testing.B) {
	d, _ := crh.GenerateWeather(crh.WeatherOptions{Seed: 1})
	for _, m := range crh.Baselines() {
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Resolve(d)
			}
		})
	}
}

func byObs(n int) string {
	switch {
	case n >= 1_000_000:
		return "obs=" + itoa(n/1_000_000) + "M"
	case n >= 1_000:
		return "obs=" + itoa(n/1_000) + "k"
	default:
		return "obs=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblations measures the design choices DESIGN.md calls out, on
// the weather workload: each variant reports its runtime plus its
// accuracy (errRate / MNAD) as custom metrics, so both the cost and the
// quality impact of every choice are tracked.
func BenchmarkAblations(b *testing.B) {
	d, gt := crh.GenerateWeather(crh.WeatherOptions{Seed: 1})
	variants := []struct {
		name string
		opts crh.Options
	}{
		{"default/median+vote+expmax", crh.Options{}},
		{"loss/weighted-mean", crh.Options{ContinuousLoss: crh.SquaredLoss()}},
		{"loss/probabilistic-categorical", crh.Options{CategoricalLoss: crh.ProbabilisticLoss()}},
		{"loss/ensemble", crh.Options{ContinuousLoss: crh.EnsembleLoss(nil, crh.AbsoluteLoss(), crh.SquaredLoss())}},
		{"loss/huber", crh.Options{ContinuousLoss: crh.HuberLoss(0)}},
		{"weights/exp-sum", crh.Options{Scheme: crh.ExpSumWeights()}},
		{"weights/best-source", crh.Options{Scheme: crh.BestSourceWeights()}},
		{"weights/top-3", crh.Options{Scheme: crh.TopJWeights(3)}},
		{"norm/no-property-normalization", crh.Options{DisablePropNormalization: true}},
		{"norm/no-count-normalization", crh.Options{DisableCountNormalization: true}},
		{"weights/per-property-groups", crh.Options{PropertyGroups: [][]int{{0, 1}, {2}}}},
		{"weights/catd-confidence-aware", crh.Options{Scheme: crh.CATDWeights(0)}},
		{"parallelism/4-workers", crh.Options{Workers: 4}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var last *crh.Result
			for i := 0; i < b.N; i++ {
				res, err := crh.Run(d, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			m := crh.Evaluate(d, last.Truths, gt)
			b.ReportMetric(m.ErrorRate, "errRate")
			b.ReportMetric(m.MNAD, "MNAD")
			b.ReportMetric(float64(last.Iterations), "iters")
		})
	}
}
