package crh

import (
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// ContinuousLoss measures deviation on real-valued properties and defines
// the corresponding weighted aggregation rule (Section 2.4.2 of the
// paper). Implementations beyond the built-ins can be supplied — any
// Bregman divergence yields a convergent configuration.
type ContinuousLoss = loss.Continuous

// CategoricalLoss measures deviation on discrete-valued properties and
// defines the corresponding weighted aggregation rule (Section 2.4.1).
type CategoricalLoss = loss.Categorical

// WeightScheme maps per-source aggregated losses to source weights — the
// regularization choice δ(W) of Section 2.3.
type WeightScheme = reg.Scheme

// AbsoluteLoss returns the normalized absolute-deviation loss (Eq 15),
// whose truth update is the weighted median (Eq 16) — robust to outliers
// and the paper's default for continuous data.
func AbsoluteLoss() ContinuousLoss { return loss.NormalizedAbsolute{} }

// SquaredLoss returns the normalized squared loss (Eq 13), whose truth
// update is the weighted mean (Eq 14) — efficient but outlier-sensitive.
func SquaredLoss() ContinuousLoss { return loss.NormalizedSquared{} }

// HuberLoss returns the Huber loss: quadratic within delta entry-spreads
// of the truth and linear beyond — a robust middle ground between
// SquaredLoss (efficient, outlier-sensitive) and AbsoluteLoss (robust,
// less efficient). delta 0 selects the classic 1.345. The truth update is
// computed by iteratively reweighted least squares at a robust (MAD)
// scale.
func HuberLoss(delta float64) ContinuousLoss { return loss.Huber{Delta: delta} }

// BregmanLoss returns a continuous loss built from an arbitrary Bregman
// divergence with generator phi and derivative grad; the truth update is
// the weighted mean for every generator. name labels the loss in reports.
func BregmanLoss(name string, phi, grad func(float64) float64) ContinuousLoss {
	return loss.Bregman{Generator: phi, Gradient: grad, LossName: name}
}

// EnsembleLoss combines several continuous losses into one ("the
// framework can even be adapted to take the ensemble of multiple loss
// functions for a more robust loss computation"): deviations and truth
// updates are weighted averages of the members'. memberWeights may be nil
// for a uniform blend.
func EnsembleLoss(memberWeights []float64, members ...ContinuousLoss) ContinuousLoss {
	return loss.EnsembleContinuous{Members: members, MemberWeights: memberWeights}
}

// ZeroOneLoss returns the 0-1 loss (Eq 8), whose truth update is weighted
// voting (Eq 9) — the paper's default for categorical data.
func ZeroOneLoss() CategoricalLoss { return loss.ZeroOne{} }

// ProbabilisticLoss returns the squared loss over one-hot index vectors
// (Eq 10-12): the truth update is a weighted mean of probability vectors,
// giving a soft decision at higher space cost.
func ProbabilisticLoss() CategoricalLoss { return loss.SquaredProb{} }

// EditDistanceLoss returns a categorical loss for string-like values: the
// deviation is length-normalized Levenshtein distance and the truth update
// is the weighted medoid. Useful when near-miss strings (e.g., gate "B12"
// vs "B-12") should be penalized less than unrelated values.
func EditDistanceLoss() CategoricalLoss { return loss.EditDistance{} }

// ExpMaxWeights returns the paper's default weight assignment: the
// exp-regularized scheme of Eq(4) with the max-of-losses normalization
// from Section 2.3, which spreads source weights furthest apart:
//
//	w_k = −log(L_k / max_k' L_k')
func ExpMaxWeights() WeightScheme { return reg.ExpMax{} }

// ExpSumWeights returns the sum-normalized variant — the literal optimum
// of Eq(4)-(5):
//
//	w_k = −log(L_k / Σ_k' L_k')
func ExpSumWeights() WeightScheme { return reg.ExpSum{} }

// BestSourceWeights returns the L^p-norm source-selection scheme of Eq(6):
// all weight concentrates on the single source with the lowest loss.
func BestSourceWeights() WeightScheme { return reg.BestSource{} }

// TopJWeights returns the integer-constrained source selection of Eq(7):
// the j lowest-loss sources get weight 1 and the rest 0.
func TopJWeights(j int) WeightScheme { return reg.TopJ{J: j} }

// CATDWeights returns the confidence-aware weight scheme for long-tail
// data (Li et al., VLDB 2015 — the follow-up work the paper cites as
// [23]): each source's inverse-loss weight is scaled by the χ²(α/2, n)
// lower quantile of its claim count n, so sources with few observations
// are discounted no matter how lucky their record looks. alpha is the
// significance level; 0 selects 0.05.
func CATDWeights(alpha float64) WeightScheme { return reg.CATD{Alpha: alpha} }
