package synth

import (
	"math"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/stats"
)

func TestRoundTo(t *testing.T) {
	cases := []struct{ v, unit, want float64 }{
		{3.7, 1, 4},
		{3.4, 1, 3},
		{-3.7, 1, -4},
		{2.26, 0.5, 2.5},
		{7.123, 0, 7.123},
	}
	for _, c := range cases {
		if got := roundTo(c.v, c.unit); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("roundTo(%v,%v) = %v, want %v", c.v, c.unit, got, c.want)
		}
	}
}

func TestGenerateWorldRespectsSchema(t *testing.T) {
	schema := Schema{
		Name: "t",
		Cols: []Col{
			{Name: "u", Type: data.Continuous, Dist: Uniform, Min: 0, Max: 10, Round: 1},
			{Name: "n", Type: data.Continuous, Dist: Normal, Mean: 100, Std: 5, Min: 80, Max: 120},
			{Name: "l", Type: data.Continuous, Dist: LogNormal, Mean: 2, Std: 0.5, Min: 0, Max: 1000},
			{Name: "c", Type: data.Categorical, Cats: []string{"a", "b"}, CatW: []float64{9, 1}},
		},
	}
	w := GenerateWorld(schema, 2000, 1)
	if w.NumObjects() != 2000 {
		t.Fatal("row count")
	}
	var aCount int
	for _, row := range w.Rows {
		if v := row[0].F; v < 0 || v > 10 || v != math.Trunc(v) {
			t.Fatalf("uniform col value %v out of contract", v)
		}
		if v := row[1].F; v < 80 || v > 120 {
			t.Fatalf("normal col value %v outside clamp", v)
		}
		if v := row[2].F; v < 0 || v > 1000 {
			t.Fatalf("lognormal col value %v outside clamp", v)
		}
		if row[3].C == 0 {
			aCount++
		}
	}
	// Weighted categories: "a" has weight 9 of 10.
	if frac := float64(aCount) / 2000; frac < 0.8 || frac > 0.98 {
		t.Fatalf("category-a fraction = %v, want ≈0.9", frac)
	}
	// Normal column mean should land near 100.
	var sum float64
	for _, row := range w.Rows {
		sum += row[1].F
	}
	if mean := sum / 2000; math.Abs(mean-100) > 1 {
		t.Fatalf("normal col mean = %v", mean)
	}
}

func TestGenerateWorldDeterministic(t *testing.T) {
	schema := AdultSchema()
	w1 := GenerateWorld(schema, 50, 7)
	w2 := GenerateWorld(schema, 50, 7)
	for i := range w1.Rows {
		for m := range w1.Rows[i] {
			if w1.Rows[i][m] != w2.Rows[i][m] {
				t.Fatal("worlds differ for same seed")
			}
		}
	}
	w3 := GenerateWorld(schema, 50, 8)
	same := true
	for i := range w1.Rows {
		for m := range w1.Rows[i] {
			if w1.Rows[i][m] != w3.Rows[i][m] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestCorruptNoiseScalesWithGamma(t *testing.T) {
	schema := Schema{
		Name: "g",
		Cols: []Col{
			{Name: "x", Type: data.Continuous, Dist: Normal, Mean: 0, Std: 10, Min: -1000, Max: 1000},
			{Name: "c", Type: data.Categorical, Cats: []string{"a", "b", "c", "d"}},
		},
	}
	w := GenerateWorld(schema, 1500, 3)
	profiles := []SourceProfile{
		{Name: "lo", Gamma: 0.1},
		{Name: "hi", Gamma: 2.0},
	}
	d, gt := Corrupt(w, profiles, CorruptConfig{Seed: 4})
	// Continuous: the noisy source must deviate more.
	var dev [2]float64
	var flips [2]int
	var n [2]int
	gt.ForEach(func(e int, want data.Value) {
		p := d.Prop(d.EntryProp(e))
		d.ForEntry(e, func(k int, v data.Value) {
			if p.Type == data.Continuous {
				dev[k] += math.Abs(v.F - want.F)
			} else {
				if v.C != want.C {
					flips[k]++
				}
				n[k]++
			}
		})
	})
	// Noise std scales with sqrt(γ): expected ratio ≈ sqrt(20) ≈ 4.5.
	if ratio := dev[1] / dev[0]; ratio < 3 || ratio > 6.5 {
		t.Fatalf("γ=2 / γ=0.1 deviation ratio = %v, want ≈4.5", ratio)
	}
	fl0 := float64(flips[0]) / float64(n[0]) // θ = 0.125·0.1² = 0.00125
	fl1 := float64(flips[1]) / float64(n[1]) // θ = 0.125·2² = 0.5
	if fl0 > 0.01 {
		t.Fatalf("γ=0.1 flip rate = %v, want ≈0.00125 (near-perfect source)", fl0)
	}
	if fl1 < 0.4 || fl1 > 0.6 {
		t.Fatalf("γ=2 flip rate = %v, want ≈0.5", fl1)
	}
}

func TestCorruptCoverageProducesMissing(t *testing.T) {
	schema := Schema{Name: "cov", Cols: []Col{{Name: "x", Type: data.Continuous, Dist: Uniform, Min: 0, Max: 1}}}
	w := GenerateWorld(schema, 1000, 5)
	d, _ := Corrupt(w, []SourceProfile{{Name: "half", Gamma: 0.1, Coverage: 0.5}}, CorruptConfig{Seed: 6})
	frac := float64(d.ObservationCount(0)) / float64(d.NumEntries())
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("coverage = %v, want ≈0.5", frac)
	}
}

func TestPaperProfiles(t *testing.T) {
	ps := PaperProfiles()
	if len(ps) != 8 {
		t.Fatalf("%d profiles, want 8", len(ps))
	}
	gs := PaperGammas()
	for i, p := range ps {
		if p.Gamma != gs[i] {
			t.Fatal("profile gammas mismatch")
		}
	}
	if gs[0] != 0.1 || gs[7] != 2 {
		t.Fatal("paper gammas wrong endpoints")
	}
}

func TestAdultBankShape(t *testing.T) {
	// Scaled-down worlds keep the schema shape of Table 3.
	d, gt := Adult(UCIConfig{Seed: 1, Rows: 200})
	if d.NumProps() != 14 {
		t.Fatalf("adult props = %d, want 14", d.NumProps())
	}
	if d.NumSources() != 8 {
		t.Fatalf("adult sources = %d, want 8", d.NumSources())
	}
	if d.NumObservations() != 200*14*8 {
		t.Fatalf("adult observations = %d, want full coverage %d", d.NumObservations(), 200*14*8)
	}
	if gt.Count() != 200*14 {
		t.Fatalf("adult ground truths = %d, want every entry", gt.Count())
	}
	s := AdultSchema()
	if s.NumContinuous() != 6 || s.NumCategorical() != 8 {
		t.Fatalf("adult schema split = %d/%d, want 6/8", s.NumContinuous(), s.NumCategorical())
	}

	d, gt = Bank(UCIConfig{Seed: 1, Rows: 150})
	if d.NumProps() != 16 || d.NumSources() != 8 {
		t.Fatalf("bank dims = %d props %d sources", d.NumProps(), d.NumSources())
	}
	if gt.Count() != 150*16 {
		t.Fatal("bank ground truth incomplete")
	}
	bs := BankSchema()
	if bs.NumContinuous() != 7 || bs.NumCategorical() != 9 {
		t.Fatalf("bank schema split = %d/%d, want 7/9", bs.NumContinuous(), bs.NumCategorical())
	}
	// Full-scale constants match Table 3 entry counts.
	if AdultRows*14 != 455854 {
		t.Fatal("Adult entry count does not match Table 3")
	}
	if BankRows*16 != 723376 {
		t.Fatal("Bank entry count does not match Table 3")
	}
}

func TestWeatherShape(t *testing.T) {
	d, gt := Weather(WeatherConfig{Seed: 2})
	if d.NumSources() != 9 {
		t.Fatalf("weather sources = %d, want 9 (3 platforms × 3 lead days)", d.NumSources())
	}
	if d.NumProps() != 3 {
		t.Fatalf("weather props = %d, want 3", d.NumProps())
	}
	if d.NumEntries() != 1920 {
		t.Fatalf("weather entries = %d, want 1920 (Table 1)", d.NumEntries())
	}
	// ≈16k observations (Table 1: 16,038) given 0.93 coverage.
	if n := d.NumObservations(); n < 15200 || n > 16600 {
		t.Fatalf("weather observations = %d, want ≈16k", n)
	}
	// ≈1,740 ground truths (Table 1).
	if n := gt.Count(); n < 1600 || n > 1850 {
		t.Fatalf("weather ground truths = %d, want ≈1740", n)
	}
	if !d.HasTimestamps() {
		t.Fatal("weather must carry day timestamps for the streaming experiments")
	}
	min, max := d.TimestampRange()
	if min != 0 || max != 31 {
		t.Fatalf("weather timestamp range = [%d,%d], want [0,31]", min, max)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeatherReliabilityStructure(t *testing.T) {
	d, gt := Weather(WeatherConfig{Seed: 3})
	rel := eval.TrueReliability(d, gt)
	// Platform order: wunderground (best) then hamweather then
	// worldweather; within each platform, lead-1 beats lead-3.
	if !(rel[0] > rel[6]) {
		t.Errorf("wunderground-day1 (%v) should beat worldweather-day1 (%v)", rel[0], rel[6])
	}
	if !(rel[0] > rel[2]) {
		t.Errorf("lead-1 (%v) should beat lead-3 (%v) on the same platform", rel[0], rel[2])
	}
	// Spread should be wide enough to make weighting worthwhile.
	min, max := stats.MinMax(rel)
	if max-min < 0.1 {
		t.Errorf("reliability spread = %v, too narrow to test weighting", max-min)
	}
}

func TestStockShape(t *testing.T) {
	d, gt := Stock(StockConfig{Seed: 4, Symbols: 40, Days: 5})
	if d.NumSources() != 55 {
		t.Fatalf("stock sources = %d, want 55", d.NumSources())
	}
	if d.NumProps() != 16 {
		t.Fatalf("stock props = %d, want 16", d.NumProps())
	}
	cont := 0
	for m := 0; m < d.NumProps(); m++ {
		if d.Prop(m).Type == data.Continuous {
			cont++
		}
	}
	if cont != 3 {
		t.Fatalf("stock continuous props = %d, want 3 (volume/shares/mktcap)", cont)
	}
	if gt.Count() == 0 {
		t.Fatal("stock has no ground truths")
	}
	// Partial ground truth only (≈9%).
	if frac := float64(gt.Count()) / float64(d.NumEntries()); frac > 0.2 {
		t.Fatalf("stock gt fraction = %v, want sparse", frac)
	}
	if !d.HasTimestamps() {
		t.Fatal("stock must carry timestamps")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightShape(t *testing.T) {
	d, gt := Flight(FlightConfig{Seed: 5, Flights: 40, Days: 5})
	if d.NumSources() != 38 {
		t.Fatalf("flight sources = %d, want 38", d.NumSources())
	}
	if d.NumProps() != 6 {
		t.Fatalf("flight props = %d, want 6", d.NumProps())
	}
	cont, cat := 0, 0
	for m := 0; m < d.NumProps(); m++ {
		if d.Prop(m).Type == data.Continuous {
			cont++
		} else {
			cat++
		}
	}
	if cont != 4 || cat != 2 {
		t.Fatalf("flight type split = %d/%d, want 4 continuous + 2 gates", cont, cat)
	}
	if gt.Count() == 0 {
		t.Fatal("flight has no ground truths")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorsDeterministic(t *testing.T) {
	d1, _ := Weather(WeatherConfig{Seed: 11})
	d2, _ := Weather(WeatherConfig{Seed: 11})
	if d1.NumObservations() != d2.NumObservations() {
		t.Fatal("weather not deterministic")
	}
	for e := 0; e < d1.NumEntries(); e++ {
		for k := 0; k < d1.NumSources(); k++ {
			if d1.HasEntry(k, e) != d2.HasEntry(k, e) {
				t.Fatal("weather presence not deterministic")
			}
			if d1.HasEntry(k, e) && d1.GetEntry(k, e) != d2.GetEntry(k, e) {
				t.Fatal("weather values not deterministic")
			}
		}
	}
	s1, g1 := Stock(StockConfig{Seed: 12, Symbols: 10, Days: 3})
	s2, g2 := Stock(StockConfig{Seed: 12, Symbols: 10, Days: 3})
	if s1.NumObservations() != s2.NumObservations() || g1.Count() != g2.Count() {
		t.Fatal("stock not deterministic")
	}
	f1, _ := Flight(FlightConfig{Seed: 13, Flights: 10, Days: 3})
	f2, _ := Flight(FlightConfig{Seed: 13, Flights: 10, Days: 3})
	if f1.NumObservations() != f2.NumObservations() {
		t.Fatal("flight not deterministic")
	}
}
