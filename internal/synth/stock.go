package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/crhkit/crh/internal/data"
)

// Stock reproduces the conflict structure of the stock data set of Li et
// al. [11] used in Section 3.2.1: ~1,000 stock symbols crawled on every
// work day of a month from 55 deep-web sources, with 16 properties. The
// paper treats volume, shares outstanding and market cap as continuous and
// the remaining 13 (prices, ratios, ranges — served as formatted strings
// by real financial sites) as categorical.
//
// Error structure. The dominant error mode in the real data set is
// *staleness*: financial sites cache quotes, so when a value moves late in
// the session many sources keep serving the same out-of-date number. The
// simulator models this with per-entry staleness events during which a
// class-dependent fraction of sources serves a shared stale value; higher-
// quality sources refresh faster. Correlated stale majorities are what
// give voting its ≈8% error in the paper while reliability-aware methods
// do better — independent per-source noise alone would make the task
// trivially easy for 55 sources.
type StockConfig struct {
	Seed    int64
	Symbols int // default 150
	Days    int // default 14 (work days)
	// TruthFrac is the fraction of entries with ground truth; Table 1
	// lists 29,198 of 326,423 ≈ 0.09. Default 0.09.
	TruthFrac float64
	// StaleEventRate is the per-entry probability of a staleness event
	// (default 0.22).
	StaleEventRate float64
}

func (c StockConfig) withDefaults() StockConfig {
	if c.Symbols == 0 {
		c.Symbols = 150
	}
	if c.Days == 0 {
		c.Days = 14
	}
	if c.TruthFrac == 0 {
		c.TruthFrac = 0.09
	}
	if c.StaleEventRate == 0 {
		c.StaleEventRate = 0.22
	}
	return c
}

// The 16 properties: 3 continuous, 13 categorical (real sites serve the
// latter as display strings; a wrong categorical observation models a
// stale or mis-scraped quote).
var stockContinuous = []string{"volume", "shares_outstanding", "market_cap"}
var stockCategorical = []string{
	"open_price", "close_price", "change_pct", "day_low", "day_high",
	"week52_low", "week52_high", "eps", "pe_ratio", "yield", "dividend",
	"prev_close", "change_amount",
}

// Stock generates the stock dataset and partial ground truth. Objects are
// (symbol, day) pairs timestamped by day.
func Stock(cfg StockConfig) (*data.Dataset, *data.Table) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := data.NewBuilder()

	contP := make([]int, len(stockContinuous))
	for i, n := range stockContinuous {
		contP[i] = b.MustProperty(n, data.Continuous)
	}
	catP := make([]int, len(stockCategorical))
	for i, n := range stockCategorical {
		catP[i] = b.MustProperty(n, data.Categorical)
	}

	// 55 sources in four quality tiers. staleP is the chance a source
	// still serves the cached value during a staleness event; flip is
	// its independent error rate outside events.
	const K = 55
	type src struct {
		id       int
		contStd  float64 // relative error on continuous values
		flip     float64
		staleP   float64
		coverage float64
	}
	srcs := make([]src, K)
	for k := 0; k < K; k++ {
		s := src{id: b.Source(fmt.Sprintf("stock-src%02d", k))}
		switch {
		case k < 8: // premium feeds: near-realtime anchors
			s.contStd = 0.003 + rng.Float64()*0.007
			s.flip = 0.002 + rng.Float64()*0.01
			s.staleP = 0.06 + rng.Float64()*0.10
		case k < 40: // accurate majority: fast refresh
			s.contStd = 0.005 + rng.Float64()*0.015
			s.flip = 0.005 + rng.Float64()*0.03
			s.staleP = 0.30 + rng.Float64()*0.30
		case k < 50: // mediocre
			s.contStd = 0.02 + rng.Float64()*0.04
			s.flip = 0.04 + rng.Float64()*0.08
			s.staleP = 0.55 + rng.Float64()*0.25
		default: // poor tail: nearly always cached
			s.contStd = 0.06 + rng.Float64()*0.12
			s.flip = 0.12 + rng.Float64()*0.2
			s.staleP = 0.85 + rng.Float64()*0.12
		}
		s.coverage = 0.35 + rng.Float64()*0.6
		if s.coverage > 1 {
			s.coverage = 1
		}
		srcs[k] = s
	}

	// Per-symbol fundamentals.
	type symbol struct {
		price, volume, shares float64
	}
	syms := make([]symbol, cfg.Symbols)
	for i := range syms {
		syms[i] = symbol{
			price:  math.Exp(2.5 + rng.NormFloat64()*1.1),   // ~$12 median
			volume: math.Exp(13.5 + rng.NormFloat64()*1.4),  // ~700k median
			shares: math.Exp(18.0 + rng.NormFloat64()*1.15), // ~65M median
		}
	}

	M := len(contP) + len(catP)
	gtRng := rand.New(rand.NewSource(cfg.Seed + 1))
	type entryTruth struct {
		e int
		v data.Value
	}
	var gts []entryTruth

	for i := 0; i < cfg.Symbols; i++ {
		for day := 0; day < cfg.Days; day++ {
			obj := b.Object(fmt.Sprintf("sym%04d/day%02d", i, day))
			b.SetTimestampIdx(obj, day)
			s := &syms[i]
			// Random walk across days.
			price := s.price * math.Exp(0.02*rng.NormFloat64()*float64(day+1)/4)

			contTruth := []float64{
				roundTo(s.volume*math.Exp(0.3*rng.NormFloat64()), 1),
				roundTo(s.shares, 1),
				roundTo(s.shares*price, 1),
			}
			wantTruth := gtRng.Float64() < cfg.TruthFrac

			// Continuous properties.
			for mi, p := range contP {
				if wantTruth {
					gts = append(gts, entryTruth{obj*M + p, data.Float(contTruth[mi])})
				}
				// A staleness event fixes a shared out-of-date value
				// (the pre-move quote) many sources keep serving.
				stale := rng.Float64() < cfg.StaleEventRate
				staleVal := contTruth[mi] * (1 + 0.04 + math.Abs(rng.NormFloat64())*0.05)
				if rng.Intn(2) == 0 {
					staleVal = contTruth[mi] * (1 - 0.04 - math.Abs(rng.NormFloat64())*0.05)
				}
				for _, sc := range srcs {
					if rng.Float64() >= sc.coverage {
						continue
					}
					v := contTruth[mi]
					if stale && rng.Float64() < sc.staleP {
						v = staleVal
					}
					v *= 1 + rng.NormFloat64()*sc.contStd
					b.ObserveIdx(sc.id, obj, p, data.Float(roundTo(v, 1)))
				}
			}

			// Categorical properties: formatted strings derived from
			// the price.
			for ci, p := range catP {
				base := price * (0.85 + 0.02*float64(ci))
				truthStr := fmt.Sprintf("%.2f", base)
				truthID := b.CatValue(p, truthStr)
				if wantTruth {
					gts = append(gts, entryTruth{obj*M + p, data.Cat(truthID)})
				}
				stale := rng.Float64() < cfg.StaleEventRate
				staleID := b.CatValue(p, fmt.Sprintf("%.2f", base*(1+0.03+0.04*rng.Float64())))
				for _, sc := range srcs {
					if rng.Float64() >= sc.coverage {
						continue
					}
					id := truthID
					if stale && rng.Float64() < sc.staleP {
						id = staleID
					} else if rng.Float64() < sc.flip {
						// Independent scrape error: cent jitter or a
						// scale slip.
						if rng.Intn(3) == 0 {
							id = b.CatValue(p, fmt.Sprintf("%.2f", base*10))
						} else {
							id = b.CatValue(p, fmt.Sprintf("%.2f", base+0.01+0.05*rng.Float64()))
						}
					}
					b.ObserveIdx(sc.id, obj, p, data.Cat(id))
				}
			}
		}
	}

	d := b.Build()
	gt := data.NewTableFor(d)
	for _, g := range gts {
		gt.Set(g.e, g.v)
	}
	return d, gt
}
