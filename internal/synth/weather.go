package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// Weather reproduces the paper's weather-forecast integration task
// (Section 3.2.1): forecasts for US cities are collected from three
// platforms, and each platform's 1-, 2- and 3-day-ahead forecasts are
// treated as three distinct sources — nine sources in total. Each
// (city, day) object has three properties: high temperature and low
// temperature (continuous, °F) and weather condition (categorical).
//
// Error structure. Real forecasts share two error components, and the
// simulator reproduces both because they drive the paper's numbers:
//
//   - An irreducible *forecast consensus* error: all platforms predict
//     from similar models, so their forecasts cluster around a consensus
//     that routinely differs from the actual outcome (the paper's best
//     method is still wrong on 37.6% of conditions, and MNAD values are
//     ≈4.7 — several times the spread of the forecasts themselves).
//   - Per-source error around that consensus: a platform-specific base
//     error growing with forecast lead time, with unreliable platforms
//     drifting toward a shared *alternative* condition (they run similar
//     stale models), which lets weighting beat plain voting.

// WeatherConfig parameterizes the simulator. The zero value matches the
// paper's scale: 20 cities over roughly a month, 9 sources, ≈16k
// observations and 1,920 entries, with ground truth for ~90% of entries.
type WeatherConfig struct {
	Seed   int64
	Cities int // default 20
	Days   int // default 32
	// TruthFrac is the fraction of entries carrying ground truth
	// (Table 1 lists 1,740 of 1,920). Default 0.906.
	TruthFrac float64
	// Coverage is each source's per-entry observation probability;
	// default 0.93 yields ≈16k of the 9×1920 possible observations.
	Coverage float64
	// CondMissRate is the probability that the forecast consensus
	// condition differs from the actual outcome (default 0.33).
	CondMissRate float64
	// TempMissStd is the standard deviation (°F) of the shared
	// consensus temperature error (default 7).
	TempMissStd float64
	// TimestampsPerDay subdivides each day into finer collection
	// timestamps (cities are spread across the sub-slots round-robin),
	// so streaming experiments can use chunks smaller than a day —
	// Figure 5's small-window regime. Default 1: one timestamp per day.
	TimestampsPerDay int
}

func (c WeatherConfig) withDefaults() WeatherConfig {
	if c.Cities == 0 {
		c.Cities = 20
	}
	if c.Days == 0 {
		c.Days = 32
	}
	if c.TruthFrac == 0 {
		c.TruthFrac = 0.906
	}
	if c.Coverage == 0 {
		c.Coverage = 0.93
	}
	if c.CondMissRate == 0 {
		c.CondMissRate = 0.33
	}
	if c.TempMissStd == 0 {
		c.TempMissStd = 7
	}
	if c.TimestampsPerDay == 0 {
		c.TimestampsPerDay = 1
	}
	return c
}

// WeatherConditions is the categorical domain of the condition property.
var WeatherConditions = []string{
	"sunny", "partly-cloudy", "cloudy", "rain", "thunderstorm", "snow", "fog", "windy",
}

// weatherPlatforms describes the three forecast platforms: temperature
// error (°F std at lead 1) around the consensus, and the probability (at
// lead 1) of reporting a condition other than the consensus forecast.
// Lead day l scales both by 1 + 0.45·(l−1).
var weatherPlatforms = []struct {
	name     string
	tempStd  float64
	condFlip float64
}{
	{"wunderground", 1.3, 0.10},
	{"hamweather", 2.4, 0.26},
	{"worldweather", 3.6, 0.44},
}

// Weather generates the weather-forecast dataset and its partial ground
// truth. Objects are (city, day) pairs with the day index attached as the
// dataset timestamp, so the same dataset drives the streaming experiments
// (Table 5, Figures 4-6).
func Weather(cfg WeatherConfig) (*data.Dataset, *data.Table) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := data.NewBuilder()
	hiP := b.MustProperty("high_temp", data.Continuous)
	loP := b.MustProperty("low_temp", data.Continuous)
	condP := b.MustProperty("condition", data.Categorical)
	condIDs := make([]int, len(WeatherConditions))
	for i, c := range WeatherConditions {
		condIDs[i] = b.CatValue(condP, c)
	}

	// Per-city climate: a base temperature plus a mild seasonal drift
	// across the simulated month and day-to-day weather noise.
	baseTemp := make([]float64, cfg.Cities)
	wetness := make([]float64, cfg.Cities) // propensity for rainy states
	for c := range baseTemp {
		baseTemp[c] = 45 + rng.Float64()*40 // 45..85 °F
		wetness[c] = 0.2 + rng.Float64()*0.5
	}

	type truthRow struct {
		hi, lo float64
		cond   int
	}

	var sources []int
	var srcMeta []struct {
		tempStd, condFlip float64
	}
	for _, p := range weatherPlatforms {
		for lead := 1; lead <= 3; lead++ {
			sources = append(sources, b.Source(fmt.Sprintf("%s-day%d", p.name, lead)))
			decay := 1 + 0.45*float64(lead-1)
			srcMeta = append(srcMeta, struct {
				tempStd, condFlip float64
			}{p.tempStd * decay, stats.Clamp(p.condFlip*decay, 0, 0.9)})
		}
	}

	sampleCond := func(hi float64, wet float64) int {
		r := rng.Float64()
		switch {
		case r < wet*0.5:
			return condIDs[3] // rain
		case r < wet*0.6:
			return condIDs[4] // thunderstorm
		case hi < 34 && r < wet:
			return condIDs[5] // snow
		case r < wet+0.25:
			return condIDs[1] // partly-cloudy
		case r < wet+0.45:
			return condIDs[2] // cloudy
		case r > 0.95:
			return condIDs[6+rng.Intn(2)] // fog or windy
		default:
			return condIDs[0] // sunny
		}
	}
	otherCond := func(not ...int) int {
		for {
			c := condIDs[rng.Intn(len(condIDs))]
			hit := false
			for _, n := range not {
				if c == n {
					hit = true
					break
				}
			}
			if !hit {
				return c
			}
		}
	}

	truths := make([]truthRow, 0, cfg.Cities*cfg.Days) // indexed by object
	for c := 0; c < cfg.Cities; c++ {
		for day := 0; day < cfg.Days; day++ {
			name := fmt.Sprintf("city%02d/day%02d", c, day)
			obj := b.Object(name)
			b.SetTimestampIdx(obj, day*cfg.TimestampsPerDay+c%cfg.TimestampsPerDay)

			season := 6 * math.Sin(2*math.Pi*float64(day)/float64(cfg.Days))
			hi := baseTemp[c] + season + rng.NormFloat64()*5
			lo := hi - 8 - rng.Float64()*12
			cond := sampleCond(hi, wetness[c])
			truths = append(truths, truthRow{roundTo(hi, 1), roundTo(lo, 1), cond}) // index == obj

			// Forecast consensus: what the platforms collectively
			// predicted, which may miss the actual outcome.
			consHi := hi + rng.NormFloat64()*cfg.TempMissStd
			consLo := lo + rng.NormFloat64()*cfg.TempMissStd
			consCond := cond
			if rng.Float64() < cfg.CondMissRate {
				consCond = otherCond(cond)
			}
			// The shared alternative unreliable platforms drift to.
			altCond := otherCond(consCond)

			for s, src := range sources {
				meta := srcMeta[s]
				if rng.Float64() < cfg.Coverage {
					b.ObserveIdx(src, obj, hiP, data.Float(roundTo(consHi+rng.NormFloat64()*meta.tempStd, 1)))
				}
				if rng.Float64() < cfg.Coverage {
					b.ObserveIdx(src, obj, loP, data.Float(roundTo(consLo+rng.NormFloat64()*meta.tempStd, 1)))
				}
				if rng.Float64() < cfg.Coverage {
					oc := consCond
					if rng.Float64() < meta.condFlip {
						// Correlated drift: most misses land on the
						// shared alternative, the rest scatter.
						if rng.Float64() < 0.75 {
							oc = altCond
						} else {
							oc = otherCond(consCond)
						}
					}
					b.ObserveIdx(src, obj, condP, data.Cat(oc))
				}
			}
		}
	}

	d := b.Build()
	gt := data.NewTableFor(d)
	gtRng := rand.New(rand.NewSource(cfg.Seed + 1))
	for obj, tr := range truths { // deterministic: slice indexed by object
		// Ground truth is available only for a subset of entries, as
		// with the real crawled data (Table 1). Sample per entry.
		if gtRng.Float64() < cfg.TruthFrac {
			gt.SetAt(obj, hiP, data.Float(tr.hi))
		}
		if gtRng.Float64() < cfg.TruthFrac {
			gt.SetAt(obj, loP, data.Float(tr.lo))
		}
		if gtRng.Float64() < cfg.TruthFrac {
			gt.SetAt(obj, condP, data.Cat(tr.cond))
		}
	}
	return d, gt
}
