package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// SourceProfile describes one simulated source's behaviour under the
// paper's noise-injection protocol (Section 3.2.2): the parameter γ
// controls the source's reliability — "a lower γ indicates a lower chance
// that the ground truths are altered".
type SourceProfile struct {
	// Name labels the source in the dataset.
	Name string
	// Gamma is the reliability control. For continuous properties the
	// injected Gaussian noise has standard deviation proportional to
	// Gamma; for categorical properties the flip threshold θ is set
	// according to Gamma (see CorruptConfig).
	Gamma float64
	// Coverage is the probability the source observes any given entry
	// (1 when zero), producing missing values below 1.
	Coverage float64
}

// PaperGammas returns the eight reliability degrees the paper simulates:
// γ = {0.1, 0.4, 0.7, 1, 1.3, 1.6, 1.9, 2}.
func PaperGammas() []float64 { return []float64{0.1, 0.4, 0.7, 1, 1.3, 1.6, 1.9, 2} }

// PaperProfiles returns the paper's 8-source configuration built from
// PaperGammas with full coverage.
func PaperProfiles() []SourceProfile {
	gs := PaperGammas()
	ps := make([]SourceProfile, len(gs))
	for i, g := range gs {
		ps[i] = SourceProfile{Name: fmt.Sprintf("src-g%.1f", g), Gamma: g}
	}
	return ps
}

// CorruptConfig tunes the noise-injection protocol of Section 3.2.2.
type CorruptConfig struct {
	// Seed drives all randomness; corruption is deterministic given the
	// seed, world and profiles.
	Seed int64
	// NoiseScale converts γ into continuous noise. The paper specifies
	// that "γ is proportional to the variance of the Gaussian noise",
	// so the injected noise on column m has
	// std = NoiseScale · sqrt(γ) · std(column m). Defaults to 0.3.
	NoiseScale float64
	// FlipScale and FlipPower convert γ into the categorical flip
	// threshold θ = min(FlipScale · γ^FlipPower, MaxFlip). The defaults
	// (0.125, 2) make reliability superlinear in γ — a γ = 0.1 source is
	// nearly perfect (θ ≈ 0.1%) while a γ = 2 source flips half its
	// values — which reproduces the paper's Table 4 regime where the
	// best method recovers essentially all categorical truths.
	FlipScale float64
	FlipPower float64
	// MaxFlip caps θ. Defaults to 0.95.
	MaxFlip float64
}

func (c CorruptConfig) withDefaults() CorruptConfig {
	if c.NoiseScale == 0 {
		c.NoiseScale = 0.3
	}
	if c.FlipScale == 0 {
		c.FlipScale = 0.125
	}
	if c.FlipPower == 0 {
		c.FlipPower = 2
	}
	if c.MaxFlip == 0 {
		c.MaxFlip = 0.95
	}
	return c
}

// Corrupt derives a conflicting multi-source dataset from a ground-truth
// world: for each (source, object, column) covered by the source, the truth
// is perturbed according to the source's γ. Continuous values receive
// Gaussian noise scaled by the column spread and are re-rounded to the
// column's physical unit; categorical values are flipped to a uniformly
// random other category with probability θ(γ), exactly as in Section 3.2.2.
//
// The returned Table is the complete ground truth over all entries.
func Corrupt(w *World, profiles []SourceProfile, cfg CorruptConfig) (*data.Dataset, *data.Table) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := data.NewBuilder()
	cols := w.Schema.Cols
	propIdx := make([]int, len(cols))
	for m, c := range cols {
		propIdx[m] = b.MustProperty(c.Name, c.Type)
		// Intern the full dictionary up front so category indices in
		// the dataset coincide with schema indices.
		for _, cat := range c.Cats {
			b.CatValue(propIdx[m], cat)
		}
	}
	srcIdx := make([]int, len(profiles))
	for k, p := range profiles {
		srcIdx[k] = b.Source(p.Name)
	}
	for i, row := range w.Rows {
		obj := b.Object(w.Names[i])
		for k, p := range profiles {
			cov := p.Coverage
			if cov == 0 {
				cov = 1
			}
			for m := range cols {
				if cov < 1 && rng.Float64() >= cov {
					continue
				}
				b.ObserveIdx(srcIdx[k], obj, propIdx[m], corruptValue(row[m], &cols[m], w.colStd[m], p.Gamma, cfg, rng))
			}
		}
	}
	d := b.Build()
	gt := data.NewTableFor(d)
	for i, row := range w.Rows {
		for m := range cols {
			gt.SetAt(i, propIdx[m], row[m])
		}
	}
	return d, gt
}

func corruptValue(truth data.Value, c *Col, colStd, gamma float64, cfg CorruptConfig, rng *rand.Rand) data.Value {
	if c.Type == data.Continuous {
		v := truth.F + rng.NormFloat64()*math.Sqrt(gamma)*cfg.NoiseScale*colStd
		if c.Max > c.Min {
			v = stats.Clamp(v, c.Min, c.Max)
		}
		return data.Float(roundTo(v, c.Round))
	}
	theta := cfg.FlipScale * math.Pow(gamma, cfg.FlipPower)
	if theta > cfg.MaxFlip {
		theta = cfg.MaxFlip
	}
	if len(c.Cats) > 1 && rng.Float64() < theta {
		// Flip to a uniformly random *other* category.
		alt := rng.Intn(len(c.Cats) - 1)
		if alt >= int(truth.C) {
			alt++
		}
		return data.Cat(alt)
	}
	return truth
}
