package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/crhkit/crh/internal/data"
)

// LongTail generates a crowdsourcing-style workload in which source claim
// counts follow a power law — the regime of Li et al.'s "long-tail" paper
// (reference [23] of the CRH paper): a few head sources answer most
// questions while the majority of sources contribute only a handful of
// claims each. Source accuracy is drawn independently of claim count, so
// some tail sources look perfect purely by luck — exactly the trap
// point-estimate weighting (exp-max) falls into and the confidence-aware
// scheme (CATD) exists to avoid.
type LongTailConfig struct {
	Seed    int64
	Objects int // default 2000
	Sources int // default 120
	// ZipfS is the power-law exponent of the worker-selection
	// distribution (default 1.1; larger = heavier head).
	ZipfS float64
	// AnswersPerTask is how many workers answer each task (default 4 —
	// the sparse crowdsourcing regime where weight quality matters).
	AnswersPerTask int
}

func (c LongTailConfig) withDefaults() LongTailConfig {
	if c.Objects == 0 {
		c.Objects = 2000
	}
	if c.Sources == 0 {
		c.Sources = 120
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.AnswersPerTask == 0 {
		c.AnswersPerTask = 4
	}
	return c
}

// LongTail returns the dataset, its full ground truth, and each source's
// true error rate (for evaluating reliability estimates).
func LongTail(cfg LongTailConfig) (*data.Dataset, *data.Table, []float64) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := data.NewBuilder()
	catP := b.MustProperty("answer", data.Categorical)
	numP := b.MustProperty("amount", data.Continuous)
	cats := make([]int, 12)
	for i := range cats {
		cats[i] = b.CatValue(catP, fmt.Sprintf("ans%02d", i))
	}

	// Worker accuracy is independent of rank; each task is answered by
	// AnswersPerTask distinct workers sampled ∝ 1/rank^s, so head
	// workers accumulate thousands of claims while tail workers answer
	// a handful each.
	type src struct {
		id    int
		flip  float64
		noise float64
	}
	srcs := make([]src, cfg.Sources)
	weights := make([]float64, cfg.Sources)
	var wTotal float64
	for k := range srcs {
		flip := 0.05 + rng.Float64()*0.5 // error rates 5%..55%, any rank
		srcs[k] = src{
			id:    b.Source(fmt.Sprintf("worker%03d", k)),
			flip:  flip,
			noise: 0.2 + flip, // continuous noise tracks the flip rate
		}
		weights[k] = 1 / math.Pow(float64(k+1), cfg.ZipfS)
		wTotal += weights[k]
	}
	pickWorker := func(used map[int]bool) int {
		for {
			x := rng.Float64() * wTotal
			for k, w := range weights {
				x -= w
				if x < 0 {
					if !used[k] {
						return k
					}
					break
				}
			}
		}
	}

	gtCat := make([]int, cfg.Objects)
	gtNum := make([]float64, cfg.Objects)
	for i := 0; i < cfg.Objects; i++ {
		obj := b.Object(fmt.Sprintf("task%05d", i))
		gtCat[i] = cats[rng.Intn(len(cats))]
		gtNum[i] = rng.Float64() * 100
		used := make(map[int]bool, cfg.AnswersPerTask)
		for a := 0; a < cfg.AnswersPerTask && a < cfg.Sources; a++ {
			k := pickWorker(used)
			used[k] = true
			s := srcs[k]
			c := gtCat[i]
			if rng.Float64() < s.flip {
				alt := cats[rng.Intn(len(cats)-1)]
				if alt >= c {
					alt++
				}
				c = alt
			}
			b.ObserveIdx(s.id, obj, catP, data.Cat(c))
			b.ObserveIdx(s.id, obj, numP, data.Float(roundTo(gtNum[i]+rng.NormFloat64()*s.noise*10, 0.1)))
		}
	}

	d := b.Build()
	gt := data.NewTableFor(d)
	for i := 0; i < cfg.Objects; i++ {
		gt.SetAt(i, catP, data.Cat(gtCat[i]))
		gt.SetAt(i, numP, data.Float(gtNum[i]))
	}
	errRates := make([]float64, cfg.Sources)
	for k, s := range srcs {
		errRates[k] = s.flip
	}
	return d, gt, errRates
}
