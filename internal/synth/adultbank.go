package synth

import "github.com/crhkit/crh/internal/data"

// The UCI-equivalent generators reproduce the simulated-data experiments of
// Section 3.2.2. The paper takes the UCI Adult and Bank Marketing data sets
// as ground truth and injects per-source noise; since the signal in those
// experiments is entirely in the injected noise, we substitute
// schema-faithful synthetic worlds with the same attribute structure
// (6 continuous + 8 categorical columns for Adult, 7 + 9 for Bank) and the
// original row counts (32,561 and 45,211), then apply the same protocol.

// AdultRows is the UCI Adult data set's row count; Table 3's 455,854
// entries = AdultRows × 14 properties.
const AdultRows = 32561

// BankRows is the UCI Bank Marketing data set's row count; Table 3's
// 723,376 entries = BankRows × 16 properties.
const BankRows = 45211

// AdultSchema mirrors the UCI Adult census schema: 14 attributes, 6
// continuous and 8 categorical, with realistic marginal distributions and
// physical rounding (ages and hours are integers, capital amounts are in
// dollars).
func AdultSchema() Schema {
	return Schema{
		Name: "adult",
		Cols: []Col{
			{Name: "age", Type: data.Continuous, Dist: Normal, Mean: 38.6, Std: 13.6, Min: 17, Max: 90, Round: 1},
			{Name: "workclass", Type: data.Categorical,
				Cats: []string{"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov", "Local-gov", "State-gov", "Without-pay", "Never-worked"},
				CatW: []float64{69.7, 7.8, 3.4, 2.9, 6.4, 4.0, 0.04, 0.02}},
			{Name: "fnlwgt", Type: data.Continuous, Dist: LogNormal, Mean: 12.0, Std: 0.5, Min: 12285, Max: 1484705, Round: 1},
			{Name: "education", Type: data.Categorical,
				Cats: []string{"Bachelors", "Some-college", "11th", "HS-grad", "Prof-school", "Assoc-acdm", "Assoc-voc", "9th", "7th-8th", "12th", "Masters", "1st-4th", "10th", "5th-6th", "Doctorate", "Preschool"},
				CatW: []float64{16.4, 22.3, 3.6, 32.3, 1.8, 3.3, 4.2, 1.6, 2.0, 1.3, 5.4, 0.5, 2.9, 1.0, 1.3, 0.2}},
			{Name: "education-num", Type: data.Continuous, Dist: Normal, Mean: 10.1, Std: 2.6, Min: 1, Max: 16, Round: 1},
			{Name: "marital-status", Type: data.Categorical,
				Cats: []string{"Married-civ-spouse", "Divorced", "Never-married", "Separated", "Widowed", "Married-spouse-absent", "Married-AF-spouse"},
				CatW: []float64{45.8, 13.6, 33.0, 3.1, 3.1, 1.3, 0.1}},
			{Name: "occupation", Type: data.Categorical,
				Cats: []string{"Tech-support", "Craft-repair", "Other-service", "Sales", "Exec-managerial", "Prof-specialty", "Handlers-cleaners", "Machine-op-inspct", "Adm-clerical", "Farming-fishing", "Transport-moving", "Priv-house-serv", "Protective-serv", "Armed-Forces"},
				CatW: []float64{2.9, 12.6, 10.1, 11.2, 12.5, 12.7, 4.2, 6.2, 11.6, 3.1, 4.9, 0.5, 2.0, 0.03}},
			{Name: "relationship", Type: data.Categorical,
				Cats: []string{"Wife", "Own-child", "Husband", "Not-in-family", "Other-relative", "Unmarried"},
				CatW: []float64{4.8, 15.6, 40.4, 25.5, 3.0, 10.6}},
			{Name: "race", Type: data.Categorical,
				Cats: []string{"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"},
				CatW: []float64{85.4, 3.2, 1.0, 0.8, 9.6}},
			{Name: "sex", Type: data.Categorical, Cats: []string{"Female", "Male"}, CatW: []float64{33.1, 66.9}},
			{Name: "capital-gain", Type: data.Continuous, Dist: LogNormal, Mean: 4.0, Std: 2.2, Min: 0, Max: 99999, Round: 1},
			{Name: "capital-loss", Type: data.Continuous, Dist: LogNormal, Mean: 2.5, Std: 1.9, Min: 0, Max: 4356, Round: 1},
			{Name: "hours-per-week", Type: data.Continuous, Dist: Normal, Mean: 40.4, Std: 12.3, Min: 1, Max: 99, Round: 1},
			{Name: "native-country", Type: data.Categorical,
				Cats: []string{"United-States", "Mexico", "Philippines", "Germany", "Canada", "Puerto-Rico", "El-Salvador", "India", "Cuba", "England", "Jamaica", "South", "China", "Italy", "Dominican-Republic", "Vietnam", "Guatemala", "Japan", "Poland", "Columbia", "Taiwan", "Haiti", "Iran", "Portugal", "Nicaragua", "Peru", "Greece", "France", "Ecuador", "Ireland", "Hong", "Trinadad&Tobago", "Cambodia", "Laos", "Thailand", "Yugoslavia", "Outlying-US", "Hungary", "Honduras", "Scotland", "Holand-Netherlands"},
				CatW: []float64{89.6, 2.0, 0.6, 0.4, 0.4, 0.35, 0.33, 0.31, 0.29, 0.28, 0.25, 0.25, 0.23, 0.22, 0.21, 0.21, 0.2, 0.19, 0.18, 0.18, 0.16, 0.14, 0.13, 0.11, 0.1, 0.1, 0.09, 0.09, 0.09, 0.07, 0.06, 0.06, 0.06, 0.06, 0.06, 0.05, 0.04, 0.04, 0.04, 0.04, 0.003}},
		},
	}
}

// BankSchema mirrors the UCI Bank Marketing schema: 16 attributes, 7
// continuous and 9 categorical.
func BankSchema() Schema {
	return Schema{
		Name: "bank",
		Cols: []Col{
			{Name: "age", Type: data.Continuous, Dist: Normal, Mean: 40.9, Std: 10.6, Min: 18, Max: 95, Round: 1},
			{Name: "job", Type: data.Categorical,
				Cats: []string{"admin.", "unknown", "unemployed", "management", "housemaid", "entrepreneur", "student", "blue-collar", "self-employed", "retired", "technician", "services"},
				CatW: []float64{11.4, 0.6, 2.9, 20.9, 2.7, 3.3, 2.1, 21.5, 3.5, 5.0, 16.8, 9.2}},
			{Name: "marital", Type: data.Categorical, Cats: []string{"married", "divorced", "single"}, CatW: []float64{60.2, 11.5, 28.3}},
			{Name: "education", Type: data.Categorical, Cats: []string{"unknown", "secondary", "primary", "tertiary"}, CatW: []float64{4.1, 51.3, 15.2, 29.4}},
			{Name: "default", Type: data.Categorical, Cats: []string{"yes", "no"}, CatW: []float64{1.8, 98.2}},
			{Name: "balance", Type: data.Continuous, Dist: Normal, Mean: 1362, Std: 3045, Min: -8019, Max: 102127, Round: 1},
			{Name: "housing", Type: data.Categorical, Cats: []string{"yes", "no"}, CatW: []float64{55.6, 44.4}},
			{Name: "loan", Type: data.Categorical, Cats: []string{"yes", "no"}, CatW: []float64{16.0, 84.0}},
			{Name: "contact", Type: data.Categorical, Cats: []string{"unknown", "telephone", "cellular"}, CatW: []float64{28.8, 6.4, 64.8}},
			{Name: "day", Type: data.Continuous, Dist: Uniform, Min: 1, Max: 31, Round: 1},
			{Name: "month", Type: data.Categorical,
				Cats: []string{"jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec"},
				CatW: []float64{3.1, 5.9, 1.1, 6.5, 30.4, 11.8, 15.2, 13.8, 1.3, 1.6, 8.8, 0.5}},
			{Name: "duration", Type: data.Continuous, Dist: LogNormal, Mean: 5.3, Std: 0.9, Min: 0, Max: 4918, Round: 1},
			{Name: "campaign", Type: data.Continuous, Dist: LogNormal, Mean: 0.7, Std: 0.8, Min: 1, Max: 63, Round: 1},
			{Name: "pdays", Type: data.Continuous, Dist: Normal, Mean: 40, Std: 100, Min: -1, Max: 871, Round: 1},
			{Name: "previous", Type: data.Continuous, Dist: LogNormal, Mean: 0.2, Std: 0.9, Min: 0, Max: 275, Round: 1},
			{Name: "poutcome", Type: data.Categorical, Cats: []string{"unknown", "other", "failure", "success"}, CatW: []float64{81.7, 4.1, 10.8, 3.3}},
		},
	}
}

// UCIConfig parameterizes the Adult/Bank simulated-data experiments.
type UCIConfig struct {
	// Seed drives world generation and corruption.
	Seed int64
	// Rows is the number of ground-truth rows; 0 selects the original
	// data set's row count (AdultRows / BankRows).
	Rows int
	// Profiles are the simulated sources; nil selects PaperProfiles
	// (8 sources, γ = 0.1 .. 2).
	Profiles []SourceProfile
	// Corrupt tunes the noise protocol; the zero value uses defaults.
	Corrupt CorruptConfig
}

// Adult generates the Adult-equivalent simulation: the world, the
// corrupted multi-source dataset, and the full ground truth.
func Adult(cfg UCIConfig) (*data.Dataset, *data.Table) {
	return uciDataset(AdultSchema(), AdultRows, cfg)
}

// Bank generates the Bank-equivalent simulation.
func Bank(cfg UCIConfig) (*data.Dataset, *data.Table) {
	return uciDataset(BankSchema(), BankRows, cfg)
}

func uciDataset(schema Schema, defaultRows int, cfg UCIConfig) (*data.Dataset, *data.Table) {
	rows := cfg.Rows
	if rows == 0 {
		rows = defaultRows
	}
	profiles := cfg.Profiles
	if profiles == nil {
		profiles = PaperProfiles()
	}
	w := GenerateWorld(schema, rows, cfg.Seed)
	cc := cfg.Corrupt
	if cc.Seed == 0 {
		cc.Seed = cfg.Seed + 1
	}
	return Corrupt(w, profiles, cc)
}
