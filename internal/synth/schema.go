// Package synth generates the multi-source data sets used in the paper's
// evaluation. Because the paper's crawled data (weather/stock/flight) and
// the UCI data sets are external resources, this package provides
// schema-faithful simulators that reproduce their conflict structure: a
// ground-truth "world" is generated first, then corrupted per source
// according to a reliability profile (Section 3.2.2's noise-injection
// protocol), so every generated data set comes with complete or partial
// ground truth.
//
// All generators are deterministic for a given seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// Dist selects the sampling distribution of a continuous column.
type Dist uint8

const (
	// Uniform samples uniformly from [Min, Max].
	Uniform Dist = iota
	// Normal samples from N(Mean, Std²) clamped to [Min, Max].
	Normal
	// LogNormal samples exp(N(Mean, Std²)) clamped to [Min, Max]; Mean
	// and Std parameterize the underlying normal.
	LogNormal
)

// Col describes one column (property) of a synthetic schema.
type Col struct {
	Name string
	Type data.Type

	// Continuous parameters.
	Dist      Dist
	Min, Max  float64
	Mean, Std float64
	// Round is the rounding unit applied to generated and corrupted
	// values ("we round the continuous type data based on their physical
	// meaning"); 0 disables rounding.
	Round float64

	// Categorical parameters: the category dictionary and optional
	// relative sampling weights (uniform when nil).
	Cats []string
	CatW []float64
}

// Schema is an ordered set of columns plus a name for reports.
type Schema struct {
	Name string
	Cols []Col
}

// NumContinuous returns the number of continuous columns.
func (s *Schema) NumContinuous() int {
	var n int
	for _, c := range s.Cols {
		if c.Type == data.Continuous {
			n++
		}
	}
	return n
}

// NumCategorical returns the number of categorical columns.
func (s *Schema) NumCategorical() int { return len(s.Cols) - s.NumContinuous() }

// World is a generated ground-truth table: one typed value per
// (object, column). Corrupt turns a World into a conflicting multi-source
// Dataset.
type World struct {
	Schema  Schema
	Names   []string       // object names
	Rows    [][]data.Value // Rows[i][m]; categorical values index Schema.Cols[m].Cats
	colStd  []float64      // per-column std of continuous truths, for noise scaling
	created bool
}

// NumObjects returns the number of rows in the world.
func (w *World) NumObjects() int { return len(w.Rows) }

// GenerateWorld samples n ground-truth rows from the schema.
func GenerateWorld(schema Schema, n int, seed int64) *World {
	rng := rand.New(rand.NewSource(seed))
	w := &World{
		Schema: schema,
		Names:  make([]string, n),
		Rows:   make([][]data.Value, n),
	}
	for i := 0; i < n; i++ {
		w.Names[i] = fmt.Sprintf("%s-%06d", schema.Name, i)
		row := make([]data.Value, len(schema.Cols))
		for m, c := range schema.Cols {
			if c.Type == data.Continuous {
				row[m] = data.Float(sampleContinuous(&c, rng))
			} else {
				row[m] = data.Cat(sampleCategory(&c, rng))
			}
		}
		w.Rows[i] = row
	}
	w.finalize()
	return w
}

// finalize computes per-column spread used for noise scaling.
func (w *World) finalize() {
	w.colStd = make([]float64, len(w.Schema.Cols))
	vals := make([]float64, 0, len(w.Rows))
	for m, c := range w.Schema.Cols {
		if c.Type != data.Continuous {
			continue
		}
		vals = vals[:0]
		for _, row := range w.Rows {
			vals = append(vals, row[m].F)
		}
		w.colStd[m] = stats.Std(vals)
		if w.colStd[m] == 0 {
			w.colStd[m] = 1
		}
	}
	w.created = true
}

func sampleContinuous(c *Col, rng *rand.Rand) float64 {
	var v float64
	switch c.Dist {
	case Normal:
		v = c.Mean + rng.NormFloat64()*c.Std
	case LogNormal:
		v = expClamped(c.Mean + rng.NormFloat64()*c.Std)
	default:
		v = c.Min + rng.Float64()*(c.Max-c.Min)
	}
	if c.Max > c.Min {
		v = stats.Clamp(v, c.Min, c.Max)
	}
	return roundTo(v, c.Round)
}

func expClamped(x float64) float64 {
	// exp overflows past ~709; schema parameters never get close, but
	// guard so a bad schema degrades instead of producing +Inf.
	if x > 300 {
		x = 300
	}
	return math.Exp(x)
}

func sampleCategory(c *Col, rng *rand.Rand) int {
	if len(c.CatW) == 0 {
		return rng.Intn(len(c.Cats))
	}
	total := stats.Sum(c.CatW)
	x := rng.Float64() * total
	for i, w := range c.CatW {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(c.Cats) - 1
}

func roundTo(v, unit float64) float64 {
	if unit <= 0 {
		return v
	}
	q := v / unit
	if q >= 0 {
		return unit * float64(int64(q+0.5))
	}
	return unit * float64(int64(q-0.5))
}
