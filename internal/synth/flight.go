package synth

import (
	"fmt"
	"math/rand"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// Flight reproduces the conflict structure of the flight data set of Li et
// al. [11]: ~1,200 flights tracked over a month across 38 sources (airline
// sites, airport sites, third-party trackers), with 6 properties — four
// time properties converted to minutes (scheduled/actual departure and
// arrival, continuous) and two gate properties (categorical), matching the
// paper's heterogeneous treatment.
//
// Error structure. The published analysis of this data set attributes most
// conflicts to sources that lag behind updates: when a flight is delayed
// or its gate changes, slow sources keep reporting the scheduled time or
// the original gate. The simulator reproduces that: actual-time errors are
// concentrated on delayed flights (where slow sources serve the scheduled
// time — a *shared* wrong value), and gate errors on gate-change events
// (slow sources serve the original gate). The resulting correlated wrong
// values give plain voting its ≈8.6% error in the paper, with
// reliability-aware methods below it.
type FlightConfig struct {
	Seed    int64
	Flights int // default 200
	Days    int // default 20
	// TruthFrac is the fraction of entries with ground truth; Table 1
	// lists 16,572 of 204,422 ≈ 0.08. Default 0.08.
	TruthFrac float64
	// DelayRate is the fraction of (flight, day) objects that are
	// delayed (default 0.4); GateChangeRate the fraction whose gate
	// changes after initial assignment (default 0.25).
	DelayRate      float64
	GateChangeRate float64
	// MissedUpdateRate is the probability that a delay or gate change
	// lands after every source's last crawl, so all sources serve the
	// stale value (default 0.18 of changed entries). This irreducible
	// error floor is what keeps even the best method around the paper's
	// ≈8% flight error rate.
	MissedUpdateRate float64
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Flights == 0 {
		c.Flights = 200
	}
	if c.Days == 0 {
		c.Days = 20
	}
	if c.TruthFrac == 0 {
		c.TruthFrac = 0.08
	}
	if c.DelayRate == 0 {
		c.DelayRate = 0.4
	}
	if c.GateChangeRate == 0 {
		c.GateChangeRate = 0.25
	}
	if c.MissedUpdateRate == 0 {
		c.MissedUpdateRate = 0.18
	}
	return c
}

var flightGates = func() []string {
	var gs []string
	for _, t := range []string{"A", "B", "C", "D"} {
		for n := 1; n <= 30; n++ {
			gs = append(gs, fmt.Sprintf("%s%d", t, n))
		}
	}
	return gs
}()

// Flight generates the flight dataset and partial ground truth. Objects
// are (flight, day) pairs timestamped by day. Continuous times are minutes
// since midnight.
func Flight(cfg FlightConfig) (*data.Dataset, *data.Table) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := data.NewBuilder()

	schedDepP := b.MustProperty("scheduled_departure", data.Continuous)
	actDepP := b.MustProperty("actual_departure", data.Continuous)
	schedArrP := b.MustProperty("scheduled_arrival", data.Continuous)
	actArrP := b.MustProperty("actual_arrival", data.Continuous)
	depGateP := b.MustProperty("departure_gate", data.Categorical)
	arrGateP := b.MustProperty("arrival_gate", data.Categorical)
	gateIDs := make([][2]int, len(flightGates))
	for i, g := range flightGates {
		gateIDs[i] = [2]int{b.CatValue(depGateP, g), b.CatValue(arrGateP, g)}
	}

	// 38 sources: staleP is the chance the source lags behind a delay or
	// gate-change update; jitter is independent scrape noise.
	const K = 38
	type src struct {
		id       int
		staleP   float64
		jitterP  float64
		jitter   float64 // minutes of error when jittering
		coverage float64
	}
	srcs := make([]src, K)
	for k := 0; k < K; k++ {
		s := src{id: b.Source(fmt.Sprintf("flight-src%02d", k))}
		switch {
		case k < 8: // airline/airport official: fast updates
			s.staleP, s.jitterP, s.jitter = 0.12, 0.02, 5
		case k < 28: // trackers
			s.staleP, s.jitterP, s.jitter = 0.45, 0.06, 12
		default: // stale tail
			s.staleP, s.jitterP, s.jitter = 0.92, 0.15, 30
		}
		s.coverage = 0.35 + rng.Float64()*0.55
		srcs[k] = s
	}

	const M = 6
	gtRng := rand.New(rand.NewSource(cfg.Seed + 1))
	type entryTruth struct {
		e int
		v data.Value
	}
	var gts []entryTruth

	// Per-flight schedule: fixed scheduled times; per-day actuals add
	// delay. Gates change day to day.
	type flight struct {
		schedDep, duration float64
	}
	flights := make([]flight, cfg.Flights)
	for i := range flights {
		flights[i] = flight{
			schedDep: float64(300 + rng.Intn(1140)), // 05:00..23:59
			duration: float64(45 + rng.Intn(360)),
		}
	}

	for i := 0; i < cfg.Flights; i++ {
		for day := 0; day < cfg.Days; day++ {
			obj := b.Object(fmt.Sprintf("fl%04d/day%02d", i, day))
			b.SetTimestampIdx(obj, day)
			f := &flights[i]
			delayed := rng.Float64() < cfg.DelayRate
			delay := 0.0
			if delayed {
				delay = 10 + rng.ExpFloat64()*35
			}
			schedDep := f.schedDep
			actDep := roundTo(schedDep+delay, 1)
			schedArr := roundTo(schedDep+f.duration, 1)
			actArr := roundTo(schedArr+delay*(0.6+0.6*rng.Float64()), 1)

			depGate := rng.Intn(len(gateIDs))
			arrGate := rng.Intn(len(gateIDs))
			// Gate changes: the stale (original) assignment slow
			// sources keep serving.
			oldDepGate, oldArrGate := depGate, arrGate
			if rng.Float64() < cfg.GateChangeRate {
				oldDepGate = rng.Intn(len(gateIDs))
			}
			if rng.Float64() < cfg.GateChangeRate {
				oldArrGate = rng.Intn(len(gateIDs))
			}

			wantTruth := gtRng.Float64() < cfg.TruthFrac

			// Continuous time properties. The stale fallback for
			// actual times is the scheduled time.
			conts := []struct {
				p            int
				truth, stale float64
			}{
				{schedDepP, schedDep, schedDep},
				{actDepP, actDep, schedDep},
				{schedArrP, schedArr, schedArr},
				{actArrP, actArr, schedArr},
			}
			for _, ct := range conts {
				if wantTruth {
					gts = append(gts, entryTruth{obj*M + ct.p, data.Float(ct.truth)})
				}
				// A missed update lands after everyone's last crawl:
				// all sources serve the stale value.
				allStale := !stats.ApproxEq(ct.truth, ct.stale) && rng.Float64() < cfg.MissedUpdateRate
				for _, sc := range srcs {
					if rng.Float64() >= sc.coverage {
						continue
					}
					v := ct.truth
					if allStale || (delayed && !stats.ApproxEq(ct.truth, ct.stale) && rng.Float64() < sc.staleP) {
						v = ct.stale
					} else if rng.Float64() < sc.jitterP {
						v = roundTo(v+rng.NormFloat64()*sc.jitter, 1)
					}
					b.ObserveIdx(sc.id, obj, ct.p, data.Float(v))
				}
			}

			// Gate properties. The stale fallback is the original
			// assignment.
			cats := []struct {
				p            int
				truth, stale int
				dict         int // 0 = departure dict, 1 = arrival dict
			}{
				{depGateP, depGate, oldDepGate, 0},
				{arrGateP, arrGate, oldArrGate, 1},
			}
			for _, ca := range cats {
				truthID := gateIDs[ca.truth][ca.dict]
				if wantTruth {
					gts = append(gts, entryTruth{obj*M + ca.p, data.Cat(truthID)})
				}
				allStale := ca.truth != ca.stale && rng.Float64() < cfg.MissedUpdateRate
				for _, sc := range srcs {
					if rng.Float64() >= sc.coverage {
						continue
					}
					id := truthID
					if allStale || (ca.truth != ca.stale && rng.Float64() < sc.staleP) {
						id = gateIDs[ca.stale][ca.dict]
					} else if rng.Float64() < sc.jitterP {
						id = gateIDs[rng.Intn(len(gateIDs))][ca.dict]
					}
					b.ObserveIdx(sc.id, obj, ca.p, data.Cat(id))
				}
			}
		}
	}

	d := b.Build()
	gt := data.NewTableFor(d)
	for _, g := range gts {
		gt.Set(g.e, g.v)
	}
	return d, gt
}
