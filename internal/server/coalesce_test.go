package server

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightGroupCoalesces proves the core guarantee deterministically:
// while one call for a key is inflight, every concurrent call for the
// same key waits for it and shares its result — exactly one execution.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const followers = 7

	var executions atomic.Int64
	leaderIn := make(chan struct{})  // closed when the leader is inside fn
	leaderOut := make(chan struct{}) // closed to release the leader
	want := &cachedResult{resp: &ResolveResponse{Dataset: "d", Version: 1}}

	// Hold the leader until every follower is provably blocked on it, so
	// the single-execution assertion is deterministic.
	var waiting sync.WaitGroup
	waiting.Add(followers)
	g.onWait = waiting.Done

	var wg sync.WaitGroup
	results := make([]*cachedResult, followers)
	shareds := make([]bool, followers)

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, shared := g.do("k", func() (*cachedResult, error) {
			executions.Add(1)
			close(leaderIn)
			<-leaderOut
			return want, nil
		})
		if err != nil || shared {
			t.Errorf("leader: err=%v shared=%v", err, shared)
		}
		if v != want {
			t.Error("leader got wrong value")
		}
	}()

	<-leaderIn // leader is now blocked inside fn; everyone else must coalesce
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.do("k", func() (*cachedResult, error) {
				executions.Add(1)
				return &cachedResult{}, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	waiting.Wait() // all followers are inside do, blocked on the leader
	close(leaderOut)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("executed %d times, want exactly 1", n)
	}
	for i := 0; i < followers; i++ {
		if !shareds[i] {
			t.Errorf("follower %d not marked shared", i)
		}
		if results[i] != want {
			t.Errorf("follower %d got a different instance", i)
		}
	}
}

// TestFlightGroupDistinctKeys checks distinct keys never coalesce.
func TestFlightGroupDistinctKeys(t *testing.T) {
	g := newFlightGroup()
	var executions atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			_, _, shared := g.do(key, func() (*cachedResult, error) {
				executions.Add(1)
				return &cachedResult{resp: &ResolveResponse{Dataset: key}}, nil
			})
			if shared {
				t.Errorf("key %s unexpectedly shared", key)
			}
		}(key)
	}
	wg.Wait()
	if n := executions.Load(); n != 3 {
		t.Fatalf("executed %d times, want 3", n)
	}
}

// TestFlightGroupSequentialReexecutes checks a finished flight does not
// serve later calls (that is the cache's job, at a new version-aware key).
func TestFlightGroupSequentialReexecutes(t *testing.T) {
	g := newFlightGroup()
	var executions atomic.Int64
	for i := 0; i < 3; i++ {
		_, _, shared := g.do("k", func() (*cachedResult, error) {
			executions.Add(1)
			return &cachedResult{}, nil
		})
		if shared {
			t.Fatalf("call %d: sequential call marked shared", i)
		}
	}
	if n := executions.Load(); n != 3 {
		t.Fatalf("executed %d times, want 3", n)
	}
}
