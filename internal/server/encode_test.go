package server

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// stdlibEncode renders v exactly as the server's old writeJSON did —
// encoding/json with HTML escaping off — minus the trailing newline.
// Every byte-equality assertion in this file compares the fast encoder
// against this reference.
func stdlibEncode(t testing.TB, v any) []byte {
	t.Helper()
	b, err := stdlibJSON(v)
	if err != nil {
		t.Fatalf("stdlib encode: %v", err)
	}
	return b
}

func fptr(f float64) *float64 { return &f }
func bptr(b bool) *bool       { return &b }

// goldenResponses covers the response shapes the encoder must replicate:
// value kinds, optional fields present and absent, hostile strings, and
// floats that cross encoding/json's fixed/exponent formatting boundary.
func goldenResponses() map[string]*ResolveResponse {
	return map[string]*ResolveResponse{
		"empty": {},
		"truths-null": {
			Dataset: "d", Version: 1, Method: "crh", Truths: nil,
		},
		"truths-empty": {
			Dataset: "d", Version: 1, Method: "crh", Truths: []TruthJSON{},
		},
		"mixed-values": {
			Dataset: "weather", Version: 7, Method: "crh",
			Truths: []TruthJSON{
				{Object: "o1", Property: "temp", Value: TruthValue{F: 12.5}},
				{Object: "o1", Property: "cond", Value: TruthValue{IsCat: true, Cat: "sunny"}},
				{Object: "o2", Property: "temp", Value: TruthValue{F: -0.125}},
			},
			Weights:    SourceWeights{{Name: "s1", Weight: 0.75}, {Name: "s2", Weight: 0.25}},
			Converged:  bptr(true),
			Iterations: 4,
		},
		"confidence-and-not-converged": {
			Dataset: "d", Version: 2, Method: "crh",
			Truths: []TruthJSON{
				{Object: "o", Property: "p", Value: TruthValue{F: 1}, Confidence: fptr(0.875)},
				{Object: "o", Property: "q", Value: TruthValue{IsCat: true, Cat: "x"}, Confidence: fptr(0)},
			},
			Converged:  bptr(false),
			Iterations: 20,
		},
		"baseline-no-weights": {
			Dataset: "d", Version: 3, Method: "Median",
			Truths: []TruthJSON{{Object: "o", Property: "p", Value: TruthValue{F: 3}}},
		},
		"hostile-strings": {
			Dataset: "quo\"te\\back\tslash\nnew", Version: 1, Method: "crh",
			Truths: []TruthJSON{
				{Object: "ctrl\x01\x1f", Property: "html<&>ok", Value: TruthValue{IsCat: true, Cat: "\u2028line\u2029sep"}},
				{Object: "bad\xffutf8", Property: "uni\u00e9\u4e16", Value: TruthValue{IsCat: true, Cat: "\bback\fform\rret"}},
			},
			Weights: SourceWeights{{Name: "s\"1", Weight: 1}},
		},
		"float-formats": {
			Dataset: "f", Version: 1, Method: "crh",
			Truths: []TruthJSON{
				{Object: "o", Property: "zero", Value: TruthValue{F: 0}},
				{Object: "o", Property: "negzero", Value: TruthValue{F: math.Copysign(0, -1)}},
				{Object: "o", Property: "tiny", Value: TruthValue{F: 1e-7}},
				{Object: "o", Property: "edge-lo", Value: TruthValue{F: 1e-6}},
				{Object: "o", Property: "edge-hi", Value: TruthValue{F: 1e21}},
				{Object: "o", Property: "below-hi", Value: TruthValue{F: 9.999999999999999e20}},
				{Object: "o", Property: "huge", Value: TruthValue{F: math.MaxFloat64}},
				{Object: "o", Property: "denorm", Value: TruthValue{F: 5e-324}},
				{Object: "o", Property: "third", Value: TruthValue{F: 1.0 / 3.0}},
				{Object: "o", Property: "neg-exp", Value: TruthValue{F: -2.5e-9}},
			},
			Weights: SourceWeights{{Name: "s", Weight: 1e-10}},
		},
	}
}

// TestEncodeGolden pins the contract: the append encoder's bytes equal
// encoding/json's for every golden response, standalone and wrapped in
// each of the three envelope variants.
func TestEncodeGolden(t *testing.T) {
	for name, resp := range goldenResponses() {
		t.Run(name, func(t *testing.T) {
			want := string(stdlibEncode(t, resp))
			got := string(appendResolveResponse(nil, resp))
			if got != want {
				t.Errorf("standalone:\n got %s\nwant %s", got, want)
			}

			body := encodeResolveBody(resp)
			for _, env := range []struct {
				prefix            string
				cached, coalesced bool
			}{
				{envPrefixPlain, false, false},
				{envPrefixCached, true, false},
				{envPrefixCoalesced, false, true},
			} {
				want := string(stdlibEncode(t, resolveEnvelope{
					Cached: env.cached, Coalesced: env.coalesced, ResolveResponse: resp,
				}))
				if got := env.prefix + string(body); got != want {
					t.Errorf("envelope cached=%v coalesced=%v:\n got %s\nwant %s",
						env.cached, env.coalesced, got, want)
				}
			}
		})
	}
}

// fuzzResponse deterministically shapes a ResolveResponse from raw fuzz
// inputs. Non-finite floats are rejected by the caller (encoding/json
// errors on them, and the serve pipeline never produces them).
func fuzzResponse(dataset, method, obj, prop, cat, w1, w2 string, f, conf, wa, wb float64, flags uint8) *ResolveResponse {
	resp := &ResolveResponse{Dataset: dataset, Version: int64(flags), Method: method}
	if flags&1 != 0 {
		resp.Truths = []TruthJSON{}
		t1 := TruthJSON{Object: obj, Property: prop, Value: TruthValue{F: f}}
		t2 := TruthJSON{Object: obj + "2", Property: prop, Value: TruthValue{IsCat: true, Cat: cat}}
		if flags&2 != 0 {
			t1.Confidence = fptr(conf)
			t2.Confidence = fptr(0)
		}
		resp.Truths = append(resp.Truths, t1, t2)
	}
	if flags&4 != 0 {
		ws := SourceWeights{{Name: w1, Weight: wa}}
		if w2 != w1 {
			ws = append(ws, SourceWeight{Name: w2, Weight: wb})
		}
		// The canonical in-memory order is name-sorted (options.go); the
		// differential is only meaningful over canonical responses.
		sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
		resp.Weights = ws
	}
	if flags&8 != 0 {
		resp.Converged = bptr(flags&16 != 0)
	}
	resp.Iterations = int(flags >> 5)
	return resp
}

// FuzzEncodeResolveResponse is the differential: for arbitrary response
// shapes the append encoder must agree with encoding/json byte for byte,
// standalone and through the envelope serve path.
func FuzzEncodeResolveResponse(f *testing.F) {
	f.Add("d", "crh", "o", "p", "sunny", "s1", "s2", 12.5, 0.8, 0.6, 0.4, uint8(0xff))
	f.Add("", "", "", "", "", "", "", 0.0, 0.0, 0.0, 0.0, uint8(0))
	f.Add("q\"uo", "m\\e", "c\x01trl", "uni\u00e9", "li\u2028ne", "bad\xffutf", "html<&>", 1e-7, -0.0, 1e21, 5e-324, uint8(7))
	f.Add("a", "b", "c", "d", "e", "dup", "dup", 1.0/3.0, 1e300, -2.5e-9, math.MaxFloat64, uint8(0x55))
	f.Fuzz(func(t *testing.T, dataset, method, obj, prop, cat, w1, w2 string, fv, conf, wa, wb float64, flags uint8) {
		for _, v := range []float64{fv, conf, wa, wb} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite floats never reach the encoder")
			}
		}
		resp := fuzzResponse(dataset, method, obj, prop, cat, w1, w2, fv, conf, wa, wb, flags)

		want := string(stdlibEncode(t, resp))
		got := string(appendResolveResponse(nil, resp))
		if got != want {
			t.Fatalf("standalone mismatch:\n got %s\nwant %s", got, want)
		}

		wantEnv := string(stdlibEncode(t, resolveEnvelope{Cached: true, ResolveResponse: resp}))
		gotEnv := envPrefixCached + string(encodeResolveBody(resp))
		if gotEnv != wantEnv {
			t.Fatalf("envelope mismatch:\n got %s\nwant %s", gotEnv, wantEnv)
		}
	})
}

// nopResponseWriter is the allocation test's sink: header pre-allocated,
// writes discarded, WriteString supported (like net/http's writer).
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header { return w.h }

func (nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

func (nopResponseWriter) WriteString(s string) (int, error) { return len(s), nil }

func (nopResponseWriter) WriteHeader(int) {}

// TestEncodeAllocs pins the allocation behavior of the encode and serve
// paths; ci.sh runs it as the encode-allocation regression stage. The
// pins are ceilings — if a change pushes a count above one, the hot path
// regressed.
func TestEncodeAllocs(t *testing.T) {
	resp := goldenResponses()["mixed-values"]

	// Appending into a pre-sized buffer must not allocate at all.
	buf := make([]byte, 0, 4096)
	if avg := testing.AllocsPerRun(200, func() {
		buf = appendResolveFields(buf[:0], resp)
	}); avg != 0 {
		t.Errorf("appendResolveFields: %v allocs/op, want 0", avg)
	}

	// The pooled body encode retains exactly one allocation: the cached
	// copy itself.
	if avg := testing.AllocsPerRun(200, func() {
		_ = encodeResolveBody(resp)
	}); avg > 1 {
		t.Errorf("encodeResolveBody: %v allocs/op, want ≤ 1", avg)
	}

	// The cache-hit serve path — stamping a prefix in front of cached
	// bytes — stays under four allocations: two header values
	// (Content-Type is amortized by Set, Content-Length changes per
	// response) plus the Content-Length digits from strconv.Itoa.
	body := encodeResolveBody(resp)
	w := nopResponseWriter{h: make(http.Header, 4)}
	if avg := testing.AllocsPerRun(200, func() {
		writeResolveEnvelope(w, envPrefixCached, body)
	}); avg > 4 {
		t.Errorf("writeResolveEnvelope: %v allocs/op, want ≤ 4", avg)
	}
}

// TestServeCachedBytes checks the serve path end to end: a cache hit's
// body must be byte-identical to the miss's except for the envelope
// flags, proving hits serve the precomputed bytes, not a re-encode.
func TestServeCachedBytes(t *testing.T) {
	_, ts := testServer(t)
	mustCreate(t, ts.URL, "d", testTSV)

	read := func() string {
		resp, err := http.Post(ts.URL+"/v1/datasets/d/resolve", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resolve: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	miss, hit := read(), read()
	if !strings.HasPrefix(miss, envPrefixPlain) {
		t.Fatalf("miss body prefix: %q", miss[:40])
	}
	if !strings.HasPrefix(hit, envPrefixCached) {
		t.Fatalf("hit body prefix: %q", hit[:40])
	}
	if !strings.HasSuffix(miss, "\n") || !strings.HasSuffix(hit, "\n") {
		t.Fatal("responses must keep the Encoder trailing newline")
	}
	if miss[len(envPrefixPlain):] != hit[len(envPrefixCached):] {
		t.Fatalf("hit served different bytes than miss:\nmiss %s\nhit  %s", miss, hit)
	}
}
