package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// MethodCRH is the resolve method name for the CRH framework itself; any
// name from baseline.Names() selects that baseline instead.
const MethodCRH = "crh"

// ResolveRequest is the JSON body of POST /v1/datasets/{name}/resolve.
// A missing or empty body selects CRH with the paper's defaults.
type ResolveRequest struct {
	// Method is "crh" (default) or a registered baseline name.
	Method string `json:"method,omitempty"`
	// Options tunes the CRH solver; ignored for baselines.
	Options ResolveOptions `json:"options,omitempty"`
}

// ResolveOptions mirrors the tunable pieces of crh.Options over JSON.
// Zero values select the paper's defaults. Options apply only to the
// "crh" method; baselines run with their authors' parameters.
type ResolveOptions struct {
	// ContinuousLoss: "absolute" (default), "squared", or "huber".
	ContinuousLoss string `json:"continuous_loss,omitempty"`
	// CategoricalLoss: "zero-one" (default), "probabilistic", or
	// "edit-distance".
	CategoricalLoss string `json:"categorical_loss,omitempty"`
	// Weights: "exp-max" (default), "exp-sum", "best-source", "top-j",
	// or "catd".
	Weights string `json:"weights,omitempty"`
	// TopJ is the source count for the "top-j" scheme (default 3).
	TopJ int `json:"top_j,omitempty"`
	// MaxIters bounds the solver iterations (default 20).
	MaxIters int `json:"max_iters,omitempty"`
	// Confidence requests per-entry confidence scores in the response.
	Confidence bool `json:"confidence,omitempty"`
}

// normalize fills defaults in place so equivalent requests hash equally.
func (r *ResolveRequest) normalize() {
	if r.Method == "" {
		r.Method = MethodCRH
	}
	o := &r.Options
	if o.ContinuousLoss == "" {
		o.ContinuousLoss = "absolute"
	}
	if o.CategoricalLoss == "" {
		o.CategoricalLoss = "zero-one"
	}
	if o.Weights == "" {
		o.Weights = "exp-max"
	}
	if o.TopJ == 0 {
		o.TopJ = 3
	}
	if o.MaxIters == 0 {
		o.MaxIters = 20
	}
}

// validate checks the normalized request, resolving the baseline method
// when one is named (nil for CRH itself).
func (r *ResolveRequest) validate() (baseline.Method, error) {
	if r.Method != MethodCRH {
		m, ok := baseline.ByName(r.Method)
		if !ok {
			return nil, fmt.Errorf("unknown method %q (known: %s, %v)", r.Method, MethodCRH, baseline.Names())
		}
		return m, nil
	}
	if _, err := r.Options.build(); err != nil {
		return nil, err
	}
	return nil, nil
}

// build translates the normalized options into a solver configuration.
func (o ResolveOptions) build() (core.Config, error) {
	cfg := core.Config{MaxIters: o.MaxIters, ComputeConfidence: o.Confidence}
	switch o.ContinuousLoss {
	case "absolute":
		cfg.ContinuousLoss = loss.NormalizedAbsolute{}
	case "squared":
		cfg.ContinuousLoss = loss.NormalizedSquared{}
	case "huber":
		cfg.ContinuousLoss = loss.Huber{}
	default:
		return cfg, fmt.Errorf("unknown continuous_loss %q", o.ContinuousLoss)
	}
	switch o.CategoricalLoss {
	case "zero-one":
		cfg.CategoricalLoss = loss.ZeroOne{}
	case "probabilistic":
		cfg.CategoricalLoss = loss.SquaredProb{}
	case "edit-distance":
		cfg.CategoricalLoss = loss.EditDistance{}
	default:
		return cfg, fmt.Errorf("unknown categorical_loss %q", o.CategoricalLoss)
	}
	switch o.Weights {
	case "exp-max":
		cfg.Scheme = reg.ExpMax{}
	case "exp-sum":
		cfg.Scheme = reg.ExpSum{}
	case "best-source":
		cfg.Scheme = reg.BestSource{}
	case "top-j":
		if o.TopJ < 1 {
			return cfg, fmt.Errorf("top_j must be positive, got %d", o.TopJ)
		}
		cfg.Scheme = reg.TopJ{J: o.TopJ}
	case "catd":
		cfg.Scheme = reg.CATD{}
	default:
		return cfg, fmt.Errorf("unknown weights %q", o.Weights)
	}
	return cfg, nil
}

// cacheKey identifies one computation: dataset identity (uid, not name,
// so a deleted-then-recreated dataset never aliases), dataset version,
// method, and the normalized options. Identical keys ⇒ identical results,
// which is what makes both the LRU cache and request coalescing sound.
func cacheKey(uid, version int64, req *ResolveRequest) string {
	if req.Method != MethodCRH {
		// Baselines ignore options, so differing (ignored) options must
		// still coalesce to one computation.
		return fmt.Sprintf("%d@%d|m=%s", uid, version, req.Method)
	}
	o := req.Options
	return fmt.Sprintf("%d@%d|m=crh|cl=%s|tl=%s|w=%s|j=%d|it=%d|conf=%t",
		uid, version, o.ContinuousLoss, o.CategoricalLoss, o.Weights, o.TopJ, o.MaxIters, o.Confidence)
}

// TruthValue is the resolved value of one entry: a float64 for
// continuous properties or a string for categorical ones. Holding both
// representations in concrete fields (instead of a single `any`) keeps
// the resolve hot path free of interface boxing; on the wire the value
// is still a bare JSON number or string, via MarshalJSON.
type TruthValue struct {
	// IsCat selects the representation: Cat when true, F otherwise.
	IsCat bool
	// F is the continuous value (valid when !IsCat).
	F float64
	// Cat is the categorical value (valid when IsCat).
	Cat string
}

// MarshalJSON renders the value as a bare JSON number or string. It goes
// through encoding/json deliberately: this slow path is the reference
// the fuzz differential in encode_test.go holds the append-based fast
// encoder against, so it must not share that encoder's code.
func (v TruthValue) MarshalJSON() ([]byte, error) {
	if v.IsCat {
		return stdlibJSON(v.Cat)
	}
	return stdlibJSON(v.F)
}

// UnmarshalJSON accepts a JSON number (continuous) or string
// (categorical) — the same shapes ingest accepts for observations.
func (v *TruthValue) UnmarshalJSON(b []byte) error {
	var f float64
	if err := json.Unmarshal(b, &f); err == nil {
		*v = TruthValue{F: f}
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		*v = TruthValue{IsCat: true, Cat: s}
		return nil
	}
	return fmt.Errorf("truth value must be a JSON number or string")
}

// stdlibJSON marshals v with encoding/json under the server's encoder
// settings (HTML escaping off), without the Encoder's trailing newline.
func stdlibJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// TruthJSON is one resolved entry in a response.
type TruthJSON struct {
	// Object and Property name the entry the value resolves.
	Object   string `json:"object"`
	Property string `json:"property"` // see Object
	// Value is a float64 for continuous properties, a string for
	// categorical ones.
	Value TruthValue `json:"value"`
	// Confidence is present when the request asked for it (CRH only).
	Confidence *float64 `json:"confidence,omitempty"`
}

// SourceWeight pairs one source name with its estimated reliability
// weight.
type SourceWeight struct {
	// Name is the source; Weight its reliability estimate.
	Name   string
	Weight float64 // see Name
}

// SourceWeights is a name-sorted list of per-source weights. On the wire
// it is a JSON object keyed by source name — the shape the endpoint has
// always served — but in memory it is a flat slice, so building a
// response allocates no intermediate map. The list must be kept sorted
// by Name: encoding/json emits map keys sorted, and the fast encoder
// emits the slice in order, so sortedness is what keeps the two
// byte-identical.
type SourceWeights []SourceWeight

// MarshalJSON renders the weights as a JSON object via encoding/json
// (the reference path for the fuzz differential; see TruthValue).
func (ws SourceWeights) MarshalJSON() ([]byte, error) {
	m := make(map[string]float64, len(ws))
	for _, w := range ws {
		m[w.Name] = w.Weight
	}
	return stdlibJSON(m)
}

// UnmarshalJSON decodes the JSON-object shape back into the canonical
// name-sorted slice.
func (ws *SourceWeights) UnmarshalJSON(b []byte) error {
	var m map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	out := make(SourceWeights, 0, len(m))
	for name, w := range m {
		out = append(out, SourceWeight{Name: name, Weight: w})
	}
	// The map range above has no order; sorting restores the canonical
	// order before anyone reads the slice.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	*ws = out
	return nil
}

// Get returns the weight recorded for the named source (0 when absent,
// matching the old map lookup).
func (ws SourceWeights) Get(name string) float64 {
	for _, w := range ws {
		if w.Name == name {
			return w.Weight
		}
	}
	return 0
}

// ResolveResponse is the shared, immutable result of one computation. The
// same instance may be served to many requests (cache hits, coalesced
// followers); the per-request cached/coalesced flags live in the HTTP
// envelope, never here.
type ResolveResponse struct {
	// Dataset and Version identify the snapshot that was resolved;
	// Method is the algorithm that resolved it.
	Dataset string `json:"dataset"`
	Version int64  `json:"version"` // see Dataset
	Method  string `json:"method"`  // see Dataset
	// Truths lists every resolved entry, ordered by object then property.
	Truths []TruthJSON `json:"truths"`
	// Weights lists per-source reliability weights, name-sorted; omitted
	// for baselines that estimate none.
	Weights SourceWeights `json:"weights,omitempty"`
	// Converged and Iterations report solver diagnostics (CRH only).
	Converged  *bool `json:"converged,omitempty"`
	Iterations int   `json:"iterations,omitempty"` // see Converged
}

func sortTruths(ts []TruthJSON) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Object != ts[j].Object {
			return ts[i].Object < ts[j].Object
		}
		return ts[i].Property < ts[j].Property
	})
}
