package server

import (
	"fmt"
	"sort"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stream"
	"github.com/crhkit/crh/internal/wal"
)

// This file is the bridge between the registry's in-memory model and the
// durable store in internal/wal: type conversions, snapshot capture, and
// boot-time recovery. The recovery contract is exact — a recovered entry
// is bit-for-bit identical (snapshot data, warm truths, source weights)
// to the entry the crashed process held at the last acknowledged version,
// because replayed WAL batches flow through the same entry.apply path as
// live ingest (docs/DURABILITY.md).

func kindOf(t data.Type) wal.Kind {
	if t == data.Categorical {
		return wal.Categorical
	}
	return wal.Continuous
}

func typeOf(k wal.Kind) data.Type {
	if k == wal.Categorical {
		return data.Categorical
	}
	return data.Continuous
}

func recsToWAL(recs []obsRec) []wal.Obs {
	out := make([]wal.Obs, len(recs))
	for i, r := range recs {
		out[i] = wal.Obs{
			Source:   r.src,
			Object:   r.obj,
			Property: r.prop,
			Kind:     kindOf(r.typ),
			F:        r.f,
			Cat:      r.cat,
			TS:       r.ts,
			HasTS:    r.hasTS,
		}
	}
	return out
}

func walToRecs(obs []wal.Obs) []obsRec {
	out := make([]obsRec, len(obs))
	for i, o := range obs {
		out[i] = obsRec{
			src:   o.Source,
			obj:   o.Object,
			prop:  o.Property,
			typ:   typeOf(o.Kind),
			f:     o.F,
			cat:   o.Cat,
			ts:    o.TS,
			hasTS: o.HasTS,
		}
	}
	return out
}

// walSnapshot captures the entry's full durable state at the given
// version: interning orders (sources, properties), the canonical
// observation log, ground truth, I-CRH processor state, and the warm
// truth table. Caller holds e.mu or exclusively owns e.
func (e *entry) walSnapshot(version int64) *wal.Snapshot {
	s := &wal.Snapshot{
		Version: version,
		Sources: append([]string(nil), e.sources...),
		Props:   make([]wal.Prop, len(e.props)),
		Obs:     recsToWAL(e.log),
		GT:      make([]wal.Truth, len(e.gt)),
	}
	for i, p := range e.props {
		s.Props[i] = wal.Prop{Name: p.name, Kind: kindOf(p.typ)}
	}
	for i, g := range e.gt {
		s.GT[i] = wal.Truth{Object: g.obj, Property: g.prop, Kind: kindOf(g.typ), F: g.f, Cat: g.cat}
	}
	s.Weights, s.Accum, s.Chunks = e.proc.State()

	e.warmMu.RLock()
	s.Warm = make([]wal.Truth, 0, len(e.warmTruths))
	for k, v := range e.warmTruths {
		s.Warm = append(s.Warm, wal.Truth{
			Object:   k.obj,
			Property: k.prop,
			Kind:     kindOf(v.typ),
			F:        v.f,
			Cat:      v.cat,
		})
	}
	e.warmMu.RUnlock()
	return s
}

// EnableDurability attaches a durable store to the registry and recovers
// every dataset it holds: each is rebuilt from its newest valid snapshot,
// then WAL batches past the snapshot are replayed through the normal
// ingest apply path, leaving the entry exactly at its pre-crash version.
// Must be called once, before the registry is shared; the registry must
// be empty. snapshotEvery is the batch cadence for checkpointing (a
// snapshot every N ingested batches retires the WAL segments it covers).
func (r *Registry) EnableDurability(store *wal.Store, snapshotEvery int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) != 0 {
		return fmt.Errorf("wal: EnableDurability on a non-empty registry")
	}
	r.store = store
	r.snapshotEvery = snapshotEvery

	names, err := store.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		e, err := r.recoverDataset(name)
		if err != nil {
			return fmt.Errorf("recover dataset %q: %w", name, err)
		}
		r.entries[name] = e
	}
	return nil
}

// recoverDataset rebuilds one dataset from its on-disk state. Caller
// holds r.mu.
func (r *Registry) recoverDataset(name string) (*entry, error) {
	dl, snap, batches, err := r.store.Open(name)
	if err != nil {
		return nil, err
	}
	e := &entry{
		name:       name,
		uid:        r.nextUID.Add(1),
		srcSet:     make(map[string]int),
		propSet:    make(map[string]data.Type),
		warmTruths: make(map[warmKey]warmVal),
		snapEvery:  r.snapshotEvery,
		lastSnap:   snap.Version,
	}
	// Interning orders must be restored exactly as captured — the I-CRH
	// weight vector is positional, and rebuild/buildChunk emit sources
	// and properties in interning order.
	for _, s := range snap.Sources {
		e.internSource(s)
	}
	for _, p := range snap.Props {
		e.internProp(p.Name, typeOf(p.Kind))
	}
	e.log = walToRecs(snap.Obs)
	e.gt = make([]gtRec, len(snap.GT))
	for i, g := range snap.GT {
		e.gt[i] = gtRec{obj: g.Object, prop: g.Property, typ: typeOf(g.Kind), f: g.F, cat: g.Cat}
	}
	e.proc = stream.NewProcessor(len(snap.Sources), r.streamCfg)
	e.proc.Restore(snap.Weights, snap.Accum, snap.Chunks)
	if snap.Chunks > 0 {
		for _, w := range snap.Warm {
			e.warmTruths[warmKey{w.Object, w.Property}] = warmVal{typ: typeOf(w.Kind), f: w.F, cat: w.Cat}
		}
		e.warmWeights = append([]float64(nil), snap.Weights...)
		e.warmSources = append([]string(nil), e.sources...)
		e.chunks = snap.Chunks
	}
	e.warmVersion = snap.Version // not yet published; no lock needed
	e.snap.Store(e.rebuild(snap.Version))

	for _, b := range batches {
		want := e.snap.Load().Version + 1
		if b.Version != want {
			//lint:ignore errflow the corruption error below supersedes any close failure on the bail-out path
			_ = dl.Close()
			return nil, fmt.Errorf("%w: WAL batch version %d, want %d", wal.ErrCorrupt, b.Version, want)
		}
		e.apply(walToRecs(b.Obs), b.Version)
	}
	e.dlog = dl
	return e, nil
}

// FlushDurable fsyncs every dataset's WAL, regardless of fsync policy —
// making lazily-synced (interval/off) writes durable without closing
// anything.
func (r *Registry) FlushDurable() error {
	var firstErr error
	r.eachDurable(func(e *entry) {
		if err := e.dlog.Sync(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("flush %q: %w", e.name, err)
		}
	})
	return firstErr
}

// CloseDurable flushes and closes every dataset's WAL — the graceful-
// shutdown path. The entries stay registered (the process is exiting);
// ingest after CloseDurable would fail its durable append. The first
// close failure is returned: a failed final fsync means the tail of the
// log may not have reached stable storage, and shutdown must say so.
func (r *Registry) CloseDurable() error {
	var firstErr error
	r.eachDurable(func(e *entry) {
		if err := e.dlog.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("close %q: %w", e.name, err)
		}
		e.dlog = nil
	})
	return firstErr
}

// eachDurable runs f under e.mu for every entry with a WAL handle, in
// name order.
func (r *Registry) eachDurable(f func(e *entry)) {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		e.mu.Lock()
		if e.dlog != nil {
			f(e)
		}
		e.mu.Unlock()
	}
}
