package server

import (
	"container/list"
	"sync"
)

// cachedResult is what one computation leaves behind: the immutable
// response and its pre-encoded body bytes (`"dataset":...}` — everything
// after the per-request envelope prefix; see encode.go). Caching the
// bytes next to the response is what lets cache hits and coalesced
// followers skip the encode stage entirely.
type cachedResult struct {
	// resp is the shared immutable response; body its encoded fields.
	resp *ResolveResponse
	body []byte // see resp
}

// resultCache is a fixed-capacity LRU cache for resolve results, keyed
// by (dataset uid, dataset version, method, options hash). Values are
// immutable once inserted, so a cached *cachedResult may be served to
// any number of concurrent readers.
//
// Stale entries need no explicit invalidation: ingest bumps the dataset
// version (changing every future key) and deleted datasets never reuse a
// uid, so superseded entries simply age out of the LRU order.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key string
	val *cachedResult
}

// newResultCache returns an LRU cache holding up to capacity responses.
// capacity < 1 is treated as 1.
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, marking it most recently used.
func (c *resultCache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// add inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity.
func (c *resultCache) add(key string, val *cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// capacity returns the configured maximum size.
func (c *resultCache) capacity() int { return c.cap }
