package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	a := &cachedResult{resp: &ResolveResponse{Dataset: "a"}}
	b := &cachedResult{resp: &ResolveResponse{Dataset: "b"}}
	d := &cachedResult{resp: &ResolveResponse{Dataset: "d"}}
	c.add("a", a)
	c.add("b", b)
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.add("d", d) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v != a {
		t.Fatal("a lost")
	}
	if v, ok := c.get("d"); !ok || v != d {
		t.Fatal("d lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := newResultCache(2)
	v1 := &cachedResult{resp: &ResolveResponse{Version: 1}}
	v2 := &cachedResult{resp: &ResolveResponse{Version: 2}}
	c.add("k", v1)
	c.add("k", v2)
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if v, _ := c.get("k"); v != v2 {
		t.Fatal("refresh did not replace value")
	}
}

func TestCacheCapacityFloor(t *testing.T) {
	c := newResultCache(0)
	if c.capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", c.capacity())
	}
	c.add("a", &cachedResult{})
	c.add("b", &cachedResult{})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run with
// -race this verifies the locking.
func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				if i%3 == 0 {
					c.add(key, &cachedResult{resp: &ResolveResponse{Dataset: key}})
				} else if v, ok := c.get(key); ok && v.resp.Dataset != key {
					t.Errorf("key %s returned value for %s", key, v.resp.Dataset)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 16 {
		t.Fatalf("len = %d exceeds capacity", c.len())
	}
}
