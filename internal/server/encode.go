package server

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf8"
)

// This file is the resolve path's streaming JSON encoder. CRH results are
// immutable once computed (the determinism contract in docs/PARALLEL.md),
// so the server encodes each ResolveResponse exactly once — straight into
// a flat []byte with strconv appends, no reflection, no intermediate maps
// — and caches the bytes next to the response. Cache hits and coalesced
// followers then serve the precomputed body; the only per-request work is
// stamping the tiny cached/coalesced envelope prefix in front of it.
//
// The output is byte-for-byte identical to what encoding/json (with
// SetEscapeHTML(false), the server's writeJSON setting) produces for the
// same value: same field order, same ES6-style float formatting, same
// string escaping. encode_test.go pins this with a golden suite and a
// fuzz differential against the stdlib encoder.

// Envelope prefixes: the serving-metadata flags stamped per request in
// front of the shared body bytes. They are exactly the opening
// encoding/json produces for resolveEnvelope, so prefix + body + '\n'
// is byte-identical to the old full json.Encoder encode.
const (
	envPrefixPlain     = `{"cached":false,"coalesced":false,`
	envPrefixCached    = `{"cached":true,"coalesced":false,`
	envPrefixCoalesced = `{"cached":false,"coalesced":true,`
)

// encodeBufPool recycles encode scratch buffers. Buffers grow to the
// largest response they have carried and are reused as-is, so the steady
// state appends without reallocating.
var encodeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// encodeResolveBody encodes resp's body — everything after the
// envelope's opening brace, `"dataset":...}` — into a fresh exact-size
// slice suitable for long-term caching. The scratch buffer is pooled;
// the returned copy is the single allocation retained per computation
// (pinned by TestEncodeAllocs). Deliberately not a //crh:hotpath
// root: it runs once per computation, not per request, and the retained
// copy is the cached body itself.
func encodeResolveBody(resp *ResolveResponse) []byte {
	bp := encodeBufPool.Get().(*[]byte)
	b := appendResolveFields((*bp)[:0], resp)
	body := make([]byte, len(b))
	copy(body, b)
	*bp = b
	encodeBufPool.Put(bp)
	return body
}

// writeResolveEnvelope writes one resolve response: the per-request
// envelope prefix (one of the envPrefix constants), the shared
// precomputed body bytes, and the Encoder-compatible trailing newline.
// The total length is known up front, so Content-Length is declared and
// net/http sends the body identity-encoded — no chunked framing around
// each write, which matters when the body is tens of kilobytes. The
// tiny prefix and newline writes ride net/http's connection buffer; the
// body write passes straight through to the socket. Write errors are
// ignored for the same reason writeJSON ignores them: the status line
// is already out.
//
//crh:hotpath
func writeResolveEnvelope(w http.ResponseWriter, prefix string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(prefix)+len(body)+1))
	w.WriteHeader(http.StatusOK)
	_, _ = stringWriter(w, prefix)
	_, _ = w.Write(body)
	_, _ = w.Write(newline)
}

// newline is the Encoder-compatible body terminator, shared so the hot
// path never allocates it.
var newline = []byte{'\n'}

// stringWriter writes s without a []byte conversion when w supports it
// (net/http's response writer does).
func stringWriter(w http.ResponseWriter, s string) (int, error) {
	if sw, ok := w.(interface{ WriteString(string) (int, error) }); ok {
		return sw.WriteString(s)
	}
	//lint:ignore hotpath fallback for writers without WriteString (test recorders); net/http never takes this branch
	return w.Write([]byte(s))
}

// appendResolveResponse appends the full encoding/json rendering of resp
// (no trailing newline) — the stand-alone form the golden and fuzz tests
// compare against the stdlib encoder.
func appendResolveResponse(b []byte, resp *ResolveResponse) []byte {
	b = append(b, '{')
	return appendResolveFields(b, resp)
}

// appendResolveFields appends resp's fields — `"dataset":` through the
// closing brace — in ResolveResponse declaration order, mirroring
// encoding/json's struct walk (omitempty included).
//
//crh:hotpath
//lint:ignore hotpath every append lands in a pooled scratch buffer that keeps its capacity across requests; steady state reallocates nothing
func appendResolveFields(b []byte, resp *ResolveResponse) []byte {
	b = append(b, `"dataset":`...)
	b = appendJSONString(b, resp.Dataset)
	b = append(b, `,"version":`...)
	b = strconv.AppendInt(b, resp.Version, 10)
	b = append(b, `,"method":`...)
	b = appendJSONString(b, resp.Method)
	b = append(b, `,"truths":`...)
	if resp.Truths == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i := range resp.Truths {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendTruth(b, &resp.Truths[i])
		}
		b = append(b, ']')
	}
	if len(resp.Weights) > 0 {
		b = append(b, `,"weights":{`...)
		for i := range resp.Weights {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, resp.Weights[i].Name)
			b = append(b, ':')
			b = appendJSONFloat(b, resp.Weights[i].Weight)
		}
		b = append(b, '}')
	}
	if resp.Converged != nil {
		if *resp.Converged {
			b = append(b, `,"converged":true`...)
		} else {
			b = append(b, `,"converged":false`...)
		}
	}
	if resp.Iterations != 0 {
		b = append(b, `,"iterations":`...)
		b = strconv.AppendInt(b, int64(resp.Iterations), 10)
	}
	return append(b, '}')
}

// appendTruth appends one TruthJSON object.
//
//lint:ignore hotpath appends into the pooled scratch buffer (see appendResolveFields)
func appendTruth(b []byte, t *TruthJSON) []byte {
	b = append(b, `{"object":`...)
	b = appendJSONString(b, t.Object)
	b = append(b, `,"property":`...)
	b = appendJSONString(b, t.Property)
	b = append(b, `,"value":`...)
	if t.Value.IsCat {
		b = appendJSONString(b, t.Value.Cat)
	} else {
		b = appendJSONFloat(b, t.Value.F)
	}
	if t.Confidence != nil {
		b = append(b, `,"confidence":`...)
		b = appendJSONFloat(b, *t.Confidence)
	}
	return append(b, '}')
}

// appendJSONFloat appends f the way encoding/json renders a float64:
// ES6 number-to-string conversion — 'f' format at shortest precision,
// switching to 'e' outside [1e-6, 1e21) with a trimmed one-digit
// exponent. The caller guarantees f is finite, as the resolve pipeline
// does for every value it serves (ingest rejects non-finite
// observations); encoding/json errors on non-finite values instead.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim a two-digit negative exponent's leading zero: e-09 -> e-9.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string with encoding/json's
// SetEscapeHTML(false) escaping: backslash, double quote, and control
// bytes below 0x20 are escaped (\n, \r, \t short forms; \u00XX
// otherwise), invalid UTF-8 bytes are escaped as \ufffd, and U+2028/U+2029 are
// always escaped; <, >, and & pass through.
//
//lint:ignore hotpath appends into the pooled scratch buffer (see appendResolveFields)
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 are valid JSON but break JSONP consumers;
		// encoding/json escapes them unconditionally, so we do too.
		if r == ' ' || r == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
