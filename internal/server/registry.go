// Package server implements crhd's HTTP subsystem: a concurrent,
// versioned dataset registry with copy-on-write snapshots, resolve
// request coalescing, an LRU result cache, live ingest driving warm
// incremental CRH (I-CRH) state, and hand-rolled operational stats.
// Everything is standard library only.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stream"
	"github.com/crhkit/crh/internal/wal"
)

// Snapshot is an immutable view of a dataset at one version. Resolves
// operate on snapshots, so they never block — and are never blocked by —
// concurrent ingest, which installs a fresh snapshot atomically.
type Snapshot struct {
	// Version counts mutations: 1 after create, +1 per ingested batch.
	Version int64
	// Data is the materialized dataset. Immutable.
	Data *data.Dataset
	// GT is the ground truth loaded with the dataset, nil when none.
	GT *data.Table

	// prepared lazily freezes Data's columnar solver view on the first
	// CRH resolve and shares it with every later resolve of this
	// snapshot — the freeze is paid once per ingested version, not once
	// per request.
	prepOnce sync.Once
	prepared *core.Prepared
}

// Prepared returns the snapshot's frozen columnar view, building it on
// first use. Safe for concurrent resolves: core.Prepared is immutable.
func (s *Snapshot) Prepared() *core.Prepared {
	s.prepOnce.Do(func() { s.prepared = core.Prepare(s.Data) })
	return s.prepared
}

// obsRec is one observation in an entry's append-only log — the canonical
// record everything else (snapshots, chunks) is rebuilt from. Values are
// held by name/raw value so each rebuild produces a fully independent
// Dataset sharing no mutable state with earlier snapshots.
type obsRec struct {
	src, obj, prop string
	typ            data.Type
	f              float64
	cat            string
	ts             int
	hasTS          bool
}

// gtRec is one ground-truth value, kept by name so it can be re-anchored
// after ingest changes the dataset's shape.
type gtRec struct {
	obj, prop string
	typ       data.Type
	f         float64
	cat       string
}

type propDecl struct {
	name string
	typ  data.Type
}

// entry is one named dataset. Two lock domains keep resolves wait-free
// with respect to ingest:
//
//   - mu serializes mutations (ingest, which appends to the log, rebuilds
//     the snapshot, and advances the I-CRH processor). Resolves never
//     acquire it.
//   - snap is the copy-on-write snapshot pointer resolves read.
//   - warmMu guards the warm incremental truths/weights, written briefly
//     at the end of each ingest and read by the incremental endpoint.
type entry struct {
	name string
	// uid is unique across all datasets ever created by this registry, so
	// cache keys of a deleted-then-recreated name can never collide.
	uid int64

	mu      sync.Mutex
	log     []obsRec
	gt      []gtRec
	sources []string
	srcSet  map[string]int
	props   []propDecl
	propSet map[string]data.Type
	proc    *stream.Processor
	// deleted marks an entry removed from the registry; ingest on a
	// stale handle must not resurrect it (or its on-disk state).
	// crh:guardedby mu
	deleted bool
	// dlog is the durable WAL+snapshot handle, nil in memory-only mode.
	// lastSnap is the version of the newest on-disk snapshot and
	// snapEvery the batch cadence for writing the next one.
	dlog      *wal.DatasetLog
	lastSnap  int64 // see dlog
	snapEvery int   // see dlog

	snap atomic.Pointer[Snapshot]

	warmMu sync.RWMutex
	// crh:guardedby warmMu
	warmTruths map[warmKey]warmVal
	// crh:guardedby warmMu
	warmWeights []float64
	// copy of sources, aligned with warmWeights
	// crh:guardedby warmMu
	warmSources []string
	// crh:guardedby warmMu
	chunks int
	// warmVersion is the snapshot version the warm state corresponds to,
	// recorded in the same critical section that installs the state so
	// WarmState can return both atomically (always chunks+1 in steady
	// state: version 1 at create, +1 per ingested chunk).
	// crh:guardedby warmMu
	warmVersion int64
}

type warmKey struct{ obj, prop string }

type warmVal struct {
	typ data.Type
	f   float64
	cat string
}

// Snapshot returns the entry's current immutable snapshot.
func (e *entry) Snapshot() *Snapshot { return e.snap.Load() }

// Registry is the concurrent named-dataset store. All methods are safe
// for concurrent use.
type Registry struct {
	mu sync.RWMutex
	// crh:guardedby mu
	entries   map[string]*entry
	nextUID   atomic.Int64
	streamCfg stream.Config
	// store is the durability backend, nil in memory-only mode;
	// snapshotEvery the batch cadence entries snapshot at.
	store         *wal.Store
	snapshotEvery int // see store
}

// NewRegistry returns an empty registry. decay is the I-CRH decay rate α
// applied to warm incremental state (1 retains all history).
func NewRegistry(decay float64) *Registry {
	return &Registry{
		entries:   make(map[string]*entry),
		streamCfg: stream.Config{Decay: decay, DecaySet: true},
	}
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Errors distinguished by the HTTP layer.
var (
	errExists   = fmt.Errorf("dataset already exists")
	errNotFound = fmt.Errorf("dataset not found")
	errBadName  = fmt.Errorf("invalid dataset name (want [A-Za-z0-9][A-Za-z0-9._-]{0,127})")
	// errDurable wraps WAL/snapshot failures: the request was valid but
	// could not be made durable, so it was not applied.
	errDurable = fmt.Errorf("durable commit failed")
	// errInternal marks a broken server-side invariant (a method returning
	// malformed results); the request was fine, the server is not.
	errInternal = fmt.Errorf("internal error")
)

// Create registers a new dataset under name, loading its initial contents
// from the TSV codec stream r (which may be empty for a blank dataset).
// In durable mode the dataset's on-disk state (initial snapshot + WAL) is
// created atomically before the name becomes visible.
func (r *Registry) Create(name string, src io.Reader) (*entry, error) {
	if !nameRe.MatchString(name) {
		return nil, errBadName
	}
	r.mu.RLock()
	_, taken := r.entries[name]
	r.mu.RUnlock()
	if taken {
		return nil, errExists
	}
	d, gt, err := data.Decode(src)
	if err != nil {
		return nil, err
	}
	e := &entry{
		name:       name,
		uid:        r.nextUID.Add(1),
		srcSet:     make(map[string]int),
		propSet:    make(map[string]data.Type),
		warmTruths: make(map[warmKey]warmVal),
		proc:       stream.NewProcessor(d.NumSources(), r.streamCfg),
		snapEvery:  r.snapshotEvery,
	}
	e.absorb(d, gt)
	e.snap.Store(e.rebuild(1))
	e.warmVersion = 1 // not yet published; no lock needed

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return nil, errExists
	}
	if r.store != nil {
		dl, err := r.store.Create(name, e.walSnapshot(1))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errDurable, err)
		}
		e.dlog = dl
		e.lastSnap = 1
	}
	r.entries[name] = e
	return e, nil
}

// absorb flattens a decoded dataset (and optional ground truth) into the
// entry's canonical log. Caller holds no locks; the entry is not yet
// published.
func (e *entry) absorb(d *data.Dataset, gt *data.Table) {
	for k := 0; k < d.NumSources(); k++ {
		e.internSource(d.SourceName(k))
	}
	for m := 0; m < d.NumProps(); m++ {
		p := d.Prop(m)
		e.internProp(p.Name, p.Type)
	}
	for i := 0; i < d.NumObjects(); i++ {
		for m := 0; m < d.NumProps(); m++ {
			p := d.Prop(m)
			en := d.Entry(i, m)
			d.ForEntry(en, func(k int, v data.Value) {
				rec := obsRec{
					src:  d.SourceName(k),
					obj:  d.ObjectName(i),
					prop: p.Name,
					typ:  p.Type,
				}
				if p.Type == data.Categorical {
					rec.cat = p.CatName(int(v.C))
				} else {
					rec.f = v.F
				}
				if d.HasTimestamps() {
					rec.ts, rec.hasTS = d.Timestamp(i), true
				}
				e.log = append(e.log, rec)
			})
			if gt != nil {
				if v, ok := gt.Get(en); ok {
					g := gtRec{obj: d.ObjectName(i), prop: p.Name, typ: p.Type}
					if p.Type == data.Categorical {
						g.cat = p.CatName(int(v.C))
					} else {
						g.f = v.F
					}
					e.gt = append(e.gt, g)
				}
			}
		}
	}
}

func (e *entry) internSource(name string) int {
	if id, ok := e.srcSet[name]; ok {
		return id
	}
	id := len(e.sources)
	e.sources = append(e.sources, name)
	e.srcSet[name] = id
	return id
}

func (e *entry) internProp(name string, t data.Type) {
	if _, ok := e.propSet[name]; !ok {
		e.props = append(e.props, propDecl{name, t})
		e.propSet[name] = t
	}
}

// rebuild materializes a fresh snapshot at the given version by replaying
// the log into a brand-new builder. The result shares no mutable state
// (category dictionaries, interning maps) with any previous snapshot, so
// earlier snapshots stay safe for concurrent readers. Caller must hold
// e.mu (or exclusively own e).
func (e *entry) rebuild(version int64) *Snapshot {
	b := data.NewBuilder()
	for _, s := range e.sources {
		b.Source(s)
	}
	propIdx := make(map[string]int, len(e.props))
	for _, p := range e.props {
		propIdx[p.name] = b.MustProperty(p.name, p.typ)
	}
	for _, o := range e.log {
		obj := b.Object(o.obj)
		if o.hasTS {
			b.SetTimestampIdx(obj, o.ts)
		}
		pid := propIdx[o.prop]
		var v data.Value
		if o.typ == data.Categorical {
			v = data.Cat(b.CatValue(pid, o.cat))
		} else {
			v = data.Float(o.f)
		}
		b.ObserveIdx(b.Source(o.src), obj, pid, v)
	}
	d := b.Build()
	var gt *data.Table
	if len(e.gt) > 0 {
		gt = data.NewTableFor(d)
		for _, g := range e.gt {
			obj := b.Object(g.obj) // all gt objects appear in the log
			pid := propIdx[g.prop]
			if g.typ == data.Categorical {
				gt.SetAt(obj, pid, data.Cat(b.CatValue(pid, g.cat)))
			} else {
				gt.SetAt(obj, pid, data.Float(g.f))
			}
		}
	}
	return &Snapshot{Version: version, Data: d, GT: gt}
}

// Observation is one ingested observation, as posted to
// POST /v1/datasets/{name}/observations. Value must be a JSON number
// (continuous) or string (categorical); the property's type is inferred
// on first mention and enforced thereafter.
type Observation struct {
	// Source names the claiming source; Object and Property name the
	// entry it claims about; Value carries the claimed value.
	Source   string          `json:"source"`
	Object   string          `json:"object"`   // see Source
	Property string          `json:"property"` // see Source
	Value    json.RawMessage `json:"value"`    // see Source
	// Timestamp optionally places the observation's object on the I-CRH
	// timeline; when omitted the batch sequence number is used for the
	// incremental chunk and no timestamp is recorded on the dataset.
	Timestamp *int `json:"timestamp,omitempty"`
}

// Ingest validates and appends a batch of observations, installs a new
// snapshot, and advances the warm I-CRH state by processing the batch as
// one chunk. The batch is atomic: any invalid observation rejects the
// whole batch before any state changes. In durable mode the batch is
// appended to the WAL before it is applied — a request is only
// acknowledged once it would survive a crash — and every snapEvery
// batches the entry checkpoints a snapshot, retiring covered WAL
// segments. Returns the new version.
func (e *entry) Ingest(batch []Observation) (int64, error) {
	recs, err := validateBatch(batch)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return 0, errNotFound
	}
	if err := e.validateTypes(recs); err != nil {
		return 0, err
	}
	version := e.snap.Load().Version + 1
	if e.dlog != nil {
		if err := e.dlog.AppendBatch(version, recsToWAL(recs)); err != nil {
			return 0, fmt.Errorf("%w: %v", errDurable, err)
		}
	}
	e.apply(recs, version)
	if e.dlog != nil && e.snapEvery > 0 && version-e.lastSnap >= int64(e.snapEvery) {
		// Snapshot failure is non-fatal: the batch is already durable in
		// the WAL, the checkpoint just retries at the next boundary.
		if err := e.dlog.WriteSnapshot(e.walSnapshot(version)); err == nil {
			e.lastSnap = version
		}
	}
	return version, nil
}

// validateBatch performs the lock-free part of ingest validation: shape,
// value typing, and intra-batch property-type consistency. Cross-checking
// against the entry's committed property types happens under e.mu in
// validateTypes.
func validateBatch(batch []Observation) ([]obsRec, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("empty observation batch")
	}
	staged := make(map[string]data.Type)
	recs := make([]obsRec, 0, len(batch))
	for i, o := range batch {
		if o.Source == "" || o.Object == "" || o.Property == "" {
			return nil, fmt.Errorf("observation %d: source, object and property are required", i)
		}
		rec := obsRec{src: o.Source, obj: o.Object, prop: o.Property}
		var f float64
		var s string
		if err := json.Unmarshal(o.Value, &f); err == nil {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("observation %d: non-finite value", i)
			}
			rec.typ, rec.f = data.Continuous, f
		} else if err := json.Unmarshal(o.Value, &s); err == nil {
			rec.typ, rec.cat = data.Categorical, s
		} else {
			return nil, fmt.Errorf("observation %d: value must be a JSON number (continuous) or string (categorical)", i)
		}
		if want, known := staged[rec.prop]; known && want != rec.typ {
			return nil, fmt.Errorf("observation %d: property %q is %v, got %v value", i, rec.prop, want, rec.typ)
		}
		staged[rec.prop] = rec.typ
		if o.Timestamp != nil {
			rec.ts, rec.hasTS = *o.Timestamp, true
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// validateTypes rejects a batch whose property types conflict with the
// entry's committed declarations. Caller holds e.mu.
func (e *entry) validateTypes(recs []obsRec) error {
	for i, rec := range recs {
		if want, known := e.propSet[rec.prop]; known && want != rec.typ {
			return fmt.Errorf("observation %d: property %q is %v, got %v value", i, rec.prop, want, rec.typ)
		}
	}
	return nil
}

// apply commits an already-validated batch at the given version: it
// extends the interning registries, appends the log, installs the new
// snapshot, and advances the incremental processor. This is the single
// code path for both live ingest and WAL replay, which is what makes
// recovery bit-for-bit identical to the uncrashed process. Caller holds
// e.mu.
func (e *entry) apply(recs []obsRec, version int64) {
	for _, rec := range recs {
		e.internSource(rec.src)
		e.internProp(rec.prop, rec.typ)
	}
	e.log = append(e.log, recs...)
	e.snap.Store(e.rebuild(version))

	chunk := e.buildChunk(recs, int(version))
	truths := e.proc.Process(chunk)
	weights := e.proc.Weights()

	e.warmMu.Lock()
	M := chunk.NumProps()
	for i := 0; i < chunk.NumObjects(); i++ {
		for m := 0; m < M; m++ {
			v, ok := truths.GetAt(i, m)
			if !ok {
				continue
			}
			p := chunk.Prop(m)
			wv := warmVal{typ: p.Type}
			if p.Type == data.Categorical {
				wv.cat = p.CatName(int(v.C))
			} else {
				wv.f = v.F
			}
			e.warmTruths[warmKey{chunk.ObjectName(i), p.Name}] = wv
		}
	}
	e.warmWeights = weights
	e.warmSources = append([]string(nil), e.sources...)
	e.chunks++
	// Recorded inside the same critical section as the truths/weights it
	// describes, so a WarmState reader can never pair this batch's
	// version with an earlier batch's state (or vice versa).
	e.warmVersion = version
	e.warmMu.Unlock()
}

// buildChunk materializes the batch as an I-CRH chunk. All sources and
// properties known so far are interned first, in global order, so the
// processor's per-source state stays aligned across chunks (the same
// contract stream.TSVStream documents). defaultTS stamps observations
// that carry no explicit timestamp. Caller holds e.mu.
func (e *entry) buildChunk(recs []obsRec, defaultTS int) *data.Dataset {
	b := data.NewBuilder()
	for _, s := range e.sources {
		b.Source(s)
	}
	propIdx := make(map[string]int, len(e.props))
	for _, p := range e.props {
		propIdx[p.name] = b.MustProperty(p.name, p.typ)
	}
	for _, o := range recs {
		obj := b.Object(o.obj)
		ts := defaultTS
		if o.hasTS {
			ts = o.ts
		}
		b.SetTimestampIdx(obj, ts)
		pid := propIdx[o.prop]
		var v data.Value
		if o.typ == data.Categorical {
			v = data.Cat(b.CatValue(pid, o.cat))
		} else {
			v = data.Float(o.f)
		}
		b.ObserveIdx(b.Source(o.src), obj, pid, v)
	}
	return b.Build()
}

// WarmState returns the incremental (I-CRH) truths and per-source weights
// accumulated by live ingest, without any recomputation: the values are
// maintained chunk-by-chunk as batches arrive. chunks is the number of
// batches processed and version the snapshot version the state
// corresponds to — returned from the same critical section so callers
// never observe a version newer than the truths it labels. Weights are
// keyed by source name.
func (e *entry) WarmState() (version int64, truths []TruthJSON, weights map[string]float64, chunks int) {
	e.warmMu.RLock()
	defer e.warmMu.RUnlock()
	truths = make([]TruthJSON, 0, len(e.warmTruths))
	for k, v := range e.warmTruths {
		t := TruthJSON{Object: k.obj, Property: k.prop}
		if v.typ == data.Categorical {
			t.Value = TruthValue{IsCat: true, Cat: v.cat}
		} else {
			t.Value = TruthValue{F: v.f}
		}
		truths = append(truths, t)
	}
	sortTruths(truths)
	weights = make(map[string]float64, len(e.warmWeights))
	for k, w := range e.warmWeights {
		if k < len(e.warmSources) {
			weights[e.warmSources[k]] = w
		}
	}
	return e.warmVersion, truths, weights, e.chunks
}

// Count returns the number of registered datasets.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Get returns the entry for name.
func (r *Registry) Get(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Delete removes name from the registry, releases the entry's resources
// (observation log, interning tables, warm I-CRH state, WAL handle), and
// removes its on-disk state in durable mode. Inflight resolves holding
// the entry's snapshot finish unaffected — the snapshot pointer stays
// valid — but later ingest through a stale handle reports not-found.
// The registry lock is held across the disk removal so a racing Create
// of the same name can never observe leftover on-disk state.
func (r *Registry) Delete(name string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return false, nil
	}
	delete(r.entries, name)

	e.mu.Lock()
	e.deleted = true
	e.log, e.gt = nil, nil
	e.sources, e.srcSet = nil, nil
	e.props, e.propSet = nil, nil
	e.proc = nil
	dlog := e.dlog
	e.dlog = nil
	e.mu.Unlock()

	e.warmMu.Lock()
	e.warmTruths = nil
	e.warmWeights, e.warmSources = nil, nil
	e.warmMu.Unlock()

	if dlog != nil {
		//lint:ignore errflow the dataset's on-disk state is removed next; a close failure cannot lose data the Remove keeps
		_ = dlog.Close()
	}
	if r.store != nil {
		if err := r.store.Remove(name); err != nil {
			return true, fmt.Errorf("%w: %v", errDurable, err)
		}
	}
	return true, nil
}

// DatasetInfo is the JSON description of one registered dataset.
type DatasetInfo struct {
	// Name and Version identify the snapshot being described.
	Name    string `json:"name"`
	Version int64  `json:"version"` // see Name
	// Sources, Objects, Properties, and Observations are the snapshot's
	// dimensions.
	Sources      int `json:"sources"`
	Objects      int `json:"objects"`      // see Sources
	Properties   int `json:"properties"`   // see Sources
	Observations int `json:"observations"` // see Sources
	// HasTruth reports whether a ground truth was uploaded with the
	// dataset.
	HasTruth bool `json:"has_ground_truth"`
	// Chunks counts the ingest batches applied since creation.
	Chunks int `json:"chunks_ingested"`
}

// Info describes the entry's current snapshot.
func (e *entry) Info() DatasetInfo {
	s := e.Snapshot()
	e.warmMu.RLock()
	chunks := e.chunks
	e.warmMu.RUnlock()
	return DatasetInfo{
		Name:         e.name,
		Version:      s.Version,
		Sources:      s.Data.NumSources(),
		Objects:      s.Data.NumObjects(),
		Properties:   s.Data.NumProps(),
		Observations: s.Data.NumObservations(),
		HasTruth:     s.GT != nil,
		Chunks:       chunks,
	}
}

// List describes every registered dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	// Sort the entries themselves, not the derived infos: the map-range
	// collection above has no order, and sorting before the reads keeps
	// the whole pipeline order-independent (maporder checks exactly this).
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]DatasetInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.Info()
	}
	return infos
}
