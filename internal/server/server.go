package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/obs"
	"github.com/crhkit/crh/internal/obs/buildinfo"
	"github.com/crhkit/crh/internal/stream"
	"github.com/crhkit/crh/internal/wal"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// CacheCapacity bounds the resolve result LRU (default 128 entries).
	CacheCapacity int
	// Decay is the I-CRH decay rate α for warm incremental state
	// (default 1: retain all history).
	Decay float64
	// SolverWorkers sizes the solver worker pool every CRH computation
	// (resolve requests and warm-ingest re-solves) shares, and so caps
	// total solver concurrency regardless of how many requests are in
	// flight (default GOMAXPROCS). Each resolve additionally gets a
	// per-request budget of SolverWorkers divided by the computations
	// currently in flight, so one request saturates the machine while
	// concurrent requests split it instead of oversubscribing. Worker
	// counts never affect results — the solver is bit-identical for any
	// budget — so caching and coalescing stay sound at every setting.
	SolverWorkers int
	// DataDir, when non-empty, turns on durable ingest: every dataset
	// gets a write-ahead log and snapshots under this directory, and New
	// recovers all datasets found there (docs/DURABILITY.md). Empty
	// keeps the server memory-only.
	DataDir string
	// Fsync picks the WAL fsync policy — "batch" (sync every ingest,
	// the default), "interval" (sync at most every FsyncInterval), or
	// "off" (sync only on rotation and shutdown). Ignored without
	// DataDir.
	Fsync string
	// FsyncInterval is the lower bound between fsyncs under the
	// "interval" policy (default 100ms). See Fsync.
	FsyncInterval time.Duration
	// SnapshotEvery is the checkpoint cadence: a dataset writes a
	// snapshot (and retires covered WAL segments) every N ingested
	// batches (default 128). See DataDir.
	SnapshotEvery int
	// StageLogEvery samples the per-request stage log: every Nth
	// successful resolve's stage breakdown is handed to StageLog
	// (0 disables). The sampled path allocates one StageTimings; the
	// unsampled path is allocation-free.
	StageLogEvery int
	// StageLog receives the sampled stage breakdowns (crhd wires it to a
	// structured log record). Ignored while StageLogEvery is 0. See
	// StageLogEvery.
	StageLog func(StageTimings)
}

// Server is the crhd HTTP subsystem: registry + result cache + request
// coalescing + registry-backed metrics behind a net/http handler. Create
// with New; safe for concurrent use.
type Server struct {
	registry *Registry
	cache    *resultCache
	flights  *flightGroup
	stats    *Stats
	metrics  *obs.Registry
	mux      *http.ServeMux

	// pool is the shared solver worker pool; solverWorkers its size and
	// inflight the number of resolve computations currently running
	// (coalesced followers and cache hits excluded).
	pool          *core.Pool
	solverWorkers int
	inflight      atomic.Int64
}

// New returns a ready-to-serve Server. With Config.DataDir set it also
// opens the durable store and recovers every dataset found there, so an
// error is possible (bad fsync policy, unreadable data directory,
// corrupt WAL interior).
func New(cfg Config) (*Server, error) {
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 128
	}
	if cfg.Decay == 0 {
		cfg.Decay = 1
	}
	if cfg.SolverWorkers <= 0 {
		cfg.SolverWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 128
	}
	metrics := obs.NewRegistry()
	s := &Server{
		registry:      NewRegistry(cfg.Decay),
		cache:         newResultCache(cfg.CacheCapacity),
		flights:       newFlightGroup(),
		stats:         NewStats(metrics),
		metrics:       metrics,
		mux:           http.NewServeMux(),
		pool:          core.NewPool(cfg.SolverWorkers),
		solverWorkers: cfg.SolverWorkers,
	}
	// Ingest batches advance warm I-CRH state through the streaming
	// processor; one shared counter set aggregates that load across all
	// datasets. The warm re-solves share the resolve pool so ingest and
	// resolve traffic contend for the same bounded worker budget.
	s.registry.streamCfg.Metrics = stream.NewMetrics(metrics)
	s.registry.streamCfg.Core.Workers = cfg.SolverWorkers
	s.registry.streamCfg.Core.Pool = s.pool
	if cfg.DataDir != "" {
		policy := wal.FsyncBatch
		if cfg.Fsync != "" {
			var err error
			if policy, err = wal.ParseFsyncPolicy(cfg.Fsync); err != nil {
				s.pool.Close()
				return nil, err
			}
		}
		walMetrics := wal.NewMetrics(metrics)
		store, err := wal.OpenStore(cfg.DataDir, wal.Options{
			Fsync:    policy,
			Interval: cfg.FsyncInterval,
			Metrics:  walMetrics,
		})
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("open data dir: %w", err)
		}
		t0 := time.Now()
		if err := s.registry.EnableDurability(store, cfg.SnapshotEvery); err != nil {
			s.pool.Close()
			return nil, err
		}
		walMetrics.RecordRecovery(time.Since(t0))
	}
	s.stats.EnableStageLog(cfg.StageLogEvery, cfg.StageLog)
	obs.RegisterRuntimeMetrics(metrics)
	metrics.NewGaugeFunc("crhd_solver_workers", "size of the shared solver worker pool", func() float64 {
		return float64(s.solverWorkers)
	})
	metrics.NewGaugeFunc("crhd_resolve_inflight", "resolve computations currently running", func() float64 {
		return float64(s.inflight.Load())
	})
	metrics.NewGaugeFunc("crhd_cache_entries", "resolve results currently cached", func() float64 {
		return float64(s.cache.len())
	})
	metrics.NewGaugeFunc("crhd_cache_capacity", "resolve result cache capacity", func() float64 {
		return float64(s.cache.capacity())
	})
	metrics.NewGaugeFunc("crhd_datasets", "datasets currently registered", func() float64 {
		return float64(s.registry.Count())
	})
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthzV1)
	s.mux.Handle("GET /metrics", metrics.Handler())
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/methods", s.handleMethods)
	s.mux.HandleFunc("GET /v1/datasets", s.handleList)
	s.mux.HandleFunc("POST /v1/datasets/{name}", s.handleCreate)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/datasets/{name}/observations", s.handleIngest)
	s.mux.HandleFunc("POST /v1/datasets/{name}/resolve", s.handleResolve)
	s.mux.HandleFunc("GET /v1/datasets/{name}/incremental", s.handleIncremental)
	return s, nil
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the dataset registry (used by crhd for preloading).
func (s *Server) Registry() *Registry { return s.registry }

// Stats exposes the operational counters.
func (s *Server) Stats() *Stats { return s.stats }

// Metrics exposes the server's metric registry — the one behind
// GET /metrics — so the binary can attach process-level gauges.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Close flushes and closes every dataset's WAL (making lazily-synced
// writes durable — the graceful-shutdown flush) and releases the shared
// solver worker pool. Call it after the HTTP server has drained; it must
// not run concurrently with live requests. The returned error is the
// first WAL close failure — a shutdown that may have lost the log tail.
func (s *Server) Close() error {
	err := s.registry.CloseDurable()
	s.pool.Close()
	return err
}

// solverBudget splits the pool across the n computations now in flight:
// a lone request gets every worker, concurrent ones fair shares, and
// nobody drops below one (the sequential floor).
func (s *Server) solverBudget(n int64) int {
	if n < 1 {
		n = 1
	}
	w := s.solverWorkers / int(n)
	if w < 1 {
		w = 1
	}
	return w
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// HealthResponse is the JSON document served by GET /v1/healthz:
// liveness plus enough identity to tell which build is answering.
type HealthResponse struct {
	// Status is "ok" whenever the handler runs at all.
	Status string `json:"status"`
	// Datasets counts the currently registered datasets (readiness: a
	// preloading server reports 0 until its datasets are in).
	Datasets int `json:"datasets"`
	// Build identifies the running binary.
	Build buildinfo.Info `json:"build"`
}

func (s *Server) handleHealthzV1(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Datasets: s.registry.Count(),
		Build:    buildinfo.Read(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.stats.Snapshot(s.cache.len(), s.cache.capacity()))
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"methods": append([]string{MethodCRH}, baseline.Names()...),
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.registry.List()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, err := s.registry.Create(name, r.Body)
	switch {
	case errors.Is(err, errExists):
		writeError(w, http.StatusConflict, "dataset %q already exists", name)
		return
	case errors.Is(err, errBadName):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, errDurable):
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "decode dataset: %v", err)
		return
	}
	s.stats.creates.Add(1)
	writeJSON(w, http.StatusCreated, e.Info())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ok, err := s.registry.Delete(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", r.PathValue("name"))
		return
	}
	if err != nil {
		// The dataset is gone from the registry but its on-disk state
		// could not be fully removed; report the failure.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.stats.deletes.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// ingestRequest is the JSON body of POST /v1/datasets/{name}/observations.
type ingestRequest struct {
	Observations []Observation `json:"observations"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	e, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", r.PathValue("name"))
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode observations: %v", err)
		return
	}
	version, err := e.Ingest(req.Observations)
	switch {
	case errors.Is(err, errNotFound):
		// The handle was fetched before a concurrent delete landed.
		writeError(w, http.StatusNotFound, "dataset %q not found", r.PathValue("name"))
		return
	case errors.Is(err, errDurable):
		writeError(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	s.stats.ingests.Add(1)
	s.stats.observations.Add(int64(len(req.Observations)))
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":  e.name,
		"version":  version,
		"ingested": len(req.Observations),
	})
}

// resolveEnvelope wraps the shared immutable result with per-request
// serving metadata. It is the wire shape of every resolve response; the
// serve path renders it from an envPrefix constant plus the result's
// precomputed body bytes (encode.go), never through this struct — it
// exists as the schema of record and for clients/tests to decode into.
type resolveEnvelope struct {
	// Cached reports an LRU hit; Coalesced that this request shared
	// another identical inflight request's computation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	*ResolveResponse
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.stats.resolveLatency.ObserveDuration(time.Since(t0)) }()
	s.stats.resolves.Add(1)
	// The span carries this request's stage timeline. Error paths just
	// release it: stage histograms describe served results, so the
	// smoke gate's "every stage non-empty" assertion stays meaningful.
	sp := obs.StartSpan()
	defer sp.Release()

	e, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", r.PathValue("name"))
		return
	}
	req := &ResolveRequest{}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(req); err != nil {
			writeError(w, http.StatusBadRequest, "decode resolve request: %v", err)
			return
		}
	}
	req.normalize()
	method, err := req.validate()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp.Mark(stageDecode)

	// The snapshot pins the dataset version for the whole computation:
	// concurrent ingest installs new snapshots but never mutates this one.
	snap := e.Snapshot()
	key := cacheKey(e.uid, snap.Version, req)

	if res, ok := s.cache.get(key); ok {
		s.stats.cacheHits.Add(1)
		sp.Mark(stageCache)
		tEnc := time.Now()
		writeResolveEnvelope(w, envPrefixCached, res.body)
		sp.Add(stageEncode, time.Since(tEnc))
		s.stats.observeSpan(sp, e.name, true, false, time.Since(t0))
		return
	}
	s.stats.cacheMisses.Add(1)
	sp.Mark(stageCache)

	tFlight := time.Now()
	res, err, shared := s.flights.do(key, func() (*cachedResult, error) {
		// Leader only: everything between flight entry and solve start
		// (flight bookkeeping, inflight registration, budget split) is
		// queueing; the computation itself is the solve stage. A
		// follower never runs this closure — its whole flight time is
		// its coalesce wait, attributed below on its own span.
		sp.Add(stageQueue, time.Since(tFlight))
		// The worker budget is settled at compute start: the pool split
		// by the computations then in flight. Later arrivals shrink only
		// their own budgets (and totals are bounded by the pool anyway).
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		tSolve := time.Now()
		resp, err := compute(e.name, snap, req, method, s.solverBudget(n), s.pool)
		sp.Add(stageSolve, time.Since(tSolve))
		if err != nil {
			return nil, err
		}
		// The leader encodes the body exactly once, here, so the bytes are
		// shared by the cache, every coalesced follower, and the leader's
		// own write below. This is the only full encode per computation.
		tEnc := time.Now()
		res := &cachedResult{resp: resp, body: encodeResolveBody(resp)}
		sp.Add(stageEncode, time.Since(tEnc))
		s.cache.add(key, res)
		return res, nil
	})
	if shared {
		sp.Add(stageCoalesce, time.Since(tFlight))
	}
	if err != nil {
		writeError(w, resolveErrorStatus(err), "resolve: %v", err)
		return
	}
	if shared {
		s.stats.coalesceFollowers.Add(1)
	} else {
		s.stats.coalesceLeaders.Add(1)
	}
	prefix := envPrefixPlain
	if shared {
		prefix = envPrefixCoalesced
	}
	tEnc := time.Now()
	writeResolveEnvelope(w, prefix, res.body)
	sp.Add(stageEncode, time.Since(tEnc))
	s.stats.observeSpan(sp, e.name, false, shared, time.Since(t0))
}

// resolveErrorStatus maps a compute failure onto HTTP: a broken
// server-side invariant (errInternal — e.g. a method returning malformed
// weights) is a 500, while a valid request the solver cannot satisfy
// (empty dataset, divergent configuration) stays a 422.
func resolveErrorStatus(err error) int {
	if errors.Is(err, errInternal) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

// compute runs the requested method on a pinned snapshot and shapes the
// response. It holds no locks — the snapshot is immutable. workers and
// pool carry the request's solver budget and the server's shared pool;
// neither influences the result (the solver is bit-identical for any
// worker count), only how fast it arrives.
func compute(name string, snap *Snapshot, req *ResolveRequest, method baseline.Method, workers int, pool *core.Pool) (*ResolveResponse, error) {
	resp := &ResolveResponse{Dataset: name, Version: snap.Version, Method: req.Method}
	d := snap.Data
	var truths *data.Table
	var weights []float64
	if method != nil {
		truths, weights = method.Resolve(d)
	} else {
		cfg, err := req.Options.build()
		if err != nil {
			return nil, err
		}
		cfg.Workers, cfg.Pool = workers, pool
		res, err := snap.Prepared().Run(cfg)
		if err != nil {
			return nil, err
		}
		truths, weights = res.Truths, res.Weights
		converged := res.Converged
		resp.Converged = &converged
		resp.Iterations = res.Iterations
		if req.Options.Confidence {
			resp.Truths = truthsJSON(d, truths, res.Confidence)
		}
	}
	if resp.Truths == nil {
		resp.Truths = truthsJSON(d, truths, nil)
	}
	if weights != nil {
		// A weight-count mismatch means the method broke its contract
		// (one weight per source); serving a truncated weights map would
		// silently misattribute reliability, so fail loudly instead.
		if len(weights) != d.NumSources() {
			return nil, fmt.Errorf("%w: method %s returned %d weights for %d sources",
				errInternal, req.Method, len(weights), d.NumSources())
		}
		ws := make(SourceWeights, d.NumSources())
		for k := range ws {
			ws[k] = SourceWeight{Name: d.SourceName(k), Weight: weights[k]}
		}
		// Wire order is name-sorted (options.go); source index order is
		// insertion order, which need not agree.
		sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
		resp.Weights = ws
	}
	return resp, nil
}

// truthsJSON flattens a truth table into the response shape, in object
// then property order. confidence may be nil.
func truthsJSON(d *data.Dataset, t *data.Table, confidence []float64) []TruthJSON {
	out := make([]TruthJSON, 0, t.Count())
	for i := 0; i < d.NumObjects(); i++ {
		for m := 0; m < d.NumProps(); m++ {
			v, ok := t.GetAt(i, m)
			if !ok {
				continue
			}
			p := d.Prop(m)
			tj := TruthJSON{Object: d.ObjectName(i), Property: p.Name}
			if p.Type == data.Categorical {
				tj.Value = TruthValue{IsCat: true, Cat: p.CatName(int(v.C))}
			} else {
				tj.Value = TruthValue{F: v.F}
			}
			if confidence != nil {
				c := confidence[d.Entry(i, m)]
				tj.Confidence = &c
			}
			out = append(out, tj)
		}
	}
	return out
}

func (s *Server) handleIncremental(w http.ResponseWriter, r *http.Request) {
	e, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", r.PathValue("name"))
		return
	}
	// One WarmState call returns the version alongside the state it
	// describes; reading e.Snapshot().Version separately would race with
	// concurrent ingest and could pair a newer version with older truths.
	version, truths, weights, chunks := e.WarmState()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": e.name,
		"version": version,
		"chunks":  chunks,
		"truths":  truths,
		"weights": weights,
	})
}
