package server

import "sync"

// flightGroup coalesces concurrent identical work: when several goroutines
// Do the same key at once, one (the leader) runs fn and the rest block
// until its result is ready, then share it. This is the classic
// singleflight pattern, hand-rolled on the standard library so the server
// stays dependency-free.
type flightGroup struct {
	mu     sync.Mutex
	flight map[string]*flightCall

	// onWait, when set, is invoked by a follower just before it blocks on
	// the leader's result. Test instrumentation only.
	onWait func()
}

type flightCall struct {
	done chan struct{}
	val  *cachedResult
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flight: make(map[string]*flightCall)}
}

// do runs fn for key, unless an identical call is already inflight, in
// which case it waits for that call and returns its result. shared reports
// whether the caller was a follower (received another call's result).
//
// The result a follower receives was computed by the leader; both the
// leader and every follower see the same *cachedResult — response and
// encoded body bytes — which is immutable by convention, so followers
// serve the leader's bytes without re-encoding.
func (g *flightGroup) do(key string, fn func() (*cachedResult, error)) (val *cachedResult, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.flight[key]; ok {
		g.mu.Unlock()
		if g.onWait != nil {
			g.onWait()
		}
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.flight[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.flight, key)
	g.mu.Unlock()
	close(c.done)

	return c.val, c.err, false
}
