package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/synth"
)

// benchServer returns a server preloaded with a moderate mixed-type
// dataset (9 sources, continuous + categorical properties).
func benchServer(b *testing.B) *Server {
	b.Helper()
	d, _ := synth.Weather(synth.WeatherConfig{Seed: 42, Cities: 10, Days: 20})
	var buf bytes.Buffer
	if err := data.Encode(&buf, d, nil); err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.registry.Create("bench", &buf); err != nil {
		b.Fatal(err)
	}
	return s
}

// post issues one resolve through the handler stack (no network).
func post(b *testing.B, s *Server, body string) {
	req := httptest.NewRequest("POST", "/v1/datasets/bench/resolve", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkResolveCacheMiss measures a full computation + response per
// iteration: the cache is emptied each round, so every request is a miss.
// This is the server's worst-case hot path.
func BenchmarkResolveCacheMiss(b *testing.B) {
	s := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.cache = newResultCache(128)
		b.StartTimer()
		post(b, s, `{}`)
	}
}

// BenchmarkResolveCacheHit measures the O(1) repeated-query path: every
// request after the first is served from the LRU without touching the
// solver.
func BenchmarkResolveCacheHit(b *testing.B) {
	s := benchServer(b)
	post(b, s, `{}`) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, s, `{}`)
	}
}

// Concurrent benchmarks: one iteration = serving `fanout` simultaneous
// resolve requests on the same dataset version.
//
// The coalesced variant sends identical requests, so the inflight map
// collapses them to one computation. The uncoalesced variant defeats both
// the cache and the coalescer with distinct max_iters values far above
// the convergence point — every request costs a full computation of
// identical work, which is exactly what a server without coalescing would
// do for identical requests.
const fanout = 8

func BenchmarkConcurrentResolveCoalesced(b *testing.B) {
	s := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.cache = newResultCache(128) // force one fresh computation per round
		b.StartTimer()
		var wg sync.WaitGroup
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				post(b, s, `{}`)
			}()
		}
		wg.Wait()
	}
}

func BenchmarkConcurrentResolveUncoalesced(b *testing.B) {
	s := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.cache = newResultCache(128)
		b.StartTimer()
		var wg sync.WaitGroup
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				// Distinct keys, identical work: convergence stops the
				// solver long before 100+j iterations.
				post(b, s, fmt.Sprintf(`{"options":{"max_iters":%d}}`, 100+j))
			}(j)
		}
		wg.Wait()
	}
}

// BenchmarkEncodeResolveBody measures the once-per-computation body
// encode (pooled append encoder) against BenchmarkEncodeStdlib, the
// reflection-based encoding/json path it replaced.
func BenchmarkEncodeResolveBody(b *testing.B) {
	resp := benchResponse(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = encodeResolveBody(resp)
	}
}

func BenchmarkEncodeStdlib(b *testing.B) {
	resp := benchResponse(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stdlibJSON(resolveEnvelope{ResolveResponse: resp}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchResponse computes one real response over the bench dataset.
func benchResponse(b *testing.B) *ResolveResponse {
	b.Helper()
	s := benchServer(b)
	e, _ := s.registry.Get("bench")
	req := &ResolveRequest{}
	req.normalize()
	resp, err := compute("bench", e.Snapshot(), req, nil, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return resp
}

// BenchmarkIngest measures the live-ingest path: validate, append to the
// log, rebuild the snapshot, and advance the warm I-CRH state.
func BenchmarkIngest(b *testing.B) {
	s := benchServer(b)
	e, _ := s.registry.Get("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := fmt.Sprintf("obj-%d", i)
		_, err := e.Ingest([]Observation{
			{Source: "src-a", Object: obj, Property: "high_temp", Value: num(70)},
			{Source: "src-b", Object: obj, Property: "high_temp", Value: num(75)},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
