package server

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(50 * time.Microsecond)  // ≤ 0.1ms  -> bucket 0
	h.observe(200 * time.Microsecond) // ≤ 0.25ms -> bucket 1
	h.observe(3 * time.Millisecond)   // ≤ 5ms    -> bucket 5
	h.observe(10 * time.Second)       // overflow -> last bucket
	s := h.snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if len(s.Buckets) != len(s.BoundsMs)+1 {
		t.Fatalf("%d buckets for %d bounds", len(s.Buckets), len(s.BoundsMs))
	}
	for i, want := range map[int]int64{0: 1, 1: 1, 5: 1, len(s.Buckets) - 1: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], want, s.Buckets)
		}
	}
	if s.SumMs < 10003 || s.SumMs > 10004 {
		t.Errorf("sum_ms = %v, want ≈10003.25", s.SumMs)
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := NewStats()
	s.resolves.Add(5)
	s.cacheHits.Add(3)
	s.cacheMisses.Add(1)
	s.coalesceLeaders.Add(1)
	s.coalesceFollowers.Add(2)
	snap := s.Snapshot(7, 128)
	if snap.Requests.Resolves != 5 {
		t.Errorf("resolves = %d", snap.Requests.Resolves)
	}
	if snap.Cache.HitRate != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", snap.Cache.HitRate)
	}
	if snap.Cache.Size != 7 || snap.Cache.Capacity != 128 {
		t.Errorf("cache size/cap = %d/%d", snap.Cache.Size, snap.Cache.Capacity)
	}
	if snap.Coalesce.Leaders != 1 || snap.Coalesce.Followers != 2 {
		t.Errorf("coalesce = %+v", snap.Coalesce)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime negative")
	}
}

// TestStatsConcurrent verifies atomic counters under -race.
func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.resolves.Add(1)
				s.resolveLatency.observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot(0, 0)
	if snap.Requests.Resolves != 8000 {
		t.Fatalf("resolves = %d, want 8000", snap.Requests.Resolves)
	}
	if snap.ResolveLatency.Count != 8000 {
		t.Fatalf("latency count = %d, want 8000", snap.ResolveLatency.Count)
	}
}
