package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crhkit/crh/internal/obs"
)

func newTestStats() (*Stats, *obs.Registry) {
	reg := obs.NewRegistry()
	return NewStats(reg), reg
}

func TestLatencyHistogramJSONShape(t *testing.T) {
	s, _ := newTestStats()
	s.resolveLatency.ObserveDuration(50 * time.Microsecond)  // ≤ 0.1ms  -> bucket 0
	s.resolveLatency.ObserveDuration(200 * time.Microsecond) // ≤ 0.25ms -> bucket 1
	s.resolveLatency.ObserveDuration(3 * time.Millisecond)   // ≤ 5ms    -> bucket 5
	s.resolveLatency.ObserveDuration(10 * time.Second)       // overflow -> last bucket
	snap := s.Snapshot(0, 0).ResolveLatency
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if len(snap.Buckets) != len(snap.BoundsMs)+1 {
		t.Fatalf("%d buckets for %d bounds", len(snap.Buckets), len(snap.BoundsMs))
	}
	for i, want := range map[int]int64{0: 1, 1: 1, 5: 1, len(snap.Buckets) - 1: 1} {
		if snap.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, snap.Buckets[i], want, snap.Buckets)
		}
	}
	if snap.SumMs < 10003 || snap.SumMs > 10004 {
		t.Errorf("sum_ms = %v, want ≈10003.25", snap.SumMs)
	}
	if snap.BoundsMs[0] < 0.099 || snap.BoundsMs[0] > 0.101 {
		t.Errorf("first bound = %vms, want 0.1ms", snap.BoundsMs[0])
	}
	if snap.P50Ms <= 0 || snap.P99Ms < snap.P50Ms {
		t.Errorf("quantiles p50=%v p99=%v", snap.P50Ms, snap.P99Ms)
	}
}

func TestStatsSnapshot(t *testing.T) {
	s, _ := newTestStats()
	s.resolves.Add(5)
	s.cacheHits.Add(3)
	s.cacheMisses.Add(1)
	s.coalesceLeaders.Add(1)
	s.coalesceFollowers.Add(2)
	snap := s.Snapshot(7, 128)
	if snap.Requests.Resolves != 5 {
		t.Errorf("resolves = %d", snap.Requests.Resolves)
	}
	if snap.Cache.HitRate != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", snap.Cache.HitRate)
	}
	if snap.Cache.Size != 7 || snap.Cache.Capacity != 128 {
		t.Errorf("cache size/cap = %d/%d", snap.Cache.Size, snap.Cache.Capacity)
	}
	if snap.Coalesce.Leaders != 1 || snap.Coalesce.Followers != 2 {
		t.Errorf("coalesce = %+v", snap.Coalesce)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime negative")
	}
}

// TestStatsExposition verifies the same counters surface in the
// Prometheus exposition under the documented names.
func TestStatsExposition(t *testing.T) {
	s, reg := newTestStats()
	s.resolves.Add(5)
	s.cacheHits.Add(2)
	s.coalesceFollowers.Add(3)
	s.resolveLatency.ObserveDuration(2 * time.Millisecond)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`crhd_requests_total{op="resolve"} 5`,
		`crhd_cache_hits_total 2`,
		`crhd_cache_misses_total 0`,
		`crhd_coalesce_total{role="follower"} 3`,
		`crhd_resolve_latency_seconds_count 1`,
		`crhd_resolve_latency_seconds_bucket{le="0.0025"} 1`,
		"# TYPE crhd_resolve_latency_seconds histogram",
		"# TYPE crhd_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestStatsConcurrent verifies atomic counters under -race.
func TestStatsConcurrent(t *testing.T) {
	s, _ := newTestStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.resolves.Add(1)
				s.resolveLatency.ObserveDuration(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot(0, 0)
	if snap.Requests.Resolves != 8000 {
		t.Fatalf("resolves = %d, want 8000", snap.Requests.Resolves)
	}
	if snap.ResolveLatency.Count != 8000 {
		t.Fatalf("latency count = %d, want 8000", snap.ResolveLatency.Count)
	}
}
