package server

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crhkit/crh/internal/obs"
)

func newTestStats() (*Stats, *obs.Registry) {
	reg := obs.NewRegistry()
	return NewStats(reg), reg
}

func TestLatencyHistogramJSONShape(t *testing.T) {
	s, _ := newTestStats()
	s.resolveLatency.ObserveDuration(50 * time.Microsecond)  // ≤ 0.1ms  -> bucket 0
	s.resolveLatency.ObserveDuration(200 * time.Microsecond) // ≤ 0.25ms -> bucket 1
	s.resolveLatency.ObserveDuration(3 * time.Millisecond)   // ≤ 5ms    -> bucket 5
	s.resolveLatency.ObserveDuration(10 * time.Second)       // overflow -> last bucket
	snap := s.Snapshot(0, 0).ResolveLatency
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if len(snap.Buckets) != len(snap.BoundsMs)+1 {
		t.Fatalf("%d buckets for %d bounds", len(snap.Buckets), len(snap.BoundsMs))
	}
	for i, want := range map[int]int64{0: 1, 1: 1, 5: 1, len(snap.Buckets) - 1: 1} {
		if snap.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, snap.Buckets[i], want, snap.Buckets)
		}
	}
	if snap.SumMs < 10003 || snap.SumMs > 10004 {
		t.Errorf("sum_ms = %v, want ≈10003.25", snap.SumMs)
	}
	if snap.BoundsMs[0] < 0.099 || snap.BoundsMs[0] > 0.101 {
		t.Errorf("first bound = %vms, want 0.1ms", snap.BoundsMs[0])
	}
	if snap.P50Ms == nil || snap.P99Ms == nil {
		t.Fatalf("quantiles omitted on a populated histogram: %+v", snap)
	}
	if *snap.P50Ms <= 0 || *snap.P99Ms < *snap.P50Ms {
		t.Errorf("quantiles p50=%v p99=%v", *snap.P50Ms, *snap.P99Ms)
	}
}

// TestEmptyHistogramOmitsQuantiles pins the fix for NaN quantiles: an
// untouched histogram must omit p50/p95/p99 from the JSON entirely
// rather than emit NaN (which is not valid JSON) or a misleading 0.
func TestEmptyHistogramOmitsQuantiles(t *testing.T) {
	s, _ := newTestStats()
	snap := s.Snapshot(0, 0)
	lat := snap.ResolveLatency
	if lat.P50Ms != nil || lat.P95Ms != nil || lat.P99Ms != nil {
		t.Fatalf("empty histogram carries quantiles: %+v", lat)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("empty snapshot does not marshal: %v", err)
	}
	if strings.Contains(string(raw), "NaN") {
		t.Fatalf("snapshot JSON contains NaN: %s", raw)
	}
	for _, q := range []string{`"p50_ms"`, `"p95_ms"`, `"p99_ms"`} {
		if strings.Contains(string(raw), q) {
			t.Errorf("empty snapshot JSON still has %q: %s", q, raw)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	s, _ := newTestStats()
	s.resolves.Add(5)
	s.cacheHits.Add(3)
	s.cacheMisses.Add(1)
	s.coalesceLeaders.Add(1)
	s.coalesceFollowers.Add(2)
	snap := s.Snapshot(7, 128)
	if snap.Requests.Resolves != 5 {
		t.Errorf("resolves = %d", snap.Requests.Resolves)
	}
	if snap.Cache.HitRate != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", snap.Cache.HitRate)
	}
	if snap.Cache.Size != 7 || snap.Cache.Capacity != 128 {
		t.Errorf("cache size/cap = %d/%d", snap.Cache.Size, snap.Cache.Capacity)
	}
	if snap.Coalesce.Leaders != 1 || snap.Coalesce.Followers != 2 {
		t.Errorf("coalesce = %+v", snap.Coalesce)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime negative")
	}
}

// TestStatsExposition verifies the same counters surface in the
// Prometheus exposition under the documented names.
func TestStatsExposition(t *testing.T) {
	s, reg := newTestStats()
	s.resolves.Add(5)
	s.cacheHits.Add(2)
	s.coalesceFollowers.Add(3)
	s.resolveLatency.ObserveDuration(2 * time.Millisecond)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`crhd_requests_total{op="resolve"} 5`,
		`crhd_cache_hits_total 2`,
		`crhd_cache_misses_total 0`,
		`crhd_coalesce_total{role="follower"} 3`,
		`crhd_resolve_latency_seconds_count 1`,
		`crhd_resolve_latency_seconds_bucket{le="0.0025"} 1`,
		"# TYPE crhd_resolve_latency_seconds histogram",
		"# TYPE crhd_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestObserveSpanStageHistograms folds spans into the stage histograms
// and checks counts, shares, and the exposition names.
func TestObserveSpanStageHistograms(t *testing.T) {
	s, reg := newTestStats()
	// A "cache hit" span: decode + cache + encode.
	sp := obs.StartSpan()
	sp.Add(stageDecode, 1*time.Millisecond)
	sp.Add(stageCache, 1*time.Millisecond)
	sp.Add(stageEncode, 2*time.Millisecond)
	s.observeSpan(sp, "d", true, false, 4*time.Millisecond)
	sp.Release()
	// A "leader" span: decode + cache + queue + solve + encode.
	sp = obs.StartSpan()
	sp.Add(stageDecode, 1*time.Millisecond)
	sp.Add(stageCache, 1*time.Millisecond)
	sp.Add(stageQueue, 2*time.Millisecond)
	sp.Add(stageSolve, 10*time.Millisecond)
	sp.Add(stageEncode, 2*time.Millisecond)
	s.observeSpan(sp, "d", false, false, 16*time.Millisecond)
	sp.Release()

	snap := s.Snapshot(0, 0)
	wantCounts := map[string]int64{
		"decode": 2, "cache": 2, "encode": 2,
		"queue": 1, "solve": 1, "coalesce": 0,
	}
	var shareSum float64
	for name, want := range wantCounts {
		st, ok := snap.Stages[name]
		if !ok {
			t.Fatalf("stage %q missing from snapshot", name)
		}
		if st.Count != want {
			t.Errorf("stage %q count = %d, want %d", name, st.Count, want)
		}
		shareSum += st.ShareOfTotal
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("stage shares sum to %v, want 1", shareSum)
	}
	// Solve dominates: 10ms of 20ms total stage time.
	if got := snap.Stages["solve"].ShareOfTotal; got < 0.45 || got > 0.55 {
		t.Errorf("solve share = %v, want ≈0.5", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`crhd_stage_seconds_count{stage="solve"} 1`,
		`crhd_stage_seconds_count{stage="decode"} 2`,
		`crhd_stage_seconds_count{stage="coalesce"} 0`,
		"# TYPE crhd_stage_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestStageLogSampling checks EnableStageLog fires on every Nth
// successful resolve, with the sampled record's fields populated.
func TestStageLogSampling(t *testing.T) {
	s, _ := newTestStats()
	var got []StageTimings
	s.EnableStageLog(3, func(rec StageTimings) { got = append(got, rec) })
	for i := 0; i < 10; i++ {
		sp := obs.StartSpan()
		sp.Add(stageDecode, time.Millisecond)
		sp.Add(stageSolve, 5*time.Millisecond)
		s.observeSpan(sp, "ds", false, false, 6*time.Millisecond)
		sp.Release()
	}
	if len(got) != 3 { // resolves 3, 6, 9
		t.Fatalf("sampled %d records over 10 resolves at every=3, want 3", len(got))
	}
	rec := got[0]
	if rec.Dataset != "ds" || rec.Cached || rec.Coalesced {
		t.Errorf("record header = %+v", rec)
	}
	if rec.Total != 6*time.Millisecond {
		t.Errorf("total = %v, want 6ms", rec.Total)
	}
	if rec.Stages[stageSolve] != 5*time.Millisecond || rec.Stages[stageCoalesce] != 0 {
		t.Errorf("stages = %v", rec.Stages)
	}
}

// TestStageLogDisabled: without EnableStageLog, observeSpan must not
// call a nil sink.
func TestStageLogDisabled(t *testing.T) {
	s, _ := newTestStats()
	sp := obs.StartSpan()
	sp.Add(stageDecode, time.Millisecond)
	s.observeSpan(sp, "ds", false, false, time.Millisecond) // must not panic
	sp.Release()
}

// TestCacheHitRatioGauge checks the derived gauge: before the first
// lookup the sample is omitted entirely (a NaN in the exposition would
// break strict scrapers — same rule as empty-histogram quantiles), and
// afterwards it reports hits/lookups.
func TestCacheHitRatioGauge(t *testing.T) {
	s, reg := newTestStats()
	expo := func() string {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	// Match a sample line (starts at column 0), not the HELP/TYPE headers.
	if out := expo(); strings.Contains(out, "\ncrhd_cache_hit_ratio ") {
		t.Errorf("pre-lookup exposition should omit the ratio sample:\n%s", out)
	} else if !strings.Contains(out, "# TYPE crhd_cache_hit_ratio gauge") {
		t.Errorf("pre-lookup exposition missing the family metadata:\n%s", out)
	}
	s.cacheHits.Add(3)
	s.cacheMisses.Add(1)
	if out := expo(); !strings.Contains(out, "crhd_cache_hit_ratio 0.75") {
		t.Errorf("exposition missing ratio 0.75:\n%s", out)
	}
}

// TestSnapshotRuntimeSection checks the stats document carries live
// process health.
func TestSnapshotRuntimeSection(t *testing.T) {
	s, _ := newTestStats()
	rt := s.Snapshot(0, 0).Runtime
	if rt.Goroutines < 1 {
		t.Errorf("goroutines = %d, want ≥ 1", rt.Goroutines)
	}
	if rt.HeapInuseBytes == 0 {
		t.Errorf("heap_inuse_bytes = 0")
	}
	if rt.GCPauseP99Ms < 0 {
		t.Errorf("gc_pause_p99_ms negative: %v", rt.GCPauseP99Ms)
	}
}

// TestStatsConcurrent verifies atomic counters under -race.
func TestStatsConcurrent(t *testing.T) {
	s, _ := newTestStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.resolves.Add(1)
				s.resolveLatency.ObserveDuration(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot(0, 0)
	if snap.Requests.Resolves != 8000 {
		t.Fatalf("resolves = %d, want 8000", snap.Requests.Resolves)
	}
	if snap.ResolveLatency.Count != 8000 {
		t.Fatalf("latency count = %d, want 8000", snap.ResolveLatency.Count)
	}
}
