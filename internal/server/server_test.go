package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/synth"
)

// testServer starts an httptest server around a fresh Server.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON issues a request and decodes the JSON response into out (unless
// nil), returning the status code.
func doJSON(t *testing.T, method, url string, body io.Reader, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func mustCreate(t *testing.T, base, name, tsv string) {
	t.Helper()
	if code := doJSON(t, "POST", base+"/v1/datasets/"+name, strings.NewReader(tsv), nil); code != http.StatusCreated {
		t.Fatalf("create %s: status %d", name, code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	var out map[string]string
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &out); code != 200 || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, out)
	}
}

func TestMethodsSharesRegistry(t *testing.T) {
	_, ts := testServer(t)
	var out struct {
		Methods []string `json:"methods"`
	}
	doJSON(t, "GET", ts.URL+"/v1/methods", nil, &out)
	want := append([]string{"crh"}, baseline.Names()...)
	if fmt.Sprint(out.Methods) != fmt.Sprint(want) {
		t.Fatalf("methods = %v, want %v", out.Methods, want)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	_, ts := testServer(t)
	base := ts.URL

	mustCreate(t, base, "weather", testTSV)
	if code := doJSON(t, "POST", base+"/v1/datasets/weather", strings.NewReader(testTSV), nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", code)
	}
	if code := doJSON(t, "POST", base+"/v1/datasets/weather", strings.NewReader("garbage\tline"), nil); code != http.StatusConflict {
		// name collision wins over body parse here; a bad body on a new
		// name must 400:
		t.Fatalf("create: %d", code)
	}
	if code := doJSON(t, "POST", base+"/v1/datasets/other", strings.NewReader("garbage\tline"), nil); code != http.StatusBadRequest {
		t.Fatalf("bad TSV: %d", code)
	}

	var info DatasetInfo
	if code := doJSON(t, "GET", base+"/v1/datasets/weather", nil, &info); code != 200 {
		t.Fatalf("info: %d", code)
	}
	if info.Version != 1 || info.Sources != 2 || info.Observations != 8 {
		t.Fatalf("info = %+v", info)
	}

	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	doJSON(t, "GET", base+"/v1/datasets", nil, &list)
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "weather" {
		t.Fatalf("list = %+v", list)
	}

	if code := doJSON(t, "DELETE", base+"/v1/datasets/weather", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, "GET", base+"/v1/datasets/weather", nil, nil); code != http.StatusNotFound {
		t.Fatalf("info after delete: %d", code)
	}
	if code := doJSON(t, "DELETE", base+"/v1/datasets/weather", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}
}

// checkTruthsMatch asserts the response truths equal a direct run's table.
func checkTruthsMatch(t *testing.T, d *data.Dataset, want *data.Table, got []TruthJSON) {
	t.Helper()
	wantCount := want.Count()
	if len(got) != wantCount {
		t.Fatalf("%d truths in response, want %d", len(got), wantCount)
	}
	byKey := make(map[string]TruthValue, len(got))
	for _, tr := range got {
		byKey[tr.Object+"\x00"+tr.Property] = tr.Value
	}
	for i := 0; i < d.NumObjects(); i++ {
		for m := 0; m < d.NumProps(); m++ {
			v, ok := want.GetAt(i, m)
			if !ok {
				continue
			}
			p := d.Prop(m)
			gotV, ok := byKey[d.ObjectName(i)+"\x00"+p.Name]
			if !ok {
				t.Fatalf("missing truth for %s/%s", d.ObjectName(i), p.Name)
			}
			if p.Type == data.Categorical {
				if !gotV.IsCat || gotV.Cat != p.CatName(int(v.C)) {
					t.Fatalf("truth %s/%s = %+v, want %s", d.ObjectName(i), p.Name, gotV, p.CatName(int(v.C)))
				}
			} else if gotV.IsCat || math.Abs(gotV.F-v.F) > 1e-12 {
				t.Fatalf("truth %s/%s = %+v, want %v", d.ObjectName(i), p.Name, gotV, v.F)
			}
		}
	}
}

func TestResolveMatchesDirectRun(t *testing.T) {
	_, ts := testServer(t)
	mustCreate(t, ts.URL, "d", testTSV)

	var env struct {
		Cached    bool `json:"cached"`
		Coalesced bool `json:"coalesced"`
		ResolveResponse
	}
	code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{}`), &env)
	if code != 200 {
		t.Fatalf("resolve: %d", code)
	}
	if env.Cached || env.Coalesced {
		t.Fatalf("first resolve flagged cached=%v coalesced=%v", env.Cached, env.Coalesced)
	}
	if env.Method != "crh" || env.Version != 1 || env.Converged == nil {
		t.Fatalf("envelope = %+v", env.ResolveResponse)
	}

	d, _, err := data.Decode(strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkTruthsMatch(t, d, want.Truths, env.Truths)
	for k := 0; k < d.NumSources(); k++ {
		if w := env.Weights.Get(d.SourceName(k)); math.Abs(w-want.Weights[k]) > 1e-12 {
			t.Fatalf("weight %s = %v, want %v", d.SourceName(k), w, want.Weights[k])
		}
	}
}

func TestResolveOptionsAndBaselines(t *testing.T) {
	_, ts := testServer(t)
	mustCreate(t, ts.URL, "d", testTSV)

	var env struct{ ResolveResponse }
	// Non-default options take a distinct cache key and still work.
	code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve",
		strings.NewReader(`{"options":{"continuous_loss":"squared","weights":"exp-sum","confidence":true}}`), &env)
	if code != 200 {
		t.Fatalf("options resolve: %d", code)
	}
	if len(env.Truths) == 0 || env.Truths[0].Confidence == nil {
		t.Fatalf("confidence missing: %+v", env.Truths)
	}

	// A baseline by registry name.
	env = struct{ ResolveResponse }{}
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve",
		strings.NewReader(`{"method":"Median"}`), &env); code != 200 {
		t.Fatalf("baseline resolve: %d", code)
	}
	if env.Method != "Median" || len(env.Truths) == 0 {
		t.Fatalf("baseline response: %+v", env.ResolveResponse)
	}

	// Unknown method and bad options are 400s.
	for _, body := range []string{`{"method":"nope"}`, `{"options":{"weights":"wat"}}`, `{"options":{"weights":"top-j","top_j":-1}}`} {
		if code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(body), nil); code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, code)
		}
	}

	// Resolving an empty dataset is a 422, not a 500.
	mustCreate(t, ts.URL, "empty", "")
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/empty/resolve", nil, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("empty resolve: %d", code)
	}
}

// truncatedWeightsMethod breaks the Method contract on purpose: it
// returns one weight fewer than the dataset has sources.
type truncatedWeightsMethod struct{}

func (truncatedWeightsMethod) Name() string { return "truncated-weights" }

func (truncatedWeightsMethod) Resolve(d *data.Dataset) (*data.Table, []float64) {
	truths, _ := baseline.Mean{}.Resolve(d)
	return truths, make([]float64, d.NumSources()-1)
}

// TestComputeWeightsMismatch: a method returning the wrong number of
// weights used to silently truncate the served weights map; it must now
// be an internal error that maps to a 500, never a partial response.
func TestComputeWeightsMismatch(t *testing.T) {
	d, _, err := data.Decode(strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Version: 1, Data: d}
	req := &ResolveRequest{}
	req.normalize()
	req.Method = "truncated-weights"

	resp, err := compute("d", snap, req, truncatedWeightsMethod{}, 1, nil)
	if err == nil {
		t.Fatalf("compute served truncated weights: %+v", resp.Weights)
	}
	if !errors.Is(err, errInternal) {
		t.Fatalf("err = %v, want errInternal", err)
	}
	if got := resolveErrorStatus(err); got != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", got)
	}
	// The ordinary compute failure (solver error on an empty dataset)
	// must stay a 422.
	if got := resolveErrorStatus(errors.New("no entries")); got != http.StatusUnprocessableEntity {
		t.Fatalf("non-internal status = %d, want 422", got)
	}
}

func TestResolveCacheHit(t *testing.T) {
	s, ts := testServer(t)
	mustCreate(t, ts.URL, "d", testTSV)

	var first, second struct {
		Cached bool `json:"cached"`
		ResolveResponse
	}
	doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{}`), &first)
	doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", nil, &second) // empty body ≡ {}
	if first.Cached {
		t.Fatal("first resolve cached")
	}
	if !second.Cached {
		t.Fatal("identical second resolve not cached")
	}
	snap := s.Stats().Snapshot(s.cache.len(), s.cache.capacity())
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", snap.Cache)
	}
	// Different options must miss.
	var third struct {
		Cached bool `json:"cached"`
	}
	doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{"options":{"weights":"exp-sum"}}`), &third)
	if third.Cached {
		t.Fatal("different options served from cache")
	}
}

// TestConcurrentIdenticalResolves is the issue's acceptance criterion:
// concurrent identical resolve requests on the same dataset version must
// perform exactly one CRH computation, observable via the /v1/stats
// coalesce and cache counters.
func TestConcurrentIdenticalResolves(t *testing.T) {
	s, ts := testServer(t)

	// A dataset big enough that the computation is still inflight when
	// the followers arrive.
	d, _ := synth.Weather(synth.WeatherConfig{Seed: 7, Cities: 30, Days: 40})
	var buf bytes.Buffer
	if err := data.Encode(&buf, d, nil); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, ts.URL, "big", buf.String())

	const clients = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	truths := make([][]TruthJSON, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			var env struct{ ResolveResponse }
			if code := doJSON(t, "POST", ts.URL+"/v1/datasets/big/resolve", strings.NewReader(`{}`), &env); code != 200 {
				t.Errorf("client %d: status %d", i, code)
				return
			}
			truths[i] = env.Truths
		}(i)
	}
	close(start)
	wg.Wait()

	var stats StatsSnapshot
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	if stats.Coalesce.Leaders != 1 {
		t.Fatalf("%d computations for %d identical concurrent requests, want exactly 1 (stats: %+v)",
			stats.Coalesce.Leaders, clients, stats.Coalesce)
	}
	if got := stats.Coalesce.Followers + stats.Cache.Hits; got != clients-1 {
		t.Fatalf("followers(%d) + cache hits(%d) = %d, want %d",
			stats.Coalesce.Followers, stats.Cache.Hits, got, clients-1)
	}
	if stats.Requests.Resolves != clients {
		t.Fatalf("resolves = %d, want %d", stats.Requests.Resolves, clients)
	}
	if stats.ResolveLatency.Count != clients {
		t.Fatalf("latency observations = %d, want %d", stats.ResolveLatency.Count, clients)
	}
	for i := 1; i < clients; i++ {
		if len(truths[i]) != len(truths[0]) {
			t.Fatalf("client %d got %d truths, client 0 got %d", i, len(truths[i]), len(truths[0]))
		}
	}
	_ = s
}

// TestIngestThenResolveMatchesFreshRun is the second acceptance
// criterion: after live ingest, a resolve must return truths identical to
// a fresh crh.Run over the complete dataset.
func TestIngestThenResolveMatchesFreshRun(t *testing.T) {
	_, ts := testServer(t)
	mustCreate(t, ts.URL, "d", testTSV)

	ingest := `{"observations":[
		{"source":"s1","object":"o3","property":"temp","value":31},
		{"source":"s2","object":"o3","property":"temp","value":29},
		{"source":"s3","object":"o3","property":"temp","value":30},
		{"source":"s3","object":"o3","property":"cond","value":"fog"},
		{"source":"s1","object":"o3","property":"cond","value":"fog"},
		{"source":"s2","object":"o1","property":"humidity","value":0.5}
	]}`
	var ing struct {
		Version  int64 `json:"version"`
		Ingested int   `json:"ingested"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/observations", strings.NewReader(ingest), &ing); code != 200 {
		t.Fatalf("ingest: %d", code)
	}
	if ing.Version != 2 || ing.Ingested != 6 {
		t.Fatalf("ingest response: %+v", ing)
	}

	var env struct {
		Cached bool `json:"cached"`
		ResolveResponse
	}
	doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{}`), &env)
	if env.Version != 2 {
		t.Fatalf("resolve version = %d, want 2", env.Version)
	}

	// Fresh ground-truth run: decode the same TSV, add the same
	// observations, run directly.
	d, _, err := data.Decode(strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	b := data.NewBuilder()
	for k := 0; k < d.NumSources(); k++ {
		b.Source(d.SourceName(k))
	}
	for m := 0; m < d.NumProps(); m++ {
		b.MustProperty(d.Prop(m).Name, d.Prop(m).Type)
	}
	for i := 0; i < d.NumObjects(); i++ {
		for m := 0; m < d.NumProps(); m++ {
			p := d.Prop(m)
			d.ForEntry(d.Entry(i, m), func(k int, v data.Value) {
				if p.Type == data.Categorical {
					if err := b.ObserveCat(d.SourceName(k), d.ObjectName(i), p.Name, p.CatName(int(v.C))); err != nil {
						t.Error(err)
					}
				} else {
					if err := b.ObserveFloat(d.SourceName(k), d.ObjectName(i), p.Name, v.F); err != nil {
						t.Error(err)
					}
				}
			})
		}
	}
	for _, o := range []struct {
		src, obj, prop string
		f              float64
		cat            string
		isCat          bool
	}{
		{"s1", "o3", "temp", 31, "", false},
		{"s2", "o3", "temp", 29, "", false},
		{"s3", "o3", "temp", 30, "", false},
		{"s3", "o3", "cond", 0, "fog", true},
		{"s1", "o3", "cond", 0, "fog", true},
		{"s2", "o1", "humidity", 0.5, "", false},
	} {
		var err error
		if o.isCat {
			err = b.ObserveCat(o.src, o.obj, o.prop, o.cat)
		} else {
			err = b.ObserveFloat(o.src, o.obj, o.prop, o.f)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	full := b.Build()
	want, err := core.Run(full, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkTruthsMatch(t, full, want.Truths, env.Truths)
	for k := 0; k < full.NumSources(); k++ {
		if w := env.Weights.Get(full.SourceName(k)); math.Abs(w-want.Weights[k]) > 1e-12 {
			t.Fatalf("weight %s = %v, want %v", full.SourceName(k), w, want.Weights[k])
		}
	}
}

func TestIncrementalEndpoint(t *testing.T) {
	_, ts := testServer(t)
	mustCreate(t, ts.URL, "d", "")

	for _, batch := range []string{
		`{"observations":[
			{"source":"a","object":"o1","property":"temp","value":10},
			{"source":"b","object":"o1","property":"temp","value":18}
		]}`,
		`{"observations":[
			{"source":"a","object":"o2","property":"temp","value":20},
			{"source":"b","object":"o2","property":"temp","value":21}
		]}`,
	} {
		if code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/observations", strings.NewReader(batch), nil); code != 200 {
			t.Fatalf("ingest: %d", code)
		}
	}

	var inc struct {
		Version int64              `json:"version"`
		Chunks  int                `json:"chunks"`
		Truths  []TruthJSON        `json:"truths"`
		Weights map[string]float64 `json:"weights"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets/d/incremental", nil, &inc); code != 200 {
		t.Fatalf("incremental: %d", code)
	}
	if inc.Version != 3 || inc.Chunks != 2 {
		t.Fatalf("incremental = %+v", inc)
	}
	if len(inc.Truths) != 2 {
		t.Fatalf("warm truths = %+v", inc.Truths)
	}
	if len(inc.Weights) != 2 {
		t.Fatalf("warm weights = %+v", inc.Weights)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets/nope/incremental", nil, nil); code != http.StatusNotFound {
		t.Fatalf("incremental on missing dataset: %d", code)
	}
}

func TestIngestErrors(t *testing.T) {
	_, ts := testServer(t)
	mustCreate(t, ts.URL, "d", testTSV)
	for _, body := range []string{
		`not json`,
		`{"observations":[]}`,
		`{"observations":[{"source":"s1","object":"o1","property":"cond","value":3}]}`,
	} {
		if code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/observations", strings.NewReader(body), nil); code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, code)
		}
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/nope/observations", strings.NewReader(`{}`), nil); code != http.StatusNotFound {
		t.Fatalf("ingest to missing dataset: %d", code)
	}
}

// TestHealthzV1 verifies the readiness endpoint reports the dataset
// count and build identity.
func TestHealthzV1(t *testing.T) {
	_, ts := testServer(t)
	var out HealthResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/healthz", nil, &out); code != 200 {
		t.Fatalf("v1/healthz: %d", code)
	}
	if out.Status != "ok" || out.Datasets != 0 {
		t.Fatalf("healthz = %+v", out)
	}
	if out.Build.GoVersion == "" {
		t.Fatalf("healthz build info empty: %+v", out.Build)
	}
	mustCreate(t, ts.URL, "weather", testTSV)
	doJSON(t, "GET", ts.URL+"/v1/healthz", nil, &out)
	if out.Datasets != 1 {
		t.Fatalf("datasets after create = %d, want 1", out.Datasets)
	}
}

// TestMetricsEndpoint drives the API and checks the Prometheus text
// exposition covers requests, cache, coalescing, ingest, and latency.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	base := ts.URL
	mustCreate(t, base, "weather", testTSV)
	ingest := `{"observations":[{"source":"s1","object":"oX","property":"temp","value":1}]}`
	if code := doJSON(t, "POST", base+"/v1/datasets/weather/observations", strings.NewReader(ingest), nil); code != 200 {
		t.Fatalf("ingest: %d", code)
	}
	for i := 0; i < 2; i++ { // second resolve is a cache hit
		if code := doJSON(t, "POST", base+"/v1/datasets/weather/resolve", strings.NewReader(`{}`), nil); code != 200 {
			t.Fatalf("resolve %d failed", i)
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`crhd_requests_total{op="resolve"} 2`,
		`crhd_requests_total{op="create"} 1`,
		`crhd_requests_total{op="ingest"} 1`,
		`crhd_observations_ingested_total 1`,
		`crhd_cache_hits_total 1`,
		`crhd_cache_misses_total 1`,
		`crhd_coalesce_total{role="leader"} 1`,
		`crhd_resolve_latency_seconds_count 2`,
		`crhd_resolve_latency_seconds_bucket{le="+Inf"} 2`,
		`crhd_datasets 1`,
		`crhd_cache_entries 1`,
		`crh_stream_chunks_total 1`,
		`crh_stream_observations_total 1`,
		"# TYPE crhd_requests_total counter",
		"# TYPE crhd_resolve_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestResolveStageInstrumentation drives resolves through the HTTP
// handler and checks the per-stage timeline lands in both the stats
// document and the exposition: a miss exercises decode/cache/queue/
// solve/encode, a hit exercises decode/cache/encode but never solve.
func TestResolveStageInstrumentation(t *testing.T) {
	_, ts := testServer(t)
	mustCreate(t, ts.URL, "d", testTSV)
	for i := 0; i < 3; i++ { // 1 miss + 2 hits
		if code := doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{}`), nil); code != 200 {
			t.Fatalf("resolve %d failed", i)
		}
	}

	var stats StatsSnapshot
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	wantCounts := map[string]int64{
		"decode": 3, "cache": 3, "encode": 3, // every request
		"solve": 1, "queue": 1, // leader only
		"coalesce": 0, // nothing raced
	}
	for name, want := range wantCounts {
		st, ok := stats.Stages[name]
		if !ok {
			t.Fatalf("stage %q missing from /v1/stats", name)
		}
		if st.Count != want {
			t.Errorf("stage %q count = %d, want %d", name, st.Count, want)
		}
	}
	// Quantiles must be present on exercised stages, absent on coalesce.
	if stats.Stages["solve"].P50Ms == nil {
		t.Errorf("solve stage has no p50 after a computation")
	}
	if stats.Stages["coalesce"].P50Ms != nil {
		t.Errorf("untouched coalesce stage reports quantiles")
	}
	var shareSum float64
	for _, st := range stats.Stages {
		shareSum += st.ShareOfTotal
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("stage shares sum to %v, want 1", shareSum)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`crhd_stage_seconds_count{stage="solve"} 1`,
		`crhd_stage_seconds_count{stage="decode"} 3`,
		`crhd_stage_seconds_count{stage="encode"} 3`,
		"# TYPE crhd_stage_seconds histogram",
		"crhd_cache_hit_ratio 0.6666666666666666",
		"# TYPE go_goroutines gauge",
		"go_heap_inuse_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestServerStageLog wires Config.StageLog end to end: with sampling
// every request, each successful resolve emits one StageTimings record.
func TestServerStageLog(t *testing.T) {
	var mu sync.Mutex
	var recs []StageTimings
	s, err := New(Config{
		StageLogEvery: 1,
		StageLog: func(rec StageTimings) {
			mu.Lock()
			recs = append(recs, rec)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	mustCreate(t, ts.URL, "d", testTSV)
	doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{}`), nil)
	doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{}`), nil)
	// A failed resolve must not log a stage record.
	doJSON(t, "POST", ts.URL+"/v1/datasets/d/resolve", strings.NewReader(`{"method":"nope"}`), nil)

	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 2 {
		t.Fatalf("stage log got %d records, want 2 (errors must not log)", len(recs))
	}
	if recs[0].Cached || !recs[1].Cached {
		t.Errorf("cached flags = %v/%v, want false/true", recs[0].Cached, recs[1].Cached)
	}
	if recs[0].Dataset != "d" || recs[0].Total <= 0 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[0].Stages[stageSolve] <= 0 {
		t.Errorf("miss record has no solve time: %v", recs[0].Stages)
	}
	if recs[1].Stages[stageSolve] != 0 {
		t.Errorf("hit record has solve time: %v", recs[1].Stages)
	}
}
