package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crhkit/crh/internal/wal"
)

// mustClose shuts a server down, surfacing a WAL close failure as a
// test failure — recovery assertions downstream are meaningless if the
// final flush was lost.
func mustClose(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
}

// durableServer builds a Server over dir with a tight snapshot cadence so
// compaction paths get exercised even in short tests.
func durableServer(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	cfg.DataDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ingestN pushes n single-observation batches with deterministic values,
// alternating continuous and categorical claims from two sources.
func ingestN(t *testing.T, e *entry, n int) int64 {
	t.Helper()
	var version int64
	for i := 0; i < n; i++ {
		v, err := e.Ingest([]Observation{
			{Source: "s1", Object: fmt.Sprintf("o%d", i%3), Property: "temp", Value: num(float64(i) * 1.25)},
			{Source: "s2", Object: fmt.Sprintf("o%d", i%3), Property: "cond", Value: str([]string{"sunny", "rain"}[i%2])},
		})
		if err != nil {
			t.Fatal(err)
		}
		version = v
	}
	return version
}

// resolveBits runs a CRH resolve through the handler stack and returns
// the response body — compared byte-for-byte across recovery, which pins
// every float to its exact bits (JSON via strconv round-trips float64
// exactly).
func resolveBits(t *testing.T, s *Server, name string) []byte {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/datasets/"+name+"/resolve", strings.NewReader("{}"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("resolve: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var envelope struct {
		ResolveResponse
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	out, _ := json.Marshal(envelope)
	return out
}

func warmBits(t *testing.T, s *Server, name string) []byte {
	t.Helper()
	req := httptest.NewRequest("GET", "/v1/datasets/"+name+"/incremental", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("incremental: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	return rec.Body.Bytes()
}

// TestDurableRecoveryBitExact is the core durability contract: a server
// reopened over the same data dir serves the exact pre-shutdown state —
// same version, bit-identical resolve output, bit-identical warm I-CRH
// truths and weights — whether the state comes from the snapshot, the
// WAL, or both.
func TestDurableRecoveryBitExact(t *testing.T) {
	// snapshotEvery=4 with 10 batches lands us mid-cadence: versions
	// 1..9 covered by the snapshot at 9, versions 10..11 only in the WAL.
	for _, n := range []int{0, 3, 10} {
		t.Run(fmt.Sprintf("batches=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			s1 := durableServer(t, dir, Config{SnapshotEvery: 4})
			e, err := s1.registry.Create("d", strings.NewReader(testTSV))
			if err != nil {
				t.Fatal(err)
			}
			version := int64(1)
			if n > 0 {
				version = ingestN(t, e, n)
			}
			wantResolve := resolveBits(t, s1, "d")
			wantWarm := warmBits(t, s1, "d")
			wantInfo := e.Info()
			mustClose(t, s1)

			s2 := durableServer(t, dir, Config{SnapshotEvery: 4})
			defer mustClose(t, s2)
			e2, ok := s2.registry.Get("d")
			if !ok {
				t.Fatal("dataset not recovered")
			}
			if got := e2.Snapshot().Version; got != version {
				t.Fatalf("recovered version %d, want %d", got, version)
			}
			if gotInfo := e2.Info(); gotInfo != wantInfo {
				t.Fatalf("recovered info %+v, want %+v", gotInfo, wantInfo)
			}
			if got := resolveBits(t, s2, "d"); !bytes.Equal(got, wantResolve) {
				t.Fatalf("resolve diverged after recovery:\n got %s\nwant %s", got, wantResolve)
			}
			if got := warmBits(t, s2, "d"); !bytes.Equal(got, wantWarm) {
				t.Fatalf("warm state diverged after recovery:\n got %s\nwant %s", got, wantWarm)
			}

			// Recovered datasets must keep ingesting — and the continuation
			// must match a server that never restarted.
			if _, err := e2.Ingest([]Observation{
				{Source: "s9", Object: "o9", Property: "temp", Value: num(7)},
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableRecoveryMatchesUncrashed ingests the same stream into a
// durable server (restarted mid-stream) and a memory-only server, then
// compares warm weights bit-for-bit: replay must be indistinguishable
// from having never stopped.
func TestDurableRecoveryMatchesUncrashed(t *testing.T) {
	dir := t.TempDir()
	s1 := durableServer(t, dir, Config{SnapshotEvery: 3})
	e1, err := s1.registry.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	ingestN(t, e1, 5)
	mustClose(t, s1)
	s2 := durableServer(t, dir, Config{SnapshotEvery: 3})
	defer mustClose(t, s2)
	e2, _ := s2.registry.Get("d")
	ingestN(t, e2, 4) // note: ingestN restarts i at 0; mirrored below

	ref, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, ref)
	eRef, err := ref.registry.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	ingestN(t, eRef, 5)
	ingestN(t, eRef, 4)

	_, _, w2, c2 := e2.WarmState()
	_, _, wRef, cRef := eRef.WarmState()
	if c2 != cRef {
		t.Fatalf("chunks %d vs %d", c2, cRef)
	}
	if len(w2) != len(wRef) {
		t.Fatalf("weight sets differ: %v vs %v", w2, wRef)
	}
	for k, v := range wRef {
		if math.Float64bits(w2[k]) != math.Float64bits(v) {
			t.Fatalf("weight %q: %x vs %x", k, math.Float64bits(w2[k]), math.Float64bits(v))
		}
	}
}

// TestDurableDeleteReleasesEverything: deleting a dataset drops its
// on-disk directory, a stale entry handle refuses ingest, and the name
// can be recreated cleanly — before and after a restart.
func TestDurableDeleteReleasesEverything(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Config{})
	e, err := s.registry.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	ingestN(t, e, 2)
	if ok, err := s.registry.Delete("d"); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "d")); !os.IsNotExist(err) {
		t.Fatalf("on-disk state survives delete: %v", err)
	}
	// Stale handle: the entry was fetched before the delete.
	if _, err := e.Ingest([]Observation{{Source: "s", Object: "o", Property: "p", Value: num(1)}}); !errors.Is(err, errNotFound) {
		t.Fatalf("ingest on deleted entry: %v, want errNotFound", err)
	}
	// The released entry must not pin its log or interning tables.
	e.mu.Lock()
	if e.log != nil || e.srcSet != nil || e.proc != nil {
		t.Error("delete left entry resources live")
	}
	e.mu.Unlock()

	// Same name, fresh content: must start from scratch at version 1.
	e2, err := s.registry.Create("d", strings.NewReader(""))
	if err != nil {
		t.Fatalf("re-create after delete: %v", err)
	}
	if e2.Info().Observations != 0 {
		t.Fatalf("re-created dataset inherited observations: %+v", e2.Info())
	}
	mustClose(t, s)

	s2 := durableServer(t, dir, Config{})
	defer mustClose(t, s2)
	e3, ok := s2.registry.Get("d")
	if !ok {
		t.Fatal("re-created dataset not recovered")
	}
	if info := e3.Info(); info.Observations != 0 || info.Version != 1 {
		t.Fatalf("recovered re-created dataset: %+v", info)
	}
}

// TestDurableCompactionBoundsSegments: with a tight snapshot cadence the
// WAL cannot grow without bound — old segments retire at each snapshot —
// and recovery from a compacted log is still exact.
func TestDurableCompactionBoundsSegments(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Config{SnapshotEvery: 2, Fsync: "off"})
	e, err := s.registry.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	ingestN(t, e, 20)
	want := resolveBits(t, s, "d")
	wantVersion := e.Snapshot().Version
	mustClose(t, s)

	// Snapshots pruned to the latest; no unbounded file growth.
	entries, err := os.ReadDir(filepath.Join(dir, "d"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 4 {
		names := make([]string, len(entries))
		for i, de := range entries {
			names[i] = de.Name()
		}
		t.Fatalf("compaction left %d files: %v", len(entries), names)
	}

	s2 := durableServer(t, dir, Config{SnapshotEvery: 2})
	defer mustClose(t, s2)
	e2, _ := s2.registry.Get("d")
	if e2.Snapshot().Version != wantVersion {
		t.Fatalf("version %d after compacted recovery, want %d", e2.Snapshot().Version, wantVersion)
	}
	if got := resolveBits(t, s2, "d"); !bytes.Equal(got, want) {
		t.Fatal("resolve diverged after compacted recovery")
	}
}

// TestDurableHTTPDeleteRecreate drives delete/recreate through the HTTP
// layer against a durable server.
func TestDurableHTTPDeleteRecreate(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Config{})
	defer mustClose(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	mustCreate(t, ts.URL, "d", testTSV)
	if code := doJSON(t, "DELETE", ts.URL+"/v1/datasets/d", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/datasets/d", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
	mustCreate(t, ts.URL, "d", testTSV)
}

// TestDurableBadConfig: an unknown fsync policy or an unusable data dir
// must fail construction, not limp along memory-only.
func TestDurableBadConfig(t *testing.T) {
	if _, err := New(Config{DataDir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Error("bad fsync policy accepted")
	}
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DataDir: filepath.Join(file, "sub")}); err == nil {
		t.Error("unusable data dir accepted")
	}
}

// TestDurableCorruptWALRefusesStart: interior WAL damage (not a torn
// tail) must fail recovery loudly rather than serve a silently shortened
// history.
func TestDurableCorruptWALRefusesStart(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Config{})
	e, err := s.registry.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	ingestN(t, e, 3)
	mustClose(t, s)

	// Flip a byte in the middle of the segment: CRC breaks on a record
	// that is not the tail.
	segs, err := filepath.Glob(filepath.Join(dir, "d", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 32 {
		t.Skip("segment too small to corrupt mid-record")
	}
	raw[12] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DataDir: dir}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("corrupt WAL start: %v, want ErrCorrupt", err)
	}
}
