package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/synth"
)

// TestResolveHammerSharedPool floods a server whose solver pool is
// deliberately smaller than the request concurrency with resolves over
// several datasets at once. Every response must match, truth for truth,
// the answer a strictly sequential server (SolverWorkers: 1, cold cache)
// gives for the same request — the per-request worker budgeting and pool
// sharing must affect throughput only, never results. Run under the race
// detector by `make racehammer`.
func TestResolveHammerSharedPool(t *testing.T) {
	pooled, err := New(Config{SolverWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, pooled)
	ts := httptest.NewServer(pooled.Handler())
	t.Cleanup(ts.Close)

	sequential, err := New(Config{SolverWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, sequential)
	ref := httptest.NewServer(sequential.Handler())
	t.Cleanup(ref.Close)

	const datasets = 3
	for i := 0; i < datasets; i++ {
		d, _ := synth.Weather(synth.WeatherConfig{Seed: int64(40 + i), Cities: 12, Days: 15})
		var buf bytes.Buffer
		if err := data.Encode(&buf, d, nil); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("d%d", i)
		mustCreate(t, ts.URL, name, buf.String())
		mustCreate(t, ref.URL, name, buf.String())
	}
	bodies := []string{`{}`, `{"options":{"weights":"exp-sum"}}`}

	// Sequential references first, so the hammer compares against
	// answers computed with no pool sharing at all.
	want := make(map[string]ResolveResponse)
	for i := 0; i < datasets; i++ {
		for _, body := range bodies {
			var env struct{ ResolveResponse }
			url := fmt.Sprintf("%s/v1/datasets/d%d/resolve", ref.URL, i)
			if code := doJSON(t, "POST", url, strings.NewReader(body), &env); code != 200 {
				t.Fatalf("reference resolve d%d: status %d", i, code)
			}
			want[fmt.Sprintf("d%d|%s", i, body)] = env.ResolveResponse
		}
	}

	const clients = 12
	const rounds = 3
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % datasets
				body := bodies[(c+r)%len(bodies)]
				var env struct{ ResolveResponse }
				url := fmt.Sprintf("%s/v1/datasets/d%d/resolve", ts.URL, i)
				if code := doJSON(t, "POST", url, strings.NewReader(body), &env); code != 200 {
					t.Errorf("client %d round %d: status %d", c, r, code)
					return
				}
				w := want[fmt.Sprintf("d%d|%s", i, body)]
				if !reflect.DeepEqual(env.Truths, w.Truths) {
					t.Errorf("client %d round %d: truths diverged from sequential reference", c, r)
					return
				}
				if !reflect.DeepEqual(env.Weights, w.Weights) {
					t.Errorf("client %d round %d: weights diverged from sequential reference", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
