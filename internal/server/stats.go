package server

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/crhkit/crh/internal/obs"
)

// latencyBounds are the upper bounds (seconds, inclusive) of the
// resolve-latency histogram buckets; a final implicit +Inf bucket
// catches the rest. Roughly logarithmic, spanning cache hits (~µs) to
// multi-second full resolves. These are obs.DefBuckets, pinned here so
// the JSON stats shape cannot drift if the obs default changes.
var latencyBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// Stages of the resolve pipeline, in request order. Every successful
// resolve carries an obs.Span whose per-stage durations feed the
// crhd_stage_seconds{stage=...} histograms and the sampled stage log.
// The stages overlap deliberately: a coalesced follower accrues
// "coalesce" (its wait on the leader) while the leader accrues "queue"
// and "solve" for the same computation, so stage sums attribute each
// request's own wall time, not machine work.
const (
	stageDecode   obs.Stage = iota // path lookup, body decode, validation
	stageCache                     // result-cache probe
	stageCoalesce                  // follower's wait on an identical inflight leader
	stageQueue                     // leader's delay between flight entry and solve start
	stageSolve                     // the CRH/baseline computation itself
	stageEncode                    // response shaping and JSON write
	numStages
)

// NumStages is the number of resolve pipeline stages.
const NumStages = int(numStages)

// StageNames names the resolve stages, indexed like StageTimings.Stages.
var StageNames = [NumStages]string{"decode", "cache", "coalesce", "queue", "solve", "encode"}

// StageTimings is one sampled resolve request's stage breakdown, handed
// to Config.StageLog. Stages not traversed by the request (coalesce on
// a leader, solve on a cache hit) are zero.
type StageTimings struct {
	// Dataset names the resolved dataset.
	Dataset string
	// Cached and Coalesced mirror the response envelope's serving flags.
	Cached    bool
	Coalesced bool // see Cached
	// Total is the request's end-to-end wall time; Stages its per-stage
	// breakdown, indexed by the stage constants / StageNames.
	Total  time.Duration
	Stages [NumStages]time.Duration // see Total
}

// Stats aggregates the server's operational counters, registry-backed:
// every counter and histogram is an obs metric, so the same numbers feed
// both GET /v1/stats (JSON) and GET /metrics (Prometheus text
// exposition). All fields update atomically; Snapshot may be called at
// any time.
type Stats struct {
	start time.Time

	resolves     *obs.Counter
	ingests      *obs.Counter
	observations *obs.Counter
	creates      *obs.Counter
	deletes      *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	coalesceLeaders   *obs.Counter
	coalesceFollowers *obs.Counter

	resolveLatency *obs.Histogram
	stageHists     [numStages]*obs.Histogram

	// stageEvery samples the per-request stage log (log every Nth
	// resolve; 0 = off); stageSeq is the sampling counter and stageLog
	// the sink. Set once via EnableStageLog before serving.
	stageEvery int64
	stageSeq   atomic.Int64
	stageLog   func(StageTimings)
}

// NewStats registers the server's metrics on reg and returns the Stats
// anchored at the current time. The metric names are documented in
// docs/OBSERVABILITY.md.
func NewStats(reg *obs.Registry) *Stats {
	s := &Stats{
		start:             time.Now(),
		resolves:          reg.NewCounter(`crhd_requests_total{op="resolve"}`, "API operations served, by operation"),
		ingests:           reg.NewCounter(`crhd_requests_total{op="ingest"}`, "API operations served, by operation"),
		creates:           reg.NewCounter(`crhd_requests_total{op="create"}`, "API operations served, by operation"),
		deletes:           reg.NewCounter(`crhd_requests_total{op="delete"}`, "API operations served, by operation"),
		observations:      reg.NewCounter("crhd_observations_ingested_total", "observations accepted across all ingest batches"),
		cacheHits:         reg.NewCounter("crhd_cache_hits_total", "resolve result cache hits"),
		cacheMisses:       reg.NewCounter("crhd_cache_misses_total", "resolve result cache misses"),
		coalesceLeaders:   reg.NewCounter(`crhd_coalesce_total{role="leader"}`, "resolve computations, by coalescing role"),
		coalesceFollowers: reg.NewCounter(`crhd_coalesce_total{role="follower"}`, "resolve computations, by coalescing role"),
		resolveLatency:    reg.NewHistogram("crhd_resolve_latency_seconds", "end-to-end resolve latency", latencyBounds),
	}
	for st := obs.Stage(0); st < numStages; st++ {
		s.stageHists[st] = reg.NewHistogram(
			`crhd_stage_seconds{stage="`+StageNames[st]+`"}`,
			"per-request resolve latency by pipeline stage", latencyBounds)
	}
	reg.NewGaugeFunc("crhd_uptime_seconds", "seconds since the server started", func() float64 {
		return time.Since(s.start).Seconds()
	})
	reg.NewGaugeFunc("crhd_cache_hit_ratio", "resolve cache hits over lookups since start (omitted before the first lookup)", func() float64 {
		h, m := float64(s.cacheHits.Value()), float64(s.cacheMisses.Value())
		if h+m == 0 {
			// NaN tells the exposition layer to omit the sample: a ratio
			// with no lookups has no value, and emitting NaN (or a fake 0)
			// would mislead strict scrapers. Same rule as empty-histogram
			// quantiles.
			return math.NaN()
		}
		return h / (h + m)
	})
	return s
}

// EnableStageLog turns on the sampled per-request stage log: every
// `every`-th successful resolve's StageTimings goes to fn. Call before
// the server starts handling requests.
func (s *Stats) EnableStageLog(every int, fn func(StageTimings)) {
	if every > 0 && fn != nil {
		s.stageEvery = int64(every)
		s.stageLog = fn
	}
}

// observeSpan folds one successful resolve's span into the stage
// histograms (stages the request did not traverse are skipped, so each
// stage's count is the number of requests that exercised it) and emits
// a sampled stage log record.
func (s *Stats) observeSpan(sp *obs.Span, dataset string, cached, coalesced bool, total time.Duration) {
	for st := obs.Stage(0); st < numStages; st++ {
		if d := sp.Stage(st); d > 0 {
			s.stageHists[st].ObserveDuration(d)
		}
	}
	if s.stageEvery > 0 && s.stageSeq.Add(1)%s.stageEvery == 0 {
		rec := StageTimings{Dataset: dataset, Cached: cached, Coalesced: coalesced, Total: total}
		for st := obs.Stage(0); st < numStages; st++ {
			rec.Stages[st] = sp.Stage(st)
		}
		s.stageLog(rec)
	}
}

// HistogramSnapshot is the JSON shape of a latency histogram:
// per-bucket counts keyed by upper bound in milliseconds, plus totals.
type HistogramSnapshot struct {
	// BoundsMs are the buckets' upper bounds in milliseconds; Buckets[i]
	// counts observations in (BoundsMs[i-1], BoundsMs[i]], with the last
	// element of Buckets (one longer than BoundsMs) the +Inf overflow.
	BoundsMs []float64 `json:"bounds_ms"`
	Buckets  []int64   `json:"buckets"` // see BoundsMs
	// Count and SumMs total the recorded observations and their sum in
	// milliseconds (so mean latency is SumMs/Count).
	Count int64   `json:"count"`
	SumMs float64 `json:"sum_ms"` // see Count
	// P50Ms, P95Ms, and P99Ms are latency quantiles estimated from the
	// buckets by linear interpolation. They are omitted (null) while
	// Count is 0 — an empty histogram has no quantiles, and reporting 0
	// would be indistinguishable from a genuinely instant distribution.
	P50Ms *float64 `json:"p50_ms,omitempty"`
	P95Ms *float64 `json:"p95_ms,omitempty"` // see P50Ms
	P99Ms *float64 `json:"p99_ms,omitempty"` // see P50Ms
}

// histogramJSON converts an obs histogram snapshot (seconds) to the
// stats document's millisecond shape.
func histogramJSON(s obs.HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		BoundsMs: make([]float64, len(s.Bounds)),
		Buckets:  s.Counts,
		Count:    s.Count,
		SumMs:    s.Sum * 1e3,
	}
	for i, b := range s.Bounds {
		out.BoundsMs[i] = b * 1e3
	}
	if s.Count > 0 {
		q := func(p float64) *float64 {
			v := s.Quantile(p) * 1e3
			return &v
		}
		out.P50Ms, out.P95Ms, out.P99Ms = q(0.50), q(0.95), q(0.99)
	}
	return out
}

// StageSnapshot is one pipeline stage's latency distribution in the
// stats document, plus its share of the total stage time.
type StageSnapshot struct {
	HistogramSnapshot
	// ShareOfTotal is this stage's summed latency divided by the summed
	// latency of all stages — "where requests spend their time" as a
	// fraction in [0,1] (0 while no stage has data).
	ShareOfTotal float64 `json:"share_of_total"`
}

// RuntimeSnapshot is the Go process-health section of the stats
// document, sampled via obs.ReadRuntimeHealth.
type RuntimeSnapshot struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// HeapInuseBytes and HeapObjects describe the live heap.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	HeapObjects    uint64 `json:"heap_objects"` // see HeapInuseBytes
	// GCCycles counts completed collections; GCPauseP99Ms is the p99
	// stop-the-world pause over the runtime's recent-pause ring.
	GCCycles     uint32  `json:"gc_cycles"`
	GCPauseP99Ms float64 `json:"gc_pause_p99_ms"` // see GCCycles
}

// StatsSnapshot is the JSON document served by GET /v1/stats.
type StatsSnapshot struct {
	// UptimeSeconds is the time since the Stats was created.
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Requests counts each API operation served.
	Requests struct {
		Resolves     int64 `json:"resolves"`
		Ingests      int64 `json:"ingests"`
		Observations int64 `json:"observations"`
		Creates      int64 `json:"creates"`
		Deletes      int64 `json:"deletes"`
	} `json:"requests"`

	// Cache reports the resolve result cache's hit/miss counters and
	// occupancy.
	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hit_rate"`
		Size     int     `json:"size"`
		Capacity int     `json:"capacity"`
	} `json:"cache"`

	// Coalesce reports request-coalescing effectiveness.
	Coalesce struct {
		// Leaders is the number of resolves that actually computed;
		// Followers the number that piggybacked on an identical inflight
		// computation.
		Leaders   int64 `json:"leaders"`
		Followers int64 `json:"followers"`
	} `json:"coalesce"`

	// ResolveLatency is the end-to-end resolve latency distribution.
	ResolveLatency HistogramSnapshot `json:"resolve_latency"`

	// Stages breaks resolve latency down by pipeline stage, keyed by
	// StageNames, each with its share of total stage time.
	Stages map[string]StageSnapshot `json:"stages"`

	// Runtime reports Go process health next to the request stats.
	Runtime RuntimeSnapshot `json:"runtime"`
}

// Snapshot captures the current counters. cacheSize/cacheCap describe the
// result cache, which Stats does not own.
func (s *Stats) Snapshot(cacheSize, cacheCap int) StatsSnapshot {
	var out StatsSnapshot
	out.UptimeSeconds = time.Since(s.start).Seconds()
	out.Requests.Resolves = s.resolves.Value()
	out.Requests.Ingests = s.ingests.Value()
	out.Requests.Observations = s.observations.Value()
	out.Requests.Creates = s.creates.Value()
	out.Requests.Deletes = s.deletes.Value()
	out.Cache.Hits = s.cacheHits.Value()
	out.Cache.Misses = s.cacheMisses.Value()
	if total := out.Cache.Hits + out.Cache.Misses; total > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(total)
	}
	out.Cache.Size = cacheSize
	out.Cache.Capacity = cacheCap
	out.Coalesce.Leaders = s.coalesceLeaders.Value()
	out.Coalesce.Followers = s.coalesceFollowers.Value()
	out.ResolveLatency = histogramJSON(s.resolveLatency.Snapshot())

	snaps := make([]obs.HistogramSnapshot, numStages)
	var totalSum float64
	for st := obs.Stage(0); st < numStages; st++ {
		snaps[st] = s.stageHists[st].Snapshot()
		totalSum += snaps[st].Sum
	}
	out.Stages = make(map[string]StageSnapshot, numStages)
	for st := obs.Stage(0); st < numStages; st++ {
		share := 0.0
		if totalSum > 0 {
			share = snaps[st].Sum / totalSum
		}
		out.Stages[StageNames[st]] = StageSnapshot{
			HistogramSnapshot: histogramJSON(snaps[st]),
			ShareOfTotal:      share,
		}
	}

	h := obs.ReadRuntimeHealth()
	out.Runtime = RuntimeSnapshot{
		Goroutines:     h.Goroutines,
		HeapInuseBytes: h.HeapInuseBytes,
		HeapObjects:    h.HeapObjects,
		GCCycles:       h.GCCycles,
		GCPauseP99Ms:   float64(h.GCPauseP99) / 1e6,
	}
	return out
}
