package server

import (
	"sync/atomic"
	"time"
)

// latencyBoundsMs are the upper bounds (milliseconds, inclusive) of the
// resolve-latency histogram buckets; a final implicit +Inf bucket catches
// the rest. Roughly logarithmic, spanning cache hits (~µs) to multi-second
// full resolves.
var latencyBoundsMs = [...]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// histogram is a fixed-bucket latency histogram with atomic counters —
// safe for concurrent observation without locks. The extra bucket is the
// +Inf overflow.
type histogram struct {
	counts [len(latencyBoundsMs) + 1]atomic.Int64
	count  atomic.Int64
	sumUs  atomic.Int64 // total microseconds, integer so it can be atomic
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBoundsMs) && ms > latencyBoundsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(d.Microseconds())
}

// HistogramSnapshot is the JSON shape of a histogram: cumulative bucket
// counts keyed by upper bound, plus totals.
type HistogramSnapshot struct {
	// Buckets[i] counts observations ≤ BoundsMs[i]; the last element of
	// Buckets (one longer than BoundsMs) counts the +Inf overflow.
	BoundsMs []float64 `json:"bounds_ms"`
	Buckets  []int64   `json:"buckets"` // see BoundsMs
	// Count and SumMs total the recorded observations and their sum in
	// milliseconds (so mean latency is SumMs/Count).
	Count int64   `json:"count"`
	SumMs float64 `json:"sum_ms"` // see Count
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsMs: latencyBoundsMs[:],
		Buckets:  make([]int64, len(h.counts)),
		Count:    h.count.Load(),
		SumMs:    float64(h.sumUs.Load()) / 1e3,
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Stats aggregates the server's operational counters. All fields are
// updated atomically; Snapshot may be called at any time.
type Stats struct {
	start time.Time

	resolves     atomic.Int64
	ingests      atomic.Int64
	observations atomic.Int64
	creates      atomic.Int64
	deletes      atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	coalesceLeaders   atomic.Int64
	coalesceFollowers atomic.Int64

	resolveLatency histogram
}

// NewStats returns a zeroed Stats anchored at the current time.
func NewStats() *Stats { return &Stats{start: time.Now()} }

// StatsSnapshot is the JSON document served by GET /v1/stats.
type StatsSnapshot struct {
	// UptimeSeconds is the time since the Stats was created.
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Requests counts each API operation served.
	Requests struct {
		Resolves     int64 `json:"resolves"`
		Ingests      int64 `json:"ingests"`
		Observations int64 `json:"observations"`
		Creates      int64 `json:"creates"`
		Deletes      int64 `json:"deletes"`
	} `json:"requests"`

	// Cache reports the resolve result cache's hit/miss counters and
	// occupancy.
	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hit_rate"`
		Size     int     `json:"size"`
		Capacity int     `json:"capacity"`
	} `json:"cache"`

	// Coalesce reports request-coalescing effectiveness.
	Coalesce struct {
		// Leaders is the number of resolves that actually computed;
		// Followers the number that piggybacked on an identical inflight
		// computation.
		Leaders   int64 `json:"leaders"`
		Followers int64 `json:"followers"`
	} `json:"coalesce"`

	// ResolveLatency is the end-to-end resolve latency distribution.
	ResolveLatency HistogramSnapshot `json:"resolve_latency"`
}

// Snapshot captures the current counters. cacheSize/cacheCap describe the
// result cache, which Stats does not own.
func (s *Stats) Snapshot(cacheSize, cacheCap int) StatsSnapshot {
	var out StatsSnapshot
	out.UptimeSeconds = time.Since(s.start).Seconds()
	out.Requests.Resolves = s.resolves.Load()
	out.Requests.Ingests = s.ingests.Load()
	out.Requests.Observations = s.observations.Load()
	out.Requests.Creates = s.creates.Load()
	out.Requests.Deletes = s.deletes.Load()
	out.Cache.Hits = s.cacheHits.Load()
	out.Cache.Misses = s.cacheMisses.Load()
	if total := out.Cache.Hits + out.Cache.Misses; total > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(total)
	}
	out.Cache.Size = cacheSize
	out.Cache.Capacity = cacheCap
	out.Coalesce.Leaders = s.coalesceLeaders.Load()
	out.Coalesce.Followers = s.coalesceFollowers.Load()
	out.ResolveLatency = s.resolveLatency.snapshot()
	return out
}
