package server

import (
	"time"

	"github.com/crhkit/crh/internal/obs"
)

// latencyBounds are the upper bounds (seconds, inclusive) of the
// resolve-latency histogram buckets; a final implicit +Inf bucket
// catches the rest. Roughly logarithmic, spanning cache hits (~µs) to
// multi-second full resolves. These are obs.DefBuckets, pinned here so
// the JSON stats shape cannot drift if the obs default changes.
var latencyBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// Stats aggregates the server's operational counters, registry-backed:
// every counter and the latency histogram is an obs metric, so the same
// numbers feed both GET /v1/stats (JSON) and GET /metrics (Prometheus
// text exposition). All fields update atomically; Snapshot may be called
// at any time.
type Stats struct {
	start time.Time

	resolves     *obs.Counter
	ingests      *obs.Counter
	observations *obs.Counter
	creates      *obs.Counter
	deletes      *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	coalesceLeaders   *obs.Counter
	coalesceFollowers *obs.Counter

	resolveLatency *obs.Histogram
}

// NewStats registers the server's metrics on reg and returns the Stats
// anchored at the current time. The metric names are documented in
// docs/OBSERVABILITY.md.
func NewStats(reg *obs.Registry) *Stats {
	s := &Stats{
		start:             time.Now(),
		resolves:          reg.NewCounter(`crhd_requests_total{op="resolve"}`, "API operations served, by operation"),
		ingests:           reg.NewCounter(`crhd_requests_total{op="ingest"}`, "API operations served, by operation"),
		creates:           reg.NewCounter(`crhd_requests_total{op="create"}`, "API operations served, by operation"),
		deletes:           reg.NewCounter(`crhd_requests_total{op="delete"}`, "API operations served, by operation"),
		observations:      reg.NewCounter("crhd_observations_ingested_total", "observations accepted across all ingest batches"),
		cacheHits:         reg.NewCounter("crhd_cache_hits_total", "resolve result cache hits"),
		cacheMisses:       reg.NewCounter("crhd_cache_misses_total", "resolve result cache misses"),
		coalesceLeaders:   reg.NewCounter(`crhd_coalesce_total{role="leader"}`, "resolve computations, by coalescing role"),
		coalesceFollowers: reg.NewCounter(`crhd_coalesce_total{role="follower"}`, "resolve computations, by coalescing role"),
		resolveLatency:    reg.NewHistogram("crhd_resolve_latency_seconds", "end-to-end resolve latency", latencyBounds),
	}
	reg.NewGaugeFunc("crhd_uptime_seconds", "seconds since the server started", func() float64 {
		return time.Since(s.start).Seconds()
	})
	return s
}

// HistogramSnapshot is the JSON shape of a latency histogram:
// per-bucket counts keyed by upper bound in milliseconds, plus totals.
type HistogramSnapshot struct {
	// BoundsMs are the buckets' upper bounds in milliseconds; Buckets[i]
	// counts observations in (BoundsMs[i-1], BoundsMs[i]], with the last
	// element of Buckets (one longer than BoundsMs) the +Inf overflow.
	BoundsMs []float64 `json:"bounds_ms"`
	Buckets  []int64   `json:"buckets"` // see BoundsMs
	// Count and SumMs total the recorded observations and their sum in
	// milliseconds (so mean latency is SumMs/Count).
	Count int64   `json:"count"`
	SumMs float64 `json:"sum_ms"` // see Count
	// P50Ms, P95Ms, and P99Ms are latency quantiles estimated from the
	// buckets by linear interpolation (0 while Count is 0).
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"` // see P50Ms
	P99Ms float64 `json:"p99_ms"` // see P50Ms
}

// histogramJSON converts an obs histogram snapshot (seconds) to the
// stats document's millisecond shape.
func histogramJSON(s obs.HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		BoundsMs: make([]float64, len(s.Bounds)),
		Buckets:  s.Counts,
		Count:    s.Count,
		SumMs:    s.Sum * 1e3,
	}
	for i, b := range s.Bounds {
		out.BoundsMs[i] = b * 1e3
	}
	if s.Count > 0 {
		out.P50Ms = s.Quantile(0.50) * 1e3
		out.P95Ms = s.Quantile(0.95) * 1e3
		out.P99Ms = s.Quantile(0.99) * 1e3
	}
	return out
}

// StatsSnapshot is the JSON document served by GET /v1/stats.
type StatsSnapshot struct {
	// UptimeSeconds is the time since the Stats was created.
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Requests counts each API operation served.
	Requests struct {
		Resolves     int64 `json:"resolves"`
		Ingests      int64 `json:"ingests"`
		Observations int64 `json:"observations"`
		Creates      int64 `json:"creates"`
		Deletes      int64 `json:"deletes"`
	} `json:"requests"`

	// Cache reports the resolve result cache's hit/miss counters and
	// occupancy.
	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hit_rate"`
		Size     int     `json:"size"`
		Capacity int     `json:"capacity"`
	} `json:"cache"`

	// Coalesce reports request-coalescing effectiveness.
	Coalesce struct {
		// Leaders is the number of resolves that actually computed;
		// Followers the number that piggybacked on an identical inflight
		// computation.
		Leaders   int64 `json:"leaders"`
		Followers int64 `json:"followers"`
	} `json:"coalesce"`

	// ResolveLatency is the end-to-end resolve latency distribution.
	ResolveLatency HistogramSnapshot `json:"resolve_latency"`
}

// Snapshot captures the current counters. cacheSize/cacheCap describe the
// result cache, which Stats does not own.
func (s *Stats) Snapshot(cacheSize, cacheCap int) StatsSnapshot {
	var out StatsSnapshot
	out.UptimeSeconds = time.Since(s.start).Seconds()
	out.Requests.Resolves = s.resolves.Value()
	out.Requests.Ingests = s.ingests.Value()
	out.Requests.Observations = s.observations.Value()
	out.Requests.Creates = s.creates.Value()
	out.Requests.Deletes = s.deletes.Value()
	out.Cache.Hits = s.cacheHits.Value()
	out.Cache.Misses = s.cacheMisses.Value()
	if total := out.Cache.Hits + out.Cache.Misses; total > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(total)
	}
	out.Cache.Size = cacheSize
	out.Cache.Capacity = cacheCap
	out.Coalesce.Leaders = s.coalesceLeaders.Value()
	out.Coalesce.Followers = s.coalesceFollowers.Value()
	out.ResolveLatency = histogramJSON(s.resolveLatency.Snapshot())
	return out
}
