package server

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stream"
)

const testTSV = `# two-source toy dataset
P	temp	continuous
P	cond	categorical
V	o1	temp	s1	10
V	o1	temp	s2	12
V	o1	cond	s1	sunny
V	o1	cond	s2	sunny
V	o2	temp	s1	20
V	o2	temp	s2	26
V	o2	cond	s1	rain
V	o2	cond	s2	snow
T	o1	temp	10.5
T	o1	cond	sunny
`

func num(v float64) json.RawMessage {
	b, _ := json.Marshal(v)
	return b
}

func str(s string) json.RawMessage {
	b, _ := json.Marshal(s)
	return b
}

func TestRegistryCreateListDelete(t *testing.T) {
	r := NewRegistry(1)
	e, err := r.Create("weather", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	info := e.Info()
	if info.Version != 1 || info.Sources != 2 || info.Objects != 2 || info.Properties != 2 || info.Observations != 8 {
		t.Fatalf("info = %+v", info)
	}
	if !info.HasTruth {
		t.Fatal("ground truth lost on load")
	}

	if _, err := r.Create("weather", strings.NewReader("")); err != errExists {
		t.Fatalf("duplicate create: %v, want errExists", err)
	}
	if _, err := r.Create("bad/name", strings.NewReader("")); err != errBadName {
		t.Fatalf("bad name: %v, want errBadName", err)
	}
	if _, err := r.Create("", strings.NewReader("")); err != errBadName {
		t.Fatalf("empty name: %v, want errBadName", err)
	}

	if _, err := r.Create("empty", strings.NewReader("")); err != nil {
		t.Fatalf("empty dataset create: %v", err)
	}
	list := r.List()
	if len(list) != 2 || list[0].Name != "empty" || list[1].Name != "weather" {
		t.Fatalf("list = %+v", list)
	}

	if ok, err := r.Delete("empty"); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, _ := r.Delete("empty"); ok {
		t.Fatal("double delete succeeded")
	}
	if _, ok := r.Get("empty"); ok {
		t.Fatal("deleted dataset still resolvable")
	}
}

// TestRegistryUIDsNeverReused: a deleted-then-recreated name must get a
// fresh uid, or stale cache entries could alias the new dataset.
func TestRegistryUIDsNeverReused(t *testing.T) {
	r := NewRegistry(1)
	e1, _ := r.Create("d", strings.NewReader(testTSV))
	r.Delete("d")
	e2, _ := r.Create("d", strings.NewReader(testTSV))
	if e1.uid == e2.uid {
		t.Fatalf("uid %d reused", e1.uid)
	}
}

func TestIngestVersionsAndSnapshotIsolation(t *testing.T) {
	r := NewRegistry(1)
	e, err := r.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}
	snap1 := e.Snapshot()

	v, err := e.Ingest([]Observation{
		{Source: "s3", Object: "o3", Property: "temp", Value: num(30)},
		{Source: "s3", Object: "o3", Property: "cond", Value: str("hail")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}

	// The old snapshot must be completely unaffected by the ingest.
	if snap1.Version != 1 || snap1.Data.NumSources() != 2 || snap1.Data.NumObjects() != 2 {
		t.Fatalf("old snapshot mutated: %d sources, %d objects", snap1.Data.NumSources(), snap1.Data.NumObjects())
	}
	snap2 := e.Snapshot()
	if snap2.Version != 2 || snap2.Data.NumSources() != 3 || snap2.Data.NumObjects() != 3 {
		t.Fatalf("new snapshot wrong: %+v", snap2.Data)
	}
	if err := snap2.Data.Validate(); err != nil {
		t.Fatalf("rebuilt dataset invalid: %v", err)
	}
	// Ground truth survives the rebuild.
	if snap2.GT == nil {
		t.Fatal("ground truth lost after ingest")
	}

	// The rebuilt dataset must match a one-shot build of the same data.
	b := data.NewBuilder()
	for _, ln := range []struct {
		src, obj, prop string
		f              float64
		cat            string
		isCat          bool
	}{
		{"s1", "o1", "temp", 10, "", false},
		{"s2", "o1", "temp", 12, "", false},
		{"s1", "o1", "cond", 0, "sunny", true},
		{"s2", "o1", "cond", 0, "sunny", true},
		{"s1", "o2", "temp", 20, "", false},
		{"s2", "o2", "temp", 26, "", false},
		{"s1", "o2", "cond", 0, "rain", true},
		{"s2", "o2", "cond", 0, "snow", true},
		{"s3", "o3", "temp", 30, "", false},
		{"s3", "o3", "cond", 0, "hail", true},
	} {
		if ln.isCat {
			if err := b.ObserveCat(ln.src, ln.obj, ln.prop, ln.cat); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := b.ObserveFloat(ln.src, ln.obj, ln.prop, ln.f); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := core.Run(b.Build(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(snap2.Data, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Weights) != len(got.Weights) {
		t.Fatalf("weight count %d vs %d", len(got.Weights), len(want.Weights))
	}
	for k := range want.Weights {
		if want.Weights[k] != got.Weights[k] {
			t.Fatalf("weight %d: %v vs %v", k, got.Weights[k], want.Weights[k])
		}
	}
}

func TestIngestRejectsAtomically(t *testing.T) {
	r := NewRegistry(1)
	e, _ := r.Create("d", strings.NewReader(testTSV))

	cases := []struct {
		name  string
		batch []Observation
	}{
		{"empty batch", nil},
		{"missing names", []Observation{{Source: "", Object: "o", Property: "p", Value: num(1)}}},
		{"type conflict with committed prop", []Observation{
			{Source: "s1", Object: "o9", Property: "cond", Value: num(3)},
		}},
		{"type conflict within batch", []Observation{
			{Source: "s1", Object: "o9", Property: "newp", Value: num(3)},
			{Source: "s2", Object: "o9", Property: "newp", Value: str("x")},
		}},
		{"bad value", []Observation{{Source: "s1", Object: "o9", Property: "temp", Value: json.RawMessage(`[1]`)}}},
		{"valid then invalid leaves no trace", []Observation{
			{Source: "sZ", Object: "oZ", Property: "temp", Value: num(1)},
			{Source: "s1", Object: "o9", Property: "cond", Value: num(3)},
		}},
	}
	for _, tc := range cases {
		if _, err := e.Ingest(tc.batch); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Nothing may have leaked from the rejected batches.
	snap := e.Snapshot()
	if snap.Version != 1 {
		t.Fatalf("version advanced to %d by rejected batches", snap.Version)
	}
	if snap.Data.NumSources() != 2 || snap.Data.NumObjects() != 2 || snap.Data.NumProps() != 2 {
		t.Fatalf("rejected batch mutated dataset: %+v", e.Info())
	}
	if _, _, _, chunks := e.WarmState(); chunks != 0 {
		t.Fatalf("rejected batches advanced I-CRH state: %d chunks", chunks)
	}
}

// TestWarmStateMatchesDirectProcessor drives the same batches through the
// registry and through a hand-held stream.Processor and demands identical
// warm weights and truths.
func TestWarmStateMatchesDirectProcessor(t *testing.T) {
	r := NewRegistry(0.8)
	e, err := r.Create("d", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}

	batches := [][]Observation{
		{
			{Source: "s1", Object: "o1", Property: "temp", Value: num(10)},
			{Source: "s2", Object: "o1", Property: "temp", Value: num(14)},
			{Source: "s3", Object: "o1", Property: "temp", Value: num(10.5)},
		},
		{
			{Source: "s1", Object: "o2", Property: "temp", Value: num(20)},
			{Source: "s2", Object: "o2", Property: "temp", Value: num(29)},
			{Source: "s3", Object: "o2", Property: "temp", Value: num(20.5)},
			{Source: "s1", Object: "o2", Property: "cond", Value: str("rain")},
			{Source: "s2", Object: "o2", Property: "cond", Value: str("snow")},
			{Source: "s3", Object: "o2", Property: "cond", Value: str("rain")},
		},
	}
	for _, b := range batches {
		if _, err := e.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: the documented manual streaming flow over the same
	// chunks, with all sources (and both properties, from the second
	// chunk on) interned up front in the registry's global order.
	proc := stream.NewProcessor(0, stream.Config{Decay: 0.8, DecaySet: true})
	chunk1 := data.NewBuilder()
	chunk1.Source("s1")
	chunk1.Source("s2")
	chunk1.Source("s3")
	chunk1.MustProperty("temp", data.Continuous)
	for src, v := range map[string]float64{"s1": 10, "s2": 14, "s3": 10.5} {
		if err := chunk1.ObserveFloat(src, "o1", "temp", v); err != nil {
			t.Fatal(err)
		}
	}
	proc.Process(chunk1.Build())
	chunk2 := data.NewBuilder()
	chunk2.Source("s1")
	chunk2.Source("s2")
	chunk2.Source("s3")
	chunk2.MustProperty("temp", data.Continuous)
	chunk2.MustProperty("cond", data.Categorical)
	for src, v := range map[string]float64{"s1": 20, "s2": 29, "s3": 20.5} {
		if err := chunk2.ObserveFloat(src, "o2", "temp", v); err != nil {
			t.Fatal(err)
		}
	}
	for src, v := range map[string]string{"s1": "rain", "s2": "snow", "s3": "rain"} {
		if err := chunk2.ObserveCat(src, "o2", "cond", v); err != nil {
			t.Fatal(err)
		}
	}
	proc.Process(chunk2.Build())

	_, _, weights, chunks := e.WarmState()
	if chunks != 2 {
		t.Fatalf("chunks = %d, want 2", chunks)
	}
	ref := proc.Weights()
	for k, name := range []string{"s1", "s2", "s3"} {
		if weights[name] != ref[k] {
			t.Errorf("warm weight %s = %v, want %v", name, weights[name], ref[k])
		}
	}

	_, truths, _, _ := e.WarmState()
	byKey := map[string]TruthValue{}
	for _, tr := range truths {
		byKey[tr.Object+"/"+tr.Property] = tr.Value
	}
	if v := byKey["o2/cond"]; !v.IsCat || v.Cat != "rain" {
		t.Errorf("warm truth o2/cond = %+v, want rain", v)
	}
	if v := byKey["o1/temp"]; v.IsCat || v.F < 10 || v.F > 14 {
		t.Errorf("warm truth o1/temp = %+v", v)
	}
}

// TestConcurrentIngestAndResolve exercises the copy-on-write contract
// under -race: resolves on pinned snapshots proceed while ingest installs
// new versions.
func TestConcurrentIngestAndResolve(t *testing.T) {
	r := NewRegistry(1)
	e, err := r.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, rounds = 2, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				obj := "w" + string(rune('A'+w)) + "-" + string(rune('a'+i%26))
				_, err := e.Ingest([]Observation{
					{Source: "s1", Object: obj, Property: "temp", Value: num(float64(i))},
					{Source: "s2", Object: obj, Property: "temp", Value: num(float64(i + 1))},
					{Source: "s2", Object: obj, Property: "cond", Value: str("x")},
				})
				if err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap := e.Snapshot()
				if _, err := core.Run(snap.Data, core.Config{}); err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
				if _, _, _, chunks := e.WarmState(); chunks < 0 {
					t.Error("negative chunks")
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := e.Snapshot()
	if want := int64(1 + writers*rounds); snap.Version != want {
		t.Fatalf("final version = %d, want %d", snap.Version, want)
	}
	if err := snap.Data.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWarmStateVersion is the torn-read regression test for
// the incremental endpoint: version and warm state must come from one
// atomic read. The invariant version == chunks+1 holds at every instant
// (1 at create, both advance together under warmMu per ingest); the old
// code read e.Snapshot().Version separately from WarmState, so under
// -race-with-ingest it could pair a new version with old truths and
// break the invariant. Run under make racehammer.
func TestConcurrentWarmStateVersion(t *testing.T) {
	r := NewRegistry(1)
	e, err := r.Create("d", strings.NewReader(testTSV))
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 200
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < rounds; i++ {
			_, err := e.Ingest([]Observation{
				{Source: "s1", Object: "o1", Property: "temp", Value: num(float64(i))},
			})
			if err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				version, truths, weights, chunks := e.WarmState()
				if version != int64(chunks)+1 {
					t.Errorf("torn read: version %d with %d chunks (want version == chunks+1)", version, chunks)
					return
				}
				if chunks > 0 && (len(truths) == 0 || len(weights) == 0) {
					t.Errorf("version %d reports %d chunks but empty state", version, chunks)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()

	version, _, _, chunks := e.WarmState()
	if version != int64(rounds)+1 || chunks != rounds {
		t.Fatalf("final warm state: version %d chunks %d, want %d/%d", version, chunks, rounds+1, rounds)
	}
}
