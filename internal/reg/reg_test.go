package reg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpSumOrdering(t *testing.T) {
	ws := ExpSum{}.Weights([]float64{1, 2, 4})
	if len(ws) != 3 {
		t.Fatal("length")
	}
	if !(ws[0] > ws[1] && ws[1] > ws[2]) {
		t.Fatalf("weights %v should strictly decrease with loss", ws)
	}
	// Closed form: w_k = −log(L_k / ΣL).
	want := -math.Log(1.0 / 7.0)
	if math.Abs(ws[0]-want) > 1e-9 {
		t.Fatalf("ws[0] = %v, want %v", ws[0], want)
	}
}

func TestExpMaxOrdering(t *testing.T) {
	ws := ExpMax{}.Weights([]float64{1, 2, 4})
	if !(ws[0] > ws[1] && ws[1] > ws[2]) {
		t.Fatalf("weights %v should strictly decrease with loss", ws)
	}
	// Worst source gets exactly 0 under max normalization.
	if ws[2] != 0 {
		t.Fatalf("worst-source weight = %v, want 0", ws[2])
	}
	// w_0 = −log(1/4).
	if math.Abs(ws[0]-math.Log(4)) > 1e-9 {
		t.Fatalf("ws[0] = %v, want log4", ws[0])
	}
}

func TestExpMaxSpreadsMoreThanExpSum(t *testing.T) {
	losses := []float64{1, 2, 4, 8}
	sum := ExpSum{}.Weights(losses)
	max := ExpMax{}.Weights(losses)
	spread := func(ws []float64) float64 {
		lo, hi := ws[0], ws[0]
		for _, w := range ws {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		if hi == 0 {
			return 0
		}
		return (hi - lo) / hi
	}
	if !(spread(max) > spread(sum)) {
		t.Fatalf("max-normalized relative spread %v should exceed sum-normalized %v", spread(max), spread(sum))
	}
}

func TestZeroLossGuards(t *testing.T) {
	for _, s := range []Scheme{ExpSum{}, ExpMax{}} {
		// A perfect source must get a large finite weight.
		ws := s.Weights([]float64{0, 1})
		if math.IsInf(ws[0], 0) || math.IsNaN(ws[0]) {
			t.Fatalf("%s: perfect-source weight = %v", s.Name(), ws[0])
		}
		if !(ws[0] > ws[1]) {
			t.Fatalf("%s: perfect source should outrank lossy one: %v", s.Name(), ws)
		}
		// All-zero losses: uniform positive weights.
		ws = s.Weights([]float64{0, 0, 0})
		for _, w := range ws {
			if w != 1 {
				t.Fatalf("%s: all-zero weights = %v, want all 1", s.Name(), ws)
			}
		}
	}
}

func TestSchemesNonNegativeFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	schemes := []Scheme{ExpSum{}, ExpMax{}, BestSource{}, TopJ{J: 2}}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		losses := make([]float64, n)
		for i := range losses {
			if rng.Intn(5) == 0 {
				losses[i] = 0
			} else {
				losses[i] = rng.Float64() * 10
			}
		}
		for _, s := range schemes {
			ws := s.Weights(losses)
			if len(ws) != n {
				t.Fatalf("%s: wrong length", s.Name())
			}
			for _, w := range ws {
				if w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
					t.Fatalf("%s: bad weight %v for losses %v", s.Name(), w, losses)
				}
			}
		}
	}
}

func TestBestSource(t *testing.T) {
	ws := BestSource{}.Weights([]float64{3, 1, 2})
	if ws[1] != 1 || ws[0] != 0 || ws[2] != 0 {
		t.Fatalf("BestSource weights = %v", ws)
	}
	if ws := (BestSource{}).Weights(nil); len(ws) != 0 {
		t.Fatal("empty input")
	}
}

func TestTopJ(t *testing.T) {
	ws := TopJ{J: 2}.Weights([]float64{3, 1, 2, 9})
	want := []float64{0, 1, 1, 0}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("TopJ{2} = %v, want %v", ws, want)
		}
	}
	// J clamped to [1, K].
	ws = TopJ{J: 0}.Weights([]float64{5, 1})
	if ws[0] != 0 || ws[1] != 1 {
		t.Fatalf("TopJ{0} = %v, want single best", ws)
	}
	ws = TopJ{J: 99}.Weights([]float64{5, 1})
	if ws[0] != 1 || ws[1] != 1 {
		t.Fatalf("TopJ{99} = %v, want all selected", ws)
	}
}

// TestMonotoneQuick property-tests that both log schemes are monotone:
// lower loss never yields lower weight.
func TestMonotoneQuick(t *testing.T) {
	for _, s := range []Scheme{ExpSum{}, ExpMax{}} {
		f := func(raw []uint8) bool {
			if len(raw) < 2 {
				return true
			}
			if len(raw) > 10 {
				raw = raw[:10]
			}
			losses := make([]float64, len(raw))
			for i, r := range raw {
				losses[i] = float64(r) / 16
			}
			ws := s.Weights(losses)
			for i := range losses {
				for j := range losses {
					if losses[i] < losses[j] && ws[i] < ws[j]-1e-12 {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestNames(t *testing.T) {
	if (ExpSum{}).Name() == "" || (ExpMax{}).Name() == "" || (BestSource{}).Name() == "" || (TopJ{}).Name() == "" {
		t.Error("schemes must be named")
	}
}

// TestWeightsIntoBitIdentity: the in-place schemes must write exactly
// the bits their allocating Weights return, whatever garbage the
// destination held.
func TestWeightsIntoBitIdentity(t *testing.T) {
	schemes := []InPlaceScheme{ExpMax{}, ExpSum{}}
	rng := rand.New(rand.NewSource(3))
	for _, s := range schemes {
		for trial := 0; trial < 500; trial++ {
			k := 1 + rng.Intn(12)
			losses := make([]float64, k)
			for i := range losses {
				losses[i] = math.Round(rng.Float64()*16) / 4
			}
			if trial%6 == 0 {
				for i := range losses {
					losses[i] = 0 // all-agree path: uniform weights
				}
			}
			want := s.Weights(losses)
			dst := make([]float64, k)
			for i := range dst {
				dst[i] = math.NaN()
			}
			s.WeightsInto(dst, losses)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(dst[i]) {
					t.Fatalf("%s trial %d: dst[%d] = %v, want %v (losses=%v)", s.Name(), trial, i, dst[i], want[i], losses)
				}
			}
		}
	}
}

// TestWeightsIntoAllocFree pins the zero-allocation contract of the
// in-place path.
func TestWeightsIntoAllocFree(t *testing.T) {
	losses := []float64{0.5, 1.25, 0.75, 2, 0.1, 0.9}
	dst := make([]float64, len(losses))
	for _, s := range []InPlaceScheme{ExpMax{}, ExpSum{}} {
		allocs := testing.AllocsPerRun(100, func() {
			s.WeightsInto(dst, losses)
		})
		if allocs != 0 {
			t.Fatalf("%s.WeightsInto allocates %.0f objects per call, want 0", s.Name(), allocs)
		}
	}
}
