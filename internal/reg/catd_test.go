package reg

import (
	"math"
	"testing"
)

func TestCATDDiscountsLuckySparseSource(t *testing.T) {
	// Source 0: 3 observations, zero loss (lucky). Source 1: 3000
	// observations, tiny loss (genuinely good). Source 2: 3000
	// observations, bad.
	losses := []float64{0, 0.02, 0.5}
	counts := []int{3, 3000, 3000}
	ws := CATD{}.WeightsWithCounts(losses, counts)
	if !(ws[1] > ws[0]) {
		t.Fatalf("dense good source (%v) should outrank lucky sparse one (%v)", ws[1], ws[0])
	}
	if !(ws[1] > ws[2]) {
		t.Fatalf("good source (%v) should outrank bad one (%v)", ws[1], ws[2])
	}
	// Contrast: ExpMax over-trusts the lucky source (this is the
	// long-tail failure CATD fixes).
	em := ExpMax{}.Weights(losses)
	if !(em[0] > em[1]) {
		t.Fatalf("precondition: ExpMax should over-trust the zero-loss source: %v", em)
	}
}

func TestCATDManyClaimsApproachInverseLoss(t *testing.T) {
	// With equal large counts, CATD ranks by inverse loss.
	losses := []float64{0.1, 0.2, 0.4}
	counts := []int{5000, 5000, 5000}
	ws := CATD{}.WeightsWithCounts(losses, counts)
	if !(ws[0] > ws[1] && ws[1] > ws[2]) {
		t.Fatalf("weights %v should decrease with loss", ws)
	}
	// Ratio ws[0]/ws[1] ≈ loss[1]/loss[0] = 2 at large n.
	if r := ws[0] / ws[1]; math.Abs(r-2) > 0.1 {
		t.Fatalf("large-n weight ratio = %v, want ≈2", r)
	}
}

func TestCATDEdgeCases(t *testing.T) {
	// All-zero losses: uniform.
	ws := CATD{}.WeightsWithCounts([]float64{0, 0}, []int{5, 10})
	if ws[0] != 1 || ws[1] != 1 {
		t.Fatalf("all-zero losses: %v", ws)
	}
	// Zero count: weight 0.
	ws = CATD{}.WeightsWithCounts([]float64{0.1, 0.1}, []int{0, 10})
	if ws[0] != 0 {
		t.Fatalf("zero-count weight = %v", ws[0])
	}
	// Scheme interface (no counts) still sane.
	ws = CATD{}.Weights([]float64{0.1, 0.4})
	if !(ws[0] > ws[1]) || ws[0] <= 0 {
		t.Fatalf("count-free CATD: %v", ws)
	}
	for _, w := range ws {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			t.Fatalf("bad weight %v", w)
		}
	}
	if (CATD{}).Name() != "catd" {
		t.Fatal("name")
	}
}

func TestCATDCustomAlpha(t *testing.T) {
	losses := []float64{0.1, 0.1}
	counts := []int{5, 500}
	strict := CATD{Alpha: 0.01}.WeightsWithCounts(losses, counts)
	loose := CATD{Alpha: 0.5}.WeightsWithCounts(losses, counts)
	// A stricter confidence level discounts the sparse source harder
	// (relative to the dense one).
	if !(strict[0]/strict[1] < loose[0]/loose[1]) {
		t.Fatalf("alpha ordering: strict ratio %v, loose ratio %v", strict[0]/strict[1], loose[0]/loose[1])
	}
}
