// Package reg implements the source-weight assignment schemes of Section
// 2.3: given each source's aggregated loss against the current truth
// estimate, a Scheme produces the weight vector solving Step I of the CRH
// block coordinate descent under a particular regularization constraint
// δ(W) = 1.
package reg

import (
	"math"

	"github.com/crhkit/crh/internal/stats"
)

// Scheme maps per-source aggregated losses to source weights. Losses are
// non-negative; implementations must return finite non-negative weights and
// must handle the all-zero and single-source cases.
type Scheme interface {
	// Name identifies the scheme in options and reports.
	Name() string
	// Weights returns one weight per source given each source's total
	// (normalized) loss against the current truths.
	Weights(losses []float64) []float64
}

// InPlaceScheme is the allocation-free fast path of a Scheme: the
// columnar solver detects it once per run and reuses one weight buffer
// across iterations instead of taking a fresh slice from Weights each
// time. WeightsInto must write exactly the bits Weights would return;
// schemes without it fall back to Weights, which allocates.
type InPlaceScheme interface {
	Scheme
	// WeightsInto writes Weights(losses) into dst, which has length
	// len(losses).
	WeightsInto(dst, losses []float64)
}

// relFloor guards −log against zero losses: a source whose loss is exactly
// zero (it agrees with every current truth) would otherwise get an infinite
// weight. Losses are floored at a small fraction of the normalizer.
const relFloor = 1e-9

// ExpSum is the entropy-style regularization δ(W) = Σ_k exp(−w_k) of Eq(4),
// whose optimum (Eq 5) weights each source by the negative log of its share
// of the total loss:
//
//	w_k = −log( L_k / Σ_{k'} L_{k'} )
//
// All weights are positive (every source's share is < 1 with ≥ 2 sources),
// so every source retains influence; differences in reliability are
// stretched by the log.
type ExpSum struct{}

// Name implements Scheme.
func (ExpSum) Name() string { return "exp-sum" }

// Weights implements Scheme.
func (ExpSum) Weights(losses []float64) []float64 {
	return negLog(losses, stats.Sum(losses))
}

// WeightsInto implements InPlaceScheme.
func (ExpSum) WeightsInto(dst, losses []float64) {
	negLogInto(dst, losses, stats.Sum(losses))
}

// ExpMax is the paper's preferred variant of ExpSum (Section 2.3): the
// normalization factor is the maximum per-source loss rather than the sum,
// which spreads the weights further apart so reliable sources dominate:
//
//	w_k = −log( L_k / max_{k'} L_{k'} )
//
// The worst source receives weight 0 (it is ignored in the next truth
// update); all better sources receive positive weight growing with their
// advantage. This is CRH's default.
type ExpMax struct{}

// Name implements Scheme.
func (ExpMax) Name() string { return "exp-max" }

// Weights implements Scheme.
func (ExpMax) Weights(losses []float64) []float64 {
	_, max := stats.MinMax(losses)
	return negLog(losses, max)
}

// WeightsInto implements InPlaceScheme.
func (ExpMax) WeightsInto(dst, losses []float64) {
	_, max := stats.MinMax(losses)
	negLogInto(dst, losses, max)
}

func negLog(losses []float64, norm float64) []float64 {
	ws := make([]float64, len(losses))
	negLogInto(ws, losses, norm)
	return ws
}

func negLogInto(dst, losses []float64, norm float64) {
	if norm <= 0 {
		// Every source agrees with the truths: uniform weights.
		for k := range dst {
			dst[k] = 1
		}
		return
	}
	floor := norm * relFloor
	for k, l := range losses {
		if l < floor {
			l = floor
		}
		w := -math.Log(l / norm)
		if w <= 0 {
			w = 0 // normalizes −0 (l == norm) and rounding artifacts to +0
		}
		dst[k] = w
	}
}

// BestSource is the L^p-norm regularization of Eq(6): for any p ≥ 1 the
// optimal solution concentrates all weight on a single source — the one
// whose observations minimize the total loss — and treats its observations
// as the truths. Provided for the source-selection discussion; it assumes
// exactly one reliable source exists.
type BestSource struct{}

// Name implements Scheme.
func (BestSource) Name() string { return "lp-best-source" }

// Weights implements Scheme.
func (BestSource) Weights(losses []float64) []float64 {
	ws := make([]float64, len(losses))
	if i := stats.ArgMin(losses); i >= 0 {
		ws[i] = 1
	}
	return ws
}

// TopJ is the integer-constrained source selection of Eq(7): exactly J
// sources receive weight 1 and the rest 0. Because the objective is linear
// in the weights once truths are fixed, the integer program's optimum is
// simply the J sources with the smallest losses.
type TopJ struct {
	// J is the number of sources to select; values outside [1, K] are
	// clamped.
	J int
}

// Name implements Scheme.
func (TopJ) Name() string { return "top-j" }

// Weights implements Scheme.
func (t TopJ) Weights(losses []float64) []float64 {
	k := len(losses)
	j := t.J
	if j < 1 {
		j = 1
	}
	if j > k {
		j = k
	}
	// Selection by repeated scan is O(J·K); J and K are small (sources
	// number in the tens).
	ws := make([]float64, k)
	chosen := make([]bool, k)
	for n := 0; n < j; n++ {
		best := -1
		for i, l := range losses {
			if chosen[i] {
				continue
			}
			if best == -1 || l < losses[best] {
				best = i
			}
		}
		chosen[best] = true
		ws[best] = 1
	}
	return ws
}

// CountScheme is a Scheme that also consumes each source's observation
// count, enabling long-tail awareness: a source with three lucky claims
// should not outrank a source with three thousand good ones. The core
// solver passes counts automatically when the configured scheme
// implements this interface.
type CountScheme interface {
	Scheme
	// WeightsWithCounts returns one weight per source given each
	// source's mean normalized loss and its observation count.
	WeightsWithCounts(losses []float64, counts []int) []float64
}

// CATD is the confidence-aware weight scheme of Li et al., "A
// Confidence-Aware Approach for Truth Discovery on Long-Tail Data"
// (VLDB 2015) — reference [23] of the CRH paper and future work it points
// to. Instead of the point estimate 1/Σd (which wildly over-trusts
// sources with few observations), each source's weight is scaled by the
// chi-squared lower quantile of its claim count, the upper bound of the
// (1−α) confidence interval on its error variance:
//
//	w_k = χ²(α/2, n_k) / Σ_e d(v*_e, v_e^k)
//
// With many claims χ²(α/2, n) ≈ n and the weight approaches the plain
// inverse loss; with few claims the quantile collapses toward 0 and the
// source is discounted no matter how lucky its record looks.
type CATD struct {
	// Alpha is the significance level (default 0.05).
	Alpha float64
}

// Name implements Scheme.
func (CATD) Name() string { return "catd" }

// Weights implements Scheme; without counts every source is assumed
// equally observed and CATD degrades to inverse-loss weighting.
func (c CATD) Weights(losses []float64) []float64 {
	counts := make([]int, len(losses))
	for i := range counts {
		counts[i] = 1
	}
	return c.WeightsWithCounts(losses, counts)
}

// WeightsWithCounts implements CountScheme. losses are per-observation
// means (the solver's default normalization), so the total deviation is
// loss·count.
func (c CATD) WeightsWithCounts(losses []float64, counts []int) []float64 {
	alpha := c.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	ws := make([]float64, len(losses))
	_, max := stats.MinMax(losses)
	if max <= 0 {
		for i := range ws {
			ws[i] = 1
		}
		return ws
	}
	for k, l := range losses {
		n := counts[k]
		if n <= 0 {
			ws[k] = 0
			continue
		}
		// Smoothing: one pseudo-observation at the worst per-observation
		// loss. A source with zero observed deviation keeps a finite
		// weight whose size is governed by its claim count (via the
		// χ² numerator) instead of exploding — the long-tail protection
		// the scheme exists for.
		total := l*float64(n) + max
		ws[k] = stats.ChiSquareInv(alpha/2, float64(n)) / total
	}
	// Rescale so the best source has weight comparable to the log
	// schemes (pure scale does not affect the truth updates, but keeps
	// reported weights readable).
	_, wmax := stats.MinMax(ws)
	if wmax > 0 {
		for k := range ws {
			ws[k] /= wmax
		}
	}
	return ws
}
