// Package stats provides the numerical substrate used across the CRH
// framework: means, medians, standard deviations, weighted order statistics,
// correlation, and normalization helpers.
//
// All functions are deterministic, allocate minimally, and treat degenerate
// inputs (empty slices, zero variance, zero total weight) explicitly so that
// callers in the truth-discovery pipeline never observe NaN or Inf unless
// the inputs themselves contain them.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WeightedMean returns the weighted mean of xs with weights ws.
// Panics if the lengths differ. Returns 0 when the total weight is 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return Mean(xs)
	}
	return num / den
}

// Median returns the median of xs (average of the two middle elements for
// even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// WeightedMedian returns the weighted median of xs under weights ws, using
// the definition of Eq(16) in the CRH paper (Cormen et al., Chapter 9): the
// element v such that the total weight of elements strictly below v is less
// than half the total weight, and the total weight of elements strictly
// above v is at most half the total weight.
//
// Non-positive weights are treated as 0. When the total weight is 0 the
// unweighted median is returned. xs and ws are not modified.
func WeightedMedian(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMedian length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	type pair struct{ x, w float64 }
	ps := make([]pair, 0, n)
	var total float64
	for i := range xs {
		w := ws[i]
		if w < 0 {
			w = 0
		}
		ps = append(ps, pair{xs[i], w})
		total += w
	}
	if total == 0 {
		return Median(xs)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	half := total / 2
	// Scan distinct values with prefix sums of weight strictly below and
	// strictly above each candidate; ties pool their weight.
	var below float64
	i := 0
	for i < n {
		j := i
		var tie float64
		//lint:ignore floatcmp Eq 16 pools the weight of identical observed values; approximate ties would merge distinct claims
		for j < n && ps[j].x == ps[i].x {
			tie += ps[j].w
			j++
		}
		above := total - below - tie
		if below < half && above <= half {
			return ps[i].x
		}
		below += tie
		i = j
	}
	// Fallback (should be unreachable): return the largest value.
	return ps[n-1].x
}

// Variance returns the population variance of xs, or 0 for fewer than one
// element.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// SampleStd returns the sample (n-1) standard deviation of xs, or 0 for
// fewer than two elements.
func SampleStd(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// Returns 0 when either series has zero variance or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MinMax returns the minimum and maximum of xs. Returns (0, 0) for an empty
// slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Normalize01 rescales xs affinely into [0, 1] in place and returns xs.
// When all elements are equal they are all mapped to 1 (a constant series
// carries no ordering information; mapping to the top keeps "higher is
// better" interpretations intact for reliability scores).
func Normalize01(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	min, max := MinMax(xs)
	r := max - min
	if r == 0 {
		for i := range xs {
			xs[i] = 1
		}
		return xs
	}
	for i := range xs {
		xs[i] = (xs[i] - min) / r
	}
	return xs
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// ArgMax returns the index of the maximum element of xs, breaking ties in
// favour of the smallest index. Returns -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMin returns the index of the minimum element of xs, breaking ties in
// favour of the smallest index. Returns -1 for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x < xs[best] {
			best = i + 1
		}
	}
	return best
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MAD returns the median absolute deviation from the median — the
// standard robust scale estimate. Multiply by 1.4826 (1/Φ⁻¹(¾)) to make
// it consistent with the standard deviation under normality.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return Median(devs)
}

// Spearman returns the Spearman rank correlation between xs and ys —
// Pearson over average-ranks, robust to the heavy-tailed magnitudes that
// ratio-scale scores (e.g., inverse-loss weights) produce. Returns 0 when
// either ranking is constant or the lengths differ.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) with ties sharing their mean rank.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:ignore floatcmp average ranks share ties only between exactly equal values
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // mean of ranks i+1..j
		for k := i; k < j; k++ {
			r[idx[k]] = avg
		}
		i = j
	}
	return r
}
