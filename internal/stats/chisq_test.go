package stats

import (
	"math"
	"testing"
)

func TestGammaP(t *testing.T) {
	cases := []struct{ a, x, want float64 }{
		// P(1, x) = 1 − e^{−x} (exponential distribution).
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 2, 1 - math.Exp(-2)},
		// P(0.5, x) = erf(sqrt(x)).
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		// Large-x saturation.
		{3, 100, 1},
	}
	for _, c := range cases {
		if got := GammaP(c.a, c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("GammaP(%v,%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
	if got := GammaP(2, 0); got != 0 {
		t.Errorf("GammaP(2,0) = %v", got)
	}
	if got := GammaP(-1, 1); !math.IsNaN(got) {
		t.Errorf("GammaP(-1,1) = %v, want NaN", got)
	}
}

func TestGammaPMonotone(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 50} {
		prev := -1.0
		for x := 0.0; x < 4*a; x += a / 8 {
			p := GammaP(a, x)
			if p < prev-1e-12 {
				t.Fatalf("GammaP(%v,·) not monotone at x=%v", a, x)
			}
			if p < 0 || p > 1 {
				t.Fatalf("GammaP(%v,%v) = %v outside [0,1]", a, x, p)
			}
			prev = p
		}
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard chi-squared tables.
	cases := []struct{ x, df, want float64 }{
		{3.841, 1, 0.95},
		{5.991, 2, 0.95},
		{0.103, 2, 0.05},
		{18.307, 10, 0.95},
		{3.940, 10, 0.05},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.df); math.Abs(got-c.want) > 2e-4 {
			t.Errorf("ChiSquareCDF(%v, df=%v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareInvRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 10, 30, 100} {
		for _, p := range []float64{0.025, 0.05, 0.5, 0.95, 0.975} {
			x := ChiSquareInv(p, df)
			if got := ChiSquareCDF(x, df); math.Abs(got-p) > 1e-9 {
				t.Errorf("CDF(Inv(%v, df=%v)) = %v", p, df, got)
			}
		}
	}
	// Known quantiles.
	if x := ChiSquareInv(0.95, 1); math.Abs(x-3.8415) > 1e-3 {
		t.Errorf("χ²(0.95, 1) = %v, want 3.8415", x)
	}
	if x := ChiSquareInv(0.025, 10); math.Abs(x-3.2470) > 1e-3 {
		t.Errorf("χ²(0.025, 10) = %v, want 3.2470", x)
	}
	// Domain errors.
	for _, bad := range [][2]float64{{0, 5}, {1, 5}, {0.5, 0}, {-0.1, 3}} {
		if !math.IsNaN(ChiSquareInv(bad[0], bad[1])) {
			t.Errorf("ChiSquareInv(%v,%v) should be NaN", bad[0], bad[1])
		}
	}
}

// TestChiSquareQuantileGrowth verifies the property CATD relies on: the
// lower quantile grows roughly linearly with the degrees of freedom, so a
// source with few claims is heavily discounted relative to its claim
// count while a source with many claims is barely discounted.
func TestChiSquareQuantileGrowth(t *testing.T) {
	ratio := func(n float64) float64 { return ChiSquareInv(0.025, n) / n }
	if r3, r1000 := ratio(3), ratio(1000); !(r3 < 0.1) || !(r1000 > 0.9) {
		t.Fatalf("discount ratios: n=3 → %v (want <0.1), n=1000 → %v (want >0.9)", r3, r1000)
	}
	prev := 0.0
	for _, n := range []float64{2, 5, 10, 50, 200, 1000} {
		r := ratio(n)
		if r < prev {
			t.Fatalf("discount ratio not monotone at n=%v", n)
		}
		prev = r
	}
}
