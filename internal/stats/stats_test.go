package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 1}); !almostEq(got, 2) {
		t.Errorf("uniform weighted mean = %v, want 2", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{3, 1}); !almostEq(got, 1.5) {
		t.Errorf("weighted mean = %v, want 1.5", got)
	}
	// Zero total weight falls back to the unweighted mean.
	if got := WeightedMean([]float64{2, 4}, []float64{0, 0}); !almostEq(got, 3) {
		t.Errorf("zero-weight mean = %v, want 3", got)
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEq(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestWeightedMedianBasics(t *testing.T) {
	// Uniform weights reduce to an element of the ordinary median pair.
	if got := WeightedMedian([]float64{1, 2, 3}, []float64{1, 1, 1}); got != 2 {
		t.Errorf("uniform weighted median = %v, want 2", got)
	}
	// A dominant weight pins the median to its element.
	if got := WeightedMedian([]float64{1, 2, 100}, []float64{1, 1, 10}); got != 100 {
		t.Errorf("dominant weighted median = %v, want 100", got)
	}
	// Negative weights are ignored.
	if got := WeightedMedian([]float64{1, 5}, []float64{-3, 1}); got != 5 {
		t.Errorf("negative-weight median = %v, want 5", got)
	}
	// Zero total weight falls back to the ordinary median.
	if got := WeightedMedian([]float64{1, 2, 3}, []float64{0, 0, 0}); got != 2 {
		t.Errorf("zero-weight median = %v, want 2", got)
	}
	// Duplicated values pool their weight.
	if got := WeightedMedian([]float64{1, 1, 9}, []float64{1, 1, 1.5}); got != 1 {
		t.Errorf("tied-value median = %v, want 1", got)
	}
	if got := WeightedMedian(nil, nil); got != 0 {
		t.Errorf("empty weighted median = %v, want 0", got)
	}
}

// TestWeightedMedianInvariant checks the defining property of Eq(16): the
// weight strictly below the result is < half the total, and the weight
// strictly above is ≤ half the total.
func TestWeightedMedianInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		xs := make([]float64, n)
		ws := make([]float64, n)
		var total float64
		for i := range xs {
			xs[i] = float64(rng.Intn(6)) // small domain forces ties
			ws[i] = rng.Float64()
			total += ws[i]
		}
		m := WeightedMedian(xs, ws)
		var below, above float64
		found := false
		for i := range xs {
			switch {
			case xs[i] < m:
				below += ws[i]
			case xs[i] > m:
				above += ws[i]
			default:
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: median %v is not one of the inputs %v", trial, m, xs)
		}
		if !(below < total/2+1e-12) || !(above <= total/2+1e-12) {
			t.Fatalf("trial %d: median %v violates Eq(16): below=%v above=%v total=%v xs=%v ws=%v",
				trial, m, below, above, total, xs, ws)
		}
	}
}

// TestWeightedMedianQuick property-tests that the weighted median minimizes
// the weighted absolute deviation among the observed values.
func TestWeightedMedianQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		xs := make([]float64, len(raw))
		ws := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r % 10)
			ws[i] = float64(r%7) + 0.5
		}
		m := WeightedMedian(xs, ws)
		cost := func(v float64) float64 {
			var c float64
			for i := range xs {
				c += ws[i] * math.Abs(v-xs[i])
			}
			return c
		}
		cm := cost(m)
		for _, v := range xs {
			if cost(v) < cm-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Std(xs); !almostEq(got, 2) {
		t.Errorf("Std = %v, want 2", got)
	}
	if got := Std(nil); got != 0 {
		t.Errorf("Std(nil) = %v, want 0", got)
	}
	if got := SampleStd([]float64{5}); got != 0 {
		t.Errorf("SampleStd(single) = %v, want 0", got)
	}
	if got := SampleStd([]float64{1, 3}); !almostEq(got, math.Sqrt(2)) {
		t.Errorf("SampleStd = %v, want sqrt(2)", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, []float64{2, 4, 6, 8}); !almostEq(got, 1) {
		t.Errorf("perfect positive correlation = %v, want 1", got)
	}
	if got := Pearson(xs, []float64{8, 6, 4, 2}); !almostEq(got, -1) {
		t.Errorf("perfect negative correlation = %v, want -1", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
	if got := Pearson(xs, []float64{1, 2}); got != 0 {
		t.Errorf("length-mismatch correlation = %v, want 0", got)
	}
}

func TestNormalize01(t *testing.T) {
	xs := []float64{2, 4, 6}
	Normalize01(xs)
	want := []float64{0, 0.5, 1}
	for i := range xs {
		if !almostEq(xs[i], want[i]) {
			t.Fatalf("Normalize01 = %v, want %v", xs, want)
		}
	}
	flat := []float64{3, 3}
	Normalize01(flat)
	if flat[0] != 1 || flat[1] != 1 {
		t.Errorf("constant series normalized to %v, want all 1", flat)
	}
	if out := Normalize01(nil); out != nil {
		t.Errorf("Normalize01(nil) = %v", out)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	if got := ArgMax([]float64{1, 3, 3, 2}); got != 1 {
		t.Errorf("ArgMax tie-break = %d, want 1", got)
	}
	if got := ArgMin([]float64{4, 0, 0, 2}); got != 1 {
		t.Errorf("ArgMin tie-break = %d, want 1", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("Arg{Max,Min}(nil) should be -1")
	}
}

func TestMinMaxSumClamp(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if min, max = MinMax(nil); min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = %v,%v", min, max)
	}
	if got := Sum([]float64{1, 2, 3.5}); !almostEq(got, 6.5) {
		t.Errorf("Sum = %v", got)
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-2, 0, 3) != 0 || Clamp(1, 0, 3) != 1 {
		t.Error("Clamp misbehaves")
	}
}

// TestWeightedMedianMatchesBruteForce cross-checks against an O(n²)
// reference that evaluates Eq(16) directly over sorted candidates.
func TestWeightedMedianMatchesBruteForce(t *testing.T) {
	ref := func(xs, ws []float64) float64 {
		var total float64
		for _, w := range ws {
			total += w
		}
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
		for _, i := range idx {
			var below, above float64
			for j := range xs {
				if xs[j] < xs[i] {
					below += ws[j]
				} else if xs[j] > xs[i] {
					above += ws[j]
				}
			}
			if below < total/2 && above <= total/2 {
				return xs[i]
			}
		}
		return xs[idx[len(idx)-1]]
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(9)
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(5))
			ws[i] = 0.1 + rng.Float64()
		}
		got, want := WeightedMedian(xs, ws), ref(xs, ws)
		if got != want {
			t.Fatalf("trial %d: WeightedMedian(%v,%v) = %v, want %v", trial, xs, ws, got, want)
		}
	}
}

func TestMAD(t *testing.T) {
	if got := MAD(nil); got != 0 {
		t.Fatalf("MAD(nil) = %v", got)
	}
	// Symmetric data: MAD = 1 for {1,2,3,4,5} (median 3, devs 2,1,0,1,2).
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Fatalf("MAD = %v, want 1", got)
	}
	// Robustness: one huge outlier barely moves it.
	clean := MAD([]float64{10, 10.5, 11, 9.5, 10.2})
	dirty := MAD([]float64{10, 10.5, 11, 9.5, 10.2, 1e6})
	if dirty > clean*3+1 {
		t.Fatalf("MAD not robust: %v vs %v", dirty, clean)
	}
}

func TestSpearman(t *testing.T) {
	// Any monotone transform gives rank correlation 1 — the property
	// Pearson lacks.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 1000, 1e9} // wildly non-linear but monotone
	if got := Spearman(xs, ys); !almostEq(got, 1) {
		t.Fatalf("monotone Spearman = %v, want 1", got)
	}
	if got := Spearman(xs, []float64{5, 4, 3, 2, 1}); !almostEq(got, -1) {
		t.Fatalf("reversed Spearman = %v, want -1", got)
	}
	if got := Spearman(xs, []float64{2, 2, 2, 2, 2}); got != 0 {
		t.Fatalf("constant Spearman = %v, want 0", got)
	}
	if got := Spearman(xs, []float64{1, 2}); got != 0 {
		t.Fatalf("mismatched lengths = %v", got)
	}
	// Ties share average ranks: {1,1,2} vs {3,3,9} still correlates 1.
	if got := Spearman([]float64{1, 1, 2}, []float64{3, 3, 9}); !almostEq(got, 1) {
		t.Fatalf("tied Spearman = %v, want 1", got)
	}
}

func TestRanks(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
