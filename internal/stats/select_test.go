package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestWeightedMedianFastMatchesReference is the central correctness check:
// quickselect must agree with the sort-based reference on every input,
// including ties, zero weights, and sorted/reversed orders.
func TestWeightedMedianFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(8)) // heavy ties
			ws[i] = rng.Float64()
			if rng.Intn(6) == 0 {
				ws[i] = 0
			}
		}
		switch trial % 4 {
		case 1:
			sort.Float64s(xs)
		case 2:
			sort.Sort(sort.Reverse(sort.Float64Slice(xs)))
		}
		want := WeightedMedian(xs, ws)
		got := WeightedMedianFast(xs, ws)
		if got != want {
			t.Fatalf("trial %d: fast=%v want=%v xs=%v ws=%v", trial, got, want, xs, ws)
		}
	}
}

func TestWeightedMedianFastDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	ws := []float64{1, 2, 3, 4, 5}
	WeightedMedianFast(xs, ws)
	if xs[0] != 5 || ws[0] != 1 || xs[4] != 4 || ws[4] != 5 {
		t.Fatalf("inputs mutated: %v %v", xs, ws)
	}
}

func TestWeightedMedianFastEdgeCases(t *testing.T) {
	if got := WeightedMedianFast(nil, nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := WeightedMedianFast([]float64{7}, []float64{2}); got != 7 {
		t.Fatalf("single = %v", got)
	}
	if got := WeightedMedianFast([]float64{1, 2, 3}, []float64{0, 0, 0}); got != 2 {
		t.Fatalf("all-zero weights = %v", got)
	}
	// All values identical.
	if got := WeightedMedianFast([]float64{4, 4, 4, 4}, []float64{1, 2, 3, 4}); got != 4 {
		t.Fatalf("constant = %v", got)
	}
}

func TestWeightedMedianFastPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedMedianFast([]float64{1}, []float64{1, 2})
}

// TestWeightedMedianFastQuick re-verifies the Eq(16) property directly.
func TestWeightedMedianFastQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		xs := make([]float64, len(raw))
		ws := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			xs[i] = float64(r % 13)
			ws[i] = float64(r%5) + 0.25
			total += ws[i]
		}
		m := WeightedMedianFast(xs, ws)
		var below, above float64
		for i := range xs {
			if xs[i] < m {
				below += ws[i]
			} else if xs[i] > m {
				above += ws[i]
			}
		}
		return below < total/2+1e-12 && above <= total/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWeightedMedianSort(b *testing.B) {
	xs, ws := benchMedianData(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WeightedMedian(xs, ws)
	}
}

func BenchmarkWeightedMedianFast(b *testing.B) {
	xs, ws := benchMedianData(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WeightedMedianFast(xs, ws)
	}
}

func benchMedianData(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	ws := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ws[i] = rng.Float64()
	}
	return xs, ws
}

// TestWeightedMedianBufBitIdentity: the scratch-buffer variant must
// return exactly the bits WeightedMedianFast (and hence WeightedMedian)
// returns — including on the coarse duplicate-heavy inputs that trigger
// the numerical-tie fallback — and must not modify its inputs.
func TestWeightedMedianBufBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(16)
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.NormFloat64() * 3)
			ws[i] = math.Round(rng.Float64()*8) / 4
			if rng.Intn(9) == 0 {
				ws[i] = -ws[i] // negative weights are clamped to zero
			}
		}
		if trial%11 == 0 {
			for i := range ws {
				ws[i] = 0
			}
		}
		origX := append([]float64(nil), xs...)
		origW := append([]float64(nil), ws...)
		want := WeightedMedianFast(xs, ws)
		vbuf := make([]float64, n)
		wbuf := make([]float64, n)
		for i := range vbuf {
			vbuf[i], wbuf[i] = math.NaN(), math.NaN() // scratch contents must not matter
		}
		got := WeightedMedianBuf(xs, ws, vbuf, wbuf)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d: Buf %v, Fast %v (xs=%v ws=%v)", trial, got, want, xs, ws)
		}
		for i := range xs {
			if xs[i] != origX[i] || ws[i] != origW[i] {
				t.Fatalf("trial %d: inputs modified", trial)
			}
		}
	}
}

// TestWeightedMedianBufAllocFree pins the point of the variant: with
// caller scratch the median computation performs zero allocations.
func TestWeightedMedianBufAllocFree(t *testing.T) {
	xs, ws := benchMedianData(64)
	vbuf := make([]float64, len(xs))
	wbuf := make([]float64, len(xs))
	allocs := testing.AllocsPerRun(100, func() {
		WeightedMedianBuf(xs, ws, vbuf, wbuf)
	})
	if allocs != 0 {
		t.Fatalf("WeightedMedianBuf allocates %.0f objects per call, want 0", allocs)
	}
}

func BenchmarkWeightedMedianBuf(b *testing.B) {
	xs, ws := benchMedianData(64)
	vbuf := make([]float64, len(xs))
	wbuf := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WeightedMedianBuf(xs, ws, vbuf, wbuf)
	}
}
