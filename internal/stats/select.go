package stats

// WeightedMedianFast computes the same weighted median as WeightedMedian
// (the Eq(16) element) in expected O(n) time via weighted quickselect,
// instead of O(n log n) sorting. The truth update calls this once per
// continuous entry per iteration, so it is the solver's hottest path on
// continuous-heavy data.
//
// The partition pivot is chosen by median-of-three on values, which keeps
// the expected linear bound on the already-sorted and reverse-sorted
// inputs simulators tend to produce. xs and ws are not modified.
func WeightedMedianFast(xs, ws []float64) float64 {
	n := len(xs)
	if n == 0 {
		if len(ws) != 0 {
			panic("stats: WeightedMedianFast length mismatch")
		}
		return 0
	}
	return WeightedMedianBuf(xs, ws, make([]float64, n), make([]float64, n))
}

// WeightedMedianBuf is WeightedMedianFast with caller-owned scratch:
// vbuf and wbuf (each of length ≥ len(xs)) hold the partitioned working
// copies, so steady-state callers allocate nothing. The arithmetic — and
// therefore every returned bit — is identical to WeightedMedianFast; the
// rare numerical-tie fallback still rescans xs and ws in their original
// order, which is why the inputs are copied rather than permuted in
// place. xs and ws are not modified.
func WeightedMedianBuf(xs, ws, vbuf, wbuf []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMedianBuf length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	vals := vbuf[:n]
	wts := wbuf[:n]
	var total float64
	for i := range xs {
		w := ws[i]
		if w < 0 {
			w = 0
		}
		vals[i] = xs[i]
		wts[i] = w
		total += w
	}
	if total == 0 {
		return Median(xs)
	}
	half := total / 2
	// Invariant: the weighted median of the original input lies in
	// vals[lo:hi]; below/above hold the weight outside that window.
	lo, hi := 0, n
	var below, above float64
	for {
		if hi-lo == 1 {
			return vals[lo]
		}
		if hi-lo <= 3 {
			// Small windows: resolve by direct scan of the remaining
			// candidates using the Eq(16) condition.
			best := vals[lo]
			found := false
			for i := lo; i < hi; i++ {
				v := vals[i]
				b, a := below, above
				for j := lo; j < hi; j++ {
					if vals[j] < v {
						b += wts[j]
					} else if vals[j] > v {
						a += wts[j]
					}
				}
				if b < half && a <= half {
					best = v
					found = true
					break
				}
			}
			if !found {
				// Numerical ties: fall back to the reference scan.
				return WeightedMedian(xs, ws)
			}
			return best
		}

		pivot := medianOfThree(vals[lo], vals[(lo+hi)/2], vals[hi-1])
		// Three-way partition of the window around the pivot value.
		lt, gt := lo, hi
		i := lo
		var wLess, wEq, wMore float64
		for i < gt {
			switch {
			case vals[i] < pivot:
				vals[i], vals[lt] = vals[lt], vals[i]
				wts[i], wts[lt] = wts[lt], wts[i]
				wLess += wts[lt]
				lt++
				i++
			case vals[i] > pivot:
				gt--
				vals[i], vals[gt] = vals[gt], vals[i]
				wts[i], wts[gt] = wts[gt], wts[i]
				wMore += wts[gt]
			default:
				wEq += wts[i]
				i++
			}
		}
		// Decide which side holds the weighted median.
		if below+wLess < half && above+wMore <= half {
			return pivot
		}
		if below+wLess >= half {
			// Median among the smaller values.
			hi = lt
			above += wEq + wMore
		} else {
			// Median among the larger values.
			lo = gt
			below += wLess + wEq
		}
	}
}

func medianOfThree(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
