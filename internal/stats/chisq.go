package stats

import "math"

// This file provides the chi-squared quantile machinery used by the
// confidence-aware (long-tail) weight scheme: the regularized lower
// incomplete gamma function P(a, x) and the inverse CDF of the
// chi-squared distribution. Implementations follow the classic series /
// continued-fraction split (Numerical Recipes §6.2) with a bisection
// fallback for the inverse, which is plenty fast for the small degrees of
// freedom truth discovery encounters.

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x ≥ 0.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// gammaSeries evaluates P(a, x) by its power series, accurate for x < a+1.
func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a, x) = 1 − P(a, x) by Lentz's
// continued fraction, accurate for x ≥ a+1.
func gammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X ≤ x) for X ~ χ²(df).
func ChiSquareCDF(x float64, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(df/2, x/2)
}

// ChiSquareInv returns the p-quantile of the chi-squared distribution
// with df degrees of freedom (the x with P(X ≤ x) = p), by bisection on
// the CDF. p must lie in (0, 1) and df must be positive; out-of-domain
// arguments return NaN.
func ChiSquareInv(p, df float64) float64 {
	if !(p > 0 && p < 1) || df <= 0 {
		return math.NaN()
	}
	// Bracket: the mean is df and the variance 2·df; expand until the
	// CDF straddles p.
	lo, hi := 0.0, df+10*math.Sqrt(2*df)+10
	for ChiSquareCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquareCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
