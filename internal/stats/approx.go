package stats

import "math"

// DefaultEqTol is the tolerance ApproxEq uses: wide enough to absorb
// summation-order rounding between mathematically equivalent but
// differently ordered accumulations (e.g. a permuted dataset, or the
// map-ordered MapReduce shuffle — the solver itself is bit-identical for
// every core.Config.Workers setting), narrow enough that genuinely
// different losses and objectives never compare equal.
const DefaultEqTol = 1e-9

// ApproxEq reports whether a and b are equal within DefaultEqTol. It is
// the repository's sanctioned float comparison — the floatcmp analyzer
// rejects == / != on floats precisely so that convergence checks,
// tie-breaks, and loss comparisons come through here (or through an
// explicit tolerance) instead of depending on exact bit patterns.
func ApproxEq(a, b float64) bool {
	return ApproxEqTol(a, b, DefaultEqTol)
}

// ApproxEqTol reports whether a and b are equal within tol, comparing
// absolutely near zero and relatively elsewhere: |a−b| ≤ tol·max(1, |a|,
// |b|). NaN equals nothing; infinities are equal only to themselves
// (same sign).
func ApproxEqTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.IsInf(a, 1) && math.IsInf(b, 1) || math.IsInf(a, -1) && math.IsInf(b, -1)
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}
