// Package eval implements the paper's performance measures (Section 3.1.1)
// and the ground-truth source-reliability computation used in Figure 1.
//
// All measures are computed only over entries that carry a ground truth;
// ground truths are never visible to the conflict-resolution methods.
package eval

import (
	"math"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// Metrics summarizes a method's output against ground truth.
type Metrics struct {
	// ErrorRate is the fraction of categorical ground-truth entries on
	// which the method's output differs from the truth. NaN when the
	// data has no categorical ground truths.
	ErrorRate float64
	// MNAD is the Mean Normalized Absolute Distance on continuous
	// ground-truth entries: |output − truth| normalized by the entry's
	// observation spread, averaged. NaN when the data has no continuous
	// ground truths.
	MNAD float64

	// CatEntries / CatWrong break down the error rate; ContEntries
	// counts the entries contributing to MNAD. Entries the method left
	// unresolved count as wrong (categorical) or are skipped with
	// Unresolved incremented (continuous). A method that resolves *no*
	// categorical entries at all (e.g., Mean, which handles only
	// continuous data) reports ErrorRate = NaN rather than 1, matching
	// the paper's "NA" cells.
	CatEntries, CatWrong, CatResolved, ContEntries, Unresolved int
}

// Evaluate scores output against the partial ground truth gt on dataset d.
// Continuous distances are normalized by the standard deviation of the
// entry's multi-source observations ("we normalize the distance on each
// entry by its own variance", Section 3.1.1); zero-spread entries use a
// unit normalizer so exact hits still score 0.
func Evaluate(d *data.Dataset, output, gt *data.Table) Metrics {
	var m Metrics
	var nadSum float64
	var vals []float64
	gt.ForEach(func(e int, want data.Value) {
		p := d.Prop(d.EntryProp(e))
		got, ok := output.Get(e)
		if p.Type == data.Categorical {
			m.CatEntries++
			if ok {
				m.CatResolved++
			}
			if !ok || got.C != want.C {
				m.CatWrong++
			}
			if !ok {
				m.Unresolved++
			}
			return
		}
		if !ok {
			m.Unresolved++
			return
		}
		vals = vals[:0]
		d.ForEntry(e, func(_ int, v data.Value) { vals = append(vals, v.F) })
		std := stats.Std(vals)
		if std < 1e-12 {
			std = 1
		}
		nadSum += math.Abs(got.F-want.F) / std
		m.ContEntries++
	})
	if m.CatEntries > 0 && m.CatResolved > 0 {
		m.ErrorRate = float64(m.CatWrong) / float64(m.CatEntries)
	} else {
		m.ErrorRate = math.NaN()
	}
	if m.ContEntries > 0 {
		m.MNAD = nadSum / float64(m.ContEntries)
	} else {
		m.MNAD = math.NaN()
	}
	return m
}

// TrueReliability computes each source's ground-truth reliability degree as
// used for Figure 1: on categorical entries, the probability of a correct
// statement; on continuous entries, a closeness score exp(−NAD) averaged
// over observations (1 for exact agreement, decaying with normalized
// distance). The two are averaged when a source observes both types.
// Returned scores lie in [0, 1].
func TrueReliability(d *data.Dataset, gt *data.Table) []float64 {
	K := d.NumSources()
	catOK := make([]float64, K)
	catN := make([]float64, K)
	contScore := make([]float64, K)
	contN := make([]float64, K)
	var vals []float64
	gt.ForEach(func(e int, want data.Value) {
		p := d.Prop(d.EntryProp(e))
		if p.Type == data.Categorical {
			d.ForEntry(e, func(k int, v data.Value) {
				catN[k]++
				if v.C == want.C {
					catOK[k]++
				}
			})
			return
		}
		vals = vals[:0]
		d.ForEntry(e, func(_ int, v data.Value) { vals = append(vals, v.F) })
		std := stats.Std(vals)
		if std < 1e-12 {
			std = 1
		}
		d.ForEntry(e, func(k int, v data.Value) {
			contN[k]++
			contScore[k] += math.Exp(-math.Abs(v.F-want.F) / std)
		})
	})
	rel := make([]float64, K)
	for k := 0; k < K; k++ {
		var parts, total float64
		if catN[k] > 0 {
			total += catOK[k] / catN[k]
			parts++
		}
		if contN[k] > 0 {
			total += contScore[k] / contN[k]
			parts++
		}
		if parts > 0 {
			rel[k] = total / parts
		}
	}
	return rel
}

// NormalizeScores rescales reliability scores into [0, 1] for cross-method
// comparison (Figure 1 normalizes all methods' scores this way). The input
// is not modified.
func NormalizeScores(scores []float64) []float64 {
	out := append([]float64(nil), scores...)
	return stats.Normalize01(out)
}

// Correlation returns the Pearson correlation between two score vectors —
// used to compare estimated reliability orderings against ground truth.
func Correlation(a, b []float64) float64 { return stats.Pearson(a, b) }

// RankCorrelation returns the Spearman rank correlation between two score
// vectors — the right comparison when one side is ratio-scale (e.g.,
// inverse-loss weights) whose heavy tail would dominate Pearson.
func RankCorrelation(a, b []float64) float64 { return stats.Spearman(a, b) }
