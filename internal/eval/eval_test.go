package eval

import (
	"math"
	"testing"

	"github.com/crhkit/crh/internal/data"
)

// fixture: 2 sources, 2 objects, temp (continuous) + cond (categorical).
func fixture(t *testing.T) (*data.Dataset, *data.Table) {
	t.Helper()
	b := data.NewBuilder()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.ObserveFloat("s1", "o1", "temp", 10))
	must(b.ObserveFloat("s2", "o1", "temp", 14)) // std = 2
	must(b.ObserveCat("s1", "o1", "cond", "x"))
	must(b.ObserveCat("s2", "o1", "cond", "y"))
	must(b.ObserveFloat("s1", "o2", "temp", 20))
	must(b.ObserveFloat("s2", "o2", "temp", 20)) // std = 0
	must(b.ObserveCat("s1", "o2", "cond", "z"))
	must(b.ObserveCat("s2", "o2", "cond", "z"))
	d := b.Build()
	gt := data.NewTableFor(d)
	xID, _ := d.Prop(1).CatID("x")
	zID, _ := d.Prop(1).CatID("z")
	gt.SetAt(0, 0, data.Float(12))
	gt.SetAt(0, 1, data.Cat(xID))
	gt.SetAt(1, 0, data.Float(20))
	gt.SetAt(1, 1, data.Cat(zID))
	return d, gt
}

func TestEvaluatePerfectOutput(t *testing.T) {
	d, gt := fixture(t)
	m := Evaluate(d, gt.Clone(), gt)
	if m.ErrorRate != 0 {
		t.Fatalf("ErrorRate = %v, want 0", m.ErrorRate)
	}
	if m.MNAD != 0 {
		t.Fatalf("MNAD = %v, want 0", m.MNAD)
	}
	if m.CatEntries != 2 || m.ContEntries != 2 || m.Unresolved != 0 {
		t.Fatalf("counts: %+v", m)
	}
}

func TestEvaluateErrors(t *testing.T) {
	d, gt := fixture(t)
	out := data.NewTableFor(d)
	yID, _ := d.Prop(1).CatID("y")
	zID, _ := d.Prop(1).CatID("z")
	out.SetAt(0, 0, data.Float(14)) // off by 2, entry std 2 → NAD 1
	out.SetAt(0, 1, data.Cat(yID))  // wrong
	out.SetAt(1, 0, data.Float(21)) // off by 1, zero-spread entry → unit normalizer
	out.SetAt(1, 1, data.Cat(zID))  // right
	m := Evaluate(d, out, gt)
	if m.ErrorRate != 0.5 {
		t.Fatalf("ErrorRate = %v, want 0.5", m.ErrorRate)
	}
	if math.Abs(m.MNAD-1) > 1e-9 { // (1 + 1)/2
		t.Fatalf("MNAD = %v, want 1", m.MNAD)
	}
}

func TestEvaluateUnresolved(t *testing.T) {
	d, gt := fixture(t)
	out := data.NewTableFor(d) // resolves nothing
	m := Evaluate(d, out, gt)
	// A method that resolves no categorical entries at all is "NA".
	if !math.IsNaN(m.ErrorRate) {
		t.Fatalf("ErrorRate = %v, want NaN", m.ErrorRate)
	}
	// Unresolved continuous entries are skipped: MNAD undefined.
	if !math.IsNaN(m.MNAD) {
		t.Fatalf("MNAD = %v, want NaN", m.MNAD)
	}
	if m.Unresolved != 4 {
		t.Fatalf("Unresolved = %d, want 4", m.Unresolved)
	}
}

func TestEvaluateSingleTypeNaN(t *testing.T) {
	b := data.NewBuilder()
	if err := b.ObserveFloat("s", "o", "x", 1); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	gt := data.NewTableFor(d)
	gt.SetAt(0, 0, data.Float(1))
	out := gt.Clone()
	m := Evaluate(d, out, gt)
	if !math.IsNaN(m.ErrorRate) {
		t.Fatal("ErrorRate should be NaN with no categorical truths")
	}
	if m.MNAD != 0 {
		t.Fatal("MNAD should be 0")
	}
}

func TestTrueReliability(t *testing.T) {
	d, gt := fixture(t)
	rel := TrueReliability(d, gt)
	if len(rel) != 2 {
		t.Fatal("length")
	}
	// s1: cond correct on both entries; temp off by 2 (NAD 1) and exact.
	// s2: cond wrong on o1; temp off by 2 and exact. So s1 > s2.
	if !(rel[0] > rel[1]) {
		t.Fatalf("rel = %v, want s1 > s2", rel)
	}
	for _, r := range rel {
		if r < 0 || r > 1 {
			t.Fatalf("reliability %v out of [0,1]", r)
		}
	}
}

func TestTrueReliabilityPerfectSource(t *testing.T) {
	b := data.NewBuilder()
	b.ObserveCat("perfect", "o", "c", "v")
	b.ObserveCat("wrong", "o", "c", "w")
	d := b.Build()
	gt := data.NewTableFor(d)
	vID, _ := d.Prop(0).CatID("v")
	gt.SetAt(0, 0, data.Cat(vID))
	rel := TrueReliability(d, gt)
	if rel[0] != 1 || rel[1] != 0 {
		t.Fatalf("rel = %v, want [1 0]", rel)
	}
}

func TestNormalizeScores(t *testing.T) {
	in := []float64{2, 4, 6}
	out := NormalizeScores(in)
	if in[0] != 2 {
		t.Fatal("input mutated")
	}
	if out[0] != 0 || out[1] != 0.5 || out[2] != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestCorrelation(t *testing.T) {
	if c := Correlation([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("corr = %v", c)
	}
}
