package core

import (
	"math"
	"time"

	"github.com/crhkit/crh/internal/col"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/obs"
	"github.com/crhkit/crh/internal/stats"
)

// Prepared is a dataset frozen for solving: the columnar claim index
// (internal/col) plus the per-entry statistics every run needs but no
// run mutates. Preparing costs one scan of the dataset; once built, a
// Prepared is immutable and safe for any number of concurrent Run /
// AggregateTruths / SourceLosses calls. Callers that solve the same
// dataset repeatedly — the resolve server's snapshots, the streaming
// processor's warm chunks, benchmark sweeps — should Prepare once and
// reuse it; the package-level Run freezes on every call.
type Prepared struct {
	d    *data.Dataset
	cols *col.Columns
	// props caches the property descriptors in index order so hot loops
	// resolve them without re-deriving from the dataset.
	props []*data.Property
	// entryStd caches each continuous entry's observation spread for
	// loss normalization (Eq 13/15). Zero for categorical entries.
	entryStd []float64
}

// Prepare freezes d's columnar view and per-entry statistics. The
// dataset must not be mutated afterwards (datasets built by
// data.Builder are immutable already).
func Prepare(d *data.Dataset) *Prepared {
	c := col.Freeze(d)
	p := &Prepared{
		d:        d,
		cols:     c,
		props:    make([]*data.Property, d.NumProps()),
		entryStd: make([]float64, d.NumEntries()),
	}
	for m := range p.props {
		p.props[m] = d.Prop(m)
	}
	for e := 0; e < d.NumEntries(); e++ {
		// Entries are gathered in the same (source-ascending) order the
		// row-major solver used, so the computed spreads are bit-identical.
		if c.PropKind[c.EntryProp(e)] == data.Continuous {
			p.entryStd[e] = stats.Std(c.Floats(e))
		}
	}
	return p
}

// Dataset returns the dataset this Prepared was frozen from.
func (p *Prepared) Dataset() *data.Dataset { return p.d }

// Run executes CRH over the prepared dataset. See the package-level Run
// for the semantics; this variant skips the per-call freeze.
func (p *Prepared) Run(cfg Config) (*Result, error) {
	if p.d.NumSources() == 0 || p.d.NumEntries() == 0 {
		return nil, ErrEmptyDataset
	}
	cfg = cfg.withDefaults()
	if cfg.PropertyGroups != nil {
		if err := validateGroups(cfg.PropertyGroups, p.d.NumProps()); err != nil {
			return nil, err
		}
	}
	s := newSolver(p, cfg)

	// Initialization: either the caller's truths or one truth update
	// under uniform weights — the Voting/Averaging start the paper
	// recommends (Section 2.5, "Initialization").
	if cfg.InitTruths != nil {
		s.truths = cfg.InitTruths.Clone()
		s.pinKnown()
	} else {
		s.setUniformWeights()
		s.updateTruths(false)
	}

	// The per-iteration appends stay within these capacities, so the
	// iteration loop itself performs no allocations.
	res := &Result{
		Objective: make([]float64, 0, cfg.MaxIters),
		IterTime:  make([]time.Duration, 0, cfg.MaxIters),
	}
	tracing := cfg.Trace != nil
	prevObj := math.Inf(1)
	for it := 0; it < cfg.MaxIters; it++ {
		t0 := time.Now()
		s.updateWeights()
		weightWorkers := s.lastWorkers
		tW := time.Now()
		changes := s.updateTruths(tracing)
		truthWorkers := s.lastWorkers
		tT := time.Now()
		obj := s.objective()
		tO := time.Now()
		res.Objective = append(res.Objective, obj)
		res.IterTime = append(res.IterTime, tO.Sub(t0))
		res.Iterations = it + 1
		if !math.IsInf(prevObj, 1) {
			denom := math.Abs(prevObj)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if (prevObj-obj)/denom < cfg.Tol {
				res.Converged = true
			}
		}
		prevObj = obj
		if tracing {
			cfg.Trace.TraceIteration(obs.IterationTrace{
				Iteration:      it + 1,
				Objective:      obj,
				WeightPhase:    tW.Sub(t0),
				TruthPhase:     tT.Sub(tW),
				ObjectivePhase: tO.Sub(tT),
				TruthChanges:   changes,
				WeightWorkers:  weightWorkers,
				TruthWorkers:   truthWorkers,
				Weights:        obs.SummarizeWeights(s.weights[0]),
				Converged:      res.Converged,
			})
		}
		if res.Converged {
			break
		}
	}
	res.Truths = s.truths
	res.Weights = s.weights[0]
	if cfg.PropertyGroups != nil {
		res.GroupWeights = s.weights
	}
	if cfg.ComputeConfidence {
		res.Confidence = s.confidence()
	}
	return res, nil
}

// AggregateTruths performs a single truth-update pass (Step II) under
// fixed source weights. See the package-level AggregateTruths; this
// variant reuses the frozen columns, which is what makes the streaming
// processor's warm path cheap.
func (p *Prepared) AggregateTruths(weights []float64, cfg Config) *data.Table {
	cfg = cfg.withDefaults()
	cfg.PropertyGroups = nil // single-group helper
	s := newSolver(p, cfg)
	copy(s.weights[0], weights)
	s.updateTruths(false)
	return s.truths
}

// SourceLosses computes each source's aggregated, normalized loss
// against the given truths. See the package-level SourceLosses; this
// variant reuses the frozen columns.
func (p *Prepared) SourceLosses(truths *data.Table, weights []float64, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	cfg.PropertyGroups = nil // single-group helper
	s := newSolver(p, cfg)
	copy(s.weights[0], weights)
	s.truths = truths
	// Rebuild distributions for probabilistic categorical losses so
	// Deviation sees them; hard losses leave nil distributions.
	c := p.cols
	for e := 0; e < c.NumEntries(); e++ {
		m := c.EntryProp(e)
		if c.PropKind[m] != data.Categorical || !truths.Has(e) {
			continue
		}
		codes := c.Codes(e)
		if len(codes) == 0 {
			continue
		}
		ws := s.gatherWeights(s.seq, e, m)
		if s.catKernel != nil {
			var dist []float64
			if s.needDist {
				dist = s.dists[e]
			}
			s.catKernel.TruthCodes(codes, ws, s.seq.votes, dist, p.props[m])
		} else {
			cats := s.seq.cats[:len(codes)]
			for j, code := range codes {
				cats[j] = int(code)
			}
			_, dist := cfg.CategoricalLoss.Truth(cats, ws, p.props[m])
			s.dists[e] = dist
		}
	}
	losses, _ := s.sourceLosses()
	return losses[0]
}
