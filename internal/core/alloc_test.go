package core

import (
	"math"
	"testing"

	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// The columnar solver's allocation contract: every buffer an iteration
// touches is allocated during setup, so once the loop is running,
// additional iterations allocate nothing. The pin measures whole runs at
// two iteration budgets — any per-iteration allocation would make the
// longer run's total strictly larger.

// iterAllocDelta returns the allocations one extra solver iteration
// costs under cfg: the difference between a long and a short run,
// normalized per added iteration. Tol is forced to -Inf so neither run
// converges early and the iteration counts are exact.
func iterAllocDelta(t *testing.T, p *Prepared, cfg Config, short, long int) float64 {
	t.Helper()
	runAllocs := func(iters int) float64 {
		c := cfg
		c.MaxIters = iters
		c.Tol = math.Inf(-1)
		c.Workers = 1
		// 20 samples: AllocsPerRun floors its average, so small sample
		// counts can turn setup-allocation jitter into a spurious ±1.
		return testing.AllocsPerRun(20, func() {
			res, err := p.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations != iters {
				t.Fatalf("ran %d iterations, want %d", res.Iterations, iters)
			}
		})
	}
	return (runAllocs(long) - runAllocs(short)) / float64(long-short)
}

// TestSolverIterationAllocFree pins zero steady-state allocations per
// solver iteration for the default configuration (absolute/0-1 losses,
// exp-max weights) on mixed data: the kernel interfaces and the
// solver-owned scratch must keep the whole weight/truth/objective cycle
// off the heap.
func TestSolverIterationAllocFree(t *testing.T) {
	d := synthesize(equivCase{"mixed", 2, 2, 10, 200, 0.25}, 42)
	p := Prepare(d)
	if delta := iterAllocDelta(t, p, Config{}, 4, 24); delta != 0 {
		t.Fatalf("default config allocates %.2f objects per iteration, want 0", delta)
	}
}

// TestSolverIterationAllocFreeProbabilistic pins the same contract on
// the probabilistic categorical path (squared-prob distributions in the
// per-entry arena) with the exp-sum scheme.
func TestSolverIterationAllocFreeProbabilistic(t *testing.T) {
	d := synthesize(equivCase{"mixed", 2, 2, 10, 200, 0.25}, 43)
	p := Prepare(d)
	cfg := Config{
		ContinuousLoss:  loss.NormalizedSquared{},
		CategoricalLoss: loss.SquaredProb{},
		Scheme:          reg.ExpSum{},
	}
	if delta := iterAllocDelta(t, p, cfg, 4, 24); delta != 0 {
		t.Fatalf("squared-prob config allocates %.2f objects per iteration, want 0", delta)
	}
}

// TestSolverRunReusesPrepared pins the flip side: a whole Run on a
// Prepared must stay within a fixed allocation budget that does not
// scale with the dataset's claim count — the freeze, not the run, owns
// the data-sized buffers. The budget is generous (setup still allocates
// weights, partials, scratch) but catches any per-entry allocation
// sneaking back into the iteration loop.
func TestSolverRunReusesPrepared(t *testing.T) {
	small := Prepare(synthesize(equivCase{"mixed", 2, 2, 8, 100, 0.2}, 44))
	big := Prepare(synthesize(equivCase{"mixed", 2, 2, 8, 1600, 0.2}, 44))
	cfg := Config{MaxIters: 6, Tol: math.Inf(-1), Workers: 1}
	measure := func(p *Prepared) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := p.Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := measure(small), measure(big)
	// 16× the entries must not mean 16× the allocations: allow the dist
	// table header and truth table growth, nothing per-claim.
	if b > a*4 {
		t.Fatalf("run allocations scale with dataset size: %0.f (small) vs %.0f (16x entries)", a, b)
	}
}
