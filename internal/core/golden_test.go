package core

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// The golden suite pins the solver against the exact outputs of the
// pre-columnar (PR ≤ 9) implementation: every truth, weight, objective
// and confidence value is stored as its Float64bits and compared
// bit-for-bit. Unlike the self-consistency equivalence grid — which
// only proves every worker budget agrees with the sequential run — the
// goldens prove the rewritten solver agrees with the solver that
// produced them. Regenerating them (-update-golden) is a semantic
// change and needs the same scrutiny as editing an algorithm.

var updateGolden = flag.Bool("update-golden", false, "rewrite the solver golden files from the current implementation")

// goldenCase is one (dataset, config) cell of the pinned grid. Datasets
// come from the equivalence grid's synthesize so the goldens and the
// worker-equivalence suite exercise the same data shapes.
type goldenCase struct {
	name string
	data equivCase
	seed int64
	cfg  func(d *data.Dataset) Config
}

func goldenGrid() []goldenCase {
	return []goldenCase{
		{
			name: "mixed-default",
			data: equivCase{"mixed", 2, 2, 12, 250, 0.3},
			seed: 101,
			cfg:  func(*data.Dataset) Config { return Config{} },
		},
		{
			name: "continuous-default",
			data: equivCase{"continuous", 3, 0, 10, 200, 0.2},
			seed: 102,
			cfg:  func(*data.Dataset) Config { return Config{} },
		},
		{
			name: "categorical-default",
			data: equivCase{"categorical", 0, 3, 8, 200, 0.2},
			seed: 103,
			cfg:  func(*data.Dataset) Config { return Config{} },
		},
		{
			name: "mixed-squaredprob-expsum",
			data: equivCase{"mixed", 2, 2, 12, 250, 0.3},
			seed: 101,
			cfg: func(*data.Dataset) Config {
				return Config{
					ContinuousLoss:  loss.NormalizedSquared{},
					CategoricalLoss: loss.SquaredProb{},
					Scheme:          reg.ExpSum{},
				}
			},
		},
		{
			name: "mixed-catd-confidence",
			data: equivCase{"mixed", 2, 2, 12, 250, 0.3},
			seed: 101,
			cfg: func(*data.Dataset) Config {
				return Config{Scheme: reg.CATD{}, ComputeConfidence: true}
			},
		},
		{
			name: "mixed-groups",
			data: equivCase{"mixed", 2, 2, 12, 250, 0.3},
			seed: 101,
			cfg: func(*data.Dataset) Config {
				return Config{PropertyGroups: [][]int{{0, 2}, {1, 3}}}
			},
		},
		{
			name: "mixed-known-truths",
			data: equivCase{"mixed", 2, 2, 9, 200, 0.25},
			seed: 104,
			cfg: func(d *data.Dataset) Config {
				known := data.NewTableFor(d)
				for e := 0; e < d.NumEntries(); e += 17 {
					if d.Prop(d.EntryProp(e)).Type == data.Categorical {
						known.Set(e, data.Cat(1))
					} else {
						known.Set(e, data.Float(42))
					}
				}
				return Config{KnownTruths: known}
			},
		},
		{
			name: "mixed-editdist-huber",
			data: equivCase{"mixed", 1, 1, 8, 150, 0.3},
			seed: 105,
			cfg: func(*data.Dataset) Config {
				return Config{
					ContinuousLoss:  loss.Huber{},
					CategoricalLoss: loss.EditDistance{},
				}
			},
		},
	}
}

// dumpResult renders a Result into the canonical golden text: one line
// per pinned quantity, floats as 0x%016x Float64bits. The dump is the
// unit of comparison — the golden test is a byte equality check.
func dumpResult(d *data.Dataset, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "iterations %d\n", res.Iterations)
	fmt.Fprintf(&b, "converged %t\n", res.Converged)
	for i, o := range res.Objective {
		fmt.Fprintf(&b, "objective %d 0x%016x\n", i, math.Float64bits(o))
	}
	for k, w := range res.Weights {
		fmt.Fprintf(&b, "weight %d 0x%016x\n", k, math.Float64bits(w))
	}
	for g := range res.GroupWeights {
		for k, w := range res.GroupWeights[g] {
			fmt.Fprintf(&b, "gweight %d %d 0x%016x\n", g, k, math.Float64bits(w))
		}
	}
	for e := 0; e < d.NumEntries(); e++ {
		v, ok := res.Truths.Get(e)
		if !ok {
			continue
		}
		if d.Prop(d.EntryProp(e)).Type == data.Categorical {
			fmt.Fprintf(&b, "truth %d cat %d\n", e, v.C)
		} else {
			fmt.Fprintf(&b, "truth %d cont 0x%016x\n", e, math.Float64bits(v.F))
		}
	}
	for e, c := range res.Confidence {
		fmt.Fprintf(&b, "conf %d 0x%016x\n", e, math.Float64bits(c))
	}
	return b.String()
}

// diffLine locates the first differing line between two dumps for a
// readable failure message.
func diffLine(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d: want %q, got %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(wl), len(gl))
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

// TestGoldenBitIdentity runs every grid cell at several worker budgets
// and requires the dump to match the committed golden byte for byte.
func TestGoldenBitIdentity(t *testing.T) {
	for _, gc := range goldenGrid() {
		t.Run(gc.name, func(t *testing.T) {
			d := synthesize(gc.data, gc.seed)
			cfg := gc.cfg(d)
			cfg.Workers = 1
			res, err := Run(d, cfg)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			dump := dumpResult(d, res)
			path := goldenPath(gc.name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(dump))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-golden only if the change is intentional): %v", err)
			}
			if string(want) != dump {
				t.Fatalf("sequential output diverged from committed golden: %s", diffLine(string(want), dump))
			}
			// The committed golden also pins every parallel budget: the
			// worker grid must reproduce the same bytes.
			for _, w := range []int{2, 8} {
				pcfg := gc.cfg(d)
				pcfg.Workers = w
				pres, err := Run(d, pcfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if pd := dumpResult(d, pres); pd != dump {
					t.Fatalf("workers=%d diverged from golden: %s", w, diffLine(dump, pd))
				}
			}
		})
	}
}
