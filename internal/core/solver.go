package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/crhkit/crh/internal/col"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// solver carries the mutable state of one run over a frozen Prepared.
// Every buffer the iteration loop touches is allocated here, once: with
// the default losses and scheme (which implement the kernel interfaces)
// steady-state iterations perform zero allocations — a contract pinned
// by TestSolverIterationAllocFree.
type solver struct {
	prep *Prepared
	cols *col.Columns
	cfg  Config

	workers int
	pool    *Pool
	// scratches recycles per-goroutine gather buffers across parallel
	// regions; the sequential path uses the solver-owned seq scratch,
	// which — unlike a sync.Pool entry — cannot be reclaimed by the GC
	// mid-run, keeping the Workers=1 path deterministic in allocation
	// behaviour too.
	scratches sync.Pool
	seq       *scratch
	// lastWorkers records the worker budget engaged by the most recent
	// parallel region — the per-phase count the solver trace reports.
	lastWorkers int

	truths *data.Table
	// weights[g][k] is source k's weight for property group g; the
	// default configuration has a single group. With an in-place scheme
	// the buffers are reused across iterations.
	weights [][]float64
	// groupOf[m] is property m's group index.
	groupOf []int

	// Kernel fast paths, detected once per run. Nil fields fall back to
	// the allocating interface methods (bit-identically).
	contKernel  loss.ContinuousKernel
	catKernel   loss.CategoricalKernel
	inPlace     reg.InPlaceScheme
	countScheme reg.CountScheme

	// dists[e] is the per-entry category distribution for probabilistic
	// categorical losses (nil entries for hard losses / continuous /
	// pinned truths). With a kernel the views index one contiguous
	// arena; the fallback path stores whatever slice Truth returns.
	needDist  bool
	dists     [][]float64
	distArena []float64

	// Step I state, allocated on first use (truth-only passes never
	// need it): per-shard partial loss matrices and their merged totals,
	// flattened to [k*M+m]. partSum/partCnt hold nsh consecutive K·M
	// regions so each shard accumulates into its own slot and the merge
	// can walk them in ascending shard order.
	nsh     int
	partSum []float64
	partCnt []int32
	sumKM   []float64
	cntKM   []int32
	avgBuf  []float64
	// groupLosses/groupCounts are the per-group outputs of sourceLosses,
	// reused across iterations.
	groupLosses [][]float64
	groupCounts [][]int
	// allProps is the identity property list, the default group.
	allProps []int
}

// scratch holds one worker's reusable per-entry buffers: gathered
// weights, fallback value copies, median quickselect space, and the
// categorical vote tally. All are sized once from the frozen columns'
// maxima (MaxObs, MaxCats), so per-entry slicing never reallocates.
type scratch struct {
	ws, vals, vbuf, wbuf, votes []float64
	cats                        []int
}

func (s *solver) newScratch() *scratch {
	mo, mc := s.cols.MaxObs, s.cols.MaxCats
	return &scratch{
		ws:    make([]float64, mo),
		vals:  make([]float64, mo),
		vbuf:  make([]float64, mo),
		wbuf:  make([]float64, mo),
		votes: make([]float64, mc),
		cats:  make([]int, mo),
	}
}

func newSolver(p *Prepared, cfg Config) *solver {
	c := p.cols
	K, M := c.Sources, c.Props
	nEntries := c.NumEntries()
	s := &solver{
		prep:    p,
		cols:    c,
		cfg:     cfg,
		workers: cfg.Workers,
		pool:    cfg.Pool,
		truths:  data.NewTableFor(p.d),
		groupOf: make([]int, M),
		dists:   make([][]float64, nEntries),
		nsh:     numShards(nEntries),
	}
	if s.workers == 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	s.contKernel, _ = cfg.ContinuousLoss.(loss.ContinuousKernel)
	s.catKernel, _ = cfg.CategoricalLoss.(loss.CategoricalKernel)
	s.inPlace, _ = cfg.Scheme.(reg.InPlaceScheme)
	s.countScheme, _ = cfg.Scheme.(reg.CountScheme)
	if s.catKernel != nil && s.catKernel.NeedsDist() {
		// One contiguous arena holds every categorical entry's
		// distribution; the kernel overwrites its view in place each
		// iteration instead of allocating a fresh slice per entry.
		s.needDist = true
		var total int
		for m := 0; m < M; m++ {
			if c.PropKind[m] == data.Categorical {
				total += c.NumCats[m] * c.Objects
			}
		}
		s.distArena = make([]float64, total)
		off := 0
		for e := 0; e < nEntries; e++ {
			m := c.EntryProp(e)
			if c.PropKind[m] == data.Categorical {
				nc := c.NumCats[m]
				s.dists[e] = s.distArena[off : off+nc : off+nc]
				off += nc
			}
		}
	}
	nGroups := 1
	if cfg.PropertyGroups != nil {
		nGroups = len(cfg.PropertyGroups)
		for gi, g := range cfg.PropertyGroups {
			for _, m := range g {
				s.groupOf[m] = gi
			}
		}
	}
	s.weights = make([][]float64, nGroups)
	s.groupLosses = make([][]float64, nGroups)
	s.groupCounts = make([][]int, nGroups)
	for g := range s.weights {
		s.weights[g] = make([]float64, K)
		s.groupLosses[g] = make([]float64, K)
		s.groupCounts[g] = make([]int, K)
	}
	s.allProps = make([]int, M)
	for m := range s.allProps {
		s.allProps[m] = m
	}
	s.scratches.New = func() any { return s.newScratch() }
	s.seq = s.newScratch()
	return s
}

// ensureLossBufs allocates the Step I accumulation buffers on first use;
// truth-only passes (AggregateTruths) never pay for them.
func (s *solver) ensureLossBufs() {
	if s.sumKM != nil {
		return
	}
	KM := s.cols.Sources * s.cols.Props
	s.partSum = make([]float64, s.nsh*KM)
	s.partCnt = make([]int32, s.nsh*KM)
	s.sumKM = make([]float64, KM)
	s.cntKM = make([]int32, KM)
	s.avgBuf = make([]float64, KM)
}

// setUniformWeights resets every (group, source) weight to 1.
func (s *solver) setUniformWeights() {
	for g := range s.weights {
		for k := range s.weights[g] {
			s.weights[g][k] = 1
		}
	}
}

// pinKnown overwrites entries whose truths are supplied (semi-supervised
// operation). Pinned entries still contribute to source losses.
func (s *solver) pinKnown() {
	if s.cfg.KnownTruths == nil {
		return
	}
	s.cfg.KnownTruths.ForEach(func(e int, v data.Value) {
		s.truths.Set(e, v)
		// Hard truths have no soft distribution; probabilistic losses
		// degrade to 0-1 behaviour on pinned entries.
		s.dists[e] = nil
	})
}

// effectiveWorkers returns the worker budget actually engaged for this
// dataset: the configured budget clamped to the shard count (extra
// workers would have nothing to claim).
func (s *solver) effectiveWorkers() int {
	w := s.workers
	if w > s.nsh {
		w = s.nsh
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forShards runs fn once per shard of the entry range, in parallel up to
// the solver's worker budget. Shard boundaries depend only on the entry
// count (see numShards), and fn receives the shard index so per-shard
// partial results can be merged in shard order afterwards — the two
// properties that make every worker count produce bit-identical output.
// Shards are claimed dynamically (work stealing) which is safe precisely
// because the merge happens by shard index, not by completion order.
func (s *solver) forShards(fn func(sc *scratch, sh, lo, hi int)) {
	n := s.cols.NumEntries()
	nsh := s.nsh
	w := s.effectiveWorkers()
	s.lastWorkers = w
	if w <= 1 {
		for sh := 0; sh < nsh; sh++ {
			lo, hi := shardBounds(n, sh, nsh)
			fn(s.seq, sh, lo, hi)
		}
		return
	}
	task := func(sh int) {
		sc := s.scratches.Get().(*scratch)
		lo, hi := shardBounds(n, sh, nsh)
		fn(sc, sh, lo, hi)
		s.scratches.Put(sc)
	}
	if s.pool != nil {
		s.pool.Do(nsh, w, task)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sh := int(next.Add(1) - 1)
				if sh >= nsh {
					return
				}
				task(sh)
			}
		}()
	}
	wg.Wait()
}

// gatherWeights fills sc.ws with the current weight of each source
// observing entry e (property m), in the claim order of the frozen
// columns. Runs once per entry per pass against preallocated scratch.
//
//crh:hotpath
func (s *solver) gatherWeights(sc *scratch, e, m int) []float64 {
	srcs := s.cols.SrcsOf(e)
	gw := s.weights[s.groupOf[m]]
	ws := sc.ws[:len(srcs)]
	for j, k := range srcs {
		ws[j] = gw[k]
	}
	return ws
}

// updateTruths performs Step II: per-entry argmin under current weights,
// parallelized across entries (each entry's truth is independent).
// Entries pinned by KnownTruths are left untouched.
//
// When countChanges is set (only while a Trace is installed) it returns
// the number of entries whose truth estimate moved this pass; otherwise
// it returns 0 without comparing, keeping the untraced path free of the
// extra table reads.
func (s *solver) updateTruths(countChanges bool) int {
	var perShard []int
	if countChanges {
		perShard = make([]int, s.nsh)
	}
	// The sequential path dispatches shards directly instead of through
	// forShards: a closure argument would escape to the heap and cost
	// one allocation per iteration, breaking the zero-steady-state pin.
	if s.effectiveWorkers() <= 1 {
		s.lastWorkers = 1
		n := s.cols.NumEntries()
		for sh := 0; sh < s.nsh; sh++ {
			lo, hi := shardBounds(n, sh, s.nsh)
			s.truthShard(s.seq, sh, lo, hi, countChanges, perShard)
		}
	} else {
		s.forShards(func(sc *scratch, sh, lo, hi int) {
			s.truthShard(sc, sh, lo, hi, countChanges, perShard)
		})
	}
	var changes int
	for _, n := range perShard {
		changes += n
	}
	return changes
}

// truthShard resolves entries [lo, hi) — one shard of a Step II pass.
//
//crh:hotpath
func (s *solver) truthShard(sc *scratch, sh, lo, hi int, countChanges bool, perShard []int) {
	c := s.cols
	for e := lo; e < hi; e++ {
		if s.cfg.KnownTruths != nil && s.cfg.KnownTruths.Has(e) {
			v, _ := s.cfg.KnownTruths.Get(e)
			s.truths.Set(e, v)
			s.dists[e] = nil
			continue
		}
		nv, ok := s.resolveEntry(sc, e)
		if !ok {
			continue
		}
		if countChanges {
			t := c.PropKind[c.EntryProp(e)]
			if old, ok := s.truths.Get(e); !ok || truthChanged(t, old, nv) {
				perShard[sh]++
			}
		}
		s.truths.Set(e, nv)
	}
}

// resolveEntry performs the Step II argmin for one unpinned entry: read
// its claims straight from the frozen columns, gather the observers'
// weights, and let the configured loss pick the minimizing estimate
// (Eq 7/9). ok is false when nobody observed the entry. This is the
// truth-update inner loop — it runs once per entry per iteration, and
// //crh:hotpath holds it and everything it calls to zero steady-state
// allocations on the kernel paths.
//
//crh:hotpath
func (s *solver) resolveEntry(sc *scratch, e int) (data.Value, bool) {
	c := s.cols
	m := c.EntryProp(e)
	if c.PropKind[m] == data.Categorical {
		codes := c.Codes(e)
		if len(codes) == 0 {
			return data.Value{}, false
		}
		ws := s.gatherWeights(sc, e, m)
		if s.catKernel != nil {
			var dist []float64
			if s.needDist {
				dist = s.dists[e]
			}
			return data.Cat(s.catKernel.TruthCodes(codes, ws, sc.votes, dist, s.prep.props[m])), true
		}
		cats := sc.cats[:len(codes)]
		for j, code := range codes {
			cats[j] = int(code)
		}
		t, dist := s.cfg.CategoricalLoss.Truth(cats, ws, s.prep.props[m])
		s.dists[e] = dist
		return data.Cat(t), true
	}
	vals := c.Floats(e)
	if len(vals) == 0 {
		return data.Value{}, false
	}
	ws := s.gatherWeights(sc, e, m)
	if s.contKernel != nil {
		return data.Float(s.contKernel.TruthBuf(vals, ws, sc.vbuf, sc.wbuf)), true
	}
	// Fallback losses get a scratch copy: the frozen columns are shared
	// state and must not reach code that might scribble on its input.
	vcopy := sc.vals[:len(vals)]
	copy(vcopy, vals)
	return data.Float(s.cfg.ContinuousLoss.Truth(vcopy, ws)), true
}

// truthChanged reports whether a truth update moved an entry's estimate:
// a different label for categorical entries, a shift beyond 1e-12 for
// continuous ones (exact float equality would misreport rounding noise).
func truthChanged(t data.Type, old, nv data.Value) bool {
	if t == data.Categorical {
		return old.C != nv.C
	}
	return math.Abs(old.F-nv.F) > 1e-12
}

// accumulateShard folds entries [lo, hi) into one shard's partial loss
// matrix (flattened [k*M+m]): each source's deviation from the current
// truth of every entry it observed (Eq 5/6). It is the per-shard unit of
// Step I's deviation accumulation, shared by sourceLosses' sequential
// and parallel paths, and the weight-update inner loop — //crh:hotpath
// holds it and everything it calls to zero steady-state allocations.
//
//crh:hotpath
func (s *solver) accumulateShard(lsum []float64, lcnt []int32, lo, hi int) {
	c := s.cols
	M := c.Props
	for e := lo; e < hi; e++ {
		truth, ok := s.truths.Get(e)
		if !ok {
			continue
		}
		m := c.EntryProp(e)
		srcs := c.SrcsOf(e)
		if c.PropKind[m] == data.Categorical {
			dist := s.dists[e]
			p := s.prep.props[m]
			codes := c.Codes(e)
			tc := int(truth.C)
			for j, k := range srcs {
				i := int(k)*M + m
				lsum[i] += s.cfg.CategoricalLoss.Deviation(tc, dist, int(codes[j]), p)
				lcnt[i]++
			}
		} else {
			std := s.prep.entryStd[e]
			vals := c.Floats(e)
			for j, k := range srcs {
				i := int(k)*M + m
				lsum[i] += s.cfg.ContinuousLoss.Deviation(truth.F, vals[j], std)
				lcnt[i]++
			}
		}
	}
}

// sourceLosses computes the per-group per-source losses feeding Step I:
// each source's deviation from the current truths, averaged per
// observation within each property (unless disabled), rescaled per
// property so different loss scales are comparable (unless disabled),
// then averaged across the properties the source observed within each
// group. The second result is each source's observation count per group,
// consumed by count-aware weight schemes (reg.CountScheme). Both results
// are written into solver-owned buffers reused across iterations.
func (s *solver) sourceLosses() ([][]float64, [][]int) {
	s.ensureLossBufs()
	c := s.cols
	K, M := c.Sources, c.Props
	KM := K * M
	clear(s.sumKM)
	clear(s.cntKM)

	// Both paths compute one partial matrix per shard and merge partials
	// in ascending shard order. Shard boundaries depend only on the entry
	// count, so the summation order — and therefore every output bit —
	// is identical for any worker budget, pool, or scheduling.
	n := c.NumEntries()
	nsh := s.nsh
	if s.effectiveWorkers() <= 1 {
		s.lastWorkers = 1
		for sh := 0; sh < nsh; sh++ {
			lsum := s.partSum[sh*KM : (sh+1)*KM]
			lcnt := s.partCnt[sh*KM : (sh+1)*KM]
			clear(lsum)
			clear(lcnt)
			lo, hi := shardBounds(n, sh, nsh)
			s.accumulateShard(lsum, lcnt, lo, hi)
		}
	} else {
		s.forShards(func(_ *scratch, sh, lo, hi int) {
			lsum := s.partSum[sh*KM : (sh+1)*KM]
			lcnt := s.partCnt[sh*KM : (sh+1)*KM]
			clear(lsum)
			clear(lcnt)
			s.accumulateShard(lsum, lcnt, lo, hi)
		})
	}
	for sh := 0; sh < nsh; sh++ {
		base := sh * KM
		for i := 0; i < KM; i++ {
			s.sumKM[i] += s.partSum[base+i]
		}
		for i := 0; i < KM; i++ {
			s.cntKM[i] += s.partCnt[base+i]
		}
	}

	groups := s.cfg.PropertyGroups
	if groups == nil {
		counts := s.groupCounts[0]
		for k := 0; k < K; k++ {
			t := 0
			for m := 0; m < M; m++ {
				t += int(s.cntKM[k*M+m])
			}
			counts[k] = t
		}
		s.combineInto(s.groupLosses[0], s.allProps)
		return s.groupLosses, s.groupCounts
	}
	// Per group: combine only the group's property columns.
	for gi, g := range groups {
		counts := s.groupCounts[gi]
		for k := 0; k < K; k++ {
			t := 0
			for _, m := range g {
				t += int(s.cntKM[k*M+m])
			}
			counts[k] = t
		}
		s.combineInto(s.groupLosses[gi], g)
	}
	return s.groupLosses, s.groupCounts
}

// combineInto collapses the merged deviation sums of the given property
// subset into per-source losses, writing them to dst (length K). It is
// the flat-column mirror of CombineLossMatrix and must stay arithmetic-
// for-arithmetic identical to it: count normalization first, then
// per-property max rescaling, then the per-source average over observed
// properties.
func (s *solver) combineInto(dst []float64, props []int) {
	K, M := s.cols.Sources, s.cols.Props
	P := len(props)
	avg := s.avgBuf[:K*P]
	for k := 0; k < K; k++ {
		for j, m := range props {
			a := 0.0
			if cnt := s.cntKM[k*M+m]; cnt > 0 {
				if s.cfg.DisableCountNormalization {
					a = s.sumKM[k*M+m]
				} else {
					a = s.sumKM[k*M+m] / float64(cnt)
				}
			}
			avg[k*P+j] = a
		}
	}
	if !s.cfg.DisablePropNormalization {
		for j := 0; j < P; j++ {
			var max float64
			for k := 0; k < K; k++ {
				if avg[k*P+j] > max {
					max = avg[k*P+j]
				}
			}
			if max > 0 {
				for k := 0; k < K; k++ {
					avg[k*P+j] /= max
				}
			}
		}
	}
	for k := 0; k < K; k++ {
		var total float64
		var nprops int
		for j, m := range props {
			if s.cntKM[k*M+m] > 0 {
				total += avg[k*P+j]
				nprops++
			}
		}
		if nprops > 0 && !s.cfg.DisableCountNormalization {
			total /= float64(nprops)
		}
		dst[k] = total
	}
}

// updateWeights performs Step I under the configured scheme, once per
// property group. Count-aware schemes additionally receive each source's
// per-group observation count; in-place schemes write into the reused
// weight buffers.
func (s *solver) updateWeights() {
	losses, counts := s.sourceLosses()
	for g, l := range losses {
		switch {
		case s.countScheme != nil:
			s.weights[g] = s.countScheme.WeightsWithCounts(l, counts[g])
		case s.inPlace != nil:
			s.inPlace.WeightsInto(s.weights[g], l)
		default:
			s.weights[g] = s.cfg.Scheme.Weights(l)
		}
	}
}

// objective evaluates Σ_g Σ_k w_gk · L_gk with the solver's normalized
// per-source losses — the quantity whose stabilization we use as the
// convergence criterion.
func (s *solver) objective() float64 {
	losses, _ := s.sourceLosses()
	var f float64
	for g, gl := range losses {
		for k, l := range gl {
			f += s.weights[g][k] * l
		}
	}
	return f
}

// confidence computes each resolved entry's weighted support: the share
// of the observers' total weight backing the chosen truth (categorical:
// exact agreement; continuous: within one entry-spread). A unanimous
// entry scores 1; an entry carried by a narrow weighted majority scores
// near the majority's share.
func (s *solver) confidence() []float64 {
	c := s.cols
	conf := make([]float64, c.NumEntries())
	s.forShards(func(_ *scratch, _, lo, hi int) {
		for e := lo; e < hi; e++ {
			truth, ok := s.truths.Get(e)
			if !ok {
				continue
			}
			m := c.EntryProp(e)
			categorical := c.PropKind[m] == data.Categorical
			gw := s.weights[s.groupOf[m]]
			srcs := c.SrcsOf(e)
			var support, total float64
			if categorical {
				codes := c.Codes(e)
				for j, k := range srcs {
					total += gw[k]
					if int32(codes[j]) == truth.C {
						support += gw[k]
					}
				}
			} else {
				std := stdGuardLocal(s.prep.entryStd[e])
				vals := c.Floats(e)
				for j, k := range srcs {
					total += gw[k]
					if math.Abs(vals[j]-truth.F) <= std {
						support += gw[k]
					}
				}
			}
			if total > 0 {
				conf[e] = support / total
			} else if len(srcs) > 0 {
				// All observers carry zero weight: fall back to the
				// unweighted share.
				var n, agree float64
				if categorical {
					for _, code := range c.Codes(e) {
						n++
						if int32(code) == truth.C {
							agree++
						}
					}
				} else {
					std := stdGuardLocal(s.prep.entryStd[e])
					for _, v := range c.Floats(e) {
						n++
						if math.Abs(v-truth.F) <= std {
							agree++
						}
					}
				}
				conf[e] = agree / n
			}
		}
	})
	return conf
}

// stdGuardLocal floors a spread for the confidence band, mirroring the
// loss package's normalizer guard.
func stdGuardLocal(std float64) float64 {
	if std < 1e-12 {
		return 1e-12
	}
	return std
}
