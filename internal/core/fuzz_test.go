package core

import (
	"fmt"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// FuzzRunSmall hardens the solver against arbitrary tiny datasets: Run
// must never panic, a parallel run must be bit-identical to the
// sequential one (the docs/PARALLEL.md contract, probed at whatever
// worker budget the fuzzer picks), and under the provably convex
// configuration (squared losses + ExpSum, no per-property
// renormalization) the objective must never increase.
//
// The input bytes are decoded as: [K-1, N-1, M-1, workers] followed by
// observations of 4 bytes each (source, object, property, value). Odd
// properties are categorical with 4 values; continuous values are small
// quarter-integers so every observation is finite.
func FuzzRunSmall(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})                            // 1 source, 1 object, 1 prop, no observations
	f.Add([]byte{1, 1, 1, 2, 0, 0, 0, 10, 1, 0, 0, 200}) // two sources disagree on one entry
	f.Add([]byte{2, 3, 2, 7, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 0, 9, 0, 1, 2, 1, 1, 2, 1, 3})
	f.Add([]byte{4, 7, 2, 8, 0, 0, 0, 128, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 0, 3, 4, 4, 1, 4, 0, 5, 2, 5})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 4 {
			return
		}
		K := 1 + int(in[0])%5
		N := 1 + int(in[1])%8
		M := 1 + int(in[2])%3
		workers := int(in[3]) % 9
		b := data.NewBuilder()
		props := make([]int, M)
		for m := 0; m < M; m++ {
			if m%2 == 1 {
				props[m] = b.MustProperty(fmt.Sprintf("c%d", m), data.Categorical)
				for c := 0; c < 4; c++ {
					b.CatValue(props[m], fmt.Sprintf("v%d", c))
				}
			} else {
				props[m] = b.MustProperty(fmt.Sprintf("f%d", m), data.Continuous)
			}
		}
		for o := 0; o < N; o++ {
			b.Object(fmt.Sprintf("o%d", o))
		}
		for k := 0; k < K; k++ {
			b.Source(fmt.Sprintf("s%d", k))
		}
		body := in[4:]
		for len(body) >= 4 {
			src := int(body[0]) % K
			obj := int(body[1]) % N
			m := int(body[2]) % M
			var v data.Value
			if m%2 == 1 {
				v = data.Cat(int(body[3]) % 4)
			} else {
				v = data.Float(float64(int8(body[3])) / 4)
			}
			b.ObserveIdx(src, obj, props[m], v)
			body = body[4:]
		}
		d := b.Build()

		// Default configuration: no panic, and any worker budget must
		// reproduce the sequential result bit for bit.
		ref, refErr := Run(d, Config{Workers: 1})
		got, gotErr := Run(d, Config{Workers: workers})
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("workers=1 err %v but workers=%d err %v", refErr, workers, gotErr)
		}
		if refErr == nil {
			requireBitIdentical(t, d, ref, got, fmt.Sprintf("fuzz/workers=%d", workers))
		}

		// Convex configuration: block coordinate descent must not let
		// the objective rise. Count normalization must be off too: it
		// rescales each source's loss by its observation count, which
		// the truth step does not minimize, so on datasets with
		// heterogeneous counts the normalized objective can rise even
		// though the raw one falls (the fuzzer found exactly such an
		// input; it lives in the corpus as a regression seed).
		res, err := Run(d, Config{
			ContinuousLoss:            loss.NormalizedSquared{},
			CategoricalLoss:           loss.SquaredProb{},
			Scheme:                    reg.ExpSum{},
			DisablePropNormalization:  true,
			DisableCountNormalization: true,
			Workers:                   workers,
			MaxIters:                  15,
		})
		if err != nil {
			return // empty datasets are rejected, not solved
		}
		for i := 1; i < len(res.Objective); i++ {
			if res.Objective[i] > res.Objective[i-1]+1e-9 {
				t.Fatalf("objective increased at iter %d: %v -> %v (series %v)",
					i, res.Objective[i-1], res.Objective[i], res.Objective)
			}
		}
	})
}
