// Package core implements the CRH (Conflict Resolution on Heterogeneous
// data) framework — Algorithm 1 of the paper. Given a multi-source dataset
// with mixed continuous/categorical properties and missing values, it
// jointly estimates a truth table and per-source reliability weights by
// block coordinate descent on
//
//	min_{X*,W}  Σ_k w_k Σ_i Σ_m d_m(v*_im, v^k_im)   s.t. δ(W) = 1,
//
// alternating a source-weight update (Step I, solved by a reg.Scheme) with
// a per-entry truth update (Step II, solved by the loss functions' argmin
// rules) until the objective stabilizes.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/obs"
	"github.com/crhkit/crh/internal/reg"
	"github.com/crhkit/crh/internal/stats"
)

// Config controls a CRH run. The zero value selects the paper's defaults:
// weighted-median truths for continuous properties (normalized absolute
// loss), weighted voting for categorical properties (0-1 loss), and the
// max-normalized negative-log weight assignment.
type Config struct {
	// ContinuousLoss aggregates and penalizes continuous observations.
	// Defaults to loss.NormalizedAbsolute (weighted median).
	ContinuousLoss loss.Continuous
	// CategoricalLoss aggregates and penalizes categorical observations.
	// Defaults to loss.ZeroOne (weighted voting).
	CategoricalLoss loss.Categorical
	// Scheme assigns source weights from aggregated losses. Defaults to
	// reg.ExpMax.
	Scheme reg.Scheme

	// MaxIters bounds the number of weight/truth iterations. Defaults
	// to 20; the paper observes convergence within a few iterations.
	MaxIters int
	// Workers is the per-run worker budget for the truth and loss
	// computations, which are embarrassingly parallel across entries.
	// 0 selects GOMAXPROCS; 1 forces sequential execution. Output is
	// bit-for-bit identical for every Workers setting: work is split
	// into shards whose boundaries depend only on the dataset, and
	// per-shard partial sums are reduced in fixed shard order, so
	// floating-point summation order never depends on the worker count
	// or scheduling. See docs/PARALLEL.md for the contract.
	Workers int
	// Pool optionally supplies a reusable worker pool shared across
	// runs (see NewPool). Concurrent Run calls may share one pool; the
	// pool size then bounds total solver concurrency while Workers
	// bounds each run's share of it. Nil spawns transient goroutines
	// per run.
	Pool *Pool
	// Tol is the relative objective-decrease threshold for convergence.
	// Defaults to 1e-6.
	Tol float64

	// NormalizeProps rescales each property's per-source average
	// deviations by the property's maximum so heterogeneous loss scales
	// contribute comparably to the weights (Section 2.5,
	// "Normalization"). Defaults to on; set DisablePropNormalization to
	// turn it off.
	DisablePropNormalization bool
	// DisableCountNormalization stops dividing each source's loss by its
	// observation count (Section 2.5, "Missing values"). Defaults to on.
	DisableCountNormalization bool

	// InitTruths seeds the truth table instead of the default
	// uniform-weight aggregation (voting / median).
	InitTruths *data.Table

	// KnownTruths pins entries whose true value is already known
	// (semi-supervised operation): pinned entries are never re-estimated
	// but do contribute to source-weight estimation, so a little
	// supervision sharpens every source's reliability.
	KnownTruths *data.Table

	// ComputeConfidence fills Result.Confidence with a per-entry score
	// in [0, 1]: the weighted fraction of sources that support the
	// chosen truth (categorical: sources voting for it; continuous:
	// sources within one entry-spread of it). Off by default — it costs
	// one extra pass over the observations.
	ComputeConfidence bool

	// Trace receives per-iteration telemetry (objective, per-phase wall
	// time, weight summary, truth-change count) from the
	// block-coordinate-descent loop. Nil — the default — disables
	// instrumentation entirely: the loop computes none of the
	// trace-only quantities, so the hot path stays allocation-free.
	// obs.NewJSONLTrace provides a ready-made JSONL sink.
	Trace obs.SolverTrace

	// PropertyGroups relaxes the source-weight consistency assumption
	// (Section 2.5, "Source weight consistency"): instead of one weight
	// per source, each source gets one weight per group of properties,
	// capturing local reliability (a sensor accurate on temperature but
	// not humidity). Each element lists the property indices of one
	// group; every property must appear in exactly one group. Nil keeps
	// the paper's default of a single global weight per source.
	PropertyGroups [][]int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ContinuousLoss == nil {
		out.ContinuousLoss = loss.NormalizedAbsolute{}
	}
	if out.CategoricalLoss == nil {
		out.CategoricalLoss = loss.ZeroOne{}
	}
	if out.Scheme == nil {
		out.Scheme = reg.ExpMax{}
	}
	if out.MaxIters == 0 {
		out.MaxIters = 20
	}
	if out.Tol == 0 {
		out.Tol = 1e-6
	}
	return out
}

// Result is the output of a CRH run.
type Result struct {
	// Truths holds the inferred value for every entry with at least one
	// observation.
	Truths *data.Table
	// Weights holds one reliability weight per source (the first
	// group's weights when PropertyGroups is set).
	Weights []float64
	// GroupWeights holds the per-group weights when Config.PropertyGroups
	// is set: GroupWeights[g][k] is source k's reliability on group g.
	// Nil for the default single-group configuration.
	GroupWeights [][]float64
	// Objective records the objective value after each iteration's truth
	// update (index 0 is the initialization pass).
	Objective []float64
	// IterTime records each iteration's wall time (weight update, truth
	// update, and objective evaluation together), aligned with
	// Objective. Always populated — convergence-versus-cost analyses
	// need it whether or not a Trace is installed.
	IterTime []time.Duration
	// Iterations is the number of weight/truth iterations executed.
	Iterations int
	// Converged reports whether the tolerance was met before MaxIters.
	Converged bool
	// Confidence holds one score per entry when
	// Config.ComputeConfidence is set (0 for unresolved entries):
	// the weighted support for the chosen truth.
	Confidence []float64
}

// ErrEmptyDataset is returned when the dataset has no sources or entries.
var ErrEmptyDataset = errors.New("core: empty dataset")

// validateGroups checks that PropertyGroups is a partition of the
// property indices.
func validateGroups(groups [][]int, numProps int) error {
	seen := make([]bool, numProps)
	for gi, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("core: property group %d is empty", gi)
		}
		for _, m := range g {
			if m < 0 || m >= numProps {
				return fmt.Errorf("core: property group %d references property %d of %d", gi, m, numProps)
			}
			if seen[m] {
				return fmt.Errorf("core: property %d appears in multiple groups", m)
			}
			seen[m] = true
		}
	}
	for m, ok := range seen {
		if !ok {
			return fmt.Errorf("core: property %d missing from PropertyGroups", m)
		}
	}
	return nil
}

// Run executes CRH on d. It is deterministic for a given dataset and
// configuration, and its output is bit-for-bit identical for every
// Workers setting (see Config.Workers and docs/PARALLEL.md).
func Run(d *data.Dataset, cfg Config) (*Result, error) {
	if d.NumSources() == 0 || d.NumEntries() == 0 {
		return nil, ErrEmptyDataset
	}
	cfg = cfg.withDefaults()
	if cfg.PropertyGroups != nil {
		if err := validateGroups(cfg.PropertyGroups, d.NumProps()); err != nil {
			return nil, err
		}
	}
	s := newSolver(d, cfg)

	// Initialization: either the caller's truths or one truth update
	// under uniform weights — the Voting/Averaging start the paper
	// recommends (Section 2.5, "Initialization").
	if cfg.InitTruths != nil {
		s.truths = cfg.InitTruths.Clone()
		s.pinKnown()
	} else {
		s.setUniformWeights()
		s.updateTruths(false)
	}

	res := &Result{}
	tracing := cfg.Trace != nil
	prevObj := math.Inf(1)
	for it := 0; it < cfg.MaxIters; it++ {
		t0 := time.Now()
		s.updateWeights()
		weightWorkers := s.lastWorkers
		tW := time.Now()
		changes := s.updateTruths(tracing)
		truthWorkers := s.lastWorkers
		tT := time.Now()
		obj := s.objective()
		tO := time.Now()
		res.Objective = append(res.Objective, obj)
		res.IterTime = append(res.IterTime, tO.Sub(t0))
		res.Iterations = it + 1
		if !math.IsInf(prevObj, 1) {
			denom := math.Abs(prevObj)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if (prevObj-obj)/denom < cfg.Tol {
				res.Converged = true
			}
		}
		prevObj = obj
		if tracing {
			cfg.Trace.TraceIteration(obs.IterationTrace{
				Iteration:      it + 1,
				Objective:      obj,
				WeightPhase:    tW.Sub(t0),
				TruthPhase:     tT.Sub(tW),
				ObjectivePhase: tO.Sub(tT),
				TruthChanges:   changes,
				WeightWorkers:  weightWorkers,
				TruthWorkers:   truthWorkers,
				Weights:        obs.SummarizeWeights(s.weights[0]),
				Converged:      res.Converged,
			})
		}
		if res.Converged {
			break
		}
	}
	res.Truths = s.truths
	res.Weights = s.weights[0]
	if cfg.PropertyGroups != nil {
		res.GroupWeights = s.weights
	}
	if cfg.ComputeConfidence {
		res.Confidence = s.confidence()
	}
	return res, nil
}

// solver carries the mutable state of one run.
type solver struct {
	d       *data.Dataset
	cfg     Config
	workers int
	pool    *Pool
	// scratches recycles per-goroutine gather buffers across parallel
	// regions; the sequential path reuses a single solver-owned scratch.
	scratches sync.Pool
	// lastWorkers records the worker budget engaged by the most recent
	// parallel region — the per-phase count the solver trace reports.
	lastWorkers int

	truths *data.Table
	// weights[g][k] is source k's weight for property group g; the
	// default configuration has a single group.
	weights [][]float64
	// groupOf[m] is property m's group index.
	groupOf []int
	// dists caches the per-entry category distribution for probabilistic
	// categorical losses (nil entries for hard losses / continuous).
	dists [][]float64
	// entryStd caches the spread of each continuous entry's observations
	// for loss normalization.
	entryStd []float64

	// scratch buffers for the sequential path, reused across entries.
	vals, ws []float64
	cats     []int
	srcs     []int
}

// scratch holds one worker's reusable per-entry buffers.
type scratch struct {
	vals, ws []float64
	cats     []int
}

// effectiveWorkers returns the worker budget actually engaged for this
// dataset: the configured budget clamped to the shard count (extra
// workers would have nothing to claim).
func (s *solver) effectiveWorkers() int {
	w := s.workers
	if nsh := numShards(s.d.NumEntries()); w > nsh {
		w = nsh
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forShards runs fn once per shard of the entry range, in parallel up to
// the solver's worker budget. Shard boundaries depend only on the entry
// count (see numShards), and fn receives the shard index so per-shard
// partial results can be merged in shard order afterwards — the two
// properties that make every worker count produce bit-identical output.
// Shards are claimed dynamically (work stealing) which is safe precisely
// because the merge happens by shard index, not by completion order.
func (s *solver) forShards(fn func(sc *scratch, sh, lo, hi int)) {
	n := s.d.NumEntries()
	nsh := numShards(n)
	w := s.effectiveWorkers()
	s.lastWorkers = w
	if w <= 1 {
		sc := s.getScratch()
		for sh := 0; sh < nsh; sh++ {
			lo, hi := shardBounds(n, sh, nsh)
			fn(sc, sh, lo, hi)
		}
		s.putScratch(sc)
		return
	}
	task := func(sh int) {
		sc := s.getScratch()
		lo, hi := shardBounds(n, sh, nsh)
		fn(sc, sh, lo, hi)
		s.putScratch(sc)
	}
	if s.pool != nil {
		s.pool.Do(nsh, w, task)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sh := int(next.Add(1) - 1)
				if sh >= nsh {
					return
				}
				task(sh)
			}
		}()
	}
	wg.Wait()
}

// getScratch and putScratch recycle gather buffers across shards and
// parallel regions.
func (s *solver) getScratch() *scratch {
	if sc, ok := s.scratches.Get().(*scratch); ok {
		return sc
	}
	return &scratch{}
}

func (s *solver) putScratch(sc *scratch) { s.scratches.Put(sc) }

// gatherInto collects entry e's observations into sc, returning the
// number of observers. Runs once per entry per iteration; the scratch
// buffers amortize to zero steady-state allocations.
//
//crh:hotpath
func (s *solver) gatherInto(sc *scratch, e int, categorical bool) int {
	sc.vals, sc.ws, sc.cats = sc.vals[:0], sc.ws[:0], sc.cats[:0]
	gw := s.weights[s.groupOf[s.d.EntryProp(e)]]
	//lint:ignore hotpath the callback captures the scratch it amortizes into — appends refill buffers reset to [:0] above, and ForEntry cannot retain the closure
	s.d.ForEntry(e, func(k int, v data.Value) {
		if categorical {
			sc.cats = append(sc.cats, int(v.C))
		} else {
			sc.vals = append(sc.vals, v.F)
		}
		sc.ws = append(sc.ws, gw[k])
	})
	return len(sc.ws)
}

func newSolver(d *data.Dataset, cfg Config) *solver {
	s := &solver{
		d:        d,
		cfg:      cfg,
		workers:  cfg.Workers,
		pool:     cfg.Pool,
		truths:   data.NewTableFor(d),
		groupOf:  make([]int, d.NumProps()),
		dists:    make([][]float64, d.NumEntries()),
		entryStd: make([]float64, d.NumEntries()),
	}
	if s.workers == 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	nGroups := 1
	if cfg.PropertyGroups != nil {
		nGroups = len(cfg.PropertyGroups)
		for gi, g := range cfg.PropertyGroups {
			for _, m := range g {
				s.groupOf[m] = gi
			}
		}
	}
	s.weights = make([][]float64, nGroups)
	for g := range s.weights {
		s.weights[g] = make([]float64, d.NumSources())
	}
	// Precompute per-entry standard deviations for continuous entries
	// (Eq 13/15 normalize by the spread of the entry's observations).
	for e := 0; e < d.NumEntries(); e++ {
		if d.Prop(d.EntryProp(e)).Type != data.Continuous {
			continue
		}
		s.vals = s.vals[:0]
		d.ForEntry(e, func(_ int, v data.Value) {
			s.vals = append(s.vals, v.F)
		})
		s.entryStd[e] = stats.Std(s.vals)
	}
	return s
}

// setUniformWeights resets every (group, source) weight to 1.
func (s *solver) setUniformWeights() {
	for g := range s.weights {
		for k := range s.weights[g] {
			s.weights[g][k] = 1
		}
	}
}

// pinKnown overwrites entries whose truths are supplied (semi-supervised
// operation). Pinned entries still contribute to source losses.
func (s *solver) pinKnown() {
	if s.cfg.KnownTruths == nil {
		return
	}
	s.cfg.KnownTruths.ForEach(func(e int, v data.Value) {
		s.truths.Set(e, v)
		// Hard truths have no soft distribution; probabilistic losses
		// degrade to 0-1 behaviour on pinned entries.
		s.dists[e] = nil
	})
}

// gather collects entry e's observations into the scratch buffers.
// Returns the number of observers.
func (s *solver) gather(e int, categorical bool) int {
	s.vals, s.ws, s.cats, s.srcs = s.vals[:0], s.ws[:0], s.cats[:0], s.srcs[:0]
	gw := s.weights[s.groupOf[s.d.EntryProp(e)]]
	s.d.ForEntry(e, func(k int, v data.Value) {
		if categorical {
			s.cats = append(s.cats, int(v.C))
		} else {
			s.vals = append(s.vals, v.F)
		}
		s.ws = append(s.ws, gw[k])
		s.srcs = append(s.srcs, k)
	})
	return len(s.ws)
}

// updateTruths performs Step II: per-entry argmin under current weights,
// parallelized across entries (each entry's truth is independent).
// Entries pinned by KnownTruths are left untouched.
//
// When countChanges is set (only while a Trace is installed) it returns
// the number of entries whose truth estimate moved this pass; otherwise
// it returns 0 without comparing, keeping the untraced path free of the
// extra table reads.
func (s *solver) updateTruths(countChanges bool) int {
	d := s.d
	var perShard []int
	if countChanges {
		perShard = make([]int, numShards(d.NumEntries()))
	}
	s.forShards(func(sc *scratch, sh, lo, hi int) {
		for e := lo; e < hi; e++ {
			if s.cfg.KnownTruths != nil && s.cfg.KnownTruths.Has(e) {
				v, _ := s.cfg.KnownTruths.Get(e)
				s.truths.Set(e, v)
				s.dists[e] = nil
				continue
			}
			nv, ok := s.resolveEntry(sc, e)
			if !ok {
				continue
			}
			if countChanges {
				p := d.Prop(d.EntryProp(e))
				if old, ok := s.truths.Get(e); !ok || truthChanged(p.Type, old, nv) {
					perShard[sh]++
				}
			}
			s.truths.Set(e, nv)
		}
	})
	var changes int
	for _, c := range perShard {
		changes += c
	}
	return changes
}

// resolveEntry performs the Step II argmin for one unpinned entry:
// gather its observations under the current weights, then let the
// configured loss pick the minimizing estimate (Eq 7/9). ok is false
// when nobody observed the entry. This is the truth-update inner loop —
// it runs once per entry per iteration, and //crh:hotpath holds it and
// everything it calls to zero steady-state allocations.
//
//crh:hotpath
func (s *solver) resolveEntry(sc *scratch, e int) (data.Value, bool) {
	p := s.d.Prop(s.d.EntryProp(e))
	if p.Type == data.Categorical {
		if s.gatherInto(sc, e, true) == 0 {
			return data.Value{}, false
		}
		t, dist := s.cfg.CategoricalLoss.Truth(sc.cats, sc.ws, p)
		s.dists[e] = dist
		return data.Cat(t), true
	}
	if s.gatherInto(sc, e, false) == 0 {
		return data.Value{}, false
	}
	return data.Float(s.cfg.ContinuousLoss.Truth(sc.vals, sc.ws)), true
}

// truthChanged reports whether a truth update moved an entry's estimate:
// a different label for categorical entries, a shift beyond 1e-12 for
// continuous ones (exact float equality would misreport rounding noise).
func truthChanged(t data.Type, old, nv data.Value) bool {
	if t == data.Categorical {
		return old.C != nv.C
	}
	return math.Abs(old.F-nv.F) > 1e-12
}

// accumulateShard folds entries [lo, hi) into the given partial loss
// matrices: each source's deviation from the current truth of every
// entry it observed (Eq 5/6). It is the per-shard unit of Step I's
// deviation accumulation, shared by sourceLosses' sequential and
// parallel paths, and the weight-update inner loop — //crh:hotpath
// holds it and everything it calls to zero steady-state allocations.
//
//crh:hotpath
func (s *solver) accumulateShard(lsum [][]float64, lcnt [][]int, lo, hi int) {
	d := s.d
	for e := lo; e < hi; e++ {
		truth, ok := s.truths.Get(e)
		if !ok {
			continue
		}
		m := d.EntryProp(e)
		p := d.Prop(m)
		if p.Type == data.Categorical {
			dist := s.dists[e]
			//lint:ignore hotpath the callback closes over per-entry loop state; ForEntry iterates a slice in place and cannot retain the closure
			d.ForEntry(e, func(k int, v data.Value) {
				lsum[k][m] += s.cfg.CategoricalLoss.Deviation(int(truth.C), dist, int(v.C), p)
				lcnt[k][m]++
			})
		} else {
			std := s.entryStd[e]
			//lint:ignore hotpath the callback closes over per-entry loop state; ForEntry iterates a slice in place and cannot retain the closure
			d.ForEntry(e, func(k int, v data.Value) {
				lsum[k][m] += s.cfg.ContinuousLoss.Deviation(truth.F, v.F, std)
				lcnt[k][m]++
			})
		}
	}
}

// sourceLosses computes the per-group per-source losses feeding Step I:
// each source's deviation from the current truths, averaged per
// observation within each property (unless disabled), rescaled per
// property so different loss scales are comparable (unless disabled),
// then averaged across the properties the source observed within each
// group. The second result is each source's observation count per group,
// consumed by count-aware weight schemes (reg.CountScheme).
func (s *solver) sourceLosses() ([][]float64, [][]int) {
	d := s.d
	K, M := d.NumSources(), d.NumProps()
	sum := make([][]float64, K) // [k][m] total deviation
	cnt := make([][]int, K)     // [k][m] observation count
	for k := 0; k < K; k++ {
		sum[k] = make([]float64, M)
		cnt[k] = make([]int, M)
	}
	merge := func(lsum [][]float64, lcnt [][]int) {
		for k := 0; k < K; k++ {
			for m := 0; m < M; m++ {
				sum[k][m] += lsum[k][m]
				cnt[k][m] += lcnt[k][m]
			}
		}
	}

	// Both paths compute one partial matrix per shard and merge partials
	// in ascending shard order. Shard boundaries depend only on the entry
	// count, so the summation order — and therefore every output bit —
	// is identical for any worker budget, pool, or scheduling. The
	// sequential path reuses a single partial matrix, zeroed per shard;
	// the additions it performs are exactly the parallel merge's.
	n := d.NumEntries()
	nsh := numShards(n)
	if s.effectiveWorkers() <= 1 {
		s.lastWorkers = 1
		lsum := make([][]float64, K)
		lcnt := make([][]int, K)
		for k := 0; k < K; k++ {
			lsum[k] = make([]float64, M)
			lcnt[k] = make([]int, M)
		}
		for sh := 0; sh < nsh; sh++ {
			for k := 0; k < K; k++ {
				clear(lsum[k])
				clear(lcnt[k])
			}
			lo, hi := shardBounds(n, sh, nsh)
			s.accumulateShard(lsum, lcnt, lo, hi)
			merge(lsum, lcnt)
		}
	} else {
		partSum := make([][][]float64, nsh)
		partCnt := make([][][]int, nsh)
		s.forShards(func(_ *scratch, sh, lo, hi int) {
			lsum := make([][]float64, K)
			lcnt := make([][]int, K)
			for k := 0; k < K; k++ {
				lsum[k] = make([]float64, M)
				lcnt[k] = make([]int, M)
			}
			s.accumulateShard(lsum, lcnt, lo, hi)
			partSum[sh], partCnt[sh] = lsum, lcnt
		})
		for sh := 0; sh < nsh; sh++ {
			merge(partSum[sh], partCnt[sh])
		}
	}

	groups := s.cfg.PropertyGroups
	if groups == nil {
		counts := [][]int{make([]int, K)}
		for k := 0; k < K; k++ {
			for m := 0; m < M; m++ {
				counts[0][k] += cnt[k][m]
			}
		}
		return [][]float64{CombineLossMatrix(sum, cnt, s.cfg)}, counts
	}
	// Per group: combine only the group's property columns.
	losses := make([][]float64, len(groups))
	counts := make([][]int, len(groups))
	for gi, g := range groups {
		gsum := make([][]float64, K)
		gcnt := make([][]int, K)
		counts[gi] = make([]int, K)
		for k := 0; k < K; k++ {
			gsum[k] = make([]float64, len(g))
			gcnt[k] = make([]int, len(g))
			for j, m := range g {
				gsum[k][j] = sum[k][m]
				gcnt[k][j] = cnt[k][m]
				counts[gi][k] += cnt[k][m]
			}
		}
		losses[gi] = CombineLossMatrix(gsum, gcnt, s.cfg)
	}
	return losses, counts
}

// updateWeights performs Step I under the configured scheme, once per
// property group. Count-aware schemes additionally receive each source's
// per-group observation count.
func (s *solver) updateWeights() {
	losses, counts := s.sourceLosses()
	cs, countAware := s.cfg.Scheme.(reg.CountScheme)
	for g, l := range losses {
		if countAware {
			s.weights[g] = cs.WeightsWithCounts(l, counts[g])
		} else {
			s.weights[g] = s.cfg.Scheme.Weights(l)
		}
	}
}

// objective evaluates Σ_g Σ_k w_gk · L_gk with the solver's normalized
// per-source losses — the quantity whose stabilization we use as the
// convergence criterion.
func (s *solver) objective() float64 {
	losses, _ := s.sourceLosses()
	var f float64
	for g, gl := range losses {
		for k, l := range gl {
			f += s.weights[g][k] * l
		}
	}
	return f
}

// confidence computes each resolved entry's weighted support: the share
// of the observers' total weight backing the chosen truth (categorical:
// exact agreement; continuous: within one entry-spread). A unanimous
// entry scores 1; an entry carried by a narrow weighted majority scores
// near the majority's share.
func (s *solver) confidence() []float64 {
	d := s.d
	conf := make([]float64, d.NumEntries())
	s.forShards(func(_ *scratch, _, lo, hi int) {
		for e := lo; e < hi; e++ {
			truth, ok := s.truths.Get(e)
			if !ok {
				continue
			}
			m := d.EntryProp(e)
			p := d.Prop(m)
			gw := s.weights[s.groupOf[m]]
			var support, total float64
			if p.Type == data.Categorical {
				d.ForEntry(e, func(k int, v data.Value) {
					total += gw[k]
					if v.C == truth.C {
						support += gw[k]
					}
				})
			} else {
				std := stdGuardLocal(s.entryStd[e])
				d.ForEntry(e, func(k int, v data.Value) {
					total += gw[k]
					if math.Abs(v.F-truth.F) <= std {
						support += gw[k]
					}
				})
			}
			if total > 0 {
				conf[e] = support / total
			} else if d.EntryObservers(e) > 0 {
				// All observers carry zero weight: fall back to the
				// unweighted share.
				var n, agree float64
				d.ForEntry(e, func(_ int, v data.Value) {
					n++
					if p.Type == data.Categorical {
						if v.C == truth.C {
							agree++
						}
					} else if math.Abs(v.F-truth.F) <= stdGuardLocal(s.entryStd[e]) {
						agree++
					}
				})
				conf[e] = agree / n
			}
		}
	})
	return conf
}

// stdGuardLocal floors a spread for the confidence band, mirroring the
// loss package's normalizer guard.
func stdGuardLocal(std float64) float64 {
	if std < 1e-12 {
		return 1e-12
	}
	return std
}

// AggregateTruths performs a single truth-update pass (Step II) under the
// given fixed source weights and returns the resulting truth table. This is
// the building block the incremental (I-CRH) and MapReduce variants reuse:
// both compute truths for a batch from externally maintained weights.
func AggregateTruths(d *data.Dataset, weights []float64, cfg Config) *data.Table {
	cfg = cfg.withDefaults()
	cfg.PropertyGroups = nil // single-group helper
	s := newSolver(d, cfg)
	copy(s.weights[0], weights)
	s.updateTruths(false)
	return s.truths
}

// SourceLosses computes each source's aggregated, normalized loss against
// the given truths — the quantity Step I feeds to the weight-assignment
// scheme. Exported for the incremental and MapReduce variants, which
// accumulate these losses across chunks instead of iterating in place.
//
// For probabilistic categorical losses the per-entry distributions are
// recomputed from the supplied weights before deviations are taken.
func SourceLosses(d *data.Dataset, truths *data.Table, weights []float64, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	cfg.PropertyGroups = nil // single-group helper
	s := newSolver(d, cfg)
	copy(s.weights[0], weights)
	s.truths = truths
	// Rebuild distributions for probabilistic categorical losses so
	// Deviation sees them; hard losses return nil distributions.
	for e := 0; e < d.NumEntries(); e++ {
		p := d.Prop(d.EntryProp(e))
		if p.Type != data.Categorical || !truths.Has(e) {
			continue
		}
		if s.gather(e, true) == 0 {
			continue
		}
		_, dist := s.cfg.CategoricalLoss.Truth(s.cats, s.ws, p)
		s.dists[e] = dist
	}
	losses, _ := s.sourceLosses()
	return losses[0]
}

// CombineLossMatrix collapses per-(source, property) deviation sums and
// observation counts into the per-source losses Step I feeds to the
// weight scheme, applying the same count and property normalizations the
// in-process solver uses. Exported so the MapReduce driver — which
// aggregates the sums with a distributed job — produces weights identical
// to the serial solver's.
func CombineLossMatrix(sum [][]float64, cnt [][]int, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	K := len(sum)
	if K == 0 {
		return nil
	}
	M := len(sum[0])
	avg := make([][]float64, K)
	for k := 0; k < K; k++ {
		avg[k] = make([]float64, M)
		for m := 0; m < M; m++ {
			if cnt[k][m] > 0 {
				if cfg.DisableCountNormalization {
					avg[k][m] = sum[k][m]
				} else {
					avg[k][m] = sum[k][m] / float64(cnt[k][m])
				}
			}
		}
	}
	if !cfg.DisablePropNormalization {
		for m := 0; m < M; m++ {
			var max float64
			for k := 0; k < K; k++ {
				if avg[k][m] > max {
					max = avg[k][m]
				}
			}
			if max > 0 {
				for k := 0; k < K; k++ {
					avg[k][m] /= max
				}
			}
		}
	}
	losses := make([]float64, K)
	for k := 0; k < K; k++ {
		var total float64
		var nprops int
		for m := 0; m < M; m++ {
			if cnt[k][m] > 0 {
				total += avg[k][m]
				nprops++
			}
		}
		if nprops > 0 && !cfg.DisableCountNormalization {
			total /= float64(nprops)
		}
		losses[k] = total
	}
	return losses
}
