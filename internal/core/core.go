// Package core implements the CRH (Conflict Resolution on Heterogeneous
// data) framework — Algorithm 1 of the paper. Given a multi-source dataset
// with mixed continuous/categorical properties and missing values, it
// jointly estimates a truth table and per-source reliability weights by
// block coordinate descent on
//
//	min_{X*,W}  Σ_k w_k Σ_i Σ_m d_m(v*_im, v^k_im)   s.t. δ(W) = 1,
//
// alternating a source-weight update (Step I, solved by a reg.Scheme) with
// a per-entry truth update (Step II, solved by the loss functions' argmin
// rules) until the objective stabilizes.
//
// The solver's hot loops run on a frozen columnar view of the dataset
// (internal/col) built once per run — or once per Prepared when the same
// dataset is solved repeatedly — so steady-state iterations perform no
// allocations and touch only flat, contiguous slices.
package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/obs"
	"github.com/crhkit/crh/internal/reg"
)

// Config controls a CRH run. The zero value selects the paper's defaults:
// weighted-median truths for continuous properties (normalized absolute
// loss), weighted voting for categorical properties (0-1 loss), and the
// max-normalized negative-log weight assignment.
type Config struct {
	// ContinuousLoss aggregates and penalizes continuous observations.
	// Defaults to loss.NormalizedAbsolute (weighted median).
	ContinuousLoss loss.Continuous
	// CategoricalLoss aggregates and penalizes categorical observations.
	// Defaults to loss.ZeroOne (weighted voting).
	CategoricalLoss loss.Categorical
	// Scheme assigns source weights from aggregated losses. Defaults to
	// reg.ExpMax.
	Scheme reg.Scheme

	// MaxIters bounds the number of weight/truth iterations. Defaults
	// to 20; the paper observes convergence within a few iterations.
	MaxIters int
	// Workers is the per-run worker budget for the truth and loss
	// computations, which are embarrassingly parallel across entries.
	// 0 selects GOMAXPROCS; 1 forces sequential execution. Output is
	// bit-for-bit identical for every Workers setting: work is split
	// into shards whose boundaries depend only on the dataset, and
	// per-shard partial sums are reduced in fixed shard order, so
	// floating-point summation order never depends on the worker count
	// or scheduling. See docs/PARALLEL.md for the contract.
	Workers int
	// Pool optionally supplies a reusable worker pool shared across
	// runs (see NewPool). Concurrent Run calls may share one pool; the
	// pool size then bounds total solver concurrency while Workers
	// bounds each run's share of it. Nil spawns transient goroutines
	// per run.
	Pool *Pool
	// Tol is the relative objective-decrease threshold for convergence.
	// Defaults to 1e-6.
	Tol float64

	// NormalizeProps rescales each property's per-source average
	// deviations by the property's maximum so heterogeneous loss scales
	// contribute comparably to the weights (Section 2.5,
	// "Normalization"). Defaults to on; set DisablePropNormalization to
	// turn it off.
	DisablePropNormalization bool
	// DisableCountNormalization stops dividing each source's loss by its
	// observation count (Section 2.5, "Missing values"). Defaults to on.
	DisableCountNormalization bool

	// InitTruths seeds the truth table instead of the default
	// uniform-weight aggregation (voting / median).
	InitTruths *data.Table

	// KnownTruths pins entries whose true value is already known
	// (semi-supervised operation): pinned entries are never re-estimated
	// but do contribute to source-weight estimation, so a little
	// supervision sharpens every source's reliability.
	KnownTruths *data.Table

	// ComputeConfidence fills Result.Confidence with a per-entry score
	// in [0, 1]: the weighted fraction of sources that support the
	// chosen truth (categorical: sources voting for it; continuous:
	// sources within one entry-spread of it). Off by default — it costs
	// one extra pass over the observations.
	ComputeConfidence bool

	// Trace receives per-iteration telemetry (objective, per-phase wall
	// time, weight summary, truth-change count) from the
	// block-coordinate-descent loop. Nil — the default — disables
	// instrumentation entirely: the loop computes none of the
	// trace-only quantities, so the hot path stays allocation-free.
	// obs.NewJSONLTrace provides a ready-made JSONL sink.
	Trace obs.SolverTrace

	// PropertyGroups relaxes the source-weight consistency assumption
	// (Section 2.5, "Source weight consistency"): instead of one weight
	// per source, each source gets one weight per group of properties,
	// capturing local reliability (a sensor accurate on temperature but
	// not humidity). Each element lists the property indices of one
	// group; every property must appear in exactly one group. Nil keeps
	// the paper's default of a single global weight per source.
	PropertyGroups [][]int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ContinuousLoss == nil {
		out.ContinuousLoss = loss.NormalizedAbsolute{}
	}
	if out.CategoricalLoss == nil {
		out.CategoricalLoss = loss.ZeroOne{}
	}
	if out.Scheme == nil {
		out.Scheme = reg.ExpMax{}
	}
	if out.MaxIters == 0 {
		out.MaxIters = 20
	}
	if out.Tol == 0 {
		out.Tol = 1e-6
	}
	return out
}

// Result is the output of a CRH run.
type Result struct {
	// Truths holds the inferred value for every entry with at least one
	// observation.
	Truths *data.Table
	// Weights holds one reliability weight per source (the first
	// group's weights when PropertyGroups is set).
	Weights []float64
	// GroupWeights holds the per-group weights when Config.PropertyGroups
	// is set: GroupWeights[g][k] is source k's reliability on group g.
	// Nil for the default single-group configuration.
	GroupWeights [][]float64
	// Objective records the objective value after each iteration's truth
	// update (index 0 is the initialization pass).
	Objective []float64
	// IterTime records each iteration's wall time (weight update, truth
	// update, and objective evaluation together), aligned with
	// Objective. Always populated — convergence-versus-cost analyses
	// need it whether or not a Trace is installed.
	IterTime []time.Duration
	// Iterations is the number of weight/truth iterations executed.
	Iterations int
	// Converged reports whether the tolerance was met before MaxIters.
	Converged bool
	// Confidence holds one score per entry when
	// Config.ComputeConfidence is set (0 for unresolved entries):
	// the weighted support for the chosen truth.
	Confidence []float64
}

// ErrEmptyDataset is returned when the dataset has no sources or entries.
var ErrEmptyDataset = errors.New("core: empty dataset")

// validateGroups checks that PropertyGroups is a partition of the
// property indices.
func validateGroups(groups [][]int, numProps int) error {
	seen := make([]bool, numProps)
	for gi, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("core: property group %d is empty", gi)
		}
		for _, m := range g {
			if m < 0 || m >= numProps {
				return fmt.Errorf("core: property group %d references property %d of %d", gi, m, numProps)
			}
			if seen[m] {
				return fmt.Errorf("core: property %d appears in multiple groups", m)
			}
			seen[m] = true
		}
	}
	for m, ok := range seen {
		if !ok {
			return fmt.Errorf("core: property %d missing from PropertyGroups", m)
		}
	}
	return nil
}

// Run executes CRH on d. It is deterministic for a given dataset and
// configuration, and its output is bit-for-bit identical for every
// Workers setting (see Config.Workers and docs/PARALLEL.md).
//
// Run freezes the dataset's columnar view first; callers solving the
// same dataset repeatedly should Prepare once and call Prepared.Run.
func Run(d *data.Dataset, cfg Config) (*Result, error) {
	if d.NumSources() == 0 || d.NumEntries() == 0 {
		return nil, ErrEmptyDataset
	}
	return Prepare(d).Run(cfg)
}

// AggregateTruths performs a single truth-update pass (Step II) under the
// given fixed source weights and returns the resulting truth table. This is
// the building block the incremental (I-CRH) and MapReduce variants reuse:
// both compute truths for a batch from externally maintained weights.
func AggregateTruths(d *data.Dataset, weights []float64, cfg Config) *data.Table {
	return Prepare(d).AggregateTruths(weights, cfg)
}

// SourceLosses computes each source's aggregated, normalized loss against
// the given truths — the quantity Step I feeds to the weight-assignment
// scheme. Exported for the incremental and MapReduce variants, which
// accumulate these losses across chunks instead of iterating in place.
//
// For probabilistic categorical losses the per-entry distributions are
// recomputed from the supplied weights before deviations are taken.
func SourceLosses(d *data.Dataset, truths *data.Table, weights []float64, cfg Config) []float64 {
	return Prepare(d).SourceLosses(truths, weights, cfg)
}

// CombineLossMatrix collapses per-(source, property) deviation sums and
// observation counts into the per-source losses Step I feeds to the
// weight scheme, applying the same count and property normalizations the
// in-process solver uses. Exported so the MapReduce driver — which
// aggregates the sums with a distributed job — produces weights identical
// to the serial solver's. The in-process solver's combineInto mirrors
// this arithmetic operation for operation on flat columns; the two must
// change together.
func CombineLossMatrix(sum [][]float64, cnt [][]int, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	K := len(sum)
	if K == 0 {
		return nil
	}
	M := len(sum[0])
	avg := make([][]float64, K)
	for k := 0; k < K; k++ {
		avg[k] = make([]float64, M)
		for m := 0; m < M; m++ {
			if cnt[k][m] > 0 {
				if cfg.DisableCountNormalization {
					avg[k][m] = sum[k][m]
				} else {
					avg[k][m] = sum[k][m] / float64(cnt[k][m])
				}
			}
		}
	}
	if !cfg.DisablePropNormalization {
		for m := 0; m < M; m++ {
			var max float64
			for k := 0; k < K; k++ {
				if avg[k][m] > max {
					max = avg[k][m]
				}
			}
			if max > 0 {
				for k := 0; k < K; k++ {
					avg[k][m] /= max
				}
			}
		}
	}
	losses := make([]float64, K)
	for k := 0; k < K; k++ {
		var total float64
		var nprops int
		for m := 0; m < M; m++ {
			if cnt[k][m] > 0 {
				total += avg[k][m]
				nprops++
			}
		}
		if nprops > 0 && !cfg.DisableCountNormalization {
			total /= float64(nprops)
		}
		losses[k] = total
	}
	return losses
}
