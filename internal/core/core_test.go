package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// planted builds a dataset with known truths: nGood reliable sources that
// almost always report the truth and nBad unreliable ones that usually
// don't, over nObj objects with one continuous and one categorical
// property. Returns the dataset and the planted truth table.
func planted(t *testing.T, seed int64, nGood, nBad, nObj int) (*data.Dataset, *data.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder()
	tempP := b.MustProperty("temp", data.Continuous)
	condP := b.MustProperty("cond", data.Categorical)
	conds := []string{"sunny", "rain", "snow", "cloudy"}
	condIDs := make([]int, len(conds))
	for i, c := range conds {
		condIDs[i] = b.CatValue(condP, c)
	}
	type truthRow struct {
		temp float64
		cond int
	}
	truths := make([]truthRow, nObj)
	var srcNames []string
	for k := 0; k < nGood; k++ {
		srcNames = append(srcNames, "good"+string(rune('A'+k)))
	}
	for k := 0; k < nBad; k++ {
		srcNames = append(srcNames, "bad"+string(rune('A'+k)))
	}
	for i := 0; i < nObj; i++ {
		obj := b.Object("obj" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26)) + string(rune('a'+i/260)))
		truths[i] = truthRow{temp: 50 + rng.Float64()*40, cond: condIDs[rng.Intn(len(conds))]}
		for k, name := range srcNames {
			src := b.Source(name)
			good := k < nGood
			temp := truths[i].temp
			cond := truths[i].cond
			if good {
				temp += rng.NormFloat64() * 0.5
			} else {
				temp += rng.NormFloat64() * 15
			}
			flip := 0.05
			if !good {
				flip = 0.7
			}
			if rng.Float64() < flip {
				cond = condIDs[rng.Intn(len(conds))]
			}
			b.ObserveIdx(src, obj, tempP, data.Float(temp))
			b.ObserveIdx(src, obj, condP, data.Cat(cond))
		}
	}
	d := b.Build()
	gt := data.NewTableFor(d)
	for i := 0; i < nObj; i++ {
		gt.SetAt(i, tempP, data.Float(truths[i].temp))
		gt.SetAt(i, condP, data.Cat(truths[i].cond))
	}
	return d, gt
}

func TestRunEmptyDataset(t *testing.T) {
	b := data.NewBuilder()
	if _, err := Run(b.Build(), Config{}); err != ErrEmptyDataset {
		t.Fatalf("err = %v, want ErrEmptyDataset", err)
	}
}

func TestRunRecoversPlantedTruths(t *testing.T) {
	d, gt := planted(t, 1, 3, 5, 120)
	res, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths.Count() != d.NumEntries() {
		t.Fatalf("truths cover %d of %d entries", res.Truths.Count(), d.NumEntries())
	}
	// Good sources must outweigh bad ones.
	var minGood, maxBad float64 = math.Inf(1), math.Inf(-1)
	for k := 0; k < d.NumSources(); k++ {
		if k < 3 {
			if res.Weights[k] < minGood {
				minGood = res.Weights[k]
			}
		} else if res.Weights[k] > maxBad {
			maxBad = res.Weights[k]
		}
	}
	if !(minGood > maxBad) {
		t.Fatalf("good-source weights %v do not dominate bad ones", res.Weights)
	}
	// Categorical accuracy: despite a 3-vs-5 minority of good sources,
	// CRH should recover nearly all conditions.
	var wrong, n int
	var absErr float64
	gt.ForEach(func(e int, want data.Value) {
		got, ok := res.Truths.Get(e)
		if !ok {
			t.Fatalf("entry %d missing from truths", e)
		}
		if d.Prop(d.EntryProp(e)).Type == data.Categorical {
			n++
			if got.C != want.C {
				wrong++
			}
		} else {
			absErr += math.Abs(got.F - want.F)
		}
	})
	if rate := float64(wrong) / float64(n); rate > 0.05 {
		t.Fatalf("categorical error rate = %v, want <= 0.05", rate)
	}
	if avg := absErr / 120; avg > 1.0 {
		t.Fatalf("mean absolute temp error = %v, want <= 1.0", avg)
	}
	if res.Iterations == 0 || len(res.Objective) != res.Iterations {
		t.Fatalf("iterations=%d objectives=%d", res.Iterations, len(res.Objective))
	}
	// Wall time is recorded alongside every objective sample.
	if len(res.IterTime) != res.Iterations {
		t.Fatalf("iterations=%d timings=%d", res.Iterations, len(res.IterTime))
	}
	for i, d := range res.IterTime {
		if d < 0 {
			t.Fatalf("iteration %d has negative wall time %v", i, d)
		}
	}
}

func TestCRHBeatsUnweightedBaselines(t *testing.T) {
	d, gt := planted(t, 2, 2, 6, 150)
	res, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Unweighted vote / median = one truth pass with uniform weights.
	uniform, err := Run(d, Config{MaxIters: 1, Scheme: uniformScheme{}})
	if err != nil {
		t.Fatal(err)
	}
	count := func(tb *data.Table) (wrong int) {
		gt.ForEach(func(e int, want data.Value) {
			if d.Prop(d.EntryProp(e)).Type != data.Categorical {
				return
			}
			got, _ := tb.Get(e)
			if got.C != want.C {
				wrong++
			}
		})
		return
	}
	if crh, base := count(res.Truths), count(uniform.Truths); crh >= base {
		t.Fatalf("CRH errors %d should be < voting errors %d", crh, base)
	}
}

// uniformScheme always returns unit weights — the Voting/Averaging regime.
type uniformScheme struct{}

func (uniformScheme) Name() string { return "uniform" }
func (uniformScheme) Weights(losses []float64) []float64 {
	ws := make([]float64, len(losses))
	for i := range ws {
		ws[i] = 1
	}
	return ws
}

// TestObjectiveNonIncreasing checks the block-coordinate-descent guarantee
// for the convex configuration the paper proves convergence for: ExpSum
// regularization (Eq 4) with squared losses (Eq 11, Eq 13), no per-property
// renormalization between steps.
func TestObjectiveNonIncreasing(t *testing.T) {
	d, _ := planted(t, 3, 2, 3, 60)
	res, err := Run(d, Config{
		ContinuousLoss:           loss.NormalizedSquared{},
		CategoricalLoss:          loss.SquaredProb{},
		Scheme:                   reg.ExpSum{},
		DisablePropNormalization: true,
		MaxIters:                 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Objective); i++ {
		if res.Objective[i] > res.Objective[i-1]+1e-9 {
			t.Fatalf("objective increased at iter %d: %v -> %v (series %v)",
				i, res.Objective[i-1], res.Objective[i], res.Objective)
		}
	}
	if !res.Converged {
		t.Fatal("expected convergence within 15 iterations")
	}
}

func TestConvergenceIsFast(t *testing.T) {
	d, _ := planted(t, 4, 3, 5, 100)
	res, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("CRH did not converge in default MaxIters")
	}
	if res.Iterations > 10 {
		t.Fatalf("took %d iterations; the paper observes convergence within a few", res.Iterations)
	}
}

func TestMissingValues(t *testing.T) {
	// Source "sparse" observes only one object but perfectly; source
	// "dense" observes everything with noise; source "junk" observes
	// everything and is wrong. Count normalization should keep sparse's
	// weight meaningful.
	b := data.NewBuilder()
	p := b.MustProperty("x", data.Continuous)
	for i := 0; i < 30; i++ {
		obj := b.Object(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		truth := float64(i)
		b.ObserveIdx(b.Source("dense"), obj, p, data.Float(truth+0.1))
		b.ObserveIdx(b.Source("junk"), obj, p, data.Float(truth+25))
		if i == 0 {
			b.ObserveIdx(b.Source("sparse"), obj, p, data.Float(truth))
		}
	}
	d := b.Build()
	res, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dense, junk := res.Weights[0], res.Weights[1]
	if !(dense > junk) {
		t.Fatalf("dense weight %v should exceed junk weight %v", dense, junk)
	}
	// Every observed entry has a truth; truths stay near dense's values.
	v, ok := res.Truths.GetAt(5, 0)
	if !ok {
		t.Fatal("entry missing")
	}
	if math.Abs(v.F-5.1) > 1.0 {
		t.Fatalf("truth = %v, want near 5.1", v.F)
	}
}

func TestUnobservedEntriesStayUnset(t *testing.T) {
	b := data.NewBuilder()
	p := b.MustProperty("x", data.Continuous)
	b.ObserveIdx(b.Source("s"), b.Object("o1"), p, data.Float(1))
	b.Object("o2") // never observed
	d := b.Build()
	res, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Truths.GetAt(1, 0); ok {
		t.Fatal("unobserved entry should have no truth")
	}
	if _, ok := res.Truths.GetAt(0, 0); !ok {
		t.Fatal("observed entry should have a truth")
	}
}

func TestSingleSource(t *testing.T) {
	b := data.NewBuilder()
	p := b.MustProperty("x", data.Continuous)
	c := b.MustProperty("c", data.Categorical)
	v := b.CatValue(c, "only")
	b.ObserveIdx(b.Source("s"), b.Object("o"), p, data.Float(42))
	b.ObserveIdx(b.Source("s"), b.Object("o"), c, data.Cat(v))
	res, err := Run(b.Build(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Truths.GetAt(0, 0)
	if got.F != 42 {
		t.Fatalf("single-source truth = %v, want 42", got.F)
	}
	gotC, _ := res.Truths.GetAt(0, 1)
	if int(gotC.C) != v {
		t.Fatal("single-source categorical truth wrong")
	}
	for _, w := range res.Weights {
		if math.IsInf(w, 0) || math.IsNaN(w) || w < 0 {
			t.Fatalf("weight = %v", w)
		}
	}
}

func TestAllSourcesAgree(t *testing.T) {
	b := data.NewBuilder()
	p := b.MustProperty("x", data.Continuous)
	for _, s := range []string{"a", "b", "c"} {
		b.ObserveIdx(b.Source(s), b.Object("o"), p, data.Float(7))
	}
	res, err := Run(b.Build(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Truths.GetAt(0, 0)
	if got.F != 7 {
		t.Fatalf("unanimous truth = %v, want 7", got.F)
	}
	for _, w := range res.Weights {
		if w != res.Weights[0] {
			t.Fatalf("agreeing sources should have equal weights: %v", res.Weights)
		}
	}
}

func TestInitTruths(t *testing.T) {
	d, gt := planted(t, 6, 3, 3, 40)
	res, err := Run(d, Config{InitTruths: gt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths.Count() == 0 {
		t.Fatal("no truths")
	}
	// Seeding with the ground truth must not hurt: good sources dominate.
	if !(res.Weights[0] > res.Weights[5]) {
		t.Fatalf("weights = %v", res.Weights)
	}
}

func TestSquaredProbConfiguration(t *testing.T) {
	d, gt := planted(t, 7, 3, 4, 100)
	res, err := Run(d, Config{CategoricalLoss: loss.SquaredProb{}})
	if err != nil {
		t.Fatal(err)
	}
	var wrong, n int
	gt.ForEach(func(e int, want data.Value) {
		if d.Prop(d.EntryProp(e)).Type != data.Categorical {
			return
		}
		n++
		got, _ := res.Truths.Get(e)
		if got.C != want.C {
			wrong++
		}
	})
	if rate := float64(wrong) / float64(n); rate > 0.08 {
		t.Fatalf("squared-prob error rate = %v", rate)
	}
}

func TestWeightedMeanConfiguration(t *testing.T) {
	d, gt := planted(t, 8, 3, 4, 100)
	res, err := Run(d, Config{ContinuousLoss: loss.NormalizedSquared{}})
	if err != nil {
		t.Fatal(err)
	}
	var absErr float64
	var n int
	gt.ForEach(func(e int, want data.Value) {
		if d.Prop(d.EntryProp(e)).Type != data.Continuous {
			return
		}
		n++
		got, _ := res.Truths.Get(e)
		absErr += math.Abs(got.F - want.F)
	})
	if avg := absErr / float64(n); avg > 2 {
		t.Fatalf("weighted-mean avg error = %v", avg)
	}
}

func TestTopJSchemeIntegration(t *testing.T) {
	d, _ := planted(t, 9, 2, 4, 60)
	res, err := Run(d, Config{Scheme: reg.TopJ{J: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var selected int
	for _, w := range res.Weights {
		if w == 1 {
			selected++
		} else if w != 0 {
			t.Fatalf("TopJ weight = %v, want 0 or 1", w)
		}
	}
	if selected != 2 {
		t.Fatalf("TopJ selected %d sources, want 2", selected)
	}
	// The two good sources should be the ones selected.
	if res.Weights[0] != 1 || res.Weights[1] != 1 {
		t.Fatalf("TopJ selected wrong sources: %v", res.Weights)
	}
}

func TestBestSourceSchemeIntegration(t *testing.T) {
	d, _ := planted(t, 10, 1, 5, 60)
	res, err := Run(d, Config{Scheme: reg.BestSource{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] != 1 {
		t.Fatalf("best source should be the good one: %v", res.Weights)
	}
}

func TestDeterminism(t *testing.T) {
	d, _ := planted(t, 11, 3, 3, 50)
	r1, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range r1.Weights {
		if r1.Weights[k] != r2.Weights[k] {
			t.Fatal("weights differ across runs")
		}
	}
	for e := 0; e < r1.Truths.Len(); e++ {
		v1, ok1 := r1.Truths.Get(e)
		v2, ok2 := r2.Truths.Get(e)
		if ok1 != ok2 || v1 != v2 {
			t.Fatal("truths differ across runs")
		}
	}
}
