package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// splitReliability builds a dataset where the weight-consistency
// assumption fails: source "tempGood" is accurate on the continuous
// property and terrible on the categorical one, while "condGood" is the
// reverse, and "mediocre" is middling on both.
func splitReliability(t *testing.T, seed int64, nObj int) (*data.Dataset, *data.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder()
	tempP := b.MustProperty("temp", data.Continuous)
	condP := b.MustProperty("cond", data.Categorical)
	cats := make([]int, 6)
	for i := range cats {
		cats[i] = b.CatValue(condP, string(rune('a'+i)))
	}
	gtTemp := make([]float64, nObj)
	gtCond := make([]int, nObj)
	observe := func(src string, tempStd, flip float64) {
		k := b.Source(src)
		for i := 0; i < nObj; i++ {
			b.ObserveIdx(k, i, tempP, data.Float(gtTemp[i]+rng.NormFloat64()*tempStd))
			c := gtCond[i]
			if rng.Float64() < flip {
				alt := cats[rng.Intn(len(cats)-1)]
				if alt >= c {
					alt++
				}
				c = alt
			}
			b.ObserveIdx(k, i, condP, data.Cat(c))
		}
	}
	for i := 0; i < nObj; i++ {
		b.Object(objName(i))
		gtTemp[i] = rng.Float64() * 100
		gtCond[i] = cats[rng.Intn(len(cats))]
	}
	observe("tempGood", 0.2, 0.75)
	observe("condGood", 18, 0.03)
	observe("mediocre", 6, 0.35)
	observe("mediocre2", 8, 0.40)
	d := b.Build()
	gt := data.NewTableFor(d)
	for i := 0; i < nObj; i++ {
		gt.SetAt(i, tempP, data.Float(gtTemp[i]))
		gt.SetAt(i, condP, data.Cat(gtCond[i]))
	}
	return d, gt
}

func objName(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func evalBoth(d *data.Dataset, truths, gt *data.Table) (errRate, absErr float64) {
	var wrong, catN, contN int
	gt.ForEach(func(e int, want data.Value) {
		got, ok := truths.Get(e)
		if !ok {
			return
		}
		if d.Prop(d.EntryProp(e)).Type == data.Categorical {
			catN++
			if got.C != want.C {
				wrong++
			}
		} else {
			contN++
			absErr += math.Abs(got.F - want.F)
		}
	})
	return float64(wrong) / float64(catN), absErr / float64(contN)
}

// TestPropertyGroupsBeatGlobalWeights is the headline for the fine-grained
// extension (Section 2.5, "Source weight consistency"): when sources have
// property-dependent reliability, per-property weights recover truths a
// single global weight cannot.
func TestPropertyGroupsBeatGlobalWeights(t *testing.T) {
	d, gt := splitReliability(t, 1, 400)
	global, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Run(d, Config{PropertyGroups: [][]int{{0}, {1}}})
	if err != nil {
		t.Fatal(err)
	}
	gErr, gAbs := evalBoth(d, global.Truths, gt)
	pErr, pAbs := evalBoth(d, grouped.Truths, gt)
	if !(pErr <= gErr) {
		t.Errorf("grouped error rate %v should not exceed global %v", pErr, gErr)
	}
	if !(pAbs < gAbs) {
		t.Errorf("grouped temp error %v should beat global %v", pAbs, gAbs)
	}
	// The grouped weights must reflect the split reliability: tempGood
	// tops the temp group, condGood tops the cond group.
	if grouped.GroupWeights == nil || len(grouped.GroupWeights) != 2 {
		t.Fatal("GroupWeights missing")
	}
	tempW, condW := grouped.GroupWeights[0], grouped.GroupWeights[1]
	if !(tempW[0] > tempW[1]) {
		t.Errorf("tempGood should dominate temp group: %v", tempW)
	}
	if !(condW[1] > condW[0]) {
		t.Errorf("condGood should dominate cond group: %v", condW)
	}
}

func TestPropertyGroupsValidation(t *testing.T) {
	d, _ := splitReliability(t, 2, 10)
	cases := [][][]int{
		{{0}},         // property 1 missing
		{{0, 1}, {1}}, // property 1 duplicated
		{{0, 5}},      // out of range
		{{}, {0, 1}},  // empty group
	}
	for i, groups := range cases {
		if _, err := Run(d, Config{PropertyGroups: groups}); err == nil {
			t.Errorf("case %d: expected validation error for %v", i, groups)
		}
	}
	// A valid single group behaves like the default.
	one, err := Run(d, Config{PropertyGroups: [][]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range def.Weights {
		if math.Abs(one.Weights[k]-def.Weights[k]) > 1e-12 {
			t.Fatal("single explicit group should equal the default")
		}
	}
}

// TestKnownTruthsPinning verifies semi-supervised operation: pinned
// entries are returned verbatim and sharpen the weight estimates.
func TestKnownTruthsPinning(t *testing.T) {
	d, gt := splitReliability(t, 3, 300)
	// Pin the first 30 objects' categorical truths.
	known := data.NewTableFor(d)
	pinned := 0
	gt.ForEach(func(e int, v data.Value) {
		if d.Prop(d.EntryProp(e)).Type == data.Categorical && d.EntryObject(e) < 30 {
			known.Set(e, v)
			pinned++
		}
	})
	if pinned != 30 {
		t.Fatalf("pinned %d", pinned)
	}
	res, err := Run(d, Config{KnownTruths: known})
	if err != nil {
		t.Fatal(err)
	}
	// Every pinned entry must come back exactly.
	known.ForEach(func(e int, want data.Value) {
		got, ok := res.Truths.Get(e)
		if !ok || got != want {
			t.Fatalf("pinned entry %d not honoured: got %v want %v", e, got, want)
		}
	})
	// Supervision should not hurt accuracy on the unpinned entries.
	unsup, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	countWrong := func(tb *data.Table) int {
		var wrong int
		gt.ForEach(func(e int, want data.Value) {
			if d.Prop(d.EntryProp(e)).Type != data.Categorical || d.EntryObject(e) < 30 {
				return
			}
			got, _ := tb.Get(e)
			if got.C != want.C {
				wrong++
			}
		})
		return wrong
	}
	if w1, w0 := countWrong(res.Truths), countWrong(unsup.Truths); w1 > w0 {
		t.Errorf("supervision increased unpinned errors: %d > %d", w1, w0)
	}
}

func TestKnownTruthsWithInitTruths(t *testing.T) {
	d, gt := splitReliability(t, 4, 50)
	known := data.NewTableFor(d)
	v, _ := gt.Get(0)
	known.Set(0, v)
	res, err := Run(d, Config{InitTruths: gt, KnownTruths: known})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.Truths.Get(0)
	if !ok || got != v {
		t.Fatal("pin lost when seeding with InitTruths")
	}
}

// TestEnsembleLoss checks the loss-ensemble extension end to end.
func TestEnsembleLoss(t *testing.T) {
	d, gt := splitReliability(t, 5, 200)
	ens := loss.EnsembleContinuous{Members: []loss.Continuous{
		loss.NormalizedAbsolute{}, loss.NormalizedSquared{},
	}}
	if ens.Name() != "ensemble(absolute+squared)" {
		t.Fatalf("name = %s", ens.Name())
	}
	res, err := Run(d, Config{ContinuousLoss: ens})
	if err != nil {
		t.Fatal(err)
	}
	_, absErr := evalBoth(d, res.Truths, gt)
	// The ensemble truth lies between median and mean; it must stay in
	// the same accuracy ballpark as its members.
	resAbs, err := Run(d, Config{ContinuousLoss: loss.NormalizedAbsolute{}})
	if err != nil {
		t.Fatal(err)
	}
	_, absErrMedian := evalBoth(d, resAbs.Truths, gt)
	if absErr > absErrMedian*2+1 {
		t.Fatalf("ensemble error %v far above member error %v", absErr, absErrMedian)
	}
}

func TestEnsembleMemberWeights(t *testing.T) {
	abs := loss.NormalizedAbsolute{}
	sq := loss.NormalizedSquared{}
	// Full weight on one member reduces to that member.
	e := loss.EnsembleContinuous{Members: []loss.Continuous{abs, sq}, MemberWeights: []float64{1, 0}}
	vals := []float64{1, 2, 100}
	ws := []float64{1, 1, 1}
	if got, want := e.Truth(vals, ws), abs.Truth(vals, ws); got != want {
		t.Fatalf("degenerate ensemble truth %v, want %v", got, want)
	}
	if got, want := e.Deviation(3, 7, 2), abs.Deviation(3, 7, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("degenerate ensemble deviation %v, want %v", got, want)
	}
	// Uniform ensemble deviation is the average of member deviations.
	u := loss.EnsembleContinuous{Members: []loss.Continuous{abs, sq}}
	want := (abs.Deviation(3, 7, 2) + sq.Deviation(3, 7, 2)) / 2
	if got := u.Deviation(3, 7, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform ensemble deviation %v, want %v", got, want)
	}
}

// longTail builds a dataset with a long-tail source: "lucky" observes
// only 4 entries (all correct by luck), "good" covers everything with
// small noise, and two bad sources cover everything with heavy noise.
// Under ExpMax the zero-loss lucky source dominates; CATD discounts it.
func longTail(t *testing.T, seed int64, nObj int) (*data.Dataset, *data.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder()
	p := b.MustProperty("x", data.Continuous)
	gt := make([]float64, nObj)
	for i := 0; i < nObj; i++ {
		b.Object(objName(i))
		gt[i] = rng.Float64() * 100
	}
	lucky := b.Source("lucky")
	good := b.Source("good")
	bad1 := b.Source("bad1")
	bad2 := b.Source("bad2")
	for i := 0; i < nObj; i++ {
		if i < 4 {
			b.ObserveIdx(lucky, i, p, data.Float(gt[i]))
		}
		b.ObserveIdx(good, i, p, data.Float(gt[i]+rng.NormFloat64()*0.5))
		b.ObserveIdx(bad1, i, p, data.Float(gt[i]+rng.NormFloat64()*15))
		b.ObserveIdx(bad2, i, p, data.Float(gt[i]+25*rng.NormFloat64()))
	}
	d := b.Build()
	tb := data.NewTableFor(d)
	for i := 0; i < nObj; i++ {
		tb.SetAt(i, 0, data.Float(gt[i]))
	}
	return d, tb
}

// TestCATDIntegration runs the confidence-aware scheme through the full
// solver on long-tail data and checks it corrects ExpMax's over-trust.
func TestCATDIntegration(t *testing.T) {
	d, _ := longTail(t, 7, 300)
	catd, err := Run(d, Config{Scheme: reg.CATD{}})
	if err != nil {
		t.Fatal(err)
	}
	// lucky=0, good=1: CATD must rank the dense good source first.
	if !(catd.Weights[1] > catd.Weights[0]) {
		t.Fatalf("CATD weights: good %v should outrank lucky %v", catd.Weights[1], catd.Weights[0])
	}
	if !(catd.Weights[1] > catd.Weights[2] && catd.Weights[1] > catd.Weights[3]) {
		t.Fatalf("CATD weights: good should outrank bad sources: %v", catd.Weights)
	}
	for _, w := range catd.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			t.Fatalf("bad weight %v", w)
		}
	}
	// ExpMax on the same data over-trusts the lucky source (the failure
	// mode CATD exists for).
	em, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !(em.Weights[0] >= em.Weights[1]) {
		t.Skipf("ExpMax did not over-trust the lucky source on this seed: %v", em.Weights)
	}
}

// TestParallelismEquivalence: the multi-worker solver must produce the
// same truths as the sequential one. (The engine's actual guarantee is
// stronger — bit-for-bit identity, enforced by equivalence_test.go —
// this older test survives as an independent tolerance-level check.)
func TestParallelismEquivalence(t *testing.T) {
	d, _ := splitReliability(t, 9, 500)
	seq, err := Run(d, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7, 16} {
		par, err := Run(d, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < d.NumEntries(); e++ {
			sv, sok := seq.Truths.Get(e)
			pv, pok := par.Truths.Get(e)
			if sok != pok {
				t.Fatalf("workers=%d entry %d presence differs", workers, e)
			}
			if !sok {
				continue
			}
			if d.Prop(d.EntryProp(e)).Type == data.Categorical {
				if sv.C != pv.C {
					t.Fatalf("workers=%d entry %d categorical differs", workers, e)
				}
			} else if math.Abs(sv.F-pv.F) > 1e-9 {
				t.Fatalf("workers=%d entry %d continuous differs: %v vs %v", workers, e, sv.F, pv.F)
			}
		}
		for k := range seq.Weights {
			if math.Abs(seq.Weights[k]-par.Weights[k]) > 1e-9 {
				t.Fatalf("workers=%d weight %d differs: %v vs %v", workers, k, seq.Weights[k], par.Weights[k])
			}
		}
	}
}

// TestParallelismDeterminism: a fixed worker budget must be bit-for-bit
// reproducible run to run.
func TestParallelismDeterminism(t *testing.T) {
	d, _ := splitReliability(t, 10, 300)
	r1, err := Run(d, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < d.NumEntries(); e++ {
		v1, ok1 := r1.Truths.Get(e)
		v2, ok2 := r2.Truths.Get(e)
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("entry %d differs across identical parallel runs", e)
		}
	}
	for k := range r1.Weights {
		if r1.Weights[k] != r2.Weights[k] {
			t.Fatal("weights differ across identical parallel runs")
		}
	}
}

// TestParallelismMoreWorkersThanEntries survives the degenerate split.
func TestParallelismMoreWorkersThanEntries(t *testing.T) {
	b := data.NewBuilder()
	p := b.MustProperty("x", data.Continuous)
	b.ObserveIdx(b.Source("s1"), b.Object("o1"), p, data.Float(1))
	b.ObserveIdx(b.Source("s2"), b.Object("o1"), p, data.Float(3))
	res, err := Run(b.Build(), Config{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths.Count() != 1 {
		t.Fatal("truth missing")
	}
}

func TestConfidenceScores(t *testing.T) {
	b := data.NewBuilder()
	cp := b.MustProperty("c", data.Categorical)
	x := b.CatValue(cp, "x")
	y := b.CatValue(cp, "y")
	np := b.MustProperty("n", data.Continuous)
	// Object 0: s1-s3 unanimous, s4 (the designated worst source, so
	// the dissenter s3 keeps nonzero weight under exp-max) errs.
	// Object 1: s3 dissents on both properties.
	for i, src := range []string{"s1", "s2", "s3"} {
		obj := b.Object("o0")
		b.ObserveIdx(b.Source(src), obj, cp, data.Cat(x))
		b.ObserveIdx(b.Source(src), obj, np, data.Float(10+float64(i)*0.01))
	}
	b.ObserveIdx(b.Source("s4"), b.Object("o0"), cp, data.Cat(y))
	b.ObserveIdx(b.Source("s4"), b.Object("o0"), np, data.Float(-400))
	o1 := b.Object("o1")
	b.ObserveIdx(b.Source("s1"), o1, cp, data.Cat(x))
	b.ObserveIdx(b.Source("s2"), o1, cp, data.Cat(x))
	b.ObserveIdx(b.Source("s3"), o1, cp, data.Cat(y))
	b.ObserveIdx(b.Source("s4"), o1, cp, data.Cat(y))
	b.ObserveIdx(b.Source("s1"), o1, np, data.Float(5))
	b.ObserveIdx(b.Source("s2"), o1, np, data.Float(5.1))
	b.ObserveIdx(b.Source("s3"), o1, np, data.Float(500))
	b.ObserveIdx(b.Source("s4"), o1, np, data.Float(-300))
	d := b.Build()

	res, err := Run(d, Config{ComputeConfidence: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence == nil || len(res.Confidence) != d.NumEntries() {
		t.Fatal("confidence missing")
	}
	// Near-unanimous entry (only the zero-weight worst source errs):
	// confidence ≈ 1.
	if c := res.Confidence[d.Entry(0, 0)]; c < 0.95 {
		t.Fatalf("near-unanimous categorical confidence = %v", c)
	}
	// Contested entries score strictly lower than unanimous ones.
	if !(res.Confidence[d.Entry(1, 0)] < res.Confidence[d.Entry(0, 0)]) {
		t.Fatalf("contested categorical confidence %v not below unanimous", res.Confidence[d.Entry(1, 0)])
	}
	if !(res.Confidence[d.Entry(1, 1)] < 1) {
		t.Fatalf("outlier-contested continuous confidence = %v", res.Confidence[d.Entry(1, 1)])
	}
	for _, c := range res.Confidence {
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Fatalf("confidence %v out of range", c)
		}
	}
	// Off by default.
	res2, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Confidence != nil {
		t.Fatal("confidence computed without opt-in")
	}
}
