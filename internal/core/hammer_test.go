package core

import (
	"sync"
	"testing"
)

// TestRunHammerSharedPool drives many concurrent Run calls through one
// shared Pool with mixed worker budgets — the exact load shape crhd puts
// on the solver — and requires every result to stay bit-identical to
// the sequential reference. Run under the race detector by `make
// racehammer`, this is the proof that pool sharing neither races nor
// perturbs a single bit of output.
func TestRunHammerSharedPool(t *testing.T) {
	d := synthesize(equivCase{"mixed", 2, 2, 10, 200, 0.3}, 29)
	ref, err := Run(d, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				workers := 1 + (g+r)%8
				got, err := Run(d, Config{Workers: workers, Pool: pool})
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				for e := 0; e < d.NumEntries(); e++ {
					rv, rok := ref.Truths.Get(e)
					gv, gok := got.Truths.Get(e)
					if rok != gok || rv.C != gv.C || !bitsEq(rv.F, gv.F) {
						t.Errorf("goroutine %d round %d workers=%d: entry %d diverged", g, r, workers, e)
						return
					}
				}
				for k := range ref.Weights {
					if !bitsEq(ref.Weights[k], got.Weights[k]) {
						t.Errorf("goroutine %d round %d workers=%d: weight %d diverged", g, r, workers, k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolConcurrentDo hammers the pool primitive itself: overlapping Do
// calls with budgets larger than the pool must each run all their tasks
// exactly once.
func TestPoolConcurrentDo(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	const callers = 6
	const tasks = 512
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				hits := make([]int, tasks)
				pool.Do(tasks, 1+(c+round)%9, func(i int) { hits[i]++ })
				for i, h := range hits {
					if h != 1 {
						t.Errorf("caller %d round %d: task %d ran %d times", c, round, i, h)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestPoolCloseIdempotent: Close must be safe to call twice and must not
// wedge Do calls issued before it on other goroutines' completed jobs.
func TestPoolCloseIdempotent(t *testing.T) {
	pool := NewPool(2)
	done := make([]int, 64)
	pool.Do(len(done), 4, func(i int) { done[i] = 1 })
	for i, v := range done {
		if v != 1 {
			t.Fatalf("task %d did not run", i)
		}
	}
	pool.Close()
	pool.Close()
	if pool.Workers() != 2 {
		t.Fatalf("Workers() = %d after Close, want 2", pool.Workers())
	}
	// Do after Close must still complete: the submitting goroutine picks
	// up every task itself when no worker accepts the job.
	ran := 0
	pool.Do(8, 4, func(int) { ran++ })
	if ran != 8 {
		t.Fatalf("post-Close Do ran %d of 8 tasks", ran)
	}
}
