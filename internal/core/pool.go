package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shard plan. The truth-update and loss-accumulation phases are
// embarrassingly parallel across entries, but floating-point summation is
// not associative: any scheme whose reduction order depends on the worker
// count produces answers that drift by rounding when the worker count
// changes. The engine therefore partitions the entry range into contiguous
// shards whose boundaries depend only on the entry count — never on
// Workers, GOMAXPROCS, or scheduling — computes an independent partial
// result per shard, and merges the partials in ascending shard order. Any
// worker count, including the sequential path, performs bit-for-bit the
// same additions in the same order. docs/PARALLEL.md states the contract.
const (
	// shardTargetSize is the load-balancing granule: shards hold about
	// this many entries so slow shards (entries with many observers) can
	// be stolen around.
	shardTargetSize = 64
	// maxShards caps the shard count, bounding the per-shard partial
	// matrices the loss accumulation keeps alive at once.
	maxShards = 256
)

// numShards returns the shard count for n entries — a pure function of n,
// which is what makes the reduction order worker-count independent.
func numShards(n int) int {
	if n <= 0 {
		return 0
	}
	s := (n + shardTargetSize - 1) / shardTargetSize
	if s > maxShards {
		s = maxShards
	}
	return s
}

// shardBounds returns shard sh's half-open entry range under an even
// contiguous split of n entries into nsh shards.
func shardBounds(n, sh, nsh int) (lo, hi int) {
	return sh * n / nsh, (sh + 1) * n / nsh
}

// Pool is a reusable, fixed-size worker pool for solver runs. A single
// Pool may be shared by any number of concurrent Run calls — crhd shares
// one across all resolve requests so concurrent requests never
// oversubscribe the machine — because the pool's goroutine count, not the
// per-run worker budget, bounds total solver concurrency. Sharing a pool
// never changes results: the engine's output is bit-for-bit identical for
// every worker count.
//
// The zero value is not usable; create one with NewPool. A nil *Pool is
// valid everywhere a Pool is accepted and means "no shared pool": each
// run spawns its own transient workers.
type Pool struct {
	workers int
	jobs    chan *poolJob
	quit    chan struct{}
	once    sync.Once
}

// poolJob is one parallel region: a bag of nTasks tasks claimed via an
// atomic cursor. The submitting goroutine always works the job too, so a
// job finishes even when every pool worker is busy elsewhere.
type poolJob struct {
	task func(int)
	next atomic.Int64
	n    int64
	done sync.WaitGroup // one count per task
}

// run claims tasks until the bag is empty.
func (j *poolJob) run() {
	for {
		t := j.next.Add(1) - 1
		if t >= j.n {
			return
		}
		j.task(int(t))
		j.done.Done()
	}
}

// NewPool starts a pool with the given number of worker goroutines
// (0 selects GOMAXPROCS). Close releases them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		jobs:    make(chan *poolJob, workers),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's goroutine count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker() {
	for {
		select {
		case j := <-p.jobs:
			j.run()
		case <-p.quit:
			return
		}
	}
}

// Close stops the pool's workers. It must not be called while a Run using
// the pool is in flight; in-flight jobs already claimed keep running to
// completion on the submitting goroutine.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.quit) })
}

// Do executes task(0..n-1) with at most budget goroutines working this
// job concurrently: the caller plus up to budget-1 pool workers. The
// offer to the pool is non-blocking — when the pool is saturated by other
// jobs the caller simply does more of the work itself — and the call
// returns only when every task has run.
func (p *Pool) Do(n, budget int, task func(int)) {
	j := &poolJob{task: task, n: int64(n)}
	j.done.Add(n)
	helpers := budget - 1
	if helpers > p.workers {
		helpers = p.workers
	}
	if helpers > n-1 {
		helpers = n - 1
	}
offer:
	for i := 0; i < helpers; i++ {
		select {
		case p.jobs <- j:
		default:
			break offer // pool saturated; the caller picks up the slack
		}
	}
	j.run()
	j.done.Wait()
}
