package core

import (
	"math/rand"
	"testing"

	"github.com/crhkit/crh/internal/data"
)

// Metamorphic properties of the columnar freeze, at medium scale. The
// frozen columns are gathered from the dataset's dense per-source
// storage, never from builder insertion order, so two transformations
// must be exactly invisible — not approximately, bit for bit:
//
//   - permuting the order observations are fed to the Builder, and
//   - injecting duplicate claims that an earlier observation of the
//     same (source, entry) later overwrites (Build keeps the last).
//
// These run on a dataset an order of magnitude larger than the other
// metamorphic cases so the freeze's CSR layout, the dictionary interning
// and the shard partials all operate well past their small-case paths.

const (
	mcSources = 12
	mcObjects = 500
)

// mcObservations generates the medium-scale canonical observation list
// on the shared 4-property schema (f0, f1 continuous; c0, c1
// categorical), one claim per (source, entry) so any reordering is a
// pure permutation.
func mcObservations(seed int64) []mObs {
	rng := rand.New(rand.NewSource(seed))
	var out []mObs
	for o := 0; o < mcObjects; o++ {
		for p := 0; p < metaProps; p++ {
			truthF := rng.Float64() * 50
			truthC := rng.Intn(metaCats)
			for k := 0; k < mcSources; k++ {
				if rng.Float64() < 0.3 {
					continue
				}
				var v data.Value
				if p < 2 {
					v = data.Float(truthF + rng.NormFloat64()*(0.5+0.4*float64(k)))
				} else {
					c := truthC
					if rng.Float64() < 0.05*float64(k+1) {
						c = rng.Intn(metaCats)
					}
					v = data.Cat(c)
				}
				out = append(out, mObs{src: k, obj: o, prop: p, v: v})
			}
		}
	}
	return out
}

// mcRun builds the dataset with canonical source/object interning and
// solves it under the pinned-iteration config.
func mcRun(t *testing.T, obsList []mObs) *Result {
	t.Helper()
	res, err := Run(buildMeta(obsList, seqInts(mcSources), seqInts(mcObjects)), metaConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mcAssertBitIdentical compares two results entry-for-entry and
// source-for-source at the bit level.
func mcAssertBitIdentical(t *testing.T, base, got *Result, what string) {
	t.Helper()
	if base.Iterations != got.Iterations {
		t.Fatalf("%s: iterations differ: %d vs %d", what, base.Iterations, got.Iterations)
	}
	for k := range base.Weights {
		if !bitsEq(base.Weights[k], got.Weights[k]) {
			t.Fatalf("%s: weight[%d] differs: %v vs %v", what, k, base.Weights[k], got.Weights[k])
		}
	}
	for e := 0; e < mcObjects*metaProps; e++ {
		bv, bok := base.Truths.Get(e)
		gv, gok := got.Truths.Get(e)
		if bok != gok {
			t.Fatalf("%s: entry %d presence differs", what, e)
		}
		if !bok {
			continue
		}
		if bv.C != gv.C || !bitsEq(bv.F, gv.F) {
			t.Fatalf("%s: entry %d truth differs: %+v vs %+v", what, e, bv, gv)
		}
	}
}

// TestMetamorphicInsertionOrder: the order observations reach the
// Builder is erased by the dense per-source storage before the freeze
// ever sees it, so a shuffled feed must reproduce the canonical run bit
// for bit.
func TestMetamorphicInsertionOrder(t *testing.T) {
	obsList := mcObservations(31)
	base := mcRun(t, obsList)
	shuffled := append([]mObs(nil), obsList...)
	rand.New(rand.NewSource(4)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	mcAssertBitIdentical(t, base, mcRun(t, shuffled), "insertion-order permutation")
}

// TestMetamorphicDuplicateClaims: Build keeps the last value recorded
// per (source, entry), so decoy claims that a later canonical claim
// overwrites — and exact repeats of the canonical claim itself — must
// leave the frozen columns, and therefore the solve, bit-identical.
func TestMetamorphicDuplicateClaims(t *testing.T) {
	obsList := mcObservations(32)
	base := mcRun(t, obsList)

	rng := rand.New(rand.NewSource(5))
	decoys := make([]mObs, 0, len(obsList)/4)
	for _, ob := range obsList {
		switch {
		case rng.Float64() < 0.15:
			// A conflicting decoy the canonical claim later overwrites.
			d := ob
			if d.prop < 2 {
				d.v = data.Float(d.v.F + 7.5)
			} else {
				d.v = data.Cat((int(d.v.C) + 1) % metaCats)
			}
			decoys = append(decoys, d)
		case rng.Float64() < 0.1:
			// An exact repeat; last-wins makes it a no-op either way.
			decoys = append(decoys, ob)
		}
	}
	if len(decoys) < len(obsList)/20 {
		t.Fatalf("generator produced too few duplicates (%d) to exercise last-wins", len(decoys))
	}
	// Every decoy precedes its canonical claim, so Build's last-wins
	// rule restores the canonical dataset exactly.
	withDups := append(decoys, obsList...)
	mcAssertBitIdentical(t, base, mcRun(t, withDups), "duplicate-claim injection")
}
