package core

import (
	"math"
	"testing"

	"github.com/crhkit/crh/internal/obs"
)

// TestTraceHook verifies the solver emits one record per iteration with
// the objective curve, phase timings, and weight summary, and that the
// final record carries the convergence flag.
func TestTraceHook(t *testing.T) {
	d, _ := planted(t, 5, 3, 5, 80)
	var recs []obs.IterationTrace
	res, err := Run(d, Config{Trace: obs.TraceFunc(func(r obs.IterationTrace) {
		recs = append(recs, r)
	})})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Iterations {
		t.Fatalf("got %d trace records for %d iterations", len(recs), res.Iterations)
	}
	for i, r := range recs {
		if r.Iteration != i+1 {
			t.Fatalf("record %d numbered %d", i, r.Iteration)
		}
		if math.Abs(r.Objective-res.Objective[i]) > 1e-12 {
			t.Fatalf("record %d objective %v != result objective %v", i, r.Objective, res.Objective[i])
		}
		if r.WeightPhase < 0 || r.TruthPhase < 0 || r.ObjectivePhase < 0 {
			t.Fatalf("record %d has negative phase times: %+v", i, r)
		}
		if r.Weights.Min > r.Weights.Max {
			t.Fatalf("record %d weight summary inverted: %+v", i, r.Weights)
		}
		if r.TruthChanges < 0 || r.TruthChanges > d.NumEntries() {
			t.Fatalf("record %d truth changes %d out of range", i, r.TruthChanges)
		}
	}
	last := recs[len(recs)-1]
	if last.Converged != res.Converged {
		t.Fatalf("final record converged=%v, result converged=%v", last.Converged, res.Converged)
	}
	// The first iteration moves truths away from the uniform-weight
	// initialization on this planted dataset.
	if recs[0].TruthChanges == 0 {
		t.Fatal("first iteration reported zero truth changes")
	}
	// Tracing must not perturb the solve: same dataset, no trace.
	plain, err := Run(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != res.Iterations {
		t.Fatalf("traced run took %d iterations, untraced %d", res.Iterations, plain.Iterations)
	}
	for i := range plain.Objective {
		if math.Abs(plain.Objective[i]-res.Objective[i]) > 1e-12 {
			t.Fatalf("objective diverged at iteration %d: %v vs %v", i, plain.Objective[i], res.Objective[i])
		}
	}
}

// TestTraceWeightSummaryGroups pins which weights the trace summarizes
// when property groups are configured: the first group's.
func TestTraceWeightSummaryGroups(t *testing.T) {
	d, _ := planted(t, 6, 2, 3, 40)
	var last obs.IterationTrace
	res, err := Run(d, Config{
		PropertyGroups: [][]int{{0}, {1}},
		Trace:          obs.TraceFunc(func(r obs.IterationTrace) { last = r }),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := obs.SummarizeWeights(res.GroupWeights[0])
	if math.Abs(last.Weights.Max-want.Max) > 1e-12 || math.Abs(last.Weights.Entropy-want.Entropy) > 1e-12 {
		t.Fatalf("trace summary %+v != first-group summary %+v", last.Weights, want)
	}
}
