package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
)

// The determinism-equivalence suite: for a grid of synthetic datasets and
// solver configurations, Run with any worker budget must produce output
// bit-for-bit identical to the sequential run — truth tables, weights,
// confidence, and the full objective trajectory, compared by exact float
// bits, never ApproxEq. This is the contract docs/PARALLEL.md states and
// the shard-order reduction exists to uphold.

// equivGrid is the synthetic dataset grid: continuous-only,
// categorical-only, mixed, missing-heavy, tiny (fewer entries than one
// shard), and large enough to hit the maxShards cap.
type equivCase struct {
	name    string
	nCont   int     // continuous properties
	nCat    int     // categorical properties
	sources int     //
	objects int     //
	missing float64 // probability an observation is dropped
}

var equivGrid = []equivCase{
	{"continuous", 3, 0, 10, 300, 0.2},
	{"categorical", 0, 3, 8, 300, 0.2},
	{"mixed", 2, 2, 12, 250, 0.3},
	{"missing-heavy", 2, 2, 9, 400, 0.85},
	{"tiny", 1, 1, 2, 3, 0},
	{"sharded-max", 1, 1, 6, 9000, 0.5},
}

// synthesize builds one grid dataset: a planted truth per entry, sources
// of graduated reliability, and a deterministic seeded corruption model.
func synthesize(c equivCase, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder()
	var props []int
	var kinds []data.Type
	for i := 0; i < c.nCont; i++ {
		props = append(props, b.MustProperty(fmt.Sprintf("f%d", i), data.Continuous))
		kinds = append(kinds, data.Continuous)
	}
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < c.nCat; i++ {
		p := b.MustProperty(fmt.Sprintf("c%d", i), data.Categorical)
		for _, s := range cats {
			b.CatValue(p, s)
		}
		props = append(props, p)
		kinds = append(kinds, data.Categorical)
	}
	for o := 0; o < c.objects; o++ {
		obj := b.Object(fmt.Sprintf("obj%06d", o))
		for pi, p := range props {
			truthF := rng.Float64() * 100
			truthC := rng.Intn(len(cats))
			for k := 0; k < c.sources; k++ {
				if rng.Float64() < c.missing {
					continue
				}
				src := b.Source(fmt.Sprintf("src%03d", k))
				noise := 0.2 + 3*float64(k)/float64(c.sources)
				if kinds[pi] == data.Continuous {
					b.ObserveIdx(src, obj, p, data.Float(truthF+rng.NormFloat64()*noise))
				} else {
					v := truthC
					if rng.Float64() < 0.1*noise {
						v = rng.Intn(len(cats))
					}
					b.ObserveIdx(src, obj, p, data.Cat(v))
				}
			}
		}
	}
	return b.Build()
}

// equivConfigs returns the solver configurations the grid runs under.
// KnownTruths and PropertyGroups variants are added per-dataset where
// they apply.
func equivConfigs() map[string]Config {
	return map[string]Config{
		"default": {},
		"squared-prob-expsum": {
			ContinuousLoss:  loss.NormalizedSquared{},
			CategoricalLoss: loss.SquaredProb{},
			Scheme:          reg.ExpSum{},
		},
		"catd-confidence": {
			Scheme:            reg.CATD{},
			ComputeConfidence: true,
		},
	}
}

// bitsEq compares floats by representation: the equivalence contract is
// exact, so even a one-ulp summation difference must fail.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// requireBitIdentical fails unless the two results are indistinguishable
// bit for bit.
func requireBitIdentical(t *testing.T, d *data.Dataset, ref, got *Result, label string) {
	t.Helper()
	if ref.Iterations != got.Iterations || ref.Converged != got.Converged {
		t.Fatalf("%s: iterations/converged differ: (%d,%t) vs (%d,%t)",
			label, ref.Iterations, ref.Converged, got.Iterations, got.Converged)
	}
	if len(ref.Objective) != len(got.Objective) {
		t.Fatalf("%s: objective trajectory lengths differ: %d vs %d", label, len(ref.Objective), len(got.Objective))
	}
	for i := range ref.Objective {
		if !bitsEq(ref.Objective[i], got.Objective[i]) {
			t.Fatalf("%s: objective[%d] differs: %x vs %x (%v vs %v)", label, i,
				math.Float64bits(ref.Objective[i]), math.Float64bits(got.Objective[i]),
				ref.Objective[i], got.Objective[i])
		}
	}
	for k := range ref.Weights {
		if !bitsEq(ref.Weights[k], got.Weights[k]) {
			t.Fatalf("%s: weight[%d] differs: %v vs %v", label, k, ref.Weights[k], got.Weights[k])
		}
	}
	if len(ref.GroupWeights) != len(got.GroupWeights) {
		t.Fatalf("%s: group-weight shapes differ", label)
	}
	for g := range ref.GroupWeights {
		for k := range ref.GroupWeights[g] {
			if !bitsEq(ref.GroupWeights[g][k], got.GroupWeights[g][k]) {
				t.Fatalf("%s: group weight [%d][%d] differs", label, g, k)
			}
		}
	}
	for e := 0; e < d.NumEntries(); e++ {
		rv, rok := ref.Truths.Get(e)
		gv, gok := got.Truths.Get(e)
		if rok != gok {
			t.Fatalf("%s: entry %d presence differs", label, e)
		}
		if !rok {
			continue
		}
		if rv.C != gv.C || !bitsEq(rv.F, gv.F) {
			t.Fatalf("%s: entry %d truth differs: %+v vs %+v", label, e, rv, gv)
		}
	}
	if (ref.Confidence == nil) != (got.Confidence == nil) {
		t.Fatalf("%s: confidence presence differs", label)
	}
	for e := range ref.Confidence {
		if !bitsEq(ref.Confidence[e], got.Confidence[e]) {
			t.Fatalf("%s: confidence[%d] differs: %v vs %v", label, e, ref.Confidence[e], got.Confidence[e])
		}
	}
}

// workerGrid returns the worker budgets the suite compares against the
// sequential reference. GOMAXPROCS is pinned explicitly so the grid is
// the same on every machine, whatever the scheduler offers.
func workerGrid() []int {
	return []int{2, 3, 8, runtime.GOMAXPROCS(0)}
}

func TestEquivalenceBitIdenticalAcrossWorkers(t *testing.T) {
	for ci, c := range equivGrid {
		d := synthesize(c, int64(100+ci))
		for cfgName, cfg := range equivConfigs() {
			seqCfg := cfg
			seqCfg.Workers = 1
			ref, err := Run(d, seqCfg)
			if err != nil {
				t.Fatalf("%s/%s: sequential run failed: %v", c.name, cfgName, err)
			}
			for _, w := range workerGrid() {
				parCfg := cfg
				parCfg.Workers = w
				got, err := Run(d, parCfg)
				if err != nil {
					t.Fatalf("%s/%s/workers=%d: %v", c.name, cfgName, w, err)
				}
				requireBitIdentical(t, d, ref, got,
					fmt.Sprintf("%s/%s/workers=%d", c.name, cfgName, w))
			}
		}
	}
}

// TestEquivalencePropertyGroups covers the per-group weight path, whose
// loss matrix is assembled column-by-column from the shared sums.
func TestEquivalencePropertyGroups(t *testing.T) {
	d := synthesize(equivCase{"mixed", 2, 2, 12, 250, 0.3}, 7)
	cfg := Config{PropertyGroups: [][]int{{0, 2}, {1, 3}}, Workers: 1}
	ref, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerGrid() {
		cfg.Workers = w
		got, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, d, ref, got, fmt.Sprintf("groups/workers=%d", w))
	}
}

// TestEquivalenceKnownTruths covers the semi-supervised path: pinned
// entries skip re-estimation but still feed the loss sums.
func TestEquivalenceKnownTruths(t *testing.T) {
	d := synthesize(equivCase{"mixed", 2, 2, 9, 200, 0.25}, 11)
	known := data.NewTableFor(d)
	for e := 0; e < d.NumEntries(); e += 17 {
		if d.Prop(d.EntryProp(e)).Type == data.Categorical {
			known.Set(e, data.Cat(1))
		} else {
			known.Set(e, data.Float(42))
		}
	}
	cfg := Config{KnownTruths: known, Workers: 1}
	ref, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerGrid() {
		cfg.Workers = w
		got, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, d, ref, got, fmt.Sprintf("known/workers=%d", w))
	}
}

// TestEquivalenceSharedPool: routing the same budgets through a shared
// Pool must not change a single bit either.
func TestEquivalenceSharedPool(t *testing.T) {
	d := synthesize(equivCase{"mixed", 2, 2, 10, 300, 0.3}, 13)
	ref, err := Run(d, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()
	for _, w := range workerGrid() {
		got, err := Run(d, Config{Workers: w, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, d, ref, got, fmt.Sprintf("pool/workers=%d", w))
	}
}

// TestEquivalenceHelpers: the one-pass helpers the streaming and
// MapReduce variants reuse obey the same contract.
func TestEquivalenceHelpers(t *testing.T) {
	d := synthesize(equivCase{"mixed", 2, 2, 8, 300, 0.3}, 17)
	weights := make([]float64, d.NumSources())
	for k := range weights {
		weights[k] = 0.25 + float64(k)*0.5
	}
	refT := AggregateTruths(d, weights, Config{Workers: 1})
	refL := SourceLosses(d, refT, weights, Config{Workers: 1})
	for _, w := range workerGrid() {
		gotT := AggregateTruths(d, weights, Config{Workers: w})
		for e := 0; e < d.NumEntries(); e++ {
			rv, rok := refT.Get(e)
			gv, gok := gotT.Get(e)
			if rok != gok || rv.C != gv.C || !bitsEq(rv.F, gv.F) {
				t.Fatalf("workers=%d: AggregateTruths entry %d differs", w, e)
			}
		}
		gotL := SourceLosses(d, gotT, weights, Config{Workers: w})
		for k := range refL {
			if !bitsEq(refL[k], gotL[k]) {
				t.Fatalf("workers=%d: SourceLosses[%d] differs: %v vs %v", w, k, refL[k], gotL[k])
			}
		}
	}
}
