package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/reg"
	"github.com/crhkit/crh/internal/stats"
)

// Metamorphic properties of the solver: relabeling sources, relabeling
// objects, or rescaling every weight by a constant must not change what
// CRH concludes — only how the conclusion is indexed. Permutations
// change floating-point summation order, so those assertions go through
// stats.ApproxEq; the weight-scale property is exact for a power-of-two
// factor and is asserted bit-for-bit.

// mObs is one canonical observation, by stable integer labels, so the
// same logical dataset can be materialized under different internment
// orders.
type mObs struct {
	src, obj, prop int
	v              data.Value
}

const (
	metaSources = 8
	metaObjects = 120
	metaProps   = 4 // f0, f1 continuous; c0, c1 categorical
	metaCats    = 4
)

// metaObservations generates the canonical observation list: planted
// truths, graduated source noise, 30% missingness.
func metaObservations(seed int64) []mObs {
	rng := rand.New(rand.NewSource(seed))
	var out []mObs
	for o := 0; o < metaObjects; o++ {
		for p := 0; p < metaProps; p++ {
			truthF := rng.Float64() * 50
			truthC := rng.Intn(metaCats)
			for k := 0; k < metaSources; k++ {
				if rng.Float64() < 0.3 {
					continue
				}
				var v data.Value
				if p < 2 {
					v = data.Float(truthF + rng.NormFloat64()*(0.5+float64(k)))
				} else {
					c := truthC
					if rng.Float64() < 0.08*float64(k+1) {
						c = rng.Intn(metaCats)
					}
					v = data.Cat(c)
				}
				out = append(out, mObs{src: k, obj: o, prop: p, v: v})
			}
		}
	}
	return out
}

func metaSrcName(k int) string { return fmt.Sprintf("s%02d", k) }
func metaObjName(o int) string { return fmt.Sprintf("o%04d", o) }

// buildMeta materializes the observation list, interning sources and
// objects in the given orders; srcOrder[i] (an original label) becomes
// source index i of the built dataset, and likewise for objects.
// Properties and categorical values are always interned canonically.
func buildMeta(obsList []mObs, srcOrder, objOrder []int) *data.Dataset {
	b := data.NewBuilder()
	props := []int{
		b.MustProperty("f0", data.Continuous),
		b.MustProperty("f1", data.Continuous),
		b.MustProperty("c0", data.Categorical),
		b.MustProperty("c1", data.Categorical),
	}
	for _, p := range props[2:] {
		for c := 0; c < metaCats; c++ {
			b.CatValue(p, fmt.Sprintf("v%d", c))
		}
	}
	for _, k := range srcOrder {
		b.Source(metaSrcName(k))
	}
	for _, o := range objOrder {
		b.Object(metaObjName(o))
	}
	for _, ob := range obsList {
		b.ObserveIdx(b.Source(metaSrcName(ob.src)), b.Object(metaObjName(ob.obj)), props[ob.prop], ob.v)
	}
	return b.Build()
}

func seqInts(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// metaConfig pins the iteration count (Tol below any achievable relative
// decrease) so both runs of a metamorphic pair execute the same number
// of iterations even when rounding shifts the objective by an ulp near
// the convergence threshold.
func metaConfig() Config {
	return Config{MaxIters: 12, Tol: 1e-300}
}

// TestMetamorphicSourcePermutation: relabeling the sources permutes the
// weight vector and nothing else.
func TestMetamorphicSourcePermutation(t *testing.T) {
	obsList := metaObservations(21)
	base, err := Run(buildMeta(obsList, seqInts(metaSources), seqInts(metaObjects)), metaConfig())
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(2)).Perm(metaSources)
	permuted, err := Run(buildMeta(obsList, perm, seqInts(metaObjects)), metaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations != permuted.Iterations {
		t.Fatalf("iterations differ: %d vs %d", base.Iterations, permuted.Iterations)
	}
	for i, k := range perm {
		if !stats.ApproxEq(permuted.Weights[i], base.Weights[k]) {
			t.Fatalf("weight of source %d: %v (permuted) vs %v (base)", k, permuted.Weights[i], base.Weights[k])
		}
	}
	// Entry indexing is untouched (objects and properties kept their
	// order), so truths must agree entry-for-entry.
	for e := 0; e < metaObjects*metaProps; e++ {
		bv, bok := base.Truths.Get(e)
		pv, pok := permuted.Truths.Get(e)
		if bok != pok {
			t.Fatalf("entry %d presence differs", e)
		}
		if !bok {
			continue
		}
		if bv.C != pv.C || !stats.ApproxEq(bv.F, pv.F) {
			t.Fatalf("entry %d truth differs: %+v vs %+v", e, bv, pv)
		}
	}
}

// TestMetamorphicObjectPermutation: relabeling the objects permutes the
// truth table rows and leaves the weights (approximately) unchanged.
func TestMetamorphicObjectPermutation(t *testing.T) {
	obsList := metaObservations(22)
	base, err := Run(buildMeta(obsList, seqInts(metaSources), seqInts(metaObjects)), metaConfig())
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(3)).Perm(metaObjects)
	permuted, err := Run(buildMeta(obsList, seqInts(metaSources), perm), metaConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range base.Weights {
		if !stats.ApproxEq(base.Weights[k], permuted.Weights[k]) {
			t.Fatalf("weight[%d] differs: %v vs %v", k, base.Weights[k], permuted.Weights[k])
		}
	}
	// Object perm[i] of the base dataset is row i of the permuted one.
	for i, o := range perm {
		for m := 0; m < metaProps; m++ {
			bv, bok := base.Truths.GetAt(o, m)
			pv, pok := permuted.Truths.GetAt(i, m)
			if bok != pok {
				t.Fatalf("object %d prop %d presence differs", o, m)
			}
			if !bok {
				continue
			}
			if bv.C != pv.C || !stats.ApproxEq(bv.F, pv.F) {
				t.Fatalf("object %d prop %d truth differs: %+v vs %+v", o, m, bv, pv)
			}
		}
	}
}

// scaledScheme wraps a weight scheme and multiplies every weight it
// produces by a constant — the metamorphic probe for weight-scale
// invariance. Both compared runs use the wrapper (with factors 1 and c)
// so they exercise the identical solver path.
type scaledScheme struct {
	inner reg.Scheme
	c     float64
}

func (s scaledScheme) Name() string { return fmt.Sprintf("scaledx%g+%s", s.c, s.inner.Name()) }

func (s scaledScheme) Weights(losses []float64) []float64 {
	w := s.inner.Weights(losses)
	for i := range w {
		w[i] *= s.c
	}
	return w
}

// TestMetamorphicWeightScale: multiplying every source weight by a
// positive constant changes no truth — weighted medians and votes depend
// only on weight ratios. With a power-of-two factor the scaling is exact
// in floating point, so the truths must match bit for bit and the scaled
// weights must be exactly factor times the base weights.
func TestMetamorphicWeightScale(t *testing.T) {
	obsList := metaObservations(23)
	d := buildMeta(obsList, seqInts(metaSources), seqInts(metaObjects))
	const factor = 4.0 // power of two: *factor is exact
	cfgBase := metaConfig()
	cfgBase.Scheme = scaledScheme{inner: reg.ExpMax{}, c: 1}
	cfgScaled := metaConfig()
	cfgScaled.Scheme = scaledScheme{inner: reg.ExpMax{}, c: factor}
	base, err := Run(d, cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Run(d, cfgScaled)
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations != scaled.Iterations {
		t.Fatalf("iterations differ: %d vs %d", base.Iterations, scaled.Iterations)
	}
	for e := 0; e < d.NumEntries(); e++ {
		bv, bok := base.Truths.Get(e)
		sv, sok := scaled.Truths.Get(e)
		if bok != sok {
			t.Fatalf("entry %d presence differs", e)
		}
		if !bok {
			continue
		}
		if bv.C != sv.C || !bitsEq(bv.F, sv.F) {
			t.Fatalf("entry %d truth differs under weight scaling: %+v vs %+v", e, bv, sv)
		}
	}
	for k := range base.Weights {
		if !bitsEq(base.Weights[k]*factor, scaled.Weights[k]) {
			t.Fatalf("weight[%d]: %v*%g != %v", k, base.Weights[k], factor, scaled.Weights[k])
		}
	}
}
