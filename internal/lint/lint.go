// Package lint is crhkit's project-specific static-analysis framework:
// a small, stdlib-only (go/ast, go/parser, go/types, go/token — no
// golang.org/x/tools) analysis driver plus the analyzers that machine-check
// the invariants this repository's correctness rests on.
//
// CRH's numbers are only reproducible while a set of fragile conventions
// hold: convergence and loss code must never compare floats with == (the
// paper's tables shift when a tolerance silently becomes exact equality),
// library randomness must flow through explicitly seeded *rand.Rand values,
// the import DAG must keep the numeric substrate (stats, loss, data) below
// the solver and server layers, and the module must stay dependency-free.
// Neither go vet nor the race detector checks any of these; this package
// does, on every PR, via cmd/crhlint.
//
// # Analyzers
//
// Call Analyzers for the registered suite. Each analyzer inspects one
// loaded package at a time and reports diagnostics; the driver in
// cmd/crhlint renders them as "file:line: [analyzer] message" and exits
// non-zero when any survive suppression.
//
// # Suppressing a finding
//
// A finding that is intentional — e.g. an exact float comparison that
// groups identical observed values — is silenced in place:
//
//	//lint:ignore floatcmp exact tie grouping over observed values
//	for j < n && ps[j].x == ps[i].x {
//
// The directive names one analyzer and must carry a non-empty reason. It
// applies to findings on its own line (trailing comment) or, when it
// stands alone on a line, to the line below. The directive analyzer
// flags malformed or unused suppressions, so stale ignores cannot
// accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"github.com/crhkit/crh/internal/lint/flow"
)

// An Analyzer is one named check. Run inspects a single loaded package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-line description, shown by crhlint -list.
	Doc string
	// Run executes the analyzer over pass.Pkg.
	Run func(pass *Pass)
}

// A Pass carries one analyzer's view of one package plus the reporting
// sink and the run-wide dataflow caches.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// All lists every package of the run — the whole-module view the
	// call-graph-driven analyzers need.
	All []*Package
	// report receives diagnostics.
	report func(Diagnostic)
	// shared holds the run's memoized dataflow structures.
	shared *runShared
}

// runShared carries dataflow structures built at most once per Run and
// shared by every (package, analyzer) pass: per-function CFGs and the
// module-local call graph.
type runShared struct {
	pkgs  []*Package
	cfgs  map[ast.Node]*flow.Graph
	graph *flow.CallGraph
}

// CFG returns the control-flow graph of fn (an *ast.FuncDecl or
// *ast.FuncLit), building and memoizing it on first request.
func (p *Pass) CFG(fn ast.Node) *flow.Graph {
	if g, ok := p.shared.cfgs[fn]; ok {
		return g
	}
	g := flow.New(fn)
	p.shared.cfgs[fn] = g
	return g
}

// CallGraph returns the module-local static call graph over every
// package of the run, building it on first request.
func (p *Pass) CallGraph() *flow.CallGraph {
	if p.shared.graph == nil {
		p.shared.graph = flow.NewCallGraph(p.Pkg.Module.Path)
		for _, pkg := range p.shared.pkgs {
			p.shared.graph.AddPackage(pkg.Files, pkg.TypesInfo)
		}
	}
	return p.shared.graph
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the analyzer that produced
// it, and a message. Suppressed findings survive only in RunAll's
// output, flagged and carrying their directive's reason.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding silenced by a //lint:ignore directive;
	// Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

// String renders the diagnostic in the canonical crhlint format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzers returns the registered suite in reporting order. The slice is
// freshly allocated; callers may filter it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		GlobalRand,
		Layering,
		StdlibOnly,
		ExportedDoc,
		MapOrder,
		LockGuard,
		ErrFlow,
		HotPath,
		Directive,
	}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over the given packages and returns
// the surviving diagnostics sorted by position: findings silenced by a
// well-formed //lint:ignore directive are dropped, and malformed or
// unused directives are reported through the directive analyzer. Run is
// deterministic: same packages, same analyzers, same output.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, d := range RunAll(pkgs, analyzers) {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunAll is Run without the suppression filter: every diagnostic is
// returned, suppressed ones flagged with their directive's reason — the
// machine-readable record cmd/crhlint -json archives for CI.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := newSuppressions(pkgs)
	shared := &runShared{pkgs: pkgs, cfgs: map[ast.Node]*flow.Graph{}}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil { // the directive analyzer runs in the driver below
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, All: pkgs, shared: shared, report: func(d Diagnostic) {
				if reason, ok := sup.suppressed(d); ok {
					d.Suppressed = true
					d.Reason = reason
				}
				diags = append(diags, d)
			}}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a == Directive {
			diags = append(diags, sup.problems()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
