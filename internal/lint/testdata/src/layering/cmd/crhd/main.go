// The crhd binary is the one sanctioned server importer.
package main

import (
	_ "github.com/crhkit/crh/internal/server"
)

func main() {}
