// crhd's tests share the directory's privilege.
package main_test

import (
	_ "github.com/crhkit/crh/internal/server"
)
