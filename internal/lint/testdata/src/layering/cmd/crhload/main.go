// The crhload binary measures crhd from the outside: HTTP only, plus
// the internal/obs measurement substrate. Any other internal import
// would couple the load generator to what it is supposed to black-box.
package main

import (
	_ "net/http" // stdlib is always fine

	_ "github.com/crhkit/crh/internal/core"   // want "cmd/crhload must not import internal/core"
	_ "github.com/crhkit/crh/internal/obs"    // the one sanctioned internal subtree
	_ "github.com/crhkit/crh/internal/server" // want "cmd/crhload must not import internal/server" "cmd/crhload must not import internal/server: the server subsystem is private to cmd/crhd"
)

func main() {}
