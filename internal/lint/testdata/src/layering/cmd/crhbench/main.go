// The crhbench binary holds the one sanctioned internal/wal exemption:
// its -ingest sweep benchmarks WAL append throughput directly.
package main

import (
	_ "github.com/crhkit/crh/internal/wal"
)

func main() {}
