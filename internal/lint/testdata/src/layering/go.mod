module github.com/crhkit/crh

go 1.22
