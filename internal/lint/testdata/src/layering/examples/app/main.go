// Everything else must stay behind the HTTP API.
package main

import (
	_ "github.com/crhkit/crh/internal/server" // want "examples/app must not import internal/server"
	_ "github.com/crhkit/crh/internal/wal"    // want "examples/app must not import internal/wal"
)

func main() {}
