// Package obs is substrate: every layer may instrument with it, so it
// must not import the layers it instruments.
package obs

import (
	_ "sync/atomic" // stdlib is always fine

	_ "github.com/crhkit/crh/internal/core"   // want "internal/obs must not import internal/core"
	_ "github.com/crhkit/crh/internal/stream" // want "internal/obs must not import internal/stream"
	_ "github.com/crhkit/crh/internal/wal"    // want "internal/obs must not import internal/wal" "internal/obs must not import internal/wal: the durability substrate is private to internal/server"
)
