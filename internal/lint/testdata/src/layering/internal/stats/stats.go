// Package stats is substrate: it must not look upward.
package stats

import (
	_ "sort" // stdlib is always fine

	_ "github.com/crhkit/crh/internal/core"        // want "internal/stats must not import internal/core"
	_ "github.com/crhkit/crh/internal/experiments" // want "internal/stats must not import internal/experiments"
)
