// Package stream is a consumer layer: durability is the server's
// concern, so reaching into internal/wal from here is a violation.
package stream

import (
	_ "github.com/crhkit/crh/internal/col" // want "internal/stream must not import internal/col: the columnar layout is private to internal/core"
	_ "github.com/crhkit/crh/internal/wal" // want "internal/stream must not import internal/wal"
)
