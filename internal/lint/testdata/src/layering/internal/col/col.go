// Package col is the columnar freeze: it may depend on the dataset
// model and nothing else inside the module.
package col

import (
	_ "math" // stdlib is always fine

	_ "github.com/crhkit/crh/internal/core" // want "internal/col must not import internal/core: the numeric substrate" "internal/col must not import internal/core: the columnar freeze depends only on the dataset model"
	_ "github.com/crhkit/crh/internal/data"
	_ "github.com/crhkit/crh/internal/loss" // want "internal/col must not import internal/loss: the columnar freeze depends only on the dataset model"
)
