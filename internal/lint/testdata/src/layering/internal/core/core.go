// Package core may depend on the substrate below it.
package core

import (
	_ "github.com/crhkit/crh/internal/col"
	_ "github.com/crhkit/crh/internal/obs"
	_ "github.com/crhkit/crh/internal/stats"
)
