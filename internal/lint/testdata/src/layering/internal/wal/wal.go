// Package wal is the durability substrate: it stores framed bytes and
// must stay below every model and solver layer.
package wal

import (
	_ "os" // stdlib is always fine

	_ "github.com/crhkit/crh/internal/core" // want "internal/wal must not import internal/core"
	_ "github.com/crhkit/crh/internal/obs"  // substrate-on-substrate instrumentation is allowed
)
