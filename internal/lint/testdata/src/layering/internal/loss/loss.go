// Package loss is substrate: importing the server is doubly wrong.
package loss

import (
	_ "github.com/crhkit/crh/internal/server" // want "internal/loss must not import internal/server" "server subsystem is private to cmd/crhd"
)
