// Package server may use the solver; only cmd/crhd may use it.
package server

import (
	_ "github.com/crhkit/crh/internal/core"
)
