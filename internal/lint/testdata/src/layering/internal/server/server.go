// Package server may use the solver and owns the durable ingest path;
// only cmd/crhd may use it.
package server

import (
	_ "github.com/crhkit/crh/internal/core"
	_ "github.com/crhkit/crh/internal/wal"
)
