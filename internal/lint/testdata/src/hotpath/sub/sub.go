// Package sub holds a callee in another package: hotpath reachability
// crosses package boundaries through the module-local call graph.
package sub

// Leaf converts, which allocates.
func Leaf(s string) []byte {
	return []byte(s) // want "conversion allocates"
}
