// Package hotpath is the hotpath analyzer's golden input: annotated
// functions (and their transitive callees) with and without allocation
// sites.
package hotpath

import "example.com/hotpath/sub"

// Kernel is allocation-free: index writes, arithmetic, and a clean
// callee.
//
//crh:hotpath
func Kernel(xs, out []float64) float64 {
	s := 0.0
	for i, x := range xs {
		out[i] = x * x
		s += helper(x)
	}
	return s
}

func helper(x float64) float64 { return x + 1 }

// Bad hits the builtin allocators.
//
//crh:hotpath
func Bad(n int) []int {
	xs := make([]int, n) // want "non-constant size"
	xs = append(xs, 1)   // want "append may grow"
	m := map[int]int{}   // want "map literal allocates"
	_ = m
	return xs
}

// Fixed-size scratch is allowed: constant make sizes are bounded.
//
//crh:hotpath
func FixedScratch(p []byte) [4]byte {
	var buf [4]byte
	copy(buf[:], p)
	return buf
}

// Outer is clean itself, but its callee allocates: the finding lands in
// the callee, attributed to this root.
//
//crh:hotpath
func Outer(x int) int { return inner(x) }

type point struct{ x, y int }

func inner(x int) int {
	p := &point{x, x} // want "composite literal escapes"
	return p.x
}

// CallsSub reaches an allocating callee in another package.
//
//crh:hotpath
func CallsSub(s string) int { return len(sub.Leaf(s)) }

// Capturing closures allocate; non-capturing ones are static.
//
//crh:hotpath
func Closes(seed int) func() int {
	i := seed
	f := func() int { // want "closure captures"
		i++
		return i
	}
	return f
}

//crh:hotpath
func Statics() int {
	f := func(a int) int { return a * 2 }
	return f(21)
}

// Returning a concrete value as an interface boxes it.
//
//crh:hotpath
func Boxes(x int) any {
	return x // want "return boxes a concrete value"
}

//crh:hotpath
func Concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//crh:hotpath
func Spawns() {
	go drain() // want "go statement spawns"
}

func drain() {}

// A reasoned suppression silences an intentional amortized append.
//
//crh:hotpath
func Amortized(buf []int, n int) []int {
	//lint:ignore hotpath amortized growth; callers reuse buf across calls
	buf = append(buf, n)
	return buf
}

// coldAlloc is neither annotated nor reachable from an annotated root:
// it may allocate freely.
func coldAlloc() []int {
	return make([]int, 128)
}
