module example.com/directive

go 1.22
