// Package directive is the directive analyzer's golden input: the
// suppression syntax itself is linted.
package directive

func used(a, b float64) bool {
	//lint:ignore floatcmp a well-formed, exercised directive is silent
	return a == b
}

func unused(a, b float64) bool {
	/* want "unused suppression" */ //lint:ignore floatcmp nothing below triggers floatcmp
	return a < b
}

func missingReason(a, b float64) bool {
	/* want "needs a reason" */ //lint:ignore floatcmp
	return a == b               // want "floating-point == comparison"
}

func unknownAnalyzer(a, b float64) bool {
	/* want "unknown analyzer" */ //lint:ignore nosuchcheck this analyzer does not exist
	return a != b                 // want "floating-point != comparison"
}

func bare(a, b float64) bool {
	/* want "missing the analyzer name" */ //lint:ignore
	return a == b                          // want "floating-point == comparison"
}
