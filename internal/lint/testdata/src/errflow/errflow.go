// Package errflow is the errflow analyzer's golden input: durability
// errors dropped every way the analyzer catches, and the checked
// idioms that stay quiet.
package errflow

import (
	"os"

	"example.com/errflow/internal/wal"
)

// closer is a general (non-durability) closer.
type closer struct{}

func (c *closer) Close() error { return nil }

// Bare statement drop of a durability call.
func dropped(l *wal.Log) {
	l.Sync() // want "error from l.Sync is dropped"
}

// Deferring a durability close throws its error away.
func deferredDrop(l *wal.Log) {
	defer l.Close() // want "deferred l.Close discards its error"
}

// go f() discards the error too.
func goDrop(l *wal.Log) {
	go l.Sync() // want "dropped by the go statement"
}

// Blank assignment of a durability error.
func blankDrop(l *wal.Log, b []byte) {
	_ = l.AppendBatch(b) // want "assigned to _"
}

// Blank error slot in a tuple assignment.
func tupleBlank(l *wal.Log, p []byte) int {
	n, _ := l.Write(p) // want "assigned to _"
	return n
}

// Assigned but overwritten before any read: dead, per the use-def
// analysis.
func deadAssign(l *wal.Log) {
	err := l.Sync() // want "assigned to err but never read"
	err = nil
	_ = err
}

// os.File close and sync are durability calls wherever they appear.
func fileDrop(f *os.File) {
	f.Close() // want "error from f.Close is dropped"
}

// Checked: quiet.
func checked(l *wal.Log) error {
	if err := l.Sync(); err != nil {
		return err
	}
	return l.Close()
}

// The named-defer close idiom: quiet.
func checkedDefer(l *wal.Log) (err error) {
	defer func() {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return l.Sync()
}

// Explicit discard with a reasoned suppression: quiet.
func intentional(l *wal.Log) {
	//lint:ignore errflow shutdown path; the process is exiting regardless
	_ = l.Close()
}

// General closers are only flagged for bare statement drops...
func generalDropped(c *closer) {
	c.Close() // want "error from c.Close is dropped"
}

// ...so the idiomatic deferred body close stays quiet.
func generalDeferred(c *closer) {
	defer c.Close()
}
