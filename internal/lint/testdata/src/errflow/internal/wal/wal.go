// Package wal stands in for the real write-ahead log: its method set
// puts it in the errflow analyzer's durability tier.
package wal

// A Log is a stub durability surface.
type Log struct{}

// AppendBatch appends records.
func (l *Log) AppendBatch(b []byte) error { return nil }

// Write writes raw bytes.
func (l *Log) Write(p []byte) (int, error) { return len(p), nil }

// Sync flushes to stable storage.
func (l *Log) Sync() error { return nil }

// Close releases the log.
func (l *Log) Close() error { return nil }
