module example.com/errflow

go 1.22
