package server // want "package server has no package doc comment"

type Config struct { // want "exported type Config has no doc comment"
	// Capacity is documented.
	Capacity int
	// want+2 "exported field Config.Decay has no doc comment"

	Decay float64
}
