// Package wal is in the analyzer's scope: its exported surface defines
// the durable on-disk format.
package wal

// Obs is documented.
type Obs struct {
	// Source is documented.
	Source string
	// want+2 "exported field Obs.Object has no doc comment"

	Object string
}

func OpenLog() {} // want "exported function OpenLog has no doc comment"
