// Package other is outside the analyzer's scope: nothing is flagged.
package other

func Undocumented() {}

type Bare struct{ Field int }
