// Package crh is the exporteddoc analyzer's golden input: the root
// package's exported surface must be fully documented.
package crh

func Exported() {} // want "exported function Exported has no doc comment"

// Documented functions are fine.
func Documented() {}

func unexported() {} // fine: not exported

type Thing struct { // want "exported type Thing has no doc comment"
	// want+2 "exported field Thing.Field has no doc comment"

	Field int
	// Documented fields are fine.
	OK     int
	Inline int // trailing line comments count as docs
	hidden int
}

func (Thing) Do() {} // want "exported method Thing.Do has no doc comment"

// Pointer-receiver methods resolve to their base type.
func (*Thing) Done() {}

func (*Thing) Redo() {} // want "exported method Thing.Redo has no doc comment"

func (Thing) private() {} // fine: unexported method

// Resolver is documented; its methods still need docs.
type Resolver interface {
	// want+2 "exported method Resolver.Resolve has no doc comment"

	Resolve() error
	// Close is documented.
	Close() error
}

// want+2 "exported const Answer has no doc comment"

const Answer = 42

// MaxIters is documented.
const MaxIters = 20

// Grouped declarations are covered by the group doc.
const (
	ModeA = iota
	ModeB
)

// want+2 "exported var Global has no doc comment"

var Global int

var internal int // fine: unexported

func init() { unexported(); internal++ }
