// Package maporder is the maporder analyzer's golden input: map-range
// order leaking into sinks, and the sorted idioms that stay quiet.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Direct sink: float accumulation — summation order changes rounding.
func sumDirect(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v * 2 // want "floating-point accumulation"
	}
	return s
}

// Direct sink: string concatenation.
func concat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "string concatenation"
	}
	return out
}

// The x = x + e spelling is the same sink.
func concatLong(m map[string]int) string {
	out := ""
	for k := range m {
		out = out + k // want "string concatenation"
	}
	return out
}

// Direct sink: writing per-entry output inside the loop.
func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf"
	}
}

// Direct sink: builder writes.
func builderSink(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString call"
	}
	return b.String()
}

// Collector escaping without a sort.
func keysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks // want "without a dominating sort"
}

// A sort on only one branch does not dominate the use.
func sortedMaybe(m map[int]int, do bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	if do {
		sort.Ints(ks)
	}
	return ks // want "without a dominating sort"
}

// Collect, sort, consume: the canonical fix. Quiet.
func keysSorted(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sort.Slice also establishes the order; ranging afterwards is fine.
func sortedSlice(m map[string]float64) []string {
	ps := make([]string, 0, len(m))
	for k := range m {
		ps = append(ps, k)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	for _, p := range ps {
		_ = p
	}
	return ps
}

// Commutative aggregation: integer sums do not observe order. Quiet.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// No iteration variables: nothing order-dependent flows out. Quiet.
func size(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// len of a collector is order-neutral. Quiet.
func collectLen(m map[string]int) int {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return len(ks)
}

// Map-to-map transfer: writing into another map preserves no order.
// Quiet.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
