module example.com/suppresswrap

go 1.22
