// Package suppresswrap pins how //lint:ignore directives bind to
// statements that wrap across lines: a standalone directive covers the
// whole statement beginning on the next line (continuation lines
// included); a trailing directive covers only its own physical line and
// does not reach back to the statement's first line.
package suppresswrap

// A standalone directive above a wrapped condition suppresses findings
// on every line of that statement — here both == comparisons, one of
// which sits on a continuation line.
func wrapped(a, b, c, d float64) bool {
	//lint:ignore floatcmp exact tie grouping across the wrapped condition
	ok := a == b ||
		c == d
	return ok
}

// A trailing directive on the last line of a wrapped statement covers
// that line only: the comparison on the first line is still reported.
func trailingOnly(a, b, c, d float64) bool {
	ok := a == b || // want "floating-point == comparison"
		c == d //lint:ignore floatcmp trailing directives bind to their own line
	return ok
}

// The statement-extent rule also covers multi-line composite literals:
// one directive, findings on several inner lines.
func literalWrapped(a, b float64) []bool {
	//lint:ignore floatcmp exact grouping table built once at startup
	table := []bool{
		a == b,
		b == a,
	}
	return table
}
