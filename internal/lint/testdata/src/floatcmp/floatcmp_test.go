package floatcmp

// Test files are exempt: exact comparisons against known constants are
// how tests pin results.
func testOnlyComparison(a, b float64) bool {
	return a == b
}
