// Package floatcmp is the floatcmp analyzer's golden input.
package floatcmp

type celsius float64 // named float types count too

func comparisons(a, b float64, f32 float32, c celsius, n int, s string) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if a != b { // want "floating-point != comparison"
		return true
	}
	if f32 == float32(a) { // want "floating-point == comparison"
		return true
	}
	if c == celsius(a) { // want "floating-point == comparison"
		return true
	}
	if float64(n) == b { // want "floating-point == comparison"
		return true
	}

	// Allowed: literal-0 guards (the division/degenerate-input idiom).
	if a == 0 {
		return true
	}
	if 0 == b {
		return true
	}
	if b == 0.0 {
		return true
	}
	// Allowed: ordered comparisons and non-float operands.
	if a < b || a >= b {
		return true
	}
	if n == 42 {
		return true
	}
	return s == "x"
}
