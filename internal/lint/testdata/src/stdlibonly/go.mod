module example.com/app

go 1.22
