// Package sub exists so a module-local import resolves.
package sub
