// Package app is the stdlibonly analyzer's golden input.
package app

import (
	_ "encoding/json" // stdlib: fine
	_ "net/http"      // stdlib: fine

	_ "example.com/app/sub" // module-local: fine

	_ "github.com/pkg/errors"      // want `import "github.com/pkg/errors" is neither stdlib nor module-local`
	_ "golang.org/x/sync/errgroup" // want `import "golang.org/x/sync/errgroup" is neither stdlib nor module-local`
	_ "gopkg.in/yaml.v3"           // want `import "gopkg.in/yaml.v3" is neither stdlib nor module-local`
)
