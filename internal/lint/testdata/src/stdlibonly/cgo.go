package app

import "C" // want "cgo is not allowed"
