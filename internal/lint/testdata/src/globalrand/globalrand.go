// Package globalrand is the globalrand analyzer's golden input.
package globalrand

import "math/rand"

func bad() float64 {
	rand.Seed(42)      // want "rand.Seed uses the global generator"
	_ = rand.Intn(10)  // want "rand.Intn uses the global generator"
	xs := rand.Perm(3) // want "rand.Perm uses the global generator"
	_ = xs
	return rand.Float64() // want "rand.Float64 uses the global generator"
}

func good(seed int64) float64 {
	// The constructors are the sanctioned path to randomness.
	rng := rand.New(rand.NewSource(seed))
	var src rand.Source = rand.NewSource(seed) // type references are fine
	_ = src
	_ = rng.Intn(10)
	return rng.Float64()
}
