package globalrand

import "math/rand"

// Test files are exempt: throwaway randomness in tests is fine.
func testOnlyGlobal() float64 {
	return rand.Float64()
}
