module example.com/globalrand

go 1.22
