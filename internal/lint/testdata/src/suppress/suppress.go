// Package suppress proves reasoned //lint:ignore directives silence
// findings: every violation here is covered, so the full suite reports
// nothing.
package suppress

func standalone(a, b float64) bool {
	//lint:ignore floatcmp standalone directives cover the next line
	return a == b
}

func trailing(a, b float64) bool {
	return a != b //lint:ignore floatcmp trailing directives cover their own line
}
