module example.com/lockguard

go 1.22
