// Package lockguard is the lockguard analyzer's golden input:
// crh:guardedby annotations honored and violated.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	// crh:guardedby mu
	n int
}

// Inline lock/unlock bracketing the access: quiet.
func (c *counter) incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// defer mu.Unlock() runs at exit, so the lock is held for the whole
// remainder of the body: quiet.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// No lock at all.
func (c *counter) bare() {
	c.n++ // want "guarded by mu"
}

// The lock was released before the second access.
func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n-- // want "guarded by mu"
}

// Held on one path only: the merge loses it.
func (c *counter) branchy(x bool) {
	if x {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want "guarded by mu"
}

// A freshly constructed value is unshared; initializing its guarded
// fields without the lock is fine.
func fresh(seed int) *counter {
	c := &counter{}
	c.n = seed
	return c
}

// Reads under an RWMutex read lock count as held.
type table struct {
	rw sync.RWMutex
	// crh:guardedby rw
	rows map[string]int
}

func (t *table) read(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

func (t *table) unlockedRead(k string) int {
	return t.rows[k] // want "guarded by rw"
}

// Nested selector paths: the mutex must be the sibling on the same
// base.
type outer struct {
	inner counter
}

func (o *outer) nested() {
	o.inner.mu.Lock()
	o.inner.n++
	o.inner.mu.Unlock()
	o.inner.n++ // want "guarded by mu"
}

// The annotation must name a real sibling field.
type wrong struct {
	v int // crh:guardedby lock want `crh:guardedby names "lock"`
}
