package lint

import (
	"go/ast"
	"go/types"
)

// globalRandAllowed lists the math/rand package-level functions that do
// not touch the global generator: the constructors a seeded *rand.Rand
// is built from.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// GlobalRand flags calls to math/rand's global (package-level) functions
// in non-test code. The global generator is process-shared mutable
// state: any library path drawing from it makes results depend on what
// else ran first, which destroys the run-to-run determinism the
// experiment tables (and the registry's cache keys) rely on. All
// randomness must flow through an explicitly seeded *rand.Rand threaded
// from the caller; the rand.New/rand.NewSource constructors are allowed
// since they are how such a generator is built.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flag math/rand global-generator calls outside tests; randomness must use a seeded *rand.Rand",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			obj := info.Uses[sel.Sel]
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true // type or var reference (rand.Rand, rand.Source)
			}
			if globalRandAllowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s uses the global generator; thread an explicitly seeded *rand.Rand instead", id.Name, sel.Sel.Name)
			return true
		})
	}
}
