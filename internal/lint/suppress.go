package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix is the suppression directive: //lint:ignore <analyzer> <reason>.
const ignorePrefix = "//lint:ignore"

// A suppression is one parsed //lint:ignore directive.
type suppression struct {
	pos      token.Position
	analyzer string
	reason   string
	// standalone directives (alone on their line) apply to the
	// statement beginning on the next line — all of it, so a directive
	// above a wrapped statement covers findings on its continuation
	// lines; trailing directives apply to their own line only.
	standalone bool
	// fromLine..toLine is the inclusive line range the directive
	// covers, resolved against the file's syntax at scan time.
	fromLine, toLine int
	used             bool
	// malformed carries the problem message when the directive cannot
	// be honored.
	malformed string
}

// suppressionSet indexes every //lint:ignore directive in the loaded
// packages and tracks which ones fired.
type suppressionSet struct {
	byFile map[string][]*suppression
}

// newSuppressions scans the packages' comments for directives.
func newSuppressions(pkgs []*Package) *suppressionSet {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	set := &suppressionSet{byFile: map[string][]*suppression{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					s := parseSuppression(pkg, f, c, known)
					s.resolveRange(pkg, f)
					set.byFile[s.pos.Filename] = append(set.byFile[s.pos.Filename], s)
				}
			}
		}
	}
	return set
}

// parseSuppression validates one directive comment.
func parseSuppression(pkg *Package, f *ast.File, c *ast.Comment, known map[string]bool) *suppression {
	pos := pkg.Fset.Position(c.Pos())
	s := &suppression{pos: pos, standalone: !tokenBefore(pkg, f, c.Pos())}
	rest := strings.TrimPrefix(c.Text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //lint:ignoreme — not our directive.
		s.malformed = "malformed directive: want \"//lint:ignore <analyzer> <reason>\""
		return s
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		s.malformed = "//lint:ignore is missing the analyzer name and reason"
		return s
	}
	s.analyzer = fields[0]
	if !known[s.analyzer] {
		s.malformed = "//lint:ignore names unknown analyzer \"" + s.analyzer + "\""
		return s
	}
	if len(fields) < 2 {
		s.malformed = "//lint:ignore " + s.analyzer + " needs a reason"
		return s
	}
	s.reason = strings.Join(fields[1:], " ")
	return s
}

// tokenBefore reports whether any syntax in f starts on pos's line
// before pos — i.e. whether the comment at pos trails code.
func tokenBefore(pkg *Package, f *ast.File, pos token.Pos) bool {
	line := pkg.Fset.Position(pos).Line
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n.Pos() < pos && pkg.Fset.Position(n.Pos()).Line == line {
			found = true
			return false
		}
		return true
	})
	return found
}

// resolveRange fixes the line range a directive covers. Trailing
// directives cover their own line. Standalone directives cover the
// statement (or declaration) that begins on the following line through
// its last line, so a directive above a statement wrapped across lines
// binds to the whole statement — matching where an analyzer may anchor
// its diagnostic — rather than to the first physical line only. A
// directive on a continuation line of a wrapped statement does NOT
// reach back to the statement's earlier lines.
func (s *suppression) resolveRange(pkg *Package, f *ast.File) {
	if !s.standalone {
		s.fromLine, s.toLine = s.pos.Line, s.pos.Line
		return
	}
	s.fromLine = s.pos.Line + 1
	s.toLine = s.fromLine
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.Field:
			if pkg.Fset.Position(n.Pos()).Line == s.fromLine {
				if end := pkg.Fset.Position(n.End()).Line; end > s.toLine {
					s.toLine = end
				}
			}
		}
		return true
	})
}

// suppressed reports whether d is covered by a well-formed directive,
// marking the directive used and returning its reason.
func (set *suppressionSet) suppressed(d Diagnostic) (string, bool) {
	for _, s := range set.byFile[d.Pos.Filename] {
		if s.malformed != "" || s.analyzer != d.Analyzer {
			continue
		}
		if d.Pos.Line >= s.fromLine && d.Pos.Line <= s.toLine {
			s.used = true
			return s.reason, true
		}
	}
	return "", false
}

// problems returns directive-analyzer diagnostics: malformed directives
// and well-formed directives that suppressed nothing (stale ignores).
// Call after every analyzer has run.
func (set *suppressionSet) problems() []Diagnostic {
	var files []string
	for f := range set.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []Diagnostic
	for _, f := range files {
		for _, s := range set.byFile[f] {
			switch {
			case s.malformed != "":
				out = append(out, Diagnostic{Pos: s.pos, Analyzer: Directive.Name, Message: s.malformed})
			case !s.used:
				out = append(out, Diagnostic{Pos: s.pos, Analyzer: Directive.Name,
					Message: "unused suppression: no " + s.analyzer + " finding here (remove the stale //lint:ignore)"})
			}
		}
	}
	return out
}

// Directive validates //lint:ignore suppressions: every directive must
// name a registered analyzer, carry a non-empty reason, and actually
// suppress a finding. It runs inside the driver (its Run is nil) because
// it needs the other analyzers' results.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "check that //lint:ignore suppressions are well-formed, reasoned, and not stale",
}
