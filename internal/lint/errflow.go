package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/crhkit/crh/internal/lint/flow"
)

// ErrFlow checks that durability-critical errors are not silently
// dropped. A WAL append that fails and is ignored is a committed write
// that never happened: the dataset diverges from its log and crash
// recovery replays a different history. The same goes for fsync and
// close on the log and snapshot files in internal/wal and
// internal/server.
//
// Two tiers, by blast radius:
//
//   - Durability calls — error-returning functions defined under
//     internal/wal or internal/server named Close, Sync, Flush, Retire,
//     Commit, Compact, Truncate or prefixed Append/Snapshot/Write, plus
//     (*os.File).Close and (*os.File).Sync anywhere — must have their
//     error handled. Dropping one via a bare statement, a deferred
//     call, a go statement, assignment to _, or an assignment that is
//     never read (use-def analysis over the CFG) is a finding.
//     Intentional discards take `_ = l.Close()` plus a reasoned
//     //lint:ignore errflow, or restructure to a checked defer.
//   - General closers — any method named Close returning error — are
//     flagged only when dropped as a bare statement. `defer
//     resp.Body.Close()` stays idiomatic and quiet.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "require WAL/server durability errors (append, fsync, close) to be checked",
	Run:  runErrFlow,
}

type errCallClass int

const (
	notErrCall errCallClass = iota
	generalClose
	durabilityCall
)

func runErrFlow(pass *Pass) {
	// Liveness is per enclosing function; build lazily.
	liveness := map[ast.Node]*flow.Liveness{}
	liveFor := func(fn ast.Node) *flow.Liveness {
		if lv, ok := liveness[fn]; ok {
			return lv
		}
		lv := flow.NewLiveness(pass.CFG(fn), pass.Pkg.TypesInfo)
		liveness[fn] = lv
		return lv
	}
	for _, f := range pass.Pkg.Files {
		checkErrFlowFile(pass, f, liveFor)
	}
}

func checkErrFlowFile(pass *Pass, f *ast.File, liveFor func(ast.Node) *flow.Liveness) {
	info := pass.Pkg.TypesInfo
	// Walk with an ancestor stack so each call sees its statement
	// context, and track the innermost enclosing function for liveness.
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		class, name := classifyErrCall(info, call)
		if class == notErrCall {
			return true
		}
		parent := parentOf(stack)
		switch p := parent.(type) {
		case *ast.ExprStmt:
			if class == durabilityCall {
				pass.Reportf(call.Pos(), "error from %s is dropped; a failed durability call must be handled or discarded with a reasoned //lint:ignore errflow", name)
			} else {
				pass.Reportf(call.Pos(), "error from %s is dropped; check it, or defer the close", name)
			}
		case *ast.DeferStmt:
			if p.Call == call && class == durabilityCall {
				pass.Reportf(call.Pos(), "deferred %s discards its error; durability closes need a named-defer check or a reasoned suppression", name)
			}
		case *ast.GoStmt:
			if p.Call == call && class == durabilityCall {
				pass.Reportf(call.Pos(), "error from %s is dropped by the go statement; durability errors must be handled", name)
			}
		case *ast.AssignStmt:
			if class != durabilityCall {
				return true
			}
			checkErrAssign(pass, p, call, name, stack, liveFor)
		}
		return true
	})
}

// parentOf returns the nearest non-paren ancestor of the node on top of
// the stack.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// checkErrAssign handles `..., err := call(...)` for durability calls:
// the error result must not go to _ and must be read afterwards.
func checkErrAssign(pass *Pass, as *ast.AssignStmt, call *ast.CallExpr, name string, stack []ast.Node, liveFor func(ast.Node) *flow.Liveness) {
	info := pass.Pkg.TypesInfo
	// Locate the LHS expression receiving the call's error result.
	var errLHS ast.Expr
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// n, err := c.Write(...): tuple assignment, error is last.
		errLHS = as.Lhs[len(as.Lhs)-1]
	} else {
		for i, rhs := range as.Rhs {
			if rhs == call && i < len(as.Lhs) {
				errLHS = as.Lhs[i]
			}
		}
	}
	if errLHS == nil {
		return
	}
	id, ok := errLHS.(*ast.Ident)
	if !ok {
		return // stored through a field or index: treated as used
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "error from %s is assigned to _; handle it or add a reasoned //lint:ignore errflow", name)
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	fn := enclosingFunc(stack)
	if fn == nil {
		return
	}
	if !liveFor(fn).UsedAfter(as, v) {
		pass.Reportf(call.Pos(), "error from %s is assigned to %s but never read", name, id.Name)
	}
}

// enclosingFunc returns the innermost function declaration or literal
// on the ancestor stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// classifyErrCall resolves a call's static callee and decides which
// tier it belongs to, returning a human-readable call name.
func classifyErrCall(info *types.Info, call *ast.CallExpr) (errCallClass, string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return notErrCall, ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return notErrCall, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return notErrCall, ""
	}
	name := callDisplayName(call, fn)
	if isDurabilityFunc(fn, sig) {
		return durabilityCall, name
	}
	if sig.Recv() != nil && fn.Name() == "Close" {
		return generalClose, name
	}
	return notErrCall, ""
}

// isDurabilityFunc matches the durability tier: WAL/server persistence
// entry points and os.File's Close/Sync.
func isDurabilityFunc(fn *types.Func, sig *types.Signature) bool {
	full := fn.FullName()
	if full == "(*os.File).Close" || full == "(*os.File).Sync" {
		return true
	}
	path := fn.Pkg().Path()
	if !strings.Contains(path, "internal/wal") && !strings.Contains(path, "internal/server") {
		return false
	}
	switch fn.Name() {
	case "Close", "Sync", "Flush", "Retire", "Commit", "Compact", "Truncate":
		return true
	}
	return strings.HasPrefix(fn.Name(), "Append") ||
		strings.HasPrefix(fn.Name(), "Snapshot") ||
		strings.HasPrefix(fn.Name(), "Write")
}

// lastResultIsError reports whether the signature's final result is the
// error interface.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), errorType)
}

var errorType = types.Universe.Lookup("error").Type()

// callDisplayName renders the call's source spelling (l.Close, f.Sync)
// falling back to the function name.
func callDisplayName(call *ast.CallExpr, fn *types.Func) string {
	if se, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base := exprPath(se.X); base != "" {
			return base + "." + se.Sel.Name
		}
	}
	return fn.Name()
}
