package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted expectation patterns from a want comment:
//
//	a == b // want "floating-point == comparison"
//	/* want "unused suppression" */ //lint:ignore floatcmp reason
//
// Patterns may be double- or backtick-quoted (backticks let a pattern
// contain double quotes). Multiple patterns on one comment expect
// multiple diagnostics on that line. An optional offset, want+N, moves
// the expectation N lines below the comment — needed where a trailing
// comment on the flagged line would itself count as documentation.
var wantRe = regexp.MustCompile("want(\\+\\d+)?\\s+((?:(?:\"[^\"]*\"|`[^`]*`)\\s*)+)")

var quotedRe = regexp.MustCompile("\"([^\"]*)\"|`([^`]*)`")

// goldenWants collects the want expectations of every file in pkgs,
// keyed by file:line.
func goldenWants(t *testing.T, pkgs []*Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] != "" {
						n, err := strconv.Atoi(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want offset %q", pos.Filename, line, m[1])
						}
						line += n
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					for _, q := range quotedRe.FindAllStringSubmatch(m[2], -1) {
						pat := q[1]
						if pat == "" {
							pat = q[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads the testdata module under testdata/src/<dir>, runs the
// named analyzers over it, and checks the diagnostics against the
// files' want comments: every diagnostic must match a want on its line,
// and every want must be matched by exactly one diagnostic.
func runGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", "src", dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under testdata/src/%s", dir)
	}
	wants := goldenWants(t, pkgs)
	matched := map[string][]bool{}
	for _, d := range Run(pkgs, analyzers) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		res, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if matched[key] == nil {
			matched[key] = make([]bool, len(res))
		}
		found := false
		for i, re := range res {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("diagnostic does not match any want on its line: %s", d)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if matched[key] == nil || !matched[key][i] {
				t.Errorf("%s: want %q matched no diagnostic", key, re)
			}
		}
	}
}

func TestFloatCmpGolden(t *testing.T)    { runGolden(t, "floatcmp", FloatCmp) }
func TestGlobalRandGolden(t *testing.T)  { runGolden(t, "globalrand", GlobalRand) }
func TestLayeringGolden(t *testing.T)    { runGolden(t, "layering", Layering) }
func TestStdlibOnlyGolden(t *testing.T)  { runGolden(t, "stdlibonly", StdlibOnly) }
func TestExportedDocGolden(t *testing.T) { runGolden(t, "exporteddoc", ExportedDoc) }
func TestMapOrderGolden(t *testing.T)    { runGolden(t, "maporder", MapOrder) }
func TestLockGuardGolden(t *testing.T)   { runGolden(t, "lockguard", LockGuard) }
func TestErrFlowGolden(t *testing.T)     { runGolden(t, "errflow", ErrFlow) }
func TestHotPathGolden(t *testing.T)     { runGolden(t, "hotpath", HotPath) }
func TestDirectiveGolden(t *testing.T)   { runGolden(t, "directive", FloatCmp, Directive) }

// TestSuppressWrapGolden pins directive binding on statements wrapped
// across lines: standalone directives cover the whole next statement,
// trailing directives only their own line. Directive runs too, so an
// unused (mis-bound) suppression would fail the test.
func TestSuppressWrapGolden(t *testing.T) { runGolden(t, "suppresswrap", FloatCmp, Directive) }

// TestSuppression proves //lint:ignore silences a finding end to end:
// the suppress module contains real floatcmp violations, every one
// covered by a reasoned directive, so the full suite reports nothing.
func TestSuppression(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "suppress"), nil)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("suppressed module produced a diagnostic: %s", d)
	}
}

// TestDiagnosticFormat pins the file:line: [analyzer] message rendering
// the Makefile and editors rely on.
func TestDiagnosticFormat(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "floatcmp"), nil)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []*Analyzer{FloatCmp})
	if len(diags) == 0 {
		t.Fatal("expected findings in the floatcmp module")
	}
	s := diags[0].String()
	re := regexp.MustCompile(`^.+\.go:\d+: \[floatcmp\] .+$`)
	if !re.MatchString(s) {
		t.Errorf("diagnostic %q does not match file:line: [analyzer] message", s)
	}
	if !strings.Contains(s, filepath.Join("testdata", "src", "floatcmp")) {
		t.Errorf("diagnostic %q does not carry the file path", s)
	}
}

// TestAnalyzersRegistered pins the registry: the original five project
// analyzers, the four dataflow analyzers, and the directive validator,
// each with a one-line doc.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"floatcmp", "globalrand", "layering", "stdlibonly", "exporteddoc",
		"maporder", "lockguard", "errflow", "hotpath", "directive"}
	as := Analyzers()
	if len(as) != len(want) {
		t.Fatalf("Analyzers() = %d analyzers, want %d", len(as), len(want))
	}
	for i, name := range want {
		if as[i].Name != name {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, as[i].Name, name)
		}
		if as[i].Doc == "" {
			t.Errorf("analyzer %q has no doc", as[i].Name)
		}
		if ByName(name) != as[i] {
			t.Errorf("ByName(%q) did not return the registered analyzer", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of an unknown analyzer should be nil")
	}
}

// TestSelfClean runs the full suite over this repository: the tree must
// stay free of findings, with every intentional exception carrying a
// reasoned, non-stale //lint:ignore. This is the machine-checked form of
// the acceptance criterion "crhlint ./... runs clean".
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	pkgs, err := Load(filepath.Join("..", ".."), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("repository finding: %s", d)
	}
}
