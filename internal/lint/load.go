package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Module locates the go.mod that governs the packages under analysis.
type Module struct {
	// Path is the module path declared by go.mod.
	Path string
	// Dir is the directory containing go.mod.
	Dir string
}

// FindModule walks upward from dir to the nearest go.mod and returns the
// module it declares.
func FindModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return nil, fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return &Module{Path: path, Dir: d}, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// A Package is one type-checked unit of analysis: the non-test and
// in-package test files of a directory, or the external (_test package)
// test files of a directory.
type Package struct {
	// Module is the module the package belongs to.
	Module *Module
	// ImportPath is the package's import path within the module.
	ImportPath string
	// RelPath is the module-relative directory ("" for the module root).
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// ForTest marks the external test package (package foo_test).
	ForTest bool
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files holds the parsed files in deterministic (sorted filename)
	// order.
	Files []*ast.File
	// Types is the type-checked package object. Never nil, but possibly
	// incomplete when TypeErrors is non-empty.
	Types *types.Package
	// TypesInfo records the resolved types, uses, and definitions for
	// the package's syntax. Never nil.
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems. The loader tolerates
	// them — a package that go build rejects is caught by the build
	// gate, not the linter — but analyzers may consult them.
	TypeErrors []error
}

// IsTestFile reports whether f is a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// Load parses and type-checks the packages selected by patterns,
// resolved relative to dir (which must lie inside a module). Patterns
// follow the go tool's shape: "./..." selects every package under dir,
// "sub/..." every package under sub, anything else a single directory.
// With no patterns, "./..." is assumed.
//
// Loading is self-contained: imports are type-checked from source
// (stdlib from GOROOT, module packages from the module tree) by a
// tolerant importer, so no compiled export data, go command invocation,
// or third-party loader is needed.
func Load(dir string, patterns []string) ([]*Package, error) {
	mod, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(abs, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	im := newImporter(fset, mod)
	var pkgs []*Package
	for _, d := range dirs {
		got, err := loadDir(fset, im, mod, d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// expandPatterns resolves go-style package patterns to directories.
func expandPatterns(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(dir, rest)
			err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !de.IsDir() {
					return nil
				}
				name := de.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor" || name == "bin" || name == "results") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(dir, pat))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks one directory into up to two packages:
// the base package (non-test plus in-package test files) and the
// external test package, when _test-package files exist.
func loadDir(fset *token.FileSet, im *sourceImporter, mod *Module, dir string) ([]*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %v", dir, err)
	}
	rel, err := filepath.Rel(mod.Dir, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	importPath := mod.Path
	if rel != "" {
		importPath = mod.Path + "/" + rel
	}

	var pkgs []*Package
	base := append(append([]string{}, bp.GoFiles...), bp.CgoFiles...)
	base = append(base, bp.TestGoFiles...)
	sort.Strings(base)
	if len(base) > 0 {
		p, err := checkFiles(fset, im, mod, dir, rel, importPath, base, false)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if len(bp.XTestGoFiles) > 0 {
		xs := append([]string{}, bp.XTestGoFiles...)
		sort.Strings(xs)
		p, err := checkFiles(fset, im, mod, dir, rel, importPath, xs, true)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkFiles parses the named files in dir and type-checks them as one
// package, tolerating type errors.
func checkFiles(fset *token.FileSet, im *sourceImporter, mod *Module, dir, rel, importPath string, names []string, forTest bool) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	p := &Package{
		Module:     mod,
		ImportPath: importPath,
		RelPath:    rel,
		Dir:        dir,
		ForTest:    forTest,
		Fset:       fset,
		Files:      files,
	}
	p.TypesInfo = &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer:    im,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	checkPath := importPath
	if forTest {
		checkPath += "_test"
	}
	// The returned error restates TypeErrors; checking continues past
	// them, which is all we need.
	p.Types, _ = conf.Check(checkPath, fset, files, p.TypesInfo)
	return p, nil
}

// sourceImporter type-checks imported packages from source: stdlib
// packages from GOROOT/src (including GOROOT/src/vendor for the paths
// stdlib itself vendors), module-local packages from the module tree.
// Function bodies of imports are skipped and type errors tolerated — an
// import only needs a usable exported surface for the analyzers to see
// correct types in the package under analysis.
type sourceImporter struct {
	fset    *token.FileSet
	mod     *Module
	goroot  string
	pkgs    map[string]*types.Package
	loading map[string]bool
}

func newImporter(fset *token.FileSet, mod *Module) *sourceImporter {
	return &sourceImporter{
		fset:    fset,
		mod:     mod,
		goroot:  build.Default.GOROOT,
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (im *sourceImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (im *sourceImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	if im.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	dir, err := im.resolve(path)
	if err != nil {
		return nil, err
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %v", path, err)
	}
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: import %q: %v", path, err)
		}
		files = append(files, f)
	}
	im.loading[path] = true
	defer delete(im.loading, path)
	conf := types.Config{
		Importer:         im,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {},
	}
	pkg, _ := conf.Check(path, im.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("lint: import %q: type-checking produced no package", path)
	}
	pkg.MarkComplete()
	im.pkgs[path] = pkg
	return pkg, nil
}

// resolve maps an import path to a source directory.
func (im *sourceImporter) resolve(path string) (string, error) {
	if path == im.mod.Path {
		return im.mod.Dir, nil
	}
	if rest, ok := strings.CutPrefix(path, im.mod.Path+"/"); ok {
		return filepath.Join(im.mod.Dir, filepath.FromSlash(rest)), nil
	}
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	if !strings.Contains(first, ".") {
		return filepath.Join(im.goroot, "src", filepath.FromSlash(path)), nil
	}
	// Paths stdlib itself vendors (e.g. golang.org/x/net/http2/hpack).
	vendored := filepath.Join(im.goroot, "src", "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vendored); err == nil {
		return vendored, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q: not stdlib, not in module %s (the module is dependency-free by policy)", path, im.mod.Path)
}
