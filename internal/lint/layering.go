package lint

import (
	"strconv"
	"strings"
)

// layerRule forbids packages under each From prefix from importing
// packages under any Forbidden prefix. Prefixes are module-relative
// directories.
type layerRule struct {
	From      []string
	Forbidden []string
	Why       string
}

// layerRules is the repository's import DAG, mirrored in docs/LINT.md
// and DESIGN.md. The numeric substrate must stay below the solver and
// service layers, and the server subsystem stays private to its binary.
var layerRules = []layerRule{
	{
		From:      []string{"internal/stats", "internal/loss", "internal/data", "internal/col"},
		Forbidden: []string{"internal/core", "internal/server", "internal/experiments"},
		Why:       "the numeric substrate must not depend on the solver, server, or experiment layers",
	},
	{
		From:      []string{"internal/obs"},
		Forbidden: []string{"internal/core", "internal/server", "internal/stream", "internal/experiments", "internal/mapreduce", "internal/baseline", "internal/data", "internal/wal"},
		Why:       "observability is a substrate every layer may instrument with; a cycle back into the instrumented layers would make that impossible",
	},
	{
		From:      []string{"internal/wal"},
		Forbidden: []string{"internal/core", "internal/server", "internal/stream", "internal/experiments", "internal/mapreduce", "internal/baseline", "internal/data", "internal/stats", "internal/loss"},
		Why:       "the durability substrate stores framed bytes; the server converts at its boundary, so wal stays below every model and solver layer (docs/DURABILITY.md)",
	},
}

// serverDir is the subsystem only its binary may import.
const serverDir = "internal/server"

// serverImporters lists the module-relative directories allowed to
// import internal/server: the subsystem itself and the crhd binary
// (tests included — test files share their directory's privilege).
var serverImporters = []string{serverDir, "cmd/crhd"}

// walDir is the durability substrate; walImporters the directories
// allowed to import it: the package itself, the server subsystem that
// owns the durable ingest path, and cmd/crhbench, whose -ingest sweep
// benchmarks WAL append throughput directly (the one sanctioned
// exemption — see docs/DURABILITY.md).
const walDir = "internal/wal"

var walImporters = []string{walDir, serverDir, "cmd/crhbench"} // see walDir

// colDir is the columnar solver substrate. It sits between data and
// core: colImporters lists the only directories allowed to import it
// (the solver that runs on the frozen columns), and colAllowed the only
// internal subtree it may import (the dataset model it freezes). Both
// fences keep the frozen layout a solver implementation detail — every
// other consumer sees datasets through internal/data or results through
// internal/core.
const colDir = "internal/col"

var (
	colImporters = []string{colDir, "internal/core"} // see colDir
	colAllowed   = []string{"internal/data"}         // see colDir
)

// crhloadDir is the load-generator binary; crhloadAllowed the only
// internal subtree it may import. crhload exists to measure crhd from the
// outside, so it must see the server exactly as real clients do — over
// HTTP, with its own mirrored JSON shapes — and may share only the
// observability substrate (histograms, windows) for its measurements.
const crhloadDir = "cmd/crhload"

var crhloadAllowed = []string{"internal/obs"} // see crhloadDir

// Layering enforces the repository's import DAG: internal/{stats,loss,
// data} must not import internal/{core,server,experiments}, internal/obs
// must not import any layer it instruments, and nothing
// outside cmd/crhd (and its tests) imports internal/server. The
// layering is what lets the numeric substrate be tested, fuzzed, and
// reused in isolation, and keeps every consumer of the server behind
// its HTTP surface.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the import DAG: substrate below solver/server; internal/server private to cmd/crhd",
	Run:  runLayering,
}

func runLayering(pass *Pass) {
	rel := pass.Pkg.RelPath
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			target, ok := moduleRel(pass.Pkg, path)
			if !ok {
				continue
			}
			for _, rule := range layerRules {
				if underAny(rel, rule.From) && underAny(target, rule.Forbidden) {
					pass.Reportf(imp.Pos(), "%s must not import %s: %s", rel, target, rule.Why)
				}
			}
			if underAny(target, []string{serverDir}) && !underAny(rel, serverImporters) {
				from := rel
				if from == "" {
					from = "the root package"
				}
				pass.Reportf(imp.Pos(), "%s must not import %s: the server subsystem is private to cmd/crhd; use the HTTP API", from, serverDir)
			}
			if underAny(target, []string{walDir}) && !underAny(rel, walImporters) {
				from := rel
				if from == "" {
					from = "the root package"
				}
				pass.Reportf(imp.Pos(), "%s must not import %s: the durability substrate is private to internal/server (cmd/crhbench's append benchmark excepted)", from, walDir)
			}
			if underAny(target, []string{colDir}) && !underAny(rel, colImporters) {
				from := rel
				if from == "" {
					from = "the root package"
				}
				pass.Reportf(imp.Pos(), "%s must not import %s: the columnar layout is private to internal/core; consume datasets via internal/data or solve via internal/core", from, colDir)
			}
			if underAny(rel, []string{colDir}) && strings.HasPrefix(target, "internal/") && !underAny(target, colAllowed) && !underAny(target, []string{colDir}) {
				pass.Reportf(imp.Pos(), "%s must not import %s: the columnar freeze depends only on the dataset model (internal/data)", rel, target)
			}
			if underAny(rel, []string{crhloadDir}) && strings.HasPrefix(target, "internal/") && !underAny(target, crhloadAllowed) {
				pass.Reportf(imp.Pos(), "%s must not import %s: the load generator measures crhd over its public HTTP surface and may share only internal/obs", rel, target)
			}
		}
	}
}

// moduleRel converts an import path to a module-relative directory,
// reporting false for imports outside the module.
func moduleRel(pkg *Package, path string) (string, bool) {
	if path == pkg.Module.Path {
		return "", true
	}
	rest, ok := strings.CutPrefix(path, pkg.Module.Path+"/")
	return rest, ok
}

// underAny reports whether dir equals, or lies under, any prefix.
func underAny(dir string, prefixes []string) bool {
	for _, p := range prefixes {
		if dir == p || strings.HasPrefix(dir, p+"/") {
			return true
		}
	}
	return false
}
