package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags map iteration whose order can leak into observable
// output. Go randomizes map range order per run; CRH's reproducibility
// contract (bit-identical resolved truths across runs and worker
// budgets, docs/PARALLEL.md) dies the moment a map range feeds an
// order-sensitive computation: a float accumulation (summation order
// changes the rounding), string concatenation, a write to an encoder or
// output stream, or a slice that later reaches one of those without
// passing through a sort.
//
// Two shapes are reported, in non-test code:
//
//   - a direct sink inside the range body: s += f(v) on a float or
//     string, or a Write/Encode/Print call whose arguments depend on
//     the iteration variables;
//   - a collector: keys or values appended to a slice declared outside
//     the loop, where some later read of that slice is not dominated
//     (in the control-flow-graph sense) by a sort call on it.
//
// The negative form is the fix: collect, sort, then consume — exactly
// the EditDistance candidate-selection pattern PR 2's sweep installed.
// Commutative aggregations (integer counters, max/min tracking, map
// writes) are not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map-range iteration order flowing into order-sensitive sinks without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapOrderFunc(pass, fd, fd.Body)
			}
		}
	}
}

// checkMapOrderFunc analyzes one function body, recursing into nested
// function literals as their own functions (a collector and its sort
// must live in the same function for the dominance argument to hold).
func checkMapOrderFunc(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	var lits []*ast.FuncLit
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.RangeStmt:
			if isMapType(pass.Pkg.TypesInfo.TypeOf(n.X)) {
				ranges = append(ranges, n)
			}
		}
		return true
	})
	for _, r := range ranges {
		checkMapRange(pass, fn, body, r)
	}
	for _, lit := range lits {
		checkMapOrderFunc(pass, lit, lit.Body)
	}
}

// checkMapRange reports direct sinks inside r's body and collects
// slice accumulators for the sort-dominance check.
func checkMapRange(pass *Pass, fn ast.Node, fnBody *ast.BlockStmt, r *ast.RangeStmt) {
	info := pass.Pkg.TypesInfo
	loopVars := map[types.Object]bool{}
	for _, kv := range []ast.Expr{r.Key, r.Value} {
		if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return // `for range m` only counts iterations
	}
	dependsOnLoop := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	collectors := map[*types.Var]bool{}
	inspectShallow(r.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if v, ok := collectorAppend(info, n); ok {
				// Only accumulators declared outside the loop can leak
				// the order; loop-local slices die each iteration.
				if v.Pos() < r.Pos() && appendArgsDepend(info, n, dependsOnLoop) {
					collectors[v] = true
				}
				return true
			}
			if ok, what := orderSensitiveAssign(info, n, dependsOnLoop); ok {
				pass.Reportf(n.Pos(), "map iteration order flows into %s; iterate sorted keys instead", what)
			}
		case *ast.CallExpr:
			if name, ok := sinkCall(info, n); ok {
				for _, a := range n.Args {
					if dependsOnLoop(a) {
						pass.Reportf(n.Pos(), "map iteration order flows into %s; iterate sorted keys instead", name)
						break
					}
				}
			}
		}
		return true
	})
	for v := range collectors {
		checkCollectorUses(pass, fn, fnBody, r, v)
	}
}

// collectorAppend matches `dst = append(dst, ...)` (also in multi-value
// assignments) and returns dst's variable.
func collectorAppend(info *types.Info, as *ast.AssignStmt) (*types.Var, bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return nil, false
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		var obj types.Object
		if o, ok := info.Uses[id]; ok {
			obj = o
		} else {
			obj = info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, true
		}
	}
	return nil, false
}

// appendArgsDepend reports whether any appended value depends on the
// loop variables.
func appendArgsDepend(info *types.Info, as *ast.AssignStmt, dep func(ast.Expr) bool) bool {
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") {
			continue
		}
		for _, a := range call.Args[1:] {
			if dep(a) {
				return true
			}
		}
	}
	return false
}

// orderSensitiveAssign matches accumulation whose result depends on
// iteration order: += (or x = x + e) on float or string operands fed by
// loop-dependent values.
func orderSensitiveAssign(info *types.Info, as *ast.AssignStmt, dep func(ast.Expr) bool) (bool, string) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false, ""
	}
	lhsType := info.TypeOf(as.Lhs[0])
	if lhsType == nil {
		return false, ""
	}
	basic, ok := lhsType.Underlying().(*types.Basic)
	if !ok {
		return false, ""
	}
	kind := ""
	switch {
	case basic.Info()&types.IsFloat != 0:
		kind = "a floating-point accumulation (summation order changes the rounding)"
	case basic.Info()&types.IsString != 0:
		kind = "string concatenation"
	default:
		return false, ""
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		if dep(as.Rhs[0]) {
			return true, kind
		}
	case token.ASSIGN:
		// x = x + e
		if be, ok := as.Rhs[0].(*ast.BinaryExpr); ok && be.Op == token.ADD {
			if lid, ok := as.Lhs[0].(*ast.Ident); ok && mentionsObject(info, be, info.Uses[lid]) && dep(be) {
				return true, kind
			}
		}
	}
	return false, ""
}

// sinkCall matches calls that emit or encode data: fmt's printing
// family and Write/Encode-shaped methods (io.Writer, buffers,
// encoders, the WAL's AppendBatch).
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := se.Sel.Name
	if obj, ok := info.Uses[se.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "AppendBatch":
		if _, ok := info.Uses[se.Sel].(*types.Func); ok {
			return name + " call", true
		}
	}
	return "", false
}

// checkCollectorUses reports reads of a collector slice that no sort
// call dominates.
func checkCollectorUses(pass *Pass, fn ast.Node, body *ast.BlockStmt, r *ast.RangeStmt, v *types.Var) {
	info := pass.Pkg.TypesInfo
	g := pass.CFG(fn)

	type site struct {
		pos  token.Pos
		node ast.Node
	}
	var sorts, uses []site

	// Walk the function for uses of v after the collecting loop,
	// classifying each: a sort call on v, a neutral reset/append/len,
	// or an order-sensitive read.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false // captured uses are out of scope for dominance
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v && id.Pos() >= r.End() {
			cls := classifyUse(info, stack, id)
			switch cls {
			case useSort:
				sorts = append(sorts, site{id.Pos(), id})
			case useOrder:
				uses = append(uses, site{id.Pos(), id})
			}
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n != nil {
			stack = append(stack, n)
			if !visit(n) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		}
		return visit(n)
	})

	for _, u := range uses {
		ub, ui := g.BlockAt(u.pos)
		if ub == nil {
			continue
		}
		guarded := false
		for _, s := range sorts {
			sb, si := g.BlockAt(s.pos)
			if sb == nil {
				continue
			}
			if sb == ub && si <= ui {
				guarded = true
				break
			}
			if sb != ub && g.Dominates(sb, ub) {
				guarded = true
				break
			}
		}
		if !guarded {
			pass.Reportf(u.pos, "%s holds map-range keys (collected at line %d) and is read here without a dominating sort",
				v.Name(), pass.Pkg.Fset.Position(r.Pos()).Line)
		}
	}
}

type useClass int

const (
	useNeutral useClass = iota
	useSort
	useOrder
)

// classifyUse decides what a single identifier use of the collector
// means, given the ancestor stack.
func classifyUse(info *types.Info, stack []ast.Node, id *ast.Ident) useClass {
	// Find the nearest interesting ancestor.
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CallExpr:
			if isSortCall(info, p) {
				return useSort
			}
			if isBuiltin(info, p, "len") || isBuiltin(info, p, "cap") || isBuiltin(info, p, "append") {
				return useNeutral
			}
			return useOrder
		case *ast.SliceExpr:
			return useNeutral // x[:0] resets; the reslice itself reads no order
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == stack[i+1] {
					return useNeutral // assignment target
				}
			}
			return useOrder
		case *ast.RangeStmt:
			if p.X == stack[i+1] || p.X == ast.Node(id) {
				return useOrder // iterating the collector consumes order
			}
		case *ast.IndexExpr, *ast.ReturnStmt, *ast.BinaryExpr, *ast.KeyValueExpr, *ast.CompositeLit:
			return useOrder
		}
	}
	return useOrder
}

// isSortCall matches the sort/slices functions that fix an order:
// sort.Ints/Strings/Float64s/Slice/SliceStable/Sort/Stable and
// slices.Sort*.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// mentionsObject reports whether obj appears as an identifier in e.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// inspectShallow walks n with fn, where returning false prunes the
// subtree — a named wrapper for the ast.Inspect idiom used to stop at
// function-literal boundaries.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		return fn(x)
	})
}
