package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/crhkit/crh/internal/lint/flow"
)

// HotPath keeps the solver's inner loops allocation-free. A function
// annotated `//crh:hotpath` — and every module function it transitively
// calls, per the static call graph — must not contain an allocation
// site. The solver's weight and truth updates run per (entry, source,
// property) per iteration; one hidden allocation there turns the
// zero-steady-state-allocation design (docs/DESIGN.md, bench_test.go's
// allocs-per-op counts) into GC pressure proportional to data size.
//
// Flagged allocation sites:
//
//   - slice and map composite literals, and &T{...} (escapes to heap);
//     plain value struct literals are fine — they live in registers or
//     on the stack;
//   - make of a map or channel; make of a slice with a non-constant
//     length or capacity;
//   - new(T);
//   - append (growth reallocates; amortized-append scratch buffers take
//     a reasoned suppression);
//   - string <-> []byte / []rune conversions and string concatenation;
//   - implicit interface boxing: a concrete value passed to an
//     interface parameter, assigned to an interface variable, or
//     returned as an interface result (nil and interface-to-interface
//     are free);
//   - function literals that capture enclosing locals (non-capturing
//     literals are static), and go statements.
//
// Approximations: calls through interfaces and function values are not
// traversed (the call graph is static), and a function reached from two
// annotated roots is attributed to the lexically first one.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation sites in //crh:hotpath functions and their transitive callees",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	info := pass.Pkg.TypesInfo
	var roots []string
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPathAnnotated(fd) {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				roots = append(roots, flow.FuncID(obj))
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	cg := pass.CallGraph()
	reached := cg.Reachable(roots)
	ids := make([]string, 0, len(reached))
	for id := range reached {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fi := cg.Funcs[id]
		if fi == nil {
			continue
		}
		scanAllocs(pass, fi, reached[id])
	}
}

// isHotPathAnnotated reports whether the declaration's doc comment
// carries //crh:hotpath.
func isHotPathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "crh:hotpath") {
			return true
		}
	}
	return false
}

// scanAllocs reports every allocation site in one reached function.
// fi.Info is the defining package's type information, which may differ
// from pass.Pkg's — the call graph carries it precisely so callees in
// other packages can be scanned here.
func scanAllocs(pass *Pass, fi *flow.FuncInfo, rootID string) {
	info := fi.Info
	root := shortFuncID(pass, rootID)
	self := shortFuncID(pass, fi.ID)
	via := ""
	if fi.ID != rootID {
		via = " (on the //crh:hotpath path from " + root + ")"
	}
	reported := map[ast.Node]bool{}
	report := func(pos token.Pos, msg string) {
		pass.Reportf(pos, "%s in hot-path function %s%s", msg, self, via)
	}
	// markLits prevents nested composite literals from re-reporting.
	markLits := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.CompositeLit); ok {
				reported[x] = true
			}
			return true
		})
	}

	decl := fi.Decl
	declSig, _ := info.Defs[decl.Name].(*types.Func)
	var sigStack []*types.Signature
	if declSig != nil {
		if s, ok := declSig.Type().(*types.Signature); ok {
			sigStack = append(sigStack, s)
		}
	}

	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if captures(info, decl, n) {
				report(n.Pos(), "closure captures enclosing locals and allocates")
			}
			if s, ok := info.TypeOf(n).(*types.Signature); ok {
				sigStack = append(sigStack, s)
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine")
		case *ast.CompositeLit:
			if reported[n] {
				return true
			}
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
				markLits(n)
			case *types.Map:
				report(n.Pos(), "map literal allocates")
				markLits(n)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparenExpr(n.X).(*ast.CompositeLit); ok && !reported[cl] {
					report(n.Pos(), "&composite literal escapes to the heap")
					markLits(cl)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) && !isConstExpr(info, n) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkCallAlloc(info, n, report)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if boxes(info, info.TypeOf(n.Lhs[i]), n.Rhs[i]) {
						report(n.Rhs[i].Pos(), "assignment boxes a concrete value into an interface")
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil && len(n.Values) == len(n.Names) {
				for _, v := range n.Values {
					if boxes(info, info.TypeOf(n.Type), v) {
						report(v.Pos(), "declaration boxes a concrete value into an interface")
					}
				}
			}
		case *ast.ReturnStmt:
			if len(sigStack) == 0 {
				return true
			}
			res := sigStack[len(sigStack)-1].Results()
			if res.Len() == len(n.Results) {
				for i, r := range n.Results {
					if boxes(info, res.At(i).Type(), r) {
						report(r.Pos(), "return boxes a concrete value into an interface")
					}
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok && len(sigStack) > 1 {
				sigStack = sigStack[:len(sigStack)-1]
			}
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		return visit(n)
	})
}

// checkCallAlloc handles the call-shaped allocation sites: make, new,
// append, string conversions, and argument boxing.
func checkCallAlloc(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := info.TypeOf(call), info.TypeOf(call.Args[0])
		if isStringByteConversion(dst, src) && !isConstExpr(info, call) {
			report(call.Pos(), "string <-> byte/rune slice conversion allocates")
		}
		return
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "new":
				report(call.Pos(), "new() allocates")
			case "append":
				report(call.Pos(), "append may grow and reallocate")
			case "make":
				mt := info.TypeOf(call)
				if mt == nil {
					return
				}
				switch mt.Underlying().(type) {
				case *types.Map:
					report(call.Pos(), "make(map) allocates")
				case *types.Chan:
					report(call.Pos(), "make(chan) allocates")
				case *types.Slice:
					for _, sz := range call.Args[1:] {
						if !isConstExpr(info, sz) {
							report(call.Pos(), "make([]T) with non-constant size allocates unboundedly")
							break
						}
					}
				}
			}
			return
		}
	}
	// Argument boxing against the callee's signature.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // a ...slice passes through unboxed
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(info, pt, arg) {
			report(arg.Pos(), "argument boxes a concrete value into an interface parameter")
			return // one report per call is enough
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// converts a concrete value to an interface (an allocation unless the
// value is pointer-shaped and hot in cache — conservatively flagged).
func boxes(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// captures reports whether lit references a variable declared in the
// enclosing function but outside the literal itself.
func captures(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return !found
		}
		if v.Pos() >= enclosing.Pos() && v.Pos() < lit.Pos() {
			found = true
		}
		return !found
	})
	return found
}

// isStringByteConversion matches string <-> []byte / []rune.
func isStringByteConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// isConstExpr reports whether the expression is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// shortFuncID strips the module path prefix from a call-graph ID for
// readable diagnostics.
func shortFuncID(pass *Pass, id string) string {
	return strings.ReplaceAll(id, pass.Pkg.Module.Path+"/", "")
}
