package lint

import (
	"strconv"
	"strings"
)

// StdlibOnly flags imports that are neither standard library nor
// module-local, anywhere in the tree — tests, examples, and tools
// included. The module ships with an empty dependency graph (go.mod has
// no require directives) and stays that way by policy: every algorithm
// is implemented from the paper, the server is net/http, and this
// linter itself is go/ast + go/types. A dotted first path element is
// what distinguishes an external module path from the stdlib namespace.
// Cgo ("C") is likewise flagged: it would tie the build to a C
// toolchain.
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc:  "flag any import that is neither standard library nor module-local (zero-dependency policy)",
	Run:  runStdlibOnly,
}

func runStdlibOnly(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "C" {
				pass.Reportf(imp.Pos(), "cgo is not allowed: the module builds with the Go toolchain alone")
				continue
			}
			if _, local := moduleRel(pass.Pkg, path); local {
				continue
			}
			first := path
			if i := strings.IndexByte(path, '/'); i >= 0 {
				first = path[:i]
			}
			if !strings.Contains(first, ".") {
				continue // stdlib namespace
			}
			pass.Reportf(imp.Pos(), "import %q is neither stdlib nor module-local: the module is dependency-free by policy", path)
		}
	}
}
