package flow

// ReversePostorder returns the reachable blocks in reverse postorder of
// a depth-first traversal from Entry — the canonical iteration order
// for forward dataflow. The result is computed once and cached.
func (g *Graph) ReversePostorder() []*Block {
	if g.rpo != nil {
		return g.rpo
	}
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	g.rpo = make([]*Block, len(post))
	g.rpoNum = make(map[*Block]int, len(post))
	for i := range post {
		b := post[len(post)-1-i]
		g.rpo[i] = b
		g.rpoNum[b] = i
	}
	return g.rpo
}

// Idom returns b's immediate dominator, or nil for the entry block and
// for unreachable blocks. Computed with the Cooper–Harvey–Kennedy
// iterative algorithm on the first call and cached.
func (g *Graph) Idom(b *Block) *Block {
	if g.idom == nil {
		g.computeIdom()
	}
	return g.idom[b]
}

func (g *Graph) computeIdom() {
	rpo := g.ReversePostorder()
	g.idom = make(map[*Block]*Block, len(rpo))
	g.idom[g.Entry] = g.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if g.idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom != nil && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
	// Entry's conventional self-idom was only needed during iteration.
	g.idom[g.Entry] = nil
}

// intersect walks two blocks up the (partially built) dominator tree to
// their common ancestor, comparing by RPO number.
func (g *Graph) intersect(a, b *Block) *Block {
	for a != b {
		for g.rpoNum[a] > g.rpoNum[b] {
			a = g.idom[a]
		}
		for g.rpoNum[b] > g.rpoNum[a] {
			b = g.idom[b]
		}
	}
	return a
}

// Dominates reports whether every path from Entry to b passes through
// a. Every block dominates itself. Unreachable blocks are dominated by
// nothing and dominate nothing (except themselves).
func (g *Graph) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	if g.idom == nil {
		g.computeIdom()
	}
	for d := g.idom[b]; d != nil; d = g.idom[d] {
		if d == a {
			return true
		}
		if d == g.Entry {
			break
		}
	}
	return false
}
