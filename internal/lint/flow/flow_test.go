package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one file of source and returns its AST and info.
func load(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type check: %v", err)
	}
	return fset, f, info
}

// funcDecl finds the named function declaration.
func funcDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

const cfgSrc = `package p

func straight(a int) int {
	b := a + 1
	return b
}

func branch(a int) int {
	if a > 0 {
		a = 1
	} else {
		a = 2
	}
	return a
}

func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
		if s > 100 {
			break
		}
	}
	return s
}

func ranger(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}

func early(a int) int {
	if a < 0 {
		return -1
	}
	return a
}

func paniced(a int) int {
	if a < 0 {
		panic("negative")
	}
	return a
}

func labeled(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
		}
	}
	return 0
}

func switcher(a int) string {
	switch a {
	case 1:
		return "one"
	case 2:
		fallthrough
	case 3:
		return "few"
	}
	return "many"
}
`

// reachableBlocks counts blocks reachable from entry.
func reachableBlocks(g *Graph) int { return len(g.ReversePostorder()) }

func TestCFGShapes(t *testing.T) {
	_, f, _ := load(t, cfgSrc)
	for _, tc := range []struct {
		fn string
		// minReach sanity-checks that construction produced a connected
		// graph of the right magnitude without pinning exact shapes.
		minReach int
	}{
		{"straight", 2},
		{"branch", 4},
		{"loop", 5},
		{"ranger", 4},
		{"early", 3},
		{"paniced", 3},
		{"labeled", 6},
		{"switcher", 5},
	} {
		g := New(funcDecl(t, f, tc.fn))
		if got := reachableBlocks(g); got < tc.minReach {
			t.Errorf("%s: %d reachable blocks, want >= %d", tc.fn, got, tc.minReach)
		}
		// Exit must be reachable: every function here returns.
		found := false
		for _, b := range g.ReversePostorder() {
			if b == g.Exit {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: exit unreachable", tc.fn)
		}
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	_, f, _ := load(t, cfgSrc)
	g := New(funcDecl(t, f, "loop"))
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatal("reverse postorder does not start at entry")
	}
}

// nodeAt finds the block holding the node whose rendered position line
// matches line.
func blockAtLine(t *testing.T, fset *token.FileSet, g *Graph, line int) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == line {
				return b
			}
		}
	}
	t.Fatalf("no block node on line %d", line)
	return nil
}

func TestDominance(t *testing.T) {
	src := `package p

func f(a int) int {
	b := a * 2    // line 4: dominates everything below
	if a > 0 {
		b = 3     // line 6: then-branch only
	} else {
		b = 4     // line 8: else-branch only
	}
	return b      // line 10: join
}
`
	fset, f, _ := load(t, src)
	g := New(funcDecl(t, f, "f"))
	def := blockAtLine(t, fset, g, 4)
	then := blockAtLine(t, fset, g, 6)
	els := blockAtLine(t, fset, g, 8)
	ret := blockAtLine(t, fset, g, 10)

	if !g.Dominates(def, ret) {
		t.Error("line 4 should dominate the return")
	}
	if !g.Dominates(def, then) || !g.Dominates(def, els) {
		t.Error("line 4 should dominate both branches")
	}
	if g.Dominates(then, ret) {
		t.Error("the then-branch must not dominate the join")
	}
	if g.Dominates(then, els) || g.Dominates(els, then) {
		t.Error("sibling branches must not dominate each other")
	}
	if !g.Dominates(g.Entry, ret) {
		t.Error("entry dominates everything reachable")
	}
}

func TestLivenessUsedAfter(t *testing.T) {
	src := `package p

func f() error { return nil }

func checked() error {
	err := f()       // line 6: used below
	if err != nil {
		return err
	}
	return nil
}

func dead() {
	err := f()       // line 14: overwritten before any read
	err = f()        // line 15: read below
	if err != nil {
		println("x")
	}
}

func escapes() {
	err := f()       // line 22: captured by a closure
	go func() { _ = err }()
	err = f()
	_ = err
}
`
	fset, f, info := load(t, src)

	findAssign := func(fn string, line int) (*Graph, ast.Node, *types.Var) {
		g := New(funcDecl(t, f, fn))
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				if fset.Position(n.Pos()).Line != line {
					continue
				}
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					continue
				}
				id := as.Lhs[0].(*ast.Ident)
				var v *types.Var
				if o, ok := info.Defs[id]; ok {
					v = o.(*types.Var)
				} else {
					v = info.Uses[id].(*types.Var)
				}
				return g, n, v
			}
		}
		t.Fatalf("%s: no assignment on line %d", fn, line)
		return nil, nil, nil
	}

	g, n, v := findAssign("checked", 6)
	if !NewLiveness(g, info).UsedAfter(n, v) {
		t.Error("checked: err at line 6 is read by the if — UsedAfter should be true")
	}
	g, n, v = findAssign("dead", 14)
	if NewLiveness(g, info).UsedAfter(n, v) {
		t.Error("dead: err at line 14 is overwritten unread — UsedAfter should be false")
	}
	g, n, v = findAssign("escapes", 22)
	if !NewLiveness(g, info).UsedAfter(n, v) {
		t.Error("escapes: err is captured by a closure — UsedAfter must be conservatively true")
	}
}

func TestCallGraph(t *testing.T) {
	src := `package p

func leaf() {}

func mid() { leaf() }

func root() {
	mid()
	f := func() { leaf() }
	f()
}

func island() {}

type T struct{}

func (t *T) Method() { mid() }

func viaMethod(t *T) { t.Method() }
`
	_, f, info := load(t, src)
	cg := NewCallGraph("p")
	// The test package path is "p"; AddPackage keys everything by
	// FullName, which for package-level funcs is "p.name".
	cg.AddPackage([]*ast.File{f}, info)

	rootID := "p.root"
	reached := cg.Reachable([]string{rootID})
	for _, want := range []string{"p.root", "p.mid", "p.leaf"} {
		if reached[want] != rootID {
			t.Errorf("%s not reached from root (got %q)", want, reached[want])
		}
	}
	if _, ok := reached["p.island"]; ok {
		t.Error("island must not be reachable from root")
	}
	methodReached := cg.Reachable([]string{"p.viaMethod"})
	if _, ok := methodReached["(*p.T).Method"]; !ok {
		t.Errorf("method call edge missing; reached = %v", methodReached)
	}
	if _, ok := methodReached["p.mid"]; !ok {
		t.Error("transitive edge through method missing")
	}
}
