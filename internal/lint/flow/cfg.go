// Package flow is the intraprocedural dataflow substrate under
// crhkit's lint framework: per-function control-flow graphs built from
// go/ast, reverse-postorder traversal and dominance over them, a
// lightweight liveness/use-def analysis for local variables, and a
// module-local static call graph. It is stdlib-only (no
// golang.org/x/tools) and deliberately approximate in the directions
// that keep analyzers quiet rather than noisy: panics terminate a
// block, defers run at function exit, and function literals are opaque
// from the enclosing function's point of view.
//
// The package exists so analyzers can ask control- and value-flow
// questions the type-level checks from PR 2 cannot: "is this access
// dominated by that Lock call", "is this error definition ever read",
// "does a sort lie on every path between this map range and that use".
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of statements: execution enters at
// the first node and leaves at the last, with no branching in between.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes holds the block's statements — and, for control headers,
	// the governing expression (an if/for condition, a switch tag) — in
	// execution order. Branch statements (break, continue, goto) carry
	// no evaluation and are represented purely as edges.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
}

// A Graph is the control-flow graph of one function body. Build one
// with New.
type Graph struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Entry receives control on function entry; Exit is the single
	// synthetic exit every return (and the fall-off end) reaches.
	Entry, Exit *Block
	// Blocks lists every block in creation order, including unreachable
	// ones; use ReversePostorder for a traversal of the reachable part.
	Blocks []*Block

	rpo    []*Block
	rpoNum map[*Block]int
	idom   map[*Block]*Block
}

// New builds the control-flow graph of fn, which must be an
// *ast.FuncDecl or *ast.FuncLit. Function literals nested inside the
// body are treated as opaque values: their bodies contribute no blocks
// or edges (build a separate Graph for them when their flow matters).
// A nil or missing body yields a trivial entry→exit graph.
func New(fn ast.Node) *Graph {
	g := &Graph{Fn: fn}
	b := &builder{g: g, labels: map[string]*labelBlocks{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry

	var body *ast.BlockStmt
	switch n := fn.(type) {
	case *ast.FuncDecl:
		body = n.Body
	case *ast.FuncLit:
		body = n.Body
	}
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, g.Exit)
	return g
}

// builder carries the construction state: the block under construction
// and the targets break/continue/goto resolve to.
type builder struct {
	g   *Graph
	cur *Block
	// breakTargets / continueTargets stack the innermost enclosing
	// targets; labeled entries note the label they answer to.
	breakTargets    []labeledTarget
	continueTargets []labeledTarget
	labels          map[string]*labelBlocks
}

type labeledTarget struct {
	label string // "" for the innermost unlabeled target
	block *Block
}

// labelBlocks tracks a label's entry block (for goto/continue) before
// or after its statement has been built.
type labelBlocks struct {
	start *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock finishes cur with an edge to next and makes next current.
func (b *builder) startBlock(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

// terminate ends the current block with an edge to target and continues
// construction in a fresh, unreachable block (for any statements that
// syntactically follow a return/branch).
func (b *builder) terminate(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelStart returns (creating if needed) the block a goto/labeled
// statement for name enters at.
func (b *builder) labelStart(name string) *Block {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{start: b.newBlock()}
		b.labels[name] = lb
	}
	return lb.start
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t, ok := b.findTarget(b.breakTargets, s.Label); ok {
				b.terminate(t)
				return
			}
		case token.CONTINUE:
			if t, ok := b.findTarget(b.continueTargets, s.Label); ok {
				b.terminate(t)
				return
			}
		case token.GOTO:
			if s.Label != nil {
				b.terminate(b.labelStart(s.Label.Name))
				return
			}
		}
		// fallthrough is handled by the switch builder; a malformed
		// branch degrades to a no-op.

	case *ast.LabeledStmt:
		start := b.labelStart(s.Label.Name)
		b.startBlock(start)
		b.labeledStmt(s.Label.Name, s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(condBlock, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(condBlock, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlock, after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.forStmt("", s)

	case *ast.RangeStmt:
		b.rangeStmt("", s)

	case *ast.SwitchStmt:
		b.switchStmt("", s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt("", s)

	case *ast.SelectStmt:
		b.selectStmt("", s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.terminate(b.g.Exit)
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// labeledStmt builds the statement carried by a label: loops and
// switches register the label so `break L` / `continue L` resolve.
func (b *builder) labeledStmt(label string, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ForStmt:
		b.forStmt(label, s)
	case *ast.RangeStmt:
		b.rangeStmt(label, s)
	case *ast.SwitchStmt:
		b.switchStmt(label, s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(label, s)
	case *ast.SelectStmt:
		b.selectStmt(label, s)
	default:
		b.stmt(s)
	}
}

// findTarget resolves a break/continue to the innermost matching
// target (or the labeled one).
func (b *builder) findTarget(stack []labeledTarget, label *ast.Ident) (*Block, bool) {
	if len(stack) == 0 {
		return nil, false
	}
	if label == nil {
		return stack[len(stack)-1].block, true
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block, true
		}
	}
	return nil, false
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, labeledTarget{"", brk})
	b.continueTargets = append(b.continueTargets, labeledTarget{"", cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, labeledTarget{label, brk})
		b.continueTargets = append(b.continueTargets, labeledTarget{label, cont})
	}
}

func (b *builder) popLoop(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-n]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-n]
}

func (b *builder) forStmt(label string, s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock()
	post := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	b.pushLoop(label, after, post)
	b.cur = body
	b.stmt(s.Body)
	b.popLoop(label)
	b.edge(b.cur, post)
	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.edge(b.cur, head)
	b.cur = after
}

func (b *builder) rangeStmt(label string, s *ast.RangeStmt) {
	head := b.newBlock()
	b.startBlock(head)
	// The RangeStmt node itself sits in the head block: it evaluates X
	// and assigns the iteration variables each trip.
	b.add(s)
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.pushLoop(label, after, head)
	b.cur = body
	b.stmt(s.Body)
	b.popLoop(label)
	b.edge(b.cur, head)
	b.cur = after
}

func (b *builder) switchStmt(label string, s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(label, s.Body, true)
}

func (b *builder) typeSwitchStmt(label string, s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(label, s.Body, false)
}

// caseClauses builds the clause bodies of a (type) switch: every clause
// is entered from the head, fallthrough chains one body into the next,
// and a missing default lets the head reach the join directly.
func (b *builder) caseClauses(label string, body *ast.BlockStmt, allowFallthrough bool) {
	head := b.cur
	after := b.newBlock()
	b.breakTargets = append(b.breakTargets, labeledTarget{"", after})
	if label != "" {
		b.breakTargets = append(b.breakTargets, labeledTarget{label, after})
	}
	hasDefault := false
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	starts := make([]*Block, len(clauses))
	for i := range clauses {
		starts[i] = b.newBlock()
	}
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		b.edge(head, starts[i])
		b.cur = starts[i]
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && allowFallthrough {
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(starts) {
			b.edge(b.cur, starts[i+1])
			b.cur = b.newBlock()
		}
		b.edge(b.cur, after)
	}
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, after)
	}
	n := 1
	if label != "" {
		n = 2
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-n]
	b.cur = after
}

func (b *builder) selectStmt(label string, s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock()
	b.breakTargets = append(b.breakTargets, labeledTarget{"", after})
	if label != "" {
		b.breakTargets = append(b.breakTargets, labeledTarget{label, after})
	}
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		clause := b.newBlock()
		b.edge(head, clause)
		b.cur = clause
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	n := 1
	if label != "" {
		n = 2
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-n]
	b.cur = after
}

// isPanic reports whether e is a call to the panic builtin (by name;
// shadowing panic is its own crime).
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// BlockAt returns the block and node index of the narrowest recorded
// node whose source span contains pos, or (nil, -1) when pos lies in no
// recorded node. Narrowest matters because container statements are
// recorded too: a position inside a range body is inside both the body
// statement and the RangeStmt node in the loop head.
func (g *Graph) BlockAt(pos token.Pos) (*Block, int) {
	var (
		bestBlk  *Block
		bestIdx  = -1
		bestSpan = token.Pos(-1)
	)
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				if span := n.End() - n.Pos(); bestSpan < 0 || span < bestSpan {
					bestBlk, bestIdx, bestSpan = blk, i, span
				}
			}
		}
	}
	return bestBlk, bestIdx
}
