package flow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// A FuncInfo is one module-local function or method with a body: the
// unit of the call graph. The type information is the defining
// package's own (each package is type-checked separately), so analyzers
// can scan the body with correct types regardless of which package's
// pass discovered the function.
type FuncInfo struct {
	// ID is the stable cross-package identity (FuncID).
	ID string
	// PkgPath is the import path of the defining package.
	PkgPath string
	// Decl is the function's declaration, body included.
	Decl *ast.FuncDecl
	// Info is the defining package's type information.
	Info *types.Info
}

// A CallGraph is the module-local static call graph: an edge per
// syntactic call whose callee resolves to a function or method defined
// in the module. Dynamic dispatch — interface method calls, calls
// through function values — contributes no edges; analyzers relying on
// the graph document that approximation. Calls made inside a nested
// function literal are attributed to the enclosing declared function,
// which matches the "transitively executes" reading the hotpath
// analyzer needs.
type CallGraph struct {
	modulePath string
	// Funcs indexes every module function with a body by ID.
	Funcs map[string]*FuncInfo
	// Callees maps a caller ID to its callee IDs, deduplicated and
	// sorted for deterministic traversal.
	Callees map[string][]string
}

// NewCallGraph returns an empty graph for the module at modulePath.
func NewCallGraph(modulePath string) *CallGraph {
	return &CallGraph{
		modulePath: modulePath,
		Funcs:      map[string]*FuncInfo{},
		Callees:    map[string][]string{},
	}
}

// FuncID returns the stable identity used to join functions across
// separately type-checked packages: go/types' full name, e.g.
// "example.com/mod/pkg.Run" or "(*example.com/mod/pkg.T).Close".
func FuncID(fn *types.Func) string { return fn.FullName() }

// AddPackage indexes the functions of one type-checked package and
// records their module-local call edges.
func (cg *CallGraph) AddPackage(files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			id := FuncID(obj)
			if cg.Funcs[id] == nil {
				cg.Funcs[id] = &FuncInfo{
					ID:      id,
					PkgPath: obj.Pkg().Path(),
					Decl:    fd,
					Info:    info,
				}
			}
			cg.addEdges(id, fd.Body, info)
		}
	}
}

// addEdges walks body (nested literals included) for static calls into
// the module.
func (cg *CallGraph) addEdges(caller string, body ast.Node, info *types.Info) {
	seen := map[string]bool{}
	for _, id := range cg.Callees[caller] {
		seen[id] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := cg.staticCallee(call, info)
		if callee == nil {
			return true
		}
		id := FuncID(callee)
		if !seen[id] {
			seen[id] = true
			cg.Callees[caller] = append(cg.Callees[caller], id)
		}
		return true
	})
	sort.Strings(cg.Callees[caller])
}

// staticCallee resolves a call to the module-local function or method
// it statically invokes, or nil (builtin, conversion, stdlib, dynamic).
func (cg *CallGraph) staticCallee(call *ast.CallExpr, info *types.Info) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path != cg.modulePath && !strings.HasPrefix(path, cg.modulePath+"/") {
		return nil
	}
	// Interface methods have no body to traverse into; skip them so the
	// graph only contains concrete functions.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

// Reachable returns every function reachable from the given roots
// (roots included, when they exist in the graph), mapped to the root
// that first reached it. Traversal order is deterministic: roots in
// sorted order, breadth-first over sorted callee lists.
func (cg *CallGraph) Reachable(roots []string) map[string]string {
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	reached := map[string]string{}
	for _, root := range sorted {
		if _, ok := reached[root]; ok {
			continue
		}
		queue := []string{root}
		reached[root] = root
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, callee := range cg.Callees[cur] {
				if _, ok := reached[callee]; !ok {
					reached[callee] = root
					queue = append(queue, callee)
				}
			}
		}
	}
	return reached
}
