package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// event is one use or definition of a local variable, in block order.
type event struct {
	node ast.Node // the block node the event belongs to
	v    *types.Var
	def  bool
}

// Liveness is a backward may-liveness analysis of the local variables
// of one function: it answers whether a variable's value at some
// program point can still be read later. Variables whose address is
// taken, or that are referenced from a nested function literal, are
// treated as always live (their flow escapes the graph).
type Liveness struct {
	g       *Graph
	info    *types.Info
	events  map[*Block][]event
	liveOut map[*Block]map[*types.Var]bool
	escaped map[*types.Var]bool
}

// NewLiveness computes liveness over g using the type information that
// resolved g's function.
func NewLiveness(g *Graph, info *types.Info) *Liveness {
	lv := &Liveness{
		g:       g,
		info:    info,
		events:  map[*Block][]event{},
		liveOut: map[*Block]map[*types.Var]bool{},
		escaped: map[*types.Var]bool{},
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			lv.nodeEvents(b, n)
		}
	}
	lv.solve()
	return lv
}

// localVar resolves id to the local (non-field, non-package-level)
// variable it uses or defines, if any.
func (lv *Liveness) localVar(id *ast.Ident) *types.Var {
	var obj types.Object
	if o, ok := lv.info.Uses[id]; ok {
		obj = o
	} else if o, ok := lv.info.Defs[id]; ok {
		obj = o
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil // package-level
	}
	return v
}

// nodeEvents appends n's use/def events in evaluation order:
// right-hand sides before the definitions they feed. Idents inside
// nested function literals and operands of unary & mark their variable
// escaped instead of producing ordered events.
func (lv *Liveness) nodeEvents(b *Block, n ast.Node) {
	add := func(v *types.Var, def bool) {
		if v != nil {
			lv.events[b] = append(lv.events[b], event{node: n, v: v, def: def})
		}
	}
	// uses walks e collecting reads, marking escapes for & and closures.
	var uses func(e ast.Node)
	uses = func(e ast.Node) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				lv.markEscapes(x)
				return false
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if id, ok := unparen(x.X).(*ast.Ident); ok {
						if v := lv.localVar(id); v != nil {
							lv.escaped[v] = true
							add(v, false)
							return false
						}
					}
				}
			case *ast.Ident:
				add(lv.localVar(x), false)
			}
			return true
		})
	}

	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			uses(r)
		}
		for _, l := range s.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok {
				if id.Name == "_" {
					continue
				}
				v := lv.localVar(id)
				if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
					add(v, false) // compound assignment reads first
				}
				add(v, true)
				continue
			}
			uses(l) // x[i] = ..., x.f = ...: reads of the base
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(s.X).(*ast.Ident); ok {
			v := lv.localVar(id)
			add(v, false)
			add(v, true)
		} else {
			uses(s.X)
		}
	case *ast.RangeStmt:
		uses(s.X)
		for _, kv := range []ast.Expr{s.Key, s.Value} {
			if kv == nil {
				continue
			}
			if id, ok := unparen(kv).(*ast.Ident); ok && id.Name != "_" {
				add(lv.localVar(id), true)
			} else {
				uses(kv)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					uses(val)
				}
				for _, id := range vs.Names {
					if id.Name != "_" {
						add(lv.localVar(id), true)
					}
				}
			}
		}
	default:
		uses(n)
	}
}

// markEscapes records every local referenced inside a function literal
// as escaped: the literal may run at any time relative to this graph.
func (lv *Liveness) markEscapes(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if v := lv.localVar(id); v != nil && v.Pos() < fl.Pos() {
				lv.escaped[v] = true
			}
		}
		return true
	})
}

// solve iterates backward liveness to a fixpoint.
func (lv *Liveness) solve() {
	rpo := lv.g.ReversePostorder()
	liveIn := map[*Block]map[*types.Var]bool{}
	for _, b := range lv.g.Blocks {
		lv.liveOut[b] = map[*types.Var]bool{}
		liveIn[b] = map[*types.Var]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.liveOut[b]
			for _, s := range b.Succs {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := map[*types.Var]bool{}
			for v := range out {
				in[v] = true
			}
			evs := lv.events[b]
			for j := len(evs) - 1; j >= 0; j-- {
				if evs[j].def {
					delete(in, evs[j].v)
				} else {
					in[evs[j].v] = true
				}
			}
			for v := range in {
				if !liveIn[b][v] {
					liveIn[b][v] = true
					changed = true
				}
			}
			for v := range liveIn[b] {
				if !in[v] {
					delete(liveIn[b], v)
					changed = true
				}
			}
		}
	}
}

// UsedAfter reports whether v may be read after node n (a block node
// that defines v) executes: a use reaches before any redefinition on
// some path. Escaped variables are always considered used. When n is
// not a recorded block node, UsedAfter is conservatively true.
func (lv *Liveness) UsedAfter(n ast.Node, v *types.Var) bool {
	if v == nil || lv.escaped[v] {
		return true
	}
	blk, _ := lv.g.BlockAt(n.Pos())
	if blk == nil {
		return true
	}
	evs := lv.events[blk]
	// Skip past n's own events, then scan the rest of the block.
	i := 0
	for i < len(evs) && evs[i].node != n {
		i++
	}
	if i == len(evs) {
		return true // n produced no events we can anchor to
	}
	for i < len(evs) && evs[i].node == n {
		i++
	}
	for ; i < len(evs); i++ {
		if evs[i].v != v {
			continue
		}
		if evs[i].def {
			return false // redefined before any use
		}
		return true
	}
	return lv.liveOut[blk][v]
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
