package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"github.com/crhkit/crh/internal/lint/flow"
)

// LockGuard enforces `// crh:guardedby <mutex>` annotations on struct
// fields: every access to an annotated field must sit on a path where
// the named sibling mutex is provably held — a Lock/RLock call
// dominates in the must-held dataflow sense and no Unlock intervenes.
//
// The registry and WAL keep per-dataset state behind fine-grained
// locks (internal/server, internal/wal); the race detector only
// catches violations the test schedule happens to produce, while this
// check is schedule-independent.
//
// Analysis shape (and its deliberate approximations):
//
//   - A forward must-held analysis over the function's CFG tracks the
//     set of held mutexes as "base.path" strings (e.g. "e.mu").
//     Lock/RLock adds, Unlock/RUnlock removes; merges intersect.
//   - A deferred Unlock does not remove: it runs at function exit, so
//     the lock stays held for the rest of the body.
//   - Values whose every definition is a fresh allocation (&T{}, T{},
//     new(T)) are exempt: a just-constructed value is unshared, and
//     constructors legitimately initialize guarded fields unlocked.
//   - Function literals are not analyzed against the enclosing scope's
//     lock state (they may run later); accesses inside them are skipped.
//   - Test files are skipped: tests construct and poke single-goroutine
//     fixtures.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "enforce // crh:guardedby mutex annotations on struct field access",
	Run:  runLockGuard,
}

var guardedByRE = regexp.MustCompile(`crh:guardedby\s+([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo is one annotated field: the guarding mutex field's name.
type guardInfo struct {
	mutex string
}

func runLockGuard(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockGuardFunc(pass, guards, fd)
			}
		}
	}
}

// collectGuards parses the package's struct declarations for
// crh:guardedby annotations, validating that the named mutex is a
// sibling field with Lock/Unlock methods.
func collectGuards(pass *Pass) map[*types.Var]guardInfo {
	guards := map[*types.Var]guardInfo{}
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex, at := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				if !hasField(st, mutex) {
					pass.Reportf(at, "crh:guardedby names %q, which is not a field of this struct", mutex)
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, returning the annotation's position for error reporting.
func guardAnnotation(field *ast.Field) (string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRE.FindStringSubmatch(c.Text); m != nil {
				return m[1], c.Pos()
			}
		}
	}
	return "", 0
}

// hasField reports whether st declares (or embeds) a field named name.
func hasField(st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
		if len(f.Names) == 0 { // embedded
			if id := embeddedName(f.Type); id == name {
				return true
			}
		}
	}
	return false
}

func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// heldSet is the must-held lattice element: a set of "base.mutex" path
// strings, with nil meaning ⊤ (unvisited).
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := heldSet{}
	for k := range h {
		c[k] = true
	}
	return c
}

// intersect keeps only mutexes held on both paths.
func (h heldSet) intersect(o heldSet) heldSet {
	out := heldSet{}
	for k := range h {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

func (h heldSet) equal(o heldSet) bool {
	if len(h) != len(o) {
		return false
	}
	for k := range h {
		if !o[k] {
			return false
		}
	}
	return true
}

// checkLockGuardFunc runs the must-held analysis over one function and
// reports unguarded accesses.
func checkLockGuardFunc(pass *Pass, guards map[*types.Var]guardInfo, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	if !mentionsGuarded(info, fd.Body, guards) {
		return
	}
	owned := ownedVars(info, fd.Body)
	g := pass.CFG(fd)
	rpo := g.ReversePostorder()

	// Forward fixpoint: in[entry] = ∅, merge = intersection (⊤ for
	// unvisited predecessors), transfer = lock/unlock calls in block
	// order.
	in := map[*flow.Block]heldSet{}
	in[g.Entry] = heldSet{}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if in[b] == nil {
				continue
			}
			out := transferHeld(info, b, in[b], nil, nil, nil)
			for _, s := range b.Succs {
				var next heldSet
				if in[s] == nil {
					next = out.clone()
				} else {
					next = in[s].intersect(out)
				}
				if in[s] == nil || !next.equal(in[s]) {
					in[s] = next
					changed = true
				}
			}
		}
	}

	// Report pass: replay each block's transfer, checking guarded
	// accesses against the running held set.
	for _, b := range rpo {
		if in[b] == nil {
			continue
		}
		transferHeld(info, b, in[b], guards, owned, pass)
	}
}

// transferHeld applies block b's lock operations to held (returning the
// out-state). When pass is non-nil it also reports guarded-field
// accesses made while the matching mutex is not in the set.
func transferHeld(info *types.Info, b *flow.Block, held heldSet, guards map[*types.Var]guardInfo, owned map[types.Object]bool, pass *Pass) heldSet {
	cur := held.clone()
	// Within a block, report each offending field once.
	reported := map[string]bool{}
	for _, n := range b.Nodes {
		_, inDefer := n.(*ast.DeferStmt)
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if base, op, ok := lockOp(info, x); ok {
					switch op {
					case "Lock", "RLock":
						if !inDefer {
							cur[base] = true
						}
					case "Unlock", "RUnlock":
						// A deferred unlock runs at exit; the lock stays
						// held for the remainder of the body.
						if !inDefer {
							delete(cur, base)
						}
					}
				}
			case *ast.SelectorExpr:
				if pass == nil {
					return true
				}
				v, ok := info.Uses[x.Sel].(*types.Var)
				if !ok {
					return true
				}
				gi, ok := guards[v]
				if !ok {
					return true
				}
				base := exprPath(x.X)
				if base == "" {
					return true
				}
				if root := rootObject(info, x.X); root != nil && owned[root] {
					return true // freshly allocated, unshared
				}
				need := base + "." + gi.mutex
				key := need + ":" + x.Sel.Name
				if !cur[need] && !reported[key] {
					reported[key] = true
					pass.Reportf(x.Sel.Pos(), "%s.%s is guarded by %s; access without holding %s.%s",
						base, x.Sel.Name, gi.mutex, base, gi.mutex)
				}
			}
			return true
		})
	}
	return cur
}

// lockOp matches m.Lock()/RLock()/Unlock()/RUnlock() where the method
// comes from sync (Mutex, RWMutex, or a type embedding one) and returns
// the path of the locked value and the operation name.
func lockOp(info *types.Info, call *ast.CallExpr) (base, op string, ok bool) {
	se, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch se.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, okFn := info.Uses[se.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	base = exprPath(se.X)
	if base == "" {
		return "", "", false
	}
	return base, se.Sel.Name, true
}

// exprPath renders a selector chain of plain identifiers ("e.mu",
// "r.warmMu") or "" when the expression is anything fancier. Parens and
// derefs are transparent.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		return exprPath(e.X)
	}
	return ""
}

// rootObject returns the object of the leftmost identifier in a
// selector chain.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ownedVars finds local variables whose every definition is a fresh
// allocation — &T{}, T{}, or new(T) — and which therefore cannot be
// shared with another goroutine yet.
func ownedVars(info *types.Info, body ast.Node) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	seen := map[types.Object]bool{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		ok := rhs != nil && isFreshAlloc(info, rhs)
		if !seen[obj] {
			seen[obj] = true
			fresh[obj] = ok
		} else {
			fresh[obj] = fresh[obj] && ok
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			} else {
				for _, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						record(id, nil)
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) && len(n.Values) == len(n.Names) {
					rhs = n.Values[i]
				}
				record(name, rhs)
			}
		}
		return true
	})
	out := map[types.Object]bool{}
	for obj, ok := range fresh {
		if ok {
			out[obj] = true
		}
	}
	return out
}

// isFreshAlloc matches &T{...}, T{...}, and new(T).
func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch e := unparenExpr(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := unparenExpr(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		return isBuiltin(info, e, "new")
	}
	return false
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// mentionsGuarded is a quick pre-filter: does the body name any guarded
// field at all?
func mentionsGuarded(info *types.Info, body ast.Node, guards map[*types.Var]guardInfo) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if se, ok := n.(*ast.SelectorExpr); ok {
			if v, ok := info.Uses[se.Sel].(*types.Var); ok {
				if _, ok := guards[v]; ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
