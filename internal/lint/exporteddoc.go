package lint

import (
	"go/ast"
	"go/token"
)

// exportedDocScope lists the module-relative directories whose exported
// surface must be fully documented: the public root package, the server
// options/config surface, the baseline method registry, and the
// observability and durability substrates. These are the packages whose
// identifiers users, the HTTP API's JSON shapes, and the on-disk format
// are built against.
var exportedDocScope = []string{"", "internal/server", "internal/baseline", "internal/obs", "internal/wal"}

// ExportedDoc flags undocumented exported identifiers in the public
// root package, internal/server, and internal/baseline: package-level
// functions, methods, types, consts and vars, struct fields, and
// interface methods. A const/var group's doc comment covers its
// members; a struct field or interface method may use a trailing line
// comment instead of a doc comment.
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc:  "flag undocumented exported identifiers on the public API and server/baseline surfaces",
	Run:  runExportedDoc,
}

func runExportedDoc(pass *Pass) {
	if pass.Pkg.ForTest || !inScope(pass.Pkg.RelPath) {
		return
	}
	hasPkgDoc := false
	for _, f := range pass.Pkg.Files {
		if !pass.Pkg.IsTestFile(f) && f.Doc != nil {
			hasPkgDoc = true
		}
	}
	for i, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		if i == 0 && !hasPkgDoc {
			pass.Reportf(f.Package, "package %s has no package doc comment", f.Name.Name)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
}

// inScope reports whether the module-relative directory is one the
// analyzer covers.
func inScope(rel string) bool {
	for _, s := range exportedDocScope {
		if rel == s {
			return true
		}
	}
	return false
}

// checkFuncDoc flags undocumented exported functions and methods on
// exported receivers.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	if d.Recv != nil {
		recv := receiverName(d.Recv)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		pass.Reportf(d.Name.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
		return
	}
	pass.Reportf(d.Name.Pos(), "exported function %s has no doc comment", d.Name.Name)
}

// receiverName returns the base type name of a method receiver.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// checkGenDoc flags undocumented exported types, consts, and vars, plus
// the fields and interface methods of exported types.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if s.Doc == nil && d.Doc == nil {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFieldDocs(pass, s.Name.Name, t.Fields, "field")
			case *ast.InterfaceType:
				checkFieldDocs(pass, s.Name.Name, t.Methods, "method")
			}
		case *ast.ValueSpec:
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
				}
			}
		}
	}
}

// checkFieldDocs flags undocumented exported struct fields or interface
// methods of an exported type. Embedded fields are exempt — their docs
// live on their own type.
func checkFieldDocs(pass *Pass, typeName string, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(), "exported %s %s.%s has no doc comment", kind, typeName, name.Name)
			}
		}
	}
}
