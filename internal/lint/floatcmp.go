package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands in non-test
// code. CRH's convergence checks and loss functions live and die by
// tolerances: the paper's iteration counts and accuracy tables
// reproduce only while "has the objective stopped moving" is an epsilon
// question, never an exact-bits question. Exact float equality also
// breaks silently whenever two mathematically equal quantities were
// accumulated in different summation orders (permuted inputs, the
// MapReduce shuffle) — the solver's own fixed shard-order reduction
// (docs/PARALLEL.md) is the deliberate, tested exception.
//
// Allowed: comparisons against a literal 0 — the x == 0 division/
// degenerate-input guard is exact by design (0 is the only float a sum
// of zero terms can be), and the stats package leans on it throughout.
// Intentional exact comparisons elsewhere (e.g. tie grouping over
// observed values) take a reasoned //lint:ignore floatcmp.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point operands outside tests (0-literal guards excepted)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Pkg.TypesInfo, be.X) && !isFloat(pass.Pkg.TypesInfo, be.Y) {
				return true
			}
			if isLiteralZero(pass.Pkg.TypesInfo, be.X) || isLiteralZero(pass.Pkg.TypesInfo, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use stats.ApproxEq or an explicit tolerance", be.Op)
			return true
		})
	}
}

// isFloat reports whether e's type is (or aliases) a floating-point or
// complex type.
func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isLiteralZero reports whether e is a constant expression with the
// exact value 0 — the division-guard idiom the analyzer permits.
func isLiteralZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
