package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got < 1.499 || got > 1.501 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "", []float64{0.1, 0.25, 0.5, 1})
	// Boundary semantics: upper edges are inclusive.
	for _, v := range []float64{0.05, 0.1, 0.100001, 0.25, 0.9, 1.0, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 0, 2, 1} // (0,.1], (.1,.25], (.25,.5], (.5,1], +Inf
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-9.400001) > 1e-9 {
		t.Errorf("sum = %v, want 9.400001", s.Sum)
	}
}

func TestHistogramDuration(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("d_seconds", "", nil) // DefBuckets
	h.ObserveDuration(50 * time.Microsecond)
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(10 * time.Second) // overflow
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[5] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("duration buckets wrong: %v", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "", []float64{1, 2, 4})
	// 10 observations uniform in (0,1], 10 in (1,2].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := h.Snapshot()
	// Median: rank 10 falls exactly at the top of bucket (0,1].
	if got := s.Quantile(0.5); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("q50 = %v, want 1.0", got)
	}
	// 75th: rank 15 is midway through bucket (1,2] -> 1.5.
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("q75 = %v, want 1.5", got)
	}
	// 25th: rank 5 is midway through bucket (0,1] -> 0.5.
	if got := s.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("q25 = %v, want 0.5", got)
	}
	// Overflow observations clamp to the highest finite bound.
	h.Observe(100)
	if got := h.Snapshot().Quantile(1); math.Abs(got-4) > 1e-9 {
		t.Errorf("q100 with overflow = %v, want 4", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}

func TestBucketGenerators(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
}

// TestExpositionGolden pins the Prometheus text format: family grouping,
// HELP/TYPE headers, label merging, cumulative le buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter(`req_total{op="resolve"}`, "requests served")
	b := r.NewCounter(`req_total{op="ingest"}`, "requests served")
	r.NewGaugeFunc("up", "always one", func() float64 { return 1 })
	h := r.NewHistogram(`lat_seconds{op="resolve"}`, "latency", []float64{0.5, 1})
	a.Add(3)
	b.Add(2)
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	wantExact := "# HELP lat_seconds latency\n" +
		"# TYPE lat_seconds histogram\n" +
		"lat_seconds_bucket{op=\"resolve\",le=\"0.5\"} 1\n" +
		"lat_seconds_bucket{op=\"resolve\",le=\"1\"} 2\n" +
		"lat_seconds_bucket{op=\"resolve\",le=\"+Inf\"} 3\n" +
		"lat_seconds_sum{op=\"resolve\"} 10\n" +
		"lat_seconds_count{op=\"resolve\"} 3\n" +
		"# HELP req_total requests served\n" +
		"# TYPE req_total counter\n" +
		"req_total{op=\"resolve\"} 3\n" +
		"req_total{op=\"ingest\"} 2\n" +
		"# HELP up always one\n" +
		"# TYPE up gauge\n" +
		"up 1\n"
	if got != wantExact {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, wantExact)
	}
}

// TestGaugeNaNOmitted pins the no-value rule: a NaN gauge (a ratio
// before its first lookup, an age before its first event) contributes
// its HELP/TYPE headers but no sample line — NaN in the exposition
// breaks strict scrapers. Mirrors the empty-histogram quantile omission.
func TestGaugeNaNOmitted(t *testing.T) {
	r := NewRegistry()
	v := math.NaN()
	r.NewGaugeFunc("ratio", "no value until set", func() float64 { return v })
	expo := func() string {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	want := "# HELP ratio no value until set\n# TYPE ratio gauge\n"
	if got := expo(); got != want {
		t.Errorf("NaN gauge exposition = %q, want headers only %q", got, want)
	}
	v = 0.5
	if got := expo(); got != want+"ratio 0.5\n" {
		t.Errorf("exposition after value = %q", got)
	}
}

// TestConcurrentHammer exercises counters, gauges, and histograms from
// many goroutines under -race, with concurrent exposition reads.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hammer_total", "")
	g := r.NewGauge("hammer_gauge", "")
	h := r.NewHistogram("hammer_seconds", "", nil)
	const goroutines, iters = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%100) / 1000)
				if j%500 == 0 {
					_ = r.WritePrometheus(&strings.Builder{})
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != goroutines*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*iters)
	}
	if got := g.Value(); math.Abs(got-goroutines*iters) > 1e-9 {
		t.Fatalf("gauge = %v, want %d", got, goroutines*iters)
	}
	s := h.Snapshot()
	if s.Count != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", s.Count, goroutines*iters)
	}
	var bucketTotal int64
	for _, b := range s.Counts {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}
