package buildinfo

import (
	"bytes"
	"strings"
	"testing"
)

func TestRead(t *testing.T) {
	info := Read()
	if info.Version == "" {
		t.Fatal("version is empty")
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Fatalf("go version = %q", info.GoVersion)
	}
}

func TestString(t *testing.T) {
	i := Info{Version: "v1.2.3", Revision: "abcdef0123456789", CommitTime: "2026-08-06T00:00:00Z", Dirty: true, GoVersion: "go1.24.0"}
	s := i.String()
	for _, want := range []string{"v1.2.3", "rev abcdef012345", "2026-08-06", "dirty", "go1.24.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	bare := Info{Version: "unknown", GoVersion: "go1.24.0"}
	if got := bare.String(); got != "unknown go1.24.0" {
		t.Errorf("bare String() = %q", got)
	}
}

func TestPrint(t *testing.T) {
	var buf bytes.Buffer
	Print(&buf, "crh")
	out := buf.String()
	if !strings.HasPrefix(out, "crh ") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("Print wrote %q", out)
	}
}
