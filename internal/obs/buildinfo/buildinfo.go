// Package buildinfo derives a human-readable version string from the
// information the Go toolchain embeds in every binary
// (runtime/debug.ReadBuildInfo): module version, VCS revision and commit
// time, and the Go release. It is the single source behind the -version
// flag of all five binaries and the build_info fields of crhd's
// /v1/healthz endpoint.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" for source
	// builds without a module version).
	Version string `json:"version"`
	// Revision and CommitTime come from the VCS stamp, empty when the
	// binary was built outside a checkout.
	Revision   string `json:"revision,omitempty"`
	CommitTime string `json:"commit_time,omitempty"` // see Revision
	// Dirty reports uncommitted modifications at build time.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the Go release that built the binary.
	GoVersion string `json:"go_version"`
}

// Read extracts the build identity of the running binary. It never
// fails: binaries built without module support report version "unknown".
func Read() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.CommitTime = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, e.g.
// "crh (devel) rev 1a2b3c4d (2026-08-06T10:00:00Z, dirty) go1.24.0".
func (i Info) String() string {
	s := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.CommitTime != "" {
			s += " (" + i.CommitTime
			if i.Dirty {
				s += ", dirty"
			}
			s += ")"
		} else if i.Dirty {
			s += " (dirty)"
		}
	}
	return s + " " + i.GoVersion
}

// Print writes "tool version" for the named tool — the shared body of
// every binary's -version flag.
func Print(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s %s\n", tool, Read())
}
