package obs

import (
	"sync"
	"time"
)

// SpanStages is the fixed stage capacity of a Span. Callers define their
// own Stage constants in [0, SpanStages); the server's resolve pipeline
// uses six of them (docs/OBSERVABILITY.md, "Per-request stage spans").
const SpanStages = 8

// Stage indexes one stage of a Span's timeline. Stages are small
// integers owned by the instrumented subsystem — obs assigns them no
// meaning beyond a slot in the duration table.
type Stage uint8

// Span is a lightweight per-request stage timeline: a fixed table of
// per-stage durations plus the wall-clock start. It is the
// request-granular sibling of the per-iteration SolverTrace — where the
// solver trace explains one computation, a span explains where one
// request's latency went (cache lookup vs. coalesce wait vs. solve).
//
// A nil *Span is valid on every method and records nothing, which is
// what makes instrumentation free when disabled: the instrumented path
// calls the same methods either way, and the nil path is allocation-free
// (enforced by the //crh:hotpath annotations and the AllocsPerRun
// assertion in span_test.go).
//
// Spans are pooled: StartSpan draws from a sync.Pool and Release returns
// to it, so the enabled steady state allocates nothing either. A Span is
// owned by one goroutine at a time; handing it to another (a coalescing
// leader writing a follower's wait, say) requires external ordering.
type Span struct {
	start time.Time
	last  time.Time
	dur   [SpanStages]time.Duration
}

// spanPool recycles Spans so the enabled path stops allocating once the
// pool is warm.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// StartSpan returns a zeroed Span anchored at the current time. Pair
// with Release.
func StartSpan() *Span {
	s := spanPool.Get().(*Span)
	now := time.Now()
	s.start, s.last = now, now
	s.dur = [SpanStages]time.Duration{}
	return s
}

// Release returns the span to the pool. The caller must not touch the
// span afterwards. Safe on nil (a no-op — the disabled path releases
// like the enabled one).
func (s *Span) Release() {
	if s == nil {
		return
	}
	spanPool.Put(s)
}

// Mark attributes the time since the previous mark (or the span start)
// to stage st and advances the mark point. Repeated marks of the same
// stage accumulate.
//
//crh:hotpath
func (s *Span) Mark(st Stage) {
	if s == nil {
		return
	}
	now := time.Now()
	s.dur[st] += now.Sub(s.last)
	s.last = now
}

// Add attributes an externally measured duration to stage st without
// moving the mark point — for intervals timed on another goroutine or
// overlapping the marked timeline (a coalesced follower's wait, say).
//
//crh:hotpath
func (s *Span) Add(st Stage, d time.Duration) {
	if s == nil {
		return
	}
	s.dur[st] += d
}

// Cut advances the mark point to now without attributing the elapsed
// time to any stage — for skipping over an interval that Add accounts
// for separately.
//
//crh:hotpath
func (s *Span) Cut() {
	if s == nil {
		return
	}
	s.last = time.Now()
}

// Stage returns the duration accumulated against st (zero on nil).
//
//crh:hotpath
func (s *Span) Stage(st Stage) time.Duration {
	if s == nil {
		return 0
	}
	return s.dur[st]
}

// Total returns the wall time since the span started (zero on nil).
//
//crh:hotpath
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}
