package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// RuntimeHealth is a point-in-time view of Go process health: the
// numbers a dashboard needs to tell "the service is slow" apart from
// "the process is sick" (goroutine leak, heap growth, GC pressure).
type RuntimeHealth struct {
	// Goroutines is the live goroutine count.
	Goroutines int
	// HeapInuseBytes and HeapObjects describe the live heap
	// (runtime.MemStats HeapInuse / HeapObjects).
	HeapInuseBytes uint64
	HeapObjects    uint64 // see HeapInuseBytes
	// GCCycles counts completed GC cycles since process start.
	GCCycles uint32
	// GCPauseP99 is the 99th-percentile stop-the-world pause over the
	// runtime's recent-pause ring (up to the last 256 GCs; 0 before the
	// first).
	GCPauseP99 time.Duration
}

// runtimeCache bounds the cost of health reads: ReadMemStats stops the
// world briefly, so concurrent scrapes within refreshEvery share one
// reading instead of each paying for their own.
var runtimeCache struct {
	mu   sync.Mutex
	at   time.Time
	last RuntimeHealth
}

// runtimeRefreshEvery is the maximum staleness a cached RuntimeHealth
// reading may have.
const runtimeRefreshEvery = 100 * time.Millisecond

// ReadRuntimeHealth samples the Go runtime, reusing a recent sample
// when one is younger than 100ms (several gauges reading at one scrape
// cost a single ReadMemStats).
func ReadRuntimeHealth() RuntimeHealth {
	runtimeCache.mu.Lock()
	defer runtimeCache.mu.Unlock()
	if now := time.Now(); now.Sub(runtimeCache.at) >= runtimeRefreshEvery {
		runtimeCache.last = readRuntimeHealth()
		runtimeCache.at = now
	}
	return runtimeCache.last
}

// readRuntimeHealth is the uncached sampler.
func readRuntimeHealth() RuntimeHealth {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h := RuntimeHealth{
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: ms.HeapInuse,
		HeapObjects:    ms.HeapObjects,
		GCCycles:       ms.NumGC,
	}
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	if n > 0 {
		pauses := make([]uint64, n)
		for i := 0; i < n; i++ {
			// PauseNs is a circular buffer of the most recent pauses,
			// indexed by GC cycle number.
			pauses[i] = ms.PauseNs[(int(ms.NumGC)-1-i+len(ms.PauseNs))%len(ms.PauseNs)]
		}
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		idx := (99*n + 99) / 100 // ceil(0.99n), 1-based rank
		if idx > n {
			idx = n
		}
		h.GCPauseP99 = time.Duration(pauses[idx-1])
	}
	return h
}

// RegisterRuntimeMetrics registers Go process-health gauges on reg:
//
//	go_goroutines              live goroutines
//	go_heap_inuse_bytes        bytes in in-use heap spans
//	go_heap_objects            live heap objects
//	go_gc_cycles               completed GC cycles
//	go_gc_pause_p99_seconds    p99 stop-the-world pause, recent GCs
//	process_uptime_seconds     seconds since this call
//
// All read through the shared 100ms cache, so one exposition pays for at
// most one ReadMemStats.
func RegisterRuntimeMetrics(reg *Registry) {
	start := time.Now()
	reg.NewGaugeFunc("go_goroutines", "live goroutines", func() float64 {
		return float64(ReadRuntimeHealth().Goroutines)
	})
	reg.NewGaugeFunc("go_heap_inuse_bytes", "bytes in in-use heap spans", func() float64 {
		return float64(ReadRuntimeHealth().HeapInuseBytes)
	})
	reg.NewGaugeFunc("go_heap_objects", "live heap objects", func() float64 {
		return float64(ReadRuntimeHealth().HeapObjects)
	})
	reg.NewGaugeFunc("go_gc_cycles", "completed GC cycles since process start", func() float64 {
		return float64(ReadRuntimeHealth().GCCycles)
	})
	reg.NewGaugeFunc("go_gc_pause_p99_seconds", "99th-percentile stop-the-world GC pause over the recent-pause ring", func() float64 {
		return ReadRuntimeHealth().GCPauseP99.Seconds()
	})
	reg.NewGaugeFunc("process_uptime_seconds", "seconds since runtime metrics were registered", func() float64 {
		return time.Since(start).Seconds()
	})
}
