package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets is the default histogram bucket schedule (seconds): roughly
// logarithmic from 100µs to 5s, matching the server's resolve latencies
// (cache hits in microseconds, cold full resolves in seconds).
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// LinearBuckets returns count buckets of the given width starting at
// start — a convenience for configuring NewHistogram.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count buckets starting at start, each
// factor times the previous — a convenience for configuring
// NewHistogram. start and factor must be positive, factor > 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic counters — safe for
// concurrent observation without locks. Bounds are upper bucket edges
// (inclusive); one extra +Inf bucket catches the overflow. Create
// through Registry.NewHistogram.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// newHistogram builds a histogram over the given ascending bounds, or
// DefBuckets when nil.
func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit for latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds, plus totals. The
// exposition converts to cumulative le-buckets; JSON consumers get the
// raw per-bucket shape.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges; Counts[i] tallies observations
	// in (Bounds[i-1], Bounds[i]], with Counts[len(Bounds)] the +Inf
	// overflow.
	Bounds []float64
	Counts []int64 // see Bounds
	// Count and Sum total the observations and their values (so the mean
	// is Sum/Count).
	Count int64
	Sum   float64 // see Count
}

// Snapshot copies the histogram's current state. Buckets are read
// without a barrier, so a snapshot taken during concurrent observation
// is approximate (totals may trail the buckets by in-flight updates).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucketed
// counts by linear interpolation within the containing bucket, the same
// estimate Prometheus's histogram_quantile computes. The first bucket
// interpolates from zero; an estimate landing in the +Inf bucket is
// clamped to the highest finite bound. Returns NaN on an empty
// histogram or out-of-range q.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q < 0 || q > 1 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
