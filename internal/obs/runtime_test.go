package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestReadRuntimeHealth(t *testing.T) {
	runtime.GC()                                                // guarantee at least one cycle so the pause ring is live
	runtimeCache.at = runtimeCache.at.Add(-runtimeRefreshEvery) // force refresh
	h := ReadRuntimeHealth()
	if h.Goroutines < 1 {
		t.Errorf("goroutines = %d, want ≥ 1", h.Goroutines)
	}
	if h.HeapInuseBytes == 0 || h.HeapObjects == 0 {
		t.Errorf("heap stats empty: %+v", h)
	}
	if h.GCCycles == 0 {
		t.Errorf("gc cycles = 0 after explicit runtime.GC()")
	}
	if h.GCPauseP99 < 0 {
		t.Errorf("negative pause p99: %v", h.GCPauseP99)
	}
}

func TestRuntimeHealthCached(t *testing.T) {
	a := ReadRuntimeHealth()
	b := ReadRuntimeHealth() // within 100ms: same cached sample
	if a != b {
		t.Fatalf("back-to-back reads differ: %+v vs %+v", a, b)
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"go_heap_inuse_bytes",
		"go_heap_objects",
		"go_gc_cycles",
		"go_gc_pause_p99_seconds",
		"process_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
