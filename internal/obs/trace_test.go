package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarizeWeights(t *testing.T) {
	s := SummarizeWeights([]float64{1, 1, 1, 1})
	if s.Min != 1 || s.Max != 1 || s.Mean != 1 {
		t.Fatalf("uniform summary = %+v", s)
	}
	if math.Abs(s.Entropy-1) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want 1", s.Entropy)
	}
	s = SummarizeWeights([]float64{1, 0, 0, 0})
	if math.Abs(s.Entropy) > 1e-12 {
		t.Fatalf("degenerate entropy = %v, want 0", s.Entropy)
	}
	if s.Min != 0 || s.Max != 1 || math.Abs(s.Mean-0.25) > 1e-12 {
		t.Fatalf("degenerate summary = %+v", s)
	}
	if s := SummarizeWeights(nil); s.Min != 0 || s.Max != 0 || s.Entropy != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestJSONLTrace(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLTrace(&buf)
	for i := 1; i <= 3; i++ {
		sink.TraceIteration(IterationTrace{
			Iteration:   i,
			Objective:   float64(10 - i),
			WeightPhase: time.Millisecond,
			TruthPhase:  2 * time.Millisecond,
			Weights:     SummarizeWeights([]float64{1, 2}),
			Converged:   i == 3,
		})
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var rec IterationTrace
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Iteration != 3 || !rec.Converged || rec.Objective != 7 {
		t.Fatalf("last record = %+v", rec)
	}
	if rec.WeightPhase != time.Millisecond || rec.TruthPhase != 2*time.Millisecond {
		t.Fatalf("phases = %v/%v", rec.WeightPhase, rec.TruthPhase)
	}
	// The schema documented in docs/OBSERVABILITY.md: field names are
	// load-bearing for external consumers.
	for _, key := range []string{`"iter"`, `"objective"`, `"weight_phase_ns"`, `"truth_phase_ns"`, `"objective_phase_ns"`, `"truth_changes"`, `"weights"`, `"converged"`, `"entropy"`} {
		if !strings.Contains(lines[2], key) {
			t.Errorf("record missing %s: %s", key, lines[2])
		}
	}
}

func TestJSONLTraceWriteError(t *testing.T) {
	sink := NewJSONLTrace(failWriter{})
	sink.TraceIteration(IterationTrace{Iteration: 1})
	if sink.Err() == nil {
		t.Fatal("expected a retained write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }

func TestTraceFunc(t *testing.T) {
	var got []int
	var tr SolverTrace = TraceFunc(func(rec IterationTrace) { got = append(got, rec.Iteration) })
	tr.TraceIteration(IterationTrace{Iteration: 7})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("TraceFunc got %v", got)
	}
}
