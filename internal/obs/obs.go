// Package obs is the observability substrate shared by the solver, the
// server subsystem, and the command-line tools: a stdlib-only metrics
// registry (atomic counters, gauges, and fixed-bucket histograms with
// Prometheus-compatible text exposition), a per-iteration solver trace
// hook with a ready-made JSONL sink, and build-information helpers
// (internal/obs/buildinfo).
//
// Layering: obs sits below every other layer — core, stream, server, and
// the binaries may import it, but obs imports nothing of theirs (enforced
// by internal/lint's layering analyzer). That is what lets one registry
// carry metrics from the HTTP edge down to the streaming processor.
//
// Metric names follow the Prometheus conventions: a family name in
// snake_case, an optional constant label set baked into the registered
// name ("crhd_requests_total{op=\"resolve\"}"), units in the name
// (_seconds, _total). The exposition groups series of one family under a
// single # HELP/# TYPE header.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is usable, but counters are normally created through
// Registry.NewCounter so they appear in the exposition.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (which must be non-negative for
// the exposition to stay Prometheus-legal; this is not enforced).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge: a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (lock-free compare-and-swap).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags a registered series for the # TYPE header.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series: a family name, an optional
// constant label set, and a read hook used at exposition time.
type series struct {
	name   string // as registered, possibly with {labels}
	family string // name with the label set stripped
	labels string // label set without braces ("" when unlabeled)
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; the
// returned metric handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	series   []*series
	byName   map[string]*series
	families map[string]*series // first-registered series of each family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:   make(map[string]*series),
		families: make(map[string]*series),
	}
}

// splitName separates an optional constant label set from a registered
// name: "f{op=\"x\"}" -> ("f", `op="x"`).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// register adds a series under name, panicking on duplicates or on a
// family registered with a different kind or help — both are programmer
// errors a test catches immediately.
func (r *Registry) register(s *series) {
	s.family, s.labels = splitName(s.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[s.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", s.name))
	}
	if first, ok := r.families[s.family]; ok && first.kind != s.kind {
		panic(fmt.Sprintf("obs: metric family %q registered as both %v and %v", s.family, first.kind, s.kind))
	} else if !ok {
		r.families[s.family] = s
	}
	r.byName[s.name] = s
	r.series = append(r.series, s)
}

// NewCounter registers and returns a counter series. name may carry a
// constant label set in braces; help is the # HELP text, shared by the
// whole family.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&series{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&series{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values owned elsewhere (cache occupancy, dataset
// counts, uptime). fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&series{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// NewHistogram registers and returns a histogram series with the given
// bucket upper bounds (ascending; a +Inf overflow bucket is implicit).
// A nil bounds slice selects DefBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&series{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// WritePrometheus renders every registered series in the text exposition
// format (version 0.0.4). Families are emitted in sorted name order,
// each under one # HELP/# TYPE header, series within a family in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	byFamily := make(map[string][]*series, len(r.families))
	names := make([]string, 0, len(r.families))
	for _, s := range r.series {
		if _, ok := byFamily[s.family]; !ok {
			names = append(names, s.family)
		}
		byFamily[s.family] = append(byFamily[s.family], s)
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, fam := range names {
		group := byFamily[fam]
		if h := group[0].help; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, group[0].kind)
		for _, s := range group {
			writeSeries(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries renders one series' sample lines.
func writeSeries(b *strings.Builder, s *series) {
	switch s.kind {
	case kindCounter:
		b.WriteString(sampleName(s.family, s.labels, ""))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(s.counter.Value(), 10))
		b.WriteByte('\n')
	case kindGauge:
		v := 0.0
		if s.gaugeFn != nil {
			v = s.gaugeFn()
		} else {
			v = s.gauge.Value()
		}
		// A NaN gauge means "no value yet" (a ratio before its first
		// lookup, an age before its first event). NaN breaks strict
		// exposition parsers and JSON consumers, so the sample is omitted
		// until there is a value — the same rule that omits quantiles of
		// an empty histogram.
		if math.IsNaN(v) {
			return
		}
		b.WriteString(sampleName(s.family, s.labels, ""))
		b.WriteByte(' ')
		b.WriteString(formatFloat(v))
		b.WriteByte('\n')
	case kindHistogram:
		snap := s.hist.Snapshot()
		cum := int64(0)
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatFloat(snap.Bounds[i])
			}
			b.WriteString(sampleName(s.family+"_bucket", joinLabels(s.labels, `le="`+le+`"`), ""))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
		b.WriteString(sampleName(s.family+"_sum", s.labels, ""))
		b.WriteByte(' ')
		b.WriteString(formatFloat(snap.Sum))
		b.WriteByte('\n')
		b.WriteString(sampleName(s.family+"_count", s.labels, ""))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(snap.Count, 10))
		b.WriteByte('\n')
	}
}

// sampleName renders name{labels} (omitting empty braces).
func sampleName(name, labels, extra string) string {
	all := joinLabels(labels, extra)
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// joinLabels concatenates two label fragments with a comma, tolerating
// empties.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry's exposition —
// mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w) // headers are out; nothing to do on error
	})
}
