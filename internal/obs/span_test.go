package obs

import (
	"sync"
	"testing"
	"time"
)

// Span stages used by the tests; real stage enums live in the
// instrumented subsystems.
const (
	stA Stage = iota
	stB
	stC
)

func TestSpanMarkOrdering(t *testing.T) {
	s := StartSpan()
	defer s.Release()
	time.Sleep(2 * time.Millisecond)
	s.Mark(stA)
	time.Sleep(time.Millisecond)
	s.Mark(stB)
	a, b := s.Stage(stA), s.Stage(stB)
	if a < 2*time.Millisecond {
		t.Errorf("stage A = %v, want ≥ 2ms", a)
	}
	if b < time.Millisecond {
		t.Errorf("stage B = %v, want ≥ 1ms", b)
	}
	if tot := s.Total(); tot < a+b {
		t.Errorf("total %v < sum of stages %v", tot, a+b)
	}
	if c := s.Stage(stC); c != 0 {
		t.Errorf("untouched stage = %v, want 0", c)
	}
}

func TestSpanMarkAccumulates(t *testing.T) {
	s := StartSpan()
	defer s.Release()
	s.Add(stA, 3*time.Millisecond)
	s.Add(stA, 4*time.Millisecond)
	if got := s.Stage(stA); got != 7*time.Millisecond {
		t.Fatalf("accumulated stage = %v, want 7ms", got)
	}
}

func TestSpanCutSkipsInterval(t *testing.T) {
	s := StartSpan()
	defer s.Release()
	time.Sleep(2 * time.Millisecond)
	s.Cut() // discard the sleep
	s.Mark(stA)
	if got := s.Stage(stA); got >= 2*time.Millisecond {
		t.Fatalf("stage after Cut = %v, want < 2ms", got)
	}
}

// TestSpanPoolReuse proves a released span comes back zeroed.
func TestSpanPoolReuse(t *testing.T) {
	s := StartSpan()
	s.Add(stB, time.Second)
	s.Release()
	for i := 0; i < 100; i++ {
		s2 := StartSpan()
		if got := s2.Stage(stB); got != 0 {
			t.Fatalf("recycled span carries stale stage %v", got)
		}
		s2.Release()
	}
}

// TestNilSpanNoAllocs is the disabled-path contract: every Span method
// on a nil receiver is a no-op and the whole sequence allocates nothing.
// The //crh:hotpath annotations enforce the same statically.
func TestNilSpanNoAllocs(t *testing.T) {
	var sink time.Duration
	allocs := testing.AllocsPerRun(1000, func() {
		var s *Span
		s.Mark(stA)
		s.Add(stB, time.Millisecond)
		s.Cut()
		sink = s.Stage(stA) + s.Total()
		s.Release()
	})
	if allocs != 0 {
		t.Fatalf("nil-span sequence allocates %v allocs/op, want 0", allocs)
	}
	_ = sink
}

// TestSpanEnabledSteadyStateNoAllocs proves the pooled enabled path also
// settles at zero allocations per request once the pool is warm.
func TestSpanEnabledSteadyStateNoAllocs(t *testing.T) {
	// Warm the pool.
	StartSpan().Release()
	allocs := testing.AllocsPerRun(1000, func() {
		s := StartSpan()
		s.Mark(stA)
		s.Add(stB, time.Millisecond)
		s.Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled span path allocates %v allocs/op, want 0", allocs)
	}
}

// TestSpanConcurrentHammer exercises the pool from many goroutines
// under -race (each span itself stays goroutine-local, as documented).
func TestSpanConcurrentHammer(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := StartSpan()
				s.Mark(stA)
				s.Add(stB, time.Microsecond)
				if s.Stage(stB) != time.Microsecond {
					t.Error("lost stage write")
					s.Release()
					return
				}
				s.Release()
			}
		}()
	}
	wg.Wait()
}

// BenchmarkSpanDisabled measures the nil-span (instrumentation off)
// path; the committed expectation is 0 B/op, 0 allocs/op.
func BenchmarkSpanDisabled(b *testing.B) {
	b.ReportAllocs()
	var s *Span
	for i := 0; i < b.N; i++ {
		s.Mark(stA)
		s.Add(stB, time.Microsecond)
		s.Release()
	}
}

// BenchmarkSpanEnabled measures the pooled enabled path.
func BenchmarkSpanEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := StartSpan()
		s.Mark(stA)
		s.Add(stB, time.Microsecond)
		s.Release()
	}
}
