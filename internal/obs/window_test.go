package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Window deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestWindow returns a window on a fake clock starting at the epoch.
func newTestWindow(width, slot time.Duration, bounds []float64) (*Window, *fakeClock) {
	w := NewWindow(width, slot, bounds)
	c := &fakeClock{t: w.epoch}
	w.now = c.now
	return w, c
}

func TestWindowEmpty(t *testing.T) {
	w, _ := newTestWindow(10*time.Second, time.Second, nil)
	snap := w.Snapshot()
	if snap.Count != 0 || snap.Rate != 0 || snap.Max != 0 {
		t.Fatalf("empty window: %+v", snap)
	}
	if !math.IsNaN(snap.Quantile(0.5)) {
		t.Fatalf("empty quantile = %v, want NaN", snap.Quantile(0.5))
	}
}

func TestWindowRateAndQuantiles(t *testing.T) {
	w, c := newTestWindow(10*time.Second, time.Second, []float64{0.001, 0.01, 0.1, 1})
	// 100 observations/second for 5 seconds, all at 5ms.
	for s := 0; s < 5; s++ {
		for i := 0; i < 100; i++ {
			w.Observe(0.005)
		}
		c.advance(time.Second)
	}
	snap := w.Snapshot()
	if snap.Count != 500 {
		t.Fatalf("count = %d, want 500", snap.Count)
	}
	// Young tracker: covered is ~6s (5 elapsed + current slot).
	if snap.Covered != 6*time.Second {
		t.Fatalf("covered = %v, want 6s", snap.Covered)
	}
	if snap.Rate < 80 || snap.Rate > 100 {
		t.Fatalf("rate = %v, want ≈83/s", snap.Rate)
	}
	q := snap.Quantile(0.95)
	if q <= 0.001 || q > 0.01 {
		t.Fatalf("p95 = %v, want in (1ms, 10ms]", q)
	}
	if snap.Max < 0.005-1e-12 || snap.Max > 0.005+1e-12 {
		t.Fatalf("max = %v, want 0.005", snap.Max)
	}
}

// TestWindowRotationExpires proves observations fall out once the clock
// moves a full window past them — the rotation boundary contract.
func TestWindowRotationExpires(t *testing.T) {
	w, c := newTestWindow(4*time.Second, time.Second, nil)
	w.Observe(1)
	w.Observe(2)
	if got := w.Snapshot().Count; got != 2 {
		t.Fatalf("count before rotation = %d, want 2", got)
	}
	c.advance(3 * time.Second) // still inside the 4-slot window
	if got := w.Snapshot().Count; got != 2 {
		t.Fatalf("count at window edge = %d, want 2", got)
	}
	c.advance(time.Second) // slot 0 now falls outside
	if got := w.Snapshot().Count; got != 0 {
		t.Fatalf("count after expiry = %d, want 0", got)
	}
	// The ring reuses the expired slot without resurrecting old data.
	w.Observe(3)
	snap := w.Snapshot()
	if snap.Count != 1 || snap.Max != 3 {
		t.Fatalf("after reuse: count=%d max=%v, want 1/3", snap.Count, snap.Max)
	}
}

// TestWindowSlotBoundary pins the exact boundary: an observation in
// absolute slot k is visible while the current slot is < k+numSlots.
func TestWindowSlotBoundary(t *testing.T) {
	w, c := newTestWindow(2*time.Second, time.Second, nil) // 2 slots
	w.Observe(1)                                           // slot 0
	c.advance(1999 * time.Millisecond)                     // slot 1: visible
	if got := w.Snapshot().Count; got != 1 {
		t.Fatalf("count in adjacent slot = %d, want 1", got)
	}
	c.advance(time.Millisecond) // slot 2: slot 0 expired
	if got := w.Snapshot().Count; got != 0 {
		t.Fatalf("count after boundary = %d, want 0", got)
	}
}

// TestWindowQuantilesUnderChurn rotates continuously while the observed
// distribution shifts, checking the snapshot tracks only the recent mix.
func TestWindowQuantilesUnderChurn(t *testing.T) {
	bounds := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5}
	w, c := newTestWindow(5*time.Second, time.Second, bounds)
	// 20 seconds of slow observations (100ms)...
	for s := 0; s < 20; s++ {
		for i := 0; i < 50; i++ {
			w.Observe(0.1)
		}
		c.advance(time.Second)
	}
	// ...then 6 seconds of fast ones (2ms), which fully displace them.
	for s := 0; s < 6; s++ {
		for i := 0; i < 50; i++ {
			w.Observe(0.002)
		}
		c.advance(time.Second)
	}
	snap := w.Snapshot()
	// Fast writes landed in slots 20..25; the clock now sits in slot 26,
	// so the 5-slot window covers 22..26 — four written slots.
	if snap.Count != 4*50 {
		t.Fatalf("count = %d, want 200 (only live slots)", snap.Count)
	}
	if q := snap.Quantile(0.99); q > 0.005 {
		t.Fatalf("p99 after churn = %v, want ≤ 5ms (old slow mix must be gone)", q)
	}
	if snap.Max > 0.002+1e-12 {
		t.Fatalf("max after churn = %v, want 0.002", snap.Max)
	}
}

// TestWindowConcurrentHammer beats on one window from many goroutines
// while a reader snapshots, under -race.
func TestWindowConcurrentHammer(t *testing.T) {
	// A wide window on the real clock: nothing rotates out mid-test even
	// on a slow -race run, so the final count is exact.
	w := NewWindow(time.Hour, time.Minute, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				w.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				w.Observe(float64(i%100) / 1000)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := w.Snapshot().Count; got != 8*5000 {
		t.Fatalf("count = %d, want 40000 (nothing rotated out in a fast test)", got)
	}
}
