package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// WeightSummary condenses a source-weight vector into the scalars worth
// tracing per iteration: the extremes, the mean, and the normalized
// entropy of the weight distribution (0 = one source holds all the
// weight, 1 = uniform) — the quantity whose drift shows reliability
// estimates concentrating.
type WeightSummary struct {
	// Min, Max, and Mean summarize the raw weight values.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`  // see Min
	Mean float64 `json:"mean"` // see Min
	// Entropy is the Shannon entropy of the sum-normalized weights,
	// divided by log(len) so it lies in [0,1]; 0 for vectors with fewer
	// than two positive entries.
	Entropy float64 `json:"entropy"`
}

// SummarizeWeights computes a WeightSummary. Non-positive weights
// contribute to Min/Max/Mean but not to the entropy term.
func SummarizeWeights(ws []float64) WeightSummary {
	var s WeightSummary
	if len(ws) == 0 {
		return s
	}
	s.Min, s.Max = ws[0], ws[0]
	var sum float64
	for _, w := range ws {
		if w < s.Min {
			s.Min = w
		}
		if w > s.Max {
			s.Max = w
		}
		if w > 0 {
			sum += w
		}
	}
	s.Mean = mean(ws)
	if sum <= 0 || len(ws) < 2 {
		return s
	}
	var h float64
	for _, w := range ws {
		if w <= 0 {
			continue
		}
		p := w / sum
		h -= p * math.Log(p)
	}
	s.Entropy = h / math.Log(float64(len(ws)))
	return s
}

func mean(ws []float64) float64 {
	var t float64
	for _, w := range ws {
		t += w
	}
	return t / float64(len(ws))
}

// IterationTrace is one solver iteration's telemetry, emitted by the
// block-coordinate-descent loop after its convergence check. Durations
// marshal as integer nanoseconds.
type IterationTrace struct {
	// Iteration numbers the weight/truth iterations from 1.
	Iteration int `json:"iter"`
	// Objective is the value of the CRH objective after this iteration's
	// truth update — the per-iteration convergence curve.
	Objective float64 `json:"objective"`
	// WeightPhase, TruthPhase, and ObjectivePhase are the wall times of
	// the iteration's three stages: the Step I weight update, the Step II
	// truth update, and the objective evaluation.
	WeightPhase    time.Duration `json:"weight_phase_ns"`
	TruthPhase     time.Duration `json:"truth_phase_ns"`     // see WeightPhase
	ObjectivePhase time.Duration `json:"objective_phase_ns"` // see WeightPhase
	// TruthChanges counts entries whose truth estimate changed in this
	// iteration's truth update (categorical: different label; continuous:
	// moved by more than 1e-12).
	TruthChanges int `json:"truth_changes"`
	// WeightWorkers and TruthWorkers are the worker budgets engaged by
	// the iteration's weight-update and truth-update phases (1 =
	// sequential). The budget never affects results — solver output is
	// bit-identical for every worker count — so these exist purely to
	// attribute phase wall times to the parallelism that produced them.
	WeightWorkers int `json:"weight_workers"`
	TruthWorkers  int `json:"truth_workers"` // see WeightWorkers
	// Weights summarizes the source-weight vector after the weight
	// update (the first property group's weights when groups are
	// configured).
	Weights WeightSummary `json:"weights"`
	// Converged marks the final iteration when the tolerance was met.
	Converged bool `json:"converged"`
}

// SolverTrace receives per-iteration telemetry from a solver run. A nil
// trace disables instrumentation entirely — the hot loop computes none
// of the trace-only quantities.
type SolverTrace interface {
	// TraceIteration is called once per iteration, after the convergence
	// check, from the goroutine driving the solve.
	TraceIteration(IterationTrace)
}

// TraceFunc adapts a function to the SolverTrace interface.
type TraceFunc func(IterationTrace)

// TraceIteration implements SolverTrace.
func (f TraceFunc) TraceIteration(t IterationTrace) { f(t) }

// JSONLTrace is a SolverTrace writing one JSON record per iteration to
// an io.Writer — the ready-made sink behind cmd/crh's -trace flag. Safe
// for concurrent use (multiple solver runs may share one sink).
type JSONLTrace struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLTrace returns a JSONL sink writing to w. The caller owns w's
// lifecycle (flushing and closing files).
func NewJSONLTrace(w io.Writer) *JSONLTrace {
	return &JSONLTrace{enc: json.NewEncoder(w)}
}

// TraceIteration implements SolverTrace: it appends one JSON line. The
// first write error is retained and reported by Err; later records are
// still attempted (the encoder fails fast on a broken writer).
func (t *JSONLTrace) TraceIteration(rec IterationTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(rec); err != nil && t.err == nil {
		t.err = err
	}
}

// Err returns the first write error encountered, if any.
func (t *JSONLTrace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
