package obs

import (
	"sync"
	"time"
)

// Window is a sliding-window stats tracker: a ring of time slots, each
// holding a fixed-bucket histogram, rotated by the clock as observations
// arrive. A snapshot merges the live slots into one HistogramSnapshot
// and derives the windowed rate, so consumers get "QPS and p95 over the
// last N seconds" rather than since-process-start totals — the
// rolling-loss-window idiom (PLStats) applied to latency streams.
//
// Unlike Histogram (lock-free, forever-cumulative, registry-exposed),
// Window is mutex-guarded and unregistered: it backs progress readouts
// (crhload's rolling report) where a bounded horizon matters more than
// a lock-free write path. All methods are safe for concurrent use.
type Window struct {
	mu   sync.Mutex
	slot time.Duration
	// slots is the ring, guarded by mu (as are the slots' contents).
	slots []windowSlot
	// bounds is the shared bucket schedule of every slot (immutable
	// after NewWindow).
	bounds []float64
	// epoch anchors absolute slot numbering; now is the clock, replaced
	// in tests to drive rotation deterministically.
	epoch time.Time
	now   func() time.Time
}

// windowSlot is one time slot's histogram. abs is the absolute slot
// number the data belongs to; stale slots are re-zeroed lazily when the
// ring wraps back onto them.
type windowSlot struct {
	abs    int64
	counts []int64
	count  int64
	sum    float64
	max    float64
}

// NewWindow returns a tracker covering roughly `width` of history at
// `slot` granularity (width is rounded up to a whole number of slots,
// minimum two so the window survives a rotation without dropping to
// nothing). A nil bounds slice selects DefBuckets.
func NewWindow(width, slot time.Duration, bounds []float64) *Window {
	if slot <= 0 {
		slot = time.Second
	}
	n := int((width + slot - 1) / slot)
	if n < 2 {
		n = 2
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	w := &Window{
		slot:   slot,
		slots:  make([]windowSlot, n),
		bounds: b,
		epoch:  time.Now(),
		now:    time.Now,
	}
	for i := range w.slots {
		w.slots[i].abs = -1
		w.slots[i].counts = make([]int64, len(b)+1)
	}
	return w
}

// slotFor returns the slot for absolute slot number abs, zeroing it if
// it still carries an older rotation's data. Callers hold w.mu.
func (w *Window) slotFor(abs int64) *windowSlot {
	s := &w.slots[int(abs%int64(len(w.slots)))]
	if s.abs != abs {
		s.abs = abs
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.count, s.sum, s.max = 0, 0, 0
	}
	return s
}

// absSlot converts a time to an absolute slot number.
func (w *Window) absSlot(t time.Time) int64 {
	return int64(t.Sub(w.epoch) / w.slot)
}

// Observe records one value into the current slot.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.slotFor(w.absSlot(w.now()))
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.counts[i]++
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// ObserveDuration records a duration in seconds, the Prometheus base
// unit — matching Histogram.ObserveDuration.
func (w *Window) ObserveDuration(d time.Duration) { w.Observe(d.Seconds()) }

// WindowSnapshot is a point-in-time merge of a Window's live slots: the
// bucketed distribution (quantiles via HistogramSnapshot.Quantile), the
// maximum observed value, the time the merge actually covers, and the
// derived rate.
type WindowSnapshot struct {
	// HistogramSnapshot holds the merged distribution of the live slots.
	HistogramSnapshot
	// Max is the largest value observed in the live slots (0 when empty) —
	// bucketed quantiles clamp at the top bound, Max does not.
	Max float64
	// Covered is the wall time the snapshot spans: the window width,
	// shortened when the tracker is younger than the window.
	Covered time.Duration
	// Rate is Count divided by Covered in seconds (0 when Covered is 0).
	Rate float64
}

// Snapshot merges the slots still inside the window (relative to the
// tracker's clock) and derives the rolling rate.
func (w *Window) Snapshot() WindowSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	cur := w.absSlot(now)
	oldest := cur - int64(len(w.slots)) + 1
	snap := WindowSnapshot{
		HistogramSnapshot: HistogramSnapshot{
			Bounds: w.bounds,
			Counts: make([]int64, len(w.bounds)+1),
		},
	}
	for i := range w.slots {
		s := &w.slots[i]
		if s.abs < oldest || s.abs > cur {
			continue // stale (or never-written) slot
		}
		for j, c := range s.counts {
			snap.Counts[j] += c
		}
		snap.Count += s.count
		snap.Sum += s.sum
		if s.max > snap.Max {
			snap.Max = s.max
		}
	}
	covered := time.Duration(len(w.slots)) * w.slot
	if alive := now.Sub(w.epoch) + w.slot; alive < covered {
		// Young tracker: the partial current slot plus whole elapsed ones.
		covered = alive
	}
	snap.Covered = covered
	if sec := covered.Seconds(); sec > 0 {
		snap.Rate = float64(snap.Count) / sec
	}
	return snap
}
