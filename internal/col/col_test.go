package col

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/crhkit/crh/internal/data"
)

// buildRandom assembles a mixed continuous/categorical dataset with
// missing values from a seeded generator.
func buildRandom(seed int64, sources, objects int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder()
	pf := b.MustProperty("f", data.Continuous)
	pc := b.MustProperty("c", data.Categorical)
	cats := []string{"x", "y", "z", "w"}
	for _, s := range cats {
		b.CatValue(pc, s)
	}
	for o := 0; o < objects; o++ {
		obj := b.Object(fmt.Sprintf("o%04d", o))
		for k := 0; k < sources; k++ {
			src := b.Source(fmt.Sprintf("s%02d", k))
			if rng.Float64() < 0.7 {
				b.ObserveIdx(src, obj, pf, data.Float(rng.NormFloat64()*10))
			}
			if rng.Float64() < 0.7 {
				b.ObserveIdx(src, obj, pc, data.Cat(rng.Intn(len(cats))))
			}
		}
	}
	return b.Build()
}

// TestFreezeMatchesForEntry checks the frozen claims against the
// dataset's own iteration: same sources in the same order, same values,
// bit for bit.
func TestFreezeMatchesForEntry(t *testing.T) {
	d := buildRandom(1, 9, 120)
	c := Freeze(d)
	if c.NumClaims() != d.NumObservations() {
		t.Fatalf("claims %d, want %d", c.NumClaims(), d.NumObservations())
	}
	for e := 0; e < d.NumEntries(); e++ {
		var wantSrc []uint32
		var wantF []float64
		var wantC []uint32
		cat := d.Prop(d.EntryProp(e)).Type == data.Categorical
		d.ForEntry(e, func(k int, v data.Value) {
			wantSrc = append(wantSrc, uint32(k))
			if cat {
				wantC = append(wantC, uint32(v.C))
			} else {
				wantF = append(wantF, v.F)
			}
		})
		if got := c.SrcsOf(e); len(got) != len(wantSrc) {
			t.Fatalf("entry %d: %d claims, want %d", e, len(got), len(wantSrc))
		}
		for j, k := range c.SrcsOf(e) {
			if k != wantSrc[j] {
				t.Fatalf("entry %d claim %d: source %d, want %d", e, j, k, wantSrc[j])
			}
		}
		if cat {
			for j, code := range c.Codes(e) {
				if code != wantC[j] {
					t.Fatalf("entry %d claim %d: code %d, want %d", e, j, code, wantC[j])
				}
			}
		} else {
			for j, v := range c.Floats(e) {
				if math.Float64bits(v) != math.Float64bits(wantF[j]) {
					t.Fatalf("entry %d claim %d: value %v, want %v", e, j, v, wantF[j])
				}
			}
		}
		if c.Observers(e) != d.EntryObservers(e) {
			t.Fatalf("entry %d: observers %d, want %d", e, c.Observers(e), d.EntryObservers(e))
		}
	}
}

// TestFreezeDictsMirrorProperties: codes in the frozen dictionary are
// exactly the property's category indices.
func TestFreezeDictsMirrorProperties(t *testing.T) {
	d := buildRandom(2, 5, 40)
	c := Freeze(d)
	for m := 0; m < d.NumProps(); m++ {
		p := d.Prop(m)
		if p.Type != data.Categorical {
			if c.Dicts[m] != nil {
				t.Fatalf("prop %d: continuous property has a dictionary", m)
			}
			continue
		}
		dict := c.Dicts[m]
		if dict.Len() != p.NumCats() {
			t.Fatalf("prop %d: dict len %d, want %d", m, dict.Len(), p.NumCats())
		}
		for i := 0; i < p.NumCats(); i++ {
			name := p.CatName(i)
			if dict.Name(uint32(i)) != name {
				t.Fatalf("prop %d code %d: %q, want %q", m, i, dict.Name(uint32(i)), name)
			}
			code, ok := dict.Code(name)
			if !ok || code != uint32(i) {
				t.Fatalf("prop %d name %q: code %d/%t, want %d", m, name, code, ok, i)
			}
		}
	}
}

// TestFreezeDeterministicRebuild: freezing the same dataset twice
// produces identical columns — offsets, sources, values, dictionaries.
func TestFreezeDeterministicRebuild(t *testing.T) {
	d := buildRandom(3, 11, 200)
	a, b := Freeze(d), Freeze(d)
	if len(a.Off) != len(b.Off) || len(a.Src) != len(b.Src) ||
		len(a.VF) != len(b.VF) || len(a.VC) != len(b.VC) {
		t.Fatal("shape differs between rebuilds")
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			t.Fatalf("Off[%d] differs", i)
		}
	}
	for i := range a.Src {
		if a.Src[i] != b.Src[i] {
			t.Fatalf("Src[%d] differs", i)
		}
	}
	for i := range a.VF {
		if math.Float64bits(a.VF[i]) != math.Float64bits(b.VF[i]) {
			t.Fatalf("VF[%d] differs", i)
		}
	}
	for i := range a.VC {
		if a.VC[i] != b.VC[i] {
			t.Fatalf("VC[%d] differs", i)
		}
	}
	for m := range a.Dicts {
		if (a.Dicts[m] == nil) != (b.Dicts[m] == nil) {
			t.Fatalf("Dicts[%d] presence differs", m)
		}
		if a.Dicts[m] != nil && !a.Dicts[m].Equal(b.Dicts[m]) {
			t.Fatalf("Dicts[%d] differs", m)
		}
	}
}

// TestFreezeEmptyEntries: entries nobody observed have empty claim
// ranges and MaxObs reflects the densest entry.
func TestFreezeEmptyEntries(t *testing.T) {
	b := data.NewBuilder()
	pf := b.MustProperty("f", data.Continuous)
	b.Object("a")
	b.Object("b")
	b.ObserveIdx(b.Source("s0"), b.Object("a"), pf, data.Float(1))
	b.ObserveIdx(b.Source("s1"), b.Object("a"), pf, data.Float(2))
	d := b.Build()
	c := Freeze(d)
	if c.Observers(0) != 2 || c.Observers(1) != 0 {
		t.Fatalf("observers: %d,%d want 2,0", c.Observers(0), c.Observers(1))
	}
	if c.MaxObs != 2 {
		t.Fatalf("MaxObs %d, want 2", c.MaxObs)
	}
	if got := c.Floats(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("entry 0 floats %v", got)
	}
}
