package col

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests for the categorical dictionary (testing/quick): the
// freeze's correctness rests on Dict being a deterministic bijection —
// intern/lookup round-trips, codes depend only on first-mention order,
// and rebuilding from the same inputs reproduces the dictionary exactly.

// nameStream derives a bounded random stream of names (with duplicates)
// from a seed.
func nameStream(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	distinct := 1 + rng.Intn(12)
	n := distinct + rng.Intn(40)
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%02d", rng.Intn(distinct))
	}
	return out
}

// internAll builds a dictionary from a stream.
func internAll(stream []string) *Dict {
	d := NewDict()
	for _, s := range stream {
		d.Intern(s)
	}
	return d
}

// TestDictRoundTripQuick: after interning any stream, Code∘Name and
// Name∘Code are identities, codes are dense in [0, Len), and Intern is
// idempotent.
func TestDictRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		stream := nameStream(seed)
		d := internAll(stream)
		for c := uint32(0); int(c) < d.Len(); c++ {
			got, ok := d.Code(d.Name(c))
			if !ok || got != c {
				return false
			}
		}
		for _, s := range stream {
			c, ok := d.Code(s)
			if !ok || int(c) >= d.Len() || d.Name(c) != s {
				return false
			}
			if d.Intern(s) != c { // idempotent: re-interning changes nothing
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDictCodeStabilityUnderPermutedInsertion: codes are a function of
// the first-mention order alone. Permuting the duplicate mentions of a
// stream — shuffling everything while keeping each name's first
// occurrence in place — yields an identical dictionary.
func TestDictCodeStabilityUnderPermutedInsertion(t *testing.T) {
	f := func(seed int64) bool {
		stream := nameStream(seed)
		base := internAll(stream)

		// Rebuild the stream as: first mentions in original order, then
		// all duplicates shuffled arbitrarily.
		seen := make(map[string]bool)
		var firsts, dups []string
		for _, s := range stream {
			if seen[s] {
				dups = append(dups, s)
			} else {
				seen[s] = true
				firsts = append(firsts, s)
			}
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		rng.Shuffle(len(dups), func(i, j int) { dups[i], dups[j] = dups[j], dups[i] })
		permuted := internAll(append(append([]string(nil), firsts...), dups...))
		return base.Equal(permuted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDictRebuildDeterminismQuick: interning the same stream twice, or
// rebuilding from the frozen name list, reproduces the dictionary
// bit-for-bit — the property Freeze relies on to give every rebuild of
// the same dataset identical codes.
func TestDictRebuildDeterminismQuick(t *testing.T) {
	f := func(seed int64) bool {
		stream := nameStream(seed)
		a, b := internAll(stream), internAll(stream)
		if !a.Equal(b) {
			return false
		}
		c := FromNames(a.Names())
		return a.Equal(c) && c.Len() == a.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDictFreezeDeterminismAcrossDatasetRebuilds: two Freezes of the
// same dataset hand out identical dictionaries and identical codes in
// the value columns (the dataset-level dictionary determinism the
// satellite property demands).
func TestDictFreezeDeterminismAcrossDatasetRebuilds(t *testing.T) {
	f := func(seed int64) bool {
		d := buildRandom(seed, 3+int(uint64(seed)%5), 30)
		a, b := Freeze(d), Freeze(d)
		for m := range a.Dicts {
			if (a.Dicts[m] == nil) != (b.Dicts[m] == nil) {
				return false
			}
			if a.Dicts[m] != nil && !a.Dicts[m].Equal(b.Dicts[m]) {
				return false
			}
		}
		if len(a.VC) != len(b.VC) {
			return false
		}
		for i := range a.VC {
			if a.VC[i] != b.VC[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFromNamesPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name accepted")
		}
	}()
	FromNames([]string{"a", "b", "a"})
}
