package col

// Dict is an order-preserving string↔code dictionary for categorical
// values: codes are dense uint32 indices assigned in first-intern order.
// The columnar freeze mirrors each categorical property's dictionary
// through a Dict so that a frozen column's codes are, by construction,
// identical to the owning data.Property's category indices — the solver's
// tie-breaking rules ("lowest category index wins") therefore mean the
// same thing on both representations.
//
// A Dict is deterministic: interning the same name sequence always yields
// the same codes, and rebuilding from a frozen name list (FromNames)
// reproduces the dictionary bit-for-bit regardless of how many times, or
// on which machine, the rebuild happens. A Dict is not safe for
// concurrent mutation; a fully built Dict is safe for concurrent readers.
type Dict struct {
	names []string
	codes map[string]uint32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// FromNames builds a dictionary whose code for names[i] is exactly
// uint32(i). It panics on duplicate names — a frozen dictionary is a
// bijection, and a duplicate means the caller's name list is corrupt.
func FromNames(names []string) *Dict {
	d := &Dict{
		names: append([]string(nil), names...),
		codes: make(map[string]uint32, len(names)),
	}
	for i, s := range names {
		if _, dup := d.codes[s]; dup {
			panic("col: duplicate name in FromNames: " + s)
		}
		d.codes[s] = uint32(i)
	}
	return d
}

// Intern returns the code for s, assigning the next free code on first
// mention.
func (d *Dict) Intern(s string) uint32 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := uint32(len(d.names))
	d.names = append(d.names, s)
	d.codes[s] = c
	return c
}

// Code returns the code for s and whether s has been interned.
func (d *Dict) Code(s string) (uint32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Name returns the string for a code. It panics on an out-of-range code,
// which always indicates corrupted state.
func (d *Dict) Name(c uint32) string { return d.names[c] }

// Len returns the number of interned values.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the interned strings in code order. The returned slice
// is the dictionary's backing array and must be treated as read-only.
func (d *Dict) Names() []string { return d.names }

// Equal reports whether two dictionaries hold the same bijection: the
// same names mapped to the same codes.
func (d *Dict) Equal(o *Dict) bool {
	if len(d.names) != len(o.names) {
		return false
	}
	for i, s := range d.names {
		if o.names[i] != s {
			return false
		}
	}
	return true
}
