// Package col provides the frozen columnar (struct-of-arrays) view of a
// data.Dataset that the solver's hot loops run on. A Dataset is
// pointer-light but source-major: answering "who observed entry e"
// walks every source's presence row, so one truth update touches
// K·N·M presence bytes however sparse the data is. Freeze converts the
// dataset — once — into an entry-major CSR index over the actual
// claims:
//
//   - Off[e:e+1] bounds entry e's claims in Src, whose elements are the
//     observing source indices in ascending order;
//   - VOff[e] locates the entry's claim values in VF (continuous
//     properties) or VC (categorical properties), parallel to Src, so
//     each entry's values are one contiguous typed column slice;
//   - Dicts mirrors each categorical property's dictionary; codes in VC
//     are identical to the property's category indices, so tie-breaking
//     rules ("lowest category index wins") are preserved verbatim.
//
// The layout is entry-major — not property-major — deliberately: the
// solver's determinism contract (docs/PARALLEL.md) fixes the iteration
// and reduction order over entries, and the freeze must preserve that
// order exactly for the rewritten loops to stay bit-identical to the
// pre-columnar solver. Within an entry, claims are source-ascending,
// which is the order Dataset.ForEntry produced. A frozen Columns is
// immutable and safe for concurrent readers; every exported slice must
// be treated as read-only.
package col

import (
	"fmt"
	"math"

	"github.com/crhkit/crh/internal/data"
)

// Columns is the frozen struct-of-arrays view. See the package comment
// for the layout. All fields are read-only after Freeze.
type Columns struct {
	// Sources, Objects, Props mirror the frozen dataset's dimensions.
	Sources, Objects, Props int

	// PropKind[m] is property m's data type; NumCats[m] its dictionary
	// size (0 for continuous properties); Dicts[m] the mirrored
	// dictionary (nil for continuous properties). MaxCats is the largest
	// dictionary, sizing per-worker vote scratch.
	PropKind []data.Type
	NumCats  []int
	Dicts    []*Dict
	MaxCats  int

	// Off[e] is the first claim of entry e in Src; Off[NumEntries] the
	// total claim count. Src[j] is claim j's source index. MaxObs is the
	// largest per-entry claim count, sizing per-worker gather scratch.
	Off    []int32
	Src    []uint32
	MaxObs int

	// VOff[e] is the first value of entry e in VF (continuous entries)
	// or VC (categorical entries); entry e's n = Off[e+1]-Off[e] values
	// occupy VF[VOff[e]:VOff[e]+n] resp. VC[VOff[e]:VOff[e]+n],
	// parallel to Src[Off[e]:Off[e+1]].
	VOff []int32
	VF   []float64
	VC   []uint32
}

// NumEntries returns the number of addressable entries (Objects·Props).
func (c *Columns) NumEntries() int { return c.Objects * c.Props }

// NumClaims returns the total number of observations frozen.
func (c *Columns) NumClaims() int { return len(c.Src) }

// EntryProp returns the property index of entry e.
func (c *Columns) EntryProp(e int) int { return e % c.Props }

// Observers returns the number of sources observing entry e.
func (c *Columns) Observers(e int) int { return int(c.Off[e+1] - c.Off[e]) }

// SrcsOf returns entry e's observing source indices, ascending.
func (c *Columns) SrcsOf(e int) []uint32 { return c.Src[c.Off[e]:c.Off[e+1]] }

// Floats returns entry e's continuous claim values, parallel to
// SrcsOf(e). Meaningless for categorical entries.
func (c *Columns) Floats(e int) []float64 {
	n := int32(c.Observers(e))
	return c.VF[c.VOff[e] : c.VOff[e]+n]
}

// Codes returns entry e's categorical claim codes, parallel to
// SrcsOf(e). Meaningless for continuous entries.
func (c *Columns) Codes(e int) []uint32 {
	n := int32(c.Observers(e))
	return c.VC[c.VOff[e] : c.VOff[e]+n]
}

// Freeze builds the columnar view of d. It is the only scan of the
// source-major matrices a solver run performs; everything downstream
// walks the flat claim columns. Freeze panics if the dataset holds more
// than MaxInt32 observations — the int32 offset arrays are half the
// footprint of int64, and a dataset beyond 2³¹ claims does not fit the
// in-process representation anyway.
func Freeze(d *data.Dataset) *Columns {
	N, M, K := d.NumObjects(), d.NumProps(), d.NumSources()
	NM := N * M
	if total := d.NumObservations(); total > math.MaxInt32 {
		panic(fmt.Sprintf("col: %d observations overflow the int32 claim index", total))
	}
	c := &Columns{
		Sources:  K,
		Objects:  N,
		Props:    M,
		PropKind: make([]data.Type, M),
		NumCats:  make([]int, M),
		Dicts:    make([]*Dict, M),
		Off:      make([]int32, NM+1),
		VOff:     make([]int32, NM),
	}
	for m := 0; m < M; m++ {
		p := d.Prop(m)
		c.PropKind[m] = p.Type
		if p.Type != data.Categorical {
			continue
		}
		nc := p.NumCats()
		c.NumCats[m] = nc
		if nc > c.MaxCats {
			c.MaxCats = nc
		}
		names := make([]string, nc)
		for i := 0; i < nc; i++ {
			names[i] = p.CatName(i)
		}
		c.Dicts[m] = FromNames(names)
	}

	// Pass 1: per-entry claim counts.
	cnt := make([]int32, NM)
	for k := 0; k < K; k++ {
		for e := 0; e < NM; e++ {
			if d.HasEntry(k, e) {
				cnt[e]++
			}
		}
	}

	// Offsets: Off is the claim-index prefix sum; VOff prefix-sums
	// continuous and categorical entries separately, so each typed value
	// column is exactly as long as its claims.
	var pos, nf, ncat int32
	for e := 0; e < NM; e++ {
		c.Off[e] = pos
		n := cnt[e]
		if int(n) > c.MaxObs {
			c.MaxObs = int(n)
		}
		if c.PropKind[e%M] == data.Categorical {
			c.VOff[e] = ncat
			ncat += n
		} else {
			c.VOff[e] = nf
			nf += n
		}
		pos += n
	}
	c.Off[NM] = pos
	c.Src = make([]uint32, pos)
	c.VF = make([]float64, nf)
	c.VC = make([]uint32, ncat)

	// Pass 2: fill. Scanning sources in ascending order makes each
	// entry's claims source-ascending — the order ForEntry yields, which
	// the bit-identity contract depends on. cnt is reused as the
	// per-entry fill cursor.
	clear(cnt)
	for k := 0; k < K; k++ {
		for e := 0; e < NM; e++ {
			if !d.HasEntry(k, e) {
				continue
			}
			j := c.Off[e] + cnt[e]
			slot := c.VOff[e] + cnt[e]
			cnt[e]++
			c.Src[j] = uint32(k)
			v := d.GetEntry(k, e)
			if c.PropKind[e%M] == data.Categorical {
				c.VC[slot] = uint32(v.C)
			} else {
				c.VF[slot] = v.F
			}
		}
	}
	return c
}
