package loss

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/crhkit/crh/internal/data"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// catProp builds a categorical property with the given dictionary.
func catProp(t *testing.T, cats ...string) *data.Property {
	t.Helper()
	b := data.NewBuilder()
	for _, c := range cats {
		if err := b.ObserveCat("s", "o", "p", c); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build().Prop(0)
}

func TestNormalizedSquared(t *testing.T) {
	l := NormalizedSquared{}
	if l.Name() != "squared" {
		t.Error("name")
	}
	if got := l.Deviation(3, 1, 2); !almostEq(got, 2) { // (3-1)²/2
		t.Errorf("Deviation = %v, want 2", got)
	}
	// Truth is the weighted mean.
	if got := l.Truth([]float64{0, 10}, []float64{1, 3}); !almostEq(got, 7.5) {
		t.Errorf("Truth = %v, want 7.5", got)
	}
	// Zero std must not produce Inf for nonzero difference.
	if got := l.Deviation(1, 2, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("zero-std Deviation = %v", got)
	}
	if got := l.Deviation(5, 5, 0); got != 0 {
		t.Errorf("agreeing zero-std Deviation = %v, want 0", got)
	}
}

func TestNormalizedAbsolute(t *testing.T) {
	l := NormalizedAbsolute{}
	if got := l.Deviation(3, 1, 2); !almostEq(got, 1) { // |3-1|/2
		t.Errorf("Deviation = %v, want 1", got)
	}
	// Truth is the weighted median: robust to one big outlier.
	if got := l.Truth([]float64{10, 11, 1000}, []float64{1, 1, 1}); got != 11 {
		t.Errorf("Truth = %v, want 11", got)
	}
	// With overwhelming weight on the outlier, the median moves there.
	if got := l.Truth([]float64{10, 11, 1000}, []float64{0.1, 0.1, 5}); got != 1000 {
		t.Errorf("Truth = %v, want 1000", got)
	}
}

// TestContinuousTruthMinimizesLoss verifies the argmin property for both
// continuous losses: no observed value can beat the returned truth.
func TestContinuousTruthMinimizesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, l := range []Continuous{NormalizedSquared{}, NormalizedAbsolute{}} {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(8)
			vals := make([]float64, n)
			ws := make([]float64, n)
			for i := range vals {
				vals[i] = rng.Float64() * 100
				ws[i] = rng.Float64() + 0.01
			}
			truth := l.Truth(vals, ws)
			cost := func(v float64) float64 {
				var c float64
				for i := range vals {
					c += ws[i] * l.Deviation(v, vals[i], 1)
				}
				return c
			}
			base := cost(truth)
			// For squared loss, the optimum may be off-sample;
			// check against observed values and small perturbations.
			for _, v := range vals {
				if cost(v) < base-1e-6 {
					t.Fatalf("%s: observed value %v beats truth %v (%v < %v)", l.Name(), v, truth, cost(v), base)
				}
			}
			for _, dv := range []float64{-0.5, 0.5} {
				if cost(truth+dv) < base-1e-6 {
					t.Fatalf("%s: perturbed value beats truth", l.Name())
				}
			}
		}
	}
}

func TestZeroOne(t *testing.T) {
	l := ZeroOne{}
	p := catProp(t, "a", "b", "c")
	truth, dist := l.Truth([]int{0, 1, 1}, []float64{1, 1, 1}, p)
	if truth != 1 || dist != nil {
		t.Fatalf("Truth = %d dist=%v, want 1 nil", truth, dist)
	}
	// Weighted voting can overturn the majority.
	truth, _ = l.Truth([]int{0, 1, 1}, []float64{5, 1, 1}, p)
	if truth != 0 {
		t.Fatalf("weighted Truth = %d, want 0", truth)
	}
	if l.Deviation(1, nil, 1, p) != 0 || l.Deviation(1, nil, 0, p) != 1 {
		t.Error("0-1 deviations wrong")
	}
	// Deterministic tie-break toward the lower index.
	truth, _ = l.Truth([]int{2, 0}, []float64{1, 1}, p)
	if truth != 0 {
		t.Fatalf("tie-break Truth = %d, want 0", truth)
	}
}

func TestSquaredProb(t *testing.T) {
	l := SquaredProb{}
	p := catProp(t, "a", "b")
	truth, dist := l.Truth([]int{0, 0, 1}, []float64{1, 1, 2}, p)
	if truth != 0 && truth != 1 {
		t.Fatalf("Truth = %d", truth)
	}
	if !almostEq(dist[0], 0.5) || !almostEq(dist[1], 0.5) {
		t.Fatalf("dist = %v, want [0.5 0.5]", dist)
	}
	var sum float64
	for _, d := range dist {
		sum += d
	}
	if !almostEq(sum, 1) {
		t.Fatalf("dist sums to %v", sum)
	}
	// Deviation = ‖dist − onehot‖².
	want := (0.5-1)*(0.5-1) + 0.5*0.5
	if got := l.Deviation(truth, dist, 0, p); !almostEq(got, want) {
		t.Fatalf("Deviation = %v, want %v", got, want)
	}
	// A unanimous entry has zero deviation for the agreeing observer.
	_, dist = l.Truth([]int{1, 1}, []float64{1, 2}, p)
	if got := l.Deviation(1, dist, 1, p); !almostEq(got, 0) {
		t.Fatalf("unanimous Deviation = %v, want 0", got)
	}
	// Zero weights fall back to the unweighted distribution.
	_, dist = l.Truth([]int{0, 1}, []float64{0, 0}, p)
	if !almostEq(dist[0], 0.5) || !almostEq(dist[1], 0.5) {
		t.Fatalf("zero-weight dist = %v", dist)
	}
	// Nil distribution degrades to 0-1 behaviour.
	if got := l.Deviation(0, nil, 1, p); got != 1 {
		t.Fatalf("nil-dist Deviation = %v, want 1", got)
	}
}

// TestSquaredProbDistQuick property-tests that Truth's distribution is a
// valid probability vector whose mode matches the reported truth.
func TestSquaredProbDistQuick(t *testing.T) {
	p := catProp(t, "a", "b", "c", "d")
	l := SquaredProb{}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		obs := make([]int, len(raw))
		ws := make([]float64, len(raw))
		for i, r := range raw {
			obs[i] = int(r) % 4
			ws[i] = float64(r%5) + 0.25
		}
		truth, dist := l.Truth(obs, ws, p)
		var sum float64
		for _, d := range dist {
			if d < -1e-12 {
				return false
			}
			sum += d
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for _, d := range dist {
			if d > dist[truth]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"gate B12", "gate B-12", 1},
		{"same", "same", 0},
		{"日本", "日本語", 1}, // rune-aware
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein symmetric (%q,%q) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestEditDistanceLoss(t *testing.T) {
	l := EditDistance{}
	p := catProp(t, "B12", "B-12", "C7")
	// Two near-identical gate strings and one distant: the medoid should
	// be one of the near pair.
	truth, _ := l.Truth([]int{0, 1, 2}, []float64{1, 1, 1}, p)
	if name := p.CatName(truth); name != "B12" && name != "B-12" {
		t.Fatalf("medoid = %q, want a member of the near pair", name)
	}
	if got := l.Deviation(0, nil, 0, p); got != 0 {
		t.Fatalf("self deviation = %v", got)
	}
	d1 := l.Deviation(0, nil, 1, p) // B12 vs B-12
	d2 := l.Deviation(0, nil, 2, p) // B12 vs C7
	if !(d1 < d2) {
		t.Fatalf("near-miss %v should cost less than distant %v", d1, d2)
	}
	if truth, _ := l.Truth(nil, nil, p); truth != -1 {
		t.Fatal("empty Truth should be -1")
	}
	if got := l.Deviation(-1, nil, 0, p); got != 1 {
		t.Fatal("deviation against absent truth should be 1")
	}
}

func TestBregmanSquaredMatchesSquared(t *testing.T) {
	b := SquaredBregman()
	s := NormalizedSquared{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		truth, obs, std := rng.Float64()*10, rng.Float64()*10, rng.Float64()+0.1
		if got, want := b.Deviation(truth, obs, std), s.Deviation(truth, obs, std); !almostEq(got, want) {
			t.Fatalf("Bregman squared %v != squared %v", got, want)
		}
	}
	if got := b.Truth([]float64{1, 3}, []float64{1, 1}); !almostEq(got, 2) {
		t.Fatalf("Bregman Truth = %v", got)
	}
	if b.Name() != "bregman-squared" {
		t.Error("name")
	}
	if (Bregman{Generator: func(x float64) float64 { return x * x }, Gradient: func(x float64) float64 { return 2 * x }}).Name() != "bregman" {
		t.Error("default name")
	}
}

func TestItakuraSaitoNonNegative(t *testing.T) {
	b := ItakuraSaito()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		truth, obs := rng.Float64()*10+0.1, rng.Float64()*10+0.1
		if d := b.Deviation(truth, obs, 1); d < 0 || math.IsNaN(d) {
			t.Fatalf("IS(%v,%v) = %v", obs, truth, d)
		}
		if d := b.Deviation(truth, truth, 1); !almostEq(d, 0) {
			t.Fatalf("IS self-divergence = %v", d)
		}
	}
}

func TestGeneralizedIDivergence(t *testing.T) {
	b := GeneralizedIDivergence()
	if d := b.Deviation(2, 2, 1); !almostEq(d, 0) {
		t.Fatalf("self-divergence = %v", d)
	}
	if d := b.Deviation(1, 4, 1); d <= 0 {
		t.Fatalf("divergence = %v, want > 0", d)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := KLDivergence(p, p); !almostEq(got, 0) {
		t.Fatalf("KL(p,p) = %v", got)
	}
	q := []float64{0.9, 0.1}
	if got := KLDivergence(p, q); got <= 0 {
		t.Fatalf("KL(p,q) = %v, want > 0", got)
	}
	if got := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Fatalf("KL with zero support = %v, want +Inf", got)
	}
	if got := KLDivergence([]float64{0, 1}, []float64{0.5, 0.5}); math.IsInf(got, 0) {
		t.Fatal("0·log0 should be 0")
	}
}

func TestHuberDeviationShape(t *testing.T) {
	h := Huber{}
	// Continuous at the crossover and quadratic inside it.
	d := 1.345
	inside := h.Deviation(0, 0.5, 1) // r = 0.5 ≤ δ → ½r²
	if !almostEq(inside, 0.125) {
		t.Fatalf("quadratic branch = %v, want 0.125", inside)
	}
	atCross := h.Deviation(0, d, 1)
	wantCross := d * d / 2
	if !almostEq(atCross, wantCross) {
		t.Fatalf("crossover = %v, want %v", atCross, wantCross)
	}
	// Linear growth beyond the crossover: increments of δ per unit r.
	d1 := h.Deviation(0, 3, 1)
	d2 := h.Deviation(0, 4, 1)
	if !almostEq(d2-d1, d) {
		t.Fatalf("linear branch slope = %v, want δ=%v", d2-d1, d)
	}
	// Symmetry and zero.
	if h.Deviation(2, 2, 1) != 0 {
		t.Fatal("self deviation")
	}
	if !almostEq(h.Deviation(0, 2, 1), h.Deviation(2, 0, 1)) {
		t.Fatal("asymmetric")
	}
}

func TestHuberTruthBetweenMedianAndMean(t *testing.T) {
	// With one extreme outlier, the Huber estimate stays near the bulk
	// — far closer to the median than the mean.
	vals := []float64{10, 10.5, 11, 9.5, 10.2, 1000}
	ws := []float64{1, 1, 1, 1, 1, 1}
	huber := Huber{}.Truth(vals, ws)
	mean := NormalizedSquared{}.Truth(vals, ws)
	median := NormalizedAbsolute{}.Truth(vals, ws)
	if !(math.Abs(huber-median) < math.Abs(huber-mean)) {
		t.Fatalf("huber %v should sit near median %v, not mean %v", huber, median, mean)
	}
	if huber < 9 || huber > 13 {
		t.Fatalf("huber estimate %v left the data bulk", huber)
	}
}

// TestHuberTruthIsArgmin property-checks the IRLS result against local
// perturbations of the convex objective.
func TestHuberTruthIsArgmin(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := Huber{}
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(7)
		vals := make([]float64, n)
		ws := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 50
			ws[i] = 0.1 + rng.Float64()
		}
		truth := h.Truth(vals, ws)
		// The same robust scale Truth used internally.
		std := 1.4826 * madOf(vals)
		if std < 1e-12 {
			std = 1
			if s := stdOf(vals); s > 1e-12 {
				std = s
			}
		}
		cost := func(v float64) float64 {
			var c float64
			for i := range vals {
				c += ws[i] * h.Deviation(v, vals[i], std)
			}
			return c
		}
		base := cost(truth)
		for _, dv := range []float64{-1, -0.05, 0.05, 1} {
			if cost(truth+dv) < base-1e-8 {
				t.Fatalf("trial %d: perturbation %v beats IRLS truth", trial, dv)
			}
		}
	}
}

func madOf(xs []float64) float64 {
	m := medianOf(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return medianOf(devs)
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func stdOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

func TestHuberEdgeCases(t *testing.T) {
	h := Huber{}
	if h.Truth(nil, nil) != 0 {
		t.Fatal("empty")
	}
	if got := h.Truth([]float64{7}, []float64{1}); got != 7 {
		t.Fatalf("single value = %v", got)
	}
	// Zero weights fall back gracefully.
	if got := h.Truth([]float64{1, 5}, []float64{0, 0}); math.IsNaN(got) {
		t.Fatal("zero weights produced NaN")
	}
	if h.Name() != "huber" {
		t.Fatal("name")
	}
}
