package loss

import (
	"math"

	"github.com/crhkit/crh/internal/stats"
)

// Bregman is a continuous loss built from a Bregman divergence
//
//	D_φ(x, y) = φ(x) − φ(y) − φ′(y)·(x − y)
//
// for a strictly convex generator φ (Section 2.5 cites the Bregman family —
// squared loss, logistic loss, Itakura-Saito, KL, … — as convex losses that
// guarantee convergence of the framework). A key property of Bregman
// divergences is that the minimizer of Σ_k w_k D_φ(v_k, y) over y is the
// weighted mean of the v_k regardless of φ, so Truth is the weighted mean
// for every generator.
//
// Deviation is D_φ(obs, truth) normalized by std, matching the entry-scale
// normalization the framework applies to the built-in continuous losses.
type Bregman struct {
	// Generator is φ; Gradient is φ′. Both must be defined on the data's
	// domain (e.g., Itakura-Saito requires positive values).
	Generator func(float64) float64
	Gradient  func(float64) float64
	// LossName labels the loss in options and reports.
	LossName string
}

// Name implements Continuous.
func (b Bregman) Name() string {
	if b.LossName != "" {
		return b.LossName
	}
	return "bregman"
}

// Truth implements Continuous: the weighted mean minimizes the total
// weighted divergence for any Bregman generator.
func (b Bregman) Truth(vals, ws []float64) float64 {
	return stats.WeightedMean(vals, ws)
}

// Deviation implements Continuous.
func (b Bregman) Deviation(truth, obs, std float64) float64 {
	d := b.Generator(obs) - b.Generator(truth) - b.Gradient(truth)*(obs-truth)
	if d < 0 {
		// Guard tiny negative values from floating-point error; a true
		// Bregman divergence is non-negative.
		d = 0
	}
	return d / stdGuard(std)
}

// SquaredBregman returns the squared loss expressed as a Bregman divergence
// (generator x², for which D(x,y) = (x−y)²). Useful mainly for testing the
// Bregman plumbing against NormalizedSquared.
func SquaredBregman() Bregman {
	return Bregman{
		Generator: func(x float64) float64 { return x * x },
		Gradient:  func(x float64) float64 { return 2 * x },
		LossName:  "bregman-squared",
	}
}

// ItakuraSaito returns the Itakura-Saito distance as a Bregman divergence
// (generator −log x), suitable for positive-valued spectral-style data.
func ItakuraSaito() Bregman {
	return Bregman{
		Generator: func(x float64) float64 { return -math.Log(x) },
		Gradient:  func(x float64) float64 { return -1 / x },
		LossName:  "itakura-saito",
	}
}

// GeneralizedIDivergence returns the generalized I-divergence
// (generator x·log x), the unnormalized relative entropy for positive data.
func GeneralizedIDivergence() Bregman {
	return Bregman{
		Generator: func(x float64) float64 { return x * math.Log(x) },
		Gradient:  func(x float64) float64 { return math.Log(x) + 1 },
		LossName:  "generalized-i-divergence",
	}
}

// KLDivergence returns Σ_j p_j·log(p_j/q_j) for probability vectors p and q,
// with 0·log 0 = 0. Infinite when q_j = 0 < p_j. Provided for distribution-
// valued extensions and tests.
func KLDivergence(p, q []float64) float64 {
	var s float64
	for j := range p {
		if p[j] == 0 {
			continue
		}
		if q[j] == 0 {
			return math.Inf(1)
		}
		s += p[j] * math.Log(p[j]/q[j])
	}
	return s
}
