// Package loss provides the loss functions that plug into the CRH
// optimization framework (Section 2.4 of the paper). Each loss couples two
// operations the block-coordinate-descent solver needs:
//
//   - Deviation: d_m(v*, v^k), the penalty for an observation given the
//     current truth, used in the source-weight update (Step I).
//   - Truth: argmin_v Σ_k w_k · d_m(v, v^k), the weighted aggregation used
//     in the truth update (Step II).
//
// Continuous and categorical properties use distinct interfaces because
// their truth spaces differ: continuous truths range over ℝ while
// categorical truths range over the property's dictionary (optionally with
// a probability distribution over it).
package loss

import "github.com/crhkit/crh/internal/data"

// Continuous is a loss over real-valued properties. std is the standard
// deviation of the entry's observations across sources, used to normalize
// deviations so that entries with different scales contribute comparably
// (Eq 13 and Eq 15); implementations must tolerate std == 0.
type Continuous interface {
	// Name identifies the loss in options and reports.
	Name() string
	// Truth returns argmin_v Σ_k ws[k] · d(v, vals[k]).
	Truth(vals, ws []float64) float64
	// Deviation returns d(truth, obs) normalized by std.
	Deviation(truth, obs, std float64) float64
}

// ContinuousKernel is the allocation-free fast path of a Continuous
// loss. The columnar solver detects it once per run and hands every
// truth update caller-owned scratch; losses without a kernel fall back
// to Truth, which may allocate. Implementations must return exactly the
// bits Truth returns — the kernel is a performance contract, never a
// semantic one.
type ContinuousKernel interface {
	Continuous
	// TruthBuf is Truth with scratch: vbuf and wbuf (each of length
	// ≥ len(vals)) are caller-owned working buffers the kernel may
	// overwrite. vals and ws are read-only.
	TruthBuf(vals, ws, vbuf, wbuf []float64) float64
}

// CategoricalKernel is the allocation-free fast path of a Categorical
// loss, operating directly on interned category codes from the columnar
// claim index (codes are identical to the property's category indices,
// so tie-breaking is unchanged). Implementations must make TruthCodes
// bit-identical to Truth.
type CategoricalKernel interface {
	Categorical
	// NeedsDist reports whether TruthCodes fills a per-entry truth
	// distribution. When false the solver passes dist == nil and skips
	// the distribution arena entirely.
	NeedsDist() bool
	// TruthCodes is Truth over interned codes: codes[j] is the jth
	// observer's category code and ws[j] its source weight. votes is
	// transient scratch (length ≥ p.NumCats(), contents arbitrary,
	// clobbered). dist, when NeedsDist, is the entry's persistent
	// distribution storage (length p.NumCats()); the kernel overwrites
	// it with the same values Truth would have returned. The returned
	// truth is the winning category index.
	TruthCodes(codes []uint32, ws []float64, votes, dist []float64, p *data.Property) int
}

// Categorical is a loss over discrete-valued properties. Observations and
// truths are category indices into the property's dictionary.
type Categorical interface {
	// Name identifies the loss in options and reports.
	Name() string
	// Truth aggregates weighted observations into a truth: the category
	// index minimizing the weighted loss, plus an optional probability
	// distribution over categories (nil for hard losses). obs[j] is the
	// jth observer's category and ws[j] its source weight.
	Truth(obs []int, ws []float64, p *data.Property) (truth int, dist []float64)
	// Deviation returns the loss of an observation against the current
	// truth. dist is the distribution returned by Truth (nil for hard
	// losses).
	Deviation(truth int, dist []float64, obs int, p *data.Property) float64
}
