package loss

import (
	"math"

	"github.com/crhkit/crh/internal/stats"
)

// stdGuard returns a safe normalizer: entries on which all sources agree
// have zero spread; their deviations are zero anyway for exact agreement,
// and near-agreement should not blow up, so we floor the normalizer.
func stdGuard(std float64) float64 {
	const eps = 1e-12
	if std < eps {
		return eps
	}
	return std
}

// NormalizedSquared is the normalized squared loss of Eq(13):
//
//	d(v*, v) = (v* − v)² / std
//
// whose weighted-loss minimizer is the weighted mean (Eq 14). It is the
// natural choice for well-behaved continuous data but is sensitive to
// outliers.
type NormalizedSquared struct{}

// Name implements Continuous.
func (NormalizedSquared) Name() string { return "squared" }

// Truth implements Continuous: the weighted mean.
func (NormalizedSquared) Truth(vals, ws []float64) float64 {
	return stats.WeightedMean(vals, ws)
}

// TruthBuf implements ContinuousKernel: the weighted mean needs no
// scratch; it is already allocation-free.
func (NormalizedSquared) TruthBuf(vals, ws, _, _ []float64) float64 {
	return stats.WeightedMean(vals, ws)
}

// Deviation implements Continuous.
func (NormalizedSquared) Deviation(truth, obs, std float64) float64 {
	d := truth - obs
	return d * d / stdGuard(std)
}

// NormalizedAbsolute is the normalized absolute-deviation loss of Eq(15):
//
//	d(v*, v) = |v* − v| / std
//
// whose weighted-loss minimizer is the weighted median (Eq 16). It is
// robust to outliers and is the paper's default for continuous data.
type NormalizedAbsolute struct{}

// Name implements Continuous.
func (NormalizedAbsolute) Name() string { return "absolute" }

// Truth implements Continuous: the weighted median, computed by expected
// O(n) quickselect (the solver's hottest path on continuous data).
func (NormalizedAbsolute) Truth(vals, ws []float64) float64 {
	return stats.WeightedMedianFast(vals, ws)
}

// TruthBuf implements ContinuousKernel: quickselect into caller scratch.
func (NormalizedAbsolute) TruthBuf(vals, ws, vbuf, wbuf []float64) float64 {
	return stats.WeightedMedianBuf(vals, ws, vbuf, wbuf)
}

// Deviation implements Continuous.
func (NormalizedAbsolute) Deviation(truth, obs, std float64) float64 {
	return math.Abs(truth-obs) / stdGuard(std)
}
