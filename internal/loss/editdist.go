package loss

import (
	"sort"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// Levenshtein returns the edit distance between a and b (unit costs for
// insertion, deletion and substitution), using O(min(len)) memory.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditDistance is a loss for string-like categorical properties (Section
// 2.4's "edit distance for text data"): the deviation between two category
// values is their Levenshtein distance normalized by the longer length, so
// near-miss strings ("B12" vs "B-12") are penalized less than unrelated
// ones. The truth is the weighted medoid: the observed category minimizing
// the total weighted distance to all observations.
type EditDistance struct{}

// Name implements Categorical.
func (EditDistance) Name() string { return "edit-distance" }

// Truth implements Categorical by weighted-medoid selection over the
// observed categories. O(u²) in the number of distinct observed values.
func (EditDistance) Truth(obs []int, ws []float64, p *data.Property) (int, []float64) {
	if len(obs) == 0 {
		return -1, nil
	}
	// Pool weights per distinct category first; typical entries have few
	// distinct claims even with many observers.
	weight := make(map[int]float64, 4)
	for j, c := range obs {
		weight[c] += ws[j]
	}
	// Iterate candidates in sorted order: map order would vary the cost
	// summation order (and thus its rounding) run to run, and the medoid
	// choice must be deterministic.
	cands := make([]int, 0, len(weight))
	for c := range weight {
		cands = append(cands, c)
	}
	sort.Ints(cands)
	best, bestCost := -1, 0.0
	for _, cand := range cands {
		var cost float64
		for _, c := range cands {
			cost += weight[c] * normEdit(p.CatName(cand), p.CatName(c))
		}
		// Costs that differ only by accumulation rounding are ties; the
		// smallest candidate (already held, cands being sorted) wins.
		if best == -1 || (cost < bestCost && !stats.ApproxEq(cost, bestCost)) {
			best, bestCost = cand, cost
		}
	}
	return best, nil
}

// Deviation implements Categorical.
func (EditDistance) Deviation(truth int, _ []float64, obs int, p *data.Property) float64 {
	if truth < 0 {
		return 1
	}
	return normEdit(p.CatName(truth), p.CatName(obs))
}

func normEdit(a, b string) float64 {
	if a == b {
		return 0
	}
	la, lb := len([]rune(a)), len([]rune(b))
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(n)
}
