package loss

import (
	"math"

	"github.com/crhkit/crh/internal/stats"
)

// Huber is the Huber loss over continuous properties — quadratic within
// δ entry-spreads of the truth and linear beyond, interpolating between
// the squared loss (statistically efficient on clean data) and the
// absolute loss (robust to outliers):
//
//	d(v*, v) = ½ r²/s           if |r| ≤ δ·s,   r = v* − v
//	         = δ(|r| − ½ δ·s)   otherwise
//
// with s the entry's observation spread (the same normalizer the built-in
// losses use). The truth update has no closed form; it is computed by
// iteratively reweighted least squares from the weighted median, which
// converges in a handful of iterations because the objective is convex.
type Huber struct {
	// Delta is the quadratic/linear crossover in entry-spread units
	// (default 1.345, the classic 95%-efficiency constant).
	Delta float64
	// IRLSIters bounds the truth iterations (default 20);
	// IRLSTol stops them early (default 1e-10 relative movement).
	IRLSIters int
	IRLSTol   float64
}

func (h Huber) delta() float64 {
	if h.Delta == 0 {
		return 1.345
	}
	return h.Delta
}

// Name implements Continuous.
func (h Huber) Name() string { return "huber" }

// Deviation implements Continuous.
func (h Huber) Deviation(truth, obs, std float64) float64 {
	s := stdGuard(std)
	r := math.Abs(truth-obs) / s
	d := h.delta()
	if r <= d {
		return r * r / 2
	}
	return d * (r - d/2)
}

// Truth implements Continuous: IRLS on the convex Huber objective.
func (h Huber) Truth(vals, ws []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	// The IRLS crossover needs a scale, and it must be a *robust* one:
	// the plain standard deviation is inflated by the very outliers the
	// loss exists to resist (one wild value can stretch δ·s past itself
	// and disable the linear regime). Use the normal-consistent MAD,
	// falling back to the std when more than half the values coincide.
	s := 1.4826 * stats.MAD(vals)
	if s < 1e-12 {
		s = stdGuard(stats.Std(vals))
	}
	d := h.delta() * s
	v := stats.WeightedMedianFast(vals, ws)
	iters := h.IRLSIters
	if iters == 0 {
		iters = 20
	}
	tol := h.IRLSTol
	if tol == 0 {
		tol = 1e-10
	}
	for it := 0; it < iters; it++ {
		var num, den float64
		for i, x := range vals {
			r := math.Abs(v - x)
			omega := 1.0
			if r > d {
				omega = d / r
			}
			w := ws[i] * omega
			num += w * x
			den += w
		}
		if den == 0 {
			return stats.WeightedMedian(vals, ws)
		}
		next := num / den
		if math.Abs(next-v) <= tol*(1+math.Abs(v)) {
			return next
		}
		v = next
	}
	return v
}
