package loss

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel interfaces promise bit-identity with the allocating API:
// TruthBuf/TruthCodes must return exactly the bits Truth returns, on any
// input, including degenerate weights. These tests drive both paths over
// seeded random cases and compare Float64bits.

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestContinuousKernelBitIdentity(t *testing.T) {
	kernels := []ContinuousKernel{NormalizedAbsolute{}, NormalizedSquared{}}
	rng := rand.New(rand.NewSource(7))
	for _, k := range kernels {
		t.Run(k.Name(), func(t *testing.T) {
			for trial := 0; trial < 500; trial++ {
				n := 1 + rng.Intn(12)
				vals := make([]float64, n)
				ws := make([]float64, n)
				for i := range vals {
					// Coarse quantization provokes the duplicate-value and
					// numerical-tie paths (the fast median's fallback).
					vals[i] = math.Round(rng.NormFloat64() * 4)
					ws[i] = math.Round(rng.Float64()*8) / 4
				}
				if trial%7 == 0 {
					for i := range ws {
						ws[i] = 0 // zero total weight path
					}
				}
				vbuf, wbuf := make([]float64, n), make([]float64, n)
				want := k.Truth(vals, ws)
				got := k.TruthBuf(vals, ws, vbuf, wbuf)
				if !bitsEqual(want, got) {
					t.Fatalf("trial %d: TruthBuf %v, Truth %v (vals=%v ws=%v)", trial, got, want, vals, ws)
				}
				// Dirty scratch must not leak into the result.
				for i := range vbuf {
					vbuf[i], wbuf[i] = math.NaN(), math.NaN()
				}
				if got := k.TruthBuf(vals, ws, vbuf, wbuf); !bitsEqual(want, got) {
					t.Fatalf("trial %d: dirty scratch changed the result: %v vs %v", trial, got, want)
				}
			}
		})
	}
}

func TestCategoricalKernelBitIdentity(t *testing.T) {
	p := catProp(t, "a", "b", "c", "d", "e")
	kernels := []CategoricalKernel{ZeroOne{}, SquaredProb{}}
	rng := rand.New(rand.NewSource(11))
	for _, k := range kernels {
		t.Run(k.Name(), func(t *testing.T) {
			nc := p.NumCats()
			for trial := 0; trial < 500; trial++ {
				n := 1 + rng.Intn(10)
				obs := make([]int, n)
				codes := make([]uint32, n)
				ws := make([]float64, n)
				for i := range obs {
					obs[i] = rng.Intn(nc)
					codes[i] = uint32(obs[i])
					ws[i] = math.Round(rng.Float64()*8) / 4
				}
				if trial%5 == 0 {
					for i := range ws {
						ws[i] = 0 // zero total weight: unweighted fallback
					}
				}
				votes := make([]float64, nc)
				var dist []float64
				if k.NeedsDist() {
					dist = make([]float64, nc)
				}
				// Seed the scratch with garbage: kernels must fully overwrite.
				for i := range votes {
					votes[i] = math.NaN()
				}
				for i := range dist {
					dist[i] = math.NaN()
				}
				wantTruth, wantDist := k.Truth(obs, ws, p)
				gotTruth := k.TruthCodes(codes, ws, votes, dist, p)
				if gotTruth != wantTruth {
					t.Fatalf("trial %d: TruthCodes %d, Truth %d (obs=%v ws=%v)", trial, gotTruth, wantTruth, obs, ws)
				}
				if k.NeedsDist() != (wantDist != nil) {
					t.Fatalf("NeedsDist %t but Truth returned dist %v", k.NeedsDist(), wantDist)
				}
				for i := range wantDist {
					if !bitsEqual(wantDist[i], dist[i]) {
						t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, i, dist[i], wantDist[i])
					}
				}
			}
		})
	}
}

// TestKernelInterfaceCoverage pins which losses expose kernels: the
// defaults must (the solver's zero-allocation guarantee rests on them),
// and the deliberately-fallback losses must not silently grow one
// without the bit-identity suite learning about it.
func TestKernelInterfaceCoverage(t *testing.T) {
	if _, ok := interface{}(NormalizedAbsolute{}).(ContinuousKernel); !ok {
		t.Error("NormalizedAbsolute must implement ContinuousKernel")
	}
	if _, ok := interface{}(NormalizedSquared{}).(ContinuousKernel); !ok {
		t.Error("NormalizedSquared must implement ContinuousKernel")
	}
	if _, ok := interface{}(ZeroOne{}).(CategoricalKernel); !ok {
		t.Error("ZeroOne must implement CategoricalKernel")
	}
	if _, ok := interface{}(SquaredProb{}).(CategoricalKernel); !ok {
		t.Error("SquaredProb must implement CategoricalKernel")
	}
	if _, ok := interface{}(Huber{}).(ContinuousKernel); ok {
		t.Error("Huber grew a kernel: add it to the bit-identity suite")
	}
	if _, ok := interface{}(EditDistance{}).(CategoricalKernel); ok {
		t.Error("EditDistance grew a kernel: add it to the bit-identity suite")
	}
}
