package loss

import (
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// ZeroOne is the 0-1 loss of Eq(8): an observation costs 1 when it differs
// from the truth and 0 otherwise. Its weighted-loss minimizer is the value
// with the highest weighted vote (Eq 9). This is the paper's default for
// categorical data thanks to its time and space efficiency.
type ZeroOne struct{}

// Name implements Categorical.
func (ZeroOne) Name() string { return "zero-one" }

// Truth implements Categorical: weighted voting. Ties break toward the
// lowest category index, which makes results deterministic.
func (ZeroOne) Truth(obs []int, ws []float64, p *data.Property) (int, []float64) {
	votes := make([]float64, p.NumCats())
	for j, c := range obs {
		votes[c] += ws[j]
	}
	return stats.ArgMax(votes), nil
}

// NeedsDist implements CategoricalKernel: 0-1 truths are hard decisions.
func (ZeroOne) NeedsDist() bool { return false }

// TruthCodes implements CategoricalKernel: the same weighted vote as
// Truth, tallied into caller scratch.
func (ZeroOne) TruthCodes(codes []uint32, ws []float64, votes, _ []float64, p *data.Property) int {
	votes = votes[:p.NumCats()]
	for i := range votes {
		votes[i] = 0
	}
	for j, c := range codes {
		votes[c] += ws[j]
	}
	return stats.ArgMax(votes)
}

// Deviation implements Categorical.
func (ZeroOne) Deviation(truth int, _ []float64, obs int, _ *data.Property) float64 {
	if truth == obs {
		return 0
	}
	return 1
}

// SquaredProb is the probabilistic strategy of Eq(10)-(12): categorical
// observations are one-hot index vectors, the truth is a probability
// distribution over categories obtained as the weighted mean of those
// vectors, and the loss is the squared Euclidean distance between the truth
// distribution and an observation's one-hot vector. It yields a soft
// decision (the reported truth is the distribution's mode) at the cost of
// higher space complexity.
type SquaredProb struct{}

// Name implements Categorical.
func (SquaredProb) Name() string { return "squared-prob" }

// Truth implements Categorical: the normalized weighted mean of one-hot
// vectors (Eq 12), reported as its argmax plus the full distribution.
func (SquaredProb) Truth(obs []int, ws []float64, p *data.Property) (int, []float64) {
	dist := make([]float64, p.NumCats())
	var total float64
	for j, c := range obs {
		dist[c] += ws[j]
		total += ws[j]
	}
	if total > 0 {
		for i := range dist {
			dist[i] /= total
		}
	} else if len(obs) > 0 {
		// Zero total weight: fall back to an unweighted distribution.
		u := 1 / float64(len(obs))
		for i := range dist {
			dist[i] = 0
		}
		for _, c := range obs {
			dist[c] += u
		}
	}
	return stats.ArgMax(dist), dist
}

// NeedsDist implements CategoricalKernel: the truth is a distribution.
func (SquaredProb) NeedsDist() bool { return true }

// TruthCodes implements CategoricalKernel: Eq(12) computed into the
// entry's persistent distribution slot instead of a fresh slice.
func (SquaredProb) TruthCodes(codes []uint32, ws []float64, _, dist []float64, p *data.Property) int {
	dist = dist[:p.NumCats()]
	for i := range dist {
		dist[i] = 0
	}
	var total float64
	for j, c := range codes {
		dist[c] += ws[j]
		total += ws[j]
	}
	if total > 0 {
		for i := range dist {
			dist[i] /= total
		}
	} else if len(codes) > 0 {
		// Zero total weight: fall back to an unweighted distribution.
		u := 1 / float64(len(codes))
		for i := range dist {
			dist[i] = 0
		}
		for _, c := range codes {
			dist[c] += u
		}
	}
	return stats.ArgMax(dist)
}

// Deviation implements Categorical: ‖I* − I_obs‖² where I* is the truth
// distribution and I_obs the observation's one-hot vector. Expanded,
// Σ_j I*_j² − 2·I*_obs + 1, computed in O(L).
func (SquaredProb) Deviation(_ int, dist []float64, obs int, p *data.Property) float64 {
	if dist == nil {
		// No distribution available (e.g., truth injected externally):
		// degrade gracefully to 0-1 behaviour.
		return 1
	}
	var sq float64
	for _, d := range dist {
		sq += d * d
	}
	return sq - 2*dist[obs] + 1
}
