package loss

import (
	"strings"

	"github.com/crhkit/crh/internal/stats"
)

// EnsembleContinuous combines several continuous losses ("the framework
// can even be adapted to take the ensemble of multiple loss functions for
// a more robust loss computation", Section 2.4): the deviation is the
// weighted average of the member deviations and the truth update is the
// member truths' weighted average, blending, e.g., the robustness of the
// absolute loss with the efficiency of the squared loss.
type EnsembleContinuous struct {
	// Members are the combined losses; MemberWeights their relative
	// influence (uniform when nil).
	Members       []Continuous
	MemberWeights []float64
}

// Name implements Continuous.
func (e EnsembleContinuous) Name() string {
	names := make([]string, len(e.Members))
	for i, m := range e.Members {
		names[i] = m.Name()
	}
	return "ensemble(" + strings.Join(names, "+") + ")"
}

func (e EnsembleContinuous) memberWeight(i int) float64 {
	if e.MemberWeights == nil {
		return 1
	}
	return e.MemberWeights[i]
}

// Truth implements Continuous: the weighted average of the member argmins.
// (The exact argmin of a loss mixture has no closed form in general; the
// convex combination of member minimizers is the standard surrogate and
// is exact when all members share a minimizer.)
func (e EnsembleContinuous) Truth(vals, ws []float64) float64 {
	ts := make([]float64, len(e.Members))
	mw := make([]float64, len(e.Members))
	for i, m := range e.Members {
		ts[i] = m.Truth(vals, ws)
		mw[i] = e.memberWeight(i)
	}
	return stats.WeightedMean(ts, mw)
}

// Deviation implements Continuous: the weighted mean of member deviations.
func (e EnsembleContinuous) Deviation(truth, obs, std float64) float64 {
	var num, den float64
	for i, m := range e.Members {
		w := e.memberWeight(i)
		num += w * m.Deviation(truth, obs, std)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}
