package baseline

import (
	"math"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/synth"
)

// microDataset: 3 sources, 2 objects, 1 continuous + 1 categorical
// property, with hand-checkable aggregates.
func microDataset(t *testing.T) *data.Dataset {
	t.Helper()
	b := data.NewBuilder()
	obs := []struct {
		src, obj string
		temp     float64
		cond     string
	}{
		{"s1", "o1", 10, "x"},
		{"s2", "o1", 20, "x"},
		{"s3", "o1", 90, "y"},
		{"s1", "o2", 5, "z"},
		{"s2", "o2", 7, "z"},
		{"s3", "o2", 9, "z"},
	}
	for _, o := range obs {
		if err := b.ObserveFloat(o.src, o.obj, "temp", o.temp); err != nil {
			t.Fatal(err)
		}
		if err := b.ObserveCat(o.src, o.obj, "cond", o.cond); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestMean(t *testing.T) {
	d := microDataset(t)
	truths, rel := Mean{}.Resolve(d)
	if rel != nil {
		t.Error("Mean should not estimate reliability")
	}
	v, ok := truths.GetAt(0, 0)
	if !ok || v.F != 40 {
		t.Fatalf("mean temp o1 = %v, want 40", v.F)
	}
	v, _ = truths.GetAt(1, 0)
	if v.F != 7 {
		t.Fatalf("mean temp o2 = %v, want 7", v.F)
	}
	// Categorical entries are left unresolved.
	if _, ok := truths.GetAt(0, 1); ok {
		t.Error("Mean must ignore categorical entries")
	}
}

func TestMedian(t *testing.T) {
	d := microDataset(t)
	truths, _ := Median{}.Resolve(d)
	v, _ := truths.GetAt(0, 0)
	if v.F != 20 {
		t.Fatalf("median temp o1 = %v, want 20", v.F)
	}
}

func TestVoting(t *testing.T) {
	d := microDataset(t)
	truths, rel := Voting{}.Resolve(d)
	if rel != nil {
		t.Error("Voting should not estimate reliability")
	}
	v, ok := truths.GetAt(0, 1)
	if !ok {
		t.Fatal("cond o1 unresolved")
	}
	if name := d.Prop(1).CatName(int(v.C)); name != "x" {
		t.Fatalf("vote cond o1 = %q, want x", name)
	}
	if _, ok := truths.GetAt(0, 0); ok {
		t.Error("Voting must ignore continuous entries")
	}
}

// plantedMixed builds a noisy multi-source dataset from a small schema
// using the synth corruption protocol, so reliability ordering is known:
// profile k's γ increases with k.
func plantedMixed(seed int64) (*data.Dataset, *data.Table, []synth.SourceProfile) {
	schema := synth.Schema{
		Name: "test",
		Cols: []synth.Col{
			{Name: "height", Type: data.Continuous, Dist: synth.Normal, Mean: 170, Std: 12, Min: 120, Max: 220, Round: 1},
			{Name: "weight", Type: data.Continuous, Dist: synth.Normal, Mean: 70, Std: 14, Min: 35, Max: 160, Round: 1},
			{Name: "blood", Type: data.Categorical, Cats: []string{"A", "B", "AB", "O"}, CatW: []float64{34, 9, 4, 38}},
			{Name: "city", Type: data.Categorical, Cats: []string{"nyc", "sfo", "chi", "bos", "sea", "aus"}},
		},
	}
	profiles := []synth.SourceProfile{
		{Name: "good1", Gamma: 0.1},
		{Name: "good2", Gamma: 0.3},
		{Name: "mid", Gamma: 1.0},
		{Name: "bad1", Gamma: 1.7},
		{Name: "bad2", Gamma: 2.0},
	}
	w := synth.GenerateWorld(schema, 300, seed)
	d, gt := synth.Corrupt(w, profiles, synth.CorruptConfig{Seed: seed + 1})
	return d, gt, profiles
}

// errorRateOf runs a method and returns its categorical error rate.
func errorRateOf(t *testing.T, m Method, d *data.Dataset, gt *data.Table) float64 {
	t.Helper()
	truths, _ := m.Resolve(d)
	return eval.Evaluate(d, truths, gt).ErrorRate
}

func TestFactFindersBeatRandomGuessing(t *testing.T) {
	d, gt, _ := plantedMixed(21)
	// Random guessing among ~4-6 candidates would err ≥ 60%; every
	// truth-discovery baseline must do far better on this easy data.
	for _, m := range []Method{
		Voting{}, Investment{}, PooledInvestment{}, TwoEstimates{},
		ThreeEstimates{}, TruthFinder{}, AccuSim{},
	} {
		if rate := errorRateOf(t, m, d, gt); !(rate < 0.30) {
			t.Errorf("%s error rate = %v, want < 0.30", m.Name(), rate)
		}
	}
}

func TestReliabilityOrderingTracksGamma(t *testing.T) {
	d, gt, _ := plantedMixed(22)
	trueRel := eval.TrueReliability(d, gt)
	// Every reliability-estimating method should rank the best source
	// above the worst and correlate positively with the truth.
	for _, m := range []Method{
		GTM{}, Investment{}, PooledInvestment{}, TwoEstimates{},
		ThreeEstimates{}, TruthFinder{}, AccuSim{},
	} {
		_, rel := m.Resolve(d)
		if rel == nil {
			t.Fatalf("%s returned no reliability", m.Name())
		}
		if len(rel) != d.NumSources() {
			t.Fatalf("%s reliability length %d", m.Name(), len(rel))
		}
		if !(rel[0] > rel[4]) {
			t.Errorf("%s: best source score %v not above worst %v", m.Name(), rel[0], rel[4])
		}
		if c := eval.Correlation(rel, trueRel); !(c > 0.3) {
			t.Errorf("%s: correlation with true reliability = %v, want > 0.3", m.Name(), c)
		}
	}
}

func TestGTMContinuousAccuracy(t *testing.T) {
	d, gt, _ := plantedMixed(23)
	truths, _ := GTM{}.Resolve(d)
	m := eval.Evaluate(d, truths, gt)
	// GTM must beat the unweighted mean on MNAD.
	meanTruths, _ := Mean{}.Resolve(d)
	mm := eval.Evaluate(d, meanTruths, gt)
	if !(m.MNAD < mm.MNAD) {
		t.Errorf("GTM MNAD %v should beat Mean %v", m.MNAD, mm.MNAD)
	}
	// And leave categorical entries unresolved.
	if !math.IsNaN(m.ErrorRate) && m.CatWrong != m.CatEntries {
		t.Error("GTM should not resolve categorical entries")
	}
}

func TestWeightedMethodsBeatVotingOnSkewedSources(t *testing.T) {
	// 2 good vs 5 bad sources: plain voting suffers, reliability-aware
	// methods should recover (the phenomenon behind Figures 2-3).
	profiles := []synth.SourceProfile{
		{Name: "g1", Gamma: 0.05},
		{Name: "g2", Gamma: 0.05},
		{Name: "b1", Gamma: 2.4},
		{Name: "b2", Gamma: 2.4},
		{Name: "b3", Gamma: 2.4},
		{Name: "b4", Gamma: 2.4},
		{Name: "b5", Gamma: 2.4},
	}
	schema := synth.Schema{
		Name: "skew",
		Cols: []synth.Col{
			{Name: "cat", Type: data.Categorical, Cats: []string{"a", "b", "c", "d", "e"}},
		},
	}
	w := synth.GenerateWorld(schema, 400, 31)
	d, gt := synth.Corrupt(w, profiles, synth.CorruptConfig{Seed: 32, FlipScale: 0.3})
	voteRate := errorRateOf(t, Voting{}, d, gt)
	for _, m := range []Method{PooledInvestment{}, AccuSim{}, TruthFinder{}} {
		if rate := errorRateOf(t, m, d, gt); !(rate < voteRate) {
			t.Errorf("%s rate %v should beat voting %v with skewed sources", m.Name(), rate, voteRate)
		}
	}
}

func TestMethodsHandleSingleSource(t *testing.T) {
	b := data.NewBuilder()
	b.ObserveFloat("only", "o", "x", 3)
	b.ObserveCat("only", "o", "c", "v")
	d := b.Build()
	for _, m := range All() {
		truths, rel := m.Resolve(d)
		if truths == nil {
			t.Fatalf("%s returned nil truths", m.Name())
		}
		for _, r := range rel {
			if math.IsNaN(r) {
				t.Errorf("%s produced NaN reliability", m.Name())
			}
		}
	}
}

func TestMethodsHandleEmptyDataset(t *testing.T) {
	d := data.NewBuilder().Build()
	for _, m := range All() {
		truths, _ := m.Resolve(d)
		if truths == nil || truths.Count() != 0 {
			t.Errorf("%s on empty dataset misbehaved", m.Name())
		}
	}
}

func TestDeterminism(t *testing.T) {
	d, _, _ := plantedMixed(25)
	for _, m := range All() {
		t1, r1 := m.Resolve(d)
		t2, r2 := m.Resolve(d)
		for e := 0; e < t1.Len(); e++ {
			v1, ok1 := t1.Get(e)
			v2, ok2 := t2.Get(e)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("%s truths not deterministic at entry %d", m.Name(), e)
			}
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%s reliability not deterministic", m.Name())
			}
		}
	}
}

func TestClaimGraph(t *testing.T) {
	d := microDataset(t)
	g := buildClaims(d)
	if len(g.entries) != 4 {
		t.Fatalf("claim graph has %d entries, want 4", len(g.entries))
	}
	// o1 temp has 3 distinct values, o2 cond has 1 (all agree on z).
	var o1temp, o2cond *entryClaims
	for i := range g.entries {
		switch g.entries[i].e {
		case d.Entry(0, 0):
			o1temp = &g.entries[i]
		case d.Entry(1, 1):
			o2cond = &g.entries[i]
		}
	}
	if o1temp == nil || len(o1temp.vals) != 3 {
		t.Fatal("o1 temp should have 3 candidate facts")
	}
	if o2cond == nil || len(o2cond.vals) != 1 || len(o2cond.claimants[0]) != 3 {
		t.Fatal("o2 cond should have 1 fact claimed by 3 sources")
	}
	for k := 0; k < 3; k++ {
		if g.claimCount[k] != 4 {
			t.Fatalf("source %d claim count = %d, want 4", k, g.claimCount[k])
		}
	}
}

func TestSimilarity(t *testing.T) {
	d := microDataset(t)
	g := buildClaims(d)
	var o1temp, o1cond int = -1, -1
	for i := range g.entries {
		switch g.entries[i].e {
		case d.Entry(0, 0):
			o1temp = i
		case d.Entry(0, 1):
			o1cond = i
		}
	}
	// Continuous: closer values are more similar.
	s12 := g.similarity(o1temp, 0, 1) // 10 vs 20
	s13 := g.similarity(o1temp, 0, 2) // 10 vs 90
	if !(s12 > s13) {
		t.Fatalf("sim(10,20)=%v should exceed sim(10,90)=%v", s12, s13)
	}
	if self := g.similarity(o1temp, 1, 1); math.Abs(self-1) > 1e-12 {
		t.Fatalf("self-similarity = %v", self)
	}
	// Categorical: distinct values have similarity 0.
	if got := g.similarity(o1cond, 0, 1); got != 0 {
		t.Fatalf("categorical sim = %v, want 0", got)
	}
}

func TestAllRegistry(t *testing.T) {
	ms := All()
	if len(ms) != 10 {
		t.Fatalf("All() has %d methods, want 10", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Name() == "" {
			t.Fatal("unnamed method")
		}
		if seen[m.Name()] {
			t.Fatalf("duplicate method name %s", m.Name())
		}
		seen[m.Name()] = true
	}
}
