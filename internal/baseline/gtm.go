package baseline

import (
	"math"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// GTM is the Gaussian Truth Model of Zhao & Han ("A probabilistic model
// for estimating real-valued truth from conflicting sources", QDB 2012):
// a Bayesian generative model for continuous data only.
//
// Generative story (on per-entry standardized data): each entry's truth
// μ_e ~ N(μ0, σ0²); each source k has quality σ_k² with an inverse-Gamma
// (α, β) prior; an observation of entry e by source k is drawn from
// N(μ_e, σ_k²). Inference alternates MAP updates:
//
//	σ_k² ← (β + ½ Σ_{e∈obs(k)} (o_ek − μ_e)²) / (α + 1 + n_k/2)
//	μ_e  ← (μ0/σ0² + Σ_k o_ek/σ_k²) / (1/σ0² + Σ_k 1/σ_k²)
//
// following the paper's truth-initialization-by-median and
// standardization preprocessing. Categorical entries are ignored — the
// point the CRH comparison makes is that GTM "can not estimate source
// reliability accurately merely by continuous data".
type GTM struct {
	// Alpha, Beta parameterize the inverse-Gamma prior on source
	// variance; zero values select α=10, β=10.
	Alpha, Beta float64
	// Mu0, Sigma0 parameterize the truth prior on standardized data;
	// zero values select μ0=0, σ0=1.
	Mu0, Sigma0 float64
	// Iters is the number of coordinate updates (default 20).
	Iters int
}

// Name implements Method.
func (GTM) Name() string { return "GTM" }

// Resolve implements Method. The second return value is each source's
// estimated precision 1/σ_k², its reliability degree.
func (g GTM) Resolve(d *data.Dataset) (*data.Table, []float64) {
	alpha, beta := g.Alpha, g.Beta
	if alpha == 0 {
		alpha = 10
	}
	if beta == 0 {
		beta = 10
	}
	sigma0 := g.Sigma0
	if sigma0 == 0 {
		sigma0 = 1
	}
	iters := g.Iters
	if iters == 0 {
		iters = 20
	}

	// Collect continuous entries and standardize each by its own
	// observation mean/spread so sources are comparable across entries.
	type obs struct {
		k int
		z float64
	}
	type entry struct {
		e          int
		mean, std  float64
		observeds  []obs
		truthZ     float64
		hasObserve bool
	}
	var entries []entry
	var vals []float64
	K := d.NumSources()
	for e := 0; e < d.NumEntries(); e++ {
		if d.Prop(d.EntryProp(e)).Type != data.Continuous {
			continue
		}
		vals = vals[:0]
		d.ForEntry(e, func(_ int, v data.Value) { vals = append(vals, v.F) })
		if len(vals) == 0 {
			continue
		}
		mean := stats.Mean(vals)
		std := stats.Std(vals)
		if std < 1e-12 {
			std = 1
		}
		en := entry{e: e, mean: mean, std: std, hasObserve: true}
		d.ForEntry(e, func(k int, v data.Value) {
			en.observeds = append(en.observeds, obs{k, (v.F - mean) / std})
		})
		// Truth initialization: the median of standardized claims.
		vals2 := make([]float64, len(en.observeds))
		for i, o := range en.observeds {
			vals2[i] = o.z
		}
		en.truthZ = stats.Median(vals2)
		entries = append(entries, en)
	}

	sigma2 := make([]float64, K)
	for k := range sigma2 {
		sigma2[k] = 1
	}
	if len(entries) == 0 {
		// No continuous data: nothing to resolve.
		return data.NewTableFor(d), nil
	}

	for it := 0; it < iters; it++ {
		// Source-quality update.
		num := make([]float64, K)
		cnt := make([]float64, K)
		for i := range entries {
			for _, o := range entries[i].observeds {
				dz := o.z - entries[i].truthZ
				num[o.k] += dz * dz
				cnt[o.k]++
			}
		}
		for k := 0; k < K; k++ {
			sigma2[k] = (beta + num[k]/2) / (alpha + 1 + cnt[k]/2)
			if sigma2[k] < 1e-9 {
				sigma2[k] = 1e-9
			}
		}
		// Truth update.
		for i := range entries {
			numT := g.Mu0 / (sigma0 * sigma0)
			den := 1 / (sigma0 * sigma0)
			for _, o := range entries[i].observeds {
				numT += o.z / sigma2[o.k]
				den += 1 / sigma2[o.k]
			}
			entries[i].truthZ = numT / den
		}
	}

	t := data.NewTableFor(d)
	for i := range entries {
		en := &entries[i]
		t.Set(en.e, data.Float(en.truthZ*en.std+en.mean))
	}
	rel := make([]float64, K)
	for k := range rel {
		rel[k] = 1 / sigma2[k]
		if math.IsInf(rel[k], 0) {
			rel[k] = math.MaxFloat64
		}
	}
	return t, rel
}
