package baseline

import (
	"math"

	"github.com/crhkit/crh/internal/data"
)

// TruthFinder is Yin, Han & Yu's algorithm ("Truth discovery with multiple
// conflicting information providers on the web", KDD 2007). Source
// trustworthiness t(s) and fact confidence s(f) are computed by Bayesian-
// style iteration:
//
//	τ(s)  = −ln(1 − t(s))                        (trustworthiness score)
//	σ(f)  = Σ_{s claims f} τ(s)                  (raw confidence score)
//	σ*(f) = σ(f) + ρ · Σ_{f'≠f} σ(f')·imp(f'→f)  (implication adjustment)
//	s(f)  = 1 / (1 + e^{−γ·σ*(f)})               (dampened confidence)
//	t(s)  = avg_{f ∈ claims(s)} s(f)
//
// where imp(f'→f) = sim(f', f) − Base captures how much claiming f'
// implies f is (in)correct: similar continuous claims support each other,
// while conflicting claims drag each other down. Defaults follow the
// paper: ρ = 0.5, γ = 0.3, Base = 0.5, initial trust 0.9.
type TruthFinder struct {
	// Rho weights the implication adjustment (default 0.5).
	Rho float64
	// Gamma is the logistic dampening factor (default 0.3).
	Gamma float64
	// Base is subtracted from similarities to form implications
	// (default 0.5), making dissimilar claims count against each other.
	Base float64
	// InitTrust is the initial source trustworthiness (default 0.9).
	InitTrust float64
	// Iters bounds the rounds (default 20).
	Iters int
	// Tol stops early when trust stabilizes (default 1e-6).
	Tol float64
}

// Name implements Method.
func (TruthFinder) Name() string { return "TruthFinder" }

// Resolve implements Method. Reliability scores are the trustworthiness
// values t(s) ∈ (0, 1).
func (v TruthFinder) Resolve(d *data.Dataset) (*data.Table, []float64) {
	rho, gamma, base := v.Rho, v.Gamma, v.Base
	if rho == 0 {
		rho = 0.5
	}
	if gamma == 0 {
		gamma = 0.3
	}
	if base == 0 {
		base = 0.5
	}
	init := v.InitTrust
	if init == 0 {
		init = 0.9
	}
	iters := v.Iters
	if iters == 0 {
		iters = 20
	}
	tol := v.Tol
	if tol == 0 {
		tol = 1e-6
	}

	g := buildClaims(d)
	K := d.NumSources()
	trust := make([]float64, K)
	for k := range trust {
		trust[k] = init
	}
	conf := g.newScores()
	raw := g.newScores()
	prev := make([]float64, K)

	for it := 0; it < iters; it++ {
		// Raw confidence from trustworthiness scores.
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				var sigma float64
				for _, k := range srcs {
					t := trust[k]
					if t > 0.999999 {
						t = 0.999999
					}
					if t < 0 {
						t = 0
					}
					sigma += -math.Log(1 - t)
				}
				raw[i][j] = sigma
			}
		}
		// Implication adjustment between co-candidates, then logistic
		// dampening.
		for i, ec := range g.entries {
			for j := range ec.claimants {
				adj := raw[i][j]
				for j2 := range ec.claimants {
					if j2 == j {
						continue
					}
					adj += rho * raw[i][j2] * (g.similarity(i, j2, j) - base)
				}
				conf[i][j] = 1 / (1 + math.Exp(-gamma*adj))
			}
		}
		// Trustworthiness update.
		copy(prev, trust)
		sum := make([]float64, K)
		cnt := make([]float64, K)
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				for _, k := range srcs {
					sum[k] += conf[i][j]
					cnt[k]++
				}
			}
		}
		for k := 0; k < K; k++ {
			if cnt[k] > 0 {
				trust[k] = sum[k] / cnt[k]
			}
		}
		if maxAbsDelta(trust, prev) < tol {
			break
		}
	}
	return g.truthsFromScores(conf), trust
}
