package baseline

import (
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// Mean is the traditional conflict-resolution approach for continuous data:
// the truth of an entry is the unweighted mean of its observations.
// Categorical entries are ignored ("methods applied on continuous data
// only" in Section 3.1.2) and no source reliability is estimated.
type Mean struct{}

// Name implements Method.
func (Mean) Name() string { return "Mean" }

// Resolve implements Method.
func (Mean) Resolve(d *data.Dataset) (*data.Table, []float64) {
	return continuousAggregate(d, stats.Mean), nil
}

// Median aggregates continuous entries by their unweighted median; like
// Mean, it ignores categorical data and estimates no reliability.
type Median struct{}

// Name implements Method.
func (Median) Name() string { return "Median" }

// Resolve implements Method.
func (Median) Resolve(d *data.Dataset) (*data.Table, []float64) {
	return continuousAggregate(d, stats.Median), nil
}

func continuousAggregate(d *data.Dataset, agg func([]float64) float64) *data.Table {
	t := data.NewTableFor(d)
	var vals []float64
	for e := 0; e < d.NumEntries(); e++ {
		if d.Prop(d.EntryProp(e)).Type != data.Continuous {
			continue
		}
		vals = vals[:0]
		d.ForEntry(e, func(_ int, v data.Value) { vals = append(vals, v.F) })
		if len(vals) == 0 {
			continue
		}
		t.Set(e, data.Float(agg(vals)))
	}
	return t
}

// Voting is majority voting on categorical entries: the value with the
// highest number of occurrences wins (ties break toward the lowest
// category index for determinism). Continuous entries are ignored and all
// sources are implicitly treated as equally reliable.
type Voting struct{}

// Name implements Method.
func (Voting) Name() string { return "Voting" }

// Resolve implements Method.
func (Voting) Resolve(d *data.Dataset) (*data.Table, []float64) {
	t := data.NewTableFor(d)
	var votes []float64
	for e := 0; e < d.NumEntries(); e++ {
		p := d.Prop(d.EntryProp(e))
		if p.Type != data.Categorical {
			continue
		}
		if cap(votes) < p.NumCats() {
			votes = make([]float64, p.NumCats())
		}
		votes = votes[:p.NumCats()]
		for i := range votes {
			votes[i] = 0
		}
		n := 0
		d.ForEntry(e, func(_ int, v data.Value) {
			votes[v.C]++
			n++
		})
		if n == 0 {
			continue
		}
		t.Set(e, data.Cat(stats.ArgMax(votes)))
	}
	return t, nil
}
