package baseline

import (
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// TwoEstimates is Galland, Abiteboul, Marian & Senellart's 2-Estimates
// ("Corroborating information from disagreeing views", WSDM 2010). It
// assumes "one and only one true value per entry": a source claiming value
// v implicitly votes *against* every other candidate value of the same
// entry. Two mutually recursive estimates — per-fact truthfulness T(f) and
// per-source error ε(s) — are averaged over positive and negative votes:
//
//	T(f) = avg over voters:  claimant → 1 − ε(s);  denier → ε(s)
//	ε(s) = avg over votes:   claimed  → 1 − T(f);  denied → T(f)
//
// followed by the authors' λ-normalization: each estimate vector is
// affinely rescaled onto [0, 1] every round, which they show is required
// for convergence away from degenerate fixed points.
type TwoEstimates struct {
	// Iters bounds the rounds (default 20).
	Iters int
	// Tol stops early when source errors stabilize (default 1e-6).
	Tol float64
}

// Name implements Method.
func (TwoEstimates) Name() string { return "2-Estimates" }

// Resolve implements Method. The reliability score is 1 − ε(s).
func (v TwoEstimates) Resolve(d *data.Dataset) (*data.Table, []float64) {
	return estimates(d, v.Iters, v.Tol, false)
}

// ThreeEstimates extends 2-Estimates with a per-fact difficulty estimate
// δ(f) ∈ [0, 1] ("how hard is it to get this entry right"): a vote's
// strength is attenuated by the fact's difficulty, so sources are not
// punished for erring on hard facts:
//
//	T(f) = avg: claimant → 1 − ε(s)·δ(f);  denier → ε(s)·δ(f)
//	ε(s) = avg over votes: claimed → (1 − T(f))/δ(f);  denied → T(f)/δ(f)
//	δ(f) = avg over voters: claimant → (1 − T(f))/ε(s);  denier → T(f)/ε(s)
//
// with all three estimate vectors λ-normalized onto [0, 1] each round and
// denominators floored to keep the updates finite.
type ThreeEstimates struct {
	// Iters bounds the rounds (default 20).
	Iters int
	// Tol stops early when the estimates stabilize (default 1e-6).
	Tol float64
}

// Name implements Method.
func (ThreeEstimates) Name() string { return "3-Estimates" }

// Resolve implements Method. The reliability score is 1 − ε(s).
func (v ThreeEstimates) Resolve(d *data.Dataset) (*data.Table, []float64) {
	return estimates(d, v.Iters, v.Tol, true)
}

func estimates(d *data.Dataset, iters int, tol float64, difficulty bool) (*data.Table, []float64) {
	g := buildClaims(d)
	if iters == 0 {
		iters = 20
	}
	if tol == 0 {
		tol = 1e-6
	}
	const floor = 0.05 // keeps /ε and /δ finite without dominating

	K := d.NumSources()
	errs := make([]float64, K) // ε(s)
	for k := range errs {
		errs[k] = 0.2
	}
	truth := g.newScores() // T(f)
	diff := g.newScores()  // δ(f)
	for i := range truth {
		for j := range truth[i] {
			truth[i][j] = 0.5
			diff[i][j] = 0.5
		}
	}
	prev := make([]float64, K)

	for it := 0; it < iters; it++ {
		// T(f): every source observing the entry votes on every
		// candidate — positively on its claim, negatively on the rest.
		for i, ec := range g.entries {
			var voters int
			for _, srcs := range ec.claimants {
				voters += len(srcs)
			}
			for j := range ec.claimants {
				var sum float64
				for j2, srcs := range ec.claimants {
					for _, k := range srcs {
						e := errs[k]
						if difficulty {
							e *= diff[i][j]
						}
						if j2 == j {
							sum += 1 - e
						} else {
							sum += e
						}
					}
				}
				truth[i][j] = sum / float64(voters)
			}
		}
		normalizeScores(truth)

		// ε(s): averaged over all the source's positive and negative
		// votes.
		copy(prev, errs)
		sumE := make([]float64, K)
		cntE := make([]float64, K)
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				for _, k := range srcs {
					// Positive vote on j, negative on every other
					// candidate of this entry.
					for j2 := range ec.claimants {
						denom := 1.0
						if difficulty {
							denom = diff[i][j2]
							if denom < floor {
								denom = floor
							}
						}
						if j2 == j {
							sumE[k] += (1 - truth[i][j2]) / denom
						} else {
							sumE[k] += truth[i][j2] / denom
						}
						cntE[k]++
					}
				}
			}
		}
		for k := 0; k < K; k++ {
			if cntE[k] > 0 {
				errs[k] = sumE[k] / cntE[k]
			}
		}
		normalizeVec(errs)

		if difficulty {
			// δ(f): averaged over the entry's voters.
			for i, ec := range g.entries {
				for j := range ec.claimants {
					var sum, cnt float64
					for j2, srcs := range ec.claimants {
						for _, k := range srcs {
							e := errs[k]
							if e < floor {
								e = floor
							}
							if j2 == j {
								sum += (1 - truth[i][j]) / e
							} else {
								sum += truth[i][j] / e
							}
							cnt++
						}
					}
					if cnt > 0 {
						diff[i][j] = sum / cnt
					}
				}
			}
			normalizeScores(diff)
		}

		if maxAbsDelta(errs, prev) < tol {
			break
		}
	}

	rel := make([]float64, K)
	for k := range rel {
		rel[k] = 1 - errs[k]
	}
	return g.truthsFromScores(truth), rel
}

// normalizeVec rescales a vector affinely onto [0, 1] (λ-normalization).
// Constant vectors are left unchanged — rescaling them would fabricate
// differences.
func normalizeVec(xs []float64) {
	min, max := stats.MinMax(xs)
	if max <= min {
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - min) / (max - min)
	}
}

// normalizeScores λ-normalizes a jagged score matrix globally, preserving
// cross-entry comparability.
func normalizeScores(m [][]float64) {
	first := true
	var min, max float64
	for i := range m {
		for _, x := range m[i] {
			if first {
				min, max = x, x
				first = false
				continue
			}
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
	}
	if first || max <= min {
		return
	}
	for i := range m {
		for j := range m[i] {
			m[i][j] = (m[i][j] - min) / (max - min)
		}
	}
}
