package baseline

import (
	"math"

	"github.com/crhkit/crh/internal/stats"

	"github.com/crhkit/crh/internal/data"
)

// Investment is Pasternack & Roth's fact finder ("Making better informed
// trust decisions with generalized fact-finding", and earlier "Knowing
// what to believe"): each source uniformly "invests" its trustworthiness
// across the claims it makes, a claim's belief grows as a non-linear
// function of the invested total, and sources earn back trust in
// proportion to the returns on their investments:
//
//	invest(s→c) = T(s) / |claims(s)|
//	B(c) = ( Σ_s invest(s→c) )^g                       (growth g = 1.2)
//	T(s) = Σ_{c ∈ claims(s)} B(c) · invest(s→c) / Σ_{s'} invest(s'→c)
//
// Trust is renormalized each round (max to 1) to keep the fixed point
// stable. Iterates a fixed number of rounds or until trust stabilizes.
type Investment struct {
	// G is the belief growth exponent (default 1.2, the authors'
	// recommended setting).
	G float64
	// Iters bounds the rounds (default 20).
	Iters int
	// Tol stops iteration early when trust moves less than this
	// (default 1e-6).
	Tol float64
}

// Name implements Method.
func (Investment) Name() string { return "Investment" }

// Resolve implements Method.
func (v Investment) Resolve(d *data.Dataset) (*data.Table, []float64) {
	g := buildClaims(d)
	growth := v.G
	if growth == 0 {
		growth = 1.2
	}
	iters := v.Iters
	if iters == 0 {
		iters = 20
	}
	tol := v.Tol
	if tol == 0 {
		tol = 1e-6
	}

	K := d.NumSources()
	trust := make([]float64, K)
	for k := range trust {
		trust[k] = 1
	}
	belief := g.newScores()
	prev := make([]float64, K)

	for it := 0; it < iters; it++ {
		// Belief update: pooled investments raised to the growth power.
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				var inv float64
				for _, k := range srcs {
					if g.claimCount[k] > 0 {
						inv += trust[k] / float64(g.claimCount[k])
					}
				}
				belief[i][j] = math.Pow(inv, growth)
			}
		}
		// Trust update: returns proportional to investment share.
		copy(prev, trust)
		next := make([]float64, K)
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				var total float64
				for _, k := range srcs {
					if g.claimCount[k] > 0 {
						total += prev[k] / float64(g.claimCount[k])
					}
				}
				if total == 0 {
					continue
				}
				for _, k := range srcs {
					if g.claimCount[k] > 0 {
						next[k] += belief[i][j] * (prev[k] / float64(g.claimCount[k])) / total
					}
				}
			}
		}
		// Renormalize so the iteration neither explodes nor vanishes.
		_, max := stats.MinMax(next)
		if max > 0 {
			for k := range next {
				next[k] /= max
			}
		} else {
			for k := range next {
				next[k] = 1
			}
		}
		trust = next
		if maxAbsDelta(trust, prev) < tol {
			break
		}
	}
	return g.truthsFromScores(belief), trust
}

// PooledInvestment is the authors' improved linear variant: investments
// pool linearly into H(c), and an entry's beliefs are redistributed by a
// power-scaled share of the entry's total pooled investment:
//
//	H(c) = Σ_s T(s)/|claims(s)|
//	B(c) = H(c) · H(c)^g / Σ_{c' ∈ mutex(c)} H(c')^g    (g = 1.4)
//
// with the same trust update and renormalization as Investment.
type PooledInvestment struct {
	// G is the pooling exponent (default 1.4, the authors' setting).
	G float64
	// Iters bounds the rounds (default 20).
	Iters int
	// Tol stops iteration early (default 1e-6).
	Tol float64
}

// Name implements Method.
func (PooledInvestment) Name() string { return "PooledInvestment" }

// Resolve implements Method.
func (v PooledInvestment) Resolve(d *data.Dataset) (*data.Table, []float64) {
	g := buildClaims(d)
	growth := v.G
	if growth == 0 {
		growth = 1.4
	}
	iters := v.Iters
	if iters == 0 {
		iters = 20
	}
	tol := v.Tol
	if tol == 0 {
		tol = 1e-6
	}

	K := d.NumSources()
	trust := make([]float64, K)
	for k := range trust {
		trust[k] = 1
	}
	belief := g.newScores()
	pooled := g.newScores()
	prev := make([]float64, K)

	for it := 0; it < iters; it++ {
		for i, ec := range g.entries {
			var denom float64
			for j, srcs := range ec.claimants {
				var h float64
				for _, k := range srcs {
					if g.claimCount[k] > 0 {
						h += trust[k] / float64(g.claimCount[k])
					}
				}
				pooled[i][j] = h
				denom += math.Pow(h, growth)
			}
			for j := range ec.claimants {
				if denom > 0 {
					belief[i][j] = pooled[i][j] * math.Pow(pooled[i][j], growth) / denom
				} else {
					belief[i][j] = 0
				}
			}
		}
		copy(prev, trust)
		next := make([]float64, K)
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				var total float64
				for _, k := range srcs {
					if g.claimCount[k] > 0 {
						total += prev[k] / float64(g.claimCount[k])
					}
				}
				if total == 0 {
					continue
				}
				for _, k := range srcs {
					if g.claimCount[k] > 0 {
						next[k] += belief[i][j] * (prev[k] / float64(g.claimCount[k])) / total
					}
				}
			}
		}
		_, max := stats.MinMax(next)
		if max > 0 {
			for k := range next {
				next[k] /= max
			}
		} else {
			for k := range next {
				next[k] = 1
			}
		}
		trust = next
		if maxAbsDelta(trust, prev) < tol {
			break
		}
	}
	return g.truthsFromScores(belief), trust
}
