package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
)

// copierScenario builds the canonical dependence trap of Dong et al.'s
// Figure 1: two decent independent sources, one mediocre original
// ("orig"), and nCopies copiers that replicate the original verbatim —
// including its mistakes. The copier block outvotes the independents, so
// majority voting and independence-assuming models follow it; copy
// detection collapses the block to roughly one vote and recovers.
func copierScenario(t *testing.T, seed int64, nObj, nCopies int) (*data.Dataset, *data.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder()
	p := b.MustProperty("fact", data.Categorical)
	cats := make([]int, 8)
	for i := range cats {
		cats[i] = b.CatValue(p, fmt.Sprintf("v%d", i))
	}
	gt := make([]int, nObj)
	origClaims := make([]int, nObj)
	for i := 0; i < nObj; i++ {
		b.Object(fmt.Sprintf("o%03d", i))
		gt[i] = cats[rng.Intn(len(cats))]
		// The original errs 30% of the time; its claim (right or
		// wrong) is what every copier repeats.
		origClaims[i] = gt[i]
		if rng.Float64() < 0.30 {
			alt := cats[rng.Intn(len(cats)-1)]
			if alt >= gt[i] {
				alt++
			}
			origClaims[i] = alt
		}
	}
	indep1 := b.Source("indep1")
	indep2 := b.Source("indep2")
	orig := b.Source("orig")
	for i := 0; i < nObj; i++ {
		for _, src := range []int{indep1, indep2} {
			claim := gt[i]
			if rng.Float64() < 0.15 { // independent sources err less
				alt := cats[rng.Intn(len(cats)-1)]
				if alt >= gt[i] {
					alt++
				}
				claim = alt
			}
			b.ObserveIdx(src, i, p, data.Cat(claim))
		}
		b.ObserveIdx(orig, i, p, data.Cat(origClaims[i]))
	}
	for cpy := 0; cpy < nCopies; cpy++ {
		src := b.Source(fmt.Sprintf("copy%d", cpy))
		for i := 0; i < nObj; i++ {
			claim := origClaims[i]
			if rng.Float64() < 0.02 { // copiers occasionally tweak
				alt := cats[rng.Intn(len(cats)-1)]
				if alt >= claim {
					alt++
				}
				claim = alt
			}
			b.ObserveIdx(src, i, p, data.Cat(claim))
		}
	}
	d := b.Build()
	tb := data.NewTableFor(d)
	for i := 0; i < nObj; i++ {
		tb.SetAt(i, 0, data.Cat(gt[i]))
	}
	return d, tb
}

func TestAccuCopyBeatsAccuSimOnCopiers(t *testing.T) {
	d, gt := copierScenario(t, 1, 400, 3)
	simTruths, _ := AccuSim{}.Resolve(d)
	copyTruths, _ := AccuCopy{}.Resolve(d)
	simErr := eval.Evaluate(d, simTruths, gt).ErrorRate
	copyErr := eval.Evaluate(d, copyTruths, gt).ErrorRate
	// The copier block outvotes the two independents 4-to-2; without
	// dependence handling the error tracks the original's 30%.
	if !(copyErr < simErr) {
		t.Fatalf("AccuCopy error %v should beat AccuSim %v on copier data", copyErr, simErr)
	}
	if copyErr > 0.22 {
		t.Fatalf("AccuCopy error %v still tracks the copier block", copyErr)
	}
	// Voting definitely follows the copiers.
	voteTruths, _ := Voting{}.Resolve(d)
	voteErr := eval.Evaluate(d, voteTruths, gt).ErrorRate
	if !(copyErr < voteErr) {
		t.Fatalf("AccuCopy %v should beat voting %v", copyErr, voteErr)
	}
}

func TestAccuCopyDetectsDependence(t *testing.T) {
	d, _ := copierScenario(t, 2, 300, 2)
	dep := AccuCopy{}.Dependence(d)
	// Sources: 0=indep1, 1=indep2, 2=orig, 3..4=copies.
	// Copier/original pairs must look far more dependent than the
	// independent sources' pairs.
	depCopy := dep[2][3]
	depIndep := dep[0][2]
	if !(depCopy > 0.9) {
		t.Fatalf("copier/original dependence = %v, want > 0.9", depCopy)
	}
	if !(depIndep < 0.5) {
		t.Fatalf("independent-pair dependence = %v, want < 0.5", depIndep)
	}
	// Copies of the same original are mutually dependent too.
	if !(dep[3][4] > 0.9) {
		t.Fatalf("copy/copy dependence = %v", dep[3][4])
	}
	// The two independents must not be flagged.
	if !(dep[0][1] < 0.5) {
		t.Fatalf("independent pair flagged dependent: %v", dep[0][1])
	}
	// Symmetry.
	for s := range dep {
		for t2 := range dep {
			if dep[s][t2] != dep[t2][s] {
				t.Fatal("dependence matrix not symmetric")
			}
		}
	}
}

func TestAccuCopyNoCopiersHarmless(t *testing.T) {
	// On independent-source data AccuCopy should roughly match AccuSim —
	// the detector must not hallucinate dependence and wreck accuracy.
	d, gt, _ := plantedMixed(41)
	simErr := errorRateOf(t, AccuSim{}, d, gt)
	copyErr := errorRateOf(t, AccuCopy{}, d, gt)
	if copyErr > simErr+0.05 {
		t.Fatalf("AccuCopy %v much worse than AccuSim %v on independent data", copyErr, simErr)
	}
	truths, rel := AccuCopy{}.Resolve(d)
	if truths.Count() == 0 {
		t.Fatal("no truths")
	}
	for _, r := range rel {
		if math.IsNaN(r) || r < 0 || r > 1 {
			t.Fatalf("accuracy %v out of range", r)
		}
	}
}

func TestAccuCopyEdgeCases(t *testing.T) {
	// Empty dataset.
	truths, _ := AccuCopy{}.Resolve(data.NewBuilder().Build())
	if truths.Count() != 0 {
		t.Fatal("empty dataset")
	}
	// Single source.
	b := data.NewBuilder()
	b.ObserveCat("only", "o", "c", "v")
	truths, rel := AccuCopy{}.Resolve(b.Build())
	if truths.Count() != 1 || len(rel) != 1 {
		t.Fatal("single source")
	}
	if (AccuCopy{}).Name() != "AccuCopy" {
		t.Fatal("name")
	}
}

func TestAccuCopyDeterministic(t *testing.T) {
	d, _ := copierScenario(t, 3, 150, 3)
	t1, r1 := AccuCopy{}.Resolve(d)
	t2, r2 := AccuCopy{}.Resolve(d)
	for e := 0; e < t1.Len(); e++ {
		v1, ok1 := t1.Get(e)
		v2, ok2 := t2.Get(e)
		if ok1 != ok2 || v1 != v2 {
			t.Fatal("truths not deterministic")
		}
	}
	for k := range r1 {
		if r1[k] != r2[k] {
			t.Fatal("accuracies not deterministic")
		}
	}
}
