package baseline

import (
	"math"
	"sort"

	"github.com/crhkit/crh/internal/data"
)

// AccuCopy adds source-dependence detection to the AccuSim accuracy model
// — the full model of Dong, Berti-Equille & Srivastava (VLDB 2009). The
// CRH paper's comparison explicitly excludes dependence handling ("we do
// not consider source dependency in this paper but leave it for future
// work"); this implementation provides that future work.
//
// The key observation is that copiers share their original's *mistakes*:
// two independent sources agree on a false value only by coincidence
// (probability (1−A₁)(1−A₂)/n), while a copier agrees with whatever its
// original says. Each iteration therefore:
//
//  1. estimates, for every source pair, the posterior probability of
//     dependence from their agreement pattern (shared-true kt,
//     shared-false kf, different kd counts):
//
//     P(Φ|indep) = (A₁A₂)^kt · (q·(1−A₁)(1−A₂))^kf · P_d^kd
//     P(Φ|dep)   = (c·A₂ + (1−c)A₁A₂)^kt · (c·(1−A₂) + (1−c)·q·(1−A₁)(1−A₂))^kf · ((1−c)·P_d)^kd
//     P(dep|Φ)   = α·P(Φ|dep) / (α·P(Φ|dep) + (1−α)·P(Φ|indep))
//
//     q = SameFalseCorr + (1−SameFalseCorr)/n is the probability two
//     *independent* wrong sources land on the same wrong value. Dong et
//     al.'s idealized 1/n makes any apparent false agreement overwhelming
//     copy evidence — which misfires when the interim truth estimate is
//     itself wrong (a pair of honest minority sources then "shares
//     mistakes" on every entry the majority gets wrong). Real-world
//     errors are correlated (common confusions, stale values), so the
//     default SameFalseCorr = 0.85 keeps false agreement only mildly
//     indicative; dependence is then driven by what actually separates
//     copiers from honest cliques — they agree on nearly *everything*
//     (the kd disagreement term), not merely on the same false values.
//
//  2. discounts dependent votes: when tallying a value's vote count, each
//     claimant contributes τ(s)·I(s) with I(s) = Π_{s' counted before s}
//     (1 − c·P(s~s'|Φ)) — a value backed by five copies of one source
//     counts barely more than the original alone;
//
//  3. updates accuracies from the resulting value probabilities, as in
//     AccuSim.
type AccuCopy struct {
	// N is the assumed count of uniformly-likely false values (default
	// 10); C the probability a copier copies a particular value —
	// default 0.95, i.e. near-verbatim copying, which is what makes the
	// disagreement term able to veto honest high-agreement pairs (a pair
	// agreeing on only ~80% of entries cannot be 95%-rate copies); Alpha
	// the prior probability of dependence (default 0.2); SameFalseCorr
	// the correlation of independent sources' errors (default 0.85; see
	// the package comment above — 0 recovers Dong et al.'s idealized 1/n
	// model).
	N, C, Alpha, SameFalseCorr float64
	// Rho weights the similarity adjustment inherited from AccuSim
	// (default 0.5).
	Rho float64
	// InitAccuracy seeds A(s) (default 0.8).
	InitAccuracy float64
	// Iters bounds the rounds (default 15).
	Iters int
	// Tol stops early when accuracies stabilize (default 1e-6).
	Tol float64
}

// Name implements Method.
func (AccuCopy) Name() string { return "AccuCopy" }

// Resolve implements Method. Reliability scores are the accuracies A(s).
func (v AccuCopy) Resolve(d *data.Dataset) (*data.Table, []float64) {
	n := v.N
	if n == 0 {
		n = 10
	}
	c := v.C
	if c == 0 {
		c = 0.95
	}
	alpha := v.Alpha
	if alpha == 0 {
		alpha = 0.2
	}
	sfc := v.SameFalseCorr
	if sfc == 0 {
		sfc = 0.85
	}
	q := sfc + (1-sfc)/n
	rho := v.Rho
	if rho == 0 {
		rho = 0.5
	}
	init := v.InitAccuracy
	if init == 0 {
		init = 0.8
	}
	iters := v.Iters
	if iters == 0 {
		iters = 15
	}
	tol := v.Tol
	if tol == 0 {
		tol = 1e-6
	}

	g := buildClaims(d)
	K := d.NumSources()
	acc := make([]float64, K)
	for k := range acc {
		acc[k] = init
	}
	prob := g.newScores()
	votes := g.newScores()
	// dep[s][t] is the posterior probability that s and t are dependent
	// (symmetric; we do not need the copy direction for discounting).
	dep := make([][]float64, K)
	for k := range dep {
		dep[k] = make([]float64, K)
	}
	prev := make([]float64, K)

	clamp := func(a float64) float64 {
		if a < 0.01 {
			return 0.01
		}
		if a > 0.99 {
			return 0.99
		}
		return a
	}

	// truthOf tracks the current best value index per claim-graph entry
	// for the agreement counting; initialized to unweighted majority.
	truthOf := make([]int, len(g.entries))
	for i, ec := range g.entries {
		best, bestN := 0, -1
		for j := range ec.vals {
			if l := len(ec.claimants[j]); l > bestN {
				best, bestN = j, l
			}
		}
		truthOf[i] = best
	}

	for it := 0; it < iters; it++ {
		// ---- 1. Dependence detection ----
		// Count agreement patterns per source pair over shared entries.
		kt := make([][]int, K) // shared value that matches the truth
		kf := make([][]int, K) // shared value that contradicts the truth
		kd := make([][]int, K) // different values
		for s := 0; s < K; s++ {
			kt[s] = make([]int, K)
			kf[s] = make([]int, K)
			kd[s] = make([]int, K)
		}
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				// Same value: every pair within srcs agrees.
				match := j == truthOf[i]
				for a := 0; a < len(srcs); a++ {
					for b := a + 1; b < len(srcs); b++ {
						if match {
							kt[srcs[a]][srcs[b]]++
						} else {
							kf[srcs[a]][srcs[b]]++
						}
					}
				}
				// Different values: pairs across claimant groups.
				for j2 := j + 1; j2 < len(ec.claimants); j2++ {
					for _, a := range srcs {
						for _, b := range ec.claimants[j2] {
							lo, hi := a, b
							if lo > hi {
								lo, hi = hi, lo
							}
							kd[lo][hi]++
						}
					}
				}
			}
		}
		for s := 0; s < K; s++ {
			for t2 := s + 1; t2 < K; t2++ {
				a1, a2 := clamp(acc[s]), clamp(acc[t2])
				pt := a1 * a2                   // independent same-true
				pf := (1 - a1) * (1 - a2) * q   // independent same-false
				pd := math.Max(1-pt-pf, 1e-9)   // independent different
				dt := c*a2 + (1-c)*pt           // dependent same-true
				df := c*(1-a2) + (1-c)*pf       // dependent same-false
				dd := math.Max((1-c)*pd, 1e-12) // dependent different
				logIndep := float64(kt[s][t2])*math.Log(pt) +
					float64(kf[s][t2])*math.Log(pf) +
					float64(kd[s][t2])*math.Log(pd)
				logDep := float64(kt[s][t2])*math.Log(dt) +
					float64(kf[s][t2])*math.Log(df) +
					float64(kd[s][t2])*math.Log(dd)
				// Posterior with prior α, computed stably in log space.
				m := math.Max(logDep, logIndep)
				pDep := alpha * math.Exp(logDep-m)
				pInd := (1 - alpha) * math.Exp(logIndep-m)
				p := pDep / (pDep + pInd)
				dep[s][t2], dep[t2][s] = p, p
			}
		}

		// ---- 2. Discounted vote counts, similarity, softmax ----
		for i, ec := range g.entries {
			nc := len(ec.claimants)
			for j, srcs := range ec.claimants {
				// Count the most independent (highest-accuracy) voters
				// first so copies discount against originals.
				order := append([]int(nil), srcs...)
				sort.Slice(order, func(x, y int) bool {
					//lint:ignore floatcmp a tolerance here would break the comparator's strict weak ordering
					if acc[order[x]] != acc[order[y]] {
						return acc[order[x]] > acc[order[y]]
					}
					return order[x] < order[y]
				})
				var total float64
				for oi, s := range order {
					a := clamp(acc[s])
					tau := math.Log(n * a / (1 - a))
					ind := 1.0
					for _, s2 := range order[:oi] {
						ind *= 1 - c*dep[s][s2]
					}
					total += tau * ind
				}
				votes[i][j] = total
			}
			// Similarity adjustment and softmax (as AccuSim).
			var max float64 = math.Inf(-1)
			for j := 0; j < nc; j++ {
				adj := votes[i][j]
				for j2 := 0; j2 < nc; j2++ {
					if j2 != j {
						adj += rho * votes[i][j2] * g.similarity(i, j2, j)
					}
				}
				prob[i][j] = adj
				if adj > max {
					max = adj
				}
			}
			var z float64
			for j := 0; j < nc; j++ {
				prob[i][j] = math.Exp(prob[i][j] - max)
				z += prob[i][j]
			}
			best := 0
			for j := 0; j < nc; j++ {
				prob[i][j] /= z
				if prob[i][j] > prob[i][best] {
					best = j
				}
			}
			truthOf[i] = best
		}

		// ---- 3. Accuracy update ----
		copy(prev, acc)
		sum := make([]float64, K)
		cnt := make([]float64, K)
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				for _, k := range srcs {
					sum[k] += prob[i][j]
					cnt[k]++
				}
			}
		}
		for k := 0; k < K; k++ {
			if cnt[k] > 0 {
				acc[k] = sum[k] / cnt[k]
			}
		}
		if maxAbsDelta(acc, prev) < tol {
			break
		}
	}
	return g.truthsFromScores(prob), acc
}

// Dependence returns the first-round pairwise dependence posteriors —
// agreement patterns evaluated against the unweighted majority with
// uniform prior accuracies. This is the detector's cleanest diagnostic
// view (converged accuracies absorb copier consensus into the truth
// estimate and mute the shared-false signal). Exposed for diagnostics and
// tests; runs one detection pass.
func (v AccuCopy) Dependence(d *data.Dataset) [][]float64 {
	g := buildClaims(d)
	K := d.NumSources()
	n := v.N
	if n == 0 {
		n = 10
	}
	c := v.C
	if c == 0 {
		c = 0.95
	}
	alpha := v.Alpha
	if alpha == 0 {
		alpha = 0.2
	}
	sfc := v.SameFalseCorr
	if sfc == 0 {
		sfc = 0.85
	}
	q := sfc + (1-sfc)/n
	init := v.InitAccuracy
	if init == 0 {
		init = 0.8
	}
	acc := make([]float64, K)
	for k := range acc {
		acc[k] = init
	}
	clamp := func(a float64) float64 {
		if a < 0.01 {
			return 0.01
		}
		if a > 0.99 {
			return 0.99
		}
		return a
	}
	// Majority truth per entry is sufficient for diagnostics.
	truthOf := make([]int, len(g.entries))
	for i, ec := range g.entries {
		best, bestN := 0, -1
		for j := range ec.vals {
			if l := len(ec.claimants[j]); l > bestN {
				best, bestN = j, l
			}
		}
		truthOf[i] = best
	}
	dep := make([][]float64, K)
	for k := range dep {
		dep[k] = make([]float64, K)
	}
	kt := make([][]int, K)
	kf := make([][]int, K)
	kd := make([][]int, K)
	for s := 0; s < K; s++ {
		kt[s] = make([]int, K)
		kf[s] = make([]int, K)
		kd[s] = make([]int, K)
	}
	for i, ec := range g.entries {
		for j, srcs := range ec.claimants {
			match := j == truthOf[i]
			for a := 0; a < len(srcs); a++ {
				for b := a + 1; b < len(srcs); b++ {
					if match {
						kt[srcs[a]][srcs[b]]++
					} else {
						kf[srcs[a]][srcs[b]]++
					}
				}
			}
			for j2 := j + 1; j2 < len(ec.claimants); j2++ {
				for _, a := range srcs {
					for _, b := range ec.claimants[j2] {
						lo, hi := a, b
						if lo > hi {
							lo, hi = hi, lo
						}
						kd[lo][hi]++
					}
				}
			}
		}
	}
	for s := 0; s < K; s++ {
		for t2 := s + 1; t2 < K; t2++ {
			a1, a2 := clamp(acc[s]), clamp(acc[t2])
			pt := a1 * a2
			pf := (1 - a1) * (1 - a2) * q
			pd := math.Max(1-pt-pf, 1e-9)
			dt := c*a2 + (1-c)*pt
			df := c*(1-a2) + (1-c)*pf
			dd := math.Max((1-c)*pd, 1e-12)
			logIndep := float64(kt[s][t2])*math.Log(pt) + float64(kf[s][t2])*math.Log(pf) + float64(kd[s][t2])*math.Log(pd)
			logDep := float64(kt[s][t2])*math.Log(dt) + float64(kf[s][t2])*math.Log(df) + float64(kd[s][t2])*math.Log(dd)
			m := math.Max(logDep, logIndep)
			pDep := alpha * math.Exp(logDep-m)
			pInd := (1 - alpha) * math.Exp(logIndep-m)
			p := pDep / (pDep + pInd)
			dep[s][t2], dep[t2][s] = p, p
		}
	}
	return dep
}
