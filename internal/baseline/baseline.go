// Package baseline implements the ten conflict-resolution methods the
// paper compares CRH against (Section 3.1.2), from scratch:
//
//   - Mean, Median — unweighted aggregation of continuous data.
//   - Voting — majority voting on categorical data.
//   - GTM — the Gaussian Truth Model of Zhao & Han, a Bayesian truth
//     discovery model for continuous data.
//   - Investment, PooledInvestment — Pasternack & Roth's trust-investment
//     fact finders.
//   - TwoEstimates, ThreeEstimates — Galland et al.'s mutually recursive
//     truth/error estimators.
//   - TruthFinder — Yin et al.'s pioneering Bayesian-heuristic fact finder.
//   - AccuSim — Dong et al.'s accuracy model with value similarity.
//
// The fact-finding methods treat every distinct observed value of an entry
// as a candidate "fact" — including continuous observations, exactly as the
// paper does when forcing them onto heterogeneous data ("we can enforce
// them to handle data of heterogeneous types by regarding continuous
// observations as facts too"). That forced treatment is what CRH's
// type-aware losses improve on.
package baseline

import (
	"math"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/stats"
)

// Method is a conflict-resolution algorithm: it maps a multi-source
// dataset to a truth table, plus per-source reliability scores when the
// method estimates them (nil otherwise). Methods are unsupervised — they
// never see ground truth.
type Method interface {
	// Name returns the method's registry name, e.g. "Voting" or
	// "TruthFinder" — the string accepted by ByName and the CLIs.
	Name() string
	// Resolve maps the dataset to a truth table plus per-source
	// reliability scores (nil when the method estimates none).
	Resolve(d *data.Dataset) (*data.Table, []float64)
}

// claimGraph is the shared fact-finder representation: per entry, the
// distinct claimed values and which sources claim each.
type claimGraph struct {
	d       *data.Dataset
	entries []entryClaims
	// claimCount[k] is the number of claims source k makes (equals its
	// observation count).
	claimCount []int
	// entryStd[idx] is the observation spread for continuous entries
	// (parallel to entries), used for value similarity.
	entryStd []float64
}

type entryClaims struct {
	e    int
	vals []data.Value
	// claimants[j] lists the sources claiming vals[j].
	claimants [][]int
}

// buildClaims constructs the claim graph, skipping entries nobody observed.
func buildClaims(d *data.Dataset) *claimGraph {
	g := &claimGraph{d: d, claimCount: make([]int, d.NumSources())}
	var vals []float64
	for e := 0; e < d.NumEntries(); e++ {
		p := d.Prop(d.EntryProp(e))
		var ec entryClaims
		ec.e = e
		idx := make(map[data.Value]int, 4)
		d.ForEntry(e, func(k int, v data.Value) {
			// Canonicalize: only the type-relevant payload identifies
			// a fact.
			if p.Type == data.Categorical {
				v = data.Cat(int(v.C))
			} else {
				v = data.Float(v.F)
			}
			j, ok := idx[v]
			if !ok {
				j = len(ec.vals)
				idx[v] = j
				ec.vals = append(ec.vals, v)
				ec.claimants = append(ec.claimants, nil)
			}
			ec.claimants[j] = append(ec.claimants[j], k)
			g.claimCount[k]++
		})
		if len(ec.vals) == 0 {
			continue
		}
		g.entries = append(g.entries, ec)
		std := 0.0
		if p.Type == data.Continuous {
			vals = vals[:0]
			d.ForEntry(e, func(_ int, v data.Value) { vals = append(vals, v.F) })
			std = stats.Std(vals)
		}
		g.entryStd = append(g.entryStd, std)
	}
	return g
}

// similarity returns sim(vals[a], vals[b]) ∈ [0, 1] for two candidate
// facts of entry idx: exp(−|Δ|/std) for continuous values (1 at equality,
// decaying with normalized distance) and 0 for distinct categorical values.
// Used by TruthFinder and AccuSim to let close continuous claims support
// each other.
func (g *claimGraph) similarity(idx, a, b int) float64 {
	p := g.d.Prop(g.d.EntryProp(g.entries[idx].e))
	if p.Type == data.Categorical {
		if g.entries[idx].vals[a].C == g.entries[idx].vals[b].C {
			return 1
		}
		return 0
	}
	std := g.entryStd[idx]
	if std < 1e-12 {
		std = 1
	}
	return math.Exp(-math.Abs(g.entries[idx].vals[a].F-g.entries[idx].vals[b].F) / std)
}

// truthsFromScores assembles a truth table choosing each entry's
// highest-scoring candidate (ties toward the earliest candidate, which is
// the first-observed and thus deterministic).
func (g *claimGraph) truthsFromScores(score [][]float64) *data.Table {
	t := data.NewTableFor(g.d)
	for i, ec := range g.entries {
		best := stats.ArgMax(score[i])
		if best >= 0 {
			t.Set(ec.e, ec.vals[best])
		}
	}
	return t
}

// newScores allocates a per-entry per-candidate score matrix.
func (g *claimGraph) newScores() [][]float64 {
	s := make([][]float64, len(g.entries))
	for i := range g.entries {
		s[i] = make([]float64, len(g.entries[i].vals))
	}
	return s
}

// maxAbsDelta returns the largest absolute difference between two source
// score vectors — the convergence measure shared by the iterative methods.
func maxAbsDelta(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// All returns the complete baseline suite in the paper's Table 2 order:
// Mean, Median, GTM, Voting, Investment, PooledInvestment, 2-Estimates,
// 3-Estimates, TruthFinder, AccuSim — each with its default parameters.
func All() []Method {
	return []Method{
		Mean{}, Median{}, GTM{}, Voting{},
		Investment{}, PooledInvestment{},
		TwoEstimates{}, ThreeEstimates{},
		TruthFinder{}, AccuSim{},
	}
}

// registered returns every method addressable by name: the Table 2 suite
// plus the dependence-aware AccuCopy extension. This is the single
// registry the CLIs and the crhd server share.
func registered() []Method {
	return append(All(), AccuCopy{})
}

// Names returns the names of every registered method, in registry order.
func Names() []string {
	ms := registered()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return names
}

// ByName returns a fresh instance of the registered method with the given
// name (as reported by Names), or false when no such method exists.
func ByName(name string) (Method, bool) {
	for _, m := range registered() {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}
