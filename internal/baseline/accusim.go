package baseline

import (
	"math"

	"github.com/crhkit/crh/internal/data"
)

// AccuSim is the accuracy-with-similarity model of Dong, Berti-Equille &
// Srivastava ("Integrating conflicting data: the role of source
// dependence", VLDB 2009) — the Accu Bayesian model plus the similarity
// vote adjustment, without the source-dependence detection (the paper's
// comparison likewise excludes dependence handling). Each source has an
// accuracy A(s); a value's vote count pools its claimants' accuracy
// scores, borrows from similar values (which also implements the
// complement vote of 2-Estimates for dissimilar ones), and value
// probabilities follow a softmax over the entry's candidates:
//
//	τ(s)   = ln( n·A(s) / (1 − A(s)) )            (accuracy score)
//	C(v)   = Σ_{s claims v} τ(s)                   (vote count)
//	C*(v)  = C(v) + ρ · Σ_{v'≠v} C(v')·sim(v', v)  (similarity adjustment)
//	P(v|e) = e^{C*(v)} / Σ_{v' ∈ e} e^{C*(v')}
//	A(s)   = avg_{v ∈ claims(s)} P(v | entry(v))
//
// n is the assumed number of false values per entry. Defaults: n = 10,
// ρ = 0.5, initial accuracy 0.8.
type AccuSim struct {
	// N is the assumed count of uniformly-likely false values (default
	// 10).
	N float64
	// Rho weights the similarity adjustment (default 0.5).
	Rho float64
	// InitAccuracy seeds A(s) (default 0.8).
	InitAccuracy float64
	// Iters bounds the rounds (default 20).
	Iters int
	// Tol stops early when accuracies stabilize (default 1e-6).
	Tol float64
}

// Name implements Method.
func (AccuSim) Name() string { return "AccuSim" }

// Resolve implements Method. Reliability scores are the accuracies A(s).
func (v AccuSim) Resolve(d *data.Dataset) (*data.Table, []float64) {
	n := v.N
	if n == 0 {
		n = 10
	}
	rho := v.Rho
	if rho == 0 {
		rho = 0.5
	}
	init := v.InitAccuracy
	if init == 0 {
		init = 0.8
	}
	iters := v.Iters
	if iters == 0 {
		iters = 20
	}
	tol := v.Tol
	if tol == 0 {
		tol = 1e-6
	}

	g := buildClaims(d)
	K := d.NumSources()
	acc := make([]float64, K)
	for k := range acc {
		acc[k] = init
	}
	prob := g.newScores()
	votes := g.newScores()
	prev := make([]float64, K)

	clamp := func(a float64) float64 {
		if a < 0.01 {
			return 0.01
		}
		if a > 0.99 {
			return 0.99
		}
		return a
	}

	for it := 0; it < iters; it++ {
		// Vote counts from accuracies.
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				var c float64
				for _, k := range srcs {
					a := clamp(acc[k])
					c += math.Log(n * a / (1 - a))
				}
				votes[i][j] = c
			}
		}
		// Similarity adjustment and softmax.
		for i, ec := range g.entries {
			nc := len(ec.claimants)
			var max float64 = math.Inf(-1)
			for j := 0; j < nc; j++ {
				adj := votes[i][j]
				for j2 := 0; j2 < nc; j2++ {
					if j2 == j {
						continue
					}
					adj += rho * votes[i][j2] * g.similarity(i, j2, j)
				}
				prob[i][j] = adj
				if adj > max {
					max = adj
				}
			}
			var z float64
			for j := 0; j < nc; j++ {
				prob[i][j] = math.Exp(prob[i][j] - max)
				z += prob[i][j]
			}
			for j := 0; j < nc; j++ {
				prob[i][j] /= z
			}
		}
		// Accuracy update.
		copy(prev, acc)
		sum := make([]float64, K)
		cnt := make([]float64, K)
		for i, ec := range g.entries {
			for j, srcs := range ec.claimants {
				for _, k := range srcs {
					sum[k] += prob[i][j]
					cnt[k]++
				}
			}
		}
		for k := 0; k < K; k++ {
			if cnt[k] > 0 {
				acc[k] = sum[k] / cnt[k]
			}
		}
		if maxAbsDelta(acc, prev) < tol {
			break
		}
	}
	return g.truthsFromScores(prob), acc
}
