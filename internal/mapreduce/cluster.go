package mapreduce

import "time"

// ClusterModel estimates the wall-clock time a job sequence would take on
// a Hadoop-style cluster. The paper's scalability numbers (Table 6,
// Figures 7-8) were measured on a Dell Hadoop cluster we do not have; this
// model substitutes a standard analytical cost decomposition:
//
//	T(job) = JobSetup                                  (job launch, scheduling)
//	       + waves(mapTasks/MapSlots) · TaskLaunch     (map container starts)
//	       + inputRecords · PerMapRecord / MapSlots    (parallel map scan)
//	       + shuffledPairs · PerShufflePair            (sort + network copy)
//	       + FetchOverhead · mapTasks · reducers       (per map-output fetch:
//	                                                    more reducers = more,
//	                                                    smaller segment fetches)
//	       + ReducerLaunch                             (reducers start in parallel)
//	       + (shuffledPairs / reducers) · PerReduceRecord  (slowest reduce wave)
//
// with mapTasks = ceil(inputRecords / RecordsPerMapTask), Hadoop's
// input-split rule. The constants are calibrated against Table 6: ten job
// launches per fusion (5 iterations × 2 jobs) and the measured 94 s floor
// at 10⁴ observations pin JobSetup; the 10⁸ and 4×10⁸ points pin the
// marginal costs. The model reproduces the paper's shapes — a flat
// overhead-dominated region followed by linear growth in observations
// (Table 6, Fig 7), and a non-monotone reducer sweep (Fig 8): the
// fetch-overhead term grows with the reducer count while the reduce wave
// shrinks with it, putting the optimum near 10 reducers at the paper's
// 4×10⁸-observation workload.
type ClusterModel struct {
	// JobSetup is charged once per MapReduce job launch.
	JobSetup time.Duration
	// TaskLaunch is charged per wave of map tasks.
	TaskLaunch time.Duration
	// ReducerLaunch is charged once per job (reducer containers start
	// concurrently).
	ReducerLaunch time.Duration
	// FetchOverhead is charged per (map task, reducer) pair — the
	// shuffle's segment-fetch cost that makes very high reducer counts
	// counterproductive.
	FetchOverhead time.Duration
	// PerMapRecord, PerShufflePair and PerReduceRecord are marginal
	// per-record costs.
	PerMapRecord    time.Duration
	PerShufflePair  time.Duration
	PerReduceRecord time.Duration
	// MapSlots is the number of concurrent map tasks the cluster runs;
	// RecordsPerMapTask is the input-split size in records.
	MapSlots          int
	RecordsPerMapTask int
}

// DefaultCluster returns the model calibrated against the paper's cluster
// (Intel Xeon E5-2403, 4×1.80 GHz, 48 GB; Table 6).
func DefaultCluster() ClusterModel {
	return ClusterModel{
		JobSetup:          6 * time.Second,
		TaskLaunch:        400 * time.Millisecond,
		ReducerLaunch:     2 * time.Second,
		FetchOverhead:     50 * time.Millisecond,
		PerMapRecord:      200 * time.Nanosecond,
		PerShufflePair:    250 * time.Nanosecond,
		PerReduceRecord:   3 * time.Microsecond,
		MapSlots:          8,
		RecordsPerMapTask: 5_000_000,
	}
}

// EstimateJob returns the modeled wall-clock time for one executed job.
func (m ClusterModel) EstimateJob(s *Stats) time.Duration {
	slots := m.MapSlots
	if slots <= 0 {
		slots = 8
	}
	split := m.RecordsPerMapTask
	if split <= 0 {
		split = 5_000_000
	}
	mapTasks := (s.InputRecords + split - 1) / split
	if mapTasks < 1 {
		mapTasks = 1
	}
	waves := (mapTasks + slots - 1) / slots
	reducers := s.Reducers
	if reducers <= 0 {
		reducers = 1
	}
	t := m.JobSetup
	t += time.Duration(waves) * m.TaskLaunch
	t += time.Duration(s.InputRecords) * m.PerMapRecord / time.Duration(slots)
	t += time.Duration(s.ShuffledPairs) * m.PerShufflePair
	t += time.Duration(mapTasks*reducers) * m.FetchOverhead
	t += m.ReducerLaunch
	// The reduce phase finishes with its slowest wave; with a balanced
	// partition that is shuffledPairs/reducers records.
	perReducer := (s.ShuffledPairs + reducers - 1) / reducers
	t += time.Duration(perReducer) * m.PerReduceRecord
	return t
}

// Estimate sums the modeled time of a job sequence — e.g., all truth and
// weight jobs of one parallel CRH fusion.
func (m ClusterModel) Estimate(jobs []*Stats) time.Duration {
	var t time.Duration
	for _, s := range jobs {
		t += m.EstimateJob(s)
	}
	return t
}
