package mapreduce

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
	"github.com/crhkit/crh/internal/synth"
)

// wordCount is the canonical engine smoke test.
func TestEngineWordCount(t *testing.T) {
	input := []Record{"a b a", "c a", "b"}
	job := Job{
		Name: "wordcount",
		Map: func(rec Record, emit func(KV)) {
			for _, w := range strings.Fields(rec.(string)) {
				emit(KV{Key: w, Value: 1})
			}
		},
		Combine: func(_ string, values []any) []any {
			n := 0
			for _, v := range values {
				n += v.(int)
			}
			return []any{n}
		},
		Reduce: func(key string, values []any, emit func(KV)) {
			n := 0
			for _, v := range values {
				n += v.(int)
			}
			emit(KV{Key: key, Value: n})
		},
		NumMappers:  2,
		NumReducers: 3,
	}
	out, st, err := Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, kv := range out {
		counts[kv.Key] = kv.Value.(int)
	}
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if st.InputRecords != 3 || st.MapOutput != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// The combiner must shrink the shuffle: 6 map outputs but at most
	// one pair per (mapper, key).
	if st.ShuffledPairs >= st.MapOutput {
		t.Fatalf("combiner did not reduce shuffle: %d >= %d", st.ShuffledPairs, st.MapOutput)
	}
	if st.ReduceKeys != 3 || st.OutputPairs != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineRequiresMapAndReduce(t *testing.T) {
	if _, _, err := Run(Job{}, nil); err == nil {
		t.Fatal("expected error for empty job")
	}
}

func TestEngineEmptyInput(t *testing.T) {
	job := Job{
		Map:    func(rec Record, emit func(KV)) {},
		Reduce: func(key string, values []any, emit func(KV)) {},
	}
	out, st, err := Run(job, nil)
	if err != nil || len(out) != 0 || st.InputRecords != 0 {
		t.Fatalf("empty input: out=%v st=%+v err=%v", out, st, err)
	}
}

func TestEngineDeterministicOrder(t *testing.T) {
	var input []Record
	for i := 0; i < 500; i++ {
		input = append(input, i)
	}
	job := Job{
		Map: func(rec Record, emit func(KV)) {
			i := rec.(int)
			emit(KV{Key: "k" + strconv.Itoa(i%17), Value: i})
		},
		Reduce: func(key string, values []any, emit func(KV)) {
			sum := 0
			for _, v := range values {
				sum += v.(int)
			}
			emit(KV{Key: key, Value: sum})
		},
		NumMappers:  7,
		NumReducers: 5,
	}
	out1, _, err := Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != len(out2) {
		t.Fatal("lengths differ")
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("output order differs at %d: %v vs %v", i, out1[i], out2[i])
		}
	}
}

// TestEngineMatchesSequential property-checks the engine against a
// sequential reference for a summing job.
func TestEngineMatchesSequential(t *testing.T) {
	var input []Record
	for i := 0; i < 1000; i++ {
		input = append(input, i)
	}
	want := map[string]int{}
	for i := 0; i < 1000; i++ {
		want["k"+strconv.Itoa(i%13)] += i
	}
	for _, mappers := range []int{1, 3, 16} {
		for _, reducers := range []int{1, 4, 25} {
			job := Job{
				Map: func(rec Record, emit func(KV)) {
					i := rec.(int)
					emit(KV{Key: "k" + strconv.Itoa(i%13), Value: i})
				},
				Combine: func(_ string, values []any) []any {
					sum := 0
					for _, v := range values {
						sum += v.(int)
					}
					return []any{sum}
				},
				Reduce: func(key string, values []any, emit func(KV)) {
					sum := 0
					for _, v := range values {
						sum += v.(int)
					}
					emit(KV{Key: key, Value: sum})
				},
				NumMappers:  mappers,
				NumReducers: reducers,
			}
			out, _, err := Run(job, input)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, kv := range out {
				got[kv.Key] = kv.Value.(int)
			}
			if len(got) != len(want) {
				t.Fatalf("m=%d r=%d: %d keys, want %d", mappers, reducers, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("m=%d r=%d key %s: %d, want %d", mappers, reducers, k, got[k], v)
				}
			}
		}
	}
}

func TestTuples(t *testing.T) {
	b := data.NewBuilder()
	b.ObserveFloat("s1", "o", "x", 1)
	b.ObserveFloat("s2", "o", "x", 2)
	b.ObserveCat("s1", "o", "c", "v")
	d := b.Build()
	recs := Tuples(d)
	if len(recs) != 3 {
		t.Fatalf("%d tuples, want 3", len(recs))
	}
	for _, r := range recs {
		tp := r.(Tuple)
		if !d.HasEntry(int(tp.SID), int(tp.EID)) {
			t.Fatal("tuple references missing observation")
		}
	}
}

// TestParallelMatchesSerial is the key equivalence test: parallel CRH must
// produce the same truths as the serial solver on mixed-type data.
func TestParallelMatchesSerial(t *testing.T) {
	d, _ := synth.Weather(synth.WeatherConfig{Seed: 51, Cities: 6, Days: 10})
	serial, err := core.Run(d, core.Config{MaxIters: 6, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(d, ParallelConfig{Core: core.Config{MaxIters: 7, Tol: -1}, Reducers: 5})
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for e := 0; e < d.NumEntries(); e++ {
		sv, sok := serial.Truths.Get(e)
		pv, pok := par.Truths.Get(e)
		if sok != pok {
			t.Fatalf("entry %d presence differs", e)
		}
		if !sok {
			continue
		}
		checked++
		if d.Prop(d.EntryProp(e)).Type == data.Categorical {
			if sv.C != pv.C {
				t.Fatalf("entry %d categorical truth differs: %d vs %d", e, sv.C, pv.C)
			}
		} else if math.Abs(sv.F-pv.F) > 1e-9 {
			t.Fatalf("entry %d continuous truth differs: %v vs %v", e, sv.F, pv.F)
		}
	}
	if checked == 0 {
		t.Fatal("nothing compared")
	}
	for k := range serial.Weights {
		if math.Abs(serial.Weights[k]-par.Weights[k]) > 1e-6 {
			t.Fatalf("weight %d differs: %v vs %v", k, serial.Weights[k], par.Weights[k])
		}
	}
	// Two jobs per iteration.
	if len(par.Jobs) != 2*par.Iterations && len(par.Jobs) != 2*par.Iterations-1 {
		t.Fatalf("%d jobs for %d iterations", len(par.Jobs), par.Iterations)
	}
	if par.SimulatedTime <= 0 || par.WallTime <= 0 {
		t.Fatal("times not recorded")
	}
}

func TestParallelQuality(t *testing.T) {
	d, gt := synth.Adult(synth.UCIConfig{Seed: 52, Rows: 300})
	par, err := RunParallel(d, ParallelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := eval.Evaluate(d, par.Truths, gt)
	if m.ErrorRate > 0.05 {
		t.Fatalf("parallel CRH error rate = %v on easy data", m.ErrorRate)
	}
	if m.MNAD > 0.4 {
		t.Fatalf("parallel CRH MNAD = %v", m.MNAD)
	}
}

func TestParallelRejectsSquaredProb(t *testing.T) {
	d, _ := synth.Adult(synth.UCIConfig{Seed: 53, Rows: 10})
	_, err := RunParallel(d, ParallelConfig{Core: core.Config{CategoricalLoss: loss.SquaredProb{}}})
	if err == nil {
		t.Fatal("expected rejection of probabilistic loss")
	}
}

func TestParallelEmptyDataset(t *testing.T) {
	if _, err := RunParallel(data.NewBuilder().Build(), ParallelConfig{}); err != core.ErrEmptyDataset {
		t.Fatalf("err = %v", err)
	}
}

func TestKeyCodecs(t *testing.T) {
	for _, e := range []int{0, 5, 999999999999} {
		if got := parseEntryKey(entryKey(e)); got != e {
			t.Fatalf("entry key round trip: %d -> %d", e, got)
		}
	}
	for _, kc := range [][2]int{{0, 0}, {54, 15}, {999999, 999999}} {
		k, m := parseSrcPropKey(srcPropKey(kc[0], kc[1]))
		if k != kc[0] || m != kc[1] {
			t.Fatalf("srcProp key round trip: %v -> %d,%d", kc, k, m)
		}
	}
	// Fixed-width keys sort numerically.
	if !(entryKey(2) < entryKey(10)) {
		t.Fatal("entry keys must sort numerically")
	}
}

func TestClusterModelShapes(t *testing.T) {
	model := DefaultCluster()
	// Monotone in observations.
	small := &Stats{InputRecords: 1e4, ShuffledPairs: 1e4, Mappers: 8, Reducers: 10}
	big := &Stats{InputRecords: 1e7, ShuffledPairs: 1e7, Mappers: 8, Reducers: 10}
	ts, tb := model.EstimateJob(small), model.EstimateJob(big)
	if !(tb > ts) {
		t.Fatal("estimate not monotone in input size")
	}
	// Overhead floor: tiny jobs still cost at least the setup.
	if ts < model.JobSetup {
		t.Fatal("estimate below setup floor")
	}
	// Reducer sweep at a fixed large workload must be non-monotone with
	// an interior optimum (Figure 8's shape): few reducers serialize the
	// reduce phase, many reducers pay launch overhead.
	cost := func(r int) float64 {
		s := &Stats{InputRecords: 4e8, ShuffledPairs: 4e7, Mappers: 8, Reducers: r}
		return model.EstimateJob(s).Seconds()
	}
	c2, c10, c25 := cost(2), cost(10), cost(25)
	if !(c10 < c2) {
		t.Fatalf("10 reducers (%v) should beat 2 (%v)", c10, c2)
	}
	if !(c10 < c25) {
		t.Fatalf("10 reducers (%v) should beat 25 (%v)", c10, c25)
	}
}

// TestCombinerEquivalence: for an associative aggregation, running with
// and without the combiner must produce identical reducer output — the
// combiner only moves work, never changes results.
func TestCombinerEquivalence(t *testing.T) {
	var input []Record
	for i := 0; i < 800; i++ {
		input = append(input, i)
	}
	mapFn := func(rec Record, emit func(KV)) {
		i := rec.(int)
		emit(KV{Key: "k" + strconv.Itoa(i%11), Value: i})
	}
	reduceFn := func(key string, values []any, emit func(KV)) {
		sum := 0
		for _, v := range values {
			sum += v.(int)
		}
		emit(KV{Key: key, Value: sum})
	}
	combineFn := func(_ string, values []any) []any {
		sum := 0
		for _, v := range values {
			sum += v.(int)
		}
		return []any{sum}
	}
	plain, stPlain, err := Run(Job{Map: mapFn, Reduce: reduceFn, NumMappers: 6, NumReducers: 3}, input)
	if err != nil {
		t.Fatal(err)
	}
	combined, stComb, err := Run(Job{Map: mapFn, Combine: combineFn, Reduce: reduceFn, NumMappers: 6, NumReducers: 3}, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(combined) {
		t.Fatal("output sizes differ")
	}
	for i := range plain {
		if plain[i] != combined[i] {
			t.Fatalf("output %d differs: %v vs %v", i, plain[i], combined[i])
		}
	}
	if !(stComb.ShuffledPairs < stPlain.ShuffledPairs) {
		t.Fatalf("combiner did not shrink the shuffle: %d vs %d", stComb.ShuffledPairs, stPlain.ShuffledPairs)
	}
}

func TestClusterEstimateSums(t *testing.T) {
	model := DefaultCluster()
	a := &Stats{InputRecords: 1000, ShuffledPairs: 1000, Mappers: 2, Reducers: 4}
	b := &Stats{InputRecords: 5000, ShuffledPairs: 100, Mappers: 2, Reducers: 4}
	if model.Estimate([]*Stats{a, b}) != model.EstimateJob(a)+model.EstimateJob(b) {
		t.Fatal("Estimate must sum job estimates")
	}
	// Zero-value guards.
	zero := ClusterModel{}
	if d := zero.EstimateJob(&Stats{InputRecords: 10}); d < 0 {
		t.Fatal("zero model produced negative duration")
	}
}

// TestParallelWithPropertyGroupsRejected documents that grouped weights
// are a batch-solver feature: the MapReduce weight job keys by
// (source, property) and the driver combines globally.
func TestParallelRunsWithCATD(t *testing.T) {
	// CATD is a plain Scheme from the driver's perspective (counts are
	// not routed through the MapReduce path), so the fusion must still
	// work and produce sane weights.
	d, _ := synth.Adult(synth.UCIConfig{Seed: 60, Rows: 100})
	res, err := RunParallel(d, ParallelConfig{Core: core.Config{Scheme: reg.CATD{}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Weights {
		if math.IsNaN(w) || w < 0 {
			t.Fatalf("bad weight %v", w)
		}
	}
}
