// Package mapreduce provides the substrate for Parallel CRH (Section 2.7):
// a from-scratch, in-process MapReduce engine with mappers, combiners, a
// hash-partitioned sorted shuffle and reducers, plus a calibrated cluster
// cost model standing in for the paper's Hadoop deployment, and the
// parallel CRH driver built on top of them.
//
// The engine executes map and reduce tasks on goroutine pools and is fully
// deterministic: reducer output is ordered by (reducer, key), and the
// values delivered to a reducer preserve mapper-shard order.
package mapreduce

import (
	"errors"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
)

// KV is a key/value pair flowing between stages.
type KV struct {
	Key   string
	Value any
}

// Record is one unit of job input.
type Record = any

// Job describes one MapReduce execution.
type Job struct {
	// Name labels the job in stats and errors.
	Name string
	// Map is invoked once per input record and may emit any number of
	// pairs. Required.
	Map func(rec Record, emit func(KV))
	// Combine optionally pre-aggregates the values of one key within a
	// single mapper before the shuffle ("quite similar to the Reducer...
	// just part of the partial error pairs within each Mapper",
	// Section 2.7.3). It must be associative and produce values the
	// Reduce function accepts.
	Combine func(key string, values []any) []any
	// Reduce is invoked once per key with all of the key's values and
	// may emit any number of output pairs. Required.
	Reduce func(key string, values []any, emit func(KV))

	// NumMappers and NumReducers size the task pools; zero selects
	// GOMAXPROCS mappers and 4 reducers.
	NumMappers  int
	NumReducers int
}

// Stats counts the work a job performed; the cluster cost model consumes
// these to estimate wall-clock time on a real deployment.
type Stats struct {
	Name          string
	InputRecords  int
	MapOutput     int // pairs emitted by mappers
	ShuffledPairs int // pairs crossing the shuffle (post-combine)
	ReduceKeys    int
	OutputPairs   int
	Mappers       int
	Reducers      int
}

// Run executes the job over the input and returns the reducer output
// ordered by (reducer index, key). It is deterministic for a fixed job
// and input.
func Run(job Job, input []Record) ([]KV, *Stats, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, nil, errors.New("mapreduce: job needs Map and Reduce")
	}
	nm := job.NumMappers
	if nm <= 0 {
		nm = runtime.GOMAXPROCS(0)
	}
	if nm > len(input) && len(input) > 0 {
		nm = len(input)
	}
	if nm == 0 {
		nm = 1
	}
	nr := job.NumReducers
	if nr <= 0 {
		nr = 4
	}

	stats := &Stats{Name: job.Name, InputRecords: len(input), Mappers: nm, Reducers: nr}

	// Map phase: each mapper owns a contiguous shard and groups its
	// emissions locally per (reducer, key); the combiner then collapses
	// each local group, exactly like Hadoop's map-side combine.
	type localGroups = map[string][]any
	perMapper := make([][]localGroups, nm) // [mapper][reducer] -> key -> values
	mapEmitted := make([]int, nm)
	shuffled := make([]int, nm)

	var wg sync.WaitGroup
	shard := (len(input) + nm - 1) / nm
	for mi := 0; mi < nm; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			groups := make([]localGroups, nr)
			for r := range groups {
				groups[r] = make(localGroups)
			}
			lo := mi * shard
			hi := lo + shard
			if hi > len(input) {
				hi = len(input)
			}
			emit := func(kv KV) {
				r := partition(kv.Key, nr)
				groups[r][kv.Key] = append(groups[r][kv.Key], kv.Value)
				mapEmitted[mi]++
			}
			for _, rec := range input[lo:hi] {
				job.Map(rec, emit)
			}
			if job.Combine != nil {
				for r := range groups {
					for k, vs := range groups[r] {
						groups[r][k] = job.Combine(k, vs)
					}
				}
			}
			for r := range groups {
				for _, vs := range groups[r] {
					shuffled[mi] += len(vs)
				}
			}
			perMapper[mi] = groups
		}(mi)
	}
	wg.Wait()
	for mi := 0; mi < nm; mi++ {
		stats.MapOutput += mapEmitted[mi]
		stats.ShuffledPairs += shuffled[mi]
	}

	// Shuffle: merge the mappers' local groups per reducer, preserving
	// mapper order so value order is deterministic, then sort keys
	// (Hadoop sorts pairs before they reach reducers).
	merged := make([]map[string][]any, nr)
	keys := make([][]string, nr)
	for r := 0; r < nr; r++ {
		merged[r] = make(map[string][]any)
		for mi := 0; mi < nm; mi++ {
			for k, vs := range perMapper[mi][r] {
				merged[r][k] = append(merged[r][k], vs...)
			}
		}
		ks := make([]string, 0, len(merged[r]))
		for k := range merged[r] {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		keys[r] = ks
		stats.ReduceKeys += len(ks)
	}

	// Reduce phase: one goroutine per reducer, each emitting into its
	// own ordered buffer.
	outputs := make([][]KV, nr)
	for r := 0; r < nr; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var out []KV
			emit := func(kv KV) { out = append(out, kv) }
			for _, k := range keys[r] {
				job.Reduce(k, merged[r][k], emit)
			}
			outputs[r] = out
		}(r)
	}
	wg.Wait()

	var result []KV
	for r := 0; r < nr; r++ {
		result = append(result, outputs[r]...)
		stats.OutputPairs += len(outputs[r])
	}
	return result, stats, nil
}

// partition assigns a key to a reducer by FNV-1a hash, Hadoop's default
// strategy modulo the hash function.
func partition(key string, nr int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nr))
}
