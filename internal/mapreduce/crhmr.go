package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/loss"
	"github.com/crhkit/crh/internal/reg"
	"github.com/crhkit/crh/internal/stats"
)

// Tuple is the parallel CRH input format of Section 2.7.1: "a tuple of
// three elements: the ID of the entry (eID), the information from a
// particular source about this entry (v), and the ID of this particular
// source (sID)".
type Tuple struct {
	EID int32
	SID int32
	V   data.Value
}

// Tuples flattens a dataset into the tuple stream parallel CRH consumes.
func Tuples(d *data.Dataset) []Record {
	recs := make([]Record, 0, d.NumObservations())
	for e := 0; e < d.NumEntries(); e++ {
		d.ForEntry(e, func(k int, v data.Value) {
			recs = append(recs, Tuple{EID: int32(e), SID: int32(k), V: v})
		})
	}
	return recs
}

// ParallelConfig controls a parallel CRH fusion.
type ParallelConfig struct {
	// Core supplies the loss functions, weight scheme, normalization
	// flags and iteration bounds shared with serial CRH. Probabilistic
	// categorical losses are not supported in the MapReduce formulation
	// (their per-entry distributions do not fit the per-tuple mapper);
	// the paper's defaults (0-1 loss, weighted median) are.
	Core core.Config
	// Mappers and Reducers size the two jobs' task pools. When zero they
	// follow Core.Workers (the solver-wide worker budget), falling back
	// to the engine defaults (GOMAXPROCS mappers, 4 reducers) when that
	// is unset too, so one knob sizes the whole per-partition solve.
	Mappers, Reducers int
	// Model estimates what the executed job sequence would cost on a
	// real cluster; nil selects DefaultCluster.
	Model *ClusterModel
	// DisableEarlyStop forces exactly Core.MaxIters iterations even if
	// the truths reach a fixed point sooner — useful when comparing
	// runtimes across workloads, where a variable job count would
	// confound the measurement.
	DisableEarlyStop bool
}

// ParallelResult is the outcome of a parallel fusion.
type ParallelResult struct {
	Truths     *data.Table
	Weights    []float64
	Iterations int
	Converged  bool
	// Jobs holds the engine stats of every executed MapReduce job, in
	// order (truth, weight, truth, weight, ...).
	Jobs []*Stats
	// WallTime is the measured in-process execution time;
	// SimulatedTime is the cluster model's estimate for the same job
	// sequence.
	WallTime      time.Duration
	SimulatedTime time.Duration
}

// truthOut is the value the truth-computation reducer writes to the shared
// truth file: the entry's truth plus the spread needed to normalize
// continuous deviations in the following weight job.
type truthOut struct {
	v   data.Value
	std float64
}

// errPair is the partial error the weight-assignment mapper emits and the
// combiner/reducer aggregate.
type errPair struct {
	sum   float64
	count int
}

// RunParallel executes CRH as iterated MapReduce jobs over d's tuples
// (Section 2.7): per iteration one truth-computation job keyed by entry ID
// and one weight-assignment job keyed by source ID (with a combiner),
// coordinated by a wrapper that maintains the shared weight and truth
// state (the "external files" of Sections 2.7.2-2.7.3) until the truths
// stop changing or Core.MaxIters is reached.
//
// For the paper's default losses the fusion is step-for-step equivalent to
// the serial solver and produces identical truths.
func RunParallel(d *data.Dataset, cfg ParallelConfig) (*ParallelResult, error) {
	if d.NumSources() == 0 || d.NumEntries() == 0 {
		return nil, core.ErrEmptyDataset
	}
	if _, ok := cfg.Core.CategoricalLoss.(loss.SquaredProb); ok {
		return nil, errors.New("mapreduce: probabilistic categorical loss is not supported in parallel CRH")
	}
	ccfg := cfg.Core
	if ccfg.ContinuousLoss == nil {
		ccfg.ContinuousLoss = loss.NormalizedAbsolute{}
	}
	if ccfg.CategoricalLoss == nil {
		ccfg.CategoricalLoss = loss.ZeroOne{}
	}
	if ccfg.Scheme == nil {
		ccfg.Scheme = reg.ExpMax{}
	}
	if ccfg.MaxIters == 0 {
		ccfg.MaxIters = 20
	}
	if cfg.Mappers == 0 {
		cfg.Mappers = ccfg.Workers
	}
	if cfg.Reducers == 0 && ccfg.Workers > 0 {
		cfg.Reducers = ccfg.Workers
	}
	model := DefaultCluster()
	if cfg.Model != nil {
		model = *cfg.Model
	}

	start := time.Now()
	input := Tuples(d)
	K, M := d.NumSources(), d.NumProps()

	// Shared state standing in for the external HDFS files all task
	// nodes read: the weight file (initialized uniformly to 1/K,
	// Section 2.7.2) and the truth file written by each truth job.
	weights := make([]float64, K)
	for k := range weights {
		weights[k] = 1 / float64(K)
	}
	truths := data.NewTableFor(d)
	entryStd := make([]float64, d.NumEntries())

	res := &ParallelResult{}
	for it := 0; it < ccfg.MaxIters; it++ {
		// ---- Truth computation job (Section 2.7.2) ----
		truthJob := Job{
			Name:        fmt.Sprintf("truth-iter%d", it),
			NumMappers:  cfg.Mappers,
			NumReducers: cfg.Reducers,
			// Map re-keys each tuple by its entry ID.
			Map: func(rec Record, emit func(KV)) {
				t := rec.(Tuple)
				emit(KV{Key: entryKey(int(t.EID)), Value: t})
			},
			// Reduce aggregates one entry's observations into its
			// truth under the shared weights.
			Reduce: func(key string, values []any, emit func(KV)) {
				e := parseEntryKey(key)
				p := d.Prop(e % M)
				ts := make([]Tuple, len(values))
				for i, v := range values {
					ts[i] = v.(Tuple)
				}
				// Canonical order: shuffle arrival order depends on
				// mapper sharding; sorting by source restores the
				// serial solver's iteration order bit-for-bit.
				sort.Slice(ts, func(i, j int) bool { return ts[i].SID < ts[j].SID })
				if p.Type == data.Categorical {
					obs := make([]int, len(ts))
					ws := make([]float64, len(ts))
					for i, t := range ts {
						obs[i] = int(t.V.C)
						ws[i] = weights[t.SID]
					}
					truth, _ := ccfg.CategoricalLoss.Truth(obs, ws, p)
					emit(KV{Key: key, Value: truthOut{v: data.Cat(truth)}})
					return
				}
				vals := make([]float64, len(ts))
				ws := make([]float64, len(ts))
				for i, t := range ts {
					vals[i] = t.V.F
					ws[i] = weights[t.SID]
				}
				emit(KV{Key: key, Value: truthOut{
					v:   data.Float(ccfg.ContinuousLoss.Truth(vals, ws)),
					std: stats.Std(vals),
				}})
			},
		}
		out, st, err := Run(truthJob, input)
		if err != nil {
			return nil, err
		}
		res.Jobs = append(res.Jobs, st)

		// Write the truth file and detect convergence.
		changed := 0
		for _, kv := range out {
			e := parseEntryKey(kv.Key)
			to := kv.Value.(truthOut)
			if old, ok := truths.Get(e); !ok || old != to.v {
				changed++
			}
			truths.Set(e, to.v)
			entryStd[e] = to.std
		}
		res.Iterations = it + 1
		if it > 0 && changed == 0 && !cfg.DisableEarlyStop {
			res.Converged = true
			break
		}

		// ---- Weight assignment job (Section 2.7.3) ----
		weightJob := Job{
			Name:        fmt.Sprintf("weight-iter%d", it),
			NumMappers:  cfg.Mappers,
			NumReducers: cfg.Reducers,
			// Map compares each tuple against the shared truth file
			// and emits the partial error keyed by (source, property)
			// so the driver can apply the per-property normalization.
			Map: func(rec Record, emit func(KV)) {
				t := rec.(Tuple)
				e := int(t.EID)
				truth, ok := truths.Get(e)
				if !ok {
					return
				}
				m := e % M
				p := d.Prop(m)
				var dv float64
				if p.Type == data.Categorical {
					dv = ccfg.CategoricalLoss.Deviation(int(truth.C), nil, int(t.V.C), p)
				} else {
					dv = ccfg.ContinuousLoss.Deviation(truth.F, t.V.F, entryStd[e])
				}
				emit(KV{Key: srcPropKey(int(t.SID), m), Value: errPair{sum: dv, count: 1}})
			},
			// Combine sums partial errors inside each mapper, cutting
			// shuffle volume (Section 2.7.3's Combiner).
			Combine: func(_ string, values []any) []any {
				var acc errPair
				for _, v := range values {
					p := v.(errPair)
					acc.sum += p.sum
					acc.count += p.count
				}
				return []any{acc}
			},
			Reduce: func(key string, values []any, emit func(KV)) {
				var acc errPair
				for _, v := range values {
					p := v.(errPair)
					acc.sum += p.sum
					acc.count += p.count
				}
				emit(KV{Key: key, Value: acc})
			},
		}
		out, st, err = Run(weightJob, input)
		if err != nil {
			return nil, err
		}
		res.Jobs = append(res.Jobs, st)

		// Driver: assemble the loss matrix, normalize exactly like the
		// serial solver, and update the shared weight file.
		sum := make([][]float64, K)
		cnt := make([][]int, K)
		for k := 0; k < K; k++ {
			sum[k] = make([]float64, M)
			cnt[k] = make([]int, M)
		}
		for _, kv := range out {
			k, m := parseSrcPropKey(kv.Key)
			p := kv.Value.(errPair)
			sum[k][m] = p.sum
			cnt[k][m] = p.count
		}
		weights = ccfg.Scheme.Weights(core.CombineLossMatrix(sum, cnt, ccfg))
	}

	res.Truths = truths
	res.Weights = weights
	res.WallTime = time.Since(start)
	res.SimulatedTime = model.Estimate(res.Jobs)
	return res, nil
}

// entryKey encodes entry IDs with fixed width so the shuffle's
// lexicographic sort coincides with numeric order.
func entryKey(e int) string { return fmt.Sprintf("e%012d", e) }

func parseEntryKey(k string) int {
	e, err := strconv.Atoi(k[1:])
	if err != nil {
		panic("mapreduce: corrupt entry key " + k)
	}
	return e
}

func srcPropKey(k, m int) string { return fmt.Sprintf("s%06d|%06d", k, m) }

func parseSrcPropKey(key string) (k, m int) {
	k, err := strconv.Atoi(key[1:7])
	if err != nil {
		panic("mapreduce: corrupt source key " + key)
	}
	m, err = strconv.Atoi(key[8:])
	if err != nil {
		panic("mapreduce: corrupt source key " + key)
	}
	return k, m
}
