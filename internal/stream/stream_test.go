package stream

import (
	"math"
	"sync"
	"testing"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/obs"
	"github.com/crhkit/crh/internal/reg"
	"github.com/crhkit/crh/internal/synth"
)

func weatherData(t *testing.T) (*data.Dataset, *data.Table) {
	t.Helper()
	return synth.Weather(synth.WeatherConfig{Seed: 41})
}

func TestChunksByWindow(t *testing.T) {
	d, _ := weatherData(t)
	chunks, err := ChunksByWindow(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 32 {
		t.Fatalf("%d chunks, want 32 daily chunks", len(chunks))
	}
	var total, objs int
	for i, ch := range chunks {
		if i > 0 && ch.Timestamp <= chunks[i-1].Timestamp {
			t.Fatal("chunks out of order")
		}
		total += ch.Data.NumObservations()
		objs += ch.Data.NumObjects()
		if len(ch.Objects) != ch.Data.NumObjects() {
			t.Fatal("object mapping length mismatch")
		}
		for ci, oi := range ch.Objects {
			if d.ObjectName(oi) != ch.Data.ObjectName(ci) {
				t.Fatal("object mapping misaligned")
			}
		}
	}
	if total != d.NumObservations() {
		t.Fatalf("chunks cover %d of %d observations", total, d.NumObservations())
	}
	if objs != d.NumObjects() {
		t.Fatalf("chunks cover %d of %d objects", objs, d.NumObjects())
	}
	// Window of 8 days → 4 chunks.
	chunks, err = ChunksByWindow(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("%d chunks with window 8, want 4", len(chunks))
	}
}

func TestChunksByWindowErrors(t *testing.T) {
	b := data.NewBuilder()
	b.ObserveFloat("s", "o", "x", 1)
	d := b.Build()
	if _, err := ChunksByWindow(d, 1); err == nil {
		t.Fatal("expected error for untimestamped dataset")
	}
	d2, _ := weatherData(t)
	if _, err := ChunksByWindow(d2, 0); err == nil {
		t.Fatal("expected error for zero window")
	}
}

func TestRunProducesFullCoverage(t *testing.T) {
	d, gt := weatherData(t)
	res, err := Run(d, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunkCount != 32 {
		t.Fatalf("ChunkCount = %d", res.ChunkCount)
	}
	if len(res.History) != 32 {
		t.Fatalf("history length = %d", len(res.History))
	}
	// Every observed entry must be resolved.
	for e := 0; e < d.NumEntries(); e++ {
		if d.EntryObservers(e) > 0 && !res.Truths.Has(e) {
			t.Fatalf("entry %d observed but unresolved", e)
		}
	}
	m := eval.Evaluate(d, res.Truths, gt)
	if m.ErrorRate > 0.5 || math.IsNaN(m.ErrorRate) {
		t.Fatalf("I-CRH error rate = %v", m.ErrorRate)
	}
}

// TestICRHCloseToCRH verifies the paper's Table 5 claim: I-CRH is slightly
// worse than CRH but close on both measures.
func TestICRHCloseToCRH(t *testing.T) {
	d, gt := weatherData(t)
	batch, err := core.Run(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Run(d, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mb := eval.Evaluate(d, batch.Truths, gt)
	mi := eval.Evaluate(d, inc.Truths, gt)
	if mi.ErrorRate > mb.ErrorRate+0.1 {
		t.Fatalf("I-CRH error rate %v too far above CRH %v", mi.ErrorRate, mb.ErrorRate)
	}
	if mi.MNAD > mb.MNAD*1.35 {
		t.Fatalf("I-CRH MNAD %v too far above CRH %v", mi.MNAD, mb.MNAD)
	}
}

// TestWeightsConvergeToCRH mirrors Figure 4b: after several timestamps the
// I-CRH weight vector correlates strongly with batch CRH's.
func TestWeightsConvergeToCRH(t *testing.T) {
	d, _ := weatherData(t)
	batch, err := core.Run(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Run(d, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	late := inc.History[5] // "the sixth timestamp (when they become stable)"
	if c := WeightCorrelation(late, batch.Weights); !(c > 0.8) {
		t.Fatalf("I-CRH/CRH weight correlation at t=6 = %v, want > 0.8", c)
	}
}

// TestWeightsStabilize mirrors Figure 4a: weights reach a stable stage
// after a few timestamps.
func TestWeightsStabilize(t *testing.T) {
	d, _ := weatherData(t)
	inc, err := Run(d, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := inc.History
	last := h[len(h)-1]
	// Compare the weight vector at t=8 and at the end: small drift.
	var drift float64
	for k := range last {
		drift += math.Abs(h[8][k] - last[k])
	}
	drift /= float64(len(last))
	if drift > 0.25 {
		t.Fatalf("weights still drifting after 8 chunks: %v", drift)
	}
}

func TestDecayRates(t *testing.T) {
	d, gt := weatherData(t)
	// All decay rates should give sane results (Figure 6:
	// insensitivity).
	var rates []float64
	for _, a := range []float64{0, 0.2, 0.5, 0.8, 1.0} {
		res, err := Run(d, 1, Config{Decay: a, DecaySet: true})
		if err != nil {
			t.Fatal(err)
		}
		m := eval.Evaluate(d, res.Truths, gt)
		rates = append(rates, m.ErrorRate)
	}
	for i, r := range rates {
		if math.IsNaN(r) || r > 0.55 {
			t.Fatalf("decay rate case %d produced error rate %v", i, r)
		}
	}
	// Insensitivity: max-min spread should be modest.
	min, max := rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max-min > 0.08 {
		t.Fatalf("error rate spread across decay rates = %v, want small (Fig 6)", max-min)
	}
}

func TestProcessorSingleChunkMatchesVotingThenWeights(t *testing.T) {
	// The first chunk is processed with uniform weights, so its truths
	// must equal the uniform-weight aggregation (voting / median).
	d, _ := weatherData(t)
	chunks, err := ChunksByWindow(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcessor(d.NumSources(), Config{})
	got := p.Process(chunks[0].Data)
	uniform := make([]float64, d.NumSources())
	for k := range uniform {
		uniform[k] = 1
	}
	want := core.AggregateTruths(chunks[0].Data, uniform, core.Config{})
	for e := 0; e < got.Len(); e++ {
		v1, ok1 := got.Get(e)
		v2, ok2 := want.Get(e)
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("first-chunk truths deviate from uniform aggregation at entry %d", e)
		}
	}
	if p.Chunks() != 1 || len(p.Weights()) != d.NumSources() {
		t.Fatal("processor bookkeeping wrong")
	}
}

// TestDecayZeroUsesOnlyLatestChunk: with α = 0 the accumulated distances
// equal the latest chunk's losses, so the weights after each chunk must
// match a fresh single-chunk computation.
func TestDecayZeroUsesOnlyLatestChunk(t *testing.T) {
	d, _ := weatherData(t)
	chunks, err := ChunksByWindow(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcessor(d.NumSources(), Config{Decay: 0, DecaySet: true})
	var prevWeights []float64
	for ci, ch := range chunks {
		weightsBefore := p.Weights()
		p.Process(ch.Data)
		// Replay: compute this chunk's truths and losses independently
		// with the same incoming weights, and apply the scheme.
		truths := core.AggregateTruths(ch.Data, weightsBefore, core.Config{})
		losses := core.SourceLosses(ch.Data, truths, weightsBefore, core.Config{})
		want := (reg.ExpMax{}).Weights(losses)
		got := p.Weights()
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-12 {
				t.Fatalf("chunk %d source %d: weight %v, want %v (memoryless)", ci, k, got[k], want[k])
			}
		}
		prevWeights = got
	}
	_ = prevWeights
}

// TestHistoryIsolated: History entries must be snapshots, not aliases of
// the live weight slice.
func TestHistoryIsolated(t *testing.T) {
	d, _ := weatherData(t)
	res, err := Run(d, 8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Fatal("need at least 2 chunks")
	}
	h0 := append([]float64(nil), res.History[0]...)
	res.History[len(res.History)-1][0] = -99
	for k := range h0 {
		if res.History[0][k] != h0[k] {
			t.Fatal("history snapshots alias each other")
		}
	}
}

// TestProcessorConcurrentAppendQuery exercises the incremental path the
// way crhd's registry drives it: one mutex serializes Process (append)
// while concurrent readers take snapshots of Weights/History/Chunks
// between chunks. Run with -race, this pins down the locking contract a
// concurrent server must follow, and the final state must be identical to
// a purely sequential run over the same chunks.
func TestProcessorConcurrentAppendQuery(t *testing.T) {
	d, _ := weatherData(t)
	chunks, err := ChunksByWindow(d, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: sequential processing.
	ref := NewProcessor(d.NumSources(), Config{})
	var refTruths []*data.Table
	for _, ch := range chunks {
		refTruths = append(refTruths, ref.Process(ch.Data))
	}

	// Concurrent: a single writer appends chunks under mu while readers
	// query under the same lock (RWMutex, as the server does).
	proc := NewProcessor(d.NumSources(), Config{})
	var mu sync.RWMutex
	var truths []*data.Table
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, ch := range chunks {
			mu.Lock()
			truths = append(truths, proc.Process(ch.Data))
			mu.Unlock()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.RLock()
				w := proc.Weights()
				n := proc.Chunks()
				h := proc.History()
				mu.RUnlock()
				if len(w) != d.NumSources() {
					t.Errorf("snapshot has %d weights, want %d", len(w), d.NumSources())
					return
				}
				if len(h) != n {
					t.Errorf("history has %d rows after %d chunks", len(h), n)
					return
				}
				for _, x := range w {
					if math.IsNaN(x) {
						t.Error("NaN weight observed mid-stream")
						return
					}
				}
			}
		}()
	}
	<-done
	wg.Wait()

	// The concurrent run must be bit-identical to the sequential one.
	if proc.Chunks() != ref.Chunks() {
		t.Fatalf("processed %d chunks, want %d", proc.Chunks(), ref.Chunks())
	}
	refW, gotW := ref.Weights(), proc.Weights()
	for k := range refW {
		if refW[k] != gotW[k] {
			t.Fatalf("weight %d = %v, want %v", k, gotW[k], refW[k])
		}
	}
	for i := range refTruths {
		want, got := refTruths[i], truths[i]
		if want.Count() != got.Count() {
			t.Fatalf("chunk %d: %d truths, want %d", i, got.Count(), want.Count())
		}
		for e := 0; e < want.Len(); e++ {
			wv, wok := want.Get(e)
			gv, gok := got.Get(e)
			p := chunks[i].Data.Prop(chunks[i].Data.EntryProp(e))
			if wok != gok || (wok && !wv.Equal(gv, p.Type)) {
				t.Fatalf("chunk %d entry %d differs", i, e)
			}
		}
	}
}

// TestIngestMetrics verifies the processor drives the optional ingest
// counters: chunk/observation totals and the source population.
func TestIngestMetrics(t *testing.T) {
	d, _ := weatherData(t)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	res, err := Run(d, 8, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Chunks.Value(); got != int64(res.ChunkCount) {
		t.Fatalf("chunks counter = %d, want %d", got, res.ChunkCount)
	}
	if got := m.Observations.Value(); got != int64(d.NumObservations()) {
		t.Fatalf("observations counter = %d, want %d", got, d.NumObservations())
	}
	if got := m.Sources.Value(); got != float64(d.NumSources()) {
		t.Fatalf("sources gauge = %v, want %d", got, d.NumSources())
	}
	// A nil Metrics is a no-op, not a crash.
	if _, err := Run(d, 8, Config{}); err != nil {
		t.Fatal(err)
	}
}
