package stream

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/synth"
)

const tsvStream = `# live crawl
P	temp	continuous
P	cond	categorical
O	d0/a	0
V	d0/a	temp	s1	10
V	d0/a	temp	s2	30
V	d0/a	cond	s1	x
O	d0/b	0
V	d0/b	temp	s1	20
O	d1/a	1
V	d1/a	temp	s1	11
V	d1/a	temp	s3	12
O	d2/a	2
V	d2/a	cond	s2	y
`

func TestTSVStreamWindows(t *testing.T) {
	ts, err := NewTSVStream(strings.NewReader(tsvStream), 1)
	if err != nil {
		t.Fatal(err)
	}
	var chunks []Chunk
	for {
		ch, err := ts.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, ch)
	}
	if len(chunks) != 3 {
		t.Fatalf("%d chunks, want 3", len(chunks))
	}
	if chunks[0].Timestamp != 0 || chunks[1].Timestamp != 1 || chunks[2].Timestamp != 2 {
		t.Fatalf("timestamps %d %d %d", chunks[0].Timestamp, chunks[1].Timestamp, chunks[2].Timestamp)
	}
	// Chunk 0: two objects, 4 observations.
	if chunks[0].Data.NumObjects() != 2 || chunks[0].Data.NumObservations() != 4 {
		t.Fatalf("chunk0: %d objects %d obs", chunks[0].Data.NumObjects(), chunks[0].Data.NumObservations())
	}
	// Source identity is global: s1 is index 0 in every chunk; chunk 1
	// interns s3, so chunk 2 must carry it too.
	if chunks[0].Data.SourceName(0) != "s1" || chunks[1].Data.SourceName(0) != "s1" {
		t.Fatal("source order not stable")
	}
	if chunks[1].Data.NumSources() != 3 {
		t.Fatalf("chunk1 sources = %d, want 3 (s3 joined)", chunks[1].Data.NumSources())
	}
	if chunks[2].Data.NumSources() != 3 {
		t.Fatalf("chunk2 sources = %d, want all known sources", chunks[2].Data.NumSources())
	}
	if ts.NumSources() != 3 {
		t.Fatal("stream source registry")
	}
}

func TestTSVStreamDrivesProcessor(t *testing.T) {
	ts, err := NewTSVStream(strings.NewReader(tsvStream), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcessor(0, Config{}) // sources join as they appear
	var resolved int
	for {
		ch, err := ts.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		truths := p.Process(ch.Data)
		resolved += truths.Count()
	}
	if resolved != 5 {
		t.Fatalf("resolved %d entries, want 5", resolved)
	}
	if len(p.Weights()) != 3 {
		t.Fatalf("processor grew to %d sources, want 3", len(p.Weights()))
	}
	for _, w := range p.Weights() {
		if math.IsNaN(w) || w < 0 {
			t.Fatalf("weight %v", w)
		}
	}
}

// TestTSVStreamMatchesBatchChunking: streaming a serialized dataset must
// produce the same per-chunk observation counts as materializing it and
// using ChunksByWindow.
func TestTSVStreamMatchesBatchChunking(t *testing.T) {
	d, _ := synth.Weather(synth.WeatherConfig{Seed: 77, Cities: 4, Days: 6})
	var buf bytes.Buffer
	if err := data.Encode(&buf, d, nil); err != nil {
		t.Fatal(err)
	}
	// The codec emits records in object (hence timestamp-mixed) order;
	// re-encode sorted by timestamp: Slice per day and concatenate.
	var sorted bytes.Buffer
	for day := 0; day < 6; day++ {
		chunk := d.Slice(func(i int) bool { return d.Timestamp(i) == day })
		if err := data.Encode(&sorted, chunk, nil); err != nil {
			t.Fatal(err)
		}
	}

	ts, err := NewTSVStream(&sorted, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ChunksByWindow(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for {
		ch, err := ts.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ch.Data.NumObservations())
	}
	if len(got) != len(batch) {
		t.Fatalf("stream produced %d chunks, batch %d", len(got), len(batch))
	}
	for i := range got {
		if got[i] != batch[i].Data.NumObservations() {
			t.Fatalf("chunk %d: stream %d obs, batch %d", i, got[i], batch[i].Data.NumObservations())
		}
	}
}

func TestTSVStreamErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"V before O", "P\tp\tcontinuous\nV\to\tp\ts\t1\n"},
		{"undeclared property", "O\to\t0\nV\to\tp\ts\t1\n"},
		{"bad type", "P\tp\tblob\n"},
		{"bad value", "P\tp\tcontinuous\nO\to\t0\nV\to\tp\ts\tabc\n"},
		{"NaN value", "P\tp\tcontinuous\nO\to\t0\nV\to\tp\ts\tNaN\n"},
		{"bad timestamp", "O\to\tzzz\n"},
		{"unknown record", "Q\tx\n"},
		{"redeclared type", "P\tp\tcontinuous\nP\tp\tcategorical\n"},
	}
	for _, c := range cases {
		ts, err := NewTSVStream(strings.NewReader(c.in), 1)
		if err != nil {
			t.Fatalf("%s: constructor: %v", c.name, err)
		}
		for {
			_, err = ts.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Errorf("%s: expected parse error, got EOF", c.name)
		}
	}
	if _, err := NewTSVStream(strings.NewReader(""), 0); err == nil {
		t.Error("zero window accepted")
	}
	// Empty stream: immediate EOF.
	ts, _ := NewTSVStream(strings.NewReader("# nothing\n"), 1)
	if _, err := ts.Next(); err != io.EOF {
		t.Errorf("empty stream: %v", err)
	}
}
