package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/crhkit/crh/internal/data"
)

// TSVStream incrementally reads the library's TSV observation format and
// yields one dataset chunk per timestamp window, without ever
// materializing the full stream — the "never-ending streaming data"
// scenario I-CRH exists for (Section 2.6).
//
// Input contract (checked, with line numbers in errors):
//
//   - P records declare properties before their first use, as in the
//     batch codec. They may appear at any point (new properties can join
//     the stream).
//   - Every object's O record (carrying its timestamp) precedes the
//     object's V records.
//   - Timestamps are non-decreasing: once a record of window w+1 appears,
//     no record of window w may follow. This is the natural order a
//     crawler produces.
//
// Source identity is global across chunks: every chunk's dataset interns
// the sources seen so far in a stable order, so the Processor's
// per-source state lines up chunk after chunk even as new sources join
// mid-stream.
type TSVStream struct {
	sc     *bufio.Scanner
	window int
	lineno int

	// Global registries preserved across chunks.
	props     []streamProp
	propByID  map[string]int
	sources   []string
	srcByID   map[string]int
	objTS     map[string]int
	seenMaxTS int
	started   bool
	winStart  int

	// pending holds the first record of the next window.
	pending *streamRec
	eof     bool
}

type streamProp struct {
	name string
	typ  data.Type
}

type streamRec struct {
	obj  string
	prop int
	src  int
	val  string // raw value text, parsed per property type at build time
	ts   int
}

// NewTSVStream wraps r. window is the number of consecutive timestamps
// per chunk.
func NewTSVStream(r io.Reader, window int) (*TSVStream, error) {
	if window <= 0 {
		return nil, fmt.Errorf("stream: window must be positive")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &TSVStream{
		sc:       sc,
		window:   window,
		propByID: make(map[string]int),
		srcByID:  make(map[string]int),
		objTS:    make(map[string]int),
	}, nil
}

// NumSources returns the number of distinct sources seen so far.
func (t *TSVStream) NumSources() int { return len(t.sources) }

// Next returns the next window's chunk, or io.EOF when the stream ends.
// Ground-truth (T) records are ignored — a live stream has none.
func (t *TSVStream) Next() (Chunk, error) {
	if t.eof && t.pending == nil {
		return Chunk{}, io.EOF
	}
	var recs []*streamRec
	winStart := t.winStart

	take := func(r *streamRec) bool {
		if !t.started {
			t.started = true
			winStart = (r.ts / t.window) * t.window
			t.winStart = winStart
		}
		if r.ts >= t.winStart+t.window {
			// Start of the next window.
			t.pending = r
			t.winStart = (r.ts / t.window) * t.window
			return false
		}
		recs = append(recs, r)
		return true
	}

	if t.pending != nil {
		r := t.pending
		t.pending = nil
		if !t.started {
			t.started = true
		}
		winStart = (r.ts / t.window) * t.window
		t.winStart = winStart
		recs = append(recs, r)
	}

	for t.sc.Scan() {
		t.lineno++
		line := t.sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		fail := func(msg string) error { return fmt.Errorf("stream: line %d: %s", t.lineno, msg) }
		switch f[0] {
		case "P":
			if len(f) != 3 {
				return Chunk{}, fail("P record needs 2 fields")
			}
			var typ data.Type
			switch f[2] {
			case "continuous":
				typ = data.Continuous
			case "categorical":
				typ = data.Categorical
			default:
				return Chunk{}, fail("unknown property type " + f[2])
			}
			if id, ok := t.propByID[f[1]]; ok {
				if t.props[id].typ != typ {
					return Chunk{}, fail("property " + f[1] + " redeclared with different type")
				}
				continue
			}
			t.propByID[f[1]] = len(t.props)
			t.props = append(t.props, streamProp{f[1], typ})
		case "O":
			if len(f) != 3 {
				return Chunk{}, fail("O record needs 2 fields")
			}
			ts, err := strconv.Atoi(f[2])
			if err != nil {
				return Chunk{}, fail("bad timestamp: " + err.Error())
			}
			if ts < t.seenMaxTS-0 && ts < t.winStart {
				return Chunk{}, fail(fmt.Sprintf("timestamp %d out of order (window starts at %d)", ts, t.winStart))
			}
			if ts > t.seenMaxTS {
				t.seenMaxTS = ts
			}
			t.objTS[f[1]] = ts
		case "V":
			if len(f) != 5 {
				return Chunk{}, fail("V record needs 4 fields")
			}
			pid, ok := t.propByID[f[2]]
			if !ok {
				return Chunk{}, fail("property " + f[2] + " not declared")
			}
			ts, ok := t.objTS[f[1]]
			if !ok {
				return Chunk{}, fail("object " + f[1] + " has no O (timestamp) record")
			}
			sid, ok := t.srcByID[f[3]]
			if !ok {
				sid = len(t.sources)
				t.srcByID[f[3]] = sid
				t.sources = append(t.sources, f[3])
			}
			if t.props[pid].typ == data.Continuous {
				x, err := strconv.ParseFloat(f[4], 64)
				if err != nil {
					return Chunk{}, fail("bad continuous value: " + err.Error())
				}
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return Chunk{}, fail("non-finite continuous value " + f[4])
				}
			}
			if !take(&streamRec{obj: f[1], prop: pid, src: sid, val: f[4], ts: ts}) {
				return t.buildChunk(recs, winStart)
			}
		case "T":
			// Live streams carry no ground truth; tolerate and skip.
			continue
		default:
			return Chunk{}, fail("unknown record type " + f[0])
		}
	}
	if err := t.sc.Err(); err != nil {
		return Chunk{}, err
	}
	t.eof = true
	if len(recs) == 0 {
		return Chunk{}, io.EOF
	}
	return t.buildChunk(recs, winStart)
}

// buildChunk materializes one window. All sources seen so far are
// interned first, in global order, so source indices stay aligned across
// chunks.
func (t *TSVStream) buildChunk(recs []*streamRec, winStart int) (Chunk, error) {
	b := data.NewBuilder()
	for _, s := range t.sources {
		b.Source(s)
	}
	propIdx := make([]int, len(t.props))
	for i, p := range t.props {
		propIdx[i] = b.MustProperty(p.name, p.typ)
	}
	for _, r := range recs {
		obj := b.Object(r.obj)
		b.SetTimestampIdx(obj, r.ts)
		var v data.Value
		if t.props[r.prop].typ == data.Continuous {
			x, _ := strconv.ParseFloat(r.val, 64) // validated at read time
			v = data.Float(x)
		} else {
			v = data.Cat(b.CatValue(propIdx[r.prop], r.val))
		}
		b.ObserveIdx(r.src, obj, propIdx[r.prop], v)
	}
	return Chunk{Timestamp: winStart, Data: b.Build()}, nil
}

// SourceName returns the name of the kth source seen so far.
func (t *TSVStream) SourceName(k int) string { return t.sources[k] }
