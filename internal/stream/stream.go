// Package stream implements Incremental CRH (I-CRH, Algorithm 2): truth
// discovery over data arriving in timestamped chunks. Unlike batch CRH,
// each chunk is scanned exactly once — truths for the chunk are computed
// from the source weights learned so far, then the weights are refreshed
// from decayed accumulated distances, without revisiting past data.
package stream

import (
	"errors"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/obs"
	"github.com/crhkit/crh/internal/reg"
	"github.com/crhkit/crh/internal/stats"
)

// Chunk is one timestamped batch of observations carved out of a dataset,
// retaining the mapping back to the original object indices so per-chunk
// truths can be reassembled into a full truth table.
type Chunk struct {
	// Timestamp identifies the window (its first timestamp value).
	Timestamp int
	// Data holds the chunk's observations; object i of Data is object
	// Objects[i] of the original dataset.
	Data    *data.Dataset
	Objects []int
}

// ChunksByWindow splits a timestamped dataset into consecutive windows
// covering `window` timestamps each ("the time window for data collection
// decides the size of each data chunk"). Windows with no objects are
// skipped. An error is returned when the dataset carries no timestamps or
// window is not positive.
func ChunksByWindow(d *data.Dataset, window int) ([]Chunk, error) {
	if !d.HasTimestamps() {
		return nil, errors.New("stream: dataset has no timestamps")
	}
	if window <= 0 {
		return nil, errors.New("stream: window must be positive")
	}
	min, max := d.TimestampRange()
	var chunks []Chunk
	for start := min; start <= max; start += window {
		end := start + window
		var objects []int
		for i := 0; i < d.NumObjects(); i++ {
			if ts := d.Timestamp(i); ts >= start && ts < end {
				objects = append(objects, i)
			}
		}
		if len(objects) == 0 {
			continue
		}
		inWindow := make(map[int]bool, len(objects))
		for _, o := range objects {
			inWindow[o] = true
		}
		chunks = append(chunks, Chunk{
			Timestamp: start,
			Data:      d.Slice(func(i int) bool { return inWindow[i] }),
			Objects:   objects,
		})
	}
	return chunks, nil
}

// Config controls an I-CRH processor. Loss and scheme defaults follow
// batch CRH (weighted median / weighted voting / exp-max weights).
type Config struct {
	// Core carries the loss functions, weight scheme and normalization
	// flags shared with batch CRH. Iteration fields are ignored — I-CRH
	// runs one pass per chunk — but Core.Workers and Core.Pool are
	// honored: each chunk's truth pass and loss accumulation run on the
	// parallel engine, with output bit-identical at any worker count
	// (crhd points Pool at its shared resolve pool so warm re-solves
	// respect the server-wide solver budget).
	Core core.Config
	// Decay is the rate α ∈ [0, 1] applied to the accumulated distances
	// before each chunk is added: a_k ← α·a_k + loss_k. Smaller values
	// forget history faster. Defaults to 1 (all history retained, the
	// natural streaming analogue of batch CRH).
	Decay float64
	// decaySet distinguishes an explicit 0 from the zero value.
	DecaySet bool
	// Metrics, when non-nil, receives ingest telemetry from every
	// Process call. Create with NewMetrics; multiple processors may
	// share one set (the counters are atomic), which is how crhd
	// aggregates ingest load across datasets.
	Metrics *Metrics
}

// Metrics holds the ingest counters an I-CRH processor drives: chunk and
// observation totals plus the current source population. Create with
// NewMetrics so the series appear in a registry's exposition.
type Metrics struct {
	// Chunks counts Process calls; Observations the observations they
	// carried.
	Chunks       *obs.Counter
	Observations *obs.Counter // see Chunks
	// Sources tracks the largest source population seen (streams grow
	// their source set open-endedly).
	Sources *obs.Gauge
}

// NewMetrics registers the streaming ingest metrics on reg under the
// crh_stream_* names documented in docs/OBSERVABILITY.md.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Chunks:       reg.NewCounter("crh_stream_chunks_total", "I-CRH chunks processed"),
		Observations: reg.NewCounter("crh_stream_observations_total", "observations scanned by the I-CRH processor"),
		Sources:      reg.NewGauge("crh_stream_sources", "source population of the I-CRH processor"),
	}
}

// record folds one processed chunk into the metrics.
func (m *Metrics) record(chunk *data.Dataset, sources int) {
	if m == nil {
		return
	}
	m.Chunks.Add(1)
	m.Observations.Add(int64(chunk.NumObservations()))
	m.Sources.Set(float64(sources))
}

// Processor consumes chunks one at a time, maintaining source weights and
// accumulated distances across chunks. Create with NewProcessor; not safe
// for concurrent use.
type Processor struct {
	cfg     Config
	weights []float64
	accum   []float64
	history [][]float64 // weights after each chunk
	n       int         // chunks processed
}

// NewProcessor returns a Processor for streams whose chunks share the
// given source count. Weights start at 1 and accumulated distances at 0
// (Algorithm 2, line 1).
func NewProcessor(numSources int, cfg Config) *Processor {
	if !cfg.DecaySet && cfg.Decay == 0 {
		cfg.Decay = 1
	}
	p := &Processor{
		cfg:     cfg,
		weights: make([]float64, numSources),
		accum:   make([]float64, numSources),
	}
	for k := range p.weights {
		p.weights[k] = 1
	}
	return p
}

// grow extends the per-source state when a chunk introduces new sources
// (a never-ending stream's population is open-ended). New sources start
// with weight 1 and an empty loss history, exactly like Algorithm 2's
// initialization.
func (p *Processor) grow(numSources int) {
	for len(p.weights) < numSources {
		p.weights = append(p.weights, 1)
		p.accum = append(p.accum, 0)
	}
}

// Process handles one chunk: it computes the chunk's truths from the
// current weights (Algorithm 2, line 3), folds the chunk's per-source
// losses into the decayed accumulated distances (line 4), and refreshes
// the weights from the accumulation (line 5). The chunk is scanned once.
// Chunks may introduce sources the processor has not seen; their state is
// initialized on first appearance.
func (p *Processor) Process(chunk *data.Dataset) *data.Table {
	p.grow(chunk.NumSources())
	// Freeze the chunk's columnar view once and share it between the
	// truth pass and the loss pass — the package-level helpers would
	// re-freeze for each.
	prep := core.Prepare(chunk)
	truths := prep.AggregateTruths(p.weights, p.cfg.Core)
	losses := prep.SourceLosses(truths, p.weights, p.cfg.Core)
	for k := range p.accum {
		p.accum[k] *= p.cfg.Decay
		if k < len(losses) {
			p.accum[k] += losses[k]
		}
	}
	scheme := p.cfg.Core.Scheme
	if scheme == nil {
		scheme = reg.ExpMax{}
	}
	p.weights = scheme.Weights(p.accum)
	p.history = append(p.history, append([]float64(nil), p.weights...))
	p.n++
	p.cfg.Metrics.record(chunk, len(p.weights))
	return truths
}

// Weights returns the current source weights (a copy).
func (p *Processor) Weights() []float64 {
	return append([]float64(nil), p.weights...)
}

// State returns the processor's durable state — copies of the current
// source weights and decayed accumulated distances plus the number of
// chunks processed. Together with Restore it lets crhd checkpoint warm
// I-CRH state at a version boundary and rebuild it exactly after a
// crash (docs/DURABILITY.md).
func (p *Processor) State() (weights, accum []float64, chunks int) {
	return append([]float64(nil), p.weights...), append([]float64(nil), p.accum...), p.n
}

// Restore replaces the processor's state with one previously captured
// by State. Subsequent Process calls continue bit-for-bit identically
// to a processor that never stopped. The weight history restarts empty:
// recovery resumes the stream, it does not replay it.
func (p *Processor) Restore(weights, accum []float64, chunks int) {
	p.weights = append([]float64(nil), weights...)
	p.accum = append([]float64(nil), accum...)
	p.history = nil
	p.n = chunks
}

// History returns the weight vector recorded after each processed chunk —
// the trajectories plotted in Figure 4a.
func (p *Processor) History() [][]float64 { return p.history }

// Chunks returns the number of chunks processed so far.
func (p *Processor) Chunks() int { return p.n }

// Result is the outcome of a full streaming run.
type Result struct {
	// Truths maps every resolved entry of the original dataset to its
	// I-CRH estimate.
	Truths *data.Table
	// Weights is the final weight vector; History the per-chunk
	// trajectory.
	Weights []float64
	History [][]float64
	// ChunkCount is the number of non-empty windows processed.
	ChunkCount int
}

// Run applies I-CRH over a timestamped dataset with the given window size,
// reassembling per-chunk truths into a table aligned with d's entries.
func Run(d *data.Dataset, window int, cfg Config) (*Result, error) {
	chunks, err := ChunksByWindow(d, window)
	if err != nil {
		return nil, err
	}
	p := NewProcessor(d.NumSources(), cfg)
	full := data.NewTableFor(d)
	for _, ch := range chunks {
		truths := p.Process(ch.Data)
		M := d.NumProps()
		for ci, oi := range ch.Objects {
			for m := 0; m < M; m++ {
				if v, ok := truths.GetAt(ci, m); ok {
					full.SetAt(oi, m, v)
				}
			}
		}
	}
	return &Result{
		Truths:     full,
		Weights:    p.Weights(),
		History:    p.History(),
		ChunkCount: p.Chunks(),
	}, nil
}

// WeightCorrelation compares a weight vector against a reference (e.g.,
// batch CRH weights) via Pearson correlation — used to show I-CRH weights
// converge to CRH's (Figure 4b).
func WeightCorrelation(a, b []float64) float64 { return stats.Pearson(a, b) }
