package data

import (
	"fmt"
	"math"
)

// Builder incrementally assembles a Dataset from observation triples.
// Objects, properties, sources and categorical values are interned on first
// mention; observations may arrive in any order. A Builder is not safe for
// concurrent use.
type Builder struct {
	objects  []string
	objByID  map[string]int
	props    []Property
	propByID map[string]int
	sources  []string
	srcByID  map[string]int

	obs        []rawObs
	timestamps map[int]int // object index -> timestamp
}

type rawObs struct {
	src, obj, prop int
	val            Value
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		objByID:  make(map[string]int),
		propByID: make(map[string]int),
		srcByID:  make(map[string]int),
	}
}

// Object interns an object name and returns its index.
func (b *Builder) Object(name string) int {
	if id, ok := b.objByID[name]; ok {
		return id
	}
	id := len(b.objects)
	b.objects = append(b.objects, name)
	b.objByID[name] = id
	return id
}

// Source interns a source name and returns its index.
func (b *Builder) Source(name string) int {
	if id, ok := b.srcByID[name]; ok {
		return id
	}
	id := len(b.sources)
	b.sources = append(b.sources, name)
	b.srcByID[name] = id
	return id
}

// Property interns a property with the given type and returns its index.
// It returns an error if the property already exists with a different type.
func (b *Builder) Property(name string, t Type) (int, error) {
	if id, ok := b.propByID[name]; ok {
		if b.props[id].Type != t {
			return 0, fmt.Errorf("data: property %q redeclared as %v (was %v)", name, t, b.props[id].Type)
		}
		return id, nil
	}
	id := len(b.props)
	b.props = append(b.props, Property{Name: name, Type: t})
	b.propByID[name] = id
	return id, nil
}

// MustProperty is Property but panics on type conflicts. Intended for
// programmatic schema construction where a conflict is a bug.
func (b *Builder) MustProperty(name string, t Type) int {
	id, err := b.Property(name, t)
	if err != nil {
		panic(err)
	}
	return id
}

// ObserveFloat records a continuous observation. The property is created as
// Continuous on first mention; an error is returned if it exists as
// Categorical, or if the value is NaN or infinite — non-finite
// observations would silently poison every weighted aggregate downstream.
func (b *Builder) ObserveFloat(source, object, property string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("data: non-finite observation %v for %s/%s from %s", v, object, property, source)
	}
	p, err := b.Property(property, Continuous)
	if err != nil {
		return err
	}
	b.obs = append(b.obs, rawObs{b.Source(source), b.Object(object), p, Float(v)})
	return nil
}

// ObserveCat records a categorical observation, interning the value into the
// property's dictionary. The property is created as Categorical on first
// mention; an error is returned if it exists as Continuous.
func (b *Builder) ObserveCat(source, object, property, v string) error {
	p, err := b.Property(property, Categorical)
	if err != nil {
		return err
	}
	id := b.props[p].internCat(v)
	b.obs = append(b.obs, rawObs{b.Source(source), b.Object(object), p, Cat(id)})
	return nil
}

// ObserveIdx records an observation by pre-interned indices. It is the fast
// path used by generators; the caller is responsible for index validity
// (categorical values must already be interned via CatValue).
func (b *Builder) ObserveIdx(source, object, property int, v Value) {
	b.obs = append(b.obs, rawObs{source, object, property, v})
}

// CatValue interns a categorical value for property p and returns its index.
func (b *Builder) CatValue(p int, s string) int { return b.props[p].internCat(s) }

// SetTimestamp attaches a collection timestamp to an object (creating the
// object if needed). Datasets where any object has a timestamp report
// HasTimestamps; untimestamped objects default to 0.
func (b *Builder) SetTimestamp(object string, t int) {
	if b.timestamps == nil {
		b.timestamps = make(map[int]int)
	}
	b.timestamps[b.Object(object)] = t
}

// SetTimestampIdx is SetTimestamp by object index.
func (b *Builder) SetTimestampIdx(object, t int) {
	if b.timestamps == nil {
		b.timestamps = make(map[int]int)
	}
	b.timestamps[object] = t
}

// NumObjects returns the number of objects interned so far.
func (b *Builder) NumObjects() int { return len(b.objects) }

// NumSources returns the number of sources interned so far.
func (b *Builder) NumSources() int { return len(b.sources) }

// Build materializes the Dataset. Duplicate observations of the same
// (source, entry) keep the last value recorded. The Builder remains usable;
// further observations affect only later Builds.
func (b *Builder) Build() *Dataset {
	N, M, K := len(b.objects), len(b.props), len(b.sources)
	d := &Dataset{
		objects: append([]string(nil), b.objects...),
		props:   append([]Property(nil), b.props...),
		sources: append([]string(nil), b.sources...),
		obs:     make([][]Value, K),
		present: make([][]bool, K),
		counts:  make([]int, K),
	}
	for k := 0; k < K; k++ {
		d.obs[k] = make([]Value, N*M)
		d.present[k] = make([]bool, N*M)
	}
	for _, o := range b.obs {
		e := o.obj*M + o.prop
		if !d.present[o.src][e] {
			d.present[o.src][e] = true
			d.counts[o.src]++
		}
		d.obs[o.src][e] = o.val
	}
	if b.timestamps != nil {
		d.timestamps = make([]int, N)
		for i, t := range b.timestamps {
			d.timestamps[i] = t
		}
	}
	return d
}
