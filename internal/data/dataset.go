package data

import "fmt"

// Dataset is an immutable multi-source observation matrix: K sources × N
// objects × M typed properties, with missing values. Construct one with a
// Builder; a built Dataset is safe for concurrent readers.
//
// Entries are addressed either by (object, property) index pairs or by a
// flattened entry index e = object*M + property.
type Dataset struct {
	objects []string
	props   []Property
	sources []string

	// obs[k] is a dense N*M slice of the kth source's observations;
	// present[k][e] reports whether source k observed entry e.
	obs     [][]Value
	present [][]bool

	// counts[k] is the number of entries source k observed.
	counts []int

	// timestamps[i] is an optional collection timestamp for object i,
	// used to chunk the data for streaming (incremental CRH). Nil when
	// the dataset carries no temporal information.
	timestamps []int
}

// NumObjects returns N.
func (d *Dataset) NumObjects() int { return len(d.objects) }

// NumProps returns M.
func (d *Dataset) NumProps() int { return len(d.props) }

// NumSources returns K.
func (d *Dataset) NumSources() int { return len(d.sources) }

// NumEntries returns N*M, the number of addressable entries.
func (d *Dataset) NumEntries() int { return len(d.objects) * len(d.props) }

// NumObservations returns the total number of (source, entry) observations.
func (d *Dataset) NumObservations() int {
	var n int
	for _, c := range d.counts {
		n += c
	}
	return n
}

// ObjectName returns the name of object i.
func (d *Dataset) ObjectName(i int) string { return d.objects[i] }

// SourceName returns the name of source k.
func (d *Dataset) SourceName(k int) string { return d.sources[k] }

// Prop returns property m. The returned pointer must be treated as
// read-only.
func (d *Dataset) Prop(m int) *Property { return &d.props[m] }

// Entry flattens an (object, property) pair into an entry index.
func (d *Dataset) Entry(i, m int) int { return i*len(d.props) + m }

// EntryObject returns the object index of entry e.
func (d *Dataset) EntryObject(e int) int { return e / len(d.props) }

// EntryProp returns the property index of entry e.
func (d *Dataset) EntryProp(e int) int { return e % len(d.props) }

// Has reports whether source k observed entry (i, m).
func (d *Dataset) Has(k, i, m int) bool { return d.present[k][d.Entry(i, m)] }

// HasEntry reports whether source k observed entry e.
func (d *Dataset) HasEntry(k, e int) bool { return d.present[k][e] }

// Get returns source k's observation of entry (i, m). The result is
// meaningless unless Has(k, i, m) is true.
func (d *Dataset) Get(k, i, m int) Value { return d.obs[k][d.Entry(i, m)] }

// GetEntry returns source k's observation of entry e.
func (d *Dataset) GetEntry(k, e int) Value { return d.obs[k][e] }

// ObservationCount returns the number of entries source k observed.
func (d *Dataset) ObservationCount(k int) int { return d.counts[k] }

// ForEntry calls fn for every source that observed entry e.
func (d *Dataset) ForEntry(e int, fn func(k int, v Value)) {
	for k := range d.obs {
		if d.present[k][e] {
			fn(k, d.obs[k][e])
		}
	}
}

// EntryObservers returns the number of sources observing entry e.
func (d *Dataset) EntryObservers(e int) int {
	var n int
	for k := range d.present {
		if d.present[k][e] {
			n++
		}
	}
	return n
}

// HasTimestamps reports whether the dataset carries per-object timestamps.
func (d *Dataset) HasTimestamps() bool { return d.timestamps != nil }

// Timestamp returns object i's collection timestamp (0 when absent).
func (d *Dataset) Timestamp(i int) int {
	if d.timestamps == nil {
		return 0
	}
	return d.timestamps[i]
}

// TimestampRange returns the minimum and maximum object timestamps.
// Both are 0 when the dataset carries no timestamps or no objects.
func (d *Dataset) TimestampRange() (min, max int) {
	if d.timestamps == nil || len(d.timestamps) == 0 {
		return 0, 0
	}
	min, max = d.timestamps[0], d.timestamps[0]
	for _, t := range d.timestamps[1:] {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return min, max
}

// Slice returns a new Dataset containing only the objects for which keep
// returns true. Sources, properties and categorical dictionaries are shared
// with the receiver (they are read-only), so slicing is cheap in memory.
// Used by the streaming layer to materialize per-timestamp chunks.
func (d *Dataset) Slice(keep func(object int) bool) *Dataset {
	M := len(d.props)
	var objIdx []int
	for i := range d.objects {
		if keep(i) {
			objIdx = append(objIdx, i)
		}
	}
	out := &Dataset{
		objects: make([]string, len(objIdx)),
		props:   d.props,
		sources: d.sources,
		obs:     make([][]Value, len(d.sources)),
		present: make([][]bool, len(d.sources)),
		counts:  make([]int, len(d.sources)),
	}
	if d.timestamps != nil {
		out.timestamps = make([]int, len(objIdx))
	}
	for ni, i := range objIdx {
		out.objects[ni] = d.objects[i]
		if d.timestamps != nil {
			out.timestamps[ni] = d.timestamps[i]
		}
	}
	for k := range d.sources {
		out.obs[k] = make([]Value, len(objIdx)*M)
		out.present[k] = make([]bool, len(objIdx)*M)
		for ni, i := range objIdx {
			copy(out.obs[k][ni*M:(ni+1)*M], d.obs[k][i*M:(i+1)*M])
			copy(out.present[k][ni*M:(ni+1)*M], d.present[k][i*M:(i+1)*M])
		}
		for _, p := range out.present[k] {
			if p {
				out.counts[k]++
			}
		}
	}
	return out
}

// Validate checks internal consistency and returns a descriptive error on
// the first violation found. A Dataset produced by Builder.Build always
// validates; this is primarily for datasets decoded from external files.
func (d *Dataset) Validate() error {
	NM := d.NumEntries()
	if len(d.obs) != len(d.sources) || len(d.present) != len(d.sources) {
		return fmt.Errorf("data: source arrays sized %d/%d, want %d", len(d.obs), len(d.present), len(d.sources))
	}
	for k := range d.sources {
		if len(d.obs[k]) != NM || len(d.present[k]) != NM {
			return fmt.Errorf("data: source %d matrices sized %d/%d, want %d", k, len(d.obs[k]), len(d.present[k]), NM)
		}
		var c int
		for e, p := range d.present[k] {
			if !p {
				continue
			}
			c++
			m := d.EntryProp(e)
			if d.props[m].Type == Categorical {
				if id := int(d.obs[k][e].C); id < 0 || id >= d.props[m].NumCats() {
					return fmt.Errorf("data: source %d entry %d category %d out of range [0,%d)", k, e, id, d.props[m].NumCats())
				}
			}
		}
		if c != d.counts[k] {
			return fmt.Errorf("data: source %d count %d, want %d", k, d.counts[k], c)
		}
	}
	if d.timestamps != nil && len(d.timestamps) != len(d.objects) {
		return fmt.Errorf("data: %d timestamps for %d objects", len(d.timestamps), len(d.objects))
	}
	return nil
}
