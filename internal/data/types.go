// Package data defines the heterogeneous data model used throughout the CRH
// framework: objects, typed properties, sources, observations, entries and
// truth tables.
//
// Terminology follows Definition 1 of the paper:
//
//   - An object is a person or thing of interest.
//   - A property is a feature describing an object; each property has a data
//     type (continuous or categorical).
//   - A source is a place observations are collected from.
//   - An observation is the value a source reports for one property of one
//     object.
//   - An entry is a (object, property) pair; the truth of an entry is its
//     single accurate value.
//
// The model supports missing values: each source may observe an arbitrary
// subset of entries. Categorical values are interned into per-property
// dictionaries so that hot loops operate on integer category indices.
package data

import "fmt"

// Type is the data type of a property.
type Type uint8

const (
	// Continuous marks a real-valued property (e.g., temperature,
	// departure time in minutes).
	Continuous Type = iota
	// Categorical marks a discrete-valued property (e.g., weather
	// condition, departure gate).
	Categorical
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Continuous:
		return "continuous"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a single observed or inferred value. Exactly one of the payloads
// is meaningful, selected by the owning property's Type: F for Continuous
// properties, C (a category index into the property's dictionary) for
// Categorical properties.
type Value struct {
	F float64
	C int32
}

// Float constructs a continuous Value.
func Float(f float64) Value { return Value{F: f} }

// Cat constructs a categorical Value from a dictionary index.
func Cat(id int) Value { return Value{C: int32(id)} }

// Equal reports whether two values are equal under the given property type.
func (v Value) Equal(o Value, t Type) bool {
	if t == Categorical {
		return v.C == o.C
	}
	//lint:ignore floatcmp Equal is claim identity — distinct observed values must stay distinct facts
	return v.F == o.F
}

// Property describes one feature of the objects in a Dataset, including the
// categorical dictionary when Type is Categorical.
type Property struct {
	Name string
	Type Type

	cats    []string
	catByID map[string]int
}

// NumCats returns the number of distinct categorical values interned for
// this property (0 for continuous properties).
func (p *Property) NumCats() int { return len(p.cats) }

// CatName returns the string for a category index. It panics on an
// out-of-range index, which always indicates corrupted state.
func (p *Property) CatName(id int) string { return p.cats[id] }

// CatID returns the index for a category string and whether it is known.
func (p *Property) CatID(s string) (int, bool) {
	id, ok := p.catByID[s]
	return id, ok
}

// internCat returns the index for s, interning it if new.
func (p *Property) internCat(s string) int {
	if id, ok := p.catByID[s]; ok {
		return id
	}
	if p.catByID == nil {
		p.catByID = make(map[string]int)
	}
	id := len(p.cats)
	p.cats = append(p.cats, s)
	p.catByID[s] = id
	return id
}
