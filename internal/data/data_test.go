package data

import (
	"bytes"
	"strings"
	"testing"
)

// buildSample constructs a small mixed-type dataset:
// 2 sources, 2 objects, 2 properties (temp continuous, cond categorical),
// with one missing observation.
func buildSample(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.ObserveFloat("s1", "nyc", "temp", 80))
	must(b.ObserveFloat("s2", "nyc", "temp", 82))
	must(b.ObserveCat("s1", "nyc", "cond", "sunny"))
	must(b.ObserveCat("s2", "nyc", "cond", "rain"))
	must(b.ObserveFloat("s1", "sfo", "temp", 65))
	must(b.ObserveCat("s1", "sfo", "cond", "fog"))
	// s2 does not observe sfo at all: missing values.
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	d := buildSample(t)
	if d.NumSources() != 2 || d.NumObjects() != 2 || d.NumProps() != 2 {
		t.Fatalf("dims = %d sources, %d objects, %d props", d.NumSources(), d.NumObjects(), d.NumProps())
	}
	if d.NumEntries() != 4 {
		t.Fatalf("NumEntries = %d, want 4", d.NumEntries())
	}
	if d.NumObservations() != 6 {
		t.Fatalf("NumObservations = %d, want 6", d.NumObservations())
	}
	if d.ObservationCount(0) != 4 || d.ObservationCount(1) != 2 {
		t.Fatalf("counts = %d,%d", d.ObservationCount(0), d.ObservationCount(1))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTypedAccess(t *testing.T) {
	d := buildSample(t)
	if d.Prop(0).Name != "temp" || d.Prop(0).Type != Continuous {
		t.Fatalf("prop 0 = %+v", d.Prop(0))
	}
	if d.Prop(1).Name != "cond" || d.Prop(1).Type != Categorical {
		t.Fatalf("prop 1 = %+v", d.Prop(1))
	}
	if !d.Has(0, 0, 0) || d.Get(0, 0, 0).F != 80 {
		t.Error("s1 nyc temp should be 80")
	}
	if d.Has(1, 1, 0) {
		t.Error("s2 sfo temp should be missing")
	}
	p := d.Prop(1)
	if p.NumCats() != 3 {
		t.Fatalf("cond cats = %d, want 3", p.NumCats())
	}
	id, ok := p.CatID("rain")
	if !ok || p.CatName(id) != "rain" {
		t.Error("categorical dictionary round-trip failed")
	}
	if _, ok := p.CatID("hail"); ok {
		t.Error("unknown category should not resolve")
	}
}

func TestPropertyTypeConflict(t *testing.T) {
	b := NewBuilder()
	if err := b.ObserveFloat("s", "o", "p", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.ObserveCat("s", "o", "p", "x"); err == nil {
		t.Fatal("expected type-conflict error")
	}
}

func TestDuplicateObservationKeepsLast(t *testing.T) {
	b := NewBuilder()
	b.ObserveFloat("s", "o", "p", 1)
	b.ObserveFloat("s", "o", "p", 2)
	d := b.Build()
	if d.NumObservations() != 1 {
		t.Fatalf("NumObservations = %d, want 1 (dedup)", d.NumObservations())
	}
	if got := d.Get(0, 0, 0).F; got != 2 {
		t.Fatalf("duplicate kept %v, want last value 2", got)
	}
}

func TestForEntryAndObservers(t *testing.T) {
	d := buildSample(t)
	e := d.Entry(0, 0) // nyc temp
	var seen []int
	d.ForEntry(e, func(k int, v Value) { seen = append(seen, k) })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("ForEntry sources = %v", seen)
	}
	if d.EntryObservers(d.Entry(1, 0)) != 1 {
		t.Error("sfo temp should have 1 observer")
	}
	if d.EntryObject(d.Entry(1, 1)) != 1 || d.EntryProp(d.Entry(1, 1)) != 1 {
		t.Error("entry index round-trip failed")
	}
}

func TestTimestampsAndSlice(t *testing.T) {
	b := NewBuilder()
	b.ObserveFloat("s1", "day1-obj", "x", 1)
	b.ObserveFloat("s1", "day2-obj", "x", 2)
	b.ObserveFloat("s2", "day2-obj", "x", 3)
	b.SetTimestamp("day1-obj", 1)
	b.SetTimestamp("day2-obj", 2)
	d := b.Build()
	if !d.HasTimestamps() {
		t.Fatal("expected timestamps")
	}
	min, max := d.TimestampRange()
	if min != 1 || max != 2 {
		t.Fatalf("TimestampRange = %d,%d", min, max)
	}
	chunk := d.Slice(func(i int) bool { return d.Timestamp(i) == 2 })
	if chunk.NumObjects() != 1 || chunk.ObjectName(0) != "day2-obj" {
		t.Fatalf("slice objects = %d", chunk.NumObjects())
	}
	if chunk.NumObservations() != 2 {
		t.Fatalf("slice observations = %d, want 2", chunk.NumObservations())
	}
	if chunk.ObservationCount(0) != 1 || chunk.ObservationCount(1) != 1 {
		t.Fatal("slice per-source counts wrong")
	}
	if err := chunk.Validate(); err != nil {
		t.Fatalf("slice Validate: %v", err)
	}
	if chunk.Timestamp(0) != 2 {
		t.Fatal("slice lost timestamp")
	}
}

func TestSliceEmpty(t *testing.T) {
	d := buildSample(t)
	empty := d.Slice(func(int) bool { return false })
	if empty.NumObjects() != 0 || empty.NumObservations() != 0 {
		t.Fatal("empty slice should have nothing")
	}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty slice Validate: %v", err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable(2, 3)
	if tb.Len() != 6 || tb.Count() != 0 {
		t.Fatal("fresh table should be empty")
	}
	tb.SetAt(1, 2, Float(9))
	if tb.Count() != 1 {
		t.Fatal("Count after one Set")
	}
	v, ok := tb.GetAt(1, 2)
	if !ok || v.F != 9 {
		t.Fatal("GetAt round-trip failed")
	}
	if _, ok := tb.GetAt(0, 0); ok {
		t.Fatal("unset entry should report absent")
	}
	cl := tb.Clone()
	cl.SetAt(0, 0, Float(1))
	if tb.Has(0) {
		t.Fatal("Clone is not independent")
	}
	var visited int
	tb.ForEach(func(e int, v Value) { visited++ })
	if visited != 1 {
		t.Fatalf("ForEach visited %d, want 1", visited)
	}
}

func TestValueEqual(t *testing.T) {
	if !Float(1.5).Equal(Float(1.5), Continuous) {
		t.Error("equal floats")
	}
	if Float(1.5).Equal(Float(2), Continuous) {
		t.Error("unequal floats")
	}
	if !Cat(3).Equal(Cat(3), Categorical) {
		t.Error("equal cats")
	}
	if Cat(3).Equal(Cat(4), Categorical) {
		t.Error("unequal cats")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.ObserveFloat("s1", "nyc", "temp", 80.5)
	b.ObserveCat("s1", "nyc", "cond", "partly cloudy")
	b.ObserveFloat("s2", "nyc", "temp", 79)
	b.ObserveCat("s2", "nyc", "cond", "rain")
	b.SetTimestamp("nyc", 17)
	d := b.Build()
	gt := NewTableFor(d)
	gt.SetAt(0, b.MustProperty("temp", Continuous), Float(80))
	gt.SetAt(0, b.MustProperty("cond", Categorical), Cat(b.CatValue(1, "rain")))

	var buf bytes.Buffer
	if err := Encode(&buf, d, gt); err != nil {
		t.Fatal(err)
	}
	d2, gt2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumSources() != 2 || d2.NumObjects() != 1 || d2.NumProps() != 2 {
		t.Fatalf("decoded dims wrong: %d/%d/%d", d2.NumSources(), d2.NumObjects(), d2.NumProps())
	}
	if d2.NumObservations() != d.NumObservations() {
		t.Fatal("observation count changed in round-trip")
	}
	if !d2.HasTimestamps() || d2.Timestamp(0) != 17 {
		t.Fatal("timestamp lost in round-trip")
	}
	if got := d2.Get(0, 0, 0).F; got != 80.5 {
		t.Fatalf("decoded s1 temp = %v", got)
	}
	p := d2.Prop(1)
	id, _ := p.CatID("partly cloudy")
	if got := int(d2.Get(0, 0, 1).C); got != id {
		t.Fatal("decoded categorical value wrong")
	}
	if gt2 == nil || gt2.Count() != 2 {
		t.Fatal("ground truth lost in round-trip")
	}
	v, _ := gt2.GetAt(0, 0)
	if v.F != 80 {
		t.Fatalf("decoded gt temp = %v", v.F)
	}
	if err := d2.Validate(); err != nil {
		t.Fatalf("decoded Validate: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"unknown record", "Z\tx\n"},
		{"bad type", "P\tp\tweird\n"},
		{"undeclared property", "V\to\tp\ts\t1\n"},
		{"bad float", "P\tp\tcontinuous\nV\to\tp\ts\tabc\n"},
		{"bad timestamp", "O\tobj\txyz\n"},
		{"short V", "P\tp\tcontinuous\nV\to\tp\n"},
	}
	for _, c := range cases {
		if _, _, err := Decode(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDecodeIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# hello\n\nP\tp\tcontinuous\nV\to\tp\ts\t1.5\n"
	d, gt, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if gt != nil {
		t.Fatal("no truths expected")
	}
	if d.NumObservations() != 1 || d.Get(0, 0, 0).F != 1.5 {
		t.Fatal("decode with comments failed")
	}
}
