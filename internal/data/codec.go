package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The TSV codec serializes datasets (and optional ground truths) in a
// line-oriented, diff-friendly format:
//
//	# comments and blank lines are ignored
//	P\tname\tcontinuous|categorical     property declaration, order = index
//	O\tobject\ttimestamp                optional timestamp declaration
//	V\tobject\tproperty\tsource\tvalue  one observation
//	T\tobject\tproperty\tvalue          one ground-truth value
//
// Continuous values use strconv float syntax; categorical values are the
// raw strings. Properties must be declared before use so the decoder knows
// how to parse values.

// Encode writes d (and the optional partial ground truth gt, which may be
// nil) to w in the TSV format above.
func Encode(w io.Writer, d *Dataset, gt *Table) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# crh dataset: %d sources, %d objects, %d properties, %d observations\n",
		d.NumSources(), d.NumObjects(), d.NumProps(), d.NumObservations())
	for m := 0; m < d.NumProps(); m++ {
		p := d.Prop(m)
		fmt.Fprintf(bw, "P\t%s\t%s\n", p.Name, p.Type)
	}
	if d.HasTimestamps() {
		for i := 0; i < d.NumObjects(); i++ {
			fmt.Fprintf(bw, "O\t%s\t%d\n", d.ObjectName(i), d.Timestamp(i))
		}
	}
	var err error
	format := func(m int, v Value) string {
		if d.Prop(m).Type == Categorical {
			return d.Prop(m).CatName(int(v.C))
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
	for i := 0; i < d.NumObjects(); i++ {
		for m := 0; m < d.NumProps(); m++ {
			e := d.Entry(i, m)
			d.ForEntry(e, func(k int, v Value) {
				if err != nil {
					return
				}
				_, err = fmt.Fprintf(bw, "V\t%s\t%s\t%s\t%s\n",
					d.ObjectName(i), d.Prop(m).Name, d.SourceName(k), format(m, v))
			})
			if gt != nil {
				if v, ok := gt.Get(e); ok {
					fmt.Fprintf(bw, "T\t%s\t%s\t%s\n", d.ObjectName(i), d.Prop(m).Name, format(m, v))
				}
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode parses the TSV format, returning the dataset and the ground-truth
// table (nil when the input contains no T records).
func Decode(r io.Reader) (*Dataset, *Table, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	type truthRow struct {
		obj, prop int
		val       Value
	}
	var truths []truthRow

	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		fail := func(msg string) error { return fmt.Errorf("data: line %d: %s", lineno, msg) }
		switch f[0] {
		case "P":
			if len(f) != 3 {
				return nil, nil, fail("P record needs 2 fields")
			}
			var t Type
			switch f[2] {
			case "continuous":
				t = Continuous
			case "categorical":
				t = Categorical
			default:
				return nil, nil, fail("unknown property type " + f[2])
			}
			if _, err := b.Property(f[1], t); err != nil {
				return nil, nil, fail(err.Error())
			}
		case "O":
			if len(f) != 3 {
				return nil, nil, fail("O record needs 2 fields")
			}
			ts, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, nil, fail("bad timestamp: " + err.Error())
			}
			b.SetTimestamp(f[1], ts)
		case "V", "T":
			isTruth := f[0] == "T"
			want := 5
			if isTruth {
				want = 4
			}
			if len(f) != want {
				return nil, nil, fail(f[0] + " record has wrong field count")
			}
			pid, ok := b.propByID[f[2]]
			if !ok {
				return nil, nil, fail("property " + f[2] + " not declared")
			}
			raw := f[len(f)-1]
			var v Value
			if b.props[pid].Type == Continuous {
				x, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return nil, nil, fail("bad continuous value: " + err.Error())
				}
				if math.IsNaN(x) || math.IsInf(x, 0) {
					// Mirror Builder.ObserveFloat: non-finite values
					// would poison every weighted aggregate.
					return nil, nil, fail("non-finite continuous value " + raw)
				}
				v = Float(x)
			} else {
				v = Cat(b.CatValue(pid, raw))
			}
			if isTruth {
				truths = append(truths, truthRow{b.Object(f[1]), pid, v})
			} else {
				b.ObserveIdx(b.Source(f[3]), b.Object(f[1]), pid, v)
			}
		default:
			return nil, nil, fail("unknown record type " + f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	d := b.Build()
	var gt *Table
	if len(truths) > 0 {
		gt = NewTableFor(d)
		for _, t := range truths {
			gt.SetAt(t.obj, t.prop, t.val)
		}
	}
	return d, gt, nil
}
