package data

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDataset builds a random mixed-type dataset from a compact
// generator state, for property-based testing.
func randomDataset(seed int64) (*Dataset, *Table) {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	nProps := 1 + rng.Intn(4)
	props := make([]int, nProps)
	for m := 0; m < nProps; m++ {
		if rng.Intn(2) == 0 {
			props[m] = b.MustProperty(fmt.Sprintf("c%d", m), Continuous)
		} else {
			p := b.MustProperty(fmt.Sprintf("k%d", m), Categorical)
			for v := 0; v < 2+rng.Intn(5); v++ {
				b.CatValue(p, fmt.Sprintf("v%d", v))
			}
			props[m] = p
		}
	}
	nObj := 1 + rng.Intn(12)
	nSrc := 1 + rng.Intn(5)
	for i := 0; i < nObj; i++ {
		obj := b.Object(fmt.Sprintf("o%d", i))
		if rng.Intn(2) == 0 {
			b.SetTimestampIdx(obj, rng.Intn(5))
		}
		for k := 0; k < nSrc; k++ {
			src := b.Source(fmt.Sprintf("s%d", k))
			for m := 0; m < nProps; m++ {
				if rng.Float64() < 0.3 {
					continue // missing value
				}
				var v Value
				if b.props[props[m]].Type == Continuous {
					// Values exercising formatting edge cases.
					v = Float(math.Trunc(rng.NormFloat64()*1e6) / 1e3)
				} else {
					v = Cat(rng.Intn(b.props[props[m]].NumCats()))
				}
				b.ObserveIdx(src, obj, props[m], v)
			}
		}
	}
	d := b.Build()
	gt := NewTableFor(d)
	for e := 0; e < d.NumEntries(); e++ {
		if rng.Float64() < 0.4 {
			if d.Prop(d.EntryProp(e)).Type == Continuous {
				gt.Set(e, Float(float64(rng.Intn(100))))
			} else if n := d.Prop(d.EntryProp(e)).NumCats(); n > 0 {
				gt.Set(e, Cat(rng.Intn(n)))
			}
		}
	}
	return d, gt
}

// TestCodecRoundTripQuick: Encode→Decode preserves every observation,
// timestamp, and ground truth for arbitrary datasets.
func TestCodecRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		d, gt := randomDataset(seed)
		var buf bytes.Buffer
		if err := Encode(&buf, d, gt); err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		d2, gt2, err := Decode(&buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		// Sources with no observations carry no information and are not
		// serialized.
		var activeSources int
		for k := 0; k < d.NumSources(); k++ {
			if d.ObservationCount(k) > 0 {
				activeSources++
			}
		}
		if d2.NumSources() != activeSources || d2.NumProps() != d.NumProps() {
			return false
		}
		// Objects that carry no observations and no truths are not
		// serialized, so compare via name lookup.
		name2idx := make(map[string]int)
		for i := 0; i < d2.NumObjects(); i++ {
			name2idx[d2.ObjectName(i)] = i
		}
		src2idx := make(map[string]int)
		for k := 0; k < d2.NumSources(); k++ {
			src2idx[d2.SourceName(k)] = k
		}
		prop2idx := make(map[string]int)
		for m := 0; m < d2.NumProps(); m++ {
			prop2idx[d2.Prop(m).Name] = m
		}
		for e := 0; e < d.NumEntries(); e++ {
			i, m := d.EntryObject(e), d.EntryProp(e)
			ok := true
			d.ForEntry(e, func(k int, v Value) {
				i2, found := name2idx[d.ObjectName(i)]
				if !found {
					ok = false
					return
				}
				m2 := prop2idx[d.Prop(m).Name]
				k2 := src2idx[d.SourceName(k)]
				if !d2.Has(k2, i2, m2) {
					ok = false
					return
				}
				got := d2.Get(k2, i2, m2)
				if d.Prop(m).Type == Continuous {
					if got.F != v.F {
						ok = false
					}
				} else if d2.Prop(m2).CatName(int(got.C)) != d.Prop(m).CatName(int(v.C)) {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		if d.NumObservations() != d2.NumObservations() {
			return false
		}
		wantGT := gt.Count()
		gotGT := 0
		if gt2 != nil {
			gotGT = gt2.Count()
		}
		// Truths on objects that exist in the encoding survive; truths
		// on unobserved objects survive too because T lines create the
		// object. So counts must match exactly.
		return gotGT == wantGT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSlicePartitionQuick: slicing by any predicate and its complement
// partitions the observations exactly.
func TestSlicePartitionQuick(t *testing.T) {
	f := func(seed int64, mask uint32) bool {
		d, _ := randomDataset(seed)
		keep := func(i int) bool { return mask&(1<<(uint(i)%32)) != 0 }
		a := d.Slice(keep)
		b := d.Slice(func(i int) bool { return !keep(i) })
		if a.NumObjects()+b.NumObjects() != d.NumObjects() {
			return false
		}
		if a.NumObservations()+b.NumObservations() != d.NumObservations() {
			return false
		}
		return a.Validate() == nil && b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestObserveFloatRejectsNonFinite(t *testing.T) {
	b := NewBuilder()
	if err := b.ObserveFloat("s", "o", "p", math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := b.ObserveFloat("s", "o", "p", math.Inf(1)); err == nil {
		t.Fatal("+Inf accepted")
	}
	if err := b.ObserveFloat("s", "o", "p", math.Inf(-1)); err == nil {
		t.Fatal("-Inf accepted")
	}
	if err := b.ObserveFloat("s", "o", "p", 1.5); err != nil {
		t.Fatalf("finite value rejected: %v", err)
	}
	// The dataset contains only the accepted observation.
	if got := b.Build().NumObservations(); got != 1 {
		t.Fatalf("observations = %d", got)
	}
}
