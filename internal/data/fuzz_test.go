package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the TSV decoder: arbitrary input must never panic,
// and any input that decodes successfully must survive an
// encode→decode round trip with identical shape.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"P\tp\tcontinuous\nV\to\tp\ts\t1.5\n",
		"P\tp\tcategorical\nV\to\tp\ts\tred\nT\to\tp\tblue\n",
		"P\ta\tcontinuous\nP\tb\tcategorical\nO\tobj\t3\nV\tobj\ta\ts1\t-2.25\nV\tobj\tb\ts2\tx\n",
		"P\tp\tcontinuous\nV\to\tp\ts\tNaN\n",
		"P\tp\tcontinuous\nV\to\tp\ts\t1e400\n",
		"V\to\tp\ts\t1\n",
		"P\tp\tweird\n",
		"Z\tgarbage\n",
		"P\tp\tcontinuous\nV\to\tp\n",
		"O\tobj\tnotanint\n",
		"P\tp\tcategorical\nV\to\tp\ts\t\n",
		"P\t\tcontinuous\nV\to\t\ts\t1\n",
		strings.Repeat("P\tp\tcontinuous\n", 3),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		d, gt, err := Decode(bytes.NewReader(in))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("decoded dataset invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, d, gt); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		d2, gt2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded:\n%s", err, buf.String())
		}
		if d2.NumObservations() != d.NumObservations() {
			t.Fatalf("observations changed: %d -> %d", d.NumObservations(), d2.NumObservations())
		}
		want := 0
		if gt != nil {
			want = gt.Count()
		}
		got := 0
		if gt2 != nil {
			got = gt2.Count()
		}
		if got != want {
			t.Fatalf("ground truths changed: %d -> %d", want, got)
		}
	})
}
