package data

// Table holds at most one value per entry of a Dataset: the inferred truths
// produced by a conflict-resolution method, or the (possibly partial) ground
// truths used in evaluation. Entries are addressed by the owning Dataset's
// flattened entry index.
type Table struct {
	// M is the number of properties of the owning dataset, kept so a
	// Table can translate (object, property) pairs on its own.
	M    int
	vals []Value
	set  []bool
}

// NewTable returns an empty table for a dataset with n objects and m
// properties.
func NewTable(n, m int) *Table {
	return &Table{M: m, vals: make([]Value, n*m), set: make([]bool, n*m)}
}

// NewTableFor returns an empty table shaped like d.
func NewTableFor(d *Dataset) *Table { return NewTable(d.NumObjects(), d.NumProps()) }

// Len returns the number of addressable entries (N*M).
func (t *Table) Len() int { return len(t.vals) }

// Count returns the number of entries holding a value.
func (t *Table) Count() int {
	var n int
	for _, s := range t.set {
		if s {
			n++
		}
	}
	return n
}

// Set stores a value for entry e.
func (t *Table) Set(e int, v Value) {
	t.vals[e] = v
	t.set[e] = true
}

// SetAt stores a value for entry (i, m).
func (t *Table) SetAt(i, m int, v Value) { t.Set(i*t.M+m, v) }

// Get returns the value for entry e and whether one is present.
func (t *Table) Get(e int) (Value, bool) { return t.vals[e], t.set[e] }

// GetAt returns the value for entry (i, m) and whether one is present.
func (t *Table) GetAt(i, m int) (Value, bool) { return t.Get(i*t.M + m) }

// Has reports whether entry e holds a value.
func (t *Table) Has(e int) bool { return t.set[e] }

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	return &Table{
		M:    t.M,
		vals: append([]Value(nil), t.vals...),
		set:  append([]bool(nil), t.set...),
	}
}

// ForEach calls fn for every set entry in ascending entry order.
func (t *Table) ForEach(fn func(e int, v Value)) {
	for e, s := range t.set {
		if s {
			fn(e, t.vals[e])
		}
	}
}
