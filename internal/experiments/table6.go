package experiments

import (
	"fmt"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/mapreduce"
	"github.com/crhkit/crh/internal/stats"
	"github.com/crhkit/crh/internal/synth"
)

// scalabilityDataset builds an Adult-based simulation with approximately
// the requested number of observations by solving rows × props × sources =
// observations, as in Section 3.4 ("based on the Adult data set, we
// generate large-scale data sets ... the number of observations is the
// product of the number of entries and the number of sources").
func scalabilityDataset(observations, sources int, seedOffset int64) (*data.Dataset, *data.Table) {
	rows := observations / (14 * sources)
	if rows < 1 {
		rows = 1
	}
	profiles := make([]synth.SourceProfile, sources)
	gammas := synth.PaperGammas()
	for k := range profiles {
		profiles[k] = synth.SourceProfile{Name: fmt.Sprintf("src%03d", k), Gamma: gammas[k%len(gammas)]}
	}
	return synth.Adult(synth.UCIConfig{Seed: seed + 20 + seedOffset, Rows: rows, Profiles: profiles})
}

// runParallelMeasured executes parallel CRH and returns the result.
func runParallelMeasured(d *data.Dataset, reducers int) *mapreduce.ParallelResult {
	res, err := mapreduce.RunParallel(d, mapreduce.ParallelConfig{
		Core:             core.Config{MaxIters: 5, Tol: -1},
		Reducers:         reducers,
		DisableEarlyStop: true, // fixed job count so runtimes are comparable across workloads
	})
	if err != nil {
		panic(err)
	}
	return res
}

// modelStats fabricates the job statistics a fusion over n observations
// with the given source count would produce, for sizes too large to
// materialize in memory: per iteration, the truth job shuffles every tuple
// (no combiner applies) and the weight job's combiner collapses the
// shuffle to one pair per (mapper, source, property).
func modelStats(observations, sources, props, reducers, iterations, mappers int) []*mapreduce.Stats {
	var jobs []*mapreduce.Stats
	for i := 0; i < iterations; i++ {
		jobs = append(jobs, &mapreduce.Stats{
			Name: "truth", InputRecords: observations, MapOutput: observations,
			ShuffledPairs: observations, Mappers: mappers, Reducers: reducers,
		})
		jobs = append(jobs, &mapreduce.Stats{
			Name: "weight", InputRecords: observations, MapOutput: observations,
			ShuffledPairs: mappers * sources * props, Mappers: mappers, Reducers: reducers,
		})
	}
	return jobs
}

// Table6 reproduces Table 6: parallel CRH running time on a (modeled)
// Hadoop cluster as the number of observations grows from 10⁴ to 4×10⁸,
// plus the Pearson correlation between observations and running time.
// Sizes that fit in memory are actually executed on the in-process engine
// (reporting measured wall time alongside); larger sizes use the cost
// model with analytically derived job statistics.
func Table6(s Scale) *Report {
	r := &Report{ID: "table6", Caption: "Running time on (modeled) Hadoop cluster"}
	t := &TextTable{Header: []string{"# Observations", "Cluster time (s)", "Engine wall (s)", "Mode"}}
	model := mapreduce.DefaultCluster()

	execLimit := 2_000_000
	if s == ScaleFull {
		execLimit = 12_000_000
	}
	sizes := []int{1e4, 1e5, 1e6, 1e7, 1e8, 4e8}
	const reducers, iterations, mappers = 10, 5, 8

	var obsSeries, timeSeries []float64
	for i, n := range sizes {
		var clusterSec float64
		wall := "-"
		mode := "modeled"
		if n <= execLimit {
			d, _ := scalabilityDataset(n, 8, int64(i))
			res := runParallelMeasured(d, reducers)
			clusterSec = model.Estimate(res.Jobs).Seconds()
			wall = fsec(res.WallTime.Seconds())
			mode = "executed"
		} else {
			jobs := modelStats(n, 8, 14, reducers, iterations, mappers)
			clusterSec = model.Estimate(jobs).Seconds()
		}
		t.AddRow(fmt.Sprintf("%.0e", float64(n)), fmt.Sprintf("%.0f", clusterSec), wall, mode)
		obsSeries = append(obsSeries, float64(n))
		timeSeries = append(timeSeries, clusterSec)
	}
	t.AddRow("Pearson Correlation", fmt.Sprintf("%.4f", stats.Pearson(obsSeries, timeSeries)), "", "")
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"expected shape (paper Table 6): setup overhead dominates small inputs (flat ≈",
		"constant region), then time grows linearly; Pearson ≈ 0.98")
	return r
}

// Fig7 reproduces Figure 7: running time w.r.t. the number of entries
// (sources fixed at 8) and w.r.t. the number of sources (entries fixed).
func Fig7(s Scale) *Report {
	r := &Report{ID: "fig7", Caption: "Running time w.r.t. number of observations"}
	model := mapreduce.DefaultCluster()
	const reducers = 10

	scale := 1
	if s == ScaleFull {
		scale = 4
	}

	byEntries := &TextTable{Title: "(a) sources fixed (8), entries varying", Header: []string{"Entries", "Observations", "Cluster time (s)", "Engine wall (s)"}}
	for _, rows := range []int{500 * scale, 1000 * scale, 2000 * scale, 4000 * scale} {
		d, _ := scalabilityDataset(rows*14*8, 8, int64(rows))
		res := runParallelMeasured(d, reducers)
		byEntries.AddRow(fmt.Sprint(d.NumEntries()), fmt.Sprint(d.NumObservations()),
			fmt.Sprintf("%.0f", model.Estimate(res.Jobs).Seconds()), fsec(res.WallTime.Seconds()))
	}
	bySources := &TextTable{Title: "(b) entries fixed, sources varying", Header: []string{"Sources", "Observations", "Cluster time (s)", "Engine wall (s)"}}
	for _, k := range []int{4, 8, 16, 32} {
		d, _ := scalabilityDataset(1000*scale*14*k, k, int64(100+k))
		res := runParallelMeasured(d, reducers)
		bySources.AddRow(fmt.Sprint(k), fmt.Sprint(d.NumObservations()),
			fmt.Sprintf("%.0f", model.Estimate(res.Jobs).Seconds()), fsec(res.WallTime.Seconds()))
	}
	// At locally-executable sizes the cluster estimate is overhead-
	// dominated (its linearity shows in the engine wall times); the
	// modeled series below repeats both sweeps at the paper's scale,
	// where the linear growth dominates the overhead.
	modeled := &TextTable{Title: "(c) modeled at paper scale (10 jobs, 10 reducers)", Header: []string{"Sweep", "Observations", "Cluster time (s)"}}
	for _, n := range []int{5e7, 1e8, 2e8, 4e8} {
		jobs := modelStats(n, 8, 14, reducers, 5, 8)
		modeled.AddRow("entries (8 sources)", fmt.Sprint(n), fmt.Sprintf("%.0f", model.Estimate(jobs).Seconds()))
	}
	for _, k := range []int{4, 8, 16, 32} {
		n := 3_500_000 * k // 3.5M entries fixed
		jobs := modelStats(n, k, 14, reducers, 5, 8)
		modeled.AddRow("sources (3.5M entries)", fmt.Sprint(n), fmt.Sprintf("%.0f", model.Estimate(jobs).Seconds()))
	}
	r.Tables = append(r.Tables, byEntries, bySources, modeled)
	r.Notes = append(r.Notes,
		"expected shape (paper Fig 7): running time linear in entries with sources fixed,",
		"and linear in sources with entries fixed (visible in the engine wall times and",
		"the paper-scale modeled series; small executed workloads are overhead-dominated)")
	return r
}

// Fig8 reproduces Figure 8: running time w.r.t. the number of reducers at
// a fixed workload — non-monotone, with an interior optimum (the paper
// observes the best performance at 10 reducers and a slowdown at 25).
func Fig8(s Scale) *Report {
	r := &Report{ID: "fig8", Caption: "Running time w.r.t. number of reducers"}
	model := mapreduce.DefaultCluster()
	rows := 2000
	if s == ScaleFull {
		rows = 20000
	}
	t := &TextTable{Header: []string{"Reducers", "Cluster time (s)", "Engine wall (s)"}}
	d, _ := scalabilityDataset(rows*14*8, 8, 777)
	for _, reducers := range []int{2, 5, 10, 15, 20, 25} {
		res := runParallelMeasured(d, reducers)
		// The modeled time uses the paper's fixed 4×10⁸ workload so the
		// launch-overhead/parallelism tradeoff is visible at scale.
		jobs := modelStats(4e8, 8, 14, reducers, 5, 8)
		t.AddRow(fmt.Sprint(reducers), fmt.Sprintf("%.0f", model.Estimate(jobs).Seconds()), fsec(res.WallTime.Seconds()))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"expected shape (paper Fig 8): more reducers help until ≈10, then per-reducer",
		"startup overhead outweighs the extra parallelism (25 reducers slower than 10)")
	return r
}
