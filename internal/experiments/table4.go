package experiments

import (
	"fmt"

	"github.com/crhkit/crh/internal/data"
)

// Table3 reproduces Table 3: statistics of the two simulated data sets.
func Table3(s Scale) *Report {
	r := &Report{ID: "table3", Caption: "Statistics of simulated data sets (Adult / Bank)"}
	t := &TextTable{Header: []string{"", "Adult Data", "Bank Data"}}
	type stats struct{ obs, entries, truths int }
	var cols []stats
	for _, build := range []func(Scale) (*data.Dataset, *data.Table){AdultData, BankData} {
		d, gt := build(s)
		cols = append(cols, stats{d.NumObservations(), d.NumEntries(), gt.Count()})
	}
	t.AddRow("# Observations", fmt.Sprint(cols[0].obs), fmt.Sprint(cols[1].obs))
	t.AddRow("# Entries", fmt.Sprint(cols[0].entries), fmt.Sprint(cols[1].entries))
	t.AddRow("# Ground Truths", fmt.Sprint(cols[0].truths), fmt.Sprint(cols[1].truths))
	r.Tables = append(r.Tables, t)
	if s != ScaleFull {
		r.Notes = append(r.Notes, "small scale; -scale full reproduces Table 3 exactly: 3,646,832/455,854 and 5,787,008/723,376")
	}
	return r
}

// Table4 reproduces Table 4: Error Rate and MNAD for all methods on the
// Adult and Bank simulations (8 sources, γ = 0.1 … 2).
func Table4(s Scale) *Report {
	r := &Report{ID: "table4", Caption: "Performance comparison on simulated data sets"}
	t := &TextTable{Header: []string{"Method", "Adult ErrorRate", "Adult MNAD", "Bank ErrorRate", "Bank MNAD"}}

	type ds struct {
		d  *data.Dataset
		gt *data.Table
	}
	var sets []ds
	for _, build := range []func(Scale) (*data.Dataset, *data.Table){AdultData, BankData} {
		d, gt := build(s)
		sets = append(sets, ds{d, gt})
	}
	for _, m := range Methods() {
		row := []string{m.Name()}
		for _, set := range sets {
			run := RunMethod(m, set.d, set.gt)
			row = append(row, fnum(run.Metrics.ErrorRate), fnum(run.Metrics.MNAD))
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"expected shape (paper Table 4): CRH near-zero error rate and smallest MNAD;",
		"PooledInvestment the strongest fact finder; Mean the weakest continuous aggregate")
	return r
}
