package experiments

import (
	"fmt"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/eval"
)

// Fig1 reproduces Figure 1: estimated source-reliability degrees on the
// weather data set compared against the ground-truth reliability, for CRH
// (Fig 1a) and the strongest baselines (GTM, AccuSim, 3-Estimates,
// PooledInvestment; Figs 1b-1c). All scores are normalized to [0, 1] as in
// the paper; 3-Estimates and GTM natively estimate unreliability /
// precision and are already converted to reliability orientation by their
// implementations.
func Fig1(s Scale) *Report {
	r := &Report{ID: "fig1", Caption: "Source reliability degrees vs ground truth (weather, 9 sources)"}
	d, gt := WeatherData(s)
	trueRel := eval.NormalizeScores(eval.TrueReliability(d, gt))

	methods := []baseline.Method{
		CRH{}, baseline.GTM{}, baseline.AccuSim{}, baseline.ThreeEstimates{}, baseline.PooledInvestment{},
	}
	header := []string{"Source", "GroundTruth"}
	for _, m := range methods {
		header = append(header, m.Name())
	}
	t := &TextTable{Title: "normalized reliability scores", Header: header}

	scores := make([][]float64, len(methods))
	for i, m := range methods {
		_, rel := m.Resolve(d)
		scores[i] = eval.NormalizeScores(rel)
	}
	for k := 0; k < d.NumSources(); k++ {
		row := []string{d.SourceName(k), fnum(trueRel[k])}
		for i := range methods {
			row = append(row, fnum(scores[i][k]))
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)

	corr := &TextTable{Title: "Pearson correlation with ground-truth reliability", Header: []string{"Method", "Correlation"}}
	for i, m := range methods {
		corr.AddRow(m.Name(), fmt.Sprintf("%.4f", eval.Correlation(scores[i], trueRel)))
	}
	r.Tables = append(r.Tables, corr)
	r.Notes = append(r.Notes,
		"expected shape (paper Fig 1): CRH's estimates track the ground truth closely;",
		"baselines capture some ordering but less consistently")
	return r
}
