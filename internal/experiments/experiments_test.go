package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{
		"table1", "table2", "fig1", "table3", "table4", "fig2", "fig3",
		"table5", "fig4", "fig5", "fig6", "table6", "fig7", "fig8",
		"ext-longtail", "ext-copycat", "ext-groups",
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for _, id := range want {
		e, ok := reg[id]
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		if e.ID != id || e.Caption == "" || e.Run == nil {
			t.Fatalf("experiment %s malformed: %+v", id, e)
		}
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatal("IDs() incomplete")
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs()[%d] = %s, want %s (presentation order)", i, ids[i], id)
		}
	}
}

func TestMethodsRoster(t *testing.T) {
	ms := Methods()
	if len(ms) != 11 {
		t.Fatalf("roster has %d methods, want CRH + 10 baselines", len(ms))
	}
	if ms[0].Name() != "CRH" {
		t.Fatal("CRH must lead the roster")
	}
}

func TestCRHMethodWrapper(t *testing.T) {
	d, gt := WeatherData(ScaleSmall)
	truths, rel := CRH{}.Resolve(d)
	if truths == nil || len(rel) != d.NumSources() {
		t.Fatal("CRH wrapper broken")
	}
	m := eval.Evaluate(d, truths, gt)
	if math.IsNaN(m.ErrorRate) || m.ErrorRate > 0.6 {
		t.Fatalf("CRH error rate = %v", m.ErrorRate)
	}
}

func TestRunMethodMeasures(t *testing.T) {
	d, gt := WeatherData(ScaleSmall)
	run := RunMethod(baseline.Voting{}, d, gt)
	if run.Method != "Voting" {
		t.Fatal("method name")
	}
	if run.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
	if math.IsNaN(run.Metrics.ErrorRate) {
		t.Fatal("voting should produce an error rate on weather")
	}
}

// TestTable2Shape asserts the headline result: CRH is the best or within
// noise of the best method on every data set and both measures.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds")
	}
	for _, set := range []struct {
		name  string
		build func(Scale) (*data.Dataset, *data.Table)
		slack float64 // tolerated gap to the best baseline
	}{
		{"weather", WeatherData, 0.01},
		{"stock", StockData, 0.015},
		{"flight", FlightData, 0.01},
	} {
		d, gt := set.build(ScaleSmall)
		crhRun := RunMethod(CRH{}, d, gt)
		for _, m := range baseline.All() {
			run := RunMethod(m, d, gt)
			if !math.IsNaN(run.Metrics.ErrorRate) &&
				run.Metrics.ErrorRate+set.slack < crhRun.Metrics.ErrorRate {
				t.Errorf("%s: %s error rate %.4f clearly beats CRH %.4f",
					set.name, m.Name(), run.Metrics.ErrorRate, crhRun.Metrics.ErrorRate)
			}
			if !math.IsNaN(run.Metrics.MNAD) &&
				run.Metrics.MNAD*1.05+0.01 < crhRun.Metrics.MNAD {
				t.Errorf("%s: %s MNAD %.4f clearly beats CRH %.4f",
					set.name, m.Name(), run.Metrics.MNAD, crhRun.Metrics.MNAD)
			}
		}
		// And CRH must clearly beat the unweighted strategies.
		voting := RunMethod(baseline.Voting{}, d, gt)
		if !(crhRun.Metrics.ErrorRate < voting.Metrics.ErrorRate) {
			t.Errorf("%s: CRH %.4f should beat voting %.4f", set.name, crhRun.Metrics.ErrorRate, voting.Metrics.ErrorRate)
		}
		mean := RunMethod(baseline.Mean{}, d, gt)
		if !(crhRun.Metrics.MNAD < mean.Metrics.MNAD) {
			t.Errorf("%s: CRH MNAD %.4f should beat mean %.4f", set.name, crhRun.Metrics.MNAD, mean.Metrics.MNAD)
		}
	}
}

func TestTextTableRender(t *testing.T) {
	tt := &TextTable{
		Title:  "demo",
		Header: []string{"a", "long-header"},
	}
	tt.AddRow("1", "2")
	tt.AddRow("wide-cell", "3")
	var buf bytes.Buffer
	tt.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	// Columns align: the second column starts at the same offset in the
	// header and both rows.
	off := strings.Index(lines[1], "long-header")
	if strings.Index(lines[4], "3") != off {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "x", Caption: "cap", Notes: []string{"n1"}}
	tt := &TextTable{Header: []string{"h"}}
	tt.AddRow("v")
	r.Tables = append(r.Tables, tt)
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: cap ==", "note: n1", "h", "v"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestFnum(t *testing.T) {
	if fnum(math.NaN()) != "NA" {
		t.Fatal("NaN should render as NA")
	}
	if fnum(0.12345) != "0.1235" {
		t.Fatalf("fnum = %s", fnum(0.12345))
	}
}

func TestScalabilityDataset(t *testing.T) {
	for _, k := range []int{4, 8, 16} {
		d, gt := scalabilityDataset(14*100*k, k, 1)
		if d.NumSources() != k {
			t.Fatalf("sources = %d, want %d", d.NumSources(), k)
		}
		if d.NumObservations() != 14*100*k {
			t.Fatalf("observations = %d, want %d", d.NumObservations(), 14*100*k)
		}
		if gt.Count() == 0 {
			t.Fatal("no ground truth")
		}
	}
}

func TestModelStats(t *testing.T) {
	jobs := modelStats(1000, 8, 14, 10, 5, 4)
	if len(jobs) != 10 {
		t.Fatalf("%d jobs, want 10 (5 iterations × 2)", len(jobs))
	}
	for i, j := range jobs {
		if j.InputRecords != 1000 || j.Reducers != 10 {
			t.Fatalf("job %d stats wrong: %+v", i, j)
		}
		if i%2 == 0 && j.ShuffledPairs != 1000 {
			t.Fatal("truth job should shuffle every tuple")
		}
		if i%2 == 1 && j.ShuffledPairs != 4*8*14 {
			t.Fatal("weight job shuffle should be combiner-collapsed")
		}
	}
}

// TestDataScales spot-checks that small and full scales differ.
func TestDataScales(t *testing.T) {
	small, _ := AdultData(ScaleSmall)
	if small.NumObjects() != 2000 {
		t.Fatalf("small adult rows = %d", small.NumObjects())
	}
	// Full-scale is only constructed lazily by crhbench -scale full;
	// here just verify the configured row constants via entry math.
	if got := strconv.Itoa(small.NumEntries()); got != "28000" {
		t.Fatalf("small adult entries = %s", got)
	}
}

// TestAllExperimentsSmoke runs every registered experiment (paper
// artifacts and extensions) once at small scale: each must complete,
// produce at least one table with rows, and render without panicking.
// This is the harness's end-to-end guarantee; the per-experiment shape
// assertions live in the focused tests above and in EXPERIMENTS.md.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite (~1 minute)")
	}
	reg := Registry()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep := reg[id].Run(ScaleSmall)
			if rep.ID != id {
				t.Fatalf("report ID %q", rep.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables")
			}
			for ti, tab := range rep.Tables {
				if len(tab.Header) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("table %d empty", ti)
				}
				for _, row := range tab.Rows {
					if len(row) > len(tab.Header) {
						t.Fatalf("table %d row wider than header", ti)
					}
				}
			}
			var buf bytes.Buffer
			rep.Render(&buf)
			if buf.Len() == 0 {
				t.Fatal("rendered nothing")
			}
		})
	}
}
