package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Report is one experiment's output: a caption, one or more text tables,
// and free-form notes comparing the result to the paper.
type Report struct {
	ID      string // e.g., "table2", "fig5"
	Caption string
	Tables  []*TextTable
	Notes   []string
}

// Render writes the report in a monospace layout.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Caption)
	for _, t := range r.Tables {
		fmt.Fprintln(w)
		t.Render(w)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	fmt.Fprintln(w)
}

// TextTable is a simple aligned text table.
type TextTable struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *TextTable) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *TextTable) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "-- %s --\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// fnum formats a metric, rendering NaN as the paper's "NA".
func fnum(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	return fmt.Sprintf("%.4f", v)
}

// fsec formats a duration in seconds with paper-style precision.
func fsec(sec float64) string { return fmt.Sprintf("%.3f", sec) }
