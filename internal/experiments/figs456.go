package experiments

import (
	"fmt"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/stream"
	"github.com/crhkit/crh/internal/synth"
)

// Fig4 reproduces Figure 4: (a) the per-timestamp trajectory of each
// source's I-CRH weight on the weather data, and (b) I-CRH's weights at
// the first and sixth timestamps compared against batch CRH's weights.
func Fig4(s Scale) *Report {
	r := &Report{ID: "fig4", Caption: "Source reliability degree comparison (I-CRH vs CRH, weather)"}
	d, _ := WeatherData(s)

	inc, err := stream.Run(d, 1, stream.Config{})
	if err != nil {
		panic(err)
	}
	batch, err := core.Run(d, core.Config{})
	if err != nil {
		panic(err)
	}

	// (a) weight trajectories: one row per timestamp.
	header := []string{"t"}
	for k := 0; k < d.NumSources(); k++ {
		header = append(header, d.SourceName(k))
	}
	traj := &TextTable{Title: "(a) I-CRH source weights per timestamp", Header: header}
	for ti, ws := range inc.History {
		row := []string{fmt.Sprint(ti + 1)}
		for _, w := range ws {
			row = append(row, fmt.Sprintf("%.3f", w))
		}
		traj.AddRow(row...)
	}
	r.Tables = append(r.Tables, traj)

	// (b) comparison at t=1 and t=6 against batch CRH, normalized.
	comp := &TextTable{Title: "(b) normalized weights: I-CRH t=1, t=6 vs CRH", Header: []string{"Source", "I-CRH t=1", "I-CRH t=6", "CRH"}}
	w1 := eval.NormalizeScores(inc.History[0])
	w6 := eval.NormalizeScores(inc.History[min(5, len(inc.History)-1)])
	wb := eval.NormalizeScores(batch.Weights)
	for k := 0; k < d.NumSources(); k++ {
		comp.AddRow(d.SourceName(k), fnum(w1[k]), fnum(w6[k]), fnum(wb[k]))
	}
	r.Tables = append(r.Tables, comp)

	corr := &TextTable{Title: "correlation of I-CRH weights with CRH", Header: []string{"Timestamp", "Pearson"}}
	corr.AddRow("t=1", fmt.Sprintf("%.4f", stream.WeightCorrelation(inc.History[0], batch.Weights)))
	corr.AddRow("t=6", fmt.Sprintf("%.4f", stream.WeightCorrelation(inc.History[min(5, len(inc.History)-1)], batch.Weights)))
	corr.AddRow("final", fmt.Sprintf("%.4f", stream.WeightCorrelation(inc.Weights, batch.Weights)))
	r.Tables = append(r.Tables, corr)
	r.Notes = append(r.Notes,
		"expected shape (paper Fig 4): weights stabilize after a few timestamps and",
		"converge to the batch CRH estimates")
	return r
}

// Fig5 reproduces Figure 5: Error Rate and MNAD of I-CRH as the time
// window (chunk size) varies. The crawl is timestamped at sub-day
// granularity (one slot per city) so the small-window regime — too little
// data per chunk for accurate weights — is visible, as in the paper.
func Fig5(Scale) *Report {
	r := &Report{ID: "fig5", Caption: "Error rate and MNAD w.r.t. time window (weather)"}
	const perDay = 20 // one timestamp slot per city
	d, gt := synth.Weather(synth.WeatherConfig{Seed: seed, TimestampsPerDay: perDay})
	t := &TextTable{Header: []string{"Window (days)", "ErrorRate", "MNAD", "Chunks"}}
	for _, window := range []int{1, 2, 5, 10, 20, 80, 320} {
		res, err := stream.Run(d, window, stream.Config{})
		if err != nil {
			panic(err)
		}
		m := eval.Evaluate(d, res.Truths, gt)
		t.AddRow(fmt.Sprintf("%.2f", float64(window)/perDay), fnum(m.ErrorRate), fnum(m.MNAD), fmt.Sprint(res.ChunkCount))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"expected shape (paper Fig 5): high error with tiny windows (too little data per",
		"chunk to estimate weights), then mostly steady once chunks are big enough")
	return r
}

// Fig6 reproduces Figure 6: Error Rate and MNAD of I-CRH as the decay
// rate α varies.
func Fig6(s Scale) *Report {
	r := &Report{ID: "fig6", Caption: "Error rate and MNAD w.r.t. decay rate α (weather)"}
	d, gt := WeatherData(s)
	t := &TextTable{Header: []string{"Decay α", "ErrorRate", "MNAD"}}
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		res, err := stream.Run(d, 1, stream.Config{Decay: alpha, DecaySet: true})
		if err != nil {
			panic(err)
		}
		m := eval.Evaluate(d, res.Truths, gt)
		t.AddRow(fmt.Sprintf("%.1f", alpha), fnum(m.ErrorRate), fnum(m.MNAD))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "expected shape (paper Fig 6): performance insensitive to α")
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
