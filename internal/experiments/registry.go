package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a regenerable table or figure.
type Experiment struct {
	ID      string
	Caption string
	Run     func(Scale) *Report
}

// Registry returns all experiments keyed by ID.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{"table1", "Statistics of real-world data sets", Table1},
		{"table2", "Performance comparison on real-world data sets", Table2},
		{"fig1", "Source reliability vs ground truth (weather)", Fig1},
		{"table3", "Statistics of simulated data sets", Table3},
		{"table4", "Performance comparison on simulated data sets", Table4},
		{"fig2", "Performance w.r.t. # reliable sources (Adult)", Fig2},
		{"fig3", "Performance w.r.t. # reliable sources (Bank)", Fig3},
		{"table5", "CRH vs I-CRH", Table5},
		{"fig4", "I-CRH weight trajectories vs CRH", Fig4},
		{"fig5", "I-CRH w.r.t. time window", Fig5},
		{"fig6", "I-CRH w.r.t. decay rate", Fig6},
		{"table6", "Parallel CRH running time vs observations", Table6},
		{"fig7", "Parallel CRH running time vs entries/sources", Fig7},
		{"fig8", "Parallel CRH running time vs reducers", Fig8},
		// Extension experiments: features the paper discusses or defers
		// but does not evaluate.
		{"ext-longtail", "[extension] CATD confidence-aware weights on long-tail data", ExtLongTail},
		{"ext-copycat", "[extension] AccuCopy source-dependence detection", ExtCopycat},
		{"ext-groups", "[extension] Per-property source weights", ExtGroups},
	}
	m := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		m[e.ID] = e
	}
	return m
}

// IDs returns the experiment IDs in presentation order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

// orderKey sorts tables and figures in the paper's presentation order.
func orderKey(id string) string {
	order := map[string]string{
		"table1": "01", "table2": "02", "fig1": "03", "table3": "04",
		"table4": "05", "fig2": "06", "fig3": "07", "table5": "08",
		"fig4": "09", "fig5": "10", "fig6": "11", "table6": "12",
		"fig7": "13", "fig8": "14",
		"ext-longtail": "20", "ext-copycat": "21", "ext-groups": "22",
	}
	if k, ok := order[id]; ok {
		return k
	}
	return "99" + id
}

// RunAll executes every experiment at the given scale, rendering each
// report to w as it completes.
func RunAll(s Scale, w io.Writer) {
	reg := Registry()
	for _, id := range IDs() {
		fmt.Fprintf(w, ">>> running %s ...\n", id)
		reg[id].Run(s).Render(w)
	}
}
