package experiments

import (
	"fmt"

	"github.com/crhkit/crh/internal/data"
)

// Table1 reproduces Table 1: statistics of the three real-world-equivalent
// data sets.
func Table1(s Scale) *Report {
	r := &Report{ID: "table1", Caption: "Statistics of real-world-equivalent data sets"}
	t := &TextTable{Header: []string{"", "Weather Data", "Stock Data", "Flight Data"}}
	type stats struct{ obs, entries, truths int }
	var cols []stats
	for _, build := range []func(Scale) (*data.Dataset, *data.Table){WeatherData, StockData, FlightData} {
		d, gt := build(s)
		cols = append(cols, stats{d.NumObservations(), d.NumEntries(), gt.Count()})
	}
	t.AddRow("# Observations", fmt.Sprint(cols[0].obs), fmt.Sprint(cols[1].obs), fmt.Sprint(cols[2].obs))
	t.AddRow("# Entries", fmt.Sprint(cols[0].entries), fmt.Sprint(cols[1].entries), fmt.Sprint(cols[2].entries))
	t.AddRow("# Ground Truths", fmt.Sprint(cols[0].truths), fmt.Sprint(cols[1].truths), fmt.Sprint(cols[2].truths))
	r.Tables = append(r.Tables, t)
	if s != ScaleFull {
		r.Notes = append(r.Notes, "small scale; run with -scale full for Table 1 sizes (16,038 / 11.7M / 2.8M observations)")
	}
	return r
}

// Table2 reproduces Table 2: Error Rate (categorical) and MNAD
// (continuous) for CRH and all ten baselines on the weather, stock and
// flight data sets.
func Table2(s Scale) *Report {
	r := &Report{ID: "table2", Caption: "Performance comparison on real-world-equivalent data sets"}
	t := &TextTable{Header: []string{"Method",
		"Weather ErrorRate", "Weather MNAD",
		"Stock ErrorRate", "Stock MNAD",
		"Flight ErrorRate", "Flight MNAD"}}

	type ds struct {
		d  *data.Dataset
		gt *data.Table
	}
	var sets []ds
	for _, build := range []func(Scale) (*data.Dataset, *data.Table){WeatherData, StockData, FlightData} {
		d, gt := build(s)
		sets = append(sets, ds{d, gt})
	}
	for _, m := range Methods() {
		row := []string{m.Name()}
		for _, set := range sets {
			run := RunMethod(m, set.d, set.gt)
			row = append(row, fnum(run.Metrics.ErrorRate), fnum(run.Metrics.MNAD))
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"expected shape (paper Table 2): CRH lowest on both measures on every data set;",
		"single-type methods (Mean/Median/GTM/Voting) leave the other type NA;",
		"fact finders do better on categorical than continuous data, where treating values as facts hurts")
	return r
}
