package experiments

import (
	"fmt"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/synth"
)

// reliableSweep generates the Figure 2/3 workload: 8 sources total, the
// first nReliable with γ = 0.1 and the rest with γ = 2, over the given
// UCI-style schema.
func reliableSweep(schema synth.Schema, rows, nReliable int, seedOffset int64) (*data.Dataset, *data.Table) {
	profiles := make([]synth.SourceProfile, 8)
	for k := range profiles {
		g := 2.0
		if k < nReliable {
			g = 0.1
		}
		profiles[k] = synth.SourceProfile{Name: fmt.Sprintf("src%d-g%.1f", k, g), Gamma: g}
	}
	w := synth.GenerateWorld(schema, rows, seed+10+seedOffset)
	return synth.Corrupt(w, profiles, synth.CorruptConfig{Seed: seed + 11 + seedOffset})
}

// figMethods is the method roster plotted in Figures 2 and 3.
func figMethods() []baseline.Method {
	return []baseline.Method{
		CRH{}, baseline.Voting{}, baseline.Mean{}, baseline.Median{}, baseline.GTM{},
		baseline.PooledInvestment{}, baseline.AccuSim{}, baseline.TruthFinder{},
	}
}

// Fig2 reproduces Figure 2: Error Rate and MNAD as the number of reliable
// sources varies from 0 to 8 (of 8) on the Adult simulation.
func Fig2(s Scale) *Report { return reliableFigure("fig2", "adult", synth.AdultSchema(), s, 0) }

// Fig3 reproduces Figure 3 (same sweep on the Bank simulation).
func Fig3(s Scale) *Report { return reliableFigure("fig3", "bank", synth.BankSchema(), s, 100) }

func reliableFigure(id, name string, schema synth.Schema, s Scale, seedOffset int64) *Report {
	rows := 1000
	if s == ScaleFull {
		rows = 10000
	}
	r := &Report{ID: id, Caption: fmt.Sprintf("Performance w.r.t. # reliable sources (%s data set)", name)}
	methods := figMethods()

	header := []string{"#Reliable"}
	for _, m := range methods {
		header = append(header, m.Name())
	}
	errT := &TextTable{Title: "Error Rate (categorical)", Header: header}
	nadT := &TextTable{Title: "MNAD (continuous)", Header: header}

	for nRel := 0; nRel <= 8; nRel++ {
		d, gt := reliableSweep(schema, rows, nRel, seedOffset+int64(nRel))
		errRow := []string{fmt.Sprint(nRel)}
		nadRow := []string{fmt.Sprint(nRel)}
		for _, m := range methods {
			run := RunMethod(m, d, gt)
			errRow = append(errRow, fnum(run.Metrics.ErrorRate))
			nadRow = append(nadRow, fnum(run.Metrics.MNAD))
		}
		errT.AddRow(errRow...)
		nadT.AddRow(nadRow...)
	}
	r.Tables = append(r.Tables, errT, nadT)
	r.Notes = append(r.Notes,
		"expected shape (paper Figs 2-3): CRH ≈ voting/averaging at 0 and 8 reliable sources,",
		"far better in between; with even 1 reliable source CRH recovers most categorical truths;",
		"continuous convergence with #reliable sources is slower than categorical")
	return r
}
