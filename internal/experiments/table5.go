package experiments

import (
	"time"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/stream"
)

// Table5 reproduces Table 5: CRH vs incremental CRH (I-CRH) on Error Rate,
// MNAD and running time over the three real-world-equivalent data sets.
// I-CRH consumes the data day by day (window = 1 timestamp).
func Table5(s Scale) *Report {
	r := &Report{ID: "table5", Caption: "Performance comparison of CRH and I-CRH"}
	t := &TextTable{Header: []string{"Dataset", "Method", "ErrorRate", "MNAD", "Time (s)"}}

	sets := []struct {
		name  string
		build func(Scale) (*data.Dataset, *data.Table)
	}{
		{"weather", WeatherData},
		{"stock", StockData},
		{"flight", FlightData},
	}
	for _, set := range sets {
		d, gt := set.build(s)

		start := time.Now()
		batch, err := core.Run(d, core.Config{})
		if err != nil {
			panic(err)
		}
		batchTime := time.Since(start)
		mb := eval.Evaluate(d, batch.Truths, gt)
		t.AddRow(set.name, "CRH", fnum(mb.ErrorRate), fnum(mb.MNAD), fsec(batchTime.Seconds()))

		start = time.Now()
		inc, err := stream.Run(d, 1, stream.Config{})
		if err != nil {
			panic(err)
		}
		incTime := time.Since(start)
		mi := eval.Evaluate(d, inc.Truths, gt)
		t.AddRow(set.name, "I-CRH", fnum(mi.ErrorRate), fnum(mi.MNAD), fsec(incTime.Seconds()))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"expected shape (paper Table 5): I-CRH slightly worse on ErrorRate/MNAD but",
		"substantially faster — it scans each chunk once instead of iterating over all data")
	return r
}
