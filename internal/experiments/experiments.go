// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 3). Each experiment builds its data sets through
// internal/synth, runs CRH and the baselines, and renders the same rows or
// series the paper reports. Experiments run at two scales: ScaleSmall
// (seconds; used by tests and benchmarks) and ScaleFull (the paper's data
// set sizes).
package experiments

import (
	"fmt"
	"time"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/synth"
)

// Scale selects data set sizes.
type Scale int

const (
	// ScaleSmall shrinks the large simulations so every experiment runs
	// in seconds while preserving the conflict structure.
	ScaleSmall Scale = iota
	// ScaleFull uses the paper's data set sizes (Table 1 / Table 3).
	ScaleFull
)

// seed fixed for all experiments so reported numbers are reproducible.
const seed = 2014 // SIGMOD year, for flavour

// Weather returns the weather data set (same size at both scales — the
// real one was small).
func WeatherData(Scale) (*data.Dataset, *data.Table) {
	return synth.Weather(synth.WeatherConfig{Seed: seed})
}

// StockData returns the stock data set at the given scale.
func StockData(s Scale) (*data.Dataset, *data.Table) {
	cfg := synth.StockConfig{Seed: seed + 1}
	if s == ScaleFull {
		cfg.Symbols, cfg.Days = 1000, 21
	} else {
		cfg.Symbols, cfg.Days = 60, 7
	}
	return synth.Stock(cfg)
}

// FlightData returns the flight data set at the given scale.
func FlightData(s Scale) (*data.Dataset, *data.Table) {
	cfg := synth.FlightConfig{Seed: seed + 2}
	if s == ScaleFull {
		cfg.Flights, cfg.Days = 1200, 31
	} else {
		cfg.Flights, cfg.Days = 60, 8
	}
	return synth.Flight(cfg)
}

// AdultData returns the Adult-equivalent simulation at the given scale.
func AdultData(s Scale) (*data.Dataset, *data.Table) {
	cfg := synth.UCIConfig{Seed: seed + 3}
	if s != ScaleFull {
		cfg.Rows = 2000
	}
	return synth.Adult(cfg)
}

// BankData returns the Bank-equivalent simulation at the given scale.
func BankData(s Scale) (*data.Dataset, *data.Table) {
	cfg := synth.UCIConfig{Seed: seed + 4}
	if s != ScaleFull {
		cfg.Rows = 2000
	}
	return synth.Bank(cfg)
}

// CRH wraps the core solver as a baseline.Method so the harness can run
// the full method suite uniformly.
type CRH struct {
	Cfg core.Config
}

// Name implements baseline.Method.
func (CRH) Name() string { return "CRH" }

// Resolve implements baseline.Method.
func (c CRH) Resolve(d *data.Dataset) (*data.Table, []float64) {
	res, err := core.Run(d, c.Cfg)
	if err != nil {
		// The harness only feeds non-empty datasets; an error here is
		// a bug, not an input condition.
		panic(fmt.Sprintf("experiments: CRH failed: %v", err))
	}
	return res.Truths, res.Weights
}

// Methods returns CRH followed by the ten baselines — the Table 2 roster.
func Methods() []baseline.Method {
	return append([]baseline.Method{CRH{}}, baseline.All()...)
}

// MeasuredRun scores one method on one data set and reports the runtime.
type MeasuredRun struct {
	Method  string
	Metrics eval.Metrics
	Elapsed time.Duration
	// Reliability holds the method's source scores (nil when the
	// method does not estimate them).
	Reliability []float64
}

// RunMethod executes a method and evaluates it against ground truth.
func RunMethod(m baseline.Method, d *data.Dataset, gt *data.Table) MeasuredRun {
	start := time.Now()
	truths, rel := m.Resolve(d)
	elapsed := time.Since(start)
	return MeasuredRun{
		Method:      m.Name(),
		Metrics:     eval.Evaluate(d, truths, gt),
		Elapsed:     elapsed,
		Reliability: rel,
	}
}
