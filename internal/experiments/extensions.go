package experiments

import (
	"fmt"
	"math/rand"

	"github.com/crhkit/crh/internal/baseline"
	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/eval"
	"github.com/crhkit/crh/internal/reg"
	"github.com/crhkit/crh/internal/synth"
)

// The ext-* experiments evaluate this implementation's extensions — the
// features the paper discusses or defers but does not evaluate. They are
// not paper artifacts; crhbench lists them separately.

// ExtLongTail evaluates the confidence-aware CATD weight scheme against
// the paper's exp-max weights on a power-law (crowdsourcing-style)
// workload where most sources contribute only a few claims.
func ExtLongTail(s Scale) *Report {
	r := &Report{ID: "ext-longtail", Caption: "[extension] Confidence-aware weights on long-tail data (CATD, ref [23])"}
	objects := 2000
	if s == ScaleFull {
		objects = 20000
	}
	d, gt, trueErr := synth.LongTail(synth.LongTailConfig{Seed: seed + 40, Objects: objects})

	// Correlations are reported both globally and over the well-observed
	// head (most-active half of the workers): CATD deliberately
	// suppresses low-count sources regardless of how lucky they look,
	// which depresses the *global* correlation while protecting the
	// truth estimates.
	counts := make([]int, d.NumSources())
	for k := 0; k < d.NumSources(); k++ {
		counts[k] = d.ObservationCount(k)
	}
	headMask := topHalfByCount(counts)
	rel := make([]float64, len(trueErr))
	for k, e := range trueErr {
		rel[k] = 1 - e
	}
	t := &TextTable{Header: []string{"Weight scheme", "ErrorRate", "MNAD", "rank-corr(all)", "rank-corr(head)"}}
	for _, sc := range []reg.Scheme{reg.ExpMax{}, reg.ExpSum{}, reg.CATD{}} {
		res, err := core.Run(d, core.Config{Scheme: sc})
		if err != nil {
			panic(err)
		}
		m := eval.Evaluate(d, res.Truths, gt)
		t.AddRow(sc.Name(), fnum(m.ErrorRate), fnum(m.MNAD),
			fmt.Sprintf("%.4f", eval.RankCorrelation(res.Weights, rel)),
			fmt.Sprintf("%.4f", eval.RankCorrelation(mask(res.Weights, headMask), mask(rel, headMask))))
	}
	// Voting as the unweighted anchor.
	vt, _ := baseline.Voting{}.Resolve(d)
	m := eval.Evaluate(d, vt, gt)
	t.AddRow("(unweighted voting)", fnum(m.ErrorRate), "NA", "", "")
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"finding: the spread-amplifying exp-max default over-trusts sparse lucky sources",
		"on long-tail data; both mitigations help — exp-sum by compressing the weight",
		"range, CATD by explicitly discounting low-count sources with the χ²(α/2, n)",
		"confidence factor (which also lowers its tail-weight rank correlation by design)")
	return r
}

// topHalfByCount marks the sources in the upper half of claim counts.
func topHalfByCount(counts []int) []bool {
	sorted := append([]int(nil), counts...)
	sortInts(sorted)
	cut := sorted[len(sorted)/2]
	mask := make([]bool, len(counts))
	for i, c := range counts {
		mask[i] = c >= cut
	}
	return mask
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// mask selects the marked elements.
func mask(xs []float64, m []bool) []float64 {
	var out []float64
	for i, x := range xs {
		if m[i] {
			out = append(out, x)
		}
	}
	return out
}

// ExtCopycat evaluates source-dependence detection (AccuCopy) on the
// canonical copier trap: a block of mirrors outvoting honest sources.
func ExtCopycat(s Scale) *Report {
	r := &Report{ID: "ext-copycat", Caption: "[extension] Source-dependence detection (AccuCopy) on copier data"}
	objects := 500
	if s == ScaleFull {
		objects = 5000
	}
	d, gt := copierWorkload(seed+41, objects, 3)

	t := &TextTable{Header: []string{"Method", "ErrorRate"}}
	methods := []baseline.Method{
		baseline.Voting{}, CRH{}, baseline.TruthFinder{}, baseline.AccuSim{}, baseline.AccuCopy{},
	}
	for _, m := range methods {
		truths, _ := m.Resolve(d)
		t.AddRow(m.Name(), fnum(eval.Evaluate(d, truths, gt).ErrorRate))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"expected shape: every independence-assuming method tracks the mirror block's",
		"~30% error; AccuCopy detects and discounts the copies and recovers")
	return r
}

// copierWorkload mirrors examples/copycat: two honest sources, one
// mediocre original, nCopies verbatim mirrors.
func copierWorkload(sd int64, nObj, nCopies int) (*data.Dataset, *data.Table) {
	rng := rand.New(rand.NewSource(sd))
	b := data.NewBuilder()
	p := b.MustProperty("fact", data.Categorical)
	cats := make([]int, 8)
	for i := range cats {
		cats[i] = b.CatValue(p, fmt.Sprintf("v%d", i))
	}
	gt := make([]int, nObj)
	orig := make([]int, nObj)
	for i := 0; i < nObj; i++ {
		b.Object(fmt.Sprintf("o%05d", i))
		gt[i] = cats[rng.Intn(len(cats))]
		orig[i] = gt[i]
		if rng.Float64() < 0.30 {
			alt := cats[rng.Intn(len(cats)-1)]
			if alt >= gt[i] {
				alt++
			}
			orig[i] = alt
		}
	}
	for _, name := range []string{"honest-1", "honest-2"} {
		src := b.Source(name)
		for i := 0; i < nObj; i++ {
			c := gt[i]
			if rng.Float64() < 0.12 {
				alt := cats[rng.Intn(len(cats)-1)]
				if alt >= c {
					alt++
				}
				c = alt
			}
			b.ObserveIdx(src, i, p, data.Cat(c))
		}
	}
	src := b.Source("aggregator")
	for i := 0; i < nObj; i++ {
		b.ObserveIdx(src, i, p, data.Cat(orig[i]))
	}
	for m := 0; m < nCopies; m++ {
		src := b.Source(fmt.Sprintf("mirror-%d", m))
		for i := 0; i < nObj; i++ {
			b.ObserveIdx(src, i, p, data.Cat(orig[i]))
		}
	}
	d := b.Build()
	tb := data.NewTableFor(d)
	for i := 0; i < nObj; i++ {
		tb.SetAt(i, 0, data.Cat(gt[i]))
	}
	return d, tb
}

// ExtGroups evaluates fine-grained per-property source weights against a
// single global weight when sources have property-dependent reliability
// (the §2.5 consistency-assumption relaxation).
func ExtGroups(s Scale) *Report {
	r := &Report{ID: "ext-groups", Caption: "[extension] Per-property source weights vs the consistency assumption"}
	objects := 1500
	if s == ScaleFull {
		objects = 15000
	}
	d, gt := splitWorkload(seed+42, objects)
	t := &TextTable{Header: []string{"Configuration", "ErrorRate", "MNAD"}}
	global, err := core.Run(d, core.Config{})
	if err != nil {
		panic(err)
	}
	m := eval.Evaluate(d, global.Truths, gt)
	t.AddRow("one weight per source (paper default)", fnum(m.ErrorRate), fnum(m.MNAD))
	grouped, err := core.Run(d, core.Config{PropertyGroups: [][]int{{0}, {1}}})
	if err != nil {
		panic(err)
	}
	m = eval.Evaluate(d, grouped.Truths, gt)
	t.AddRow("per-property weights (fine-grained)", fnum(m.ErrorRate), fnum(m.MNAD))
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"workload: each source is accurate on one property and poor on the other, so",
		"a single global weight must average away exactly the information that matters")
	return r
}

// splitWorkload: sources whose reliability differs per property.
func splitWorkload(sd int64, nObj int) (*data.Dataset, *data.Table) {
	rng := rand.New(rand.NewSource(sd))
	b := data.NewBuilder()
	tempP := b.MustProperty("reading", data.Continuous)
	condP := b.MustProperty("status", data.Categorical)
	cats := make([]int, 6)
	for i := range cats {
		cats[i] = b.CatValue(condP, fmt.Sprintf("s%d", i))
	}
	gtTemp := make([]float64, nObj)
	gtCond := make([]int, nObj)
	for i := 0; i < nObj; i++ {
		b.Object(fmt.Sprintf("u%05d", i))
		gtTemp[i] = rng.Float64() * 100
		gtCond[i] = cats[rng.Intn(len(cats))]
	}
	type prof struct {
		name          string
		tempStd, flip float64
	}
	profs := []prof{
		{"numGood-1", 0.4, 0.6},
		{"numGood-2", 0.7, 0.5},
		{"catGood-1", 15, 0.03},
		{"catGood-2", 18, 0.06},
		{"middling", 6, 0.3},
	}
	for _, pr := range profs {
		src := b.Source(pr.name)
		for i := 0; i < nObj; i++ {
			b.ObserveIdx(src, i, tempP, data.Float(gtTemp[i]+rng.NormFloat64()*pr.tempStd))
			c := gtCond[i]
			if rng.Float64() < pr.flip {
				alt := cats[rng.Intn(len(cats)-1)]
				if alt >= c {
					alt++
				}
				c = alt
			}
			b.ObserveIdx(src, i, condP, data.Cat(c))
		}
	}
	d := b.Build()
	tb := data.NewTableFor(d)
	for i := 0; i < nObj; i++ {
		tb.SetAt(i, tempP, data.Float(gtTemp[i]))
		tb.SetAt(i, condP, data.Cat(gtCond[i]))
	}
	return d, tb
}
