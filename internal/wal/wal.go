// Package wal is crhd's durability substrate: a segmented, append-only
// write-ahead log of CRC32-checksummed, length-prefixed records; a
// compact binary observation codec (varint-interned string ids + typed
// values); snapshot files that serialize a dataset's full state at a
// version boundary; and a per-dataset Store combining the three so a
// crashed server recovers every dataset to its exact pre-crash version.
//
// Layering: wal sits below the server and above nothing — it stores
// framed bytes and knows no domain structures (internal/data stays out
// of its import graph), and only internal/server may import it (plus
// cmd/crhbench's append benchmark; enforced by internal/lint). See
// docs/DURABILITY.md for the on-disk layout, fsync semantics, and the
// recovery contract.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FsyncPolicy selects when appended records are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncBatch fsyncs after every appended batch: an acknowledged
	// ingest survives power loss. The safest and slowest policy.
	FsyncBatch FsyncPolicy = iota
	// FsyncInterval fsyncs at most once per Options.Interval,
	// piggybacked on appends (plus always on rotation and Close). A
	// crash can lose up to one interval of acknowledged batches; the
	// log itself stays consistent.
	FsyncInterval
	// FsyncOff never fsyncs explicitly (the OS flushes on its own
	// schedule; Close still syncs). Fastest; a crash can lose any
	// unflushed suffix.
	FsyncOff
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses "batch", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch, interval, or off)", s)
	}
}

// Options tunes a Log (and, through the Store, every per-dataset log).
// The zero value is usable: fsync per batch, 100ms interval, 16 MiB
// segments, no metrics.
type Options struct {
	// Fsync selects the durability/latency trade-off for appends.
	Fsync FsyncPolicy
	// Interval is the maximum time between fsyncs under FsyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates to a fresh segment once the active one
	// reaches this size (default 16 MiB).
	SegmentBytes int64
	// Metrics, when non-nil, receives append/fsync/segment telemetry.
	// Create with NewMetrics; one set may be shared by every log of a
	// store (the counters are atomic).
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Batch is one replayed WAL record: the dataset version the batch
// produced and its decoded observations.
type Batch struct {
	// Version is the dataset version after applying Obs.
	Version int64
	// Obs carries the batch's observations in ingest order.
	Obs []Obs
}

// recBatch tags a WAL record holding one encoded observation batch.
// Snapshot files reuse the frame but carry their own magic, so record
// types never collide across file kinds.
const recBatch = 1

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// segment tracks one on-disk segment file: its numeric sequence, the
// versions of the first and last record it holds (0,0 when empty), and
// its byte size.
type segment struct {
	seq         uint64
	first, last int64
	size        int64
}

func (s segment) name() string {
	return fmt.Sprintf("%s%020d%s", segPrefix, s.seq, segSuffix)
}

// Log is a segmented append-only write-ahead log. Not safe for
// concurrent use — the owning dataset entry serializes appends. Create
// with OpenLog.
type Log struct {
	dir      string
	opts     Options
	active   *os.File
	segs     []segment // segs[len-1] is the active segment
	dirty    bool
	lastSync time.Time
}

// ErrCorrupt reports structural damage the log cannot repair by
// truncation: a bad frame anywhere but the tail of the last segment.
var ErrCorrupt = errors.New("wal: corrupt segment")

// parseSegName extracts the sequence number of a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// decodeBatchRecord splits a framed payload into its version and
// observations.
func decodeBatchRecord(payload []byte) (Batch, error) {
	d := &decoder{b: payload}
	if typ := d.byte(); d.err == nil && typ != recBatch {
		return Batch{}, fmt.Errorf("wal: unknown record type %d", typ)
	}
	version := d.uvarint()
	if d.err != nil {
		return Batch{}, d.err
	}
	obs, err := DecodeObservations(payload[d.off:])
	if err != nil {
		return Batch{}, err
	}
	return Batch{Version: int64(version), Obs: obs}, nil
}

// encodeBatchRecord builds the framed payload for one batch.
func encodeBatchRecord(version int64, batch []Obs) []byte {
	body := EncodeObservations(batch)
	payload := make([]byte, 0, len(body)+10)
	payload = append(payload, recBatch)
	payload = binary.AppendUvarint(payload, uint64(version))
	return append(payload, body...)
}

// OpenLog opens (creating if needed) the segmented log in dir, replays
// every intact record, and returns the decoded batches in append order.
// A torn tail — a partial or checksum-failing final record in the last
// segment, the signature of a crash mid-append — is truncated away; the
// same damage anywhere else is returned as ErrCorrupt.
func OpenLog(dir string, opts Options) (*Log, []Batch, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, lastSync: time.Now()}
	var batches []Batch
	for i, name := range names {
		seq, _ := parseSegName(name)
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		seg := segment{seq: seq}
		off := 0
		for off < len(data) {
			payload, next, ok := nextFrame(data, off)
			if !ok {
				// Only a genuinely torn final write may be dropped: the
				// damage must be in the last segment and reach its end.
				// Anything else — an earlier segment, or a bad frame with
				// valid data after it — is interior corruption, and
				// truncating would silently lose acknowledged batches.
				if i != len(names)-1 || !tornTail(data, off) {
					return nil, nil, fmt.Errorf("%w: %s has a bad frame at offset %d", ErrCorrupt, name, off)
				}
				if err := os.Truncate(path, int64(off)); err != nil {
					return nil, nil, err
				}
				if err := syncPath(path); err != nil {
					return nil, nil, err
				}
				break
			}
			b, err := decodeBatchRecord(payload)
			if err != nil {
				// The checksum matched, so these are the bytes the writer
				// produced — undecodable content is corruption (or a
				// writer bug), never a torn write.
				return nil, nil, fmt.Errorf("%w: %s record at offset %d: %v", ErrCorrupt, name, off, err)
			}
			if seg.first == 0 {
				seg.first = b.Version
			}
			seg.last = b.Version
			batches = append(batches, b)
			off = next
			seg.size = int64(off)
		}
		l.segs = append(l.segs, seg)
	}
	for i := 1; i < len(batches); i++ {
		if batches[i].Version <= batches[i-1].Version {
			return nil, nil, fmt.Errorf("%w: record versions not increasing (%d then %d)", ErrCorrupt, batches[i-1].Version, batches[i].Version)
		}
	}
	if len(l.segs) == 0 {
		l.segs = []segment{{seq: 1}}
	}
	activePath := filepath.Join(dir, l.segs[len(l.segs)-1].name())
	f, err := os.OpenFile(activePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l.active = f
	l.opts.Metrics.addSegments(len(l.segs))
	return l, batches, nil
}

// listSegments returns the segment file names in dir, sorted by
// sequence number.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := parseSegName(names[i])
		b, _ := parseSegName(names[j])
		return a < b
	})
	return names, nil
}

// AppendBatch encodes the batch with the binary observation codec,
// frames it, and appends it to the active segment, rotating first when
// the segment is full. Durability follows the configured fsync policy.
func (l *Log) AppendBatch(version int64, batch []Obs) error {
	if l.active == nil {
		return errors.New("wal: log is closed")
	}
	frame := appendFrame(nil, encodeBatchRecord(version, batch))
	act := &l.segs[len(l.segs)-1]
	if act.size > 0 && act.size+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
		act = &l.segs[len(l.segs)-1]
	}
	if _, err := l.active.Write(frame); err != nil {
		return err
	}
	act.size += int64(len(frame))
	if act.first == 0 {
		act.first = version
	}
	act.last = version
	l.dirty = true
	l.opts.Metrics.recordAppend(len(frame), len(batch))
	switch l.opts.Fsync {
	case FsyncBatch:
		return l.Sync()
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.Sync()
		}
	}
	return nil
}

// rotate seals the active segment (fsyncing it regardless of policy —
// a sealed segment is immutable) and starts the next one.
func (l *Log) rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	next := segment{seq: l.segs[len(l.segs)-1].seq + 1}
	f, err := os.OpenFile(filepath.Join(l.dir, next.name()), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	l.segs = append(l.segs, next)
	l.opts.Metrics.addSegments(1)
	return syncPath(l.dir)
}

// Sync forces buffered appends to stable storage now, regardless of
// policy, recording the fsync latency when metrics are attached.
func (l *Log) Sync() error {
	if l.active == nil || !l.dirty {
		return nil
	}
	t0 := time.Now()
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.opts.Metrics.recordFsync(time.Since(t0))
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Retire deletes every sealed segment whose records are all covered by
// a snapshot at the given version (last record version <= version). The
// active segment is never deleted.
func (l *Log) Retire(version int64) error {
	if len(l.segs) <= 1 {
		return nil
	}
	kept := l.segs[:0]
	removed := 0
	for i, s := range l.segs {
		if i < len(l.segs)-1 && s.last <= version {
			if err := os.Remove(filepath.Join(l.dir, s.name())); err != nil && !os.IsNotExist(err) {
				return err
			}
			removed++
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed > 0 {
		l.opts.Metrics.addSegments(-removed)
		return syncPath(l.dir)
	}
	return nil
}

// SegmentCount returns the number of live segment files (the active one
// included).
func (l *Log) SegmentCount() int { return len(l.segs) }

// Close flushes pending appends (the graceful-shutdown flush) and
// closes the active segment. The log is unusable afterwards.
func (l *Log) Close() error {
	if l.active == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// syncPath fsyncs a file or directory by path — needed after creating,
// renaming, or removing directory entries so the metadata is durable.
func syncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
