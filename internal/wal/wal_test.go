package wal

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func batchN(i int) []Obs {
	return []Obs{
		{Source: "s1", Object: "o", Property: "p", Kind: Continuous, F: float64(i)},
		{Source: "s2", Object: "o", Property: "q", Kind: Categorical, Cat: "c", TS: i, HasTS: true},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, []Batch) {
	t.Helper()
	l, batches, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, batches
}

// closeLog closes l and fails the test on error: assertions about
// on-disk segments are only meaningful if the final flush landed.
func closeLog(t *testing.T, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Errorf("close log: %v", err)
	}
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, batches := mustOpen(t, dir, Options{Fsync: FsyncBatch})
	if len(batches) != 0 {
		t.Fatalf("fresh log replayed %d batches", len(batches))
	}
	for v := int64(2); v <= 6; v++ {
		if err := l.AppendBatch(v, batchN(int(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, batches = mustOpen(t, dir, Options{})
	if len(batches) != 5 {
		t.Fatalf("replayed %d batches, want 5", len(batches))
	}
	for i, b := range batches {
		want := int64(i + 2)
		if b.Version != want {
			t.Errorf("batch %d version %d, want %d", i, b.Version, want)
		}
		if len(b.Obs) != 2 || math.Float64bits(b.Obs[0].F) != math.Float64bits(float64(want)) {
			t.Errorf("batch %d contents wrong: %+v", i, b.Obs)
		}
	}
}

func TestLogTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncBatch})
	for v := int64(2); v <= 4; v++ {
		if err := l.AppendBatch(v, batchN(int(v))); err != nil {
			t.Fatal(err)
		}
	}
	closeLog(t, l)

	names, err := listSegments(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments: %v %v", names, err)
	}
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the last record, then add garbage — both the
	// partial frame and the garbage must be truncated away.
	if err := os.WriteFile(path, append(data[:len(data)-5], 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, batches := mustOpen(t, dir, Options{})
	if len(batches) != 2 {
		t.Fatalf("replayed %d batches after torn tail, want 2", len(batches))
	}
	// The log must be appendable again at the next version.
	if err := l2.AppendBatch(4, batchN(4)); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l2)
	_, batches = mustOpen(t, dir, Options{})
	if len(batches) != 3 || batches[2].Version != 4 {
		t.Fatalf("after repair+append: %d batches, last %+v", len(batches), batches[len(batches)-1])
	}
}

// TestLogTornVsInteriorDamage pins the repair policy within the last
// segment: a bit-damaged FINAL record (a torn write's signature — the
// damage reaches EOF) is truncated away, while a damaged record with
// valid records after it is interior corruption and refuses to open.
func TestLogTornVsInteriorDamage(t *testing.T) {
	build := func(t *testing.T) (string, []byte) {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff})
		for v := int64(2); v <= 4; v++ {
			if err := l.AppendBatch(v, batchN(int(v))); err != nil {
				t.Fatal(err)
			}
		}
		closeLog(t, l)
		names, _ := listSegments(dir)
		path := filepath.Join(dir, names[0])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}

	t.Run("final record bit flip truncates", func(t *testing.T) {
		path, data := build(t)
		mut := append([]byte(nil), data...)
		mut[len(mut)-1] ^= 0xff // inside the last record's payload
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, batches := mustOpen(t, filepath.Dir(path), Options{})
		defer closeLog(t, l)
		if len(batches) != 2 || batches[1].Version != 3 {
			t.Fatalf("after torn final record: %+v", batches)
		}
	})

	t.Run("interior bit flip refuses", func(t *testing.T) {
		path, data := build(t)
		mut := append([]byte(nil), data...)
		mut[frameHeader+2] ^= 0xff // inside the FIRST record's payload
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenLog(filepath.Dir(path), Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("interior damage: got %v, want ErrCorrupt", err)
		}
	})
}

func TestLogMidSegmentCorruptionRefuses(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentBytes: 64})
	for v := int64(2); v <= 10; v++ {
		if err := l.AppendBatch(v, batchN(int(v))); err != nil {
			t.Fatal(err)
		}
	}
	closeLog(t, l)
	names, _ := listSegments(dir)
	if len(names) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(names))
	}
	// Damage a record in the FIRST segment: not repairable by tail
	// truncation.
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, _, err := OpenLog(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-segment corruption: got %v, want ErrCorrupt", err)
	}
}

func TestLogRotationAndRetire(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentBytes: 96})
	for v := int64(2); v <= 20; v++ {
		if err := l.AppendBatch(v, batchN(int(v))); err != nil {
			t.Fatal(err)
		}
	}
	before := l.SegmentCount()
	if before < 3 {
		t.Fatalf("expected >=3 segments, got %d", before)
	}
	// Retire everything covered by version 15: only segments whose
	// last record is <= 15 (and not the active one) may go.
	if err := l.Retire(15); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() >= before {
		t.Fatalf("retire removed nothing (%d -> %d)", before, l.SegmentCount())
	}
	closeLog(t, l)

	l2, batches := mustOpen(t, dir, Options{})
	defer closeLog(t, l2)
	// Every version > 15 must survive; the replayed stream must stay
	// contiguous from its first version.
	if len(batches) == 0 || batches[len(batches)-1].Version != 20 {
		t.Fatalf("tail lost after retire: %+v", batches)
	}
	for i := 1; i < len(batches); i++ {
		if batches[i].Version != batches[i-1].Version+1 {
			t.Fatalf("gap after retire: %d -> %d", batches[i-1].Version, batches[i].Version)
		}
	}
	if batches[0].Version > 16 {
		t.Fatalf("retire dropped uncovered version %d", batches[0].Version)
	}
}

func TestLogIntervalAndOffPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncInterval, FsyncOff} {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{Fsync: pol})
		for v := int64(2); v <= 5; v++ {
			if err := l.AppendBatch(v, batchN(int(v))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil { // graceful flush
			t.Fatal(err)
		}
		_, batches := mustOpen(t, dir, Options{})
		if len(batches) != 4 {
			t.Fatalf("policy %v: replayed %d, want 4", pol, len(batches))
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"batch", FsyncBatch}, {"interval", FsyncInterval}, {"off", FsyncOff}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}
