package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Prop declares one property of a snapshotted dataset: its name and
// value kind, in declaration order (the order fixes property indices on
// rebuild).
type Prop struct {
	// Name identifies the property; Kind its value type.
	Name string
	Kind Kind // see Name
}

// Truth is one resolved or ground-truth value in a snapshot. Exactly
// one of F and Cat is meaningful, selected by Kind.
type Truth struct {
	// Object and Property name the entry the value belongs to.
	Object   string
	Property string // see Object
	// Kind selects the payload: F for Continuous, Cat for Categorical.
	Kind Kind
	F    float64 // see Kind
	Cat  string  // see Kind
}

// Snapshot serializes a dataset entry's complete state at a version
// boundary: the canonical observation log everything is rebuilt from,
// the interning orders that fix source/property indices, the optional
// ground truth, and the warm I-CRH processor state — enough to resume
// ingest bit-for-bit identically to a process that never stopped.
type Snapshot struct {
	// Version is the dataset version the snapshot captures.
	Version int64
	// Sources and Props record the interning orders (source k of the
	// rebuilt dataset is Sources[k]).
	Sources []string
	Props   []Prop // see Sources
	// Obs is the canonical append-only observation log.
	Obs []Obs
	// GT is the ground truth uploaded at create time, empty when none.
	GT []Truth
	// Weights, Accum, and Chunks are the I-CRH processor state: current
	// source weights, decayed accumulated distances (aligned with
	// Sources), and the number of chunks processed.
	Weights []float64
	Accum   []float64 // see Weights
	Chunks  int       // see Weights
	// Warm holds the incremental truths accumulated by live ingest,
	// sorted by (object, property) for a canonical encoding.
	Warm []Truth
}

// snapMagic heads every snapshot file; the trailing byte versions the
// format.
var snapMagic = []byte("crhsnap\x01")

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func snapName(version int64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, version, snapSuffix)
}

// parseSnapName extracts the version of a snapshot file name.
func parseSnapName(name string) (int64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	var v int64
	if _, err := fmt.Sscanf(name[len(snapPrefix):len(name)-len(snapSuffix)], "%d", &v); err != nil {
		return 0, false
	}
	return v, true
}

// appendTruth encodes one Truth against the string table.
func appendTruth(dst []byte, tab *strTable, t Truth) []byte {
	dst = binary.AppendUvarint(dst, tab.id(t.Object))
	dst = binary.AppendUvarint(dst, tab.id(t.Property))
	dst = append(dst, byte(t.Kind))
	if t.Kind == Categorical {
		return binary.AppendUvarint(dst, tab.id(t.Cat))
	}
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.F))
}

func (d *decoder) truth(tab []string) Truth {
	t := Truth{
		Object:   d.tableString(tab, d.uvarint(), "object"),
		Property: d.tableString(tab, d.uvarint(), "property"),
	}
	switch Kind(d.byte()) {
	case Categorical:
		t.Kind = Categorical
		t.Cat = d.tableString(tab, d.uvarint(), "category")
	default:
		t.F = d.float64()
	}
	return t
}

// encodeSnapshot serializes a snapshot to its framed payload. Warm
// truths are sorted by (object, property) so the encoding is canonical.
func encodeSnapshot(s *Snapshot) []byte {
	warm := append([]Truth(nil), s.Warm...)
	sort.Slice(warm, func(i, j int) bool {
		if warm[i].Object != warm[j].Object {
			return warm[i].Object < warm[j].Object
		}
		return warm[i].Property < warm[j].Property
	})

	tab := newStrTable()
	body := make([]byte, 0, 64+16*len(s.Obs))
	body = binary.AppendUvarint(body, uint64(s.Version))
	body = binary.AppendUvarint(body, uint64(len(s.Sources)))
	for _, src := range s.Sources {
		body = binary.AppendUvarint(body, tab.id(src))
	}
	body = binary.AppendUvarint(body, uint64(len(s.Props)))
	for _, p := range s.Props {
		body = binary.AppendUvarint(body, tab.id(p.Name))
		body = append(body, byte(p.Kind))
	}
	body = binary.AppendUvarint(body, uint64(len(s.Obs)))
	for _, o := range s.Obs {
		var flags byte
		if o.Kind == Categorical {
			flags |= flagCategorical
		}
		if o.HasTS {
			flags |= flagHasTS
		}
		body = append(body, flags)
		body = binary.AppendUvarint(body, tab.id(o.Source))
		body = binary.AppendUvarint(body, tab.id(o.Object))
		body = binary.AppendUvarint(body, tab.id(o.Property))
		if o.Kind == Categorical {
			body = binary.AppendUvarint(body, tab.id(o.Cat))
		} else {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(o.F))
		}
		if o.HasTS {
			body = binary.AppendVarint(body, int64(o.TS))
		}
	}
	body = binary.AppendUvarint(body, uint64(len(s.GT)))
	for _, t := range s.GT {
		body = appendTruth(body, tab, t)
	}
	body = binary.AppendUvarint(body, uint64(len(s.Weights)))
	for _, w := range s.Weights {
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(w))
	}
	body = binary.AppendUvarint(body, uint64(len(s.Accum)))
	for _, a := range s.Accum {
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(a))
	}
	body = binary.AppendUvarint(body, uint64(s.Chunks))
	body = binary.AppendUvarint(body, uint64(len(warm)))
	for _, t := range warm {
		body = appendTruth(body, tab, t)
	}

	out := make([]byte, 0, len(body)+16*len(tab.names))
	out = binary.AppendUvarint(out, uint64(len(tab.names)))
	for _, name := range tab.names {
		out = appendString(out, name)
	}
	return append(out, body...)
}

// floats decodes a length-prefixed float64 vector.
func (d *decoder) floats() []float64 {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off)/8 {
		d.fail("wal: float vector of %d entries exceeds remaining %d bytes", n, len(d.b)-d.off)
		return nil
	}
	out := make([]float64, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.float64())
	}
	return out
}

// decodeSnapshot parses a framed snapshot payload. Like the observation
// decoder it never panics: every count and index is validated.
func decodeSnapshot(payload []byte) (*Snapshot, error) {
	d := &decoder{b: payload}
	tab := d.stringTable()
	s := &Snapshot{Version: int64(d.uvarint())}

	nSrc := d.uvarint()
	if d.err == nil && nSrc > uint64(len(d.b)-d.off) {
		d.fail("wal: source count %d exceeds remaining %d bytes", nSrc, len(d.b)-d.off)
	}
	for i := uint64(0); i < nSrc && d.err == nil; i++ {
		s.Sources = append(s.Sources, d.tableString(tab, d.uvarint(), "source"))
	}
	nProp := d.uvarint()
	if d.err == nil && nProp > uint64(len(d.b)-d.off) {
		d.fail("wal: property count %d exceeds remaining %d bytes", nProp, len(d.b)-d.off)
	}
	for i := uint64(0); i < nProp && d.err == nil; i++ {
		p := Prop{Name: d.tableString(tab, d.uvarint(), "property")}
		if k := Kind(d.byte()); k == Categorical {
			p.Kind = Categorical
		}
		s.Props = append(s.Props, p)
	}
	nObs := d.uvarint()
	if d.err == nil && nObs > uint64(len(d.b)-d.off) {
		d.fail("wal: observation count %d exceeds remaining %d bytes", nObs, len(d.b)-d.off)
	}
	for i := uint64(0); i < nObs && d.err == nil; i++ {
		flags := d.byte()
		o := Obs{
			Source:   d.tableString(tab, d.uvarint(), "source"),
			Object:   d.tableString(tab, d.uvarint(), "object"),
			Property: d.tableString(tab, d.uvarint(), "property"),
		}
		if flags&flagCategorical != 0 {
			o.Kind = Categorical
			o.Cat = d.tableString(tab, d.uvarint(), "category")
		} else {
			o.F = d.float64()
		}
		if flags&flagHasTS != 0 {
			o.TS = int(d.varint())
			o.HasTS = true
		}
		s.Obs = append(s.Obs, o)
	}
	nGT := d.uvarint()
	if d.err == nil && nGT > uint64(len(d.b)-d.off) {
		d.fail("wal: ground-truth count %d exceeds remaining %d bytes", nGT, len(d.b)-d.off)
	}
	for i := uint64(0); i < nGT && d.err == nil; i++ {
		s.GT = append(s.GT, d.truth(tab))
	}
	s.Weights = d.floats()
	s.Accum = d.floats()
	s.Chunks = int(d.uvarint())
	nWarm := d.uvarint()
	if d.err == nil && nWarm > uint64(len(d.b)-d.off) {
		d.fail("wal: warm-truth count %d exceeds remaining %d bytes", nWarm, len(d.b)-d.off)
	}
	for i := uint64(0); i < nWarm && d.err == nil; i++ {
		s.Warm = append(s.Warm, d.truth(tab))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wal: %d trailing bytes after snapshot", len(d.b)-d.off)
	}
	return s, nil
}

// writeSnapshotFile atomically writes the snapshot into dir: the framed
// payload goes to a temp file which is fsynced, renamed into place, and
// the directory fsynced — a crash leaves either the old set of
// snapshots or the new one, never a partial file under the final name.
func writeSnapshotFile(dir string, s *Snapshot) error {
	buf := append([]byte(nil), snapMagic...)
	buf = appendFrame(buf, encodeSnapshot(s))
	final := filepath.Join(dir, snapName(s.Version))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := syncPath(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncPath(dir)
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("wal: %s: bad snapshot magic", filepath.Base(path))
	}
	payload, next, ok := nextFrame(data, len(snapMagic))
	if !ok || next != len(data) {
		return nil, fmt.Errorf("wal: %s: damaged snapshot frame", filepath.Base(path))
	}
	return decodeSnapshot(payload)
}

// ErrNoSnapshot reports a dataset directory holding no loadable
// snapshot — an incomplete creation or unrecoverable damage.
var ErrNoSnapshot = errors.New("wal: no loadable snapshot")

// loadLatestSnapshot returns the newest snapshot in dir that decodes
// cleanly, falling back to older ones when the newest is damaged (a
// crash can interleave with compaction's cleanup).
func loadLatestSnapshot(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoSnapshot
		}
		return nil, err
	}
	var versions []int64
	for _, e := range entries {
		if v, ok := parseSnapName(e.Name()); ok && !e.IsDir() {
			versions = append(versions, v)
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] > versions[j] })
	for _, v := range versions {
		s, err := readSnapshotFile(filepath.Join(dir, snapName(v)))
		if err == nil {
			return s, nil
		}
	}
	return nil, ErrNoSnapshot
}

// pruneSnapshots removes every snapshot older than keepVersion.
func pruneSnapshots(dir string, keepVersion int64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, e := range entries {
		if v, ok := parseSnapName(e.Name()); ok && v < keepVersion {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
			removed = true
		}
	}
	if removed {
		return syncPath(dir)
	}
	return nil
}
