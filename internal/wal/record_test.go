package wal

import (
	"bytes"
	"math"
	"testing"
)

func sampleBatch() []Obs {
	return []Obs{
		{Source: "s1", Object: "o1", Property: "temp", Kind: Continuous, F: 84.5},
		{Source: "s2", Object: "o1", Property: "temp", Kind: Continuous, F: -0.0},
		{Source: "s1", Object: "o1", Property: "cond", Kind: Categorical, Cat: "sunny"},
		{Source: "s2", Object: "o2", Property: "cond", Kind: Categorical, Cat: ""},
		{Source: "s3", Object: "o2", Property: "temp", Kind: Continuous, F: math.Inf(1), TS: -42, HasTS: true},
		{Source: "", Object: "o3", Property: "temp", Kind: Continuous, F: math.NaN(), TS: 7, HasTS: true},
		{Source: "s1", Object: "héllo\tworld", Property: "p\x00q", Kind: Categorical, Cat: "日本語"},
	}
}

// obsEqual compares observations bit-exactly (continuous values by
// Float64bits, so NaN payloads and signed zeros must survive).
func obsEqual(a, b Obs) bool {
	return a.Source == b.Source && a.Object == b.Object && a.Property == b.Property &&
		a.Kind == b.Kind && math.Float64bits(a.F) == math.Float64bits(b.F) &&
		a.Cat == b.Cat && a.TS == b.TS && a.HasTS == b.HasTS
}

func TestObservationsRoundTrip(t *testing.T) {
	for _, batch := range [][]Obs{nil, {}, sampleBatch()} {
		enc := EncodeObservations(batch)
		dec, err := DecodeObservations(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(batch) {
			t.Fatalf("decoded %d observations, want %d", len(dec), len(batch))
		}
		for i := range batch {
			if !obsEqual(batch[i], dec[i]) {
				t.Errorf("observation %d: got %+v want %+v", i, dec[i], batch[i])
			}
		}
		// Canonical: re-encoding the decoded batch reproduces the bytes.
		if !bytes.Equal(EncodeObservations(dec), enc) {
			t.Errorf("re-encoding is not canonical")
		}
	}
}

func TestDecodeObservationsRejectsDamage(t *testing.T) {
	good := EncodeObservations(sampleBatch())
	cases := map[string][]byte{
		"empty-truncated": good[:1],
		"half":            good[:len(good)/2],
		"trailing":        append(append([]byte(nil), good...), 0xff),
		"hugeCount":       {0x00, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"hugeStrings":     {0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, b := range cases {
		if _, err := DecodeObservations(b); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// Flipping any single byte must never panic (most flips error; a
	// few may decode to different valid content).
	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x5a
		DecodeObservations(mut)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frame")
	b := appendFrame(nil, payload)
	got, next, ok := nextFrame(b, 0)
	if !ok || next != len(b) || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip failed: ok=%v next=%d", ok, next)
	}
	// Torn: any strict prefix fails.
	for i := 0; i < len(b); i++ {
		if _, _, ok := nextFrame(b[:i], 0); ok {
			t.Fatalf("prefix of %d bytes decoded as a whole frame", i)
		}
	}
	// Corrupt: flip one payload byte.
	mut := append([]byte(nil), b...)
	mut[frameHeader] ^= 1
	if _, _, ok := nextFrame(mut, 0); ok {
		t.Fatal("corrupt frame passed its checksum")
	}
}

// FuzzWALRecord drives the binary observation codec with arbitrary
// bytes: decoding must never panic, and any payload that decodes must
// re-encode to a batch that round-trips bit-exactly (continuous values
// compared by Float64bits).
func FuzzWALRecord(f *testing.F) {
	f.Add(EncodeObservations(nil))
	f.Add(EncodeObservations(sampleBatch()))
	f.Add(EncodeObservations([]Obs{{Source: "s", Object: "o", Property: "p", Kind: Categorical, Cat: "v", TS: 1 << 40, HasTS: true}}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, b []byte) {
		batch, err := DecodeObservations(b)
		if err != nil {
			return
		}
		enc := EncodeObservations(batch)
		again, err := DecodeObservations(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if len(again) != len(batch) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(batch))
		}
		for i := range batch {
			if !obsEqual(batch[i], again[i]) {
				t.Fatalf("observation %d not bit-identical: %+v vs %+v", i, batch[i], again[i])
			}
		}
		if !bytes.Equal(EncodeObservations(again), enc) {
			t.Fatal("encode is not canonical on its own output")
		}
	})
}
