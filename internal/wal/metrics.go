package wal

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/crhkit/crh/internal/obs"
)

// Metrics holds the WAL telemetry crhd exposes under the crhd_wal_*
// names documented in docs/DURABILITY.md: append volume, fsync latency,
// live segment population, snapshot cadence, and recovery cost. Create
// with NewMetrics; one set is shared by every dataset log of a store
// (all handles are atomic). A nil *Metrics is valid and records
// nothing.
type Metrics struct {
	// AppendBytes and AppendRecords count framed bytes and batch
	// records appended to any WAL.
	AppendBytes   *obs.Counter
	AppendRecords *obs.Counter // see AppendBytes
	// AppendObservations counts the observations inside those batches.
	AppendObservations *obs.Counter
	// FsyncSeconds is the fsync latency histogram.
	FsyncSeconds *obs.Histogram
	// Segments gauges the live WAL segment files across all datasets.
	Segments *obs.Gauge
	// Snapshots counts snapshot files written; SnapshotFailures the
	// snapshot attempts that failed (the ingest itself stays durable —
	// the WAL keeps covering it — but compaction made no progress).
	Snapshots        *obs.Counter
	SnapshotFailures *obs.Counter // see Snapshots
	// RecoverySeconds gauges the duration of the last boot-time
	// recovery; ReplayedRecords counts WAL records replayed by it.
	RecoverySeconds *obs.Gauge
	ReplayedRecords *obs.Counter // see RecoverySeconds

	lastSnapshotUnixNano atomic.Int64
}

// NewMetrics registers the WAL metric set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		AppendBytes:        reg.NewCounter("crhd_wal_append_bytes_total", "framed bytes appended to WAL segments"),
		AppendRecords:      reg.NewCounter("crhd_wal_append_records_total", "batch records appended to WAL segments"),
		AppendObservations: reg.NewCounter("crhd_wal_append_observations_total", "observations inside appended WAL batches"),
		FsyncSeconds:       reg.NewHistogram("crhd_wal_fsync_seconds", "WAL fsync latency", obs.ExponentialBuckets(0.00001, 2.5, 14)),
		Segments:           reg.NewGauge("crhd_wal_segments", "live WAL segment files across all datasets"),
		Snapshots:          reg.NewCounter("crhd_wal_snapshots_total", "dataset snapshot files written"),
		SnapshotFailures:   reg.NewCounter("crhd_wal_snapshot_failures_total", "dataset snapshot writes that failed"),
		RecoverySeconds:    reg.NewGauge("crhd_wal_recovery_seconds", "duration of the last boot-time WAL recovery"),
		ReplayedRecords:    reg.NewCounter("crhd_wal_replayed_records_total", "WAL batch records replayed during recovery"),
	}
	reg.NewGaugeFunc("crhd_wal_snapshot_age_seconds", "seconds since the newest dataset snapshot was written (omitted before the first)", func() float64 {
		ns := m.lastSnapshotUnixNano.Load()
		if ns == 0 {
			return math.NaN()
		}
		return time.Since(time.Unix(0, ns)).Seconds()
	})
	return m
}

// recordAppend folds one appended batch into the counters.
func (m *Metrics) recordAppend(frameBytes, observations int) {
	if m == nil {
		return
	}
	m.AppendBytes.Add(int64(frameBytes))
	m.AppendRecords.Add(1)
	m.AppendObservations.Add(int64(observations))
}

// recordFsync records one fsync latency.
func (m *Metrics) recordFsync(d time.Duration) {
	if m == nil {
		return
	}
	m.FsyncSeconds.ObserveDuration(d)
}

// addSegments adjusts the live segment gauge.
func (m *Metrics) addSegments(delta int) {
	if m == nil {
		return
	}
	m.Segments.Add(float64(delta))
}

// recordSnapshot notes a successful snapshot write at t.
func (m *Metrics) recordSnapshot(t time.Time) {
	if m == nil {
		return
	}
	m.Snapshots.Add(1)
	m.lastSnapshotUnixNano.Store(t.UnixNano())
}

// RecordSnapshotFailure notes a failed snapshot attempt.
func (m *Metrics) RecordSnapshotFailure() {
	if m == nil {
		return
	}
	m.SnapshotFailures.Add(1)
}

// RecordRecovery notes a completed boot-time recovery.
func (m *Metrics) RecordRecovery(d time.Duration) {
	if m == nil {
		return
	}
	m.RecoverySeconds.Set(d.Seconds())
}

// addReplayed counts batch records a Store.Open returned for replay —
// records past the newest snapshot, the ones recovery actually applies.
func (m *Metrics) addReplayed(n int) {
	if m == nil {
		return
	}
	m.ReplayedRecords.Add(int64(n))
}
