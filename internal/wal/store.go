package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Store manages the on-disk state of every durable dataset under one
// data directory: one subdirectory per dataset holding its snapshot
// files and WAL segments. Dataset creation and removal are atomic
// (staged under dot-prefixed temp names and renamed), so a crash never
// leaves a half-created dataset that recovery would try to load.
// Store methods are not safe for concurrent use on the same dataset;
// the server's registry serializes them.
type Store struct {
	dir  string
	opts Options
}

const (
	tmpPrefix = ".tmp-"
	delPrefix = ".del-"
)

// OpenStore opens (creating if needed) the data directory and sweeps
// away debris from interrupted creates and deletes (dot-prefixed
// staging directories).
func OpenStore(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) || strings.HasPrefix(e.Name(), delPrefix) {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
		}
	}
	return &Store{dir: dir, opts: opts.withDefaults()}, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// List returns the names of every dataset with on-disk state, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// DatasetLog is the durable handle of one dataset: its WAL plus
// snapshot management. Obtain from Store.Create or Store.Open; not safe
// for concurrent use (the owning registry entry serializes calls).
type DatasetLog struct {
	dir     string
	log     *Log
	metrics *Metrics
}

// Create atomically brings a new dataset into existence on disk with
// the given initial snapshot (normally at version 1), returning its
// durable handle. It fails if the dataset already has on-disk state.
func (s *Store) Create(name string, initial *Snapshot) (*DatasetLog, error) {
	final := filepath.Join(s.dir, name)
	if _, err := os.Stat(final); err == nil {
		return nil, fmt.Errorf("wal: dataset %q already has on-disk state", name)
	}
	tmp := filepath.Join(s.dir, tmpPrefix+name)
	if err := os.RemoveAll(tmp); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, err
	}
	if err := writeSnapshotFile(tmp, initial); err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	if err := syncPath(s.dir); err != nil {
		return nil, err
	}
	log, _, err := OpenLog(final, s.opts)
	if err != nil {
		return nil, err
	}
	s.metricsSnapshotWritten()
	return &DatasetLog{dir: final, log: log, metrics: s.opts.Metrics}, nil
}

// Open loads a dataset's durable state: its newest loadable snapshot
// and the WAL batches appended after it (in version order, already
// filtered to versions the snapshot does not cover). The returned
// handle continues the same WAL.
func (s *Store) Open(name string) (*DatasetLog, *Snapshot, []Batch, error) {
	dir := filepath.Join(s.dir, name)
	snap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	log, batches, err := OpenLog(dir, s.opts)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	// Segments can span the snapshot boundary (compaction retires only
	// fully-covered segments), so covered batches legitimately remain.
	i := 0
	for i < len(batches) && batches[i].Version <= snap.Version {
		i++
	}
	batches = batches[i:]
	for j, b := range batches {
		if want := snap.Version + int64(j) + 1; b.Version != want {
			//lint:ignore errflow the corruption error below supersedes any close failure on the bail-out path
			_ = log.Close()
			return nil, nil, nil, fmt.Errorf("dataset %q: %w: WAL resumes at version %d, want %d", name, ErrCorrupt, b.Version, want)
		}
	}
	s.opts.Metrics.addReplayed(len(batches))
	return &DatasetLog{dir: dir, log: log, metrics: s.opts.Metrics}, snap, batches, nil
}

// Remove deletes a dataset's on-disk state. The directory is renamed
// into a dot-prefixed staging name first, so a crash mid-removal leaves
// only debris the next OpenStore sweeps, never a half-deleted dataset.
func (s *Store) Remove(name string) error {
	final := filepath.Join(s.dir, name)
	segs, _ := listSegments(final)
	staged := filepath.Join(s.dir, delPrefix+name)
	if err := os.RemoveAll(staged); err != nil {
		return err
	}
	if err := os.Rename(final, staged); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if err := syncPath(s.dir); err != nil {
		return err
	}
	s.opts.Metrics.addSegments(-len(segs))
	return os.RemoveAll(staged)
}

// AppendBatch appends one ingested batch to the dataset's WAL under the
// configured fsync policy.
func (d *DatasetLog) AppendBatch(version int64, batch []Obs) error {
	return d.log.AppendBatch(version, batch)
}

// WriteSnapshot persists a new snapshot at its version boundary, then
// compacts: WAL segments fully covered by the snapshot are retired and
// older snapshot files pruned.
func (d *DatasetLog) WriteSnapshot(snap *Snapshot) error {
	if err := writeSnapshotFile(d.dir, snap); err != nil {
		d.metrics.RecordSnapshotFailure()
		return err
	}
	d.metrics.recordSnapshot(time.Now())
	if err := d.log.Retire(snap.Version); err != nil {
		return err
	}
	return pruneSnapshots(d.dir, snap.Version)
}

// SegmentCount returns the dataset's live WAL segment count.
func (d *DatasetLog) SegmentCount() int { return d.log.SegmentCount() }

// Sync forces pending WAL appends to stable storage regardless of
// policy.
func (d *DatasetLog) Sync() error { return d.log.Sync() }

// Close flushes and closes the dataset's WAL (the graceful-shutdown
// flush).
func (d *DatasetLog) Close() error { return d.log.Close() }

// metricsSnapshotWritten records a snapshot write performed by the
// store itself (dataset creation).
func (s *Store) metricsSnapshotWritten() {
	s.opts.Metrics.recordSnapshot(time.Now())
}
